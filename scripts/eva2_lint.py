#!/usr/bin/env python3
"""eva2-specific invariant linter (PR 10).

Regex-over-stripped-source rules that encode project invariants the
compiler cannot check (plus one that shells out to the compiler):

  hot-path-string   Files tagged `// eva2-lint: hot-path` must not
                    construct std::string / call std::to_string — the
                    per-frame kernels must not allocate.
  hot-path-alloc    The same files must not heap-allocate (new,
                    malloc/calloc/realloc, make_unique/make_shared).
  hot-path-require  require()/invariant() in hot files must use the
                    const char* overload: the message argument must be
                    a string literal, so no message is built unless the
                    check fails.
  raw-mutex         std::mutex / lock_guard / unique_lock /
                    scoped_lock / condition_variable anywhere outside
                    src/util/mutex.h — every lock must go through the
                    annotated wrappers so Clang Thread Safety Analysis
                    sees it.
  header-self-sufficient  (--headers) every header compiles on its own
                    with `$CXX -fsyntax-only` — no hidden include-order
                    dependencies.

Comments and string/char literal *contents* are stripped before the
regex rules run (tags and expectations are read from the raw text), so
a mutex mentioned in a doc comment is not a finding.

`--self-test` lints tests/lint_fixtures/ and checks the findings match
the `// eva2-lint-expect: <rule>` markers exactly — the linter's own
regression suite, run under CTest.

Exit status: 0 clean, 1 findings (or self-test mismatch), 2 usage or
internal error. No dependencies beyond the standard library; if the
optional libclang module is ever available it could replace the
stripper, but the regex core is the portable baseline.
"""

from __future__ import annotations

import argparse
import re
import shutil
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

HOT_TAG = re.compile(r"//\s*eva2-lint:\s*hot-path\b")
EXPECT_MARK = re.compile(r"//\s*eva2-lint-expect:\s*([a-z-]+)")

RAW_MUTEX = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|lock_guard|unique_lock"
    r"|scoped_lock|shared_lock|condition_variable(?:_any)?)\b"
    r"|^[ \t]*#[ \t]*include[ \t]*<(?:mutex|condition_variable"
    r"|shared_mutex)>",
    re.MULTILINE,
)
HOT_STRING = re.compile(r"\bstd::(?:to_)?string\b")
HOT_ALLOC = re.compile(
    r"\bnew\b|\b(?:malloc|calloc|realloc)\s*\("
    r"|\bstd::make_(?:unique|shared)\b"
)
REQUIRE_CALL = re.compile(r"\b(?:require|invariant)\s*\(")
# After stripping, a string literal is just quotes around blanks;
# adjacent literals (multi-line messages) are still one literal.
LITERAL_ARG = re.compile(r'^\s*(?:"[^"]*"\s*)+$')

CPP_SUFFIXES = {".cc", ".cpp", ".cxx", ".h", ".hpp"}
WRAPPER_HEADER = Path("src") / "util" / "mutex.h"


@dataclass(frozen=True)
class Finding:
    path: Path
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank comment bodies and string/char contents, keeping quotes,
    newlines, and column positions so findings map back to source."""
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (
                text[i] == "*" and i + 1 < n and text[i + 1] == "/"
            ):
                out.append(text[i] if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == 'R' and text.startswith('R"', i):
            # Raw string: R"delim( ... )delim"
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if m is None:
                out.append(c)
                i += 1
                continue
            end = text.find(")" + m.group(1) + '"', i + m.end())
            end = n if end < 0 else end + len(m.group(1)) + 2
            out.append('"')
            for j in range(i + 1, end - 1):
                out.append("\n" if text[j] == "\n" else " ")
            out.append('"')
            i = end
        elif c == "'" and i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
            # Digit separator (1'000) or literal suffix — not a char
            # literal opener.
            out.append(c)
            i += 1
        elif c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                elif text[i] == "\n":
                    out.append("\n")
                    i += 1
                else:
                    out.append(" ")
                    i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def require_message_args(stripped: str, open_paren: int) -> str | None:
    """The argument list of a require()/invariant() call after its
    first top-level comma, or None if the parens never balance."""
    depth = 0
    first_comma = -1
    for i in range(open_paren, len(stripped)):
        c = stripped[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                if first_comma < 0:
                    return ""  # Single-argument call: not ours.
                return stripped[first_comma + 1 : i]
        elif c == "," and depth == 1 and first_comma < 0:
            first_comma = i
    return None


def lint_text(path: Path, raw: str, stripped: str) -> list[Finding]:
    findings: list[Finding] = []

    if path.as_posix() != WRAPPER_HEADER.as_posix() and not path.match(
        "*/util/mutex.h"
    ):
        for m in RAW_MUTEX.finditer(stripped):
            findings.append(
                Finding(
                    path,
                    line_of(stripped, m.start()),
                    "raw-mutex",
                    "raw std lock primitive outside src/util/mutex.h; "
                    "use eva2::Mutex / MutexLock / CondVar so the "
                    "thread-safety analysis sees it",
                )
            )

    if HOT_TAG.search(raw):
        for m in HOT_STRING.finditer(stripped):
            findings.append(
                Finding(
                    path,
                    line_of(stripped, m.start()),
                    "hot-path-string",
                    "std::string construction in a hot-path file",
                )
            )
        for m in HOT_ALLOC.finditer(stripped):
            findings.append(
                Finding(
                    path,
                    line_of(stripped, m.start()),
                    "hot-path-alloc",
                    "heap allocation in a hot-path file",
                )
            )
        for m in REQUIRE_CALL.finditer(stripped):
            args = require_message_args(stripped, m.end() - 1)
            if args and not LITERAL_ARG.match(args):
                findings.append(
                    Finding(
                        path,
                        line_of(stripped, m.start()),
                        "hot-path-require",
                        "require()/invariant() message in a hot-path "
                        "file must be a string literal (const char* "
                        "overload) so nothing is built on success",
                    )
                )
    return findings


def lint_file(path: Path) -> list[Finding]:
    raw = path.read_text(encoding="utf-8")
    return lint_text(path, raw, strip_comments_and_strings(raw))


def collect(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(
                f
                for f in sorted(p.rglob("*"))
                if f.suffix in CPP_SUFFIXES and f.is_file()
            )
        elif p.suffix in CPP_SUFFIXES:
            files.append(p)
    return files


def find_cxx(explicit: str | None) -> str | None:
    for cand in [explicit, "c++", "g++", "clang++"]:
        if cand and shutil.which(cand):
            return cand
    return None


def check_headers(
    headers: list[Path], cxx: str, include_dir: Path
) -> list[Finding]:
    findings: list[Finding] = []
    for h in headers:
        proc = subprocess.run(
            [
                cxx,
                "-std=c++17",
                "-fsyntax-only",
                "-x",
                "c++",
                "-I",
                str(include_dir),
                str(h),
            ],
            capture_output=True,
            text=True,
            check=False,
        )
        if proc.returncode != 0:
            first = proc.stderr.strip().splitlines()
            findings.append(
                Finding(
                    h,
                    1,
                    "header-self-sufficient",
                    "header does not compile standalone: "
                    + (first[0] if first else "compiler failed"),
                )
            )
    return findings


def self_test(fixtures: Path, cxx: str | None, include_dir: Path) -> int:
    files = collect([fixtures])
    if not files:
        print(f"self-test: no fixtures under {fixtures}", file=sys.stderr)
        return 2
    failures = 0
    for f in files:
        raw = f.read_text(encoding="utf-8")
        expected = {
            (line_of(raw, m.start()), m.group(1))
            for m in EXPECT_MARK.finditer(raw)
        }
        got = {
            (fi.line, fi.rule)
            for fi in lint_text(f, raw, strip_comments_and_strings(raw))
        }
        if cxx is not None and f.suffix in {".h", ".hpp"}:
            got |= {
                (fi.line, fi.rule)
                for fi in check_headers([f], cxx, include_dir)
            }
        elif f.suffix in {".h", ".hpp"}:
            # No compiler: the header rule cannot run; drop its
            # expectations instead of failing the self-test.
            expected = {e for e in expected if e[1] != "header-self-sufficient"}
        for line, rule in sorted(expected - got):
            print(f"self-test: {f}:{line}: expected [{rule}], not flagged")
            failures += 1
        for line, rule in sorted(got - expected):
            print(f"self-test: {f}:{line}: unexpected [{rule}]")
            failures += 1
    if failures:
        print(f"self-test FAILED ({failures} mismatches)")
        return 1
    print(f"self-test OK ({len(files)} fixtures)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=(__doc__ or "").splitlines()[0]
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: <root>/src)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the script's parent's parent)",
    )
    parser.add_argument(
        "--headers",
        action="store_true",
        help="also check each header compiles standalone (needs a C++ "
        "compiler)",
    )
    parser.add_argument(
        "--cxx",
        default=None,
        help="compiler for --headers (default: c++, g++, or clang++ "
        "from PATH)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="lint tests/lint_fixtures and compare against the "
        "eva2-lint-expect markers",
    )
    args = parser.parse_args(argv)

    include_dir = args.root / "src"
    cxx = find_cxx(args.cxx)

    if args.self_test:
        return self_test(args.root / "tests" / "lint_fixtures", cxx, include_dir)

    paths = args.paths or [include_dir]
    files = collect(paths)
    if not files:
        print("eva2_lint: no C++ sources found", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f))
    if args.headers:
        if cxx is None:
            print("eva2_lint: --headers needs a C++ compiler", file=sys.stderr)
            return 2
        headers = [f for f in files if f.suffix in {".h", ".hpp"}]
        findings.extend(check_headers(headers, cxx, include_dir))

    for fi in findings:
        print(fi.render())
    if findings:
        print(f"eva2_lint: {len(findings)} finding(s) in {len(files)} files")
        return 1
    print(f"eva2_lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
