#!/usr/bin/env python3
"""Per-kernel perf-regression gate for bench_micro_kernels (and the
serving-overhead gate for bench_loadgen).

Compares a fresh google-benchmark JSON report against the committed
baseline (bench/baselines/BENCH_micro_kernels.baseline.json) and fails
when any (kernel, variant, shape) row regressed by more than the
threshold (default 20%).

bench_loadgen --json reports are also accepted on either side (the
file is recognized by its "bench": "loadgen" marker): each becomes a
loadgen/net_overhead/<shape> row — the ratio of in-process to
over-TCP throughput for the same frames, a same-run, machine-
independent number — anchored at a synthetic loadgen/anchor/<shape>
row pinned to 1.0. The committed serving baseline lives at
bench/baselines/BENCH_loadgen.baseline.json; refresh it the same way
(--merge with one or more loadgen runs).

Raw times are not comparable across machines, so every gated row is
first normalized by its same-run scalar anchor:

  conv_gemm/<variant>/<shape>  ->  anchored to conv_gemm/scalar/<shape>
  conv_tuned/<shape>           ->  anchored to conv_gemm/scalar/<shape>
  fc/<kind>/<dims>             ->  anchored to fc/scalar/<dims>
  rfbme/<variant>/<shape>      ->  anchored to rfbme/scalar/<shape>
  sad/<kind>/<dims>            ->  anchored to sad/scalar/<dims>

and the gate compares the *ratio* (row / anchor) between the two runs.
A variant that was 3.5x faster than scalar at baseline time but is only
2.5x faster now regressed ~40% and fails, regardless of the absolute
clock speed of either machine. Rows present in only one run (e.g. SIMD
rows on a machine without AVX2) are skipped with a notice.

Measurement methodology: both sides must be generated with many short
*randomly interleaved* repetitions --

  --benchmark_enable_random_interleaving=true \
  --benchmark_repetitions=9 --benchmark_min_time=0.1

-- and the gate takes the per-row MEDIAN across repetitions.
Interleaving spreads a row's repetitions across the whole run, so a
sustained noisy-neighbor window slows a few repetitions of many rows
instead of every repetition of a few; the median then rejects both
those slow outliers and the occasional anomalously *fast* repetition
(some tile shapes are bimodal, and a min would latch onto the rare
fast mode and poison the baseline).

Some rows are additionally bimodal *across processes* (allocation
addresses re-roll the cache aliasing each run), which no statistic
within one run can fix. The committed baseline is therefore the
*merge* of several independent runs: per gated row, the worst (highest)
normalized ratio observed, so the gate compares against each row's
slow mode and best-of-3 on the current side does the rest. Refreshing
the baseline after an intentional kernel change:

  for i in 1 2 3; do \
    ./build/bench_micro_kernels \
      --benchmark_filter='BM_ConvDirect|BM_ConvIm2colGemm|conv_gemm|conv_tuned|fc/|warp/|rfbme/|sad/' \
      --benchmark_enable_random_interleaving=true \
      --benchmark_repetitions=9 --benchmark_min_time=0.1 \
      --json /tmp/bench-run$i.json; done && \
  python3 scripts/check_bench_baseline.py \
      --merge bench/baselines/BENCH_micro_kernels.baseline.json \
      /tmp/bench-run1.json /tmp/bench-run2.json /tmp/bench-run3.json

The merged file stores normalized ratios directly (anchor rows pinned
at 1.0), which load_rows/the gate consume unchanged.

Exit codes (the CI retry convention): 0 = pass, 1 = regression past
the threshold (retryable -- CI re-runs the bench up to 3 times, since
shared runners are noisy neighbors), 2 = malformed report or missing
anchor rows (a configuration bug; never retried).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from typing import Any, NoReturn


def loadgen_rows(doc: dict[str, Any]) -> dict[str, float]:
    """Synthesize gate rows from a bench_loadgen --json report.

    The serving front end's gated metric is `net_overhead` =
    fps_inproc / fps_net: how much throughput the TCP layer costs over
    direct Session::submit of the same frames. It is a same-run ratio,
    so it is machine-independent by construction; the anchor row is
    pinned at 1.0 purely so the generic ratio gate below applies
    unchanged.
    """
    shape = doc.get("shape", "default")
    overhead = float(doc["net_overhead"])
    if overhead <= 0:
        raise ValueError("loadgen report has no net_overhead measurement")
    rows: dict[str, float] = {
        f"loadgen/net_overhead/{shape}": overhead,
        f"loadgen/anchor/{shape}": 1.0,
    }
    # Soak-phase resident-memory metrics (present once the loadgen ran
    # with --soak-sessions): bytes_per_session is a byte count and
    # machine-independent; hydrate_p99_us is wall time and rides the
    # same noisy-runner retry convention as every timing row.
    for key in ("bytes_per_session", "hydrate_p99_us"):
        if key in doc and float(doc[key]) > 0:
            rows[f"loadgen/{key}/{shape}"] = float(doc[key])
    return rows


def load_rows(path: str) -> dict[str, float]:
    try:
        with open(path) as f:
            doc: dict[str, Any] = json.load(f)
        if doc.get("bench") == "loadgen":
            return loadgen_rows(doc)
        samples: dict[str, list[float]] = {}
        for b in doc["benchmarks"]:
            if b.get("run_type", "iteration") != "iteration":
                continue
            # With --benchmark_repetitions=N each repetition emits a
            # row under the same name; gate on the median (see the
            # module docstring for why not the min).
            samples.setdefault(b["name"], []).append(float(b["real_time"]))
        return {name: statistics.median(ts) for name, ts in samples.items()}
    except (OSError, ValueError, KeyError) as e:
        print(f"error: cannot read benchmark report {path}: {e}")
        sys.exit(2)


def anchor_name(name: str) -> str | None:
    """Same-run scalar anchor for a gated row, or None to skip."""
    parts = name.split("/")
    if name.startswith("conv_gemm/") and len(parts) == 3:
        return f"conv_gemm/scalar/{parts[2]}"
    if name.startswith("conv_tuned/") and len(parts) == 2:
        return f"conv_gemm/scalar/{parts[1]}"
    if name.startswith("fc/") and len(parts) == 3:
        return f"fc/scalar/{parts[2]}"
    if name.startswith("rfbme/") and len(parts) == 3:
        return f"rfbme/scalar/{parts[2]}"
    if name.startswith("sad/") and len(parts) == 3:
        return f"sad/scalar/{parts[2]}"
    if name.startswith("warp/rle/") and len(parts) == 3:
        # Sparse-direct warp is anchored to the same run's
        # decode-then-warp of the identical RLE stream: the committed
        # ratio *is* the required speedup, and the 20% gate keeps it.
        return f"warp/decode/{parts[2]}"
    if len(parts) == 3 and parts[0] == "loadgen" and parts[1] in (
            "net_overhead", "bytes_per_session", "hydrate_p99_us"):
        return f"loadgen/anchor/{parts[2]}"
    return None


def merge(out_path: str, run_paths: list[str]) -> NoReturn:
    """Merge N bench runs into a committed baseline.

    Per gated row, keep the worst (highest) normalized ratio across
    the runs, so the baseline represents each row's slow mode. Emitted
    as a google-benchmark-shaped JSON with anchor rows pinned at 1.0;
    the gate's normalization then reproduces the stored ratios.
    """
    worst: dict[str, float] = {}
    anchors: set[str] = set()
    for path in run_paths:
        rows = load_rows(path)
        for name in rows:
            anchor = anchor_name(name)
            if anchor is None or name == anchor:
                continue
            if anchor not in rows:
                print(f"error: anchor row {anchor} missing for {name} "
                      f"in {path}")
                sys.exit(2)
            ratio = rows[name] / rows[anchor]
            worst[name] = max(worst.get(name, 0.0), ratio)
            anchors.add(anchor)
    if not worst:
        print("error: no gated rows found in the input runs")
        sys.exit(2)
    benchmarks: list[dict[str, object]] = [
        {"name": n, "run_type": "iteration", "real_time": t}
        for n, t in sorted(worst.items())]
    benchmarks += [{"name": a, "run_type": "iteration", "real_time": 1.0}
                   for a in sorted(anchors)]
    with open(out_path, "w") as f:
        json.dump({"context": {"merged_from_runs": len(run_paths)},
                   "benchmarks": benchmarks}, f, indent=1)
        f.write("\n")
    print(f"merged {len(worst)} gated rows from {len(run_paths)} run(s) "
          f"into {out_path}")
    sys.exit(0)


def main() -> NoReturn:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline")
    ap.add_argument("--current")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="allowed normalized slowdown (0.20 = 20%%)")
    ap.add_argument("--merge", metavar="OUT",
                    help="write a merged baseline from RUNS instead of gating")
    ap.add_argument("runs", nargs="*", metavar="RUN",
                    help="bench JSON reports to merge (with --merge)")
    args = ap.parse_args()

    if args.merge:
        if not args.runs:
            ap.error("--merge requires at least one RUN report")
        merge(args.merge, args.runs)
    if not args.baseline or not args.current:
        ap.error("--baseline and --current are required when gating")

    base = load_rows(args.baseline)
    cur = load_rows(args.current)

    gated: list[tuple[str, str]] = []
    for name in sorted(cur):
        anchor = anchor_name(name)
        if anchor is None or name == anchor:
            continue
        if name not in base:
            print(f"note: {name}: not in baseline, skipped "
                  "(refresh the baseline to start gating it)")
            continue
        for missing in (m for m in {anchor} if m not in cur or m not in base):
            print(f"error: anchor row {missing} missing for {name}")
            sys.exit(2)
        gated.append((name, anchor))

    if not gated:
        print("error: no gated rows found in both reports")
        sys.exit(2)

    failures: list[str] = []
    for name, anchor in gated:
        r_cur = cur[name] / cur[anchor]
        r_base = base[name] / base[anchor]
        delta = r_cur / r_base - 1.0
        status = "FAIL" if delta > args.threshold else "ok"
        print(f"{status:4} {name}: normalized {r_base:.3f} -> {r_cur:.3f} "
              f"({delta:+.1%})")
        if delta > args.threshold:
            failures.append(name)

    if failures:
        print(f"\n{len(failures)} kernel(s) regressed more than "
              f"{args.threshold:.0%} vs the committed baseline:")
        for name in failures:
            print(f"  {name}")
        sys.exit(1)
    print(f"\nall {len(gated)} gated kernels within {args.threshold:.0%} "
          "of baseline")
    sys.exit(0)


if __name__ == "__main__":
    main()
