/**
 * @file
 * Tests for the AMC core: activation warping, key-frame policies, and
 * the AMC pipeline's bookkeeping and approximation behaviour,
 * including the conv/translation commutativity property the whole
 * technique rests on (Section II-B).
 */
#include <gtest/gtest.h>

#include "cnn/model_zoo.h"
#include "core/amc_pipeline.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"
#include "video/scenarios.h"

namespace eva2 {
namespace {

Tensor
random_activation(Shape s, u64 seed, double density = 0.4)
{
    Tensor t(s);
    Rng rng(seed);
    for (i64 i = 0; i < t.size(); ++i) {
        if (rng.chance(density)) {
            t[i] = rng.uniform_f(0.1f, 2.0f);
        }
    }
    return t;
}

TEST(Warp, ZeroFieldIsIdentity)
{
    Tensor act = random_activation({4, 8, 8}, 1);
    MotionField zero(8, 8);
    EXPECT_TRUE(all_close(warp_activation(act, zero, 16), act, 1e-6));
}

TEST(Warp, IntegerCellShiftMatchesTranslate)
{
    Tensor act = random_activation({3, 10, 10}, 2);
    for (i64 cells : {-2, -1, 1, 2}) {
        MotionField f = MotionField::uniform(
            10, 10, Vec2{0.0, static_cast<double>(-16 * cells)});
        Tensor w = warp_activation(act, f, 16, InterpMode::kBilinear);
        EXPECT_TRUE(all_close(w, translate(act, 0, cells), 1e-6))
            << "cells=" << cells;
    }
}

TEST(Warp, NearestEqualsBilinearOnIntegerShifts)
{
    Tensor act = random_activation({2, 6, 6}, 3);
    MotionField f = MotionField::uniform(6, 6, Vec2{-16.0, 16.0});
    Tensor b = warp_activation(act, f, 16, InterpMode::kBilinear);
    Tensor n = warp_activation(act, f, 16, InterpMode::kNearest);
    EXPECT_TRUE(all_close(b, n, 1e-6));
}

TEST(Warp, HalfCellBilinearAverages)
{
    Tensor act(1, 1, 3);
    act.at(0, 0, 0) = 0.0f;
    act.at(0, 0, 1) = 2.0f;
    act.at(0, 0, 2) = 4.0f;
    // Source offset of +0.5 cells in x.
    MotionField f = MotionField::uniform(1, 3, Vec2{0.0, 8.0});
    Tensor w = warp_activation(act, f, 16, InterpMode::kBilinear);
    EXPECT_NEAR(w.at(0, 0, 0), 1.0f, 1e-6);
    EXPECT_NEAR(w.at(0, 0, 1), 3.0f, 1e-6);
}

TEST(Warp, FieldGridMustMatch)
{
    Tensor act = random_activation({1, 4, 4}, 4);
    MotionField f(3, 4);
    EXPECT_THROW(warp_activation(act, f, 16), ConfigError);
}

TEST(Warp, FitFieldCropsAndExtends)
{
    MotionField f(3, 3);
    f.at(2, 2) = Vec2{1.0, 1.0};
    MotionField grown = fit_field(f, 4, 4);
    EXPECT_EQ(grown.height(), 4);
    EXPECT_DOUBLE_EQ(grown.at(3, 3).dy, 1.0);
    MotionField shrunk = fit_field(f, 2, 2);
    EXPECT_EQ(shrunk.height(), 2);
}

TEST(WarpInto, MatchesAllocatingFormsWithoutAllocating)
{
    const Tensor key = random_activation(Shape{3, 12, 12}, 41);
    MotionField field = MotionField::uniform(12, 12, Vec2{3.0, -1.5});
    field.at(4, 7) = Vec2{-2.0, 2.5};

    for (const InterpMode mode :
         {InterpMode::kBilinear, InterpMode::kNearest}) {
        const Tensor expect = warp_activation(key, field, 2, mode);
        Tensor out;
        warp_activation_into(key, field, 2, mode, out);
        EXPECT_TRUE(out == expect);

        // Steady state: re-warping into the same tensor reuses its
        // buffer — the per-predicted-frame guarantee the compiled
        // frame path is pinned to.
        const u64 before = Tensor::buffer_allocations();
        warp_activation_into(key, field, 2, mode, out);
        EXPECT_EQ(Tensor::buffer_allocations() - before, 0u);
        EXPECT_TRUE(out == expect);
    }
}

TEST(WarpInto, FitFieldIntoMatchesAndCopiesEvenWhenSameSize)
{
    MotionField f(3, 3);
    f.at(2, 2) = Vec2{1.0, 1.0};
    MotionField out;
    fit_field_into(f, 4, 4, out);
    EXPECT_DOUBLE_EQ(out.at(3, 3).dy, 1.0);
    fit_field_into(f, 3, 3, out);
    EXPECT_EQ(out.height(), 3);
    EXPECT_DOUBLE_EQ(out.at(2, 2).dx, 1.0);
    EXPECT_DOUBLE_EQ(out.at(0, 0).dx, 0.0);
}

/** Property sweep: warping by any integer-cell uniform field equals
 * plain translation at every receptive-field stride and both
 * interpolation modes. */
class WarpSweep
    : public ::testing::TestWithParam<std::tuple<i64, i64, i64>>
{
};

TEST_P(WarpSweep, UniformIntegerFieldMatchesTranslate)
{
    const auto [stride, cy, cx] = GetParam();
    Tensor act = random_activation({3, 9, 9}, 17);
    MotionField f = MotionField::uniform(
        9, 9,
        Vec2{static_cast<double>(-stride * cy),
             static_cast<double>(-stride * cx)});
    for (InterpMode mode :
         {InterpMode::kBilinear, InterpMode::kNearest}) {
        Tensor warped = warp_activation(act, f, stride, mode);
        EXPECT_TRUE(all_close(warped, translate(act, cy, cx), 1e-6))
            << "stride=" << stride << " cy=" << cy << " cx=" << cx;
    }
}

INSTANTIATE_TEST_SUITE_P(
    StridesAndShifts, WarpSweep,
    ::testing::Values(std::tuple<i64, i64, i64>{8, 1, 0},
                      std::tuple<i64, i64, i64>{8, 0, -2},
                      std::tuple<i64, i64, i64>{16, 2, 2},
                      std::tuple<i64, i64, i64>{16, -1, 3},
                      std::tuple<i64, i64, i64>{32, -2, -2},
                      std::tuple<i64, i64, i64>{1, 3, -3}));

/** Property: fractional warps interpolate between the two nearest
 * integer-cell warps, so their values are bounded by the envelope of
 * neighbouring cells. */
TEST(Warp, FractionalWarpBoundedByNeighbours)
{
    Tensor act = random_activation({2, 8, 8}, 18, 0.8);
    for (double frac : {0.25, 0.5, 0.75}) {
        // Backward source offset +frac cells in x: output(x) samples
        // between act(x) and act(x + 1).
        MotionField f =
            MotionField::uniform(8, 8, Vec2{0.0, 16.0 * frac});
        Tensor warped =
            warp_activation(act, f, 16, InterpMode::kBilinear);
        for (i64 c = 0; c < 2; ++c) {
            for (i64 y = 0; y < 8; ++y) {
                for (i64 x = 0; x + 1 < 8; ++x) {
                    const float lo = std::min(act.at(c, y, x),
                                              act.at(c, y, x + 1));
                    const float hi = std::max(act.at(c, y, x),
                                              act.at(c, y, x + 1));
                    EXPECT_GE(warped.at(c, y, x), lo - 1e-6f);
                    EXPECT_LE(warped.at(c, y, x), hi + 1e-6f);
                }
            }
        }
    }
}

TEST(Policy, StaticRate)
{
    StaticRatePolicy policy(3);
    FrameFeatures f;
    f.frames_since_key = 1;
    EXPECT_FALSE(policy.is_key_frame(f));
    f.frames_since_key = 2;
    EXPECT_FALSE(policy.is_key_frame(f));
    f.frames_since_key = 3;
    EXPECT_TRUE(policy.is_key_frame(f));
}

TEST(Policy, BlockErrorThreshold)
{
    BlockErrorPolicy policy(0.05);
    FrameFeatures f;
    f.frames_since_key = 1;
    f.match_error = 0.01;
    EXPECT_FALSE(policy.is_key_frame(f));
    f.match_error = 0.10;
    EXPECT_TRUE(policy.is_key_frame(f));
}

TEST(Policy, MotionMagnitudeThresholdAndMaxGap)
{
    MotionMagnitudePolicy policy(100.0, 5);
    FrameFeatures f;
    f.frames_since_key = 1;
    f.motion_magnitude = 10.0;
    EXPECT_FALSE(policy.is_key_frame(f));
    f.motion_magnitude = 500.0;
    EXPECT_TRUE(policy.is_key_frame(f));
    f.motion_magnitude = 0.0;
    f.frames_since_key = 5;
    EXPECT_TRUE(policy.is_key_frame(f)) << "max gap must force a key";
}

TEST(Policy, InvalidConfigsThrow)
{
    EXPECT_THROW(StaticRatePolicy(0), ConfigError);
    EXPECT_THROW(BlockErrorPolicy(-1.0), ConfigError);
}

class PipelineTest : public ::testing::Test
{
  protected:
    PipelineTest()
        : spec_(fasterm_spec()),
          net_([this] {
              ScaledBuildOptions opts;
              opts.input = Shape{1, 192, 192};
              return build_scaled(spec_, opts);
          }())
    {
    }

    AmcOptions
    options() const
    {
        AmcOptions opts;
        opts.target_choice = TargetChoice::kExplicit;
        opts.explicit_target = net_.find_layer(spec_.late_target);
        return opts;
    }

    NetworkSpec spec_;
    Network net_;
};

TEST_F(PipelineTest, FirstFrameIsAlwaysKey)
{
    AmcPipeline p(net_, std::make_unique<StaticRatePolicy>(100),
                  options());
    SyntheticVideo video(static_scene(1, 192));
    AmcFrameResult r = p.process(video.render(0).image);
    EXPECT_TRUE(r.is_key);
    EXPECT_EQ(p.stats().key_frames, 1);
}

TEST_F(PipelineTest, StaticPolicyKeyPattern)
{
    AmcPipeline p(net_, std::make_unique<StaticRatePolicy>(3), options());
    SyntheticVideo video(panning_scene(2, 1.0, 192));
    std::vector<bool> keys;
    for (i64 t = 0; t < 7; ++t) {
        keys.push_back(p.process(video.render(t).image).is_key);
    }
    const std::vector<bool> expect{true, false, false, true,
                                   false, false, true};
    EXPECT_EQ(keys, expect);
    EXPECT_EQ(p.stats().frames, 7);
    EXPECT_EQ(p.stats().key_frames, 3);
    EXPECT_NEAR(p.stats().key_fraction(), 3.0 / 7.0, 1e-9);
}

TEST_F(PipelineTest, StaticSceneHasNearPerfectPredictions)
{
    AmcPipeline p(net_, std::make_unique<StaticRatePolicy>(100),
                  options());
    SyntheticVideo video(static_scene(3, 192));
    Tensor key_out = p.run_key(video.render(0).image);
    AmcFrameResult pred = p.run_predicted(video.render(5).image);
    EXPECT_FALSE(pred.is_key);
    // A static scene predicts almost exactly (only Q8.8 storage
    // quantization differs).
    // Near-perfect, not exact: stored activations pass through the
    // Q8.8 RLE codec with near-zero pruning, as in the hardware.
    EXPECT_LT(max_abs_diff(pred.output, key_out), 0.1);
    EXPECT_LT(pred.features.match_error, 0.01);
}

TEST_F(PipelineTest, AdaptivePolicyFiresOnSceneCut)
{
    AmcPipeline p(net_, std::make_unique<BlockErrorPolicy>(0.04),
                  options());
    SceneConfig cfg = static_scene(4, 192);
    cfg.scene_cut_frame = 3;
    SyntheticVideo video(cfg);
    EXPECT_TRUE(p.process(video.render(0).image).is_key);
    EXPECT_FALSE(p.process(video.render(1).image).is_key);
    EXPECT_FALSE(p.process(video.render(2).image).is_key);
    // The cut makes block matching fail; the policy must fall back.
    EXPECT_TRUE(p.process(video.render(3).image).is_key);
}

TEST_F(PipelineTest, MemoizationReturnsStoredActivation)
{
    AmcOptions opts = options();
    opts.motion_mode = MotionMode::kMemoization;
    AmcPipeline p(net_, std::make_unique<StaticRatePolicy>(100), opts);
    SyntheticVideo video(panning_scene(5, 2.0, 192));
    p.run_key(video.render(0).image);
    AmcFrameResult pred = p.run_predicted(video.render(4).image);
    EXPECT_TRUE(
        all_close(pred.target_activation, p.stored_activation(), 0.0));
}

TEST_F(PipelineTest, CompensationTracksMotionBetterThanMemoization)
{
    // On a fast pan, the warped activation must be closer to the true
    // activation than the stale one (the core AMC claim).
    SceneConfig cfg;
    cfg.height = 192;
    cfg.width = 192;
    cfg.seed = 6;
    cfg.pan_vx = 4.0;
    SyntheticVideo video(cfg);
    const i64 target = net_.find_layer(spec_.late_target);
    const Tensor oracle =
        net_.forward_prefix(video.render(4).image, target);

    AmcOptions warp_opts = options();
    AmcPipeline warped(net_, std::make_unique<StaticRatePolicy>(100),
                       warp_opts);
    warped.run_key(video.render(0).image);
    Tensor w = warped.predicted_activation(video.render(4).image);

    AmcOptions memo_opts = options();
    memo_opts.motion_mode = MotionMode::kMemoization;
    AmcPipeline memo(net_, std::make_unique<StaticRatePolicy>(100),
                     memo_opts);
    memo.run_key(video.render(0).image);
    Tensor m = memo.predicted_activation(video.render(4).image);

    // Compare on the interior (border cells are boundary-dominated).
    auto interior_err = [&](const Tensor &a) {
        double acc = 0.0;
        i64 n = 0;
        for (i64 c = 0; c < a.channels(); ++c) {
            for (i64 y = 3; y < a.height() - 3; ++y) {
                for (i64 x = 3; x < a.width() - 3; ++x) {
                    acc += std::abs(a.at(c, y, x) - oracle.at(c, y, x));
                    ++n;
                }
            }
        }
        return acc / static_cast<double>(n);
    };
    EXPECT_LT(interior_err(w), interior_err(m));
}

TEST_F(PipelineTest, ResetClearsState)
{
    AmcPipeline p(net_, std::make_unique<StaticRatePolicy>(2), options());
    SyntheticVideo video(static_scene(7, 192));
    p.process(video.render(0).image);
    p.process(video.render(1).image);
    p.reset();
    EXPECT_EQ(p.stats().frames, 0);
    EXPECT_THROW(p.stored_activation(), ConfigError);
    EXPECT_TRUE(p.process(video.render(0).image).is_key);
}

TEST_F(PipelineTest, TargetResolution)
{
    EXPECT_EQ(AmcPipeline::resolve_target(net_, TargetChoice::kEarly, -1),
              net_.first_pool_index());
    // build_scaled designates the spec's late target (relu5, the end
    // of the feature extractor) rather than the mechanical last
    // spatial layer, which for Faster R-CNN sits inside the RPN head.
    EXPECT_EQ(AmcPipeline::resolve_target(net_,
                                          TargetChoice::kLastSpatial, -1),
              net_.default_target_index());
    EXPECT_EQ(net_.default_target_index(),
              net_.find_layer(spec_.late_target));
    EXPECT_LT(net_.default_target_index(), net_.last_spatial_index());
    EXPECT_THROW(
        AmcPipeline::resolve_target(net_, TargetChoice::kExplicit, 9999),
        ConfigError);
}

TEST_F(PipelineTest, StoredActivationCompressed)
{
    AmcPipeline p(net_, std::make_unique<StaticRatePolicy>(2), options());
    SyntheticVideo video(object_scene(8, 2, 1.0, 192));
    p.process(video.render(0).image);
    const Shape act_shape =
        net_.shape_at(net_.find_layer(spec_.late_target));
    const i64 dense_bytes = act_shape.size() * 2;
    // Sparse storage must beat the dense 16-bit baseline. The paper's
    // quantitative claim ("more than 80%" for Faster16, Section III-B)
    // is checked by bench/sparsity_storage; this unit test guards the
    // qualitative property on the shallower FasterM, whose calibrated
    // substitute reaches ~45-50% savings on busy detection scenes.
    EXPECT_LT(p.stored_activation_bytes(), (dense_bytes * 3) / 5);
}

TEST_F(PipelineTest, RejectsWrongFrameShape)
{
    AmcPipeline p(net_, nullptr, options());
    Tensor bad(1, 50, 50);
    EXPECT_THROW(p.process(bad), ConfigError);
}

TEST_F(PipelineTest, PruningShrinksStorageMonotonically)
{
    SyntheticVideo video(object_scene(8, 2, 1.0, 192));
    const Tensor frame = video.render(0).image;
    i64 prev = std::numeric_limits<i64>::max();
    for (const double rel : {0.0, 0.1, 0.3}) {
        AmcOptions opts = options();
        opts.storage_prune_rel = rel;
        AmcPipeline p(net_, std::make_unique<StaticRatePolicy>(2), opts);
        p.process(frame);
        EXPECT_LE(p.stored_activation_bytes(), prev) << "rel=" << rel;
        prev = p.stored_activation_bytes();
    }
}

TEST_F(PipelineTest, PrunedStorageStillPredictsWell)
{
    // Mild pruning must not break prediction: compare the predicted
    // activation against an unpruned, unquantized pipeline on a
    // gentle translation.
    SyntheticVideo video(panning_scene(31, 1.0, 192));
    AmcOptions exact = options();
    exact.quantize_storage = false;
    exact.storage_prune_rel = 0.0;
    AmcOptions pruned = options();

    AmcPipeline a(net_, std::make_unique<StaticRatePolicy>(100), exact);
    AmcPipeline b(net_, std::make_unique<StaticRatePolicy>(100), pruned);
    a.process(video.render(0).image);
    b.process(video.render(0).image);
    const Tensor pa = a.predicted_activation(video.render(2).image);
    const Tensor pb = b.predicted_activation(video.render(2).image);

    double num = 0.0;
    double den = 0.0;
    for (i64 i = 0; i < pa.size(); ++i) {
        num += std::fabs(static_cast<double>(pa[i]) - pb[i]);
        den += std::fabs(static_cast<double>(pa[i]));
    }
    EXPECT_LT(num, 0.2 * den)
        << "pruned prediction diverged from exact storage";
}

/** Property: prefix/suffix split at any spatial layer reproduces the
 * full network output on key frames. */
class SplitPoint : public ::testing::TestWithParam<i64>
{
};

TEST_P(SplitPoint, KeyFrameOutputMatchesFullExecution)
{
    NetworkSpec spec = alexnet_spec();
    Network net = build_scaled(spec);
    const i64 target = GetParam() < net.last_spatial_index()
                           ? GetParam()
                           : net.last_spatial_index();
    AmcOptions opts;
    opts.target_choice = TargetChoice::kExplicit;
    opts.explicit_target = target;
    AmcPipeline p(net, nullptr, opts);
    SyntheticVideo video(classification_scene(10, 3, 0.0, 128));
    const Tensor frame = video.render(0).image;
    const Tensor direct = net.forward(frame);
    const Tensor via_pipeline = p.process(frame).output;
    EXPECT_TRUE(all_close(direct, via_pipeline, 1e-5));
}

INSTANTIATE_TEST_SUITE_P(Targets, SplitPoint,
                         ::testing::Values(0, 3, 7, 11, 15, 99));

} // namespace
} // namespace eva2
