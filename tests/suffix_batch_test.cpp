/**
 * @file
 * Tests for cross-stream suffix batching: BatchedExecutionPlan
 * bit-exact parity with per-sample ExecutionPlan runs (over kernels,
 * fusion, batch sizes, and layer ranges), zero steady-state
 * allocations, the SuffixBatcher's formation policy (full batches,
 * partial-batch delay dispatch, inline batch-of-1), the batch=auto
 * Engine spec, and the acceptance sweep: per-stream digests with
 * batching enabled are bit-identical to unbatched execution across
 * scenarios x policies x kernels.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <thread>

#include "api/engine.h"
#include "api/registry.h"
#include "cnn/model_zoo.h"
#include "runtime/stream_executor.h"
#include "runtime/suffix_batcher.h"
#include "util/rng.h"
#include "video/scenarios.h"

namespace eva2 {
namespace {

Network
small_net(i64 size = 96)
{
    ScaledBuildOptions o;
    o.input = Shape{1, size, size};
    return build_scaled(alexnet_spec(), o);
}

Tensor
random_tensor(Shape shape, u64 seed)
{
    Tensor t(shape);
    Rng rng(seed);
    for (i64 i = 0; i < t.size(); ++i) {
        t[i] = rng.uniform_f(-1.5f, 1.5f);
    }
    return t;
}

// --------------------------------------------------------------------
// BatchedExecutionPlan parity

/**
 * The core bit-exactness contract: every sample of a batched run
 * equals the unbatched plan's output exactly, for every batch size,
 * kernel, and fusion setting, over both the suffix range (FC-heavy)
 * and the whole network (conv/pool/LRN-heavy).
 */
TEST(BatchedPlan, BitIdenticalToPerSampleRuns)
{
    Network net = small_net();
    const i64 target = net.default_target_index();
    struct Range
    {
        i64 begin;
        i64 end;
        Shape in;
    };
    ExecutionPlan prefix(net, 0, target + 1, net.input_shape());
    const std::vector<Range> ranges = {
        {target + 1, net.num_layers(), prefix.out_shape()},
        {0, net.num_layers(), net.input_shape()},
    };
    for (const Range &range : ranges) {
        for (const ConvKernel kernel :
             {ConvKernel::kIm2colGemm, ConvKernel::kDirect}) {
            for (const bool fuse : {true, false}) {
                PlanOptions popts;
                popts.conv_kernel = kernel;
                popts.fuse_conv_relu = fuse;
                ExecutionPlan plan(net, range.begin, range.end,
                                   range.in, popts);
                BatchedExecutionPlan batched(plan, /*max_batch=*/4);
                EXPECT_EQ(batched.out_shape(), plan.out_shape());
                for (const i64 n : {1, 2, 3, 4}) {
                    std::vector<Tensor> inputs;
                    std::vector<const Tensor *> in_ptrs;
                    for (i64 i = 0; i < n; ++i) {
                        inputs.push_back(random_tensor(
                            range.in,
                            static_cast<u64>(1000 + i)));
                    }
                    for (const Tensor &t : inputs) {
                        in_ptrs.push_back(&t);
                    }
                    const Tensor *outs[kMaxSuffixBatch] = {};
                    ScratchArena batch_arena;
                    batched.run(in_ptrs.data(), n, outs, batch_arena);
                    for (i64 i = 0; i < n; ++i) {
                        ScratchArena ref_arena;
                        const Tensor &expect =
                            plan.run(inputs[static_cast<size_t>(i)],
                                     ref_arena);
                        ASSERT_NE(outs[i], nullptr);
                        EXPECT_TRUE(*outs[i] == expect)
                            << "range [" << range.begin << ", "
                            << range.end << "), kernel "
                            << conv_kernel_name(kernel) << ", fuse "
                            << fuse << ", batch " << n << ", sample "
                            << i;
                    }
                }
            }
        }
    }
}

TEST(BatchedPlan, EmptyRangeReturnsInputs)
{
    Network net = small_net();
    BatchedExecutionPlan batched(net, 2, 2,
                                 ExecutionPlan(net, 0, 2,
                                               net.input_shape())
                                     .out_shape(),
                                 /*max_batch=*/2);
    const Tensor a = random_tensor(batched.in_shape(), 7);
    const Tensor b = random_tensor(batched.in_shape(), 8);
    const Tensor *ins[2] = {&a, &b};
    const Tensor *outs[2] = {};
    ScratchArena arena;
    batched.run(ins, 2, outs, arena);
    EXPECT_EQ(outs[0], &a);
    EXPECT_EQ(outs[1], &b);
}

TEST(BatchedPlan, RejectsBadBatchAndShapes)
{
    Network net = small_net();
    EXPECT_THROW(BatchedExecutionPlan(net, 0, net.num_layers(),
                                      net.input_shape(), 0),
                 ConfigError);
    EXPECT_THROW(BatchedExecutionPlan(net, 0, net.num_layers(),
                                      net.input_shape(),
                                      kMaxSuffixBatch + 1),
                 ConfigError);
    BatchedExecutionPlan batched(net, 0, net.num_layers(),
                                 net.input_shape(), 2);
    const Tensor good = random_tensor(net.input_shape(), 1);
    const Tensor bad = random_tensor(Shape{1, 8, 8}, 2);
    const Tensor *outs[2] = {};
    ScratchArena arena;
    {
        const Tensor *ins[2] = {&good, &good};
        EXPECT_THROW(batched.run(ins, 3, outs, arena), ConfigError);
        EXPECT_THROW(batched.run(ins, 0, outs, arena), ConfigError);
    }
    {
        const Tensor *ins[2] = {&good, &bad};
        EXPECT_THROW(batched.run(ins, 2, outs, arena), ConfigError);
    }
}

/**
 * The allocation half of the acceptance bar: once the arena is warm,
 * a batched suffix run allocates no tensor buffers at any batch size
 * up to max_batch.
 */
TEST(BatchedPlan, ZeroSteadyStateAllocations)
{
    Network net = small_net();
    const i64 target = net.default_target_index();
    ExecutionPlan prefix(net, 0, target + 1, net.input_shape());
    ExecutionPlan suffix(net, target + 1, net.num_layers(),
                         prefix.out_shape());
    BatchedExecutionPlan batched(suffix, /*max_batch=*/4);
    std::vector<Tensor> inputs;
    for (i64 i = 0; i < 4; ++i) {
        inputs.push_back(random_tensor(suffix.in_shape(),
                                       static_cast<u64>(50 + i)));
    }
    const Tensor *ins[4] = {&inputs[0], &inputs[1], &inputs[2],
                            &inputs[3]};
    const Tensor *outs[4] = {};
    ScratchArena arena;
    // Warm every batch size (slot shapes differ with n).
    for (const i64 n : {1, 2, 3, 4}) {
        batched.run(ins, n, outs, arena);
    }
    const u64 before = Tensor::buffer_allocations();
    for (i64 rep = 0; rep < 3; ++rep) {
        for (const i64 n : {4, 1, 3, 2}) {
            batched.run(ins, n, outs, arena);
        }
    }
    EXPECT_EQ(Tensor::buffer_allocations() - before, 0u)
        << "batched suffix runs allocated tensor buffers steady-state";
}

// --------------------------------------------------------------------
// SuffixBatcher formation policy

struct RecordingClient : SuffixBatchClient
{
    std::mutex mutex;
    std::vector<i64> tokens;
    std::vector<u64> digests;
    std::vector<std::exception_ptr> errors;

    void
    on_suffix_done(i64 token, const Tensor *out,
                   std::exception_ptr error) override
    {
        std::lock_guard<std::mutex> lock(mutex);
        tokens.push_back(token);
        digests.push_back(out != nullptr ? tensor_digest(*out) : 0);
        errors.push_back(error);
    }
};

TEST(SuffixBatcher, FullBatchesDispatchAndMatchUnbatched)
{
    Network net = small_net();
    ExecutionPlan full(net);
    BatchedExecutionPlan batched(full, /*max_batch=*/2);
    ThreadPool pool(2);
    SuffixBatchOptions opts;
    opts.enabled = true;
    opts.max_batch = 2;
    opts.max_delay_us = 1000000; // Only full batches may dispatch.
    SuffixBatcher batcher(batched, &pool, opts);
    const Tensor a = random_tensor(net.input_shape(), 3);
    const Tensor b = random_tensor(net.input_shape(), 4);
    RecordingClient client;
    batcher.submit(&a, &client, 0, nullptr);
    batcher.submit(&b, &client, 1, nullptr);
    batcher.drain();
    ASSERT_EQ(client.tokens.size(), 2u);
    const SuffixBatchStats stats = batcher.stats();
    EXPECT_EQ(stats.items, 2);
    EXPECT_EQ(stats.batches, 1);
    ASSERT_EQ(stats.occupancy.size(), 2u);
    EXPECT_EQ(stats.occupancy[1], 1);
    // Results bit-identical to unbatched plan execution.
    for (size_t i = 0; i < client.tokens.size(); ++i) {
        const Tensor &in = client.tokens[i] == 0 ? a : b;
        EXPECT_EQ(client.digests[i],
                  tensor_digest(full.forward(in)));
    }
}

TEST(SuffixBatcher, PartialBatchDispatchesByDelayTimer)
{
    Network net = small_net();
    ExecutionPlan full(net);
    BatchedExecutionPlan batched(full, /*max_batch=*/8);
    ThreadPool pool(2);
    SuffixBatchOptions opts;
    opts.enabled = true;
    opts.max_batch = 8;
    opts.max_delay_us = 200;
    SuffixBatcher batcher(batched, &pool, opts);
    const Tensor a = random_tensor(net.input_shape(), 5);
    RecordingClient client;
    batcher.submit(&a, &client, 0, nullptr);
    // No flush: the delay timer alone must dispatch the lone item.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(30);
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(client.mutex);
            if (!client.tokens.empty()) {
                break;
            }
        }
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "timer never dispatched the partial batch";
        std::this_thread::yield();
    }
    batcher.drain();
    const SuffixBatchStats stats = batcher.stats();
    EXPECT_EQ(stats.items, 1);
    EXPECT_EQ(stats.batches, 1);
    EXPECT_EQ(stats.occupancy[0], 1);
}

TEST(SuffixBatcher, InlineModeRunsBatchOfOne)
{
    Network net = small_net();
    ExecutionPlan full(net);
    BatchedExecutionPlan batched(full, /*max_batch=*/4);
    SuffixBatchOptions opts;
    opts.enabled = true;
    opts.max_batch = 4;
    SuffixBatcher batcher(batched, /*pool=*/nullptr, opts);
    const Tensor a = random_tensor(net.input_shape(), 6);
    RecordingClient client;
    batcher.submit(&a, &client, 7, nullptr);
    // Inline: delivered synchronously, before drain.
    ASSERT_EQ(client.tokens.size(), 1u);
    EXPECT_EQ(client.tokens[0], 7);
    EXPECT_EQ(client.digests[0], tensor_digest(full.forward(a)));
    EXPECT_EQ(batcher.stats().batches, 1);
    EXPECT_EQ(batcher.stats().occupancy[0], 1);
}

// --------------------------------------------------------------------
// Executor-level digest identity

AmcOptions
small_amc()
{
    AmcOptions opts;
    opts.search_radius = 10;
    return opts;
}

/**
 * The acceptance sweep: per-stream digests with suffix batching are
 * bit-identical to unbatched execution for every scenario kind in
 * the serving set, every policy, and both CNN kernels.
 */
TEST(SuffixBatchSweep, BatchedDigestsMatchUnbatchedEverywhere)
{
    Network net = small_net();
    const std::vector<Sequence> streams =
        multi_stream_set(/*seed=*/7, /*num_streams=*/5,
                         /*frames_per_stream=*/4, /*size=*/96);
    const std::vector<std::string> policies = {
        "every_frame",
        "static:interval=3",
        "adaptive_error:th=0.05,max_gap=6",
    };
    const std::vector<ConvKernel> kernels = {ConvKernel::kIm2colGemm,
                                             ConvKernel::kDirect};
    for (const std::string &policy : policies) {
        for (const ConvKernel kernel : kernels) {
            auto options = [&](bool batch, i64 threads) {
                StreamExecutorOptions o;
                o.num_threads = threads;
                o.pipeline_depth = 3;
                o.amc = small_amc();
                o.amc.plan.conv_kernel = kernel;
                o.make_policy = [policy](i64) {
                    return PolicyRegistry::instance().make(policy);
                };
                o.suffix_batch.enabled = batch;
                o.suffix_batch.max_batch = 4;
                o.suffix_batch.max_delay_us = 200;
                return o;
            };
            StreamExecutor serial(net, options(false, 1));
            StreamExecutor batched(net, options(true, 4));
            const BatchResult a = serial.run(streams);
            const BatchResult b = batched.run(streams);
            ASSERT_EQ(a.streams.size(), b.streams.size());
            for (size_t i = 0; i < a.streams.size(); ++i) {
                EXPECT_EQ(a.streams[i].digest, b.streams[i].digest)
                    << "policy " << policy << ", kernel "
                    << conv_kernel_name(kernel) << ", stream "
                    << a.streams[i].name;
            }
            const SuffixBatchStats stats =
                batched.suffix_batch_stats();
            EXPECT_EQ(stats.items,
                      static_cast<i64>(streams.size()) * 4)
                << "every suffix must route through the batcher";
        }
    }
}

/** Batching without pipelining (depth 1) still batches across streams. */
TEST(SuffixBatchSweep, DepthOneStillBatchesAcrossStreams)
{
    Network net = small_net();
    const std::vector<Sequence> streams =
        multi_stream_set(/*seed=*/9, /*num_streams=*/4,
                         /*frames_per_stream=*/3, /*size=*/96);
    auto options = [&](bool batch, i64 threads, i64 depth) {
        StreamExecutorOptions o;
        o.num_threads = threads;
        o.pipeline_depth = depth;
        o.amc = small_amc();
        o.suffix_batch.enabled = batch;
        o.suffix_batch.max_batch = 4;
        return o;
    };
    StreamExecutor serial(net, options(false, 1, 1));
    StreamExecutor batched(net, options(true, 4, 1));
    EXPECT_EQ(serial.run(streams).digest(),
              batched.run(streams).digest());
    EXPECT_EQ(batched.suffix_batch_stats().items,
              static_cast<i64>(streams.size()) * 3);
}

// --------------------------------------------------------------------
// Engine-level batch=auto

TEST(EngineBatch, SpecValidation)
{
    Network net = small_net();
    EngineConfig config;
    config.batch = "bogus";
    EXPECT_THROW(Engine(net, config), ConfigError);
    config.batch = "auto:max=0";
    EXPECT_THROW(Engine(net, config), ConfigError);
    config.batch = "auto:max=100000";
    EXPECT_THROW(Engine(net, config), ConfigError);
    config.batch = "auto:delay_us=-1";
    EXPECT_THROW(Engine(net, config), ConfigError);
    config.batch = "auto:maxx=4";
    EXPECT_THROW(Engine(net, config), ConfigError);
    config.batch = "off:max=4";
    EXPECT_THROW(Engine(net, config), ConfigError);
    config.batch = "auto:max=4,delay_us=100";
    EXPECT_NO_THROW(Engine(net, config));
}

TEST(EngineBatch, BatchRunMatchesUnbatchedAndReportsOccupancy)
{
    Network net = small_net();
    const std::vector<Sequence> streams =
        multi_stream_set(/*seed=*/15, /*num_streams=*/4,
                         /*frames_per_stream=*/4, /*size=*/96);
    EngineConfig off;
    off.policy = "static:interval=3";
    off.search_radius = 10;
    off.num_threads = 1;
    off.pipeline_depth = 1;
    EngineConfig on = off;
    on.batch = "auto:max=4,delay_us=200";
    on.num_threads = 4;
    on.pipeline_depth = 3;
    Engine unbatched(net, off);
    Engine batched(net, on);
    const RunReport a = unbatched.run(streams);
    const RunReport b = batched.run(streams);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(b.batch, "auto:max=4,delay_us=200");
    EXPECT_EQ(b.batching.items, b.frames);
    EXPECT_GE(b.batching.batches, 1);
    EXPECT_LE(b.batching.batches, b.batching.items);
    EXPECT_GE(b.batching.mean_occupancy(), 1.0);
    // Occupancy appears in the JSON document.
    EXPECT_NE(b.to_json().find("suffix_batching"), std::string::npos);
    EXPECT_NE(b.to_json().find("occupancy_histogram"),
              std::string::npos);
    // The unbatched engine reports empty batching stats.
    EXPECT_EQ(a.batch, "off");
    EXPECT_EQ(a.batching.items, 0);
}

TEST(EngineBatch, SessionsMatchUnbatchedSessions)
{
    Network net = small_net();
    const std::vector<Sequence> streams =
        multi_stream_set(/*seed=*/23, /*num_streams=*/3,
                         /*frames_per_stream=*/4, /*size=*/96);
    EngineConfig off;
    off.policy = "adaptive_error:th=0.05,max_gap=6";
    off.search_radius = 10;
    off.num_threads = 1;
    off.pipeline_depth = 1;
    EngineConfig on = off;
    on.batch = "auto:max=3,delay_us=200";
    on.num_threads = 3;
    on.pipeline_depth = 2;
    Engine unbatched(net, off);
    Engine batched(net, on);
    // Interleave submissions round-robin across sessions, the way
    // frames actually arrive from concurrent feeds.
    for (Engine *engine : {&unbatched, &batched}) {
        for (size_t f = 0; f < streams[0].frames.size(); ++f) {
            for (size_t s = 0; s < streams.size(); ++s) {
                engine->session("cam" + std::to_string(s))
                    .submit(streams[s].frames[f].image);
            }
        }
    }
    const RunReport a = unbatched.report();
    const RunReport b = batched.report();
    ASSERT_EQ(a.streams.size(), b.streams.size());
    for (size_t i = 0; i < a.streams.size(); ++i) {
        EXPECT_EQ(a.streams[i].digest, b.streams[i].digest)
            << "session " << a.streams[i].name;
    }
    EXPECT_EQ(b.batching.items, b.frames);
}

TEST(EngineBatch, InlineEngineBatchesOfOneMatch)
{
    Network net = small_net();
    const std::vector<Sequence> streams =
        multi_stream_set(/*seed=*/31, /*num_streams=*/2,
                         /*frames_per_stream=*/3, /*size=*/96);
    EngineConfig off;
    off.num_threads = 1;
    off.pipeline_depth = 1;
    off.search_radius = 10;
    EngineConfig on = off;
    on.batch = "auto";
    Engine unbatched(net, off);
    Engine batched(net, on);
    const RunReport a = unbatched.run(streams);
    const RunReport b = batched.run(streams);
    EXPECT_EQ(a.digest, b.digest);
    // No pool: every batch is a batch of 1, executed inline.
    EXPECT_EQ(b.batching.items, b.batching.batches);
    EXPECT_DOUBLE_EQ(b.batching.mean_occupancy(), 1.0);
}

TEST(EngineBatch, ResetThenResubmitWorks)
{
    Network net = small_net();
    const std::vector<Sequence> streams =
        multi_stream_set(/*seed=*/37, /*num_streams=*/2,
                         /*frames_per_stream=*/3, /*size=*/96);
    EngineConfig config;
    config.batch = "auto:max=2,delay_us=100";
    config.num_threads = 2;
    config.search_radius = 10;
    Engine engine(net, config);
    const RunReport first = engine.run(streams);
    engine.reset();
    const RunReport second = engine.run(streams);
    EXPECT_EQ(first.digest, second.digest);
    EXPECT_EQ(second.batching.items, second.frames);
}

/**
 * The allocation half of the acceptance bar, end to end: with
 * batching enabled, steady-state predicted frames still perform zero
 * tensor-buffer allocations from ingest through batched suffix to
 * commit.
 */
TEST(EngineBatch, SteadyStatePredictedFramesAllocateNothing)
{
    Network net = small_net();
    StreamExecutorOptions opts;
    opts.num_threads = 1; // Inline: the global counter stays ours.
    opts.pipeline_depth = 3;
    opts.amc = small_amc();
    opts.make_policy = [](i64) {
        return std::make_unique<StaticRatePolicy>(1000);
    };
    opts.suffix_batch.enabled = true;
    opts.suffix_batch.max_batch = 4;
    StreamExecutor exec(net, opts);

    const std::vector<Sequence> warmup =
        multi_stream_set(/*seed=*/13, 1, 3, 96);
    const std::vector<Sequence> steady =
        multi_stream_set(/*seed=*/13, 1, 6, 96);
    exec.run(warmup); // Key frame + slot/arena growth.

    const u64 before = Tensor::buffer_allocations();
    const BatchResult batch = exec.run(steady);
    const u64 after = Tensor::buffer_allocations();
    EXPECT_EQ(batch.total_key_frames(), 0)
        << "steady-state run unexpectedly re-keyed";
    EXPECT_EQ(batch.total_frames(), 6);
    EXPECT_EQ(after - before, 0u)
        << "batched predicted frames allocated tensor buffers";
}

} // namespace
} // namespace eva2
