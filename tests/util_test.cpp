/**
 * @file
 * Unit tests for the util module: deterministic RNG, fixed-point
 * arithmetic, and numeric helpers.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/fixed_point.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace eva2 {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const i64 v = rng.uniform_int(0, 7);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 7);
        saw_lo |= v == 0;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ForkedStreamsIndependent)
{
    Rng root(5);
    Rng a = root.fork(0);
    Rng b = root.fork(1);
    EXPECT_NE(a.next_u64(), b.next_u64());
    // Forking again with the same tag from an identical root matches.
    Rng root2(5);
    Rng a2 = root2.fork(0);
    Rng a3(5);
    EXPECT_EQ(Rng(5).fork(0).next_u64(), a3.fork(0).next_u64());
    (void)a2;
}

TEST(Rng, ChanceProbability)
{
    Rng rng(13);
    int hits = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        hits += rng.chance(0.25) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Fixed, RoundTripExactValues)
{
    for (double v : {0.0, 1.0, -1.0, 0.5, -0.25, 17.125, -100.0}) {
        EXPECT_DOUBLE_EQ(Q88::from_double(v).to_double(), v);
    }
}

TEST(Fixed, QuantizationWithinResolution)
{
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        const double v = rng.uniform(-100.0, 100.0);
        const double q = Q88::from_double(v).to_double();
        EXPECT_NEAR(q, v, Q88::resolution() / 2.0 + 1e-12);
    }
}

TEST(Fixed, SaturatesAtLimits)
{
    EXPECT_EQ(Q88::from_double(1e9).raw(), Q88::max_raw);
    EXPECT_EQ(Q88::from_double(-1e9).raw(), Q88::min_raw);
}

TEST(Fixed, AdditionMatchesDouble)
{
    Rng rng(4);
    for (int i = 0; i < 200; ++i) {
        const double a = rng.uniform(-50.0, 50.0);
        const double b = rng.uniform(-50.0, 50.0);
        const double got =
            (Q88::from_double(a) + Q88::from_double(b)).to_double();
        EXPECT_NEAR(got, a + b, 2.0 * Q88::resolution());
    }
}

TEST(Fixed, MultiplicationMatchesDouble)
{
    Rng rng(6);
    for (int i = 0; i < 200; ++i) {
        const double a = rng.uniform(-8.0, 8.0);
        const double b = rng.uniform(-8.0, 8.0);
        const double got =
            (Q88::from_double(a) * Q88::from_double(b)).to_double();
        EXPECT_NEAR(got, a * b, 0.1);
    }
}

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(ceil_div(10, 5), 2);
    EXPECT_EQ(ceil_div(11, 5), 3);
    EXPECT_EQ(ceil_div(0, 5), 0);
    EXPECT_EQ(ceil_div(1, 5), 1);
}

TEST(MathUtil, ConvOutSize)
{
    // AlexNet conv1: 227x227, k=11, s=4, p=0 -> 55.
    EXPECT_EQ(conv_out_size(227, 11, 4, 0), 55);
    // VGG conv: 224, k=3, s=1, p=1 -> 224.
    EXPECT_EQ(conv_out_size(224, 3, 1, 1), 224);
    // Pool: 224, k=2, s=2 -> 112.
    EXPECT_EQ(conv_out_size(224, 2, 2, 0), 112);
}

TEST(MathUtil, SparsityFraction)
{
    std::vector<float> xs{0.0f, 0.0f, 1.0f, 0.0f};
    EXPECT_DOUBLE_EQ(sparsity(xs), 0.75);
}

TEST(MathUtil, RmsDiff)
{
    std::vector<float> a{1.0f, 2.0f};
    std::vector<float> b{1.0f, 4.0f};
    EXPECT_NEAR(rms_diff(a, b), std::sqrt(2.0), 1e-9);
}

/** Property sweep: Q-format round trips over formats. */
template <typename F>
void
check_format_roundtrip()
{
    Rng rng(77);
    const double limit = static_cast<double>(F::max_raw) /
                         static_cast<double>(F::one_raw);
    for (int i = 0; i < 200; ++i) {
        const double v = rng.uniform(-limit, limit);
        EXPECT_NEAR(F::from_double(v).to_double(), v,
                    F::resolution() / 2.0 + 1e-12);
    }
}

TEST(Fixed, RoundTripAllFormats)
{
    check_format_roundtrip<Fixed<8, 8>>();
    check_format_roundtrip<Fixed<2, 8>>();
    check_format_roundtrip<Fixed<4, 12>>();
    check_format_roundtrip<Fixed<12, 4>>();
    check_format_roundtrip<Fixed<8, 0>>();
    check_format_roundtrip<Fixed<16, 0>>();
}

TEST(Fixed, IntegerOnlyFormatsMultiplyWithoutUb)
{
    // Regression: operator* computed `1 << (FracBits - 1)` — a shift
    // by -1 (undefined) for the FracBits == 0 formats the
    // static_assert permits.
    using I8 = Fixed<8, 0>;
    EXPECT_EQ((I8::from_double(5) * I8::from_double(7)).to_double(),
              35.0);
    EXPECT_EQ((I8::from_double(-6) * I8::from_double(4)).to_double(),
              -24.0);
    // Min/max products saturate instead of wrapping.
    using I16 = Fixed<16, 0>;
    EXPECT_EQ((I16::max_value() * I16::max_value()).raw(),
              I16::max_raw);
    EXPECT_EQ((I16::min_value() * I16::min_value()).raw(),
              I16::max_raw);
    EXPECT_EQ((I16::max_value() * I16::min_value()).raw(),
              I16::min_raw);
}

TEST(Fixed, FractionalMinMaxProductsSaturate)
{
    EXPECT_EQ((Q88::max_value() * Q88::max_value()).raw(),
              Q88::max_raw);
    EXPECT_EQ((Q88::min_value() * Q88::min_value()).raw(),
              Q88::max_raw);
    EXPECT_EQ((Q88::max_value() * Q88::min_value()).raw(),
              Q88::min_raw);
    // Saturated addition/subtraction at the rails.
    EXPECT_EQ((Q88::max_value() + Q88::max_value()).raw(),
              Q88::max_raw);
    EXPECT_EQ((Q88::min_value() - Q88::max_value()).raw(),
              Q88::min_raw);
}

TEST(Fixed, FromDoubleIsNanSafe)
{
    // Regression: NaN used to flow through std::clamp and a
    // static_cast<i32> — both undefined on NaN. It now quantizes to
    // zero, like a value with no representable magnitude.
    using I16 = Fixed<16, 0>;
    EXPECT_EQ(Q88::from_double(std::nan("")).raw(), 0);
    EXPECT_EQ(I16::from_double(-std::nan("")).raw(), 0);
    // Infinities saturate like any out-of-range magnitude.
    EXPECT_EQ(Q88::from_double(
                  std::numeric_limits<double>::infinity())
                  .raw(),
              Q88::max_raw);
    EXPECT_EQ(Q88::from_double(
                  -std::numeric_limits<double>::infinity())
                  .raw(),
              Q88::min_raw);
}

TEST(Fixed, QFracCoversTheWarpEngineFractionDomain)
{
    // hw/warp_engine_sim rounds bilinear fractions to raw values in
    // [0, 256] — [0, 1] *inclusive*, since the carry case rounds to
    // exactly 1.0 before renormalizing into the integer coordinate.
    // QFrac therefore needs two integer bits: Fixed<1, 8> saturates
    // at raw 255 and cannot represent the carry.
    EXPECT_EQ(QFrac::from_double(0.0).raw(), 0);
    EXPECT_EQ(QFrac::from_double(1.0).raw(), 256);
    EXPECT_DOUBLE_EQ(QFrac::from_double(1.0).to_double(), 1.0);
    EXPECT_GE(static_cast<i64>(QFrac::max_raw), 256);
    EXPECT_DOUBLE_EQ(QFrac::resolution(), 1.0 / 256.0);
    // The 8-bit fraction grid round-trips exactly.
    for (i64 f = 0; f <= 256; ++f) {
        const double v = static_cast<double>(f) / 256.0;
        EXPECT_EQ(QFrac::from_double(v).raw(), f);
    }
    // Fixed<1, 8> demonstrably cannot hold the carry value.
    using QNarrow = Fixed<1, 8>;
    EXPECT_LT(static_cast<i64>(QNarrow::max_raw), 256);
}

} // namespace
} // namespace eva2
