/**
 * @file
 * Unit tests for the parallel runtime: ThreadPool task completion and
 * exception propagation, ParallelFor edge cases and determinism, and
 * StreamExecutor serial-vs-parallel bit-identical outputs.
 *
 * Pools are constructed with explicit thread counts so the parallel
 * code paths are exercised even on single-core CI machines.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "cnn/model_zoo.h"
#include "runtime/parallel_for.h"
#include "runtime/stream_executor.h"
#include "runtime/thread_pool.h"
#include "video/scenarios.h"

namespace eva2 {
namespace {

TEST(ThreadPool, CompletesAllSubmittedTasks)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::atomic<i64> sum{0};
    std::vector<std::future<void>> futures;
    for (i64 i = 1; i <= 100; ++i) {
        futures.push_back(pool.submit([&sum, i]() {
            sum.fetch_add(i);
        }));
    }
    for (std::future<void> &f : futures) {
        f.get();
    }
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, SubmitReturnsTaskValue)
{
    ThreadPool pool(2);
    std::future<i64> f = pool.submit([]() -> i64 { return 41 + 1; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    std::future<void> f = pool.submit([]() {
        throw std::runtime_error("task failed");
    });
    EXPECT_THROW(f.get(), std::runtime_error);
    // The worker survives a throwing task.
    EXPECT_EQ(pool.submit([]() -> i64 { return 7; }).get(), 7);
}

TEST(ThreadPool, PendingTasksRunBeforeShutdown)
{
    std::atomic<i64> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i) {
            pool.enqueue_detached([&ran]() { ran.fetch_add(1); });
        }
    } // Destructor joins after draining the queue.
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, WorkerThreadsAreMarked)
{
    EXPECT_FALSE(ThreadPool::on_worker_thread());
    ThreadPool pool(1);
    EXPECT_TRUE(pool.submit([]() {
        return ThreadPool::on_worker_thread();
    }).get());
}

TEST(ParallelFor, EmptyRangeNeverCallsBody)
{
    ThreadPool pool(4);
    ParallelForOptions opts;
    opts.pool = &pool;
    std::atomic<i64> calls{0};
    parallel_for(0, 0, [&](i64) { calls.fetch_add(1); }, opts);
    parallel_for(5, 5, [&](i64) { calls.fetch_add(1); }, opts);
    parallel_for(7, 3, [&](i64) { calls.fetch_add(1); }, opts);
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, FewerItemsThanThreads)
{
    ThreadPool pool(8);
    ParallelForOptions opts;
    opts.pool = &pool;
    std::vector<i64> hits(3, 0);
    parallel_for(0, 3, [&](i64 i) {
        hits[static_cast<size_t>(i)] += 1;
    }, opts);
    EXPECT_EQ(hits, (std::vector<i64>{1, 1, 1}));
}

TEST(ParallelFor, EveryIndexProcessedExactlyOnce)
{
    ThreadPool pool(4);
    ParallelForOptions opts;
    opts.pool = &pool;
    const i64 n = 1000;
    std::vector<std::atomic<i64>> hits(n);
    parallel_for(3, 3 + n, [&](i64 i) {
        hits[static_cast<size_t>(i - 3)].fetch_add(1);
    }, opts);
    for (i64 i = 0; i < n; ++i) {
        EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
            << "index " << i;
    }
}

TEST(ParallelFor, GrainLargerThanRange)
{
    ThreadPool pool(4);
    ParallelForOptions opts;
    opts.pool = &pool;
    opts.grain = 1000;
    std::atomic<i64> sum{0};
    parallel_for(0, 10, [&](i64 i) { sum.fetch_add(i); }, opts);
    EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelFor, ExceptionRethrownOnCaller)
{
    ThreadPool pool(4);
    ParallelForOptions opts;
    opts.pool = &pool;
    EXPECT_THROW(
        parallel_for(0, 100, [](i64 i) {
            if (i == 57) {
                throw std::runtime_error("bad index");
            }
        }, opts),
        std::runtime_error);
}

TEST(ParallelFor, NestedCallRunsSeriallyWithoutDeadlock)
{
    ThreadPool pool(2);
    ParallelForOptions opts;
    opts.pool = &pool;
    std::atomic<i64> inner_total{0};
    parallel_for(0, 8, [&](i64) {
        // Iterations land on pool workers (where the inner call must
        // degrade to an inline serial loop rather than re-enter the
        // busy pool) and on the participating caller thread (where it
        // may fan out again); either way it must complete correctly.
        parallel_for(0, 10, [&](i64 j) { inner_total.fetch_add(j); },
                     opts);
    }, opts);
    EXPECT_EQ(inner_total.load(), 8 * 45);
}

/** Shared fixture data: a small network and a multi-stream workload. */
struct StreamFixture
{
    Network net;
    std::vector<Sequence> streams;

    StreamFixture()
        : net(build_scaled(alexnet_spec())),
          streams(multi_stream_set(/*seed=*/9, /*num_streams=*/3,
                                   /*frames_per_stream=*/4))
    {
    }

    StreamExecutorOptions
    options(i64 threads) const
    {
        StreamExecutorOptions opts;
        opts.num_threads = threads;
        opts.store_outputs = true;
        opts.make_policy = [](i64) {
            return std::make_unique<StaticRatePolicy>(2);
        };
        return opts;
    }
};

TEST(StreamExecutor, ParallelOutputsBitIdenticalToSerial)
{
    StreamFixture fx;
    StreamExecutor serial(fx.net, fx.options(1));
    StreamExecutor parallel(fx.net, fx.options(4));

    const BatchResult a = serial.run(fx.streams);
    const BatchResult b = parallel.run(fx.streams);

    ASSERT_EQ(a.streams.size(), fx.streams.size());
    ASSERT_EQ(b.streams.size(), fx.streams.size());
    EXPECT_EQ(a.digest(), b.digest());
    for (size_t i = 0; i < a.streams.size(); ++i) {
        const StreamResult &sa = a.streams[i];
        const StreamResult &sb = b.streams[i];
        EXPECT_EQ(sa.name, sb.name);
        EXPECT_EQ(sa.stats.frames, sb.stats.frames);
        EXPECT_EQ(sa.stats.key_frames, sb.stats.key_frames);
        EXPECT_EQ(sa.me_add_ops, sb.me_add_ops);
        ASSERT_EQ(sa.frames.size(), sb.frames.size());
        for (size_t f = 0; f < sa.frames.size(); ++f) {
            EXPECT_EQ(sa.frames[f].is_key, sb.frames[f].is_key);
            EXPECT_EQ(sa.frames[f].top1, sb.frames[f].top1);
            EXPECT_EQ(sa.frames[f].output_digest,
                      sb.frames[f].output_digest);
        }
        ASSERT_EQ(sa.outputs.size(), sb.outputs.size());
        for (size_t f = 0; f < sa.outputs.size(); ++f) {
            EXPECT_TRUE(sa.outputs[f] == sb.outputs[f])
                << "stream " << i << " frame " << f;
        }
    }
}

TEST(StreamExecutor, AggregationMatchesPerStreamStats)
{
    StreamFixture fx;
    StreamExecutor exec(fx.net, fx.options(2));
    const BatchResult batch = exec.run(fx.streams);

    EXPECT_EQ(batch.total_frames(), 3 * 4);
    i64 keys = 0;
    for (const StreamResult &s : batch.streams) {
        EXPECT_EQ(s.stats.frames, 4);
        EXPECT_GE(s.stats.key_frames, 1); // First frame is always key.
        keys += s.stats.key_frames;
    }
    EXPECT_EQ(batch.total_key_frames(), keys);
    EXPECT_GT(batch.key_fraction(), 0.0);
    EXPECT_LE(batch.key_fraction(), 1.0);
    EXPECT_EQ(batch.labels().size(), static_cast<size_t>(12));
    EXPECT_GT(batch.wall_ms, 0.0);
    EXPECT_GT(batch.frames_per_second(), 0.0);

    const double acc = batch_top1_accuracy(batch, fx.streams);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
}

TEST(StreamExecutor, StatePersistsAcrossRunsAndResets)
{
    StreamFixture fx;
    StreamExecutor exec(fx.net, fx.options(1));
    const BatchResult first = exec.run(fx.streams);
    // Pipelines keep their key frames, so a second pass over the same
    // frames needs no initial key frame; stats report only the run's
    // delta.
    const BatchResult second = exec.run(fx.streams);
    EXPECT_EQ(first.total_frames(), second.total_frames());
    for (const StreamResult &s : second.streams) {
        EXPECT_EQ(s.stats.frames, 4);
    }

    // After a reset the executor reproduces the first run exactly.
    exec.reset_streams();
    const BatchResult again = exec.run(fx.streams);
    EXPECT_EQ(first.digest(), again.digest());
}

TEST(StreamExecutor, StreamFailurePropagatesWithoutCrashing)
{
    StreamFixture fx;
    StreamExecutor exec(fx.net, fx.options(4));
    // A stream whose frames don't match the network input makes its
    // pipeline throw; run() must surface that after every in-flight
    // stream task has finished (no use-after-free of streams or
    // pipelines), and the executor must stay usable.
    std::vector<Sequence> bad = fx.streams;
    bad[1].frames[0].image = Tensor(1, 8, 8);
    EXPECT_THROW(exec.run(bad), ConfigError);
    exec.reset_streams();
    const BatchResult batch = exec.run(fx.streams);
    EXPECT_EQ(batch.total_frames(), 3 * 4);
}

TEST(StreamExecutor, PipelinedFramesBitIdenticalAcrossDepthsAndPools)
{
    // The stage scheduler's pipelined execution (fronts serialized,
    // suffixes fanned out, commits in order) must be bit-identical
    // to the legacy serial frame loop for every depth/pool shape.
    // Run under TSan in CI, this is also the data-race gate for the
    // scheduler's synchronization.
    StreamFixture fx;
    StreamExecutorOptions serial_opts = fx.options(1);
    serial_opts.pipeline_depth = 1;
    StreamExecutor serial(fx.net, serial_opts);
    const BatchResult reference = serial.run(fx.streams);

    for (const i64 depth : {2, 3, 5}) {
        for (const i64 threads : {1, 2, 4}) {
            StreamExecutorOptions opts = fx.options(threads);
            opts.pipeline_depth = depth;
            StreamExecutor pipelined(fx.net, opts);
            const BatchResult got = pipelined.run(fx.streams);
            EXPECT_EQ(got.digest(), reference.digest())
                << "depth " << depth << ", threads " << threads;
            ASSERT_EQ(got.streams.size(), reference.streams.size());
            for (size_t i = 0; i < got.streams.size(); ++i) {
                EXPECT_EQ(got.streams[i].frames.size(),
                          reference.streams[i].frames.size());
                EXPECT_EQ(got.streams[i].me_add_ops,
                          reference.streams[i].me_add_ops);
            }
        }
    }
}

TEST(StreamExecutor, PipelinedFailurePropagatesAndExecutorRecovers)
{
    StreamFixture fx;
    StreamExecutorOptions opts = fx.options(4);
    opts.pipeline_depth = 3;
    StreamExecutor exec(fx.net, opts);
    std::vector<Sequence> bad = fx.streams;
    bad[1].frames[0].image = Tensor(1, 8, 8);
    EXPECT_THROW(exec.run(bad), ConfigError);
    exec.reset_streams();
    const BatchResult batch = exec.run(fx.streams);
    EXPECT_EQ(batch.total_frames(), 3 * 4);
}

TEST(TensorDigest, SensitiveToValuesAndShape)
{
    Tensor a(1, 2, 2);
    Tensor b(1, 2, 2);
    EXPECT_EQ(tensor_digest(a), tensor_digest(b));
    b.at(0, 1, 1) = 1e-7f;
    EXPECT_NE(tensor_digest(a), tensor_digest(b));
    Tensor c(2, 2, 1); // Same element count, different shape.
    EXPECT_NE(tensor_digest(a), tensor_digest(c));
}

} // namespace
} // namespace eva2
