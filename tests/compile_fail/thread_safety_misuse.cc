/**
 * @file
 * Negative control for the thread-safety gate: this TU is valid C++
 * (it compiles clean without the analysis) but reads and writes a
 * GUARDED_BY field without holding its mutex, so compiling it with
 * `-Wthread-safety -Werror=thread-safety` MUST fail. CTest registers
 * that inverted compile (WILL_FAIL) plus a no-flags positive control
 * on clang builds — if the annotation macros ever silently degrade to
 * no-ops under clang, the inverted test goes green-on-compile and
 * fails, catching the broken gate itself.
 *
 * Deliberately not part of the library build.
 */
#include "util/mutex.h"

namespace eva2_compile_fail {

class Counter
{
  public:
    void
    increment()
    {
        eva2::MutexLock lock(mu_);
        ++value_; // Correct: held.
    }

    int
    read_unlocked() const
    {
        return value_; // BAD: guarded read without mu_.
    }

    void
    write_unlocked(int v)
    {
        value_ = v; // BAD: guarded write without mu_.
    }

  private:
    mutable eva2::Mutex mu_;
    int value_ GUARDED_BY(mu_) = 0;
};

} // namespace eva2_compile_fail
