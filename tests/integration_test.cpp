/**
 * @file
 * Cross-module integration tests: end-to-end AMC behaviour on scripted
 * scenes, adaptive policy dynamics, and the qualitative orderings the
 * paper's evaluation rests on.
 */
#include <gtest/gtest.h>

#include "cnn/model_zoo.h"
#include "eval/classifier.h"
#include "eval/detector.h"
#include "eval/experiment.h"
#include "hw/vpu.h"
#include "tensor/tensor_ops.h"
#include "video/scenarios.h"

namespace eva2 {
namespace {

TEST(Integration, ClassificationMemoizationDegradesGracefully)
{
    // Section IV-D: classification labels change slowly, so stale
    // activations keep most of the accuracy.
    Network net = build_scaled(alexnet_spec());
    PrototypeClassifier clf = PrototypeClassifier::calibrate(net);
    auto seqs = classification_test_set(21, 6, 12, 128);
    const double base = baseline_classification_accuracy(net, clf, seqs);
    GapClassificationResult stale = classification_at_gap(
        net, clf, seqs, 6, MotionSource::kOldKey,
        net.find_layer("pool5"), 4);
    EXPECT_GT(base, 0.55);
    EXPECT_GT(stale.oracle_agreement, 0.5)
        << "most stale labels still match the oracle";
}

TEST(Integration, AdaptiveThresholdControlsKeyRate)
{
    // Looser thresholds must produce fewer key frames (the Table I /
    // Figure 15 control knob).
    NetworkSpec spec = fasterm_spec();
    ScaledBuildOptions opts;
    opts.input = Shape{1, 192, 192};
    Network net = build_scaled(spec, opts);
    ActivationDetector det = ActivationDetector::calibrate(
        net, net.find_layer(spec.late_target));
    auto seqs = detection_test_set(22, 3, 10, 192);

    AmcOptions amc;
    amc.target_choice = TargetChoice::kExplicit;
    amc.explicit_target = net.find_layer(spec.late_target);

    auto run_with_threshold = [&](double threshold) {
        return run_adaptive_detection(
            net, det, seqs,
            [threshold] {
                return std::make_unique<BlockErrorPolicy>(threshold);
            },
            amc);
    };
    AdaptiveRunResult tight = run_with_threshold(0.005);
    AdaptiveRunResult loose = run_with_threshold(0.2);
    EXPECT_GT(tight.key_fraction, loose.key_fraction);
    EXPECT_GT(tight.key_fraction, 0.3);
    EXPECT_LT(loose.key_fraction, 0.6);
}

TEST(Integration, StaticScenesNeedAlmostNoKeyFrames)
{
    NetworkSpec spec = fasterm_spec();
    ScaledBuildOptions opts;
    opts.input = Shape{1, 192, 192};
    Network net = build_scaled(spec, opts);
    AmcOptions amc;
    amc.target_choice = TargetChoice::kExplicit;
    amc.explicit_target = net.find_layer(spec.late_target);
    AmcPipeline p(net, std::make_unique<BlockErrorPolicy>(0.03), amc);
    SyntheticVideo video(static_scene(23, 192));
    for (i64 t = 0; t < 8; ++t) {
        p.process(video.render(t).image);
    }
    EXPECT_EQ(p.stats().key_frames, 1)
        << "only the first frame of a static scene should be a key";
}

TEST(Integration, ChaoticScenesNeedMoreKeyFramesThanCalm)
{
    NetworkSpec spec = fasterm_spec();
    ScaledBuildOptions opts;
    opts.input = Shape{1, 192, 192};
    Network net = build_scaled(spec, opts);
    AmcOptions amc;
    amc.target_choice = TargetChoice::kExplicit;
    amc.explicit_target = net.find_layer(spec.late_target);

    auto key_fraction_for = [&](const SceneConfig &cfg) {
        AmcPipeline p(net, std::make_unique<BlockErrorPolicy>(0.02), amc);
        SyntheticVideo video(cfg);
        for (i64 t = 0; t < 10; ++t) {
            p.process(video.render(t).image);
        }
        return p.stats().key_fraction();
    };
    const double calm = key_fraction_for(static_scene(24, 192));
    const double chaos = key_fraction_for(chaotic_scene(24, 192));
    EXPECT_GT(chaos, calm);
}

TEST(Integration, EnergyAccountingTracksMeasuredKeyRate)
{
    // The hw model consumes the key fraction the pipeline actually
    // measured; the average must sit between pred and key costs.
    NetworkSpec spec = fasterm_spec();
    ScaledBuildOptions opts;
    opts.input = Shape{1, 192, 192};
    Network net = build_scaled(spec, opts);
    ActivationDetector det = ActivationDetector::calibrate(
        net, net.find_layer(spec.late_target));
    auto seqs = detection_test_set(25, 2, 8, 192);
    AmcOptions amc;
    amc.target_choice = TargetChoice::kExplicit;
    amc.explicit_target = net.find_layer(spec.late_target);
    AdaptiveRunResult run = run_adaptive_detection(
        net, det, seqs,
        [] { return std::make_unique<BlockErrorPolicy>(0.05); }, amc);

    VpuReport report = vpu_report(spec);
    const double avg =
        report.average(run.key_fraction).total().energy_mj;
    EXPECT_GE(avg, report.pred.total().energy_mj);
    EXPECT_LE(avg, report.key.total().energy_mj);
    EXPECT_GT(report.energy_savings(run.key_fraction), 0.0);
}

TEST(Integration, WarpedOutputsFeedSuffixWithoutError)
{
    // Smoke across all three networks: a full adaptive run never
    // throws and produces well-formed outputs.
    for (const NetworkSpec &spec : paper_network_specs()) {
        ScaledBuildOptions opts;
        if (spec.task == VisionTask::kDetection) {
            opts.input = Shape{1, 192, 192};
        }
        Network net = build_scaled(spec, opts);
        AmcOptions amc;
        amc.target_choice = TargetChoice::kExplicit;
        amc.explicit_target = net.find_layer(spec.late_target);
        amc.motion_mode = spec.task == VisionTask::kClassification
                              ? MotionMode::kMemoization
                              : MotionMode::kCompensation;
        AmcPipeline p(net, std::make_unique<BlockErrorPolicy>(0.05, 8),
                      amc);
        SyntheticVideo video(
            panning_scene(26, 1.5, net.input_shape().h));
        for (i64 t = 0; t < 6; ++t) {
            AmcFrameResult r = p.process(video.render(t).image);
            EXPECT_GT(r.output.size(), 0) << spec.name;
            EXPECT_GT(r.target_activation.size(), 0) << spec.name;
        }
        EXPECT_EQ(p.stats().frames, 6);
    }
}

TEST(Integration, EarlyTargetSkipsLessThanLateTarget)
{
    // Table II context: the late target saves more prefix work.
    NetworkSpec spec = faster16_spec();
    Network net = build_scaled(spec);
    const i64 early = net.find_layer(spec.early_target);
    const i64 late = net.find_layer(spec.late_target);
    ASSERT_LT(early, late);
    EXPECT_LT(net.prefix_macs(early), net.prefix_macs(late));
}

TEST(Integration, InterpolationModesBothWork)
{
    // Section II-C3: bilinear vs nearest-neighbour. Both must produce
    // valid predictions; bilinear generally closer on fractional
    // motion.
    NetworkSpec spec = fasterm_spec();
    ScaledBuildOptions opts;
    opts.input = Shape{1, 192, 192};
    Network net = build_scaled(spec, opts);
    const i64 target = net.find_layer(spec.late_target);
    SceneConfig cfg;
    cfg.height = 192;
    cfg.width = 192;
    cfg.seed = 27;
    cfg.pan_vx = 1.5; // fractional cell motion at stride 16
    SyntheticVideo video(cfg);
    const Tensor key = video.render(0).image;
    const Tensor cur = video.render(4).image;
    const Tensor oracle = net.forward_prefix(cur, target);
    const Tensor bilinear = predict_target_activation(
        net, target, key, cur, MotionSource::kRfbme,
        InterpMode::kBilinear);
    const Tensor nearest = predict_target_activation(
        net, target, key, cur, MotionSource::kRfbme,
        InterpMode::kNearest);
    EXPECT_GT(bilinear.size(), 0);
    EXPECT_GT(nearest.size(), 0);
    EXPECT_LT(mean_abs_diff(bilinear, oracle),
              mean_abs_diff(nearest, oracle) * 1.5);
}

} // namespace
} // namespace eva2
