/**
 * @file
 * Tests for the cycle-level microarchitecture simulators: the diff
 * tile producer/consumer pipeline (rolling-sum RFBME, Figure 8) must
 * agree with the functional algorithm, and the warp engine's
 * fixed-point datapath (Figures 9-11) must agree with the float
 * reference to within Q8.8 precision while skipping zeros.
 */
#include <gtest/gtest.h>

#include "core/warp.h"
#include "hw/diff_tile_sim.h"
#include "hw/warp_engine_sim.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"
#include "video/synthetic_video.h"

namespace eva2 {
namespace {

Tensor
noise_frame(i64 h, i64 w, u64 seed)
{
    ValueNoise noise(seed, 9.0);
    Tensor t(1, h, w);
    for (i64 y = 0; y < h; ++y) {
        for (i64 x = 0; x < w; ++x) {
            t.at(0, y, x) = static_cast<float>(noise.sample(y, x));
        }
    }
    return t;
}

Tensor
sparse_activation(Shape s, double density, u64 seed)
{
    Tensor t(s);
    Rng rng(seed);
    for (i64 i = 0; i < t.size(); ++i) {
        if (rng.chance(density)) {
            t[i] = static_cast<float>(rng.uniform_int(1, 1500)) / 256.0f;
        }
    }
    return t;
}

/** Parameterized equivalence: hardware pipeline == functional RFBME. */
struct DiffTileCase
{
    i64 h;
    i64 w;
    RfbmeConfig cfg;
    u64 seed;
};

class DiffTileEquivalence : public ::testing::TestWithParam<DiffTileCase>
{
};

TEST_P(DiffTileEquivalence, MatchesFunctionalRfbme)
{
    const DiffTileCase &tc = GetParam();
    Tensor key = noise_frame(tc.h, tc.w, tc.seed);
    Tensor cur = translate(key, -1, 2);
    RfbmeResult sw = rfbme(key, cur, tc.cfg);
    DiffTileSimResult hw = simulate_diff_tile_pipeline(key, cur, tc.cfg);
    ASSERT_EQ(sw.field.height(), hw.field.height());
    ASSERT_EQ(sw.field.width(), hw.field.width());
    for (i64 y = 0; y < sw.field.height(); ++y) {
        for (i64 x = 0; x < sw.field.width(); ++x) {
            const size_t i =
                static_cast<size_t>(y * sw.field.width() + x);
            EXPECT_NEAR(sw.rf_errors[i], hw.rf_errors[i], 1e-9)
                << y << "," << x;
        }
    }
    EXPECT_NEAR(sw.total_error, hw.total_error, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DiffTileEquivalence,
    ::testing::Values(DiffTileCase{48, 48, {16, 8, 0, 8, 4}, 1},
                      DiffTileCase{64, 48, {24, 8, 8, 16, 8}, 2},
                      DiffTileCase{36, 36, {6, 2, 2, 4, 2}, 3},
                      DiffTileCase{64, 64, {32, 16, 16, 16, 8}, 4}));

TEST(DiffTileSim, CyclesAccumulate)
{
    Tensor key = noise_frame(64, 64, 5);
    Tensor cur = translate(key, 1, 1);
    RfbmeConfig cfg{16, 8, 0, 8, 4};
    DiffTileSimResult r = simulate_diff_tile_pipeline(key, cur, cfg);
    EXPECT_GT(r.producer_cycles, 0);
    EXPECT_GT(r.consumer_cycles, 0);
    EXPECT_GT(r.latency_ms(), 0.0);
    // A wider adder tree finishes the producer faster.
    DiffTileSimResult wide =
        simulate_diff_tile_pipeline(key, cur, cfg, 64);
    EXPECT_LT(wide.producer_cycles, r.producer_cycles);
    EXPECT_EQ(wide.consumer_cycles, r.consumer_cycles);
}

TEST(DiffTileSim, ConsumerReusesRollingSums)
{
    // The consumer's cycle count must be far below one-cycle-per-tile
    // -per-receptive-field (the exhaustive alternative).
    Tensor key = noise_frame(96, 96, 6);
    Tensor cur = translate(key, 2, -2);
    RfbmeConfig cfg{48, 16, 16, 16, 8};
    DiffTileSimResult r = simulate_diff_tile_pipeline(key, cur, cfg);
    const i64 offsets = 5 * 5;
    const i64 rfs = rfbme_out_size(96, cfg) * rfbme_out_size(96, cfg);
    const i64 tiles_per_rf = (48 / 16) * (48 / 16);
    const i64 exhaustive = offsets * rfs * tiles_per_rf;
    EXPECT_LT(r.consumer_cycles, exhaustive / 2);
}

TEST(InterpolateQ88, MatchesFloatReference)
{
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        const double v00 = rng.uniform(-10.0, 10.0);
        const double v01 = rng.uniform(-10.0, 10.0);
        const double v10 = rng.uniform(-10.0, 10.0);
        const double v11 = rng.uniform(-10.0, 10.0);
        const i32 fu = static_cast<i32>(rng.uniform_int(0, 256));
        const i32 fv = static_cast<i32>(rng.uniform_int(0, 256));
        const double u = fu / 256.0;
        const double v = fv / 256.0;
        const double expect = v00 * (1 - u) * (1 - v) +
                              v01 * (1 - u) * v + v10 * u * (1 - v) +
                              v11 * u * v;
        const i16 got = interpolate_q88(
            static_cast<i16>(Q88::from_double(v00).raw()),
            static_cast<i16>(Q88::from_double(v01).raw()),
            static_cast<i16>(Q88::from_double(v10).raw()),
            static_cast<i16>(Q88::from_double(v11).raw()), fu, fv);
        EXPECT_NEAR(Q88::from_raw(got).to_double(), expect,
                    3.0 * Q88::resolution());
    }
}

TEST(InterpolateQ88, CornersExact)
{
    const i16 a = Q88::from_double(1.5).raw();
    const i16 b = Q88::from_double(-2.25).raw();
    EXPECT_EQ(interpolate_q88(a, 0, 0, 0, 0, 0), a);
    EXPECT_EQ(interpolate_q88(0, a, 0, 0, 0, 256), a);
    EXPECT_EQ(interpolate_q88(0, 0, b, 0, 256, 0), b);
    EXPECT_EQ(interpolate_q88(0, 0, 0, b, 256, 256), b);
}

TEST(WarpEngineSim, MatchesFloatWarpWithinQuantization)
{
    Tensor act = sparse_activation({8, 12, 12}, 0.3, 8);
    RleActivation enc = rle_encode(act);
    // Fractional motion everywhere.
    MotionField field(12, 12);
    Rng rng(9);
    for (i64 y = 0; y < 12; ++y) {
        for (i64 x = 0; x < 12; ++x) {
            field.at(y, x) = Vec2{rng.uniform(-20.0, 20.0),
                                  rng.uniform(-20.0, 20.0)};
        }
    }
    WarpEngineResult hw = simulate_warp_engine(enc, field, 16);
    Tensor sw = warp_activation(rle_decode(enc), field, 16,
                                InterpMode::kBilinear);
    EXPECT_LT(max_abs_diff(hw.output, sw), 0.03);
}

TEST(WarpEngineSim, ZeroFieldRoundTrips)
{
    Tensor act = sparse_activation({4, 10, 10}, 0.25, 10);
    RleActivation enc = rle_encode(act);
    MotionField zero(10, 10);
    WarpEngineResult r = simulate_warp_engine(enc, zero, 16);
    EXPECT_TRUE(all_close(r.output, act, 1e-6));
}

TEST(WarpEngineSim, SparserActivationsRunFaster)
{
    MotionField field = MotionField::uniform(12, 12, Vec2{3.0, -5.0});
    Tensor dense = sparse_activation({8, 12, 12}, 0.9, 11);
    Tensor sparse = sparse_activation({8, 12, 12}, 0.05, 12);
    WarpEngineResult dr = simulate_warp_engine(rle_encode(dense), field, 16);
    WarpEngineResult sr =
        simulate_warp_engine(rle_encode(sparse), field, 16);
    EXPECT_LT(sr.cycles * 2, dr.cycles)
        << "zero skipping must cut cycles on sparse data";
    EXPECT_GT(sr.zero_skips, dr.zero_skips);
}

TEST(WarpEngineSim, CycleAccountingConsistent)
{
    Tensor act = sparse_activation({4, 8, 8}, 0.5, 13);
    MotionField field(8, 8);
    WarpEngineResult r = simulate_warp_engine(rle_encode(act), field, 16);
    EXPECT_EQ(r.interpolations + r.zero_skips,
              act.size());
    EXPECT_GT(r.cycles, r.interpolations);
}

TEST(WarpEngineSim, GridMismatchThrows)
{
    Tensor act = sparse_activation({2, 8, 8}, 0.5, 14);
    MotionField field(7, 8);
    EXPECT_THROW(simulate_warp_engine(rle_encode(act), field, 16),
                 ConfigError);
}

} // namespace
} // namespace eva2
