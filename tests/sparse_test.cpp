/**
 * @file
 * Tests for the run-length activation codec (Section III-B): round
 * trips, gap saturation, storage accounting, and the sparsity/savings
 * relationship the paper's on-chip buffer depends on.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "core/warp.h"
#include "flow/motion_field.h"
#include "sparse/rle.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace eva2 {
namespace {

/** A tensor with an exact fraction of (Q8.8-representable) nonzeros. */
Tensor
sparse_tensor(Shape s, double density, u64 seed)
{
    Tensor t(s);
    Rng rng(seed);
    for (i64 i = 0; i < t.size(); ++i) {
        if (rng.chance(density)) {
            // Values on the Q8.8 grid so encode/decode is lossless.
            t[i] = static_cast<float>(rng.uniform_int(1, 2000)) / 256.0f;
        }
    }
    return t;
}

TEST(Rle, RoundTripLossless)
{
    Tensor t = sparse_tensor({4, 8, 8}, 0.3, 1);
    Tensor back = rle_decode(rle_encode(t));
    EXPECT_TRUE(all_close(back, t, 1e-6));
}

TEST(Rle, RoundTripQuantizesLikeQ88)
{
    Tensor t(2, 4, 4);
    Rng rng(2);
    for (i64 i = 0; i < t.size(); ++i) {
        t[i] = rng.uniform_f(-3.0f, 3.0f);
    }
    Tensor back = rle_decode(rle_encode(t));
    EXPECT_TRUE(all_close(back, quantize_q88(t), 1e-6));
}

TEST(Rle, AllZerosEncodeToNothing)
{
    Tensor t(3, 16, 16);
    RleActivation enc = rle_encode(t);
    EXPECT_EQ(enc.num_entries(), 0);
    EXPECT_TRUE(all_close(rle_decode(enc), t, 0.0));
    EXPECT_GT(enc.storage_savings(), 0.99);
}

TEST(Rle, DenseTensorHasNegativeSavings)
{
    Tensor t(1, 8, 8);
    t.fill(1.0f);
    RleActivation enc = rle_encode(t);
    EXPECT_EQ(enc.num_entries(), 64);
    // 3 bytes per entry vs 2 bytes dense: encoding costs more.
    EXPECT_LT(enc.storage_savings(), 0.0);
}

TEST(Rle, GapSaturationSplitsLongRuns)
{
    RleParams params;
    params.max_zero_gap = 4;
    Tensor t(1, 1, 12);
    t[10] = 1.0f; // 10 zeros then a value
    RleActivation enc = rle_encode(t, params);
    // Runs: 4 zeros (placeholder), 4 zeros (placeholder), 2 zeros +
    // value.
    ASSERT_EQ(enc.channels[0].entries.size(), 3u);
    EXPECT_EQ(enc.channels[0].entries[0].zero_gap, 4);
    EXPECT_EQ(enc.channels[0].entries[0].value_raw, 0);
    EXPECT_EQ(enc.channels[0].entries[2].zero_gap, 2);
    EXPECT_TRUE(all_close(rle_decode(enc), t, 1e-6));
}

TEST(Rle, ThresholdZeroesSmallValues)
{
    RleParams params;
    params.zero_threshold = 0.1f;
    Tensor t(1, 1, 3);
    t[0] = 0.05f;
    t[1] = 0.5f;
    t[2] = -0.08f;
    Tensor back = rle_decode(rle_encode(t, params));
    EXPECT_EQ(back[0], 0.0f);
    EXPECT_NEAR(back[1], 0.5f, 1e-6);
    EXPECT_EQ(back[2], 0.0f);
}

TEST(Rle, StorageAccounting)
{
    Tensor t = sparse_tensor({2, 4, 4}, 0.5, 3);
    RleActivation enc = rle_encode(t);
    EXPECT_EQ(enc.dense_bytes(), t.size() * 2);
    EXPECT_EQ(enc.encoded_bytes(), enc.num_entries() * 3);
}

TEST(Rle, PaperStorageClaimAtHighSparsity)
{
    // Section V: activation compression reduces intermediate data by
    // 80-87%. At ~90% sparsity the codec must save more than 80%.
    Tensor t = sparse_tensor({16, 16, 16}, 0.10, 4);
    RleActivation enc = rle_encode(t);
    EXPECT_GT(enc.storage_savings(), 0.80);
}

/** Property sweep: round trip at many sparsity levels. */
class RleSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(RleSweep, RoundTripAndMonotoneSavings)
{
    const double density = GetParam();
    Tensor t = sparse_tensor({8, 12, 12}, density, 5);
    RleActivation enc = rle_encode(t);
    EXPECT_TRUE(all_close(rle_decode(enc), t, 1e-6));
    // Savings approximately 1 - 1.5 * density (3-byte entries over
    // 2-byte dense), modulo placeholder entries.
    EXPECT_NEAR(enc.storage_savings(), 1.0 - 1.5 * density, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Densities, RleSweep,
                         ::testing::Values(0.01, 0.05, 0.1, 0.2, 0.3,
                                           0.5));

/** Property sweep: round trip must hold at any gap-field width, and
 * narrower fields may only add placeholder entries, never lose data. */
class GapWidthSweep : public ::testing::TestWithParam<u16>
{
};

TEST_P(GapWidthSweep, RoundTripAndEntryMonotonicity)
{
    const u16 max_gap = GetParam();
    Tensor t = sparse_tensor({4, 16, 16}, 0.05, 9);
    RleParams params;
    params.max_zero_gap = max_gap;
    RleActivation enc = rle_encode(t, params);
    EXPECT_TRUE(all_close(rle_decode(enc), t, 1e-6));
    // Entries never exceed the widest-field encoding by more than the
    // placeholders required to bridge the gaps.
    RleActivation wide = rle_encode(t);
    EXPECT_GE(enc.num_entries(), wide.num_entries());
    for (const RleChannel &ch : enc.channels) {
        for (const RleEntry &e : ch.entries) {
            EXPECT_LE(e.zero_gap, max_gap);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(GapWidths, GapWidthSweep,
                         ::testing::Values(1, 3, 15, 63, 255, 4095));

TEST(Rle, ZeroMaxGapIsRejectedNotAnInfiniteLoop)
{
    // Regression: max_zero_gap == 0 used to hang rle_encode forever
    // (the run-splitting loop subtracted 0 from the gap each pass).
    RleParams params;
    params.max_zero_gap = 0;
    Tensor t(1, 1, 4);
    t[2] = 1.0f; // Any zero run at all triggered the hang.
    EXPECT_THROW(rle_encode(t, params), ConfigError);
    EXPECT_THROW(params.validate(), ConfigError);
}

TEST(Rle, NegativeThresholdIsRejected)
{
    RleParams params;
    params.zero_threshold = -0.5f;
    EXPECT_THROW(rle_encode(Tensor(1, 2, 2), params), ConfigError);
}

TEST(Rle, GapWidthFollowsMaxZeroGap)
{
    // Regression: bits_per_entry() hardcoded an 8-bit gap field, so
    // encoded_bytes()/storage_savings() under-counted storage for
    // configurations with wider fields (max_zero_gap up to 65535).
    RleParams params;
    EXPECT_EQ(params.gap_bits(), 8);
    EXPECT_EQ(params.bits_per_entry(), 24);
    params.max_zero_gap = 1;
    EXPECT_EQ(params.gap_bits(), 1);
    params.max_zero_gap = 2;
    EXPECT_EQ(params.gap_bits(), 2);
    params.max_zero_gap = 255;
    EXPECT_EQ(params.gap_bits(), 8);
    params.max_zero_gap = 256;
    EXPECT_EQ(params.gap_bits(), 9);
    params.max_zero_gap = 4095;
    EXPECT_EQ(params.gap_bits(), 12);
    EXPECT_EQ(params.bits_per_entry(), 28);
    params.max_zero_gap = 65535;
    EXPECT_EQ(params.gap_bits(), 16);
    EXPECT_EQ(params.bits_per_entry(), 32);
}

TEST(Rle, StorageAccountingUsesTheConfiguredGapWidth)
{
    Tensor t = sparse_tensor({2, 8, 8}, 0.3, 21);
    RleParams wide;
    wide.max_zero_gap = 4095; // 12-bit gaps: 28 bits, 4 bytes/entry.
    RleActivation enc = rle_encode(t, wide);
    EXPECT_EQ(enc.encoded_bytes(), enc.num_entries() * 4);
    EXPECT_EQ(enc.encoded_bits(), enc.num_entries() * 28);
    RleParams narrow;
    narrow.max_zero_gap = 15; // 4-bit gaps: 20 bits, 3 bytes/entry.
    RleActivation enc2 = rle_encode(t, narrow);
    EXPECT_EQ(enc2.encoded_bytes(), enc2.num_entries() * 3);
    EXPECT_EQ(enc2.encoded_bits(), enc2.num_entries() * 20);
}

/**
 * Hostile-parameter property sweep: round trips must hold for every
 * combination of narrow/wide gap fields, nonzero thresholds, and
 * degenerate planes (all zero, no zeros, values below the Q8.8
 * resolution).
 */
TEST(Rle, HostileParamRoundTrips)
{
    const std::vector<u16> gaps = {1, 2, 255};
    const std::vector<float> thresholds = {0.0f, 0.01f, 0.25f};
    std::vector<std::pair<const char *, Tensor>> planes;
    planes.emplace_back("all_zero", Tensor(2, 5, 5));
    {
        Tensor dense(2, 5, 5);
        dense.fill(1.25f);
        planes.emplace_back("no_zero", std::move(dense));
    }
    {
        // Values below the Q8.8 resolution (1/256) quantize to zero
        // even with threshold 0, exercising the quantize-then-gap
        // interaction.
        Tensor tiny(1, 4, 4);
        for (i64 i = 0; i < tiny.size(); ++i) {
            tiny[i] = (i % 2 == 0) ? 0.001f : 0.5f;
        }
        planes.emplace_back("sub_resolution", std::move(tiny));
    }
    planes.emplace_back("sparse", sparse_tensor({3, 7, 7}, 0.2, 77));
    for (const u16 gap : gaps) {
        for (const float th : thresholds) {
            for (const auto &plane : planes) {
                RleParams params;
                params.max_zero_gap = gap;
                params.zero_threshold = th;
                const RleActivation enc =
                    rle_encode(plane.second, params);
                const Tensor back = rle_decode(enc);
                // The decoded plane must equal quantize-then-prune of
                // the original: every surviving value Q8.8-quantized,
                // every pruned/zero value exactly 0.
                const Tensor q = quantize_q88(plane.second);
                ASSERT_EQ(back.shape(), plane.second.shape());
                for (i64 i = 0; i < q.size(); ++i) {
                    const float expect =
                        std::fabs(plane.second[i]) <= th ? 0.0f : q[i];
                    EXPECT_EQ(back[i], expect)
                        << plane.first << " gap " << gap
                        << " threshold " << th << " index " << i;
                }
                // No entry may exceed the configured gap field.
                for (const RleChannel &ch : enc.channels) {
                    for (const RleEntry &e : ch.entries) {
                        EXPECT_LE(e.zero_gap, gap);
                    }
                }
            }
        }
    }
}

TEST(Rle, EmptyTensor)
{
    Tensor t(0, 0, 0);
    RleActivation enc = rle_encode(t);
    EXPECT_EQ(enc.num_entries(), 0);
    Tensor back = rle_decode(enc);
    EXPECT_EQ(back.size(), 0);
}

TEST(Rle, NegativeValuesSurvive)
{
    Tensor t(1, 1, 4);
    t[1] = -2.5f;
    t[3] = 1.25f;
    Tensor back = rle_decode(rle_encode(t));
    EXPECT_NEAR(back[1], -2.5f, 1e-6);
    EXPECT_NEAR(back[3], 1.25f, 1e-6);
}

/** A signed Q8.8-grid tensor with the given nonzero fraction — the
 * shape of a real stored key activation (post-ReLU layers are
 * non-negative, but the codec and the warp must not depend on it). */
Tensor
signed_sparse_tensor(Shape s, double density, u64 seed)
{
    Tensor t(s);
    Rng rng(seed);
    for (i64 i = 0; i < t.size(); ++i) {
        if (rng.chance(density)) {
            t[i] = static_cast<float>(rng.uniform_int(-2000, 2000)) /
                   256.0f;
        }
    }
    return t;
}

MotionField
random_field(i64 h, i64 w, u64 seed)
{
    MotionField f(h, w);
    Rng rng(seed);
    for (i64 y = 0; y < h; ++y) {
        for (i64 x = 0; x < w; ++x) {
            // Span in-bounds, fractional, and well out-of-bounds
            // vectors so both the interpolation and the edge-clamp
            // paths are exercised.
            f.at(y, x) = Vec2{rng.uniform(-40.0, 40.0),
                              rng.uniform(-40.0, 40.0)};
        }
    }
    return f;
}

/**
 * The sparse-direct warp's contract is bit-exactness against the
 * decode-then-warp reference (docs: warp_activation_rle_into). Fuzz
 * it across densities (including all-zero and dense), shapes, signed
 * values, random fractional fields, strides, and both interpolation
 * modes.
 */
TEST(RleWarp, ParityFuzzAgainstDecodeThenWarp)
{
    const struct {
        Shape shape;
        double density;
    } cases[] = {
        {{1, 1, 1}, 1.0},   {{3, 7, 5}, 0.0},  {{4, 14, 14}, 0.05},
        {{8, 13, 13}, 0.3}, {{2, 9, 17}, 0.7}, {{5, 6, 6}, 1.0},
    };
    u64 seed = 1000;
    for (const auto &c : cases) {
        const Tensor key = signed_sparse_tensor(c.shape, c.density, ++seed);
        const RleActivation enc = rle_encode(key);
        const Tensor dense = rle_decode(enc);
        const MotionField field =
            random_field(c.shape.h, c.shape.w, ++seed);
        for (const i64 stride : {8L, 16L}) {
            for (const InterpMode mode :
                 {InterpMode::kBilinear, InterpMode::kNearest}) {
                const Tensor expect =
                    warp_activation(dense, field, stride, mode);
                const Tensor got =
                    warp_activation_rle(enc, field, stride, mode);
                EXPECT_TRUE(got == expect)
                    << "shape=" << c.shape.c << "x" << c.shape.h << "x"
                    << c.shape.w << " density=" << c.density
                    << " stride=" << stride
                    << " mode=" << static_cast<int>(mode);
            }
        }
    }
}

/** Channels with no encoded entries must come back as exact +0.0
 * planes — the fast path that skips the gather entirely. */
TEST(RleWarp, FullyPrunedChannelsAreExactZero)
{
    Tensor key(3, 10, 10);
    // Only channel 1 has content; channels 0 and 2 are empty streams.
    for (i64 i = 0; i < 100; i += 7) {
        key[100 + i] = static_cast<float>(i) / 256.0f;
    }
    const RleActivation enc = rle_encode(key);
    const MotionField field = random_field(10, 10, 77);
    const Tensor out = warp_activation_rle(enc, field, 16);
    for (const i64 ch : {0L, 2L}) {
        for (i64 i = 0; i < 100; ++i) {
            const float v = out[ch * 100 + i];
            EXPECT_EQ(v, 0.0f);
            EXPECT_FALSE(std::signbit(v)) << "ch=" << ch << " i=" << i;
        }
    }
    EXPECT_TRUE(out == warp_activation(rle_decode(enc), field, 16));
}

/** The into-form is the per-predicted-frame hot path: after warmup it
 * must not allocate, even though it expands channels through a reused
 * plane buffer. */
TEST(RleWarp, IntoFormIsSteadyStateAllocationFree)
{
    const Tensor key = signed_sparse_tensor({6, 14, 14}, 0.2, 321);
    const RleActivation enc = rle_encode(key);
    const MotionField field = random_field(14, 14, 322);
    Tensor out;
    warp_activation_rle_into(enc, field, 16, InterpMode::kBilinear, out);
    const Tensor expect = warp_activation(rle_decode(enc), field, 16);
    EXPECT_TRUE(out == expect);

    const u64 before = Tensor::buffer_allocations();
    warp_activation_rle_into(enc, field, 16, InterpMode::kBilinear, out);
    EXPECT_EQ(Tensor::buffer_allocations() - before, 0u);
    EXPECT_TRUE(out == expect);
}

} // namespace
} // namespace eva2
