/**
 * @file
 * Tests for the hardware models: the Section IV-A op-count formulas
 * (checked against the paper's quoted numbers), the Figure 12 area
 * story, the Eyeriss/EIE calibration, and the composite VPU report's
 * consistency properties.
 */
#include <limits>

#include <gtest/gtest.h>

#include "hw/stream_sim.h"
#include "hw/vpu.h"
#include "video/scenarios.h"

namespace eva2 {
namespace {

TEST(RfbmeOpModel, PaperSectionIVANumbers)
{
    // Section IV-A quotes, for Faster16 at 1000x562 with the conv5_3
    // receptive field: "an unoptimized version requires 3e9 add
    // operations while RFBME requires 1.3e7".
    NetworkSpec spec = faster16_spec();
    Eva2Config cfg =
        eva2_config_for(spec, "relu5_3", Shape{3, 562, 1000});
    Eva2Model model(cfg);
    RfbmeOpModel ops = model.op_model();
    EXPECT_EQ(ops.rf_size, 196);
    EXPECT_EQ(ops.rf_stride, 16);
    EXPECT_NEAR(static_cast<double>(ops.unoptimized_ops()), 3e9, 0.35e9);
    EXPECT_NEAR(static_cast<double>(ops.rfbme_ops()), 1.3e7, 0.3e7);
}

TEST(RfbmeOpModel, ReuseSavingsScaleWithStrideSquared)
{
    RfbmeOpModel m;
    m.layer_h = 35;
    m.layer_w = 62;
    m.rf_size = 196;
    m.rf_stride = 16;
    m.search_radius = 24;
    m.search_stride = 8;
    const double ratio = static_cast<double>(m.unoptimized_ops()) /
                         static_cast<double>(m.rfbme_ops());
    // Close to rf_stride^2 = 256 (the second term is small).
    EXPECT_GT(ratio, 150.0);
    EXPECT_LT(ratio, 260.0);
}

TEST(MemoryModel, AreaScalesWithCapacity)
{
    MemoryMacro small{"s", MemKind::kEdram, 64 * 1024};
    MemoryMacro big{"b", MemKind::kEdram, 1024 * 1024};
    EXPECT_LT(small.area_mm2(), big.area_mm2());
    MemoryMacro sram{"r", MemKind::kSram, 1024 * 1024};
    EXPECT_GT(sram.area_mm2(), big.area_mm2())
        << "SRAM is less dense than eDRAM";
}

TEST(Eva2Area, Figure12Story)
{
    // Figure 12 + Section IV-B: EVA2 occupies ~2.6 mm^2, about 3.5% of
    // the three-unit VPU; pixel buffers ~54.5% of EVA2, activation
    // buffer ~16%.
    Eva2Area area = vpu_eva2_area(faster16_spec());
    EXPECT_NEAR(area.total_mm2(), 2.6, 0.4);
    EXPECT_NEAR(area.vpu_fraction(), 0.035, 0.007);
    EXPECT_NEAR(area.pixel_buffer_fraction(), 0.545, 0.08);
    EXPECT_NEAR(area.activation_buffer_fraction(), 0.16, 0.07);
}

TEST(EyerissModel, CalibrationAnchors)
{
    // AlexNet conv stack ~115 ms; VGG-16 conv stack ~4.3 s.
    EyerissModel alex(EyerissModel::Family::kAlexNetLike);
    const auto alex_costs = analyze(alexnet_spec());
    HwCost alex_conv = alex.conv_cost(total_conv_macs(alex_costs));
    EXPECT_NEAR(alex_conv.latency_ms, 115.3, 12.0);
    EXPECT_NEAR(alex_conv.energy_mj, 31.9, 4.0);

    EyerissModel vgg(EyerissModel::Family::kVggLike);
    const auto vgg_costs = analyze(vgg16_spec());
    HwCost vgg_conv = vgg.conv_cost(total_conv_macs(vgg_costs));
    EXPECT_NEAR(vgg_conv.latency_ms, 4309.5, 200.0);
    EXPECT_NEAR(vgg_conv.energy_mj, 1028.0, 60.0);
}

TEST(EieModel, FcLayersOrdersOfMagnitudeCheaperThanConv)
{
    // Section IV-C: "The energy and latency for the fully-connected
    // layers are orders of magnitude smaller than for convolutional
    // layers."
    const auto costs = analyze(alexnet_spec());
    EyerissModel eyeriss(EyerissModel::Family::kAlexNetLike);
    EieModel eie;
    HwCost conv = eyeriss.conv_cost(total_conv_macs(costs));
    HwCost fc = eie.fc_cost(total_fc_macs(costs));
    EXPECT_LT(fc.latency_ms * 100.0, conv.latency_ms);
    EXPECT_LT(fc.energy_mj * 100.0, conv.energy_mj);
}

TEST(VpuReport, OrigMatchesPaperTableI)
{
    // Table I "orig" rows: AlexNet 115.4 ms / 32.2 mJ, Faster16
    // 4370.1 ms / 1035.5 mJ, FasterM 492.3 ms / 116.7 mJ. Our model
    // must land in the same regime (within ~15%).
    struct Expectation
    {
        const char *name;
        double ms;
        double mj;
    };
    const Expectation expectations[] = {
        {"AlexNet", 115.4, 32.2},
        {"Faster16", 4370.1, 1035.5},
        {"FasterM", 492.3, 116.7},
    };
    const auto specs = paper_network_specs();
    for (size_t i = 0; i < specs.size(); ++i) {
        VpuReport report = vpu_report(specs[i]);
        EXPECT_NEAR(report.orig.total().latency_ms, expectations[i].ms,
                    expectations[i].ms * 0.18)
            << specs[i].name;
        EXPECT_NEAR(report.orig.total().energy_mj, expectations[i].mj,
                    expectations[i].mj * 0.18)
            << specs[i].name;
    }
}

TEST(VpuReport, PredictedFramesMuchCheaperThanKeyFrames)
{
    for (const NetworkSpec &spec : paper_network_specs()) {
        VpuReport report = vpu_report(spec);
        EXPECT_LT(report.pred.total().energy_mj * 2.0,
                  report.orig.total().energy_mj)
            << spec.name;
        EXPECT_LT(report.pred.total().latency_ms * 2.0,
                  report.orig.total().latency_ms)
            << spec.name;
    }
}

TEST(VpuReport, PaperHeadlineSavingsAtTableIKeyRates)
{
    // The abstract: energy per frame drops 54% (FasterM), 62%
    // (Faster16), 87% (AlexNet) at the med key-frame rates of Table I
    // (37%, 36%, and 11% keys respectively).
    struct Case
    {
        NetworkSpec spec;
        double key_fraction;
        double expected_savings;
    };
    const Case cases[] = {
        {fasterm_spec(), 0.37, 0.54},
        {faster16_spec(), 0.36, 0.62},
        {alexnet_spec(), 0.11, 0.87},
    };
    for (const Case &c : cases) {
        VpuReport report = vpu_report(c.spec);
        EXPECT_NEAR(report.energy_savings(c.key_fraction),
                    c.expected_savings, 0.10)
            << c.spec.name;
    }
}

TEST(VpuReport, AverageInterpolatesBetweenKeyAndPred)
{
    VpuReport report = vpu_report(fasterm_spec());
    const double e_key = report.key.total().energy_mj;
    const double e_pred = report.pred.total().energy_mj;
    const double e_mid = report.average(0.5).total().energy_mj;
    EXPECT_NEAR(e_mid, 0.5 * (e_key + e_pred), 1e-9);
    EXPECT_GT(report.average(1.0).total().energy_mj,
              report.average(0.0).total().energy_mj);
}

TEST(VpuReport, SavingsMonotoneInKeyRate)
{
    VpuReport report = vpu_report(faster16_spec());
    double prev = 1.0;
    for (double key : {0.1, 0.3, 0.5, 0.8, 1.0}) {
        const double savings = report.energy_savings(key);
        EXPECT_LT(savings, prev);
        prev = savings;
    }
    // At 100% key frames EVA2 only adds overhead.
    EXPECT_LE(report.energy_savings(1.0), 0.0);
}

TEST(VpuReport, MemoizationModeHasNoWarpCost)
{
    // AlexNet (classification) uses memoization: the EVA2 unit's
    // predicted-frame cost excludes the warp engine.
    Eva2Config with_warp = eva2_config_for(fasterm_spec());
    Eva2Config without = eva2_config_for(alexnet_spec());
    EXPECT_TRUE(with_warp.motion_compensation);
    EXPECT_FALSE(without.motion_compensation);
    Eva2Model m(with_warp);
    Eva2Config no_warp_cfg = with_warp;
    no_warp_cfg.motion_compensation = false;
    Eva2Model m2(no_warp_cfg);
    EXPECT_GT(m.predicted_frame_cost().energy_mj,
              m2.predicted_frame_cost().energy_mj);
}

TEST(Eva2Model, CostsPositiveAndSmall)
{
    Eva2Model model(eva2_config_for(faster16_spec()));
    const HwCost pred = model.predicted_frame_cost();
    EXPECT_GT(pred.latency_ms, 0.0);
    EXPECT_GT(pred.energy_mj, 0.0);
    // EVA2 itself is tiny relative to full Faster16 execution.
    VpuReport report = vpu_report(faster16_spec());
    EXPECT_LT(pred.energy_mj * 20.0, report.orig.total().energy_mj);
}

TEST(Eva2Model, WarpCostScalesWithDensity)
{
    Eva2Config cfg = eva2_config_for(fasterm_spec());
    cfg.activation_sparsity = 0.9;
    const double sparse_e = Eva2Model(cfg).warp_cost().energy_mj;
    cfg.activation_sparsity = 0.1;
    const double dense_e = Eva2Model(cfg).warp_cost().energy_mj;
    EXPECT_GT(dense_e, sparse_e * 3.0);
}

TEST(Eva2Model, CompressedBytesFollowSparsity)
{
    Eva2Config cfg = eva2_config_for(fasterm_spec());
    Eva2Model model(cfg);
    const i64 values = cfg.act_c * cfg.act_h * cfg.act_w;
    // 3-byte entries per nonzero value at the configured sparsity.
    const double nonzero = (1.0 - cfg.activation_sparsity) *
                           static_cast<double>(values);
    EXPECT_NEAR(static_cast<double>(model.compressed_act_bytes()),
                3.0 * nonzero, 2.0);
    // At the paper's 0.87 sparsity, savings land in the 80-87% band.
    const double savings =
        1.0 - static_cast<double>(model.compressed_act_bytes()) /
                  static_cast<double>(model.dense_act_bytes());
    EXPECT_GT(savings, 0.78);
    EXPECT_LT(savings, 0.88);
}

TEST(Eva2Model, CompressedBytesNeverExceedDense)
{
    Eva2Config cfg = eva2_config_for(fasterm_spec());
    cfg.activation_sparsity = 0.0; // fully dense
    Eva2Model model(cfg);
    EXPECT_EQ(model.compressed_act_bytes(), model.dense_act_bytes());
}

TEST(Eva2Model, StorageSavingsImproveWithSparsity)
{
    Eva2Config cfg = eva2_config_for(faster16_spec());
    i64 prev = std::numeric_limits<i64>::max();
    for (double sparsity : {0.5, 0.7, 0.87, 0.95}) {
        cfg.activation_sparsity = sparsity;
        const i64 bytes = Eva2Model(cfg).compressed_act_bytes();
        EXPECT_LT(bytes, prev) << "sparsity=" << sparsity;
        prev = bytes;
    }
}

TEST(Eva2Model, InvalidConfigThrows)
{
    Eva2Config cfg;
    EXPECT_THROW(Eva2Model{cfg}, ConfigError);
}

TEST(StreamSim, TimelineAccountingConsistent)
{
    const NetworkSpec spec = fasterm_spec();
    ScaledBuildOptions opts;
    opts.input = Shape{1, 128, 128};
    Network net = build_scaled(spec, opts);
    AmcPipeline pipeline(net, std::make_unique<StaticRatePolicy>(3));
    StreamSimulator sim(spec);

    SyntheticVideo video(panning_scene(13, 1.0, 128));
    const StreamReport report =
        sim.simulate(pipeline, video.sequence("pan", 9));

    ASSERT_EQ(report.frame_count(), 9);
    EXPECT_EQ(report.key_frames, 3); // frames 0, 3, 6
    // Total equals the sum of per-frame traces.
    HwCost sum;
    i64 keys = 0;
    for (const FrameTrace &f : report.frames) {
        sum = sum + f.cost;
        keys += f.is_key ? 1 : 0;
    }
    EXPECT_NEAR(sum.energy_mj, report.total.energy_mj, 1e-9);
    EXPECT_EQ(keys, report.key_frames);
    // The stream must beat the precise-every-frame baseline.
    EXPECT_GT(report.energy_savings(), 0.3);
    // Key frames cost more than predicted frames in the trace.
    EXPECT_GT(report.frames[0].cost.energy_mj,
              report.frames[1].cost.energy_mj * 2.0);
}

TEST(StreamSim, ResetBetweenSequences)
{
    const NetworkSpec spec = fasterm_spec();
    ScaledBuildOptions opts;
    opts.input = Shape{1, 128, 128};
    Network net = build_scaled(spec, opts);
    AmcPipeline pipeline(net, std::make_unique<StaticRatePolicy>(100));
    StreamSimulator sim(spec);
    SyntheticVideo video(static_scene(5, 128));
    const Sequence seq = video.sequence("s", 4);
    const StreamReport a = sim.simulate(pipeline, seq);
    const StreamReport b = sim.simulate(pipeline, seq);
    // Each simulation starts fresh: frame 0 is a key frame both times.
    EXPECT_TRUE(a.frames[0].is_key);
    EXPECT_TRUE(b.frames[0].is_key);
    EXPECT_EQ(a.key_frames, b.key_frames);
    EXPECT_NEAR(a.total.energy_mj, b.total.energy_mj, 1e-9);
}

TEST(Vpu, TargetLayerControlsSuffixCost)
{
    // An earlier target leaves a bigger suffix for predicted frames.
    VpuOptions late;
    VpuOptions early;
    early.target_layer = "pool1";
    const NetworkSpec spec = faster16_spec();
    VpuReport late_report = vpu_report(spec, late);
    VpuReport early_report = vpu_report(spec, early);
    EXPECT_GT(early_report.pred.total().energy_mj,
              late_report.pred.total().energy_mj);
    EXPECT_THROW(vpu_report(spec, VpuOptions{"no_such_layer"}),
                 ConfigError);
}

} // namespace
} // namespace eva2
