/**
 * @file
 * Tests for the TCP serving front end (src/net): wire-protocol
 * round-trips and hostile-input hardening, loopback end-to-end digest
 * identity against in-process submission across a scenario x policy x
 * kernel sweep, backpressure (the window is a hard bound), load
 * shedding under overload, admission control, graceful drain with
 * zero lost in-flight frames — plus regression tests pinning the
 * cross-thread Session::wait() semantics the IO loop depends on
 * (reset()/close() from another thread must wake waiters, never hang
 * them).
 */
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "cnn/model_zoo.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "video/scenarios.h"

namespace eva2 {
namespace {

using net::Client;
using net::ClientSession;
using net::FrameDecoder;
using net::Message;
using net::MsgHeader;
using net::MsgType;
using net::NetOutcome;
using net::ProtocolError;
using net::Server;
using net::ServerConfig;

// --------------------------------------------------------------------
// Wire protocol

Tensor
test_frame(i64 c, i64 h, i64 w, float scale)
{
    Tensor t(c, h, w);
    for (i64 i = 0; i < t.size(); ++i) {
        t.data()[i] = scale * static_cast<float>(i % 251);
    }
    return t;
}

std::vector<Message>
decode_all(const std::vector<u8> &bytes)
{
    FrameDecoder dec;
    dec.feed(bytes.data(), bytes.size());
    std::vector<Message> out;
    Message msg;
    while (dec.next(&msg)) {
        out.push_back(msg);
    }
    return out;
}

TEST(Wire, EveryMessageTypeRoundTrips)
{
    std::vector<u8> stream;
    net::HelloMsg hello;
    hello.priority = 3;
    hello.name = "cam-\"7\"";
    auto append = [&stream](const std::vector<u8> &m) {
        stream.insert(stream.end(), m.begin(), m.end());
    };
    append(net::encode_hello(11, hello));
    append(net::encode_hello_ack(11, {16}));
    append(net::encode_nack(
        12, {net::NackReason::kSessionLimit, "limit hit"}));
    const Tensor frame = test_frame(1, 5, 7, 0.25f);
    append(net::encode_frame(11, 42, frame));
    net::OutcomeMsg om;
    om.is_key = true;
    om.failed = false;
    om.credit = 7;
    om.top1 = 5;
    om.output_digest = 0xdeadbeefcafef00dull;
    om.match_error = 0.125;
    append(net::encode_outcome(11, 42, om));
    append(net::encode_shed(11, 43, {net::ShedReason::kWindow, 0}));
    append(net::encode_bye(0));

    const std::vector<Message> msgs = decode_all(stream);
    ASSERT_EQ(msgs.size(), 7u);

    EXPECT_EQ(msgs[0].header.type, MsgType::kHello);
    EXPECT_EQ(msgs[0].header.session, 11u);
    const net::HelloMsg h = net::parse_hello(msgs[0].payload);
    EXPECT_EQ(h.priority, 3);
    EXPECT_EQ(h.name, "cam-\"7\"");

    EXPECT_EQ(msgs[1].header.type, MsgType::kHelloAck);
    EXPECT_EQ(net::parse_hello_ack(msgs[1].payload).window, 16u);

    EXPECT_EQ(msgs[2].header.type, MsgType::kNack);
    const net::NackMsg n = net::parse_nack(msgs[2].payload);
    EXPECT_EQ(n.reason, net::NackReason::kSessionLimit);
    EXPECT_EQ(n.detail, "limit hit");

    EXPECT_EQ(msgs[3].header.type, MsgType::kFrame);
    EXPECT_EQ(msgs[3].header.seq, 42u);
    const Tensor back = net::parse_frame(msgs[3].payload);
    ASSERT_EQ(back.shape(), frame.shape());
    for (i64 i = 0; i < frame.size(); ++i) {
        ASSERT_EQ(back.data()[i], frame.data()[i]);
    }

    EXPECT_EQ(msgs[4].header.type, MsgType::kOutcome);
    const net::OutcomeMsg o = net::parse_outcome(msgs[4].payload);
    EXPECT_TRUE(o.is_key);
    EXPECT_FALSE(o.failed);
    EXPECT_EQ(o.credit, 7u);
    EXPECT_EQ(o.top1, 5);
    EXPECT_EQ(o.output_digest, 0xdeadbeefcafef00dull);
    EXPECT_DOUBLE_EQ(o.match_error, 0.125);

    EXPECT_EQ(msgs[5].header.type, MsgType::kShed);
    EXPECT_EQ(net::parse_shed(msgs[5].payload).reason,
              net::ShedReason::kWindow);

    EXPECT_EQ(msgs[6].header.type, MsgType::kBye);
}

TEST(Wire, DecoderHandlesArbitrarySplitPoints)
{
    std::vector<u8> stream;
    const Tensor frame = test_frame(2, 3, 4, 1.0f);
    const std::vector<u8> one = net::encode_frame(9, 1, frame);
    for (int rep = 0; rep < 3; ++rep) {
        stream.insert(stream.end(), one.begin(), one.end());
    }
    for (size_t chunk = 1; chunk <= 13; chunk += 4) {
        FrameDecoder dec;
        size_t off = 0;
        i64 got = 0;
        Message msg;
        while (off < stream.size()) {
            const size_t n = std::min(chunk, stream.size() - off);
            dec.feed(stream.data() + off, n);
            off += n;
            while (dec.next(&msg)) {
                ++got;
                EXPECT_EQ(msg.header.type, MsgType::kFrame);
            }
        }
        EXPECT_EQ(got, 3);
        EXPECT_EQ(dec.buffered(), 0u);
    }
}

TEST(Wire, GarbageHeaderIsRejectedAtTheHeader)
{
    // Hostile stream: plausible length field but wrong magic — the
    // decoder must throw at the 32 header bytes, not wait for (or
    // allocate) the declared payload.
    std::vector<u8> junk(net::kHeaderSize, 0xa5);
    FrameDecoder dec;
    EXPECT_THROW(dec.feed(junk.data(), junk.size()), ProtocolError);
}

TEST(Wire, CorruptChecksumIsRejected)
{
    std::vector<u8> msg = net::encode_bye(3);
    msg[8] ^= 0x01; // Flip a session-id bit; checksum now mismatches.
    FrameDecoder dec;
    EXPECT_THROW(dec.feed(msg.data(), msg.size()), ProtocolError);
}

TEST(Wire, OversizedPayloadLengthIsRejected)
{
    // Forge a header declaring a payload beyond kMaxPayload, with a
    // *valid* checksum — only the explicit length bound can catch it,
    // and it must, before any allocation happens.
    std::vector<u8> buf;
    net::ByteWriter w(&buf);
    w.u32v(net::kMagic);
    w.u8v(net::kWireVersion);
    w.u8v(static_cast<u8>(MsgType::kFrame));
    w.u16v(0);
    w.u32v(1);                    // session
    w.u32v(net::kMaxPayload + 1); // hostile payload length
    w.u64v(0);                    // seq
    w.u32v(net::header_checksum(buf.data()));
    w.u32v(0);
    ASSERT_EQ(buf.size(), net::kHeaderSize);
    FrameDecoder dec;
    EXPECT_THROW(dec.feed(buf.data(), buf.size()), ProtocolError);
}

TEST(Wire, TruncatedPayloadsThrowDescriptively)
{
    const Tensor frame = test_frame(1, 4, 4, 1.0f);
    std::vector<u8> msg = net::encode_frame(1, 0, frame);
    // Rewrite the header to declare fewer payload bytes than the
    // frame body needs; parse_frame must reject the short payload.
    std::vector<Message> msgs = decode_all(msg);
    ASSERT_EQ(msgs.size(), 1u);
    msgs[0].payload.resize(msgs[0].payload.size() - 3);
    EXPECT_THROW(net::parse_frame(msgs[0].payload), ProtocolError);
    // Trailing garbage after the declared tensor is also an error.
    msgs = decode_all(net::encode_frame(1, 0, frame));
    msgs[0].payload.push_back(0);
    EXPECT_THROW(net::parse_frame(msgs[0].payload), ProtocolError);
}

TEST(Wire, UnknownTypeAndVersionAreRejected)
{
    std::vector<u8> msg = net::encode_bye(0);
    {
        std::vector<u8> bad = msg;
        bad[4] = 9; // Version byte.
        // Recompute nothing: the checksum covers the version, so the
        // tamper is caught either way; both paths must throw.
        FrameDecoder dec;
        EXPECT_THROW(dec.feed(bad.data(), bad.size()), ProtocolError);
    }
    {
        MsgHeader h;
        h.type = static_cast<MsgType>(200);
        h.payload_len = 0;
        std::vector<u8> buf;
        net::encode_header(&buf, h);
        FrameDecoder dec;
        EXPECT_THROW(dec.feed(buf.data(), buf.size()), ProtocolError);
    }
}

TEST(Wire, FrameFuzzDoesNotCrash)
{
    // Deterministic xorshift fuzz over the frame-payload parser: any
    // byte soup must either parse or throw ProtocolError — never
    // crash, never allocate from unvalidated lengths.
    u64 state = 0x9e3779b97f4a7c15ull;
    auto next = [&state]() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    for (int iter = 0; iter < 500; ++iter) {
        std::vector<u8> payload(next() % 64);
        for (u8 &b : payload) {
            b = static_cast<u8>(next());
        }
        try {
            (void)net::parse_frame(payload);
        } catch (const ProtocolError &) {
        }
        try {
            (void)net::parse_hello(payload);
        } catch (const ProtocolError &) {
        }
        try {
            (void)net::parse_outcome(payload);
        } catch (const ProtocolError &) {
        }
    }
}

// --------------------------------------------------------------------
// Loopback serving fixture

/** A small net + workload and a served engine with a loopback client. */
struct NetFixture
{
    Network net;
    std::vector<Sequence> streams;

    explicit NetFixture(i64 num_streams = 2, i64 frames = 4)
        : net(build_scaled(alexnet_spec(), small_opts())),
          streams(multi_stream_set(/*seed=*/17, num_streams, frames,
                                   /*size=*/64))
    {
    }

    static ScaledBuildOptions
    small_opts()
    {
        ScaledBuildOptions o;
        o.input = Shape{1, 64, 64};
        return o;
    }

    static EngineConfig
    engine_config(i64 threads)
    {
        EngineConfig c;
        c.policy = "static:interval=2";
        c.num_threads = threads;
        return c;
    }
};

/** Digests from feeding the streams through Session::submit directly. */
std::vector<u64>
inprocess_digests(const Network &net, const EngineConfig &config,
                  const std::vector<Sequence> &streams)
{
    Engine engine(net, config);
    for (const Sequence &seq : streams) {
        engine.session(seq.name).submit_all(seq);
    }
    std::vector<u64> out;
    RunReport report = engine.report();
    for (const StreamReport &s : report.streams) {
        out.push_back(s.digest);
    }
    return out;
}

TEST(NetServer, LoopbackDigestsMatchInProcessAcrossConfigs)
{
    // The serving layer must be invisible to the results: for every
    // policy x kernel (x threading) config, digests over TCP equal
    // digests from direct submission, bit for bit.
    NetFixture fx;
    struct Case
    {
        const char *policy;
        const char *kernel;
        i64 threads;
    };
    const Case cases[] = {
        {"static:interval=2", "gemm", 1},
        {"static:interval=2", "direct", 1},
        {"adaptive_error:th=0.05,max_gap=8", "gemm", 1},
        {"static:interval=2", "gemm", 2},
    };
    for (const Case &c : cases) {
        EngineConfig config;
        config.policy = c.policy;
        config.kernel = c.kernel;
        config.num_threads = c.threads;

        const std::vector<u64> expected =
            inprocess_digests(fx.net, config, fx.streams);

        Engine engine(fx.net, config);
        Server server(engine);
        server.start();
        {
            Client client("127.0.0.1", server.port());
            std::vector<ClientSession *> sessions;
            for (const Sequence &seq : fx.streams) {
                sessions.push_back(&client.open_session(seq.name));
            }
            for (size_t s = 0; s < fx.streams.size(); ++s) {
                for (const LabeledFrame &frame : fx.streams[s].frames) {
                    const u64 seq = sessions[s]->submit(frame.image);
                    const NetOutcome out = sessions[s]->wait(seq);
                    ASSERT_FALSE(out.shed);
                    ASSERT_FALSE(out.failed);
                }
            }
            for (size_t s = 0; s < fx.streams.size(); ++s) {
                EXPECT_EQ(sessions[s]->chained_digest(), expected[s])
                    << "policy=" << c.policy << " kernel=" << c.kernel
                    << " threads=" << c.threads << " stream=" << s;
            }
            client.close();
        }
        server.stop();
        const NetStats stats = server.stats();
        EXPECT_EQ(stats.frames_in,
                  static_cast<i64>(fx.streams.size() *
                                   fx.streams[0].frames.size()));
        EXPECT_EQ(stats.outcomes_out, stats.frames_in);
        EXPECT_EQ(stats.shed_total(), 0);
        EXPECT_EQ(stats.protocol_errors, 0);
    }
}

TEST(NetServer, ReportCarriesNetSection)
{
    NetFixture fx(1, 2);
    Engine engine(fx.net, NetFixture::engine_config(1));
    Server server(engine);
    server.start();
    {
        Client client("127.0.0.1", server.port());
        ClientSession &s = client.open_session(fx.streams[0].name);
        const u64 seq = s.submit(fx.streams[0].frames[0].image);
        (void)s.wait(seq);
        client.close();
    }
    server.stop();
    const RunReport report = server.report();
    EXPECT_EQ(report.net.frames_in, 1);
    EXPECT_EQ(report.net.sessions_accepted, 1);
    const std::string json = report.to_json(2);
    EXPECT_NE(json.find("\"net\""), std::string::npos);
    EXPECT_NE(json.find("\"outcomes_out\": 1"), std::string::npos);
}

TEST(NetServer, WindowIsAHardBoundAndOverrunsAreShed)
{
    NetFixture fx(1, 2);
    Engine engine(fx.net, NetFixture::engine_config(1));
    ServerConfig sc;
    sc.window = 2;
    Server server(engine, sc);
    server.start();
    {
        Client client("127.0.0.1", server.port());
        ClientSession &s = client.open_session("cam");
        EXPECT_EQ(s.window(), 2u);
        // A misbehaving sender fires a burst far past its credit.
        const Tensor &img = fx.streams[0].frames[0].image;
        std::vector<u64> seqs;
        for (int i = 0; i < 12; ++i) {
            seqs.push_back(s.submit_uncredited(img));
        }
        i64 completed = 0;
        i64 shed_window = 0;
        for (const u64 seq : seqs) {
            const NetOutcome out = s.wait(seq);
            if (out.shed) {
                EXPECT_EQ(out.shed_reason, net::ShedReason::kWindow);
                ++shed_window;
            } else {
                ++completed;
            }
        }
        // Every overrun was shed, none queued: with an inline engine
        // each admitted frame completes before the next message is
        // decoded, so the window bound admits frames only as credit
        // allows — and the server never held more than `window`.
        EXPECT_EQ(completed + shed_window, 12);
        EXPECT_GT(completed, 0);
        client.close();
    }
    server.stop();
    const NetStats stats = server.stats();
    EXPECT_EQ(stats.shed_window + stats.frames_in, 12);
    EXPECT_GT(stats.shed_window, 0);
    EXPECT_EQ(stats.outcomes_out, stats.frames_in);
}

TEST(NetServer, OverloadShedsByPriorityInsteadOfQueueing)
{
    NetFixture fx(1, 2);
    // Two worker threads + a deep pipeline so frames genuinely sit in
    // flight while the IO loop keeps decoding.
    EngineConfig ec = NetFixture::engine_config(2);
    Engine engine(fx.net, ec);
    ServerConfig sc;
    sc.window = 64;
    sc.max_inflight = 4; // Priority 0 sheds at 1 in flight.
    Server server(engine, sc);
    server.start();
    {
        Client client("127.0.0.1", server.port());
        ClientSession &lo = client.open_session("lo", /*priority=*/0);
        const Tensor &img = fx.streams[0].frames[0].image;
        std::vector<u64> seqs;
        for (int i = 0; i < 16; ++i) {
            seqs.push_back(lo.submit_uncredited(img));
        }
        i64 shed_overload = 0;
        for (const u64 seq : seqs) {
            const NetOutcome out = lo.wait(seq);
            if (out.shed &&
                out.shed_reason == net::ShedReason::kOverload) {
                ++shed_overload;
            }
        }
        // Priority 0's share of max_inflight=4 is one slot: the burst
        // mostly sheds instead of queueing into the engine.
        EXPECT_GT(shed_overload, 0);
        client.close();
    }
    server.stop();
    EXPECT_GT(server.stats().shed_overload, 0);
    EXPECT_EQ(server.stats().outcomes_out, server.stats().frames_in);
}

TEST(NetServer, AdmissionControlRejectsWithTypedNacks)
{
    NetFixture fx(1, 1);
    Engine engine(fx.net, NetFixture::engine_config(1));
    ServerConfig sc;
    sc.max_sessions = 1;
    Server server(engine, sc);
    server.start();
    {
        Client client("127.0.0.1", server.port());
        (void)client.open_session("cam0");
        // Session limit.
        try {
            client.open_session("cam1");
            FAIL() << "expected session-limit NACK";
        } catch (const net::NetError &e) {
            EXPECT_NE(std::string(e.what()).find("session_limit"),
                      std::string::npos)
                << e.what();
        }
        // Duplicate name from a second connection.
        Client other("127.0.0.1", server.port());
        // (max_sessions=1 hits first unless we raise it; duplicate
        // is checked before the engine, after the limits — so use a
        // server with room in the next block instead.)
        try {
            other.open_session("cam0");
            FAIL() << "expected NACK";
        } catch (const net::NetError &) {
        }
        other.close();
        client.close();
    }
    server.stop();
    EXPECT_GE(server.stats().sessions_rejected, 2);

    // Duplicate-name rejection, specifically.
    Server server2(engine, ServerConfig{});
    server2.start();
    {
        Client a("127.0.0.1", server2.port());
        Client b("127.0.0.1", server2.port());
        (void)a.open_session("cam");
        try {
            b.open_session("cam");
            FAIL() << "expected duplicate-session NACK";
        } catch (const net::NetError &e) {
            EXPECT_NE(std::string(e.what()).find("duplicate_session"),
                      std::string::npos)
                << e.what();
        }
        b.close();
        a.close();
    }
    server2.stop();
}

TEST(NetServer, ConnectionLimitSendsNackAndCloses)
{
    NetFixture fx(1, 1);
    Engine engine(fx.net, NetFixture::engine_config(1));
    ServerConfig sc;
    sc.max_connections = 1;
    Server server(engine, sc);
    server.start();
    Client first("127.0.0.1", server.port());
    (void)first.open_session("cam");
    // The second connection is told why before the close.
    Client second("127.0.0.1", server.port());
    try {
        second.open_session("late");
        FAIL() << "expected connection-limit rejection";
    } catch (const net::NetError &) {
        // Either the typed NACK or the close races first; both
        // surface as NetError. The server counted the rejection:
    }
    EXPECT_EQ(server.stats().connections_rejected, 1);
    second.close();
    first.close();
    server.stop();
}

TEST(NetServer, MalformedTrafficGetsProtocolNackAndClose)
{
    NetFixture fx(1, 1);
    Engine engine(fx.net, NetFixture::engine_config(1));
    Server server(engine);
    server.start();
    {
        // Raw socket speaking garbage.
        net::Fd fd = net::tcp_connect("127.0.0.1", server.port());
        // At least one full header's worth of garbage: the server
        // rejects at the 32-byte header boundary.
        const char junk[] = "GET /frames HTTP/1.1\r\nHost: nope\r\n\r\n";
        ASSERT_GT(::send(fd.get(), junk, sizeof(junk) - 1, 0), 0);
        // The server answers with a NACK(protocol) then EOF.
        std::vector<u8> buf(4096);
        size_t got = 0;
        for (;;) {
            const ssize_t n = ::recv(fd.get(), buf.data() + got,
                                     buf.size() - got, 0);
            if (n <= 0) {
                break;
            }
            got += static_cast<size_t>(n);
        }
        ASSERT_GE(got, net::kHeaderSize);
        FrameDecoder dec;
        dec.feed(buf.data(), got);
        Message msg;
        ASSERT_TRUE(dec.next(&msg));
        EXPECT_EQ(msg.header.type, MsgType::kNack);
        EXPECT_EQ(net::parse_nack(msg.payload).reason,
                  net::NackReason::kProtocol);
    }
    server.stop();
    EXPECT_EQ(server.stats().protocol_errors, 1);
}

TEST(NetServer, GracefulDrainLosesNoInFlightFrames)
{
    NetFixture fx(1, 2);
    // Worker threads so submitted frames are genuinely in flight
    // when the drain starts.
    Engine engine(fx.net, NetFixture::engine_config(2));
    ServerConfig sc;
    sc.window = 32;
    Server server(engine, sc);
    server.start();
    Client client("127.0.0.1", server.port());
    ClientSession &s = client.open_session("cam");
    const Tensor &img = fx.streams[0].frames[0].image;
    std::vector<u64> seqs;
    for (int i = 0; i < 8; ++i) {
        seqs.push_back(s.submit(img));
    }
    // The zero-loss guarantee covers *admitted* frames — frames still
    // in the socket buffer when the drain flag rises are shed
    // (draining), which is correct but not what this test pins. Wait
    // for the IO thread to admit all 8 before pulling the plug.
    while (server.stats().frames_in < 8) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Stop while those frames are in flight: every admitted frame
    // must still get its OUTCOME before the server closes.
    std::thread stopper([&server]() { server.stop(); });
    i64 completed = 0;
    for (const u64 seq : seqs) {
        const NetOutcome out = s.wait(seq);
        if (!out.shed) {
            EXPECT_FALSE(out.failed);
            ++completed;
        }
    }
    stopper.join();
    EXPECT_EQ(completed, 8) << "graceful drain lost in-flight frames";
    EXPECT_EQ(server.stats().outcomes_out, 8);
    EXPECT_TRUE(client.server_closed()); // Server said BYE.
    client.close();
    // New connections are refused once the listener is down.
    EXPECT_THROW(Client("127.0.0.1", server.port()), net::NetError);
}

TEST(NetServer, DrainingServerShedsNewFramesAndNacksNewSessions)
{
    // Pin the drain-refusal paths without a racing workload: enter
    // drain via request_stop() while a client holds a live session,
    // then watch the next frame get SHED(draining). The session was
    // opened before the drain began.
    NetFixture fx(1, 1);
    Engine engine(fx.net, NetFixture::engine_config(1));
    Server server(engine);
    server.start();
    Client client("127.0.0.1", server.port());
    ClientSession &s = client.open_session("cam");
    server.request_stop();
    // Submit a frame racing the drain. Three outcomes are legal: it
    // slipped in before the flag and completed; the server read it
    // while draining and shed it (draining); or the drain finished
    // first and the connection closed under the frame, in which case
    // wait() throws the descriptive down-connection error. What the
    // test pins is that none of these hang and the shed, when it
    // happens, is typed kDraining.
    try {
        const u64 seq =
            s.submit_uncredited(fx.streams[0].frames[0].image);
        const NetOutcome out = s.wait(seq);
        if (out.shed) {
            EXPECT_EQ(out.shed_reason, net::ShedReason::kDraining);
        }
    } catch (const net::NetError &) {
        // Drain won the race: BYE/close beat the frame.
    }
    server.stop();
    client.close();
}

// --------------------------------------------------------------------
// Cross-thread Session::wait regression (the IO-loop shape)

TEST(SessionWait, ResetFromAnotherThreadWakesWaiters)
{
    // Regression: wait()'s predicate used to watch only completion,
    // and reset() never notified the condition variable — a waiter on
    // a not-yet-completed ticket slept forever when another thread
    // reset the engine. The waiter must wake and get the stale-ticket
    // ConfigError instead.
    NetFixture fx(1, 1);
    Engine engine(fx.net, NetFixture::engine_config(1));
    Session &cam = engine.session("cam");
    (void)cam.submit(fx.streams[0].frames[0].image);
    FrameTicket future;
    future.session = cam.index();
    future.frame = 5; // Never submitted: would block forever.
    future.epoch = 0;
    std::atomic<bool> woke{false};
    std::thread waiter([&]() {
        EXPECT_THROW(cam.wait(future), ConfigError);
        woke.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(woke.load());
    engine.reset();
    waiter.join();
    EXPECT_TRUE(woke.load());
}

TEST(SessionWait, CloseFromAnotherThreadDeliversOutcomes)
{
    NetFixture fx(1, 4);
    Engine engine(fx.net, NetFixture::engine_config(2));
    Session &cam = engine.session("cam");
    std::vector<FrameTicket> tickets;
    for (const LabeledFrame &frame : fx.streams[0].frames) {
        tickets.push_back(cam.submit(frame.image));
    }
    std::thread closer([&engine]() { engine.close(); });
    // close() drains, so every ticket's outcome arrives; wait() from
    // this thread must return them, not hang or throw.
    for (const FrameTicket &t : tickets) {
        const FrameOutcome out = cam.wait(t);
        EXPECT_FALSE(out.failed);
    }
    closer.join();
    EXPECT_THROW(cam.submit(fx.streams[0].frames[0].image), ConfigError);
}

TEST(SessionWait, ForgottenTicketsThrowInsteadOfHanging)
{
    NetFixture fx(1, 2);
    Engine engine(fx.net, NetFixture::engine_config(1));
    Session &cam = engine.session("cam");
    const FrameTicket t0 = cam.submit(fx.streams[0].frames[0].image);
    cam.forget_outcomes();
    EXPECT_THROW(cam.wait(t0), ConfigError);
    EXPECT_THROW(cam.poll(t0), ConfigError);
    // The session keeps working after the trim.
    const FrameTicket t1 = cam.submit(fx.streams[0].frames[1].image);
    EXPECT_FALSE(cam.wait(t1).failed);
}

TEST(SessionSink, OutcomeSinkSeesEveryFrameInOrder)
{
    NetFixture fx(1, 4);
    Engine engine(fx.net, NetFixture::engine_config(2));
    Session &cam = engine.session("cam");
    std::mutex mu;
    std::vector<i64> seen;
    cam.set_outcome_sink([&](const FrameOutcome &out) {
        std::lock_guard<std::mutex> lock(mu);
        seen.push_back(out.frame);
    });
    for (const LabeledFrame &frame : fx.streams[0].frames) {
        (void)cam.submit(frame.image);
    }
    engine.flush();
    cam.set_outcome_sink(nullptr);
    ASSERT_EQ(seen.size(), fx.streams[0].frames.size());
    for (size_t i = 0; i < seen.size(); ++i) {
        EXPECT_EQ(seen[i], static_cast<i64>(i));
    }
}

} // namespace
} // namespace eva2
