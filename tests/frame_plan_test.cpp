/**
 * @file
 * Tests for the compiled FramePlan stage graph and its pipelined
 * execution: stage-level parity with the serial AmcPipeline facade,
 * the digest-identity sweep over scenarios x policies x kernels
 * (pipelined vs serial frame execution), and the zero-allocation
 * guarantee of the full ingest-to-commit predicted-frame path.
 */
#include <gtest/gtest.h>

#include "api/registry.h"
#include "cnn/model_zoo.h"
#include "runtime/stage_scheduler.h"
#include "runtime/stream_executor.h"
#include "runtime/thread_pool.h"
#include "video/scenarios.h"

namespace eva2 {
namespace {

AmcOptions
small_options()
{
    AmcOptions opts;
    opts.search_radius = 10;
    return opts;
}

/** A small single-stream workload on the scaled AlexNet. */
struct PlanFixture
{
    Network net;
    std::vector<Sequence> streams;

    PlanFixture()
        : net(build_scaled(alexnet_spec(),
                           [] {
                               ScaledBuildOptions o;
                               o.input = Shape{1, 96, 96};
                               return o;
                           }()))
    {
        streams = multi_stream_set(/*seed=*/5, /*num_streams=*/1,
                                   /*frames_per_stream=*/4,
                                   /*size=*/96);
    }
};

TEST(FramePlan, StageHalvesMatchTheSerialFacade)
{
    PlanFixture fx;
    // Serial reference through the classic facade.
    AmcPipeline reference(fx.net,
                          std::make_unique<StaticRatePolicy>(2),
                          small_options());
    // The same frames through explicit front/suffix stage calls.
    AmcPipeline staged(fx.net, std::make_unique<StaticRatePolicy>(2),
                       small_options());
    FramePlan &plan = staged.frame_plan();
    plan.set_depth(2);
    ScratchArena arena;
    for (i64 f = 0; f < static_cast<i64>(fx.streams[0].size()); ++f) {
        const Tensor &frame = fx.streams[0][f].image;
        const AmcFrameResult expect = reference.process(frame);
        const FrontResult front =
            plan.run_front(frame, f % 2, arena, nullptr);
        const Tensor &out = plan.run_suffix(f % 2, arena, nullptr);
        EXPECT_EQ(front.is_key, expect.is_key) << "frame " << f;
        EXPECT_EQ(front.me_add_ops, expect.me_add_ops);
        EXPECT_DOUBLE_EQ(front.features.match_error,
                         expect.features.match_error);
        EXPECT_TRUE(out == expect.output) << "frame " << f;
        EXPECT_TRUE(plan.slot_activation(f % 2) ==
                    expect.target_activation)
            << "frame " << f;
    }
    EXPECT_EQ(plan.stats().frames, reference.stats().frames);
    EXPECT_EQ(plan.stats().key_frames, reference.stats().key_frames);
}

TEST(FramePlan, SlotRingRejectsOutOfDepthSlots)
{
    PlanFixture fx;
    AmcPipeline pipeline(fx.net, nullptr, small_options());
    FramePlan &plan = pipeline.frame_plan();
    ScratchArena arena;
    EXPECT_EQ(plan.depth(), 1);
    EXPECT_THROW(
        plan.run_front(fx.streams[0][0].image, 1, arena, nullptr),
        ConfigError);
    EXPECT_THROW(plan.set_depth(0), ConfigError);
    plan.set_depth(3);
    plan.run_front(fx.streams[0][0].image, 2, arena, nullptr);
    EXPECT_NO_THROW(plan.run_suffix(2, arena, nullptr));
    // Slots the front never wrote have no activation to read.
    EXPECT_THROW(plan.run_suffix(1, arena, nullptr), ConfigError);
}

TEST(FramePlan, ForcedPathsMatchFacadeForcedPaths)
{
    PlanFixture fx;
    AmcPipeline a(fx.net, nullptr, small_options());
    AmcPipeline b(fx.net, nullptr, small_options());
    ScratchArena arena;

    const Tensor key_out = a.run_key(fx.streams[0][0].image);
    b.frame_plan().run_front_key(fx.streams[0][0].image, 0, arena,
                                 nullptr);
    EXPECT_TRUE(key_out ==
                b.frame_plan().run_suffix(0, arena, nullptr));

    const AmcFrameResult pred = a.run_predicted(fx.streams[0][1].image);
    const FrontResult front = b.frame_plan().run_front_predicted(
        fx.streams[0][1].image, 0, arena, nullptr);
    EXPECT_FALSE(front.is_key);
    EXPECT_EQ(front.me_add_ops, pred.me_add_ops);
    EXPECT_TRUE(pred.output ==
                b.frame_plan().run_suffix(0, arena, nullptr));
}

/**
 * The acceptance sweep: for every scenario kind in the multi-stream
 * serving set, every key-frame policy, and both CNN kernels, the
 * pipelined FramePlan path must reproduce the legacy serial frame
 * loop's per-stream digests bit for bit.
 */
TEST(FramePlanSweep, PipelinedDigestsMatchSerialEverywhere)
{
    Network net = build_scaled(alexnet_spec(), [] {
        ScaledBuildOptions o;
        o.input = Shape{1, 96, 96};
        return o;
    }());
    // 5 streams cycle through all scenario kinds (objects, pan,
    // occlusion, static, chaotic).
    const std::vector<Sequence> streams =
        multi_stream_set(/*seed=*/7, /*num_streams=*/5,
                         /*frames_per_stream=*/4, /*size=*/96);

    const std::vector<std::string> policies = {
        "every_frame",
        "static:interval=3",
        "adaptive_error:th=0.05,max_gap=6",
        "adaptive_motion:th=60,max_gap=6",
    };
    const std::vector<ConvKernel> kernels = {ConvKernel::kIm2colGemm,
                                             ConvKernel::kDirect};

    for (const std::string &policy : policies) {
        for (const ConvKernel kernel : kernels) {
            auto options = [&](i64 depth, i64 threads) {
                StreamExecutorOptions o;
                o.num_threads = threads;
                o.pipeline_depth = depth;
                o.amc = small_options();
                o.amc.plan.conv_kernel = kernel;
                o.make_policy = [policy](i64) {
                    return PolicyRegistry::instance().make(policy);
                };
                return o;
            };
            StreamExecutor serial(net, options(1, 1));
            StreamExecutor pipelined(net, options(3, 4));
            const BatchResult a = serial.run(streams);
            const BatchResult b = pipelined.run(streams);
            ASSERT_EQ(a.streams.size(), b.streams.size());
            for (size_t i = 0; i < a.streams.size(); ++i) {
                EXPECT_EQ(a.streams[i].digest, b.streams[i].digest)
                    << "policy " << policy << ", kernel "
                    << conv_kernel_name(kernel) << ", stream "
                    << a.streams[i].name;
                EXPECT_EQ(a.streams[i].stats.key_frames,
                          b.streams[i].stats.key_frames);
                EXPECT_EQ(a.streams[i].me_add_ops,
                          b.streams[i].me_add_ops);
            }
            EXPECT_EQ(a.digest(), b.digest())
                << "policy " << policy << ", kernel "
                << conv_kernel_name(kernel);
        }
    }
}

TEST(FramePlanSweep, MemoizationModeMatchesToo)
{
    Network net = build_scaled(alexnet_spec(), [] {
        ScaledBuildOptions o;
        o.input = Shape{1, 96, 96};
        return o;
    }());
    const std::vector<Sequence> streams =
        classification_test_set(/*seed=*/11, /*num_sequences=*/2,
                                /*frames_per_sequence=*/4,
                                /*size=*/96);
    auto options = [&](i64 depth, i64 threads) {
        StreamExecutorOptions o;
        o.num_threads = threads;
        o.pipeline_depth = depth;
        o.amc = small_options();
        o.amc.motion_mode = MotionMode::kMemoization;
        o.make_policy = [](i64) {
            return std::make_unique<StaticRatePolicy>(3);
        };
        return o;
    };
    StreamExecutor serial(net, options(1, 1));
    StreamExecutor pipelined(net, options(3, 4));
    EXPECT_EQ(serial.run(streams).digest(),
              pipelined.run(streams).digest());
}

/**
 * The allocation acceptance bar: once warm, a predicted frame's whole
 * journey — ingest, RFBME, motion-field build, warp, suffix, digest,
 * commit — performs zero tensor-buffer allocations.
 */
TEST(FramePlanAllocation, SteadyStatePredictedFramesAllocateNothing)
{
    Network net = build_scaled(alexnet_spec(), [] {
        ScaledBuildOptions o;
        o.input = Shape{1, 96, 96};
        return o;
    }());
    // A huge static interval: after the first key frame, everything
    // is a predicted frame.
    StreamExecutorOptions opts;
    opts.num_threads = 1; // Inline: the global counter stays ours.
    opts.pipeline_depth = 3;
    opts.amc = small_options();
    opts.make_policy = [](i64) {
        return std::make_unique<StaticRatePolicy>(1000);
    };
    StreamExecutor exec(net, opts);

    const std::vector<Sequence> warmup =
        multi_stream_set(/*seed=*/13, 1, 3, 96);
    const std::vector<Sequence> steady =
        multi_stream_set(/*seed=*/13, 1, 6, 96);
    exec.run(warmup); // Key frame + slot/workspace growth.

    const u64 before = Tensor::buffer_allocations();
    const BatchResult batch = exec.run(steady);
    const u64 after = Tensor::buffer_allocations();
    EXPECT_EQ(batch.total_key_frames(), 0)
        << "steady-state run unexpectedly re-keyed";
    EXPECT_EQ(batch.total_frames(), 6);
    EXPECT_EQ(after - before, 0u)
        << "predicted frames allocated tensor buffers";
}

/**
 * The memoization short-circuit holds the same bar: re-serving the
 * stored key activation must alias the stored tensor (shared buffer),
 * not deep-copy it, so steady-state memoized frames allocate nothing.
 */
TEST(FramePlanAllocation, SteadyStateMemoizedFramesAllocateNothing)
{
    Network net = build_scaled(alexnet_spec(), [] {
        ScaledBuildOptions o;
        o.input = Shape{1, 96, 96};
        return o;
    }());
    StreamExecutorOptions opts;
    opts.num_threads = 1;
    opts.pipeline_depth = 3;
    opts.amc = small_options();
    opts.amc.motion_mode = MotionMode::kMemoization;
    opts.make_policy = [](i64) {
        return std::make_unique<StaticRatePolicy>(1000);
    };
    StreamExecutor exec(net, opts);

    const std::vector<Sequence> warmup =
        multi_stream_set(/*seed=*/13, 1, 3, 96);
    const std::vector<Sequence> steady =
        multi_stream_set(/*seed=*/13, 1, 6, 96);
    exec.run(warmup);

    const u64 before = Tensor::buffer_allocations();
    const BatchResult batch = exec.run(steady);
    const u64 after = Tensor::buffer_allocations();
    EXPECT_EQ(batch.total_key_frames(), 0)
        << "steady-state run unexpectedly re-keyed";
    EXPECT_EQ(after - before, 0u)
        << "memoized frames deep-copied the stored activation";
}

TEST(StageScheduler, CommitsInOrderAcrossDepths)
{
    PlanFixture fx;
    const std::vector<Sequence> streams =
        multi_stream_set(/*seed=*/21, 1, 8, 96);
    for (const i64 depth : {1, 2, 4}) {
        ThreadPool pool(3);
        AmcPipeline pipeline(fx.net,
                             std::make_unique<StaticRatePolicy>(3),
                             small_options());
        std::vector<i64> order;
        StageSchedulerOptions opts;
        opts.depth = depth;
        StageScheduler scheduler(
            pipeline, &pool, opts, [&order](FrameCommit commit) {
                order.push_back(commit.frame);
            });
        for (const LabeledFrame &frame : streams[0].frames) {
            scheduler.enqueue(frame.image);
        }
        scheduler.drain();
        ASSERT_EQ(order.size(), streams[0].frames.size());
        for (size_t i = 0; i < order.size(); ++i) {
            EXPECT_EQ(order[i], static_cast<i64>(i))
                << "depth " << depth;
        }
        EXPECT_EQ(scheduler.committed(), scheduler.submitted());
    }
}

TEST(StageScheduler, BadFrameCommitsItsErrorAndTheStreamContinues)
{
    PlanFixture fx;
    ThreadPool pool(2);
    AmcPipeline pipeline(fx.net, nullptr, small_options());
    i64 failures = 0;
    i64 successes = 0;
    StageScheduler scheduler(pipeline, &pool, {},
                             [&](FrameCommit commit) {
                                 if (commit.error) {
                                     ++failures;
                                 } else {
                                     ++successes;
                                 }
                             });
    scheduler.enqueue(fx.streams[0][0].image);
    scheduler.enqueue(Tensor(1, 8, 8)); // Wrong shape: ingest throws.
    scheduler.enqueue(fx.streams[0][1].image);
    scheduler.drain();
    EXPECT_EQ(failures, 1);
    EXPECT_EQ(successes, 2);
}

} // namespace
} // namespace eva2
