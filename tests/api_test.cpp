/**
 * @file
 * Tests for the eva2::Engine serving API: spec parsing and the
 * string-keyed registries, EngineConfig validation, batch runs
 * matching the legacy StreamExecutor bit-for-bit, frame-level Session
 * submission (including incremental feeding split across bursts and
 * concurrent multi-threaded submission), and RunReport structure/JSON.
 *
 * The digest-identity tests are the API's core contract: no matter
 * how frames reach the engine — one batch, several chunked batches,
 * or frame-by-frame session submission from several threads — the
 * outputs must be bit-identical to a serial legacy run.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "api/registry.h"
#include "api/run_report.h"
#include "cnn/model_zoo.h"
#include "runtime/stream_executor.h"
#include "util/json.h"
#include "video/scenarios.h"

namespace eva2 {
namespace {

// --------------------------------------------------------------------
// Component spec parsing

TEST(ComponentSpec, ParsesKindAndParams)
{
    const ComponentSpec spec =
        parse_component_spec("adaptive_error:th=0.05,max_gap=8");
    EXPECT_EQ(spec.kind, "adaptive_error");
    ASSERT_EQ(spec.params.size(), 2u);
    EXPECT_DOUBLE_EQ(spec.number("th", -1.0), 0.05);
    EXPECT_EQ(spec.integer("max_gap", -1), 8);
    EXPECT_FALSE(spec.has("interval"));
    EXPECT_EQ(spec.integer("interval", 42), 42);
}

TEST(ComponentSpec, BareKindHasNoParams)
{
    const ComponentSpec spec = parse_component_spec("bilinear");
    EXPECT_EQ(spec.kind, "bilinear");
    EXPECT_TRUE(spec.params.empty());
}

TEST(ComponentSpec, RejectsMalformedSpecs)
{
    EXPECT_THROW(parse_component_spec(""), ConfigError);
    EXPECT_THROW(parse_component_spec(":th=1"), ConfigError);
    EXPECT_THROW(parse_component_spec("static:"), ConfigError);
    EXPECT_THROW(parse_component_spec("static:interval"), ConfigError);
    EXPECT_THROW(parse_component_spec("static:=4"), ConfigError);
    EXPECT_THROW(parse_component_spec("static:interval=4,"),
                 ConfigError);
    EXPECT_THROW(parse_component_spec("static:interval=4,interval=5"),
                 ConfigError);
}

TEST(ComponentSpec, RejectsBadNumbers)
{
    const ComponentSpec spec = parse_component_spec("p:th=abc,n=1.5");
    EXPECT_THROW(spec.number("th", 0.0), ConfigError);
    EXPECT_THROW(spec.integer("n", 0), ConfigError);
    EXPECT_DOUBLE_EQ(spec.number("n", 0.0), 1.5);
}

TEST(ComponentSpec, RejectsIntegerOverflow)
{
    const ComponentSpec spec =
        parse_component_spec("static:interval=99999999999999999999");
    EXPECT_THROW(spec.integer("interval", 0), ConfigError);
    EXPECT_THROW(PolicyRegistry::instance().make(
                     "static:interval=99999999999999999999"),
                 ConfigError);
}

TEST(ComponentSpec, AllowOnlyCatchesTypos)
{
    const ComponentSpec spec =
        parse_component_spec("adaptive_error:threshold=0.05");
    EXPECT_THROW(spec.allow_only({"th", "max_gap"}), ConfigError);
}

// --------------------------------------------------------------------
// Registries

TEST(PolicyRegistry, BuildsBuiltInPolicies)
{
    PolicyRegistry &reg = PolicyRegistry::instance();
    EXPECT_EQ(reg.make("every_frame")->name(), "static(1)");
    EXPECT_EQ(reg.make("static:interval=4")->name(), "static(4)");
    EXPECT_EQ(reg.make("adaptive_error:th=0.05")->name(),
              reg.make("block_error:th=0.05")->name());
    EXPECT_NE(reg.make("adaptive_motion:th=10,max_gap=4"), nullptr);
}

TEST(PolicyRegistry, UnknownKindNamesAlternatives)
{
    try {
        PolicyRegistry::instance().make("no_such_policy");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("no_such_policy"), std::string::npos);
        EXPECT_NE(msg.find("adaptive_error"), std::string::npos);
    }
}

TEST(PolicyRegistry, FactoryValidatesEagerlyAndMintsFreshInstances)
{
    PolicyRegistry &reg = PolicyRegistry::instance();
    EXPECT_THROW(reg.factory("static:bogus=1"), ConfigError);
    auto make = reg.factory("static:interval=3");
    auto a = make();
    auto b = make();
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(a->name(), b->name());
}

TEST(PolicyRegistry, AcceptsCustomRegistrations)
{
    PolicyRegistry &reg = PolicyRegistry::instance();
    reg.add("test_always", [](const ComponentSpec &spec) {
        spec.allow_only({});
        return std::make_unique<StaticRatePolicy>(1);
    });
    EXPECT_TRUE(reg.contains("test_always"));
    EXPECT_NE(reg.make("test_always"), nullptr);
}

TEST(InterpRegistry, ResolvesModes)
{
    InterpRegistry &reg = InterpRegistry::instance();
    EXPECT_EQ(reg.resolve("bilinear"), InterpMode::kBilinear);
    EXPECT_EQ(reg.resolve("nearest"), InterpMode::kNearest);
    EXPECT_THROW(reg.resolve("cubic"), ConfigError);
}

TEST(CodecRegistry, AppliesStorageOptions)
{
    CodecRegistry &reg = CodecRegistry::instance();
    AmcOptions amc;
    reg.apply("rle_q88:prune=0.3", amc);
    EXPECT_TRUE(amc.quantize_storage);
    EXPECT_DOUBLE_EQ(amc.storage_prune_rel, 0.3);
    reg.apply("dense", amc);
    EXPECT_FALSE(amc.quantize_storage);
    EXPECT_DOUBLE_EQ(amc.storage_prune_rel, 0.0);
    EXPECT_THROW(reg.apply("zip", amc), ConfigError);
    EXPECT_THROW(reg.apply("rle_q88:prune=-1", amc), ConfigError);
}

// --------------------------------------------------------------------
// Option and config validation

TEST(AmcOptionsValidation, RejectsDegenerateSearchParameters)
{
    const Network net = build_scaled(alexnet_spec());
    AmcOptions opts;
    opts.search_stride = 0;
    EXPECT_THROW(AmcPipeline(net, nullptr, opts), ConfigError);
    opts = AmcOptions{};
    opts.search_radius = -2;
    EXPECT_THROW(AmcPipeline(net, nullptr, opts), ConfigError);
    opts = AmcOptions{};
    opts.storage_prune_rel = -0.1;
    EXPECT_THROW(AmcPipeline(net, nullptr, opts), ConfigError);
    opts = AmcOptions{};
    opts.search_stride = opts.search_radius + 1;
    EXPECT_THROW(AmcPipeline(net, nullptr, opts), ConfigError);
}

TEST(AmcOptionsValidation, RejectsExplicitTargetOutOfBounds)
{
    const Network net = build_scaled(alexnet_spec());
    AmcOptions opts;
    opts.target_choice = TargetChoice::kExplicit;
    opts.explicit_target = net.num_layers();
    EXPECT_THROW(AmcPipeline(net, nullptr, opts), ConfigError);
    opts.explicit_target = -1;
    EXPECT_THROW(AmcPipeline(net, nullptr, opts), ConfigError);
}

TEST(EngineConfig, ValidatesOnConstruction)
{
    const Network net = build_scaled(alexnet_spec());
    {
        EngineConfig config;
        config.policy = "no_such_policy";
        EXPECT_THROW(Engine(net, config), ConfigError);
    }
    {
        EngineConfig config;
        config.interp = "cubic";
        EXPECT_THROW(Engine(net, config), ConfigError);
    }
    {
        EngineConfig config;
        config.codec = "zip";
        EXPECT_THROW(Engine(net, config), ConfigError);
    }
    {
        EngineConfig config;
        config.target = "layer:9999";
        EXPECT_THROW(Engine(net, config), ConfigError);
    }
    {
        EngineConfig config;
        config.target = "somewhere";
        EXPECT_THROW(Engine(net, config), ConfigError);
    }
    {
        EngineConfig config;
        config.motion = "teleport";
        EXPECT_THROW(Engine(net, config), ConfigError);
    }
    {
        EngineConfig config;
        config.search_stride = 0;
        EXPECT_THROW(Engine(net, config), ConfigError);
    }
    {
        EngineConfig config;
        config.num_threads = -1;
        EXPECT_THROW(Engine(net, config), ConfigError);
    }
    EngineConfig ok;
    ok.policy = "adaptive_error:th=0.02,max_gap=8";
    ok.target = "early";
    EXPECT_NO_THROW(ok.validate(net));
}

// --------------------------------------------------------------------
// Engine behaviour

/** Shared fixture: a small network and a multi-stream workload. */
struct EngineFixture
{
    Network net;
    std::vector<Sequence> streams;

    EngineFixture()
        : net(build_scaled(alexnet_spec())),
          streams(multi_stream_set(/*seed=*/9, /*num_streams=*/3,
                                   /*frames_per_stream=*/4))
    {
    }

    EngineConfig
    config(i64 threads) const
    {
        EngineConfig c;
        c.policy = "static:interval=2";
        c.num_threads = threads;
        return c;
    }

    StreamExecutorOptions
    legacy_options() const
    {
        StreamExecutorOptions opts;
        opts.num_threads = 1;
        opts.make_policy = [](i64) {
            return std::make_unique<StaticRatePolicy>(2);
        };
        return opts;
    }

    u64
    legacy_digest()
    {
        StreamExecutor serial(net, legacy_options());
        return serial.run(streams).digest();
    }
};

TEST(Engine, BatchRunMatchesLegacyExecutorBitForBit)
{
    EngineFixture fx;
    Engine engine(fx.net, fx.config(4));
    const RunReport report = engine.run(fx.streams);
    EXPECT_EQ(report.digest, fx.legacy_digest());
    EXPECT_EQ(report.frames, 3 * 4);
    ASSERT_EQ(report.streams.size(), 3u);
    for (const StreamReport &s : report.streams) {
        EXPECT_EQ(s.frames, 4);
        EXPECT_GE(s.key_frames, 1);
        EXPECT_GT(s.me_add_ops, 0);
    }
    EXPECT_GT(report.wall_ms, 0.0);
    EXPECT_GT(report.frames_per_second(), 0.0);
}

TEST(Engine, SessionSubmissionMatchesBatchBitForBit)
{
    EngineFixture fx;
    Engine engine(fx.net, fx.config(4));
    for (const Sequence &seq : fx.streams) {
        engine.session(seq.name).submit_all(seq);
    }
    const RunReport report = engine.report();
    EXPECT_EQ(report.digest, fx.legacy_digest());
    EXPECT_EQ(report.frames, 3 * 4);
    ASSERT_EQ(report.streams.size(), 3u);
    EXPECT_EQ(report.streams[0].name, fx.streams[0].name);
}

TEST(Engine, SerialEngineProcessesInline)
{
    EngineFixture fx;
    Engine engine(fx.net, fx.config(1));
    EXPECT_EQ(engine.num_threads(), 1);
    Session &cam = engine.session("cam");
    const FrameTicket t = cam.submit(fx.streams[0].frames[0].image);
    // No worker pool: the frame completed on the submitting thread.
    const auto outcome = cam.poll(t);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_TRUE(outcome->is_key);
    EXPECT_EQ(outcome->frame, 0);
}

TEST(Engine, IncrementalFeedingIsBitIdenticalToOneBatch)
{
    // Satellite: splitting each stream's frames across two
    // submissions must reproduce the one-shot digests exactly —
    // session state (stored key frame, RLE buffer, policy state)
    // persists across the split.
    EngineFixture fx;
    const u64 expected = fx.legacy_digest();

    // Two engine.run() calls over chunked sequences: per-chunk
    // digests must match a legacy executor fed the same chunks, and
    // stream state must persist across the boundary (each run()
    // restarts the digest chain, so chunks compare chunk-to-chunk).
    {
        std::vector<Sequence> first, second;
        for (const Sequence &seq : fx.streams) {
            Sequence a, b;
            a.name = b.name = seq.name;
            for (i64 i = 0; i < seq.size(); ++i) {
                ((i < seq.size() / 2) ? a : b)
                    .frames.push_back(seq[i]);
            }
            first.push_back(std::move(a));
            second.push_back(std::move(b));
        }
        Engine engine(fx.net, fx.config(2));
        const RunReport r1 = engine.run(first);
        const RunReport r2 = engine.run(second);
        StreamExecutor legacy(fx.net, fx.legacy_options());
        EXPECT_EQ(r1.digest, legacy.run(first).digest());
        EXPECT_EQ(r2.digest, legacy.run(second).digest());
        EXPECT_EQ(r1.frames + r2.frames, 3 * 4);
    }

    // Session path: two submit bursts with a drain between them must
    // chain into exactly the one-batch digest.
    {
        Engine engine(fx.net, fx.config(2));
        for (const Sequence &seq : fx.streams) {
            Session &cam = engine.session(seq.name);
            for (i64 i = 0; i < seq.size() / 2; ++i) {
                cam.submit(seq[i]);
            }
        }
        engine.flush();
        for (const Sequence &seq : fx.streams) {
            Session &cam = engine.session(seq.name);
            for (i64 i = seq.size() / 2; i < seq.size(); ++i) {
                cam.submit(seq[i]);
            }
        }
        const RunReport report = engine.report();
        EXPECT_EQ(report.digest, expected);
        EXPECT_EQ(report.frames, 3 * 4);
        // Fewer key frames than a fresh-per-chunk run would need:
        // the split reused each stream's stored key frame.
        for (const StreamReport &s : report.streams) {
            EXPECT_EQ(s.frames, 4);
        }
    }
}

TEST(Engine, PerFrameOutcomesMatchBatchRecords)
{
    EngineFixture fx;
    // Batch on one engine...
    Engine batch_engine(fx.net, fx.config(1));
    const RunReport batch = batch_engine.run(fx.streams);
    // ...frame-level on another; every outcome must agree with the
    // batch FrameRecord-equivalents.
    Engine engine(fx.net, fx.config(2));
    Session &cam = engine.session(fx.streams[0].name);
    const std::vector<FrameTicket> tickets =
        cam.submit_all(fx.streams[0]);
    EXPECT_EQ(cam.submitted(), 4);
    for (size_t i = 0; i < tickets.size(); ++i) {
        const FrameOutcome outcome = cam.wait(tickets[i]);
        EXPECT_EQ(outcome.frame, static_cast<i64>(i));
        EXPECT_FALSE(outcome.failed);
    }
    EXPECT_EQ(cam.completed(), 4);
    EXPECT_EQ(cam.report().digest, batch.streams[0].digest);
}

TEST(Engine, ConcurrentSubmissionFromManyThreads)
{
    // The TSan target: many ingest threads, one per camera, pushing
    // frames concurrently while the engine's pool drains the strands.
    EngineFixture fx;
    Engine engine(fx.net, fx.config(4));
    // Create sessions up front so indices match stream order.
    for (const Sequence &seq : fx.streams) {
        engine.session(seq.name);
    }
    std::vector<std::thread> ingest;
    std::atomic<i64> submitted{0};
    for (const Sequence &seq : fx.streams) {
        ingest.emplace_back([&engine, &seq, &submitted]() {
            Session &cam = engine.session(seq.name);
            for (const LabeledFrame &frame : seq.frames) {
                cam.submit(frame);
                submitted.fetch_add(1);
            }
        });
    }
    for (std::thread &t : ingest) {
        t.join();
    }
    const RunReport report = engine.report();
    EXPECT_EQ(submitted.load(), 3 * 4);
    EXPECT_EQ(report.frames, 3 * 4);
    EXPECT_EQ(report.digest, fx.legacy_digest());
}

TEST(Engine, ResetReproducesFirstRun)
{
    EngineFixture fx;
    Engine engine(fx.net, fx.config(2));
    const RunReport first = engine.run(fx.streams);
    const RunReport second = engine.run(fx.streams);
    // State persisted: second run reuses stored key frames.
    EXPECT_EQ(second.frames, first.frames);
    engine.reset();
    const RunReport again = engine.run(fx.streams);
    EXPECT_EQ(again.digest, first.digest);
}

TEST(Engine, SubmitRejectsBadFrameShapeOnCallerThread)
{
    EngineFixture fx;
    Engine engine(fx.net, fx.config(2));
    Session &cam = engine.session("cam");
    EXPECT_THROW(cam.submit(Tensor(1, 8, 8)), ConfigError);
    // The session stays usable afterwards.
    cam.submit(fx.streams[0].frames[0].image);
    cam.drain();
    EXPECT_EQ(cam.completed(), 1);
}

TEST(Engine, StaleTicketsAreRejectedAfterReset)
{
    EngineFixture fx;
    Engine engine(fx.net, fx.config(1));
    Session &cam = engine.session("cam");
    const FrameTicket old =
        cam.submit(fx.streams[0].frames[0].image);
    engine.reset();
    // A pre-reset ticket must not resolve against the new epoch's
    // outcomes (or hang): it is rejected outright.
    EXPECT_THROW(cam.poll(old), ConfigError);
    EXPECT_THROW(cam.wait(old), ConfigError);
    const FrameTicket fresh =
        cam.submit(fx.streams[0].frames[0].image);
    EXPECT_FALSE(cam.wait(fresh).failed);
}

TEST(Engine, ForgetOutcomesBoundsMemoryButKeepsTheChain)
{
    EngineFixture fx;
    Engine engine(fx.net, fx.config(2));
    Session &cam = engine.session(fx.streams[0].name);
    const Sequence &seq = fx.streams[0];
    FrameTicket first_half{};
    for (i64 i = 0; i < seq.size() / 2; ++i) {
        first_half = cam.submit(seq[i]);
    }
    cam.forget_outcomes(); // Long-lived server trimming records.
    EXPECT_THROW(cam.poll(first_half), ConfigError);
    std::vector<FrameTicket> rest;
    for (i64 i = seq.size() / 2; i < seq.size(); ++i) {
        rest.push_back(cam.submit(seq[i]));
    }
    // Post-trim tickets still resolve, numbering uninterrupted...
    EXPECT_EQ(cam.wait(rest.front()).frame, seq.size() / 2);
    // ...and stats plus the digest chain survived the trim intact.
    cam.drain();
    EXPECT_EQ(cam.completed(), seq.size());
    StreamExecutor legacy(fx.net, fx.legacy_options());
    EXPECT_EQ(cam.report().digest,
              legacy.run({seq}).streams[0].digest);
}

TEST(ComponentSpec, RejectsNonFiniteNumbers)
{
    const ComponentSpec spec =
        parse_component_spec("p:a=nan,b=inf,c=-inf");
    EXPECT_THROW(spec.number("a", 0.0), ConfigError);
    EXPECT_THROW(spec.number("b", 0.0), ConfigError);
    EXPECT_THROW(spec.number("c", 0.0), ConfigError);
    EngineFixture fx;
    EngineConfig config;
    config.policy = "adaptive_error:th=nan";
    EXPECT_THROW(Engine(fx.net, config), ConfigError);
}

TEST(Engine, SessionsAreStableAndNamed)
{
    EngineFixture fx;
    Engine engine(fx.net, fx.config(2));
    Session &a = engine.session("cam_a");
    Session &b = engine.session("cam_b");
    EXPECT_NE(&a, &b);
    EXPECT_EQ(&a, &engine.session("cam_a"));
    EXPECT_EQ(a.index(), 0);
    EXPECT_EQ(b.index(), 1);
    EXPECT_EQ(engine.num_sessions(), 2);
    EXPECT_EQ(engine.find_session("cam_a"), &a);
    EXPECT_EQ(engine.find_session("nope"), nullptr);
}

TEST(Engine, ClosedEngineRejectsSubmissionDescriptively)
{
    // Satellite regression: submitting after close()/teardown must be
    // a loud, descriptive error — not undefined behavior against a
    // half-destroyed engine.
    EngineFixture fx;
    Engine engine(fx.net, fx.config(2));
    Session &cam = engine.session("cam");
    const FrameTicket t = cam.submit(fx.streams[0].frames[0].image);
    cam.wait(t);

    engine.close();
    EXPECT_TRUE(engine.closed());
    engine.close(); // Idempotent.

    try {
        cam.submit(fx.streams[0].frames[1].image);
        FAIL() << "submit after close did not throw";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("closed"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_THROW(engine.run(fx.streams), ConfigError);
    EXPECT_THROW(engine.session("new_cam"), ConfigError);

    // Completed work stays observable: the existing session is still
    // addressable and its outcome, report, and digests survive.
    EXPECT_EQ(&engine.session("cam"), &cam);
    ASSERT_TRUE(cam.poll(t).has_value());
    EXPECT_TRUE(cam.poll(t)->is_key);
    const RunReport report = engine.report();
    EXPECT_EQ(report.frames, 1);
}

TEST(Engine, PipelineDepthConfigIsValidatedAndEchoed)
{
    EngineFixture fx;
    EngineConfig bad = fx.config(2);
    bad.pipeline_depth = -1;
    EXPECT_THROW(Engine(fx.net, bad), ConfigError);

    EngineConfig serial_frames = fx.config(2);
    serial_frames.pipeline_depth = 1;
    Engine a(fx.net, serial_frames);
    EngineConfig pipelined = fx.config(2);
    pipelined.pipeline_depth = 4;
    Engine b(fx.net, pipelined);
    const RunReport ra = a.run(fx.streams);
    const RunReport rb = b.run(fx.streams);
    EXPECT_EQ(ra.pipeline_depth, 1);
    EXPECT_EQ(rb.pipeline_depth, 4);
    // The execution-shape knob must not change a single output bit.
    EXPECT_EQ(ra.digest, rb.digest);
    EXPECT_NE(ra.to_json(0).find("\"pipeline_depth\":1"),
              std::string::npos);
}

// --------------------------------------------------------------------
// RunReport and JSON

TEST(RunReport, CollectsStageTimings)
{
    EngineFixture fx;
    Engine engine(fx.net, fx.config(2));
    const RunReport report = engine.run(fx.streams);
    ASSERT_EQ(report.stages.size(),
              static_cast<size_t>(kNumAmcStages));
    auto calls = [&](const char *name) -> i64 {
        for (const StageReport &s : report.stages) {
            if (s.stage == name) {
                return s.calls;
            }
        }
        return -1;
    };
    // 3 streams x 4 frames, static:interval=2 -> 2 keys per stream.
    EXPECT_EQ(calls("prefix"), 6);
    EXPECT_EQ(calls("suffix"), 12);
    EXPECT_EQ(calls("motion_estimation"), 9); // All non-first frames.
    EXPECT_EQ(calls("warp"), 6);
    EXPECT_EQ(calls("encode"), 6);

    // Stage rows cover exactly one run, like frames and wall_ms: a
    // second run must not report doubled (lifetime) counts.
    const RunReport second = engine.run(fx.streams);
    for (const StageReport &s : second.stages) {
        if (s.stage == "suffix") {
            EXPECT_EQ(s.calls, 12);
        }
    }
}

TEST(RunReport, JsonIsWellFormedAndCarriesHeadlineNumbers)
{
    EngineFixture fx;
    Engine engine(fx.net, fx.config(2));
    const RunReport report = engine.run(fx.streams);
    const std::string json = report.to_json();

    // Structural sanity: balanced brackets outside strings.
    i64 depth = 0;
    bool in_string = false;
    for (size_t i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (in_string) {
            if (c == '\\') {
                ++i;
            } else if (c == '"') {
                in_string = false;
            }
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            --depth;
            EXPECT_GE(depth, 0);
        }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_string);

    for (const char *key :
         {"\"network\"", "\"policy\"", "\"wall_ms\"", "\"frames\"",
          "\"key_fraction\"", "\"fps\"", "\"me_add_ops\"",
          "\"digest\"", "\"streams\"", "\"stages\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    EXPECT_NE(json.find("\"static:interval=2\""), std::string::npos);
}

TEST(JsonEscape, SharedHelperCoversQuotesBackslashesAndControls)
{
    // The one escape routine every report path shares (satellite):
    // stage/kernel/stream names with hostile characters cannot
    // corrupt a saved report.
    EXPECT_EQ(json_escape("plain_name"), "plain_name");
    EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(json_escape("tab\there"), "tab\\there");
    EXPECT_EQ(json_escape("nl\nrc\r"), "nl\\nrc\\r");
    EXPECT_EQ(json_escape(std::string("bell\x01") + "x"),
              "bell\\u0001x");

    // A report whose stage/kernel-bearing names carry quotes and
    // backslashes still serializes through the helper: the raw name
    // never appears unescaped.
    RunReport report;
    report.network = "net\"quoted\\name";
    StageReport stage;
    stage.stage = "stage\"x";
    report.stages.push_back(stage);
    PlanRecord plan;
    plan.scope = "prefix";
    PlanStepInfo step;
    step.layer = "conv\\1";
    step.kernel = "gemm\"fused";
    plan.steps.push_back(step);
    report.plan.push_back(plan);
    const std::string json = report.to_json(0);
    EXPECT_EQ(json.find("net\"quoted"), std::string::npos);
    EXPECT_NE(json.find("net\\\"quoted\\\\name"), std::string::npos);
    EXPECT_NE(json.find("stage\\\"x"), std::string::npos);
    EXPECT_NE(json.find("conv\\\\1"), std::string::npos);
    EXPECT_NE(json.find("gemm\\\"fused"), std::string::npos);
}

TEST(StageReportTest, OccupancyAndMeanLatencyRows)
{
    StageTimings timings;
    timings.on_stage(AmcStage::kSuffix, 30.0);
    timings.on_stage(AmcStage::kSuffix, 10.0);
    timings.on_stage(AmcStage::kMotionEstimation, 60.0);
    const std::vector<StageReport> rows =
        stage_reports(timings, /*wall_ms=*/50.0);
    ASSERT_EQ(rows.size(), static_cast<size_t>(kNumAmcStages));
    for (const StageReport &row : rows) {
        if (row.stage == "suffix") {
            EXPECT_DOUBLE_EQ(row.total_ms, 40.0);
            EXPECT_EQ(row.calls, 2);
            EXPECT_DOUBLE_EQ(row.mean_ms(), 20.0);
            EXPECT_DOUBLE_EQ(row.occupancy, 0.8);
        } else if (row.stage == "motion_estimation") {
            // Busy past the wall clock: overlapped execution.
            EXPECT_DOUBLE_EQ(row.occupancy, 1.2);
        } else {
            EXPECT_DOUBLE_EQ(row.occupancy, 0.0);
            EXPECT_DOUBLE_EQ(row.mean_ms(), 0.0);
        }
    }
    // Without a wall time, occupancies are simply absent (0).
    EXPECT_DOUBLE_EQ(stage_reports(timings)[0].occupancy, 0.0);
}

TEST(JsonWriterTest, EscapesAndNests)
{
    JsonWriter w(0);
    w.begin_object();
    w.member("s", "a\"b\\c\nd");
    w.member("i", i64{-3});
    w.member("b", true);
    w.key("a").begin_array().value(1.5).null().end_array();
    w.end_object();
    EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\",\"i\":-3,"
                       "\"b\":true,\"a\":[1.5,null]}");
}

TEST(JsonWriterTest, SplicesRawSubdocuments)
{
    JsonWriter inner(0);
    inner.begin_object().member("x", i64{1}).end_object();
    JsonWriter w(0);
    w.begin_object();
    w.key("nested").raw(inner.str());
    w.key("arr").begin_array().raw("[2,3]").end_array();
    w.end_object();
    EXPECT_EQ(w.str(), "{\"nested\":{\"x\":1},\"arr\":[[2,3]]}");
}

TEST(JsonWriterTest, RejectsStructuralMisuse)
{
    {
        JsonWriter w;
        w.begin_array();
        EXPECT_THROW(w.key("k"), InternalError);
    }
    {
        JsonWriter w;
        w.begin_object();
        EXPECT_THROW(w.value(i64{1}), InternalError);
    }
    {
        JsonWriter w;
        w.begin_object();
        EXPECT_THROW(w.str(), InternalError);
    }
}

TEST(RunReportTest, DigestHexFormatsFixedWidth)
{
    EXPECT_EQ(digest_hex(0), "0x0000000000000000");
    EXPECT_EQ(digest_hex(0xdeadbeefull), "0x00000000deadbeef");
}

} // namespace
} // namespace eva2
