// eva2-lint: hot-path
// Known-bad fixture for eva2_lint.py --self-test: a hot-path file
// committing every sin the hot-path rules exist to catch. Never
// compiled — only scanned.
#include <string>

namespace eva2_fixture {

int
process(int n)
{
    std::string label = "frame";                // eva2-lint-expect: hot-path-string
    label += std::to_string(n);                 // eva2-lint-expect: hot-path-string
    int *scratch = new int[8];                  // eva2-lint-expect: hot-path-alloc
    // A comment mentioning std::string and new must NOT be flagged.
    require(n >= 0,                             // eva2-lint-expect: hot-path-require
            "bad: " + std::to_string(n));       // eva2-lint-expect: hot-path-string
    require(n >= 0, "literal message is fine");
    delete[] scratch;
    return static_cast<int>(label.size());
}

} // namespace eva2_fixture
