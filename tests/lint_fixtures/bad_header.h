// eva2-lint-expect: header-self-sufficient
// Known-bad fixture: uses std::vector without including <vector>, so
// it must fail the standalone-compile (IWYU self-sufficiency) check.
#ifndef EVA2_TESTS_LINT_FIXTURES_BAD_HEADER_H
#define EVA2_TESTS_LINT_FIXTURES_BAD_HEADER_H

namespace eva2_fixture {

std::vector<int> missing_include();

} // namespace eva2_fixture

#endif // EVA2_TESTS_LINT_FIXTURES_BAD_HEADER_H
