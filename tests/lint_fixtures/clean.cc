// eva2-lint: hot-path
// Known-good fixture: a hot-path file the linter must pass untouched
// (no expect markers — any finding here is a false positive).

namespace eva2_fixture {

double
accumulate(const float *a, long n)
{
    require(n >= 0, "accumulate: n must be >= 0");
    double acc = 0.0;
    for (long i = 0; i < n; ++i) {
        acc += static_cast<double>(a[i]);
    }
    return acc;
}

} // namespace eva2_fixture
