// Known-bad fixture for eva2_lint.py --self-test: raw std lock
// primitives outside src/util/mutex.h. Never compiled — only scanned.
#include <mutex>                // eva2-lint-expect: raw-mutex
#include <condition_variable>   // eva2-lint-expect: raw-mutex

namespace eva2_fixture {

struct Queue
{
    // "std::mutex" in a comment or string must NOT be flagged.
    const char *doc = "guards via std::mutex";
    std::mutex mu;              // eva2-lint-expect: raw-mutex
    std::condition_variable cv; // eva2-lint-expect: raw-mutex

    void
    touch()
    {
        std::lock_guard<std::mutex> lock(mu); // eva2-lint-expect: raw-mutex
        // (one line, two matches: lock_guard and its mutex argument)
    }
};

} // namespace eva2_fixture
