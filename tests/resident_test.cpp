/**
 * @file
 * Tests for the resident-session memory tier: the `memory=` spec,
 * ResidentSetManager bookkeeping (bytes, LRU order, hibernate/hydrate
 * counters), and the Engine-level contract — a hard budget enforced
 * by LRU hibernation that is *invisible to results*: every digest
 * must match a budget-less run bit for bit, because hibernation only
 * re-encodes state the quantizing codec already snapped to the Q8.8
 * grid. See docs/resident_state.md.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/engine.h"
#include "api/run_report.h"
#include "cnn/model_zoo.h"
#include "runtime/resident_set.h"
#include "sparse/rle.h"
#include "video/scenarios.h"

namespace eva2 {
namespace {

// --------------------------------------------------------------------
// memory= spec parsing

TEST(MemorySpec, ParsesOffAndBudgets)
{
    EXPECT_FALSE(resolve_memory_spec("off").enabled);
    EXPECT_FALSE(resolve_memory_spec("").enabled);

    const MemoryBudget plain = resolve_memory_spec("budget_mb:64");
    EXPECT_TRUE(plain.enabled);
    EXPECT_EQ(plain.budget_bytes, 64LL * 1024 * 1024);
    EXPECT_FALSE(plain.hibernate);

    const MemoryBudget hib =
        resolve_memory_spec("budget_mb:8,hibernate=on");
    EXPECT_TRUE(hib.enabled);
    EXPECT_EQ(hib.budget_bytes, 8LL * 1024 * 1024);
    EXPECT_TRUE(hib.hibernate);

    EXPECT_FALSE(
        resolve_memory_spec("budget_mb:8,hibernate=off").hibernate);
}

TEST(MemorySpec, RejectsMalformed)
{
    for (const char *bad :
         {"on", "budget:4", "budget_mb:", "budget_mb:0", "budget_mb:-3",
          "budget_mb:abc", "budget_mb:4x", "budget_mb:4,",
          "budget_mb:4,hibernate", "budget_mb:4,hibernate=maybe",
          "budget_mb:4,hibernate=on,extra=1"}) {
        EXPECT_THROW(resolve_memory_spec(bad), ConfigError) << bad;
    }
}

TEST(MemorySpec, HibernateRequiresQuantizingCodec)
{
    // The dense codec cannot round-trip through the compressed
    // hibernated form, so the combination is a config error — caught
    // at Engine construction, not at first eviction.
    const Network net = build_scaled(alexnet_spec());
    EngineConfig config;
    config.codec = "dense";
    config.memory = "budget_mb:64,hibernate=on";
    EXPECT_THROW(Engine(net, config), ConfigError);

    // Tracking without hibernation is fine with any codec.
    config.memory = "budget_mb:64";
    EXPECT_NO_THROW(Engine(net, config));
}

// --------------------------------------------------------------------
// ResidentSetManager bookkeeping

MemoryBudget
budget_of(i64 bytes, bool hibernate)
{
    MemoryBudget b;
    b.enabled = true;
    b.budget_bytes = bytes;
    b.hibernate = hibernate;
    return b;
}

TEST(ResidentSetManager, TracksBytesAndPeak)
{
    ResidentSetManager mgr(budget_of(1000, true));
    mgr.note_resident(0, 400);
    mgr.note_resident(1, 500);
    EXPECT_EQ(mgr.total_bytes(), 900);
    EXPECT_FALSE(mgr.over_budget());
    mgr.note_resident(2, 300);
    EXPECT_EQ(mgr.total_bytes(), 1200);
    EXPECT_TRUE(mgr.over_budget());
    // Re-reporting a session replaces its footprint, never adds.
    mgr.note_resident(1, 200);
    EXPECT_EQ(mgr.total_bytes(), 900);

    const MemoryStats stats = mgr.stats();
    EXPECT_EQ(stats.resident_bytes, 900);
    EXPECT_EQ(stats.peak_resident_bytes, 1200);
    EXPECT_EQ(stats.sessions_tracked, 3);
    EXPECT_EQ(stats.sessions_resident, 3);
    EXPECT_EQ(stats.sessions_hibernated, 0);
    EXPECT_DOUBLE_EQ(stats.bytes_per_session(), 300.0);
}

TEST(ResidentSetManager, VictimsFollowLruOrder)
{
    ResidentSetManager mgr(budget_of(10, true));
    mgr.note_resident(0, 100);
    mgr.note_resident(1, 100);
    mgr.note_resident(2, 100);
    EXPECT_EQ(mgr.victims(8, /*exclude=*/-1),
              (std::vector<i64>{0, 1, 2}));
    // Touching a session moves it to the MRU end...
    mgr.note_resident(0, 100);
    EXPECT_EQ(mgr.victims(8, -1), (std::vector<i64>{1, 2, 0}));
    // ...the committing session is excluded, and `max` truncates.
    EXPECT_EQ(mgr.victims(8, 2), (std::vector<i64>{1, 0}));
    EXPECT_EQ(mgr.victims(1, -1), (std::vector<i64>{1}));
}

TEST(ResidentSetManager, HibernationLeavesLruUntilNextTouch)
{
    ResidentSetManager mgr(budget_of(10, true));
    mgr.note_resident(0, 100);
    mgr.note_resident(1, 100);
    mgr.note_hibernated(0, 30);
    EXPECT_EQ(mgr.total_bytes(), 130);
    // A hibernated session is not a victim candidate.
    EXPECT_EQ(mgr.victims(8, -1), (std::vector<i64>{1}));
    EXPECT_EQ(mgr.hibernation_count(0), 1);
    EXPECT_EQ(mgr.hibernation_count(1), 0);

    MemoryStats stats = mgr.stats();
    EXPECT_EQ(stats.sessions_hibernated, 1);
    EXPECT_EQ(stats.sessions_resident, 1);
    EXPECT_EQ(stats.hibernations, 1);

    // Hydration restores the footprint, rejoins the LRU at the MRU
    // end, and records the latency sample.
    mgr.note_hydrated(0, 100, /*latency_us=*/250.0);
    EXPECT_EQ(mgr.total_bytes(), 200);
    EXPECT_EQ(mgr.victims(8, -1), (std::vector<i64>{1, 0}));
    stats = mgr.stats();
    EXPECT_EQ(stats.sessions_hibernated, 0);
    EXPECT_EQ(stats.hydrations, 1);
    EXPECT_DOUBLE_EQ(stats.hydrate_p50_us, 250.0);
    EXPECT_DOUBLE_EQ(stats.hydrate_p99_us, 250.0);
}

// --------------------------------------------------------------------
// Engine-level behaviour

/**
 * Shared fixture: a small network and proto streams whose pixels are
 * pre-snapped to the Q8.8 grid, so the hibernated (quantized) key
 * state round-trips losslessly and digest identity is exact even for
 * sessions that were evicted mid-stream.
 */
struct ResidentFixture
{
    Network net;
    std::vector<Sequence> protos;

    ResidentFixture()
        : net(build_scaled(alexnet_spec())),
          protos(multi_stream_set(/*seed=*/31, /*num_streams=*/3,
                                  /*frames_per_stream=*/4))
    {
        for (Sequence &seq : protos) {
            for (LabeledFrame &frame : seq.frames) {
                frame.image = quantize_q88(frame.image);
            }
        }
    }

    EngineConfig
    config(const std::string &memory) const
    {
        EngineConfig c;
        c.policy = "static:interval=2";
        c.num_threads = 1;
        c.pipeline_depth = 1;
        c.memory = memory;
        return c;
    }

    /** Digest of each proto stream from a budget-less run. */
    std::vector<u64>
    control_digests(const EngineConfig &base) const
    {
        EngineConfig c = base;
        c.memory = "off";
        Engine engine(net, c);
        for (const Sequence &seq : protos) {
            engine.session(seq.name).submit_all(seq);
        }
        engine.flush();
        std::vector<u64> digests;
        for (const Sequence &seq : protos) {
            digests.push_back(engine.session(seq.name).report().digest);
        }
        return digests;
    }

    /**
     * Resident bytes of one fully-fed session under an effectively
     * unlimited budget: the fixture's unit for sizing real budgets.
     */
    i64
    probe_session_bytes() const
    {
        Engine engine(net, config("budget_mb:1048576"));
        engine.session("probe").submit_all(protos[0]);
        engine.flush();
        const i64 bytes = engine.resident_manager()->stats().resident_bytes;
        EXPECT_GT(bytes, 0);
        return bytes;
    }
};

TEST(ResidentTier, ReportCarriesMemorySection)
{
    ResidentFixture fx;
    Engine engine(fx.net, fx.config("budget_mb:4,hibernate=on"));
    engine.session(fx.protos[0].name).submit_all(fx.protos[0]);
    engine.flush();

    const RunReport report = engine.report();
    EXPECT_EQ(report.memory_spec, "budget_mb:4,hibernate=on");
    EXPECT_EQ(report.memory.budget_bytes, 4LL * 1024 * 1024);
    EXPECT_TRUE(report.memory.hibernate);
    EXPECT_GT(report.memory.resident_bytes, 0);
    EXPECT_EQ(report.memory.sessions_tracked, 1);

    const std::string json = report.to_json();
    EXPECT_NE(json.find("\"memory\""), std::string::npos);
    EXPECT_NE(json.find("\"resident_bytes\""), std::string::npos);
    EXPECT_NE(json.find("\"hydrate_p99_us\""), std::string::npos);

    // memory=off engines report a disabled section, not garbage.
    Engine off(fx.net, fx.config("off"));
    off.session("cam").submit_all(fx.protos[0]);
    off.flush();
    EXPECT_EQ(off.report().memory.budget_bytes, 0);
    EXPECT_EQ(off.resident_manager(), nullptr);
    EXPECT_FALSE(off.memory_pressure());
}

TEST(ResidentTier, MemoryPressureWithoutHibernationSignalsShed)
{
    // budget_mb:N without hibernate=on never touches session state;
    // it only raises memory_pressure(), which the serving front end
    // turns into SHED/memory for new frames.
    ResidentFixture fx;
    const i64 per = fx.probe_session_bytes();
    const i64 budget = 1LL * 1024 * 1024;
    const i64 sessions = budget / per + 2;

    Engine engine(fx.net, fx.config("budget_mb:1"));
    for (i64 i = 0; i < sessions; ++i) {
        Session &s = engine.session("cam" + std::to_string(i));
        s.submit_all(fx.protos[i % fx.protos.size()]);
    }
    engine.flush();
    EXPECT_TRUE(engine.memory_pressure());
    EXPECT_GT(engine.report().memory.resident_bytes, budget);
    // No hibernation tier: nothing was evicted.
    EXPECT_EQ(engine.report().memory.hibernations, 0);
}

TEST(ResidentTier, HibernationEnforcesBudgetInLruOrder)
{
    ResidentFixture fx;
    const i64 per = fx.probe_session_bytes();
    const i64 budget = 1LL * 1024 * 1024;
    // Enough sessions that their full-resident forms overflow the
    // budget by at least two sessions' worth.
    const i64 sessions = budget / per + 3;

    Engine engine(fx.net, fx.config("budget_mb:1,hibernate=on"));
    std::vector<Session *> all;
    for (i64 i = 0; i < sessions; ++i) {
        Session &s = engine.session("cam" + std::to_string(i));
        s.submit_all(fx.protos[i % fx.protos.size()]);
        engine.flush(); // Strict LRU order: one session at a time.
        all.push_back(&s);
    }

    const ResidentSetManager *mgr = engine.resident_manager();
    ASSERT_NE(mgr, nullptr);
    const MemoryStats stats = mgr->stats();
    EXPECT_GT(stats.hibernations, 0);
    EXPECT_LE(stats.resident_bytes, budget);
    EXPECT_FALSE(engine.memory_pressure());

    // Eviction must have walked the LRU order: the hibernated set is
    // a prefix of submission order — no session sleeps while a
    // less-recently-used one stays resident.
    bool seen_resident = false;
    i64 hibernated = 0;
    for (Session *s : all) {
        const bool hib = mgr->hibernation_count(s->index()) > 0;
        if (hib) {
            EXPECT_FALSE(seen_resident)
                << "session " << s->name()
                << " hibernated after a less-recently-used session "
                   "was left resident";
            ++hibernated;
        } else {
            seen_resident = true;
        }
    }
    EXPECT_GT(hibernated, 0);
    // The most recently used session must never be the victim.
    EXPECT_EQ(mgr->hibernation_count(all.back()->index()), 0);
}

TEST(ResidentTier, HibernateHydrateDigestIdentityAcrossConfigs)
{
    // The tier's core contract: for every policy x kernel config, a
    // budget so tight that sessions hibernate and rehydrate
    // mid-stream must reproduce the budget-less digests bit for bit.
    ResidentFixture fx;
    struct Case
    {
        const char *policy;
        const char *kernel;
    };
    const Case cases[] = {
        {"static:interval=2", "gemm"},
        {"static:interval=2", "direct"},
        {"adaptive_error:th=0.05,max_gap=8", "gemm"},
    };
    const i64 per = fx.probe_session_bytes();
    const i64 budget = 1LL * 1024 * 1024;
    const i64 sessions = budget / per + 3;
    const i64 frames = fx.protos[0].size();

    for (const Case &c : cases) {
        EngineConfig config = fx.config("budget_mb:1,hibernate=on");
        config.policy = c.policy;
        config.kernel = c.kernel;
        const std::vector<u64> expected = fx.control_digests(config);

        Engine engine(fx.net, config);
        std::vector<Session *> all;
        for (i64 i = 0; i < sessions; ++i) {
            all.push_back(
                &engine.session("cam" + std::to_string(i)));
        }
        // Pass-major submission: every session goes idle between its
        // first and second half, so LRU eviction hits sessions that
        // will come back — the hibernate -> hydrate -> predict path.
        for (i64 pass = 0; pass < 2; ++pass) {
            for (i64 i = 0; i < sessions; ++i) {
                const Sequence &seq =
                    fx.protos[i % fx.protos.size()];
                for (i64 f = pass * frames / 2;
                     f < (pass + 1) * frames / 2; ++f) {
                    all[i]->submit(seq[f].image);
                }
            }
        }
        engine.flush();

        const MemoryStats stats = engine.resident_manager()->stats();
        EXPECT_GT(stats.hibernations, 0)
            << c.policy << "/" << c.kernel;
        EXPECT_GT(stats.hydrations, 0) << c.policy << "/" << c.kernel;

        for (i64 i = 0; i < sessions; ++i) {
            EXPECT_EQ(all[i]->report().digest,
                      expected[i % fx.protos.size()])
                << "session " << i << " under " << c.policy << "/"
                << c.kernel;
        }
    }
}

TEST(ResidentTier, BatchRunHydratesAndMatchesBudgetlessDigest)
{
    // Engine::run drives pipelines below the session layer, so it
    // must hydrate hibernated sessions up front; a batch after a
    // session-mode phase that hibernated everything still matches.
    ResidentFixture fx;
    EngineConfig config = fx.config("budget_mb:1,hibernate=on");

    Engine off(fx.net, fx.config("off"));
    const u64 expected = off.run(fx.protos).digest;

    Engine engine(fx.net, config);
    EXPECT_EQ(engine.run(fx.protos).digest, expected);
}

TEST(ResidentTier, ResetForgetsTrackedSessions)
{
    ResidentFixture fx;
    Engine engine(fx.net, fx.config("budget_mb:4,hibernate=on"));
    engine.session("cam").submit_all(fx.protos[0]);
    engine.flush();
    EXPECT_GT(engine.resident_manager()->stats().resident_bytes, 0);

    engine.reset();
    const MemoryStats stats = engine.resident_manager()->stats();
    EXPECT_EQ(stats.resident_bytes, 0);
    EXPECT_EQ(stats.sessions_tracked, 0);
}

} // namespace
} // namespace eva2
