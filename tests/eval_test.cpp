/**
 * @file
 * Tests for the evaluation module: metrics (top-1, agreement, mAP with
 * difficult-box semantics), the trainable linear head, and the
 * calibrated detector/classifier read-outs.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "cnn/model_zoo.h"
#include "eval/classifier.h"
#include "eval/detector.h"
#include "eval/experiment.h"
#include "eval/oracle_motion.h"
#include "eval/retrain.h"
#include "video/scenarios.h"

namespace eva2 {
namespace {

TEST(Metrics, Top1)
{
    Tensor t(4, 1, 1);
    t[2] = 5.0f;
    EXPECT_EQ(top1(t), 2);
}

TEST(Metrics, Agreement)
{
    EXPECT_DOUBLE_EQ(agreement({1, 2, 3, 4}, {1, 2, 0, 4}), 0.75);
    EXPECT_DOUBLE_EQ(agreement({}, {}), 0.0);
}

TEST(Metrics, PerfectDetectionsGiveFullMap)
{
    std::vector<GtBox> truths{{BoundingBox{0, 0, 10, 10, 1}, 0},
                              {BoundingBox{20, 20, 40, 40, 2}, 0}};
    std::vector<Detection> dets{
        {BoundingBox{0, 0, 10, 10, 1}, 0.9, 0},
        {BoundingBox{20, 20, 40, 40, 2}, 0.8, 0}};
    EXPECT_DOUBLE_EQ(mean_average_precision(dets, truths, 0.5), 1.0);
}

TEST(Metrics, MissedAndSpuriousDetections)
{
    std::vector<GtBox> truths{{BoundingBox{0, 0, 10, 10, 1}, 0}};
    // No detections at all -> 0.
    EXPECT_DOUBLE_EQ(mean_average_precision({}, truths), 0.0);
    // A wrong-class detection does not match.
    std::vector<Detection> wrong{{BoundingBox{0, 0, 10, 10, 2}, 0.9, 0}};
    EXPECT_DOUBLE_EQ(mean_average_precision(wrong, truths), 0.0);
}

TEST(Metrics, FalsePositivesLowerPrecision)
{
    std::vector<GtBox> truths{{BoundingBox{0, 0, 10, 10, 1}, 0}};
    std::vector<Detection> dets{
        {BoundingBox{50, 50, 60, 60, 1}, 0.95, 0}, // FP ranked first
        {BoundingBox{0, 0, 10, 10, 1}, 0.90, 0}};
    const double ap = mean_average_precision(dets, truths, 0.5);
    EXPECT_LT(ap, 1.0);
    EXPECT_GT(ap, 0.0);
}

TEST(Metrics, DuplicateDetectionsCountOnce)
{
    // Two ground-truth boxes; the first is detected twice. The
    // duplicate must count as a false positive, which drags down the
    // precision of the lower-scored true positive on the second box.
    // (A trailing FP past full recall would not move interpolated AP,
    // so the duplicate is deliberately scored above the second TP.)
    std::vector<GtBox> truths{{BoundingBox{0, 0, 10, 10, 1}, 0},
                              {BoundingBox{30, 30, 40, 40, 1}, 0}};
    std::vector<Detection> dets{
        {BoundingBox{0, 0, 10, 10, 1}, 0.9, 0},
        {BoundingBox{0, 0, 10, 10, 1}, 0.8, 0},
        {BoundingBox{30, 30, 40, 40, 1}, 0.7, 0}};
    const double ap = mean_average_precision(dets, truths, 0.5);
    EXPECT_LT(ap, 1.0) << "second match of the same GT is a FP";
    EXPECT_NEAR(ap, 0.5 + 0.5 * (2.0 / 3.0), 1e-9);
}

TEST(Metrics, FramesKeptSeparate)
{
    std::vector<GtBox> truths{{BoundingBox{0, 0, 10, 10, 1}, 0}};
    // Same box but on a different frame: no match.
    std::vector<Detection> dets{{BoundingBox{0, 0, 10, 10, 1}, 0.9, 7}};
    EXPECT_DOUBLE_EQ(mean_average_precision(dets, truths), 0.0);
}

TEST(Metrics, DifficultBoxesIgnored)
{
    BoundingBox hard{0, 0, 10, 10, 1};
    hard.difficult = true;
    std::vector<GtBox> truths{{hard, 0},
                              {BoundingBox{30, 30, 40, 40, 1}, 0}};
    // One detection on the difficult box (ignored, not a FP) and one
    // on the real box.
    std::vector<Detection> dets{
        {BoundingBox{0, 0, 10, 10, 1}, 0.95, 0},
        {BoundingBox{30, 30, 40, 40, 1}, 0.9, 0}};
    EXPECT_DOUBLE_EQ(mean_average_precision(dets, truths, 0.5), 1.0);
}

TEST(Metrics, OnlyDifficultGtSkipsClass)
{
    BoundingBox hard{0, 0, 10, 10, 1};
    hard.difficult = true;
    std::vector<GtBox> truths{{hard, 0},
                              {BoundingBox{30, 30, 40, 40, 2}, 0}};
    std::vector<Detection> dets{
        {BoundingBox{30, 30, 40, 40, 2}, 0.9, 0}};
    // Class 1 has only difficult GT -> skipped; class 2 perfect.
    EXPECT_DOUBLE_EQ(mean_average_precision(dets, truths, 0.5), 1.0);
}

TEST(LinearHead, LearnsLinearlySeparableData)
{
    Rng rng(1);
    std::vector<LabeledFeatures> data;
    for (int i = 0; i < 300; ++i) {
        LabeledFeatures ex;
        const i64 cls = rng.uniform_int(0, 2);
        ex.label = cls;
        ex.x = {static_cast<float>(rng.normal(cls == 0 ? 2.0 : -1.0, 0.3)),
                static_cast<float>(rng.normal(cls == 1 ? 2.0 : -1.0, 0.3)),
                static_cast<float>(rng.normal(cls == 2 ? 2.0 : -1.0, 0.3))};
        data.push_back(ex);
    }
    LinearHead head = LinearHead::train(data, 3, 40, 0.3, 2);
    EXPECT_GT(head.accuracy(data), 0.97);
    // Probabilities are a distribution.
    auto p = head.probabilities(data[0].x);
    double total = 0.0;
    for (double v : p) {
        total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(LinearHead, DeterministicTraining)
{
    std::vector<LabeledFeatures> data;
    Rng rng(2);
    for (int i = 0; i < 50; ++i) {
        data.push_back(LabeledFeatures{
            {rng.uniform_f(-1, 1), rng.uniform_f(-1, 1)},
            rng.uniform_int(0, 1)});
    }
    LinearHead a = LinearHead::train(data, 2, 10, 0.2, 7);
    LinearHead b = LinearHead::train(data, 2, 10, 0.2, 7);
    for (const auto &ex : data) {
        EXPECT_EQ(a.predict(ex.x), b.predict(ex.x));
    }
}

TEST(PooledFeatures, AveragesPerChannel)
{
    Tensor act(2, 2, 2);
    act.at(0, 0, 0) = 4.0f;
    act.at(1, 1, 1) = 8.0f;
    auto f = pooled_features(act);
    ASSERT_EQ(f.size(), 2u);
    EXPECT_FLOAT_EQ(f[0], 1.0f);
    EXPECT_FLOAT_EQ(f[1], 2.0f);
}

TEST(MotionSourceNames, MatchFigure14Labels)
{
    EXPECT_STREQ(motion_source_name(MotionSource::kRfbme), "RFBME");
    EXPECT_STREQ(motion_source_name(MotionSource::kDenseFlow),
                 "FlowNet2-s (sub)");
    EXPECT_STREQ(motion_source_name(MotionSource::kOldKey),
                 "old key frame");
    EXPECT_STREQ(motion_source_name(MotionSource::kOracleMotion),
                 "oracle motion");
}

TEST(OracleMotion, PureBackgroundPanIsExact)
{
    SceneConfig cfg;
    cfg.height = 48;
    cfg.width = 48;
    cfg.seed = 5;
    cfg.pan_vy = 1.0;
    cfg.pan_vx = -2.0;
    SyntheticVideo video(cfg);
    const LabeledFrame key = video.render(0);
    const LabeledFrame cur = video.render(3);
    MotionField f = oracle_backward_motion(key, cur);
    for (i64 y = 0; y < 48; ++y) {
        for (i64 x = 0; x < 48; ++x) {
            EXPECT_DOUBLE_EQ(f.at(y, x).dy, -3.0);
            EXPECT_DOUBLE_EQ(f.at(y, x).dx, 6.0);
        }
    }
}

TEST(OracleMotion, SpritePixelsFollowSprite)
{
    SceneConfig cfg;
    cfg.height = 64;
    cfg.width = 64;
    cfg.seed = 6;
    SpriteConfig s;
    s.cls = 2;
    s.cy = 32.0;
    s.cx = 32.0;
    s.vy = 0.0;
    s.vx = 3.0;
    s.half_h = 10.0;
    s.half_w = 10.0;
    cfg.sprites.push_back(s);
    SyntheticVideo video(cfg);
    const LabeledFrame key = video.render(0);
    const LabeledFrame cur = video.render(2);
    MotionField f = oracle_backward_motion(key, cur);
    // Center of the sprite at frame 2 sits at x = 38; its backward
    // offset is -6. Background pixels have zero motion.
    EXPECT_DOUBLE_EQ(f.at(32, 38).dx, -6.0);
    EXPECT_DOUBLE_EQ(f.at(32, 38).dy, 0.0);
    EXPECT_DOUBLE_EQ(f.at(4, 4).dx, 0.0);
    EXPECT_DOUBLE_EQ(f.at(4, 4).dy, 0.0);
}

TEST(OracleMotion, SceneCutYieldsZeroField)
{
    SceneConfig cfg;
    cfg.height = 32;
    cfg.width = 32;
    cfg.seed = 7;
    cfg.pan_vx = 2.0;
    cfg.scene_cut_frame = 2;
    SyntheticVideo video(cfg);
    MotionField f =
        oracle_backward_motion(video.render(0), video.render(3));
    EXPECT_DOUBLE_EQ(f.total_magnitude(), 0.0);
}

TEST(OracleMotion, OraclePredictionBeatsStaleOnPan)
{
    // Warping with exact motion must reconstruct the target
    // activation better than reusing the stale key activation.
    Network net = build_scaled(fasterm_spec());
    const i64 target = net.default_target_index();
    SceneConfig cfg = panning_scene(9, 2.0, 128);
    SyntheticVideo video(cfg);
    const LabeledFrame key = video.render(0);
    const LabeledFrame cur = video.render(4);
    const Tensor truth = net.forward_prefix(cur.image, target);
    const Tensor oracle_pred = predict_target_activation(
        net, target, key, cur, MotionSource::kOracleMotion);
    const Tensor stale = predict_target_activation(
        net, target, key, cur, MotionSource::kOldKey);
    double oracle_err = 0.0;
    double stale_err = 0.0;
    for (i64 i = 0; i < truth.size(); ++i) {
        oracle_err += std::fabs(
            static_cast<double>(oracle_pred[i]) - truth[i]);
        stale_err +=
            std::fabs(static_cast<double>(stale[i]) - truth[i]);
    }
    EXPECT_LT(oracle_err, stale_err);
}

class ReadoutTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        spec_ = new NetworkSpec(fasterm_spec());
        ScaledBuildOptions opts;
        opts.input = Shape{1, 192, 192};
        net_ = new Network(build_scaled(*spec_, opts));
        target_ = net_->find_layer(spec_->late_target);
        detector_ = new ActivationDetector(
            ActivationDetector::calibrate(*net_, target_));
    }

    static void
    TearDownTestSuite()
    {
        delete detector_;
        delete net_;
        delete spec_;
        detector_ = nullptr;
        net_ = nullptr;
        spec_ = nullptr;
    }

    static NetworkSpec *spec_;
    static Network *net_;
    static i64 target_;
    static ActivationDetector *detector_;
};

NetworkSpec *ReadoutTest::spec_ = nullptr;
Network *ReadoutTest::net_ = nullptr;
i64 ReadoutTest::target_ = -1;
ActivationDetector *ReadoutTest::detector_ = nullptr;

TEST_F(ReadoutTest, FindsCenteredObjectWithCorrectClass)
{
    // A large centred object of a held-out seed must be detected.
    i64 correct = 0;
    for (i64 cls = 0; cls < kNumClasses; ++cls) {
        SceneConfig cfg =
            classification_scene(4444 + static_cast<u64>(cls), cls, 0.0,
                                 192);
        SyntheticVideo video(cfg);
        const LabeledFrame f = video.render(0);
        Tensor act = net_->forward_prefix(f.image, target_);
        for (const Detection &d : detector_->detect(act, 0)) {
            if (d.box.cls == cls &&
                d.box.iou(f.truth.boxes[0]) > 0.15) {
                ++correct;
                break;
            }
        }
    }
    EXPECT_GE(correct, 6) << "at least 6 of 8 classes must be found";
}

TEST_F(ReadoutTest, EmptySceneYieldsFewDetections)
{
    SceneConfig cfg;
    cfg.height = 192;
    cfg.width = 192;
    cfg.seed = 999;
    SyntheticVideo video(cfg);
    Tensor act = net_->forward_prefix(video.render(0).image, target_);
    EXPECT_LE(detector_->detect(act, 0).size(), 2u);
}

TEST_F(ReadoutTest, DetectionMovesWithObject)
{
    SceneConfig cfg = classification_scene(5555, 3, 0.0, 192);
    cfg.sprites[0].vx = 4.0;
    cfg.sprites[0].wobble_amp = 0.0;
    SyntheticVideo video(cfg);
    auto detect_center_x = [&](i64 t) {
        Tensor act =
            net_->forward_prefix(video.render(t).image, target_);
        double best_score = -1.0;
        double cx = -1.0;
        for (const Detection &d : detector_->detect(act, 0)) {
            if (d.score > best_score) {
                best_score = d.score;
                cx = 0.5 * (d.box.x0 + d.box.x1);
            }
        }
        return cx;
    };
    const double x0 = detect_center_x(0);
    const double x8 = detect_center_x(8);
    ASSERT_GE(x0, 0.0);
    ASSERT_GE(x8, 0.0);
    EXPECT_GT(x8 - x0, 8.0) << "32px of motion must move the detection";
}

TEST(Classifier, CalibratedAccuracyOnEasyScenes)
{
    Network net = build_scaled(alexnet_spec());
    PrototypeClassifier clf = PrototypeClassifier::calibrate(net);
    i64 correct = 0;
    for (i64 cls = 0; cls < kNumClasses; ++cls) {
        // Held-out seeds, slow drift.
        SceneConfig cfg =
            classification_scene(31337 + static_cast<u64>(cls) * 7, cls,
                                 0.2, 128);
        SyntheticVideo video(cfg);
        const Tensor act = net.forward_prefix(
            video.render(3).image, net.default_target_index());
        if (clf.classify(act) == cls) {
            ++correct;
        }
    }
    EXPECT_GE(correct, 6) << "classifier separates most classes";
}

TEST(Experiment, NewKeyIsPerfectOracleAgreement)
{
    NetworkSpec spec = fasterm_spec();
    ScaledBuildOptions opts;
    opts.input = Shape{1, 192, 192};
    Network net = build_scaled(spec, opts);
    const i64 target = net.find_layer(spec.late_target);
    ActivationDetector det = ActivationDetector::calibrate(net, target);
    auto seqs = detection_test_set(5, 2, 6, 192);
    GapDetectionResult r = detection_at_gap(net, det, seqs, 2,
                                            MotionSource::kNewKey,
                                            InterpMode::kBilinear,
                                            target, 3);
    EXPECT_DOUBLE_EQ(r.map_oracle, 1.0);
    EXPECT_GT(r.evaluated_frames, 0);
}

} // namespace
} // namespace eva2
