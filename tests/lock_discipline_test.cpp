/**
 * @file
 * Regression pins for the concurrency bugs the thread-safety
 * annotation pass (PR 10) surfaced, plus a stress test for the
 * self-pipe wake path's EINTR handling.
 *
 * The headline bug: Engine::report() (and reset()) used to drain
 * sessions while holding the engine mutex. A commit still in flight
 * re-enters the engine through note_commit_resident ->
 * evict_to_budget, which takes that same mutex — so the commit
 * blocked forever on the mutex, the drain waited forever on the
 * commit, and the serving shape net::Server::report() exercises
 * (stats from one thread, frames from another) deadlocked. The fix
 * snapshots the session list under the mutex and drains outside it;
 * these tests hammer exactly that interleaving and rely on the CTest
 * timeout to turn a regression back into a failure.
 */
#include <gtest/gtest.h>

#include <cerrno>
#include <csignal>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "cnn/model_zoo.h"
#include "net/socket.h"
#include "sparse/rle.h"
#include "video/scenarios.h"

namespace eva2 {
namespace {

/**
 * A small network plus Q8.8-pre-snapped streams (so hibernation
 * round-trips losslessly), and enough sessions to keep the engine
 * over its 1 MB budget — every commit then runs the eviction pass
 * that takes the engine mutex, which is the lock the old report()
 * deadlocked against.
 */
struct EvictingFixture
{
    Network net;
    std::vector<Sequence> protos;
    i64 num_sessions = 0;

    explicit EvictingFixture(i64 num_threads)
        : net(build_scaled(alexnet_spec())),
          protos(multi_stream_set(/*seed=*/47, /*num_streams=*/2,
                                  /*frames_per_stream=*/4))
    {
        for (Sequence &seq : protos) {
            for (LabeledFrame &frame : seq.frames) {
                frame.image = quantize_q88(frame.image);
            }
        }
        // Size the session count so their resident forms overflow
        // the 1 MB budget by a couple of sessions' worth.
        Engine probe(net, config(num_threads, "budget_mb:1048576"));
        probe.session("probe").submit_all(protos[0]);
        probe.flush();
        const i64 per =
            probe.resident_manager()->stats().resident_bytes;
        EXPECT_GT(per, 0);
        num_sessions = (1LL * 1024 * 1024) / per + 3;
    }

    EngineConfig
    config(i64 num_threads, const std::string &memory) const
    {
        EngineConfig c;
        c.policy = "static:interval=2";
        c.num_threads = num_threads;
        c.pipeline_depth = num_threads > 1 ? 2 : 1;
        c.memory = memory;
        return c;
    }

    /**
     * The deadlock reproducer: one thread submits frames round-robin
     * across enough sessions to keep eviction active, while this
     * thread calls report() in a tight loop. With the old
     * drain-under-mutex report() this interleaving wedged within a
     * handful of frames; now it must complete.
     */
    void
    hammer_report(i64 num_threads) const
    {
        Engine engine(net,
                      config(num_threads, "budget_mb:1,hibernate=on"));
        std::vector<Session *> sessions;
        for (i64 i = 0; i < num_sessions; ++i) {
            sessions.push_back(
                &engine.session("cam" + std::to_string(i)));
        }
        std::atomic<bool> done{false};
        std::thread submitter([&]() {
            for (int round = 0; round < 2; ++round) {
                for (size_t i = 0; i < sessions.size(); ++i) {
                    const Sequence &seq =
                        protos[i % protos.size()];
                    for (const LabeledFrame &frame : seq.frames) {
                        (void)sessions[i]->submit(frame.image);
                    }
                }
            }
            done.store(true);
        });
        i64 reports = 0;
        while (!done.load()) {
            (void)engine.report();
            ++reports;
        }
        submitter.join();
        engine.flush();
        const RunReport last = engine.report();
        EXPECT_GT(reports, 0);
        EXPECT_GT(last.frames, 0);
        // The budget was enforced while reports interleaved.
        EXPECT_GT(last.memory.hibernations, 0);
    }
};

TEST(LockDiscipline, ReportConcurrentWithEvictingCommitsInline)
{
    // num_threads=1: submit() processes the frame inline while
    // holding the submit gate, so the commit's eviction pass takes
    // the engine mutex with the gate held — the tightest version of
    // the interleaving.
    EvictingFixture fx(/*num_threads=*/1);
    fx.hammer_report(/*num_threads=*/1);
}

TEST(LockDiscipline, ReportConcurrentWithEvictingCommitsPooled)
{
    // num_threads=2: commits are delivered from pool workers, the
    // net::Server serving shape.
    EvictingFixture fx(/*num_threads=*/2);
    fx.hammer_report(/*num_threads=*/2);
}

TEST(LockDiscipline, ResetWithHibernatedSessionsRestartsCleanly)
{
    // reset() now drains and resets records outside the engine
    // mutex; make sure the restructured path still resets a
    // hibernated fleet to a working state.
    EvictingFixture fx(/*num_threads=*/1);
    Engine engine(
        fx.net, fx.config(/*num_threads=*/1, "budget_mb:1,hibernate=on"));
    for (i64 i = 0; i < fx.num_sessions; ++i) {
        engine.session("cam" + std::to_string(i))
            .submit_all(fx.protos[i % fx.protos.size()]);
    }
    engine.flush();
    ASSERT_GT(engine.report().memory.hibernations, 0);

    engine.reset();
    EXPECT_EQ(engine.report().frames, 0);

    // Sessions stay valid and the budget machinery restarts.
    engine.session("cam0").submit_all(fx.protos[0]);
    engine.flush();
    EXPECT_GT(engine.report().frames, 0);
}

// --------------------------------------------------------------------
// WakePipe EINTR handling

TEST(WakePipe, WakePreservesErrnoAndSurvivesFullPipe)
{
    net::WakePipe pipe;
    // wake() runs inside signal handlers; it must not clobber the
    // interrupted code's errno — on success or on a full pipe.
    errno = ENOENT;
    pipe.wake();
    EXPECT_EQ(errno, ENOENT);

    for (int i = 0; i < 100000; ++i) {
        pipe.wake(); // Fills the pipe; later wakes hit EAGAIN.
    }
    errno = EBADF;
    pipe.wake();
    EXPECT_EQ(errno, EBADF);

    pipe.drain();
    u8 byte = 0;
    errno = 0;
    EXPECT_EQ(::read(pipe.read_fd(), &byte, 1), -1);
    EXPECT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK);
}

TEST(WakePipe, DrainSurvivesSignalStorm)
{
    // Pepper the draining thread with signals (handler installed
    // without SA_RESTART, so reads really see EINTR) while wakers
    // hammer the pipe. The old drain() stopped at the first EINTR,
    // leaving bytes behind; the pipe must end up empty.
    struct sigaction sa{};
    sa.sa_handler = [](int) {};
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    struct sigaction old{};
    ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

    net::WakePipe pipe;
    std::atomic<bool> stop{false};
    std::thread drainer([&]() {
        while (!stop.load()) {
            pipe.drain();
        }
        pipe.drain(); // Final sweep after the last wake.
    });
    std::vector<std::thread> wakers;
    for (int w = 0; w < 4; ++w) {
        wakers.emplace_back([&]() {
            for (int i = 0; i < 20000; ++i) {
                pipe.wake();
            }
        });
    }
    for (int i = 0; i < 2000; ++i) {
        ::pthread_kill(drainer.native_handle(), SIGUSR1);
    }
    for (std::thread &w : wakers) {
        w.join();
    }
    stop.store(true);
    drainer.join();
    ::sigaction(SIGUSR1, &old, nullptr);

    u8 byte = 0;
    errno = 0;
    EXPECT_EQ(::read(pipe.read_fd(), &byte, 1), -1);
    EXPECT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK);
}

} // namespace
} // namespace eva2
