/**
 * @file
 * Tests for the SIMD kernel backend and its two-tier verification
 * contract (docs/simd_kernels.md):
 *
 *  - tier 1, bit-exact: the scalar kernels stay the reference oracle,
 *    and the lane-parallel SIMD kernels that only reorder value-safe
 *    ops (ReLU, warp gather/select) must match them bit for bit;
 *  - tier 2, bounded divergence: the fma/tree-reduction kernels
 *    (GEMM register tiles, FC dot) may differ from the scalar chains
 *    only within a small ulp/absolute envelope, and end-task results
 *    (classification argmax) must be unchanged.
 *
 * Plus the ulp-distance helpers the envelope is measured with, the
 * per-shape autotuner (determinism, process-wide caching), the
 * `kernel=tuned` registry spec, zero-steady-state allocation of tuned
 * plans, and the RunReport provenance rows (simd_isa, per-step
 * variant).
 *
 * Every SIMD-dependent case self-skips when simd_supported() is
 * false, so this suite stays green on the EVA2_SIMD=OFF CI leg and on
 * machines without AVX2.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "api/engine.h"
#include "api/registry.h"
#include "api/run_report.h"
#include "cnn/conv_kernels.h"
#include "cnn/conv_layer.h"
#include "cnn/execution_plan.h"
#include "cnn/fc_layer.h"
#include "cnn/kernel_tuner.h"
#include "cnn/model_zoo.h"
#include "simd/simd_kernels.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"
#include "video/scenarios.h"

namespace eva2 {
namespace {

/// Divergence envelope for the bounded-divergence kernels: fma and
/// 4-chain tree reduction reassociate long dot products, so per-tap
/// rounding differences accumulate. 64 ulps is orders of magnitude
/// tighter than any task-level tolerance while leaving room for the
/// longest suffix reductions; the absolute escape covers results near
/// zero, where a single reordered rounding can cross many ulps.
constexpr i64 kMaxUlp = 64;
constexpr double kMaxAbs = 1e-4;

Tensor
random_tensor(const Shape &shape, u64 seed)
{
    Tensor t(shape);
    Rng rng(seed);
    for (i64 i = 0; i < t.size(); ++i) {
        t[i] = rng.uniform_f(-1.0f, 1.0f);
    }
    return t;
}

// --------------------------------------------------------------------
// Ulp-distance helpers (the tier-2 measuring stick)

TEST(UlpDiff, ZerosAndAdjacentValues)
{
    EXPECT_EQ(ulp_diff(0.0f, 0.0f), 0);
    EXPECT_EQ(ulp_diff(0.0f, -0.0f), 0);
    EXPECT_EQ(ulp_diff(1.0f, 1.0f), 0);
    EXPECT_EQ(ulp_diff(1.0f, std::nextafterf(1.0f, 2.0f)), 1);
    EXPECT_EQ(ulp_diff(-1.0f, std::nextafterf(-1.0f, -2.0f)), 1);
    // One step either side of zero: exactly one ulp from +-0.
    const float tiny = std::nextafterf(0.0f, 1.0f);
    EXPECT_EQ(ulp_diff(0.0f, tiny), 1);
    EXPECT_EQ(ulp_diff(-0.0f, -tiny), 1);
    // The mapping is continuous across zero.
    EXPECT_EQ(ulp_diff(-tiny, tiny), 2);
}

TEST(UlpDiff, NonFiniteValues)
{
    const float inf = std::numeric_limits<float>::infinity();
    const float nan = std::numeric_limits<float>::quiet_NaN();
    const i64 huge = std::numeric_limits<i64>::max();
    EXPECT_EQ(ulp_diff(inf, inf), 0);
    EXPECT_EQ(ulp_diff(-inf, -inf), 0);
    EXPECT_EQ(ulp_diff(inf, -inf), huge);
    EXPECT_EQ(ulp_diff(inf, 1.0f), huge);
    EXPECT_EQ(ulp_diff(nan, nan), huge);
    EXPECT_EQ(ulp_diff(nan, 0.0f), huge);
}

TEST(Divergence, ReportsWorstElement)
{
    Tensor a(1, 1, 4);
    Tensor b(1, 1, 4);
    for (i64 i = 0; i < 4; ++i) {
        a[i] = b[i] = 1.0f + static_cast<float>(i);
    }
    b[2] = std::nextafterf(std::nextafterf(b[2], 10.0f), 10.0f);
    const DivergenceReport rep = divergence(a, b);
    EXPECT_EQ(rep.max_ulp, 2);
    EXPECT_EQ(rep.worst_index, 2);
    EXPECT_GT(rep.max_abs, 0.0);
    EXPECT_EQ(max_ulp_diff(a, b), 2);
}

TEST(WithinTolerance, UlpAndAbsoluteEscapes)
{
    Tensor a(1, 1, 2);
    Tensor b(1, 1, 2);
    a[0] = 1.0f;
    b[0] = std::nextafterf(1.0f, 2.0f);
    a[1] = 1e-30f;
    b[1] = -1e-30f; // Many ulps apart, absolutely negligible.
    // Ulp budget covers element 0, absolute escape covers element 1.
    EXPECT_TRUE(within_tolerance(a, b, 1, 1e-6));
    // Without the absolute escape the near-zero sign flip fails.
    EXPECT_FALSE(within_tolerance(a, b, 1, 0.0));
    // One ulp at 1.0 is ~1.2e-7, inside the absolute escape too.
    EXPECT_TRUE(within_tolerance(a, b, 0, 1e-6));
    EXPECT_FALSE(within_tolerance(a, b, 0, 0.0));
    Tensor c(1, 2, 1);
    EXPECT_FALSE(within_tolerance(a, c, 1 << 30, 1e9));
}

// --------------------------------------------------------------------
// Tier 1: bit-exact SIMD kernels

TEST(SimdKernels, ReluMatchesScalarBitForBit)
{
    if (!simd_supported()) {
        GTEST_SKIP() << "no SIMD on this machine";
    }
    // Sizes straddling the vector width, values including -0.0 and
    // denormals: ReLU is max(x, 0), value-safe lane-parallel.
    for (const i64 n : {1, 7, 8, 9, 64, 1000}) {
        std::vector<float> in(n), out(n);
        Rng rng(41);
        for (i64 i = 0; i < n; ++i) {
            in[i] = rng.uniform_f(-2.0f, 2.0f);
        }
        if (n >= 4) {
            in[0] = -0.0f;
            in[1] = 0.0f;
            in[2] = std::nextafterf(0.0f, -1.0f);
            in[3] = -std::numeric_limits<float>::denorm_min();
        }
        relu_simd(in.data(), out.data(), n);
        for (i64 i = 0; i < n; ++i) {
            const float ref = in[i] > 0.0f ? in[i] : 0.0f;
            EXPECT_EQ(out[i], ref) << "n=" << n << " i=" << i;
        }
    }
}

TEST(SimdKernels, WarpGathersMatchScalarSelectsBitForBit)
{
    if (!simd_supported()) {
        GTEST_SKIP() << "no SIMD on this machine";
    }
    const i64 plane_n = 37;
    std::vector<float> plane(plane_n);
    Rng rng(43);
    for (float &v : plane) {
        v = rng.uniform_f(-3.0f, 3.0f);
    }
    const i64 n = 61; // Not a lane multiple: exercises the tail.
    // Nearest: offset -1 means out of bounds -> exact +0.0f.
    std::vector<i32> off(n);
    for (i64 p = 0; p < n; ++p) {
        off[p] = p % 5 == 0 ? -1 : static_cast<i32>(p % plane_n);
    }
    std::vector<float> out(n, -99.0f);
    warp_apply_nearest_simd(plane.data(), off.data(), n, out.data());
    for (i64 p = 0; p < n; ++p) {
        const float ref = off[p] >= 0 ? plane[off[p]] : 0.0f;
        EXPECT_EQ(out[p], ref) << "p=" << p;
        if (off[p] < 0) {
            // Exactly +0.0, matching at_padded's padding — a
            // multiply-by-0.0 mask would yield -0.0 for negative
            // activations, which is why the kernel bit-selects.
            EXPECT_FALSE(std::signbit(out[p])) << "p=" << p;
        }
    }
    // Bilinear: per-corner offset + select mask (0 / -1), weights in
    // double, same expression tree as the scalar path.
    std::vector<i32> o00(n), o01(n), o10(n), o11(n);
    std::vector<i32> k00(n), k01(n), k10(n), k11(n);
    std::vector<double> wx0(n), wx1(n), wy0(n), wy1(n);
    Rng wrng(47);
    for (i64 p = 0; p < n; ++p) {
        o00[p] = static_cast<i32>(p % plane_n);
        o01[p] = static_cast<i32>((p + 1) % plane_n);
        o10[p] = static_cast<i32>((p + 7) % plane_n);
        o11[p] = static_cast<i32>((p + 11) % plane_n);
        k00[p] = -1;
        k01[p] = p % 3 == 0 ? 0 : -1; // Some corners out of bounds.
        k10[p] = -1;
        k11[p] = p % 4 == 0 ? 0 : -1;
        const double fx = wrng.uniform(0.0, 1.0);
        const double fy = wrng.uniform(0.0, 1.0);
        wx0[p] = 1.0 - fx;
        wx1[p] = fx;
        wy0[p] = 1.0 - fy;
        wy1[p] = fy;
    }
    std::vector<float> bout(n, -99.0f);
    warp_apply_bilinear_simd(plane.data(), o00.data(), o01.data(),
                             o10.data(), o11.data(), k00.data(),
                             k01.data(), k10.data(), k11.data(),
                             wx0.data(), wx1.data(), wy0.data(),
                             wy1.data(), n, bout.data());
    for (i64 p = 0; p < n; ++p) {
        const double v00 = k00[p] ? plane[o00[p]] : 0.0;
        const double v01 = k01[p] ? plane[o01[p]] : 0.0;
        const double v10 = k10[p] ? plane[o10[p]] : 0.0;
        const double v11 = k11[p] ? plane[o11[p]] : 0.0;
        const double top = v00 * wx0[p] + v01 * wx1[p];
        const double bot = v10 * wx0[p] + v11 * wx1[p];
        const float ref =
            static_cast<float>(top * wy0[p] + bot * wy1[p]);
        EXPECT_EQ(bout[p], ref) << "p=" << p;
    }
}

// --------------------------------------------------------------------
// Tier 2: bounded-divergence SIMD kernels vs the scalar oracle

/** Conv geometries spanning the model zoo's shapes. */
struct GemmCase
{
    i64 in_c, out_c, kernel, stride, pad, size;
};

constexpr GemmCase kGemmCases[] = {
    {3, 8, 3, 1, 1, 16},   // Early layer: few channels.
    {16, 32, 3, 1, 1, 12}, // Mid layer.
    {32, 16, 5, 2, 2, 15}, // Large kernel, strided, odd size.
    {24, 12, 1, 1, 0, 9},  // 1x1: taps == in_c, tiny planes.
    {8, 5, 3, 1, 0, 7},    // out_c and n not tile multiples.
};

TEST(SimdKernels, GemmVariantsWithinToleranceOfScalar)
{
    if (!simd_supported()) {
        GTEST_SKIP() << "no SIMD on this machine";
    }
    for (const GemmCase &c : kGemmCases) {
        const ConvGeometry g{c.in_c, c.out_c, c.kernel, c.stride,
                             c.pad};
        ConvLayer conv(c.in_c, c.out_c, c.kernel, c.stride, c.pad);
        Rng rng(53);
        for (float &w : conv.weights()) {
            w = rng.uniform_f(-0.5f, 0.5f);
        }
        for (float &b : conv.biases()) {
            b = rng.uniform_f(-0.5f, 0.5f);
        }
        const Tensor in =
            random_tensor(Shape{c.in_c, c.size, c.size}, 59);
        Tensor ref(conv.out_shape(in.shape()));
        Tensor out(conv.out_shape(in.shape()));
        Tensor col;
        for (const bool fuse : {false, true}) {
            conv_im2col_gemm(in, g, conv.weights().data(),
                             conv.biases().data(), ref, col, fuse,
                             GemmVariant::kScalar);
            for (const GemmVariant v : simd_gemm_variants()) {
                conv_im2col_gemm(in, g, conv.weights().data(),
                                 conv.biases().data(), out, col, fuse,
                                 v);
                const DivergenceReport rep = divergence(ref, out);
                EXPECT_TRUE(
                    within_tolerance(ref, out, kMaxUlp, kMaxAbs))
                    << gemm_variant_name(v) << " fuse=" << fuse
                    << " in_c=" << c.in_c << ": max_ulp="
                    << rep.max_ulp << " max_abs=" << rep.max_abs;
            }
        }
    }
}

TEST(SimdKernels, FcDotWithinToleranceOfScalar)
{
    if (!simd_supported()) {
        GTEST_SKIP() << "no SIMD on this machine";
    }
    for (const i64 in_dim : {5, 32, 100, 515}) {
        FcLayer fc(in_dim, 17);
        Rng rng(61);
        for (float &w : fc.weights()) {
            w = rng.uniform_f(-0.5f, 0.5f);
        }
        for (float &b : fc.biases()) {
            b = rng.uniform_f(-0.5f, 0.5f);
        }
        const Tensor in = random_tensor(Shape{in_dim, 1, 1}, 67);
        Tensor ref(fc.out_shape(in.shape()));
        Tensor out(fc.out_shape(in.shape()));
        ForwardCtx ctx;
        ctx.out = &ref;
        fc.forward_into(in, ctx);
        ctx.out = &out;
        ctx.simd_fc = true;
        fc.forward_into(in, ctx);
        EXPECT_TRUE(within_tolerance(ref, out, kMaxUlp, kMaxAbs))
            << "in_dim=" << in_dim
            << " max_ulp=" << max_ulp_diff(ref, out);
    }
}

TEST(SimdKernels, BatchedFcDotWithinToleranceAcrossBatchSizes)
{
    if (!simd_supported()) {
        GTEST_SKIP() << "no SIMD on this machine";
    }
    const i64 in_dim = 130;
    const i64 out_dim = 19;
    FcLayer fc(in_dim, out_dim);
    Rng rng(71);
    for (float &w : fc.weights()) {
        w = rng.uniform_f(-0.5f, 0.5f);
    }
    for (float &b : fc.biases()) {
        b = rng.uniform_f(-0.5f, 0.5f);
    }
    for (const i64 nb : {1, 3, 8, 11}) {
        std::vector<Tensor> ins;
        std::vector<Tensor> refs(nb, Tensor(Shape{out_dim, 1, 1}));
        std::vector<Tensor> outs(nb, Tensor(Shape{out_dim, 1, 1}));
        for (i64 i = 0; i < nb; ++i) {
            ins.push_back(random_tensor(Shape{in_dim, 1, 1},
                                        100 + static_cast<u64>(i)));
        }
        std::vector<const Tensor *> in_ptrs;
        std::vector<Tensor *> ref_ptrs;
        std::vector<Tensor *> out_ptrs;
        for (i64 i = 0; i < nb; ++i) {
            in_ptrs.push_back(&ins[i]);
            ref_ptrs.push_back(&refs[i]);
            out_ptrs.push_back(&outs[i]);
        }
        fc.forward_batched(in_ptrs.data(), nb, ref_ptrs.data(),
                           /*fuse_relu=*/false, /*simd=*/false);
        fc.forward_batched(in_ptrs.data(), nb, out_ptrs.data(),
                           /*fuse_relu=*/false, /*simd=*/true);
        for (i64 i = 0; i < nb; ++i) {
            EXPECT_TRUE(
                within_tolerance(refs[i], outs[i], kMaxUlp, kMaxAbs))
                << "nb=" << nb << " sample " << i;
        }
    }
}

// --------------------------------------------------------------------
// Autotuner

TEST(KernelTuner, ConvPickIsCachedAndDeterministic)
{
    const ConvGeometry g{16, 16, 3, 1, 1};
    const GemmVariant first =
        tune_conv_gemm(g, 14, 14, /*fuse_relu=*/true,
                       /*budget_us=*/2000);
    const i64 contests = KernelTuner::instance().contests();
    const GemmVariant second =
        tune_conv_gemm(g, 14, 14, /*fuse_relu=*/true,
                       /*budget_us=*/2000);
    EXPECT_EQ(first, second);
    // Same shape key -> cache hit, no second contest.
    EXPECT_EQ(KernelTuner::instance().contests(), contests);
    if (!simd_supported()) {
        EXPECT_EQ(first, GemmVariant::kScalar);
    }
}

TEST(KernelTuner, FuseIsPartOfTheTuningKey)
{
    const ConvGeometry g{8, 8, 3, 1, 1};
    tune_conv_gemm(g, 10, 10, /*fuse_relu=*/false, 1000);
    const i64 contests = KernelTuner::instance().contests();
    tune_conv_gemm(g, 10, 10, /*fuse_relu=*/true, 1000);
    if (simd_supported()) {
        // Different epilogue -> different key -> a fresh contest.
        EXPECT_EQ(KernelTuner::instance().contests(), contests + 1);
    }
}

TEST(KernelTuner, FcPickIsCachedAndDeterministic)
{
    const bool first = tune_fc_simd(256, 32, 2000);
    const i64 contests = KernelTuner::instance().contests();
    const bool second = tune_fc_simd(256, 32, 2000);
    EXPECT_EQ(first, second);
    EXPECT_EQ(KernelTuner::instance().contests(), contests);
    if (!simd_supported()) {
        EXPECT_FALSE(first);
    }
}

// --------------------------------------------------------------------
// `kernel=tuned` registry spec

TEST(KernelRegistry, TunedSpecSetsPlanOptions)
{
    KernelRegistry &reg = KernelRegistry::instance();
    PlanOptions plan;
    reg.apply("tuned", plan);
    EXPECT_TRUE(plan.tune);
    EXPECT_EQ(plan.conv_kernel, ConvKernel::kIm2colGemm);
    EXPECT_TRUE(plan.fuse_conv_relu);
    EXPECT_EQ(plan.tune_budget_us, 20000);
    reg.apply("tuned:fuse=0,budget_us=5000", plan);
    EXPECT_FALSE(plan.fuse_conv_relu);
    EXPECT_EQ(plan.tune_budget_us, 5000);
}

TEST(KernelRegistry, TunedSpecRejectsBadParams)
{
    KernelRegistry &reg = KernelRegistry::instance();
    PlanOptions plan;
    EXPECT_THROW(reg.apply("tuned:bogus=1", plan), ConfigError);
    EXPECT_THROW(reg.apply("tuned:budget_us=0", plan), ConfigError);
    EXPECT_THROW(reg.apply("tuned:budget_us=-3", plan), ConfigError);
}

// --------------------------------------------------------------------
// Tuned plans: end-to-end tolerance, end-task parity, zero-alloc,
// report rows

TEST(TunedPlan, MatchesGemmPlanWithinToleranceAndAgreesOnArgmax)
{
    ScaledBuildOptions build;
    build.input = Shape{1, 48, 48};
    const Network net = build_scaled(alexnet_spec(), build);

    const ExecutionPlan gemm(net);
    PlanOptions topts;
    topts.tune = true;
    topts.tune_budget_us = 2000;
    const ExecutionPlan tuned(net, topts);

    ScratchArena ga, ta;
    for (u64 seed = 0; seed < 3; ++seed) {
        const Tensor in = random_tensor(net.input_shape(), 80 + seed);
        const Tensor &ref = gemm.run(in, ga);
        const Tensor &out = tuned.run(in, ta);
        const DivergenceReport rep = divergence(ref, out);
        EXPECT_TRUE(within_tolerance(ref, out, kMaxUlp, kMaxAbs))
            << "seed " << seed << ": max_ulp=" << rep.max_ulp
            << " max_abs=" << rep.max_abs;
        // End-task parity: the classification decision is identical.
        i64 ref_arg = 0, out_arg = 0;
        for (i64 i = 1; i < ref.size(); ++i) {
            if (ref[i] > ref[ref_arg]) {
                ref_arg = i;
            }
            if (out[i] > out[out_arg]) {
                out_arg = i;
            }
        }
        EXPECT_EQ(ref_arg, out_arg) << "seed " << seed;
    }
}

TEST(TunedPlan, ReportsChosenVariants)
{
    ScaledBuildOptions build;
    build.input = Shape{1, 48, 48};
    const Network net = build_scaled(alexnet_spec(), build);
    PlanOptions topts;
    topts.tune = true;
    topts.tune_budget_us = 1000;
    const ExecutionPlan tuned(net, topts);
    bool saw_conv = false, saw_fc = false;
    for (const PlanStepInfo &s : tuned.describe()) {
        if (s.kernel == "im2col_gemm") {
            saw_conv = true;
            if (simd_supported()) {
                EXPECT_FALSE(s.variant.empty());
            } else {
                EXPECT_EQ(s.variant, "scalar");
            }
        }
        if (s.kernel == "fc") {
            saw_fc = true;
            EXPECT_TRUE(s.variant == "simd" || s.variant == "scalar");
        }
    }
    EXPECT_TRUE(saw_conv);
    EXPECT_TRUE(saw_fc);
    // The untuned plan reports the scalar reference everywhere.
    for (const PlanStepInfo &s : ExecutionPlan(net).describe()) {
        if (s.kernel == "im2col_gemm" || s.kernel == "fc") {
            EXPECT_EQ(s.variant, "scalar") << s.layer;
        }
    }
}

TEST(TunedPlan, ReachesAllocationSteadyState)
{
    ScaledBuildOptions build;
    build.input = Shape{1, 48, 48};
    const Network net = build_scaled(alexnet_spec(), build);
    PlanOptions topts;
    topts.tune = true;
    topts.tune_budget_us = 1000;
    const ExecutionPlan plan(net, topts);
    const Tensor in = random_tensor(net.input_shape(), 91);
    ScratchArena arena;
    const Tensor warm = plan.run(in, arena);
    const u64 before = Tensor::buffer_allocations();
    for (int i = 0; i < 5; ++i) {
        const Tensor &out = plan.run(in, arena);
        ASSERT_TRUE(out == warm);
    }
    EXPECT_EQ(Tensor::buffer_allocations() - before, 0u)
        << "tuned plan.run allocated in steady state";
}

TEST(TunedPlan, BatchedRunWithinToleranceOfUnbatchedTuned)
{
    ScaledBuildOptions build;
    build.input = Shape{1, 48, 48};
    const Network net = build_scaled(alexnet_spec(), build);
    PlanOptions topts;
    topts.tune = true;
    topts.tune_budget_us = 1000;
    const ExecutionPlan single(net, topts);
    const BatchedExecutionPlan batched(single, /*max_batch=*/4);

    std::vector<Tensor> ins;
    for (u64 i = 0; i < 4; ++i) {
        ins.push_back(random_tensor(net.input_shape(), 120 + i));
    }
    std::vector<const Tensor *> in_ptrs;
    for (const Tensor &t : ins) {
        in_ptrs.push_back(&t);
    }
    std::vector<const Tensor *> outs(4);
    ScratchArena batch_arena, single_arena;
    batched.run(in_ptrs.data(), 4, outs.data(), batch_arena);
    for (i64 i = 0; i < 4; ++i) {
        const Tensor &ref = single.run(ins[i], single_arena);
        // Both sides run the same tuner-picked kernels on the same
        // per-sample accumulation chains; batching only changes the
        // column-matrix layout, so samples stay bit-identical here —
        // but the contract we pin is the tolerance envelope.
        EXPECT_TRUE(within_tolerance(ref, *outs[i], kMaxUlp, kMaxAbs))
            << "sample " << i;
    }
}

TEST(Engine, TunedKernelRunsAndReportsProvenance)
{
    const Network net = build_scaled(alexnet_spec());
    const std::vector<Sequence> streams =
        multi_stream_set(/*seed=*/9, /*num_streams=*/2,
                         /*frames_per_stream=*/3);

    EngineConfig gemm_cfg;
    gemm_cfg.policy = "static:interval=2";
    gemm_cfg.num_threads = 1;
    EngineConfig tuned_cfg = gemm_cfg;
    tuned_cfg.kernel = "tuned:budget_us=1000";

    Engine gemm_engine(net, gemm_cfg);
    const RunReport gemm_report = gemm_engine.run(streams);
    Engine tuned_engine(net, tuned_cfg);
    const RunReport report = tuned_engine.run(streams);

    EXPECT_TRUE(report.simd_isa == "avx2" ||
                report.simd_isa == "sse2" ||
                report.simd_isa == "neon" ||
                report.simd_isa == "scalar")
        << report.simd_isa;
    EXPECT_EQ(report.simd_isa == "scalar", !simd_supported());
    EXPECT_EQ(report.kernel, "tuned:budget_us=1000");

    // End-task parity with the scalar-kernel engine: same frames,
    // same key-frame schedule, same motion-estimation work. (Digests
    // are not compared: tuned kernels are bounded-divergence, not
    // bit-exact.)
    EXPECT_EQ(report.frames, gemm_report.frames);
    EXPECT_EQ(report.key_frames, gemm_report.key_frames);
    EXPECT_EQ(report.me_add_ops, gemm_report.me_add_ops);

    ASSERT_FALSE(report.plan.empty());
    bool saw_variant = false;
    for (const PlanRecord &rec : report.plan) {
        for (const PlanStepInfo &s : rec.steps) {
            if (!s.variant.empty()) {
                saw_variant = true;
            }
        }
    }
    EXPECT_TRUE(saw_variant);

    // The motion front end reports its raced diff-tile variant like
    // the CNN steps do. Without SIMD support the race is skipped and
    // the plan pins the scalar oracle.
    bool saw_motion = false;
    for (const PlanRecord &rec : report.plan) {
        if (rec.scope != "motion") {
            continue;
        }
        saw_motion = true;
        ASSERT_EQ(rec.steps.size(), 1u);
        EXPECT_EQ(rec.steps[0].layer, "rfbme");
        EXPECT_EQ(rec.steps[0].kernel.rfind("rfbme_tile/", 0), 0u);
        if (simd_supported()) {
            EXPECT_TRUE(rec.steps[0].variant == "scalar" ||
                        rec.steps[0].variant == "simd")
                << rec.steps[0].variant;
        } else {
            EXPECT_EQ(rec.steps[0].variant, "scalar");
        }
    }
    EXPECT_TRUE(saw_motion);

    const std::string json = report.to_json();
    EXPECT_NE(json.find("\"simd_isa\""), std::string::npos);
    EXPECT_NE(json.find("\"variant\""), std::string::npos);
}

} // namespace
} // namespace eva2
