/**
 * @file
 * Tests for the planned execution engine: ExecutionPlan compilation,
 * scratch-arena reuse, and the im2col/blocked-GEMM conv kernel.
 *
 * The central property is *bit-exactness*: the planned paths (direct
 * or GEMM, fused or not, through the pipeline or the Engine) must
 * reproduce the seed's Network::forward outputs bit for bit, so every
 * parity assertion here uses exact tensor equality or digests, never
 * tolerances. The second property is *zero steady-state allocation*:
 * once arena slots have grown, planned execution must stop touching
 * the heap.
 */
#include <gtest/gtest.h>

#include "api/engine.h"
#include "cnn/activation_layer.h"
#include "cnn/conv_layer.h"
#include "cnn/execution_plan.h"
#include "cnn/fc_layer.h"
#include "cnn/model_zoo.h"
#include "cnn/pool_layer.h"
#include "core/amc_pipeline.h"
#include "runtime/stream_executor.h"
#include "util/rng.h"
#include "video/scenarios.h"
#include "video/synthetic_video.h"

namespace eva2 {
namespace {

void
fill_random(std::vector<float> &v, Rng &rng, float lo = -1.0f,
            float hi = 1.0f)
{
    for (float &x : v) {
        x = rng.uniform_f(lo, hi);
    }
}

Tensor
random_tensor(Shape shape, u64 seed)
{
    Tensor t(shape);
    Rng rng(seed);
    for (i64 i = 0; i < t.size(); ++i) {
        t[i] = rng.uniform_f(-1.0f, 1.0f);
    }
    return t;
}

/** A one-conv network with random weights at the given geometry. */
Network
conv_net(Shape input, i64 out_c, i64 kernel, i64 stride, i64 pad,
         u64 seed, bool with_relu = false)
{
    Network net("conv_net", input);
    auto conv = std::make_unique<ConvLayer>(input.c, out_c, kernel,
                                            stride, pad);
    Rng rng(seed);
    fill_random(conv->weights(), rng);
    fill_random(conv->biases(), rng);
    conv->set_name("conv");
    net.add(std::move(conv));
    if (with_relu) {
        auto relu = std::make_unique<ReluLayer>();
        relu->set_name("relu");
        net.add(std::move(relu));
    }
    return net;
}

/** Conv geometries the parity suite sweeps (the CI smoke shapes). */
struct ConvCase
{
    const char *label;
    Shape input;
    i64 out_c, kernel, stride, pad;
};

const ConvCase kConvCases[] = {
    {"padded_3x3", {8, 16, 16}, 12, 3, 1, 1},
    {"strided_5x5", {4, 23, 23}, 8, 5, 2, 2},
    {"odd_rect", {3, 9, 13}, 5, 3, 2, 1},
    {"one_by_one", {16, 12, 12}, 24, 1, 1, 0},
    {"kernel_wider_than_pad", {2, 7, 7}, 4, 7, 1, 3},
};

class ConvParity : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvParity, GemmAndDirectPlansMatchSeedBitExactly)
{
    const ConvCase &c = GetParam();
    const Network net =
        conv_net(c.input, c.out_c, c.kernel, c.stride, c.pad, 77);
    const Tensor in = random_tensor(c.input, 99);
    const Tensor seed_out = net.forward(in);

    PlanOptions direct;
    direct.conv_kernel = ConvKernel::kDirect;
    PlanOptions gemm;
    gemm.conv_kernel = ConvKernel::kIm2colGemm;

    const Tensor via_direct = ExecutionPlan(net, direct).forward(in);
    const Tensor via_gemm = ExecutionPlan(net, gemm).forward(in);
    EXPECT_TRUE(seed_out == via_direct) << c.label;
    EXPECT_TRUE(seed_out == via_gemm) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvParity, ::testing::ValuesIn(kConvCases),
    [](const ::testing::TestParamInfo<ConvCase> &info) {
        return info.param.label;
    });

TEST(ExecutionPlan, FusedConvReluMatchesSeparatePasses)
{
    const Network net =
        conv_net({6, 14, 14}, 10, 3, 1, 1, 5, /*with_relu=*/true);
    const Tensor in = random_tensor(net.input_shape(), 6);
    const Tensor seed_out = net.forward(in);

    for (const ConvKernel kernel :
         {ConvKernel::kDirect, ConvKernel::kIm2colGemm}) {
        PlanOptions fused;
        fused.conv_kernel = kernel;
        fused.fuse_conv_relu = true;
        PlanOptions unfused;
        unfused.conv_kernel = kernel;
        unfused.fuse_conv_relu = false;

        const ExecutionPlan fused_plan(net, fused);
        EXPECT_EQ(fused_plan.num_steps(), 1); // ReLU step elided.
        EXPECT_TRUE(seed_out == fused_plan.forward(in));
        const ExecutionPlan unfused_plan(net, unfused);
        EXPECT_EQ(unfused_plan.num_steps(), 2);
        EXPECT_TRUE(seed_out == unfused_plan.forward(in));
    }
}

TEST(ExecutionPlan, ModelZooNetworkMatchesSeedBitExactly)
{
    // A full heterogeneous stack: conv/relu/lrn/pool prefix plus the
    // FC/softmax suffix, as built by the zoo.
    ScaledBuildOptions opts;
    opts.input = Shape{1, 64, 64};
    const Network net = build_scaled(alexnet_spec(), opts);
    const Tensor in = random_tensor(net.input_shape(), 3);
    const Tensor seed_out = net.forward(in);

    EXPECT_TRUE(seed_out == ExecutionPlan(net).forward(in));

    PlanOptions direct;
    direct.conv_kernel = ConvKernel::kDirect;
    direct.fuse_conv_relu = false;
    EXPECT_TRUE(seed_out == ExecutionPlan(net, direct).forward(in));
}

TEST(ExecutionPlan, ChainedPrefixSuffixPlansShareOneArena)
{
    ScaledBuildOptions opts;
    opts.input = Shape{1, 64, 64};
    const Network net = build_scaled(alexnet_spec(), opts);
    const i64 target = net.default_target_index();
    const ExecutionPlan prefix(net, 0, target + 1, net.input_shape());
    const ExecutionPlan suffix(net, target + 1, net.num_layers(),
                               prefix.out_shape());

    const Tensor in = random_tensor(net.input_shape(), 21);
    ScratchArena arena;
    // The suffix consumes the prefix's output *in the arena*; the
    // plan must shift its ping-pong parity rather than overwrite its
    // own input.
    const Tensor &mid = prefix.run(in, arena);
    const Tensor out = suffix.run(mid, arena);
    EXPECT_TRUE(net.forward(in) == out);
}

TEST(ExecutionPlan, EmptyRangeReturnsInputUnchanged)
{
    const Network net = conv_net({2, 6, 6}, 3, 3, 1, 1, 11);
    const ExecutionPlan plan(net, 1, 1, net.layer(0).out_shape(
                                            net.input_shape()));
    const Tensor in = random_tensor(plan.in_shape(), 4);
    ScratchArena arena;
    EXPECT_EQ(&plan.run(in, arena), &in);
}

TEST(ExecutionPlan, CompilationRejectsBadInputShape)
{
    const Network net = conv_net({2, 6, 6}, 3, 3, 1, 1, 11);
    EXPECT_THROW(ExecutionPlan(net, 0, 1, Shape{5, 6, 6}),
                 ConfigError);
}

TEST(ExecutionPlan, DescribeReportsKernelSelectionAndFusion)
{
    Network net = conv_net({4, 10, 10}, 6, 3, 1, 1, 9,
                           /*with_relu=*/true);
    net.add(std::make_unique<MaxPoolLayer>(2, 2));

    const ExecutionPlan gemm(net);
    const auto gemm_steps = gemm.describe();
    ASSERT_EQ(gemm_steps.size(), 2u);
    EXPECT_EQ(gemm_steps[0].layer, "conv");
    EXPECT_EQ(gemm_steps[0].kernel, "im2col_gemm");
    EXPECT_TRUE(gemm_steps[0].fused_relu);
    EXPECT_EQ(gemm_steps[1].kernel, "pool");

    PlanOptions opts;
    opts.conv_kernel = ConvKernel::kDirect;
    opts.fuse_conv_relu = false;
    const auto direct_steps = ExecutionPlan(net, opts).describe();
    ASSERT_EQ(direct_steps.size(), 3u);
    EXPECT_EQ(direct_steps[0].kernel, "direct");
    EXPECT_FALSE(direct_steps[0].fused_relu);
    EXPECT_EQ(direct_steps[1].kernel, "relu");
}

// --------------------------------------------------------------------
// Allocation accounting

TEST(ExecutionPlan, RunIsAllocationFreeAfterWarmup)
{
    ScaledBuildOptions opts;
    opts.input = Shape{1, 48, 48};
    const Network net = build_scaled(alexnet_spec(), opts);
    const ExecutionPlan plan(net);
    const Tensor in = random_tensor(net.input_shape(), 8);

    ScratchArena arena;
    Tensor warm = plan.run(in, arena); // Slots grow here.
    const u64 before = Tensor::buffer_allocations();
    for (int i = 0; i < 5; ++i) {
        const Tensor &out = plan.run(in, arena);
        ASSERT_TRUE(out == warm);
    }
    EXPECT_EQ(Tensor::buffer_allocations() - before, 0u)
        << "plan.run allocated in steady state";
}

TEST(AmcPipeline, PredictedFramesReachAllocationSteadyState)
{
    ScaledBuildOptions build;
    build.input = Shape{1, 64, 64};
    const Network net = build_scaled(alexnet_spec(), build);
    AmcPipeline pipeline(net, std::make_unique<StaticRatePolicy>(1000));
    ScratchArena arena;
    pipeline.set_arena(&arena);

    SyntheticVideo video(classification_scene(7, 2, 0.5, 64));
    pipeline.process(video.render(0).image); // Key frame.

    // Warm-up predicted frames, then every further predicted frame
    // must allocate exactly the same (small) number of buffers: the
    // escaping result tensors only, nothing per layer.
    pipeline.run_predicted(video.render(1).image);
    pipeline.run_predicted(video.render(2).image);
    std::vector<u64> deltas;
    u64 last = Tensor::buffer_allocations();
    for (i64 t = 3; t < 7; ++t) {
        pipeline.run_predicted(video.render(t).image);
        const u64 now = Tensor::buffer_allocations();
        deltas.push_back(now - last);
        last = now;
    }
    for (const u64 d : deltas) {
        EXPECT_EQ(d, deltas.front()) << "allocations still growing";
        // Far below one-per-layer: only result marshalling remains.
        EXPECT_LT(d, 6u);
    }
}

// --------------------------------------------------------------------
// Instrumentation and the serving API

class PlanCapture : public AmcObserver
{
  public:
    void on_stage(AmcStage, double) override {}
    void on_plan(const PlanRecord &plan) override
    {
        plans.push_back(plan);
    }

    std::vector<PlanRecord> plans;
};

TEST(AmcPipeline, ObserverReceivesCompiledPlanRecords)
{
    ScaledBuildOptions build;
    build.input = Shape{1, 48, 48};
    const Network net = build_scaled(alexnet_spec(), build);
    AmcPipeline pipeline(net, nullptr);
    PlanCapture capture;
    pipeline.set_observer(&capture);

    ASSERT_EQ(capture.plans.size(), 3u);
    EXPECT_EQ(capture.plans[0].scope, "prefix");
    EXPECT_EQ(capture.plans[1].scope, "suffix");
    EXPECT_EQ(capture.plans[2].scope, "motion");
    bool saw_gemm = false;
    for (const PlanStepInfo &step : capture.plans[0].steps) {
        if (step.kernel == "im2col_gemm") {
            saw_gemm = true;
        }
    }
    EXPECT_TRUE(saw_gemm);
    // The motion record reports the compiled RFBME kernel choice
    // like the CNN steps do.
    ASSERT_EQ(capture.plans[2].steps.size(), 1u);
    const PlanStepInfo &me = capture.plans[2].steps[0];
    EXPECT_EQ(me.layer, "rfbme");
    EXPECT_EQ(me.kernel.rfind("rfbme_tile/", 0), 0u);
    EXPECT_TRUE(me.variant == "scalar" || me.variant == "simd");
}

TEST(Engine, GemmAndDirectKernelsProduceIdenticalDigests)
{
    ScaledBuildOptions build;
    build.input = Shape{1, 64, 64};
    const Network net = build_scaled(alexnet_spec(), build);
    const std::vector<Sequence> streams =
        multi_stream_set(13, 2, 5, 64);

    EngineConfig direct;
    direct.kernel = "direct";
    direct.policy = "adaptive_error:th=0.02,max_gap=4";
    direct.num_threads = 1;
    Engine direct_engine(net, direct);
    const RunReport direct_report = direct_engine.run(streams);

    EngineConfig gemm;
    gemm.kernel = "gemm";
    gemm.policy = "adaptive_error:th=0.02,max_gap=4";
    gemm.num_threads = 2;
    Engine gemm_engine(net, gemm);
    // Feed the GEMM engine frame by frame through sessions: the
    // end-to-end identity covers the whole serving path, not just
    // the kernels.
    for (const Sequence &seq : streams) {
        gemm_engine.session(seq.name).submit_all(seq);
    }
    const RunReport session_report = gemm_engine.report();

    EXPECT_EQ(direct_report.digest, session_report.digest);
    EXPECT_EQ(direct_report.frames, session_report.frames);
    EXPECT_EQ(direct_report.key_frames, session_report.key_frames);
}

TEST(Engine, ReportEchoesKernelSelection)
{
    ScaledBuildOptions build;
    build.input = Shape{1, 48, 48};
    const Network net = build_scaled(alexnet_spec(), build);
    EngineConfig config;
    config.num_threads = 1;
    Engine engine(net, config);
    const RunReport report =
        engine.run(multi_stream_set(3, 1, 2, 48));

    EXPECT_EQ(report.kernel, "gemm");
    ASSERT_EQ(report.plan.size(), 3u);
    bool saw_gemm = false;
    for (const PlanRecord &record : report.plan) {
        EXPECT_TRUE(record.scope == "prefix" ||
                    record.scope == "suffix" ||
                    record.scope == "motion");
        for (const PlanStepInfo &step : record.steps) {
            if (step.kernel == "im2col_gemm") {
                saw_gemm = true;
            }
        }
    }
    EXPECT_TRUE(saw_gemm);
    EXPECT_NE(report.to_json().find("\"kernel\": \"gemm\""),
              std::string::npos);
    EXPECT_NE(report.to_json().find("\"plan\""), std::string::npos);
}

TEST(Engine, KernelSpecsValidateEagerly)
{
    ScaledBuildOptions build;
    build.input = Shape{1, 48, 48};
    const Network net = build_scaled(alexnet_spec(), build);

    EngineConfig typo;
    typo.kernel = "gem";
    EXPECT_THROW(typo.validate(net), ConfigError);
    try {
        typo.validate(net);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        // The error names the alternatives.
        EXPECT_NE(std::string(e.what()).find("gemm"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("direct"),
                  std::string::npos);
    }

    EngineConfig bad_param;
    bad_param.kernel = "gemm:fused=1";
    EXPECT_THROW(bad_param.validate(net), ConfigError);

    EngineConfig unfused;
    unfused.kernel = "gemm:fuse=0";
    unfused.num_threads = 1;
    Engine engine(net, unfused);
    const RunReport report =
        engine.run(multi_stream_set(4, 1, 2, 48));
    for (const PlanRecord &record : report.plan) {
        for (const PlanStepInfo &step : record.steps) {
            EXPECT_FALSE(step.fused_relu);
        }
    }
}

} // namespace
} // namespace eva2
