/**
 * @file
 * Tests for the synthetic video substrate: determinism, motion
 * semantics (pans are true translations), ground-truth annotations,
 * occlusion scripting, and dataset assembly.
 */
#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"
#include "video/ascii_render.h"
#include "video/scenarios.h"

namespace eva2 {
namespace {

TEST(ValueNoise, DeterministicAndBounded)
{
    ValueNoise a(42, 16.0);
    ValueNoise b(42, 16.0);
    for (int i = 0; i < 50; ++i) {
        const double y = i * 1.7;
        const double x = i * -0.9;
        EXPECT_DOUBLE_EQ(a.sample(y, x), b.sample(y, x));
        EXPECT_GE(a.sample(y, x), 0.0);
        EXPECT_LE(a.sample(y, x), 1.0);
    }
}

TEST(ValueNoise, DifferentSeedsDiffer)
{
    ValueNoise a(1, 16.0);
    ValueNoise b(2, 16.0);
    bool any_diff = false;
    for (int i = 0; i < 20; ++i) {
        any_diff |= a.sample(i, i) != b.sample(i, i);
    }
    EXPECT_TRUE(any_diff);
}

TEST(SyntheticVideo, RenderDeterministicRandomAccess)
{
    SceneConfig cfg = chaotic_scene(7);
    SyntheticVideo video(cfg);
    LabeledFrame a = video.render(13);
    LabeledFrame b = video.render(13);
    EXPECT_TRUE(all_close(a.image, b.image, 0.0));
    EXPECT_EQ(a.truth.boxes.size(), b.truth.boxes.size());
}

TEST(SyntheticVideo, PixelsInUnitRange)
{
    SyntheticVideo video(chaotic_scene(9));
    LabeledFrame f = video.render(5);
    for (i64 i = 0; i < f.image.size(); ++i) {
        EXPECT_GE(f.image[i], 0.0f);
        EXPECT_LE(f.image[i], 1.0f);
    }
}

TEST(SyntheticVideo, IntegerPanIsExactTranslation)
{
    SceneConfig cfg;
    cfg.height = 64;
    cfg.width = 64;
    cfg.seed = 3;
    cfg.pan_vx = 2.0;
    SyntheticVideo video(cfg);
    Tensor f0 = video.render(0).image;
    Tensor f3 = video.render(3).image; // 6 px of pan
    Tensor expect = translate(f0, 0, 6);
    // Compare the region where translate() did not introduce zeros.
    double max_diff = 0.0;
    for (i64 y = 0; y < 64; ++y) {
        for (i64 x = 6; x < 64; ++x) {
            max_diff = std::max(
                max_diff, std::abs(static_cast<double>(f3.at(0, y, x)) -
                                   expect.at(0, y, x)));
        }
    }
    EXPECT_LT(max_diff, 1e-6);
}

TEST(SyntheticVideo, TimeStampsAt30Fps)
{
    SyntheticVideo video(static_scene(1));
    EXPECT_DOUBLE_EQ(video.render(0).time_ms, 0.0);
    EXPECT_DOUBLE_EQ(video.render(6).time_ms, 6 * 33.0);
}

TEST(SyntheticVideo, SpriteMovesAlongPath)
{
    SceneConfig cfg;
    cfg.height = 96;
    cfg.width = 96;
    cfg.seed = 5;
    SpriteConfig s;
    s.cls = 2;
    s.cy = 40.0;
    s.cx = 30.0;
    s.vx = 2.0;
    s.half_h = 10.0;
    s.half_w = 10.0;
    cfg.sprites.push_back(s);
    SyntheticVideo video(cfg);
    const auto f0 = video.render(0);
    const auto f5 = video.render(5);
    ASSERT_EQ(f0.truth.boxes.size(), 1u);
    ASSERT_EQ(f5.truth.boxes.size(), 1u);
    EXPECT_NEAR(f5.truth.boxes[0].x0 - f0.truth.boxes[0].x0, 10.0, 1e-9);
    EXPECT_EQ(f0.truth.boxes[0].cls, 2);
}

TEST(SyntheticVideo, AppearDisappearFrames)
{
    SceneConfig cfg;
    cfg.height = 64;
    cfg.width = 64;
    SpriteConfig s;
    s.cls = 1;
    s.cy = 32;
    s.cx = 32;
    s.half_h = 8;
    s.half_w = 8;
    s.appear_frame = 3;
    s.disappear_frame = 7;
    cfg.sprites.push_back(s);
    SyntheticVideo video(cfg);
    EXPECT_TRUE(video.render(2).truth.boxes.empty());
    EXPECT_EQ(video.render(3).truth.boxes.size(), 1u);
    EXPECT_EQ(video.render(6).truth.boxes.size(), 1u);
    EXPECT_TRUE(video.render(7).truth.boxes.empty());
}

TEST(SyntheticVideo, SceneCutChangesBackground)
{
    SceneConfig cfg;
    cfg.height = 64;
    cfg.width = 64;
    cfg.seed = 11;
    cfg.scene_cut_frame = 5;
    SyntheticVideo video(cfg);
    Tensor before = video.render(4).image;
    Tensor after = video.render(5).image;
    EXPECT_GT(frame_difference(before, after), 0.02);
}

TEST(SyntheticVideo, SceneStateTracksKinematics)
{
    SceneConfig cfg;
    cfg.height = 64;
    cfg.width = 64;
    cfg.seed = 3;
    cfg.pan_vy = 0.5;
    cfg.pan_vx = -1.0;
    SpriteConfig s;
    s.cls = 1;
    s.cy = 30.0;
    s.cx = 30.0;
    s.vy = 2.0;
    s.vx = 1.0;
    s.half_h = 8.0;
    s.half_w = 8.0;
    s.appear_frame = 2;
    cfg.sprites.push_back(s);
    SyntheticVideo video(cfg);

    const LabeledFrame f0 = video.render(0);
    EXPECT_DOUBLE_EQ(f0.state.pan_y, 0.0);
    EXPECT_TRUE(f0.state.sprites.empty()) << "sprite not yet visible";

    const LabeledFrame f4 = video.render(4);
    EXPECT_DOUBLE_EQ(f4.state.pan_y, 2.0);
    EXPECT_DOUBLE_EQ(f4.state.pan_x, -4.0);
    ASSERT_EQ(f4.state.sprites.size(), 1u);
    EXPECT_EQ(f4.state.sprites[0].id, 0);
    EXPECT_NEAR(f4.state.sprites[0].cy, 30.0 + 2.0 * 4, 1e-9);
    EXPECT_NEAR(f4.state.sprites[0].cx, 30.0 + 1.0 * 4, 1e-9);
}

TEST(SyntheticVideo, DifficultFlagOnTruncatedBoxes)
{
    SceneConfig cfg;
    cfg.height = 64;
    cfg.width = 64;
    SpriteConfig s;
    s.cls = 0;
    s.cy = 32;
    s.cx = 2.0; // mostly off the left edge
    s.half_h = 10;
    s.half_w = 10;
    cfg.sprites.push_back(s);
    SpriteConfig centered = s;
    centered.cx = 32.0;
    centered.cy = 32.0;
    cfg.sprites.push_back(centered);
    SyntheticVideo video(cfg);
    const auto f = video.render(0);
    ASSERT_EQ(f.truth.boxes.size(), 2u);
    EXPECT_TRUE(f.truth.boxes[0].difficult);
    EXPECT_FALSE(f.truth.boxes[1].difficult);
}

TEST(SyntheticVideo, DominantClassIsLargestBox)
{
    SceneConfig cfg;
    cfg.height = 96;
    cfg.width = 96;
    SpriteConfig small;
    small.cls = 1;
    small.cy = 25;
    small.cx = 25;
    small.half_h = 6;
    small.half_w = 6;
    SpriteConfig big;
    big.cls = 4;
    big.cy = 60;
    big.cx = 60;
    big.half_h = 20;
    big.half_w = 20;
    cfg.sprites.push_back(small);
    cfg.sprites.push_back(big);
    SyntheticVideo video(cfg);
    EXPECT_EQ(video.render(0).truth.dominant_class, 4);
}

TEST(SyntheticVideo, LightingDriftChangesBrightness)
{
    SceneConfig cfg;
    cfg.height = 48;
    cfg.width = 48;
    cfg.seed = 12;
    cfg.lighting_drift = 0.2;
    cfg.lighting_period = 20.0;
    SyntheticVideo video(cfg);
    const double s0 = sum(video.render(0).image);
    const double s5 = sum(video.render(5).image);
    EXPECT_GT(std::abs(s0 - s5) / s0, 0.02);
}

TEST(BoundingBox, IouSelfAndDisjoint)
{
    BoundingBox a{0, 0, 10, 10, 0};
    BoundingBox b{0, 0, 10, 10, 1};
    EXPECT_DOUBLE_EQ(a.iou(b), 1.0);
    BoundingBox c{20, 20, 30, 30, 0};
    EXPECT_DOUBLE_EQ(a.iou(c), 0.0);
}

TEST(BoundingBox, IouPartialOverlap)
{
    BoundingBox a{0, 0, 10, 10, 0};
    BoundingBox b{0, 5, 10, 15, 0};
    // Intersection 50, union 150.
    EXPECT_NEAR(a.iou(b), 1.0 / 3.0, 1e-9);
}

TEST(Scenarios, TestSetsHaveRequestedShape)
{
    auto det = detection_test_set(1, 5, 8, 96);
    EXPECT_EQ(det.size(), 5u);
    for (const Sequence &seq : det) {
        EXPECT_EQ(seq.size(), 8);
        EXPECT_EQ(seq[0].image.height(), 96);
    }
    auto cls = classification_test_set(2, 4, 6, 64);
    EXPECT_EQ(cls.size(), 4u);
    for (const Sequence &seq : cls) {
        EXPECT_EQ(seq[0].image.width(), 64);
        EXPECT_GE(seq[0].truth.dominant_class, 0);
    }
}

TEST(Scenarios, StaticSceneIsStatic)
{
    SyntheticVideo video(static_scene(3, 64));
    EXPECT_LT(frame_difference(video.render(0).image,
                               video.render(10).image),
              1e-9);
}

TEST(Scenarios, ObjectSceneClassesDistinct)
{
    SceneConfig cfg = object_scene(4, 3, 1.0, 128);
    ASSERT_EQ(cfg.sprites.size(), 3u);
    EXPECT_NE(cfg.sprites[0].cls, cfg.sprites[1].cls);
    EXPECT_NE(cfg.sprites[1].cls, cfg.sprites[2].cls);
}

TEST(Scenarios, ClassChangeSceneChangesDominant)
{
    SceneConfig cfg = class_change_scene(5, 1, 6, 10, 96);
    SyntheticVideo video(cfg);
    EXPECT_EQ(video.render(0).truth.dominant_class, 1);
    EXPECT_EQ(video.render(12).truth.dominant_class, 6);
}

TEST(Scenarios, FrameDifferenceTracksSpeed)
{
    // Faster pans produce larger interframe differences.
    SyntheticVideo slow(panning_scene(8, 0.5, 96));
    SyntheticVideo fast(panning_scene(8, 3.0, 96));
    const double d_slow =
        frame_difference(slow.render(0).image, slow.render(1).image);
    const double d_fast =
        frame_difference(fast.render(0).image, fast.render(1).image);
    EXPECT_GT(d_fast, d_slow);
}

TEST(AsciiRender, ShapeAndRampSemantics)
{
    Tensor img(1, 32, 64);
    for (i64 x = 0; x < 64; ++x) {
        for (i64 y = 0; y < 32; ++y) {
            img.at(0, y, x) =
                static_cast<float>(x) / 63.0f; // dark -> light
        }
    }
    AsciiOptions opts;
    opts.max_cols = 32;
    const std::string art = ascii_frame(img, opts);
    // One trailing newline per row; every row is max_cols wide.
    const size_t first_line = art.find('\n');
    ASSERT_NE(first_line, std::string::npos);
    EXPECT_EQ(first_line, 32u);
    // The left edge is dark (dense glyph '@'), the right edge light.
    EXPECT_EQ(art[0], '@');
    EXPECT_EQ(art[31], ' ');
}

TEST(AsciiRender, BoxesDrawClassDigits)
{
    Tensor img(1, 64, 64);
    img.fill(0.5f);
    BoundingBox b{16, 16, 48, 48, 3};
    AsciiOptions opts;
    opts.max_cols = 32;
    const std::string art =
        ascii_frame_with_boxes(img, {b}, opts);
    EXPECT_NE(art.find('3'), std::string::npos);
    const std::string no_boxes = ascii_frame(img, opts);
    EXPECT_EQ(no_boxes.find('3'), std::string::npos);
}

} // namespace
} // namespace eva2
