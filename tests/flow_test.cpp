/**
 * @file
 * Tests for the motion-estimation module: RFBME (functional and naive
 * reference), classic block matching, optical flow baselines, and
 * motion field utilities.
 */
#include <gtest/gtest.h>

#include "flow/block_matching.h"
#include "flow/optical_flow.h"
#include "flow/rfbme.h"
#include "runtime/parallel_for.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"
#include "video/synthetic_video.h"

namespace eva2 {
namespace {

/** A non-periodic textured test frame. */
Tensor
noise_frame(i64 h, i64 w, u64 seed, double scale = 10.0)
{
    ValueNoise noise(seed, scale);
    Tensor t(1, h, w);
    for (i64 y = 0; y < h; ++y) {
        for (i64 x = 0; x < w; ++x) {
            t.at(0, y, x) = static_cast<float>(
                noise.sample(static_cast<double>(y),
                             static_cast<double>(x)));
        }
    }
    return t;
}

TEST(MotionField, UniformAndMagnitude)
{
    MotionField f = MotionField::uniform(3, 4, Vec2{3.0, 4.0});
    EXPECT_EQ(f.height(), 3);
    EXPECT_EQ(f.width(), 4);
    EXPECT_DOUBLE_EQ(f.at(2, 3).magnitude(), 5.0);
    EXPECT_DOUBLE_EQ(f.total_magnitude(), 12 * 5.0);
    EXPECT_DOUBLE_EQ(f.mean_magnitude(), 5.0);
}

TEST(MotionField, Scaled)
{
    MotionField f = MotionField::uniform(2, 2, Vec2{8.0, -16.0});
    MotionField s = f.scaled(1.0 / 16.0);
    EXPECT_DOUBLE_EQ(s.at(0, 0).dy, 0.5);
    EXPECT_DOUBLE_EQ(s.at(0, 0).dx, -1.0);
}

TEST(MotionField, AverageToGrid)
{
    // An 8x8 dense field with constant vectors reduces to the same
    // constant on any grid.
    MotionField dense = MotionField::uniform(8, 8, Vec2{1.0, 2.0});
    MotionField grid = average_to_grid(dense, 3, 3, 4, 2, 1);
    for (i64 y = 0; y < 3; ++y) {
        for (i64 x = 0; x < 3; ++x) {
            EXPECT_DOUBLE_EQ(grid.at(y, x).dy, 1.0);
            EXPECT_DOUBLE_EQ(grid.at(y, x).dx, 2.0);
        }
    }
}

TEST(Rfbme, RecoversExactTranslation)
{
    Tensor key = noise_frame(64, 64, 5);
    RfbmeConfig cfg{24, 8, 0, 16, 4};
    for (i64 d : {-8, -4, 0, 4, 8}) {
        Tensor cur = translate(key, 0, d);
        RfbmeResult r = rfbme(key, cur, cfg);
        // Interior vectors must all equal the backward offset -d.
        for (i64 y = 1; y + 1 < r.field.height(); ++y) {
            for (i64 x = 1; x + 1 < r.field.width(); ++x) {
                EXPECT_DOUBLE_EQ(r.field.at(y, x).dx,
                                 static_cast<double>(-d))
                    << "d=" << d << " cell " << y << "," << x;
            }
        }
    }
}

TEST(Rfbme, ZeroErrorOnPerfectMatch)
{
    Tensor key = noise_frame(48, 48, 6);
    RfbmeConfig cfg{16, 8, 0, 8, 4};
    RfbmeResult r = rfbme(key, key, cfg);
    EXPECT_NEAR(r.total_error, 0.0, 1e-9);
    for (i64 y = 0; y < r.field.height(); ++y) {
        for (i64 x = 0; x < r.field.width(); ++x) {
            EXPECT_DOUBLE_EQ(r.field.at(y, x).magnitude(), 0.0);
        }
    }
}

TEST(Rfbme, ErrorGrowsWithSceneChange)
{
    Tensor key = noise_frame(48, 48, 7);
    Tensor other = noise_frame(48, 48, 8); // unrelated content
    Tensor shifted = translate(key, 0, 4);
    RfbmeConfig cfg{16, 8, 0, 8, 4};
    const double err_shift = rfbme(key, shifted, cfg).mean_error;
    const double err_other = rfbme(key, other, cfg).mean_error;
    EXPECT_LT(err_shift, err_other);
}

/** Parameterized equivalence sweep: optimized RFBME == naive RFBME. */
struct RfbmeCase
{
    i64 h;
    i64 w;
    RfbmeConfig cfg;
    u64 seed;
};

class RfbmeEquivalence : public ::testing::TestWithParam<RfbmeCase>
{
};

TEST_P(RfbmeEquivalence, MatchesNaiveReference)
{
    const RfbmeCase &tc = GetParam();
    Tensor key = noise_frame(tc.h, tc.w, tc.seed);
    Rng rng(tc.seed * 31 + 1);
    // A composite change: translation + noise.
    Tensor cur = translate(key, 1, -2);
    for (i64 i = 0; i < cur.size(); ++i) {
        cur[i] += rng.uniform_f(-0.01f, 0.01f);
    }
    RfbmeResult fast = rfbme(key, cur, tc.cfg);
    RfbmeResult naive = rfbme_naive(key, cur, tc.cfg);
    ASSERT_EQ(fast.field.height(), naive.field.height());
    ASSERT_EQ(fast.field.width(), naive.field.width());
    for (i64 y = 0; y < fast.field.height(); ++y) {
        for (i64 x = 0; x < fast.field.width(); ++x) {
            const double fe =
                fast.rf_errors[static_cast<size_t>(y * fast.field.width() +
                                                   x)];
            const double ne = naive.rf_errors[static_cast<size_t>(
                y * naive.field.width() + x)];
            EXPECT_NEAR(fe, ne, 1e-9) << y << "," << x;
            // Vectors match unless two offsets tie to within rounding.
            if (fast.field.at(y, x) != naive.field.at(y, x)) {
                EXPECT_NEAR(fe, ne, 1e-9);
            }
        }
    }
    EXPECT_NEAR(fast.total_error, naive.total_error, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RfbmeEquivalence,
    ::testing::Values(
        RfbmeCase{40, 40, {16, 8, 0, 8, 4}, 1},
        RfbmeCase{48, 40, {16, 8, 4, 8, 2}, 2},
        RfbmeCase{64, 64, {24, 8, 8, 16, 4}, 3},
        RfbmeCase{36, 36, {6, 2, 2, 4, 2}, 4},   // Figure 7 geometry
        RfbmeCase{50, 42, {14, 7, 3, 7, 7}, 5},  // non-multiple sizes
        RfbmeCase{64, 32, {32, 16, 16, 16, 8}, 6}));

TEST(Rfbme, OptimizedUsesFarFewerOps)
{
    Tensor key = noise_frame(96, 96, 9);
    Tensor cur = translate(key, 2, 2);
    RfbmeConfig cfg{48, 16, 16, 16, 8};
    RfbmeResult fast = rfbme(key, cur, cfg);
    RfbmeResult naive = rfbme_naive(key, cur, cfg);
    // Tile reuse should save roughly rf_stride^2; require at least 4x.
    EXPECT_LT(fast.add_ops * 4, naive.add_ops);
}

TEST(Rfbme, OutSizeMatchesConvFormula)
{
    RfbmeConfig cfg{6, 2, 2, 4, 2};
    EXPECT_EQ(rfbme_out_size(8, cfg), (8 + 2 * 2 - 6) / 2 + 1);
}

TEST(Rfbme, RejectsBadConfig)
{
    Tensor a = noise_frame(16, 16, 1);
    RfbmeConfig bad{0, 2, 2, 4, 2};
    EXPECT_THROW(rfbme(a, a, bad), ConfigError);
    Tensor b = noise_frame(8, 16, 1);
    RfbmeConfig ok{4, 2, 0, 2, 2};
    EXPECT_THROW(rfbme(a, b, ok), ConfigError);
}

TEST(BlockMatch, RecoversTranslation)
{
    Tensor key = noise_frame(64, 64, 10);
    Tensor cur = translate(key, 3, -5);
    BlockMatchConfig cfg{8, 8, 1};
    MotionField f = exhaustive_block_match(key, cur, cfg);
    // Interior blocks should all point at the backward offset (-3, 5).
    for (i64 y = 2; y + 2 < f.height(); ++y) {
        for (i64 x = 2; x + 2 < f.width(); ++x) {
            EXPECT_DOUBLE_EQ(f.at(y, x).dy, -3.0);
            EXPECT_DOUBLE_EQ(f.at(y, x).dx, 5.0);
        }
    }
}

TEST(BlockMatch, ThreeStepCloseToExhaustive)
{
    Tensor key = noise_frame(64, 64, 11);
    Tensor cur = translate(key, 4, 4);
    BlockMatchConfig cfg{8, 8, 1};
    MotionField ex = exhaustive_block_match(key, cur, cfg);
    MotionField ts = three_step_search(key, cur, cfg);
    double mean_dist = 0.0;
    for (i64 y = 0; y < ex.height(); ++y) {
        for (i64 x = 0; x < ex.width(); ++x) {
            Vec2 d{ex.at(y, x).dy - ts.at(y, x).dy,
                   ex.at(y, x).dx - ts.at(y, x).dx};
            mean_dist += d.magnitude();
        }
    }
    mean_dist /= static_cast<double>(ex.size());
    EXPECT_LT(mean_dist, 2.0);
}

TEST(BlockMatch, MadOfIdenticalBlocksIsZero)
{
    Tensor key = noise_frame(32, 32, 12);
    EXPECT_DOUBLE_EQ(block_mad(key, key, 8, 8, 8, 0, 0), 0.0);
    EXPECT_GT(block_mad(key, key, 8, 8, 8, 3, 3), 0.0);
}

TEST(BlockMatch, DiamondRecoversSmallTranslation)
{
    Tensor key = noise_frame(64, 64, 13);
    Tensor cur = translate(key, 2, -3);
    BlockMatchConfig cfg{8, 8, 1};
    MotionField f = diamond_search(key, cur, cfg);
    for (i64 y = 2; y + 2 < f.height(); ++y) {
        for (i64 x = 2; x + 2 < f.width(); ++x) {
            EXPECT_DOUBLE_EQ(f.at(y, x).dy, -2.0);
            EXPECT_DOUBLE_EQ(f.at(y, x).dx, 3.0);
        }
    }
}

TEST(BlockMatch, DiamondZeroOnIdenticalFrames)
{
    Tensor key = noise_frame(48, 48, 14);
    BlockMatchConfig cfg{8, 12, 1};
    MotionField f = diamond_search(key, key, cfg);
    EXPECT_DOUBLE_EQ(f.total_magnitude(), 0.0);
}

TEST(BlockMatch, DiamondRespectsSearchRadius)
{
    Tensor key = noise_frame(64, 64, 15);
    Tensor cur = translate(key, 0, 20); // beyond the radius
    BlockMatchConfig cfg{8, 6, 1};
    MotionField f = diamond_search(key, cur, cfg);
    for (i64 y = 0; y < f.height(); ++y) {
        for (i64 x = 0; x < f.width(); ++x) {
            EXPECT_LE(std::abs(f.at(y, x).dy), 6.0);
            EXPECT_LE(std::abs(f.at(y, x).dx), 6.0);
        }
    }
}

/** Property: all three fast searches stay within the radius and agree
 * with exhaustive search on clean uniform translations within range. */
class FastSearchSweep
    : public ::testing::TestWithParam<std::pair<i64, i64>>
{
};

TEST_P(FastSearchSweep, NearOptimalMatchError)
{
    // A fast search's contract is the codec criterion: find an
    // offset whose match error is close to the global (exhaustive)
    // minimum — not necessarily the true motion vector, since MAD
    // landscapes on textured content have equivalent minima.
    const auto [dy, dx] = GetParam();
    Tensor key = noise_frame(64, 64, 16);
    Tensor cur = translate(key, dy, dx);
    BlockMatchConfig cfg{8, 8, 1};
    MotionField ex = exhaustive_block_match(key, cur, cfg);
    for (const MotionField &fast :
         {three_step_search(key, cur, cfg),
          diamond_search(key, cur, cfg)}) {
        double excess_sum = 0.0;
        for (i64 y = 0; y < ex.height(); ++y) {
            for (i64 x = 0; x < ex.width(); ++x) {
                const double optimal = block_mad(
                    key, cur, y * cfg.block_size, x * cfg.block_size,
                    cfg.block_size,
                    static_cast<i64>(ex.at(y, x).dy),
                    static_cast<i64>(ex.at(y, x).dx));
                const double got = block_mad(
                    key, cur, y * cfg.block_size, x * cfg.block_size,
                    cfg.block_size,
                    static_cast<i64>(fast.at(y, x).dy),
                    static_cast<i64>(fast.at(y, x).dx));
                EXPECT_GE(got, optimal - 1e-12);
                // Any single block may sit in a poor local minimum
                // (pixel values are in [0,1], so 0.2 is a bad match);
                // the aggregate must stay near optimal.
                EXPECT_LE(got, optimal + 0.2)
                    << "dy=" << dy << " dx=" << dx << " cell " << y
                    << "," << x;
                excess_sum += got - optimal;
            }
        }
        EXPECT_LT(excess_sum / static_cast<double>(ex.size()), 0.02)
            << "dy=" << dy << " dx=" << dx;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Translations, FastSearchSweep,
    ::testing::Values(std::pair<i64, i64>{0, 0},
                      std::pair<i64, i64>{1, 1},
                      std::pair<i64, i64>{-2, 4},
                      std::pair<i64, i64>{4, -4},
                      std::pair<i64, i64>{-5, 0}));

TEST(OpticalFlow, Downsample2Shape)
{
    Tensor t = noise_frame(33, 64, 13);
    Tensor d = downsample2(t);
    EXPECT_EQ(d.height(), 16);
    EXPECT_EQ(d.width(), 32);
}

TEST(OpticalFlow, LucasKanadeRecoversSmallShift)
{
    Tensor key = noise_frame(64, 64, 14, 8.0);
    Tensor cur = translate(key, 0, 2);
    // Backward field: lucas_kanade(new, key) ~ (0, -2) per pixel.
    MotionField f = lucas_kanade(cur, key);
    double mean_dx = 0.0;
    i64 n = 0;
    for (i64 y = 16; y < 48; ++y) {
        for (i64 x = 16; x < 48; ++x) {
            mean_dx += f.at(y, x).dx;
            ++n;
        }
    }
    mean_dx /= static_cast<double>(n);
    EXPECT_NEAR(mean_dx, -2.0, 0.8);
}

TEST(OpticalFlow, HornSchunckRecoversSmallShift)
{
    Tensor key = noise_frame(64, 64, 15, 8.0);
    Tensor cur = translate(key, 1, 0);
    MotionField f = horn_schunck(cur, key);
    double mean_dy = 0.0;
    i64 n = 0;
    for (i64 y = 16; y < 48; ++y) {
        for (i64 x = 16; x < 48; ++x) {
            mean_dy += f.at(y, x).dy;
            ++n;
        }
    }
    mean_dy /= static_cast<double>(n);
    EXPECT_NEAR(mean_dy, -1.0, 0.5);
}

TEST(OpticalFlow, ZeroFlowOnIdenticalFrames)
{
    Tensor key = noise_frame(48, 48, 16);
    MotionField lk = lucas_kanade(key, key);
    MotionField hs = horn_schunck(key, key);
    EXPECT_LT(lk.mean_magnitude(), 0.05);
    EXPECT_LT(hs.mean_magnitude(), 0.05);
}

// --------------------------------------------------------------------
// Allocation-free *_into forms: bit-identical to the allocating
// wrappers, and steady-state reuse neither allocates tensor buffers
// nor regrows the caller-owned workspaces (pinned by buffer-address
// stability across repeated calls).

bool
fields_equal(const MotionField &a, const MotionField &b)
{
    if (a.height() != b.height() || a.width() != b.width()) {
        return false;
    }
    for (i64 y = 0; y < a.height(); ++y) {
        for (i64 x = 0; x < a.width(); ++x) {
            if (a.at(y, x) != b.at(y, x)) {
                return false;
            }
        }
    }
    return true;
}

TEST(RfbmeInto, MatchesAllocatingFormAndReusesWorkspace)
{
    const Tensor key = noise_frame(64, 64, 31);
    const Tensor cur = translate(key, 3.0, -2.0);
    RfbmeConfig config;
    config.search_radius = 8;

    const RfbmeResult expect = rfbme(key, cur, config);

    RfbmeResult result;
    RfbmeWorkspace ws;
    rfbme_into(key, cur, config, result, ws);
    EXPECT_TRUE(fields_equal(result.field, expect.field));
    EXPECT_EQ(result.rf_errors, expect.rf_errors);
    EXPECT_EQ(result.add_ops, expect.add_ops);
    EXPECT_DOUBLE_EQ(result.mean_error, expect.mean_error);

    // Steady state: the second run reuses every buffer in place.
    const Vec2 *field_buf = &result.field.at(0, 0);
    const double *errors_buf = result.rf_errors.data();
    const Vec2 *offsets_buf = ws.offsets.data();
    const double *chunk_buf = ws.chunks.empty()
                                  ? nullptr
                                  : ws.chunks.front().best.data();
    const u64 before = Tensor::buffer_allocations();
    rfbme_into(key, cur, config, result, ws);
    EXPECT_EQ(Tensor::buffer_allocations() - before, 0u);
    EXPECT_EQ(&result.field.at(0, 0), field_buf);
    EXPECT_EQ(result.rf_errors.data(), errors_buf);
    EXPECT_EQ(ws.offsets.data(), offsets_buf);
    if (chunk_buf != nullptr) {
        EXPECT_EQ(ws.chunks.front().best.data(), chunk_buf);
    }
    EXPECT_TRUE(fields_equal(result.field, expect.field));
}

TEST(RfbmeInto, WorkspaceSurvivesAConfigChange)
{
    const Tensor key = noise_frame(48, 48, 33);
    const Tensor cur = translate(key, -2.0, 1.0);
    RfbmeConfig small;
    small.search_radius = 4;
    RfbmeConfig big;
    big.search_radius = 10;

    RfbmeResult result;
    RfbmeWorkspace ws;
    rfbme_into(key, cur, small, result, ws);
    rfbme_into(key, cur, big, result, ws);
    const RfbmeResult expect = rfbme(key, cur, big);
    EXPECT_TRUE(fields_equal(result.field, expect.field));
    EXPECT_EQ(result.add_ops, expect.add_ops);
}

// --------------------------------------------------------------------
// RFBME variant parity: the scalar and SIMD diff-tile producers must
// be bit-identical on every input (the fixed-stripe SAD contract of
// flow/sad_kernels.h), and both must stay within tolerance of the
// naive reference. On machines or builds without SIMD support the
// kSimd variant falls back to the scalar kernels, so this suite is
// meaningful in the EVA2_SIMD=OFF and sanitizer CI legs too.

void
expect_bit_identical(const RfbmeResult &a, const RfbmeResult &b)
{
    ASSERT_TRUE(fields_equal(a.field, b.field));
    ASSERT_EQ(a.rf_errors.size(), b.rf_errors.size());
    for (size_t i = 0; i < a.rf_errors.size(); ++i) {
        EXPECT_EQ(a.rf_errors[i], b.rf_errors[i]) << "cell " << i;
    }
    EXPECT_EQ(a.total_error, b.total_error);
    EXPECT_EQ(a.mean_error, b.mean_error);
    EXPECT_EQ(a.add_ops, b.add_ops);
}

TEST(RfbmeParity, ScalarAndSimdBitIdenticalAcrossBorderClipping)
{
    // Odd shapes, pads, and strides, with search radii at or past the
    // image extent so candidate offsets clip at every border. Tile
    // widths cover each SIMD code path: s=2 and s=4 vectorize across
    // tiles, s=8 is one full vector, s=13 exercises the vector +
    // stripe-remainder path, s=3 the scalar-contract tail.
    const RfbmeCase cases[] = {
        {19, 23, {5, 3, 1, 30, 7}, 61},
        {18, 14, {6, 2, 2, 16, 3}, 62},
        {33, 27, {9, 3, 4, 12, 5}, 63},
        {40, 36, {12, 4, 2, 40, 9}, 64},
        {26, 22, {13, 13, 6, 30, 11}, 65},
        {24, 24, {16, 8, 0, 25, 25}, 66},
    };
    for (const RfbmeCase &tc : cases) {
        const Tensor key = noise_frame(tc.h, tc.w, tc.seed);
        Rng rng(tc.seed * 31 + 7);
        Tensor cur = translate(key, -1, 2);
        for (i64 i = 0; i < cur.size(); ++i) {
            cur[i] += rng.uniform_f(-0.02f, 0.02f);
        }
        RfbmeConfig scalar_cfg = tc.cfg;
        scalar_cfg.variant = RfbmeVariant::kScalar;
        RfbmeConfig simd_cfg = tc.cfg;
        simd_cfg.variant = RfbmeVariant::kSimd;

        const RfbmeResult rs = rfbme(key, cur, scalar_cfg);
        const RfbmeResult rv = rfbme(key, cur, simd_cfg);
        expect_bit_identical(rs, rv);

        // Both variants stay the optimized algorithm: tolerance vs
        // the naive per-field reference (which sums in a different
        // order by construction), same output geometry.
        const RfbmeResult naive = rfbme_naive(key, cur, tc.cfg);
        ASSERT_EQ(rs.field.height(), naive.field.height());
        ASSERT_EQ(rs.field.width(), naive.field.width());
        for (size_t i = 0; i < rs.rf_errors.size(); ++i) {
            EXPECT_NEAR(rs.rf_errors[i], naive.rf_errors[i], 1e-9)
                << tc.h << "x" << tc.w << " cell " << i;
        }
    }
}

TEST(RfbmeParity, OutputAndAddOpsInvariantAcrossThreadCounts)
{
    const Tensor key = noise_frame(50, 42, 71);
    Tensor cur = translate(key, 2, -3);
    RfbmeConfig cfg{14, 7, 3, 10, 5};
    cfg.variant = RfbmeVariant::kSimd;

    RfbmeResult parallel_result;
    RfbmeWorkspace ws_parallel;
    rfbme_into(key, cur, cfg, parallel_result, ws_parallel);

    // Nested parallel_for calls run serially inline, so running the
    // whole estimator inside an outer parallel region forces a
    // one-thread schedule of the offset chunks. The ascending-offset
    // chunk merge makes the two schedules bit-identical, add_ops
    // included.
    RfbmeResult serial_result;
    RfbmeWorkspace ws_serial;
    parallel_for(0, 1, [&](i64) {
        rfbme_into(key, cur, cfg, serial_result, ws_serial);
    });

    expect_bit_identical(parallel_result, serial_result);
}

TEST(BlockMatch, ThreeStepRejectsBadConfig)
{
    // Regression: three_step_search_into used to skip the config
    // validation the other searches have — block_size=0 divided by
    // zero and search_stride<=0 went unchecked.
    const Tensor a = noise_frame(16, 16, 91);
    MotionField out;
    const BlockMatchConfig zero_block{0, 4, 1};
    EXPECT_THROW(three_step_search_into(a, a, zero_block, out),
                 ConfigError);
    const BlockMatchConfig zero_stride{8, 4, 0};
    EXPECT_THROW(three_step_search_into(a, a, zero_stride, out),
                 ConfigError);
    const BlockMatchConfig neg_radius{8, -1, 1};
    EXPECT_THROW(three_step_search_into(a, a, neg_radius, out),
                 ConfigError);
}

TEST(BlockMatch, ExhaustiveParallelMatchesSerialSchedule)
{
    const Tensor key = noise_frame(40, 40, 93);
    const Tensor cur = translate(key, 1, -2);
    const BlockMatchConfig cfg{8, 6, 2};
    MotionField par;
    exhaustive_block_match_into(key, cur, cfg, par);
    // Same nested-parallel_for trick as above: a forced one-thread
    // schedule must match the parallel one bit for bit.
    MotionField ser;
    parallel_for(0, 1, [&](i64) {
        exhaustive_block_match_into(key, cur, cfg, ser);
    });
    EXPECT_TRUE(fields_equal(par, ser));
}

TEST(BlockMatchingInto, MatchesAllocatingFormsWithoutAllocating)
{
    const Tensor key = noise_frame(48, 48, 35);
    const Tensor cur = translate(key, 2.0, 3.0);
    BlockMatchConfig config;
    config.search_radius = 6;

    MotionField out;
    exhaustive_block_match_into(key, cur, config, out);
    EXPECT_TRUE(
        fields_equal(out, exhaustive_block_match(key, cur, config)));
    three_step_search_into(key, cur, config, out);
    EXPECT_TRUE(
        fields_equal(out, three_step_search(key, cur, config)));
    diamond_search_into(key, cur, config, out);
    EXPECT_TRUE(fields_equal(out, diamond_search(key, cur, config)));

    // Steady state: repeated searches into the same field reuse its
    // grid in place and touch no tensor buffers.
    const Vec2 *buf = &out.at(0, 0);
    const u64 before = Tensor::buffer_allocations();
    exhaustive_block_match_into(key, cur, config, out);
    three_step_search_into(key, cur, config, out);
    diamond_search_into(key, cur, config, out);
    EXPECT_EQ(Tensor::buffer_allocations() - before, 0u);
    EXPECT_EQ(&out.at(0, 0), buf);
}

TEST(MotionFieldInto, ResizeGridZeroFillsAndAverageIntoMatches)
{
    MotionField f = MotionField::uniform(4, 4, Vec2{1.0, 2.0});
    f.resize_grid(2, 3);
    EXPECT_EQ(f.height(), 2);
    EXPECT_EQ(f.width(), 3);
    for (i64 y = 0; y < 2; ++y) {
        for (i64 x = 0; x < 3; ++x) {
            EXPECT_EQ(f.at(y, x), (Vec2{0.0, 0.0}));
        }
    }

    const MotionField dense =
        MotionField::uniform(16, 16, Vec2{2.0, -1.0});
    MotionField out;
    average_to_grid_into(dense, 7, 7, 4, 2, 1, out);
    EXPECT_TRUE(
        fields_equal(out, average_to_grid(dense, 7, 7, 4, 2, 1)));
}

} // namespace
} // namespace eva2
