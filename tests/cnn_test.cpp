/**
 * @file
 * Unit tests for the CNN engine: layer semantics (including the
 * paper's Figure 4 worked examples), receptive-field algebra
 * (Figure 7's geometry), network plumbing, the model zoo's analytic
 * costs (checked against the numbers the paper quotes), and weight
 * calibration.
 */
#include <gtest/gtest.h>

#include "cnn/activation_layer.h"
#include "cnn/conv_layer.h"
#include "cnn/fc_layer.h"
#include "cnn/model_zoo.h"
#include "cnn/pool_layer.h"
#include "cnn/weights.h"
#include "tensor/tensor_ops.h"

namespace eva2 {
namespace {

/** The 3x3 input image of the paper's Figure 4a. */
Tensor
figure4_image()
{
    Tensor img(1, 3, 3);
    img.at(0, 0, 0) = 1.0f;
    img.at(0, 1, 0) = 1.0f;
    return img;
}

/** The vertical-edge filter of Figure 4 (column of ones). */
ConvLayer
figure4_conv()
{
    ConvLayer conv(1, 1, 3, 1, 1);
    conv.weights()[conv.weight_index(0, 0, 0, 1)] = 1.0f;
    conv.weights()[conv.weight_index(0, 0, 1, 1)] = 1.0f;
    conv.weights()[conv.weight_index(0, 0, 2, 1)] = 1.0f;
    return conv;
}

TEST(ConvLayer, Figure4aReference)
{
    // conv 3x3 s=1 (with pad 1 to keep 3x3 output as in the figure).
    Tensor out = figure4_conv().forward(figure4_image());
    Tensor expect(1, 3, 3);
    expect.at(0, 0, 0) = 2.0f;
    expect.at(0, 1, 0) = 2.0f;
    expect.at(0, 2, 0) = 1.0f;
    EXPECT_TRUE(all_close(out, expect, 1e-6)) << "Figure 4a mismatch";
}

TEST(ConvLayer, Figure4bTranslationCommutes)
{
    // Figure 4b: translating the image right by 2 translates the conv
    // output right by 2.
    ConvLayer conv = figure4_conv();
    Tensor base = conv.forward(figure4_image());
    Tensor moved = conv.forward(translate(figure4_image(), 0, 2));
    EXPECT_TRUE(all_close(moved, translate(base, 0, 2), 1e-6));
}

TEST(MaxPool, Figure4aReference)
{
    // 2x2 max pool with stride 1 on the conv output of Figure 4a.
    Tensor conv_out = figure4_conv().forward(figure4_image());
    MaxPoolLayer pool(2, 1);
    Tensor out = pool.forward(conv_out);
    EXPECT_EQ(out.height(), 2);
    EXPECT_EQ(out.width(), 2);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0), 2.0f);
    EXPECT_FLOAT_EQ(out.at(0, 0, 1), 0.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1, 0), 2.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1, 1), 0.0f);
}

TEST(MaxPool, Figure4ePoolingBreaksCommutativity)
{
    // Figure 4e: a 1-pixel translation commutes with the conv layer
    // but NOT with the stride-1 2x2 pooling layer.
    ConvLayer conv = figure4_conv();
    MaxPoolLayer pool(2, 1);
    Tensor img = figure4_image();
    Tensor moved_img = translate(img, 0, 1);

    Tensor conv_base = conv.forward(img);
    Tensor conv_moved = conv.forward(moved_img);
    EXPECT_TRUE(all_close(conv_moved, translate(conv_base, 0, 1), 1e-6))
        << "conv layer should commute with the 1px translation";

    Tensor pooled_base = pool.forward(conv_base);
    Tensor pooled_moved = pool.forward(conv_moved);
    EXPECT_FALSE(
        all_close(pooled_moved, translate(pooled_base, 0, 1), 1e-6))
        << "pooling should break exact commutativity (Figure 4e)";
}

TEST(ConvLayer, OutShapeAndMacs)
{
    ConvLayer conv(3, 8, 5, 2, 1);
    Shape out = conv.out_shape(Shape{3, 32, 32});
    EXPECT_EQ(out, (Shape{8, 15, 15}));
    // MACs = outputs * in_c * k * k.
    EXPECT_EQ(conv.macs(Shape{3, 32, 32}), 15 * 15 * 8 * 3 * 5 * 5);
}

TEST(ConvLayer, BiasApplied)
{
    ConvLayer conv(1, 1, 1, 1, 0);
    conv.weights()[0] = 2.0f;
    conv.biases()[0] = 0.5f;
    Tensor in(1, 1, 1);
    in[0] = 3.0f;
    EXPECT_FLOAT_EQ(conv.forward(in)[0], 6.5f);
}

TEST(ConvLayer, RejectsWrongChannelCount)
{
    ConvLayer conv(3, 4, 3, 1, 1);
    EXPECT_THROW(conv.out_shape(Shape{2, 8, 8}), ConfigError);
}

TEST(ReluLayer, Elementwise)
{
    ReluLayer relu_layer;
    Tensor in(1, 1, 2);
    in[0] = -2.0f;
    in[1] = 2.0f;
    Tensor out = relu_layer.forward(in);
    EXPECT_EQ(out[0], 0.0f);
    EXPECT_EQ(out[1], 2.0f);
}

TEST(LrnLayer, NormalizesAcrossChannels)
{
    LrnLayer lrn;
    Tensor in(3, 1, 1);
    in[0] = 1.0f;
    in[1] = 1.0f;
    in[2] = 1.0f;
    Tensor out = lrn.forward(in);
    // All channels identical, so outputs stay equal and < input.
    EXPECT_NEAR(out[0], out[1], 1e-6);
    EXPECT_LT(out[0], 1.0f);
    EXPECT_GT(out[0], 0.5f);
}

TEST(FcLayer, MatrixVectorProduct)
{
    FcLayer fc(3, 2);
    // W = [[1,2,3],[4,5,6]], b = [1, -1].
    for (int i = 0; i < 6; ++i) {
        fc.weights()[static_cast<size_t>(i)] = static_cast<float>(i + 1);
    }
    fc.biases()[0] = 1.0f;
    fc.biases()[1] = -1.0f;
    Tensor in(3, 1, 1);
    in[0] = 1.0f;
    in[1] = 0.0f;
    in[2] = 2.0f;
    Tensor out = fc.forward(in);
    EXPECT_FLOAT_EQ(out[0], 1.0f + 1.0f + 6.0f);
    EXPECT_FLOAT_EQ(out[1], -1.0f + 4.0f + 12.0f);
}

TEST(FcLayer, NonSpatial)
{
    FcLayer fc(4, 2);
    EXPECT_FALSE(fc.spatial());
    EXPECT_EQ(fc.macs(Shape{4, 1, 1}), 8);
}

TEST(SoftmaxLayer, NormalizesToOne)
{
    SoftmaxLayer sm;
    Tensor in(3, 1, 1);
    in[0] = 1.0f;
    in[1] = 2.0f;
    in[2] = 3.0f;
    Tensor out = sm.forward(in);
    double total = 0.0;
    for (i64 i = 0; i < 3; ++i) {
        total += out[i];
    }
    EXPECT_NEAR(total, 1.0, 1e-6);
    EXPECT_GT(out[2], out[1]);
    EXPECT_GT(out[1], out[0]);
}

TEST(ReceptiveField, SingleLayer)
{
    ReceptiveField rf;
    rf = rf.compose(WindowGeometry{6, 2, 2});
    EXPECT_EQ(rf.size, 6);
    EXPECT_EQ(rf.stride, 2);
    EXPECT_EQ(rf.pad, 2);
    // Figure 7: the first receptive field starts at -2.
    EXPECT_EQ(rf.start(0), -2);
    EXPECT_EQ(rf.start(1), 0);
}

TEST(ReceptiveField, ComposeTwoLayers)
{
    // conv k3 s1 p1 then pool k2 s2 p0.
    ReceptiveField rf;
    rf = rf.compose(WindowGeometry{3, 1, 1});
    rf = rf.compose(WindowGeometry{2, 2, 0});
    EXPECT_EQ(rf.size, 3 + (2 - 1) * 1);
    EXPECT_EQ(rf.stride, 2);
    EXPECT_EQ(rf.pad, 1);
}

TEST(ReceptiveField, Vgg16Conv5_3Geometry)
{
    // The canonical VGG-16 numbers: conv5_3 has a 196x196 receptive
    // field with stride 16.
    ReceptiveField rf;
    int convs_per_stage[5] = {2, 2, 3, 3, 3};
    for (int stage = 0; stage < 5; ++stage) {
        for (int i = 0; i < convs_per_stage[stage]; ++i) {
            rf = rf.compose(WindowGeometry{3, 1, 1});
        }
        if (stage < 4) {
            rf = rf.compose(WindowGeometry{2, 2, 0});
        }
    }
    EXPECT_EQ(rf.size, 196);
    EXPECT_EQ(rf.stride, 16);
}

TEST(Network, ShapesAndTargets)
{
    Network net = build_scaled(fasterm_spec());
    EXPECT_GT(net.num_layers(), 10);
    const i64 late = net.find_layer("relu5");
    ASSERT_GE(late, 0);
    const Shape s = net.shape_at(late);
    EXPECT_GT(s.c, 0);
    EXPECT_GT(s.h, 0);
    const i64 pool1 = net.first_pool_index();
    EXPECT_GT(pool1, 0);
    EXPECT_EQ(net.layer(pool1).kind(), LayerKind::kPool);
}

TEST(Network, PrefixSuffixComposition)
{
    Network net = build_scaled(alexnet_spec());
    Tensor in(net.input_shape());
    Rng rng(2);
    for (i64 i = 0; i < in.size(); ++i) {
        in[i] = rng.uniform_f(0.0f, 1.0f);
    }
    const i64 target = net.find_layer("pool5");
    ASSERT_GE(target, 0);
    Tensor full = net.forward(in);
    Tensor prefix = net.forward_prefix(in, target);
    Tensor composed = net.forward_suffix(prefix, target);
    EXPECT_TRUE(all_close(full, composed, 1e-5));
}

TEST(Network, MacAccountingAdds)
{
    Network net = build_scaled(fasterm_spec());
    const i64 target = net.find_layer("relu5");
    EXPECT_EQ(net.prefix_macs(target) + net.suffix_macs(target),
              net.total_macs());
    EXPECT_GT(net.prefix_macs(target), net.suffix_macs(target));
}

TEST(ModelZoo, AlexNetConvMacsMatchLiterature)
{
    // Grouped AlexNet conv stack is ~0.67 GMAC.
    const auto costs = analyze(alexnet_spec());
    const double gmacs = static_cast<double>(total_conv_macs(costs)) / 1e9;
    EXPECT_NEAR(gmacs, 0.67, 0.08);
}

TEST(ModelZoo, Vgg16ConvMacsMatchLiterature)
{
    // VGG-16 conv stack is ~15.3 GMAC at 224x224.
    const auto costs = analyze(vgg16_spec());
    const double gmacs = static_cast<double>(total_conv_macs(costs)) / 1e9;
    EXPECT_NEAR(gmacs, 15.3, 0.5);
}

TEST(ModelZoo, Faster16PrefixMacsMatchPaperSectionIVA)
{
    // Section IV-A: "For a Faster16 prefix ending at layer conv5_3 on
    // 1000x562 images ... the total is 1.7e11 MACs."
    NetworkSpec spec = faster16_spec();
    const auto costs = analyze_at(spec, Shape{3, 562, 1000});
    i64 prefix = 0;
    for (const LayerCost &c : costs) {
        if (c.kind == LayerKind::kConv) {
            prefix += c.macs;
        }
        if (c.name == "conv5_3") {
            break;
        }
    }
    EXPECT_NEAR(static_cast<double>(prefix), 1.7e11, 0.15e11);
}

TEST(ModelZoo, SpecTargetsExist)
{
    for (const NetworkSpec &spec : paper_network_specs()) {
        bool early = false;
        bool late = false;
        for (const LayerSpec &l : spec.layers) {
            early |= l.name == spec.early_target;
            late |= l.name == spec.late_target;
        }
        EXPECT_TRUE(early) << spec.name;
        EXPECT_TRUE(late) << spec.name;
    }
}

TEST(ModelZoo, DefaultTargetIsSpecLateTarget)
{
    for (const NetworkSpec &spec : paper_network_specs()) {
        Network net = build_scaled(spec);
        EXPECT_EQ(net.default_target_index(),
                  net.find_layer(spec.late_target))
            << spec.name;
        if (spec.task == VisionTask::kDetection) {
            // Faster R-CNN variants have RPN convs and an RoI pool
            // after the feature extractor; the designated target must
            // precede them even though they are mechanically spatial.
            EXPECT_LT(net.default_target_index(),
                      net.last_spatial_index())
                << spec.name;
        } else {
            EXPECT_EQ(net.default_target_index(),
                      net.last_spatial_index())
                << spec.name;
        }
    }
}

TEST(ModelZoo, DefaultTargetFallsBackWhenUnset)
{
    Network net("bare", Shape{1, 16, 16});
    net.add(std::make_unique<ConvLayer>(1, 4, 3, 1, 1));
    net.add(std::make_unique<ReluLayer>());
    EXPECT_EQ(net.default_target_index(), net.last_spatial_index());
    net.set_default_target(0);
    EXPECT_EQ(net.default_target_index(), 0);
    EXPECT_THROW(net.set_default_target(99), ConfigError);
}

TEST(ModelZoo, ScaledBuildRunsForward)
{
    for (const NetworkSpec &spec : paper_network_specs()) {
        ScaledBuildOptions opts;
        Network net = build_scaled(spec, opts);
        Tensor in(net.input_shape());
        Tensor out = net.forward(in);
        EXPECT_GT(out.size(), 0) << spec.name;
    }
}

TEST(ModelZoo, ScaledBuildDeterministic)
{
    Network a = build_scaled(alexnet_spec());
    Network b = build_scaled(alexnet_spec());
    Tensor in(a.input_shape());
    Rng rng(9);
    for (i64 i = 0; i < in.size(); ++i) {
        in[i] = rng.uniform_f(0.0f, 1.0f);
    }
    EXPECT_TRUE(all_close(a.forward(in), b.forward(in), 0.0));
}

TEST(Weights, CalibratedSparsityInTargetRange)
{
    for (const NetworkSpec &spec : paper_network_specs()) {
        Network net = build_scaled(spec);
        const i64 target = net.find_layer(spec.late_target);
        ASSERT_GE(target, 0) << spec.name;
        // Feed a realistic textured input.
        Tensor in(net.input_shape());
        Rng rng(31);
        for (i64 i = 0; i < in.size(); ++i) {
            in[i] = rng.uniform_f(0.0f, 1.0f);
        }
        Tensor act = net.forward_prefix(in, target);
        const double z = zero_fraction(act);
        EXPECT_GT(z, 0.4) << spec.name;
        EXPECT_LT(z, 0.98) << spec.name;
    }
}

TEST(Weights, FirstLayerBankNormalized)
{
    ConvLayer conv(1, 12, 7, 2, 0);
    fill_first_layer_bank(conv);
    // Each filter has near-zero mean (edge-like, not DC-sensitive).
    for (i64 oc = 0; oc < conv.out_channels(); ++oc) {
        double mean = 0.0;
        for (i64 ky = 0; ky < 7; ++ky) {
            for (i64 kx = 0; kx < 7; ++kx) {
                mean += conv.weights()[static_cast<size_t>(
                    conv.weight_index(oc, 0, ky, kx))];
            }
        }
        EXPECT_NEAR(mean, 0.0, 1e-4) << "filter " << oc;
    }
}

/** Property: every spec's analyze() matches the scaled network's
 * structural shape sequence (same spatial downsampling pattern). */
class ZooShapes : public ::testing::TestWithParam<int>
{
};

TEST_P(ZooShapes, AnalyticAndBuiltShapesConsistent)
{
    const NetworkSpec spec =
        paper_network_specs()[static_cast<size_t>(GetParam())];
    // Build at the analytic input to compare exactly; force channel
    // scale 1 so channel counts match too. Use a small analytic input
    // to keep this fast.
    Shape probe{1, 96, 96};
    ScaledBuildOptions opts;
    opts.input = probe;
    Network net = build_scaled(spec, opts);
    const auto costs = analyze_at(spec, Shape{1, 96, 96});
    // Compare spatial dims of conv/pool outputs up to the late
    // target (beyond it the scaled build clamps tiny pool windows).
    i64 li = 0;
    for (const LayerCost &c : costs) {
        if (li >= net.num_layers()) {
            break; // scaled build drops the softmax
        }
        if (c.kind == LayerKind::kConv || c.kind == LayerKind::kPool) {
            const Shape got = net.shape_at(li);
            EXPECT_EQ(got.h, c.out.h) << spec.name << " layer " << c.name;
            EXPECT_EQ(got.w, c.out.w) << spec.name << " layer " << c.name;
        }
        ++li;
        if (c.name == spec.late_target) {
            break;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllNetworks, ZooShapes, ::testing::Values(0, 1, 2));

} // namespace
} // namespace eva2
