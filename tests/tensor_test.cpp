/**
 * @file
 * Unit tests for the tensor library.
 */
#include <gtest/gtest.h>

#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace eva2 {
namespace {

Tensor
random_tensor(Shape s, u64 seed)
{
    Tensor t(s);
    Rng rng(seed);
    for (i64 i = 0; i < t.size(); ++i) {
        t[i] = rng.uniform_f(-1.0f, 1.0f);
    }
    return t;
}

TEST(Tensor, ShapeAndSize)
{
    Tensor t(3, 4, 5);
    EXPECT_EQ(t.channels(), 3);
    EXPECT_EQ(t.height(), 4);
    EXPECT_EQ(t.width(), 5);
    EXPECT_EQ(t.size(), 60);
    EXPECT_EQ(t.shape().str(), "3x4x5");
}

TEST(Tensor, ZeroInitialized)
{
    Tensor t(2, 3, 3);
    for (i64 i = 0; i < t.size(); ++i) {
        EXPECT_EQ(t[i], 0.0f);
    }
}

TEST(Tensor, ElementAccessRowMajor)
{
    Tensor t(2, 2, 2);
    t.at(1, 0, 1) = 5.0f;
    // CHW layout: index = (c*h + y)*w + x = (1*2+0)*2+1 = 5.
    EXPECT_EQ(t[5], 5.0f);
}

TEST(Tensor, PaddedAccessReturnsZeroOutside)
{
    Tensor t(1, 2, 2);
    t.fill(3.0f);
    EXPECT_EQ(t.at_padded(0, -1, 0), 0.0f);
    EXPECT_EQ(t.at_padded(0, 0, 2), 0.0f);
    EXPECT_EQ(t.at_padded(0, 1, 1), 3.0f);
}

TEST(Tensor, ChannelView)
{
    Tensor t(2, 2, 2);
    t.at(1, 1, 1) = 9.0f;
    auto ch = t.channel(1);
    EXPECT_EQ(ch.size(), 4u);
    EXPECT_EQ(ch[3], 9.0f);
}

TEST(TensorOps, TranslateMovesContent)
{
    Tensor t(1, 3, 3);
    t.at(0, 1, 1) = 1.0f;
    Tensor moved = translate(t, 1, 0);
    EXPECT_EQ(moved.at(0, 2, 1), 1.0f);
    EXPECT_EQ(moved.at(0, 1, 1), 0.0f);
}

TEST(TensorOps, TranslateFillsZeros)
{
    Tensor t(1, 2, 2);
    t.fill(1.0f);
    Tensor moved = translate(t, 0, 1);
    EXPECT_EQ(moved.at(0, 0, 0), 0.0f);
    EXPECT_EQ(moved.at(0, 1, 0), 0.0f);
    EXPECT_EQ(moved.at(0, 0, 1), 1.0f);
}

TEST(TensorOps, TranslateByZeroIsIdentity)
{
    Tensor t = random_tensor({3, 5, 5}, 1);
    EXPECT_TRUE(all_close(translate(t, 0, 0), t, 0.0));
}

TEST(TensorOps, TranslateComposes)
{
    Tensor t = random_tensor({2, 8, 8}, 2);
    Tensor a = translate(translate(t, 1, 0), 0, 2);
    Tensor b = translate(t, 1, 2);
    EXPECT_TRUE(all_close(a, b, 0.0));
}

TEST(TensorOps, AddSubInverse)
{
    Tensor a = random_tensor({2, 4, 4}, 3);
    Tensor b = random_tensor({2, 4, 4}, 4);
    EXPECT_TRUE(all_close(sub(add(a, b), b), a, 1e-6));
}

TEST(TensorOps, ScaleLinear)
{
    Tensor a = random_tensor({1, 4, 4}, 5);
    Tensor twice = scale(a, 2.0f);
    for (i64 i = 0; i < a.size(); ++i) {
        EXPECT_FLOAT_EQ(twice[i], 2.0f * a[i]);
    }
}

TEST(TensorOps, ReluClamps)
{
    Tensor a(1, 1, 3);
    a[0] = -1.0f;
    a[1] = 0.0f;
    a[2] = 2.0f;
    Tensor r = relu(a);
    EXPECT_EQ(r[0], 0.0f);
    EXPECT_EQ(r[1], 0.0f);
    EXPECT_EQ(r[2], 2.0f);
}

TEST(TensorOps, MaxAbsDiff)
{
    Tensor a(1, 1, 2);
    Tensor b(1, 1, 2);
    a[0] = 1.0f;
    b[0] = -1.0f;
    EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 2.0);
}

TEST(TensorOps, ZeroFraction)
{
    Tensor a(1, 2, 2);
    a[0] = 1.0f;
    EXPECT_DOUBLE_EQ(zero_fraction(a), 0.75);
    EXPECT_DOUBLE_EQ(zero_fraction(a, 2.0f), 1.0);
}

TEST(TensorOps, SumMatches)
{
    Tensor a(1, 1, 3);
    a[0] = 1.0f;
    a[1] = 2.0f;
    a[2] = 3.0f;
    EXPECT_DOUBLE_EQ(sum(a), 6.0);
}

TEST(TensorOps, BilinearSampleAtGridPoints)
{
    Tensor t = random_tensor({1, 4, 4}, 6);
    for (i64 y = 0; y < 4; ++y) {
        for (i64 x = 0; x < 4; ++x) {
            EXPECT_NEAR(bilinear_sample(t, 0, y, x), t.at(0, y, x), 1e-6);
        }
    }
}

TEST(TensorOps, BilinearSampleMidpoint)
{
    Tensor t(1, 2, 2);
    t.at(0, 0, 0) = 0.0f;
    t.at(0, 0, 1) = 1.0f;
    t.at(0, 1, 0) = 2.0f;
    t.at(0, 1, 1) = 3.0f;
    EXPECT_NEAR(bilinear_sample(t, 0, 0.5, 0.5), 1.5f, 1e-6);
    EXPECT_NEAR(bilinear_sample(t, 0, 0.0, 0.5), 0.5f, 1e-6);
}

TEST(TensorOps, BilinearSampleOutsideIsZeroPadded)
{
    Tensor t(1, 2, 2);
    t.fill(4.0f);
    // Half a cell outside: averages with zero padding.
    EXPECT_NEAR(bilinear_sample(t, 0, -0.5, 0.0), 2.0f, 1e-6);
    EXPECT_NEAR(bilinear_sample(t, 0, -2.0, 0.0), 0.0f, 1e-6);
}

TEST(TensorOps, ShapeMismatchThrows)
{
    Tensor a(1, 2, 2);
    Tensor b(1, 2, 3);
    EXPECT_THROW(add(a, b), ConfigError);
    EXPECT_THROW(max_abs_diff(a, b), ConfigError);
}

/** Property: translation preserves total mass for interior content. */
class TranslateProperty : public ::testing::TestWithParam<std::pair<i64, i64>>
{
};

TEST_P(TranslateProperty, InteriorContentPreserved)
{
    auto [dy, dx] = GetParam();
    Tensor t(1, 16, 16);
    // Content only in the middle so translation never clips it.
    t.at(0, 7, 7) = 2.0f;
    t.at(0, 8, 8) = 3.0f;
    Tensor moved = translate(t, dy, dx);
    EXPECT_NEAR(sum(moved), sum(t), 1e-6);
    EXPECT_EQ(moved.at(0, 7 + dy, 7 + dx), 2.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Offsets, TranslateProperty,
    ::testing::Values(std::pair<i64, i64>{0, 0}, std::pair<i64, i64>{1, 0},
                      std::pair<i64, i64>{0, 1}, std::pair<i64, i64>{-2, 3},
                      std::pair<i64, i64>{4, -4},
                      std::pair<i64, i64>{-5, -5}));

TEST(Tensor, ReshapeToChangesShapeAndKeepsCapacity)
{
    Tensor t(Shape{4, 8, 8});
    const u64 before = Tensor::buffer_allocations();
    // Shrinking and re-growing within the original footprint must
    // not touch the heap: this is what scratch-arena slot reuse
    // rests on.
    t.reshape_to(Shape{2, 3, 5});
    EXPECT_EQ(t.shape(), (Shape{2, 3, 5}));
    EXPECT_EQ(t.size(), 30);
    t.reshape_to(Shape{4, 8, 8});
    EXPECT_EQ(t.size(), 4 * 8 * 8);
    EXPECT_EQ(Tensor::buffer_allocations() - before, 0u);

    // Growing past the original footprint allocates (once).
    t.reshape_to(Shape{8, 8, 8});
    EXPECT_GE(Tensor::buffer_allocations() - before, 1u);
    EXPECT_EQ(t.size(), 8 * 8 * 8);
}

TEST(Tensor, ReshapeToRejectsNegativeDimensions)
{
    Tensor t(Shape{1, 2, 2});
    EXPECT_THROW(t.reshape_to(Shape{-1, 2, 2}), ConfigError);
}

TEST(Tensor, BufferAllocationCounterIsMonotonic)
{
    const u64 before = Tensor::buffer_allocations();
    Tensor a(Shape{2, 2, 2});
    Tensor b = a; // Copies allocate too.
    (void)b;
    EXPECT_GE(Tensor::buffer_allocations() - before, 2u);
}

#ifndef NDEBUG
TEST(Tensor, DebugBoundsCheckCatchesOutOfRangeAccess)
{
    // Active in Debug builds (the Debug half of the CI matrix);
    // compiled out in Release, where the hot loops pay nothing.
    Tensor t(Shape{2, 3, 4});
    EXPECT_THROW(t.at(2, 0, 0), InternalError);
    EXPECT_THROW(t.at(0, 3, 0), InternalError);
    EXPECT_THROW(t.at(0, 0, 4), InternalError);
    EXPECT_THROW(t.at(-1, 0, 0), InternalError);
    const Tensor &ct = t;
    EXPECT_THROW(ct.at(0, -1, 0), InternalError);
    EXPECT_NO_THROW(ct.at(1, 2, 3));
    // at_padded still zero-extends spatially.
    EXPECT_EQ(ct.at_padded(0, -1, 0), 0.0f);
}
#endif

} // namespace
} // namespace eva2
