#include "sparse/rle.h"

#include <cmath>

namespace eva2 {

i64
RleActivation::num_entries() const
{
    i64 n = 0;
    for (const RleChannel &ch : channels) {
        n += static_cast<i64>(ch.entries.size());
    }
    return n;
}

void
RleParams::validate() const
{
    require(max_zero_gap >= 1,
            "RleParams: max_zero_gap must be >= 1 (a zero-width gap "
            "field cannot encode any run; the encoder would loop "
            "forever splitting it)");
    require(zero_threshold >= 0.0f,
            "RleParams: zero_threshold must be >= 0, got " +
                std::to_string(zero_threshold));
}

i64
RleActivation::encoded_bytes() const
{
    // Round the per-entry bit width up to whole bytes per entry.
    const i64 entry_bytes = (params.bits_per_entry() + 7) / 8;
    return num_entries() * entry_bytes;
}

i64
RleActivation::encoded_bits() const
{
    return num_entries() * params.bits_per_entry();
}

i64
RleActivation::dense_bytes() const
{
    return shape.size() * 2; // 16-bit dense baseline
}

double
RleActivation::storage_savings() const
{
    const i64 dense = dense_bytes();
    if (dense == 0) {
        return 0.0;
    }
    return 1.0 - static_cast<double>(encoded_bytes()) /
                     static_cast<double>(dense);
}

RleActivation
rle_encode(const Tensor &activation, const RleParams &params)
{
    params.validate();
    RleActivation out;
    out.shape = activation.shape();
    out.params = params;
    out.channels.resize(static_cast<size_t>(activation.channels()));

    for (i64 c = 0; c < activation.channels(); ++c) {
        RleChannel &ch = out.channels[static_cast<size_t>(c)];
        Span<const float> plane = activation.channel(c);
        ch.dense_length = static_cast<i64>(plane.size());
        i64 gap = 0;
        for (float v : plane) {
            const i16 raw = static_cast<i16>(
                std::fabs(v) <= params.zero_threshold
                    ? 0
                    : Q88::from_double(v).raw());
            if (raw == 0) {
                ++gap;
                continue;
            }
            // Flush the accumulated run: placeholder entries each
            // stand for max_zero_gap zeros (their zero value occupies
            // no decoded slot), then the value with the remainder gap.
            while (gap > params.max_zero_gap) {
                ch.entries.push_back(RleEntry{params.max_zero_gap, 0});
                gap -= params.max_zero_gap;
            }
            ch.entries.push_back(
                RleEntry{static_cast<u16>(gap), raw});
            gap = 0;
        }
        // Trailing zeros need no entry: the decoder pads to
        // dense_length.
    }
    return out;
}

Tensor
rle_decode(const RleActivation &encoded)
{
    Tensor out(encoded.shape);
    const i64 plane = encoded.shape.h * encoded.shape.w;
    for (i64 c = 0; c < encoded.shape.c; ++c) {
        const RleChannel &ch = encoded.channels[static_cast<size_t>(c)];
        invariant(ch.dense_length == plane,
                  "rle_decode: channel length mismatch");
        float *dst = out.data().data() + c * plane;
        i64 pos = 0;
        for (const RleEntry &e : ch.entries) {
            pos += e.zero_gap;
            // Placeholder entries (value 0) carry only their gap; a
            // real value additionally occupies one decoded slot.
            if (e.value_raw != 0) {
                invariant(pos < plane,
                          "rle_decode: entry past plane end");
                dst[pos] = static_cast<float>(
                    Q88::from_raw(e.value_raw).to_double());
                ++pos;
            }
        }
    }
    return out;
}

Tensor
quantize_q88(const Tensor &t)
{
    Tensor out(t.shape());
    for (i64 i = 0; i < t.size(); ++i) {
        out[i] = static_cast<float>(Q88::from_double(t[i]).to_double());
    }
    return out;
}

} // namespace eva2
