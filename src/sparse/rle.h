/**
 * @file
 * Run-length (zero-gap) encoding of CNN activations.
 *
 * EVA2 stores the key frame's target activation on chip; naively that
 * is megabytes, so the paper's design keeps it run-length encoded
 * (Section III-B: "RLE is critical to enabling on-chip activation
 * storage ... sparse storage reduces memory requirements by more than
 * 80%"). The encoding matches the hardware's sparsity decoder lanes:
 * per channel, a stream of (zero_gap, value) pairs where zero_gap
 * counts skipped zeros and value is a 16-bit Q8.8 fixed-point
 * activation. Gaps saturate at the width of the hardware gap field;
 * longer runs emit a placeholder pair with value 0.
 */
#ifndef EVA2_SPARSE_RLE_H
#define EVA2_SPARSE_RLE_H

#include <vector>

#include "tensor/tensor.h"
#include "util/fixed_point.h"

namespace eva2 {

/** One (zero gap, value) pair of the encoded stream. */
struct RleEntry
{
    u16 zero_gap = 0;  ///< Zeros preceding this value.
    i16 value_raw = 0; ///< Q8.8 fixed-point activation value.

    bool
    operator==(const RleEntry &o) const
    {
        return zero_gap == o.zero_gap && value_raw == o.value_raw;
    }

    bool operator!=(const RleEntry &o) const { return !(*this == o); }
};

/** Hardware-facing parameters of the encoding. */
struct RleParams
{
    /**
     * Maximum gap representable; longer runs split into placeholder
     * entries. Must be >= 1: a zero-width gap field could not encode
     * any run at all (the encoder validates and rejects it). The
     * default matches the hardware's 8-bit field.
     */
    u16 max_zero_gap = 255;
    /** Magnitudes at or below this encode as zero. */
    float zero_threshold = 0.0f;

    /**
     * Width of the gap field in bits: the narrowest field that can
     * hold max_zero_gap (8 for the default 255, up to 16 for 65535).
     */
    i64
    gap_bits() const
    {
        i64 bits = 1;
        while ((u32{1} << bits) - 1 < max_zero_gap) {
            ++bits;
        }
        return bits;
    }

    /**
     * Bits per encoded entry: the gap field plus a 16-bit value. The
     * gap width follows max_zero_gap — a wider configured gap costs
     * bits on every entry, which is exactly the trade-off the storage
     * ablation sweeps.
     */
    i64 bits_per_entry() const { return gap_bits() + 16; }

    /**
     * Throw ConfigError on unusable parameters. Called by rle_encode:
     * a max_zero_gap of 0 would loop forever splitting runs that can
     * never shrink, and a negative threshold is always a caller bug.
     */
    void validate() const;
};

/** The run-length encoded form of one channel plane. */
struct RleChannel
{
    std::vector<RleEntry> entries;
    i64 dense_length = 0; ///< Elements in the decoded plane.
};

/** A complete encoded activation. */
struct RleActivation
{
    Shape shape;
    RleParams params;
    std::vector<RleChannel> channels;

    /** Encoded size in bytes (entries x byte-rounded entry width). */
    i64 encoded_bytes() const;

    /**
     * Exact encoded size in bits (entries x bits_per_entry), without
     * the per-entry byte rounding — the hardware buffer accounting
     * the storage ablations report.
     */
    i64 encoded_bits() const;

    /** Dense 16-bit baseline size in bytes. */
    i64 dense_bytes() const;

    /** Fraction of dense storage saved, in [0, 1). */
    double storage_savings() const;

    /** Total number of encoded entries across channels. */
    i64 num_entries() const;
};

/** Encode a float activation tensor (values quantized to Q8.8). */
RleActivation rle_encode(const Tensor &activation,
                         const RleParams &params = {});

/** Decode back to a dense tensor of Q8.8-quantized values. */
Tensor rle_decode(const RleActivation &encoded);

/**
 * Quantize a tensor through Q8.8 without encoding: the identity an
 * encode/decode round trip applies to a dense tensor. Useful for
 * separating quantization error from codec bugs in tests.
 */
Tensor quantize_q88(const Tensor &t);

} // namespace eva2

#endif // EVA2_SPARSE_RLE_H
