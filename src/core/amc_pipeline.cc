#include "core/amc_pipeline.h"

namespace eva2 {

void
AmcOptions::validate(const Network &net) const
{
    require(search_radius > 0,
            "AmcOptions: search_radius must be > 0, got " +
                std::to_string(search_radius));
    require(search_stride > 0,
            "AmcOptions: search_stride must be > 0, got " +
                std::to_string(search_stride));
    require(search_stride <= search_radius,
            "AmcOptions: search_stride (" +
                std::to_string(search_stride) +
                ") must not exceed search_radius (" +
                std::to_string(search_radius) + ")");
    require(storage_prune_rel >= 0.0,
            "AmcOptions: storage_prune_rel must be >= 0, got " +
                std::to_string(storage_prune_rel));
    if (target_choice == TargetChoice::kExplicit) {
        require(explicit_target >= 0 &&
                    explicit_target < net.num_layers(),
                "AmcOptions: explicit_target " +
                    std::to_string(explicit_target) +
                    " out of range for network " + net.name() +
                    " with " + std::to_string(net.num_layers()) +
                    " layers");
        require(explicit_target <= net.last_spatial_index(),
                "AmcOptions: explicit_target " +
                    std::to_string(explicit_target) +
                    " is past the last spatial layer (" +
                    std::to_string(net.last_spatial_index()) +
                    ") of network " + net.name() +
                    "; AMC can only warp spatial activations");
    }
}

i64
AmcPipeline::resolve_target(const Network &net, TargetChoice choice,
                            i64 explicit_target)
{
    switch (choice) {
      case TargetChoice::kLastSpatial:
        return net.default_target_index();
      case TargetChoice::kEarly: {
        const i64 pool = net.first_pool_index();
        require(pool >= 0,
                "network " + net.name() + " has no pooling layer for an "
                "early target");
        return pool;
      }
      case TargetChoice::kExplicit:
        require(explicit_target >= 0 &&
                    explicit_target < net.num_layers(),
                "explicit target out of range");
        return explicit_target;
    }
    throw InternalError("unreachable target choice");
}

AmcPipeline::AmcPipeline(const Network &net,
                         std::unique_ptr<KeyFramePolicy> policy,
                         AmcOptions opts)
    : net_(&net),
      policy_(std::move(policy)),
      opts_(opts),
      target_layer_((opts.validate(net),
                     resolve_target(net, opts.target_choice,
                                    opts.explicit_target)))
{
    if (!policy_) {
        policy_ = std::make_unique<StaticRatePolicy>(1);
    }
    // Compile both layer ranges once: shapes resolved, arena slots
    // assigned, kernels selected. The suffix runs on every frame, so
    // this is where planned execution pays off.
    prefix_plan_ = std::make_unique<ExecutionPlan>(
        net, 0, target_layer_ + 1, net.input_shape(), opts_.plan);
    suffix_plan_ = std::make_unique<ExecutionPlan>(
        net, target_layer_ + 1, net.num_layers(),
        prefix_plan_->out_shape(), opts_.plan);
    target_rf_ = net.receptive_field_at(target_layer_);
    rfbme_config_.rf_size = target_rf_.size;
    rfbme_config_.rf_stride = target_rf_.stride;
    rfbme_config_.rf_pad = target_rf_.pad;
    rfbme_config_.search_radius = opts.search_radius;
    rfbme_config_.search_stride = opts.search_stride;
}

ScratchArena &
AmcPipeline::arena() const
{
    return arena_override_ != nullptr
               ? *arena_override_
               : ScratchArena::for_current_thread();
}

std::vector<PlanRecord>
AmcPipeline::plan_records() const
{
    return {PlanRecord{"prefix", prefix_plan_->describe()},
            PlanRecord{"suffix", suffix_plan_->describe()}};
}

void
AmcPipeline::set_observer(AmcObserver *observer)
{
    observer_ = observer;
    if (observer_ == nullptr) {
        return;
    }
    for (const PlanRecord &record : plan_records()) {
        observer_->on_plan(record);
    }
}

void
AmcPipeline::reset()
{
    has_key_ = false;
    key_pixels_ = Tensor();
    key_activation_ = Tensor();
    key_activation_rle_ = RleActivation();
    frames_since_key_ = 0;
    stats_ = AmcStats();
    policy_->reset();
}

const Tensor &
AmcPipeline::stored_activation() const
{
    require(has_key_, "no key frame has been processed yet");
    return key_activation_;
}

i64
AmcPipeline::stored_activation_bytes() const
{
    require(has_key_, "no key frame has been processed yet");
    return key_activation_rle_.encoded_bytes();
}

AmcFrameResult
AmcPipeline::key_frame_path(const Tensor &frame)
{
    AmcFrameResult result;
    result.is_key = true;
    Tensor target;
    {
        StageScope timer(observer_, AmcStage::kPrefix);
        // Copied out of the arena: the target activation escapes into
        // key-frame storage and the frame result.
        target = prefix_plan_->run(frame, arena());
    }

    // Store pixels and the target activation the way the hardware
    // does: pixels in the key pixel buffer, the activation run-length
    // encoded in the key frame activation buffer.
    key_pixels_ = frame;
    {
        StageScope timer(observer_, AmcStage::kEncode);
        RleParams rle_params;
        if (opts_.storage_prune_rel > 0.0) {
            double acc = 0.0;
            for (i64 i = 0; i < target.size(); ++i) {
                acc += static_cast<double>(target[i]) * target[i];
            }
            const double rms =
                std::sqrt(acc / static_cast<double>(target.size()));
            rle_params.zero_threshold =
                static_cast<float>(opts_.storage_prune_rel * rms);
        }
        key_activation_rle_ = rle_encode(target, rle_params);
        key_activation_ = opts_.quantize_storage
                              ? rle_decode(key_activation_rle_)
                              : target;
    }
    has_key_ = true;
    frames_since_key_ = 0;

    // Key frames are full, precise executions (Section II-A); the
    // quantized RLE copy is only consumed by later predicted frames.
    {
        StageScope timer(observer_, AmcStage::kSuffix);
        result.output = suffix_plan_->run(target, arena());
    }
    result.target_activation = std::move(target);
    ++stats_.frames;
    ++stats_.key_frames;
    return result;
}

AmcFrameResult
AmcPipeline::predicted_frame_path(const RfbmeResult &me)
{
    AmcFrameResult result;
    result.is_key = false;
    result.me_add_ops = me.add_ops;
    result.features.match_error = me.mean_error;
    result.features.motion_magnitude = me.field.total_magnitude();
    result.features.frames_since_key = frames_since_key_;

    Tensor predicted;
    {
        StageScope timer(observer_, AmcStage::kWarp);
        if (opts_.motion_mode == MotionMode::kMemoization) {
            predicted = key_activation_;
        } else {
            const MotionField field =
                fit_field(me.field, key_activation_.height(),
                          key_activation_.width());
            predicted =
                warp_activation(key_activation_, field,
                                target_rf_.stride, opts_.interp);
        }
    }
    {
        StageScope timer(observer_, AmcStage::kSuffix);
        result.output = suffix_plan_->run(predicted, arena());
    }
    result.target_activation = std::move(predicted);
    ++stats_.frames;
    return result;
}

AmcFrameResult
AmcPipeline::process(const Tensor &frame)
{
    require(frame.shape() == net_->input_shape(),
            "frame shape " + frame.shape().str() +
                " does not match network input " +
                net_->input_shape().str());
    if (!has_key_) {
        return key_frame_path(frame);
    }
    ++frames_since_key_;
    RfbmeResult me;
    {
        StageScope timer(observer_, AmcStage::kMotionEstimation);
        me = rfbme(key_pixels_, frame, rfbme_config_);
    }
    FrameFeatures features;
    features.match_error = me.mean_error;
    features.motion_magnitude = me.field.total_magnitude();
    features.frames_since_key = frames_since_key_;
    bool is_key;
    {
        StageScope timer(observer_, AmcStage::kPolicy);
        is_key = policy_->is_key_frame(features);
    }
    if (is_key) {
        AmcFrameResult result = key_frame_path(frame);
        result.features = features;
        result.me_add_ops = me.add_ops;
        return result;
    }
    return predicted_frame_path(me);
}

Tensor
AmcPipeline::run_key(const Tensor &frame)
{
    require(frame.shape() == net_->input_shape(),
            "frame shape does not match network input");
    return key_frame_path(frame).output;
}

AmcFrameResult
AmcPipeline::run_predicted(const Tensor &frame)
{
    require(has_key_, "run_predicted: no stored key frame");
    ++frames_since_key_;
    RfbmeResult me;
    {
        StageScope timer(observer_, AmcStage::kMotionEstimation);
        me = rfbme(key_pixels_, frame, rfbme_config_);
    }
    return predicted_frame_path(me);
}

Tensor
AmcPipeline::predicted_activation(const Tensor &frame)
{
    require(has_key_, "predicted_activation: no stored key frame");
    if (opts_.motion_mode == MotionMode::kMemoization) {
        return key_activation_;
    }
    const RfbmeResult me = rfbme(key_pixels_, frame, rfbme_config_);
    const MotionField field = fit_field(
        me.field, key_activation_.height(), key_activation_.width());
    return warp_activation(key_activation_, field, target_rf_.stride,
                           opts_.interp);
}

} // namespace eva2
