#include "core/amc_pipeline.h"

namespace eva2 {

AmcPipeline::AmcPipeline(const Network &net,
                         std::unique_ptr<KeyFramePolicy> policy,
                         AmcOptions opts)
    : plan_(net, std::move(policy), opts)
{
}

ScratchArena &
AmcPipeline::arena() const
{
    return arena_override_ != nullptr
               ? *arena_override_
               : ScratchArena::for_current_thread();
}

void
AmcPipeline::set_observer(AmcObserver *observer)
{
    observer_ = observer;
    if (observer_ == nullptr) {
        return;
    }
    for (const PlanRecord &record : plan_records()) {
        observer_->on_plan(record);
    }
}

void
AmcPipeline::reset()
{
    plan_.reset();
}

AmcFrameResult
AmcPipeline::materialize(const FrontResult &front)
{
    const Tensor &output = plan_.run_suffix(0, arena(), observer_);
    StageScope timer(observer_, AmcStage::kCommit);
    AmcFrameResult result;
    result.is_key = front.is_key;
    result.features = front.features;
    result.me_add_ops = front.me_add_ops;
    result.output = output;
    result.target_activation = plan_.slot_activation(0);
    return result;
}

AmcFrameResult
AmcPipeline::process(const Tensor &frame)
{
    return materialize(plan_.run_front(frame, 0, arena(), observer_));
}

Tensor
AmcPipeline::run_key(const Tensor &frame)
{
    plan_.run_front_key(frame, 0, arena(), observer_);
    return plan_.run_suffix(0, arena(), observer_);
}

AmcFrameResult
AmcPipeline::run_predicted(const Tensor &frame)
{
    return materialize(
        plan_.run_front_predicted(frame, 0, arena(), observer_));
}

Tensor
AmcPipeline::predicted_activation(const Tensor &frame)
{
    require(plan_.has_key_frame(),
            "predicted_activation: no stored key frame");
    if (plan_.options().motion_mode == MotionMode::kMemoization) {
        return plan_.stored_activation();
    }
    const RfbmeResult me =
        rfbme(plan_.key_pixels(), frame, plan_.rfbme_config());
    const Tensor &key_activation = plan_.stored_activation();
    const MotionField field = fit_field(
        me.field, key_activation.height(), key_activation.width());
    return warp_activation(key_activation, field,
                           plan_.target_rf().stride,
                           plan_.options().interp);
}

} // namespace eva2
