#include "core/keyframe_policy.h"

namespace eva2 {

StaticRatePolicy::StaticRatePolicy(i64 interval) : interval_(interval)
{
    require(interval >= 1, "static policy: interval must be >= 1");
}

bool
StaticRatePolicy::is_key_frame(const FrameFeatures &features)
{
    return features.frames_since_key >= interval_;
}

std::string
StaticRatePolicy::name() const
{
    return "static(" + std::to_string(interval_) + ")";
}

BlockErrorPolicy::BlockErrorPolicy(double threshold, i64 max_gap)
    : threshold_(threshold), max_gap_(max_gap)
{
    require(threshold >= 0.0, "block error policy: negative threshold");
}

bool
BlockErrorPolicy::is_key_frame(const FrameFeatures &features)
{
    if (max_gap_ > 0 && features.frames_since_key >= max_gap_) {
        return true;
    }
    return features.match_error > threshold_;
}

std::string
BlockErrorPolicy::name() const
{
    return "block-error(" + std::to_string(threshold_) + ")";
}

MotionMagnitudePolicy::MotionMagnitudePolicy(double threshold, i64 max_gap)
    : threshold_(threshold), max_gap_(max_gap)
{
    require(threshold >= 0.0, "motion policy: negative threshold");
}

bool
MotionMagnitudePolicy::is_key_frame(const FrameFeatures &features)
{
    if (max_gap_ > 0 && features.frames_since_key >= max_gap_) {
        return true;
    }
    return features.motion_magnitude > threshold_;
}

std::string
MotionMagnitudePolicy::name() const
{
    return "motion-magnitude(" + std::to_string(threshold_) + ")";
}

} // namespace eva2
