/**
 * @file
 * The compiled AMC frame path: a per-stream stage graph.
 *
 * PR 3 compiled the CNN layer ranges into ExecutionPlans; this file
 * extends compiled execution to the *whole* per-frame path the EVA²
 * paper contributes (Section II, Figure 1). A FramePlan is built once
 * per stream from the network and AmcOptions and fixes everything a
 * frame's journey needs ahead of time:
 *
 *   ingest ─► motion estimation ─► motion-field build ─► policy ─┐
 *     │                                                          │
 *     │            ┌──── predicted branch: warp ◄────────────────┤
 *     │            │                                             │
 *     │            │    ┌ key branch: prefix ─► encode ◄─────────┘
 *     ▼            ▼    ▼
 *   (first frame) suffix ExecutionPlan ─► commit
 *
 * with every inter-stage buffer pre-assigned: the suffix input of
 * each in-flight frame lands in a slot of the plan's own slot-ring
 * ScratchArena, motion estimation reuses an RfbmeWorkspace, and the
 * fitted motion field and warped activation are written in place
 * (`*_into` forms), so a steady-state predicted frame performs zero
 * heap allocations from ingest to commit.
 *
 * Execution splits into two halves with one carried dependency:
 *
 *  - run_front(): ingest through warp/encode. Reads and writes the
 *    carried stream state (key pixels, the RLE key activation
 *    buffer, policy state, counters), so front halves must run
 *    serialized in frame order.
 *  - run_suffix(): the CNN suffix on a slot's activation. Pure —
 *    it reads only the slot and the shared read-only network — so
 *    suffixes of consecutive frames may run concurrently with each
 *    other and with the next frames' front halves. This is the
 *    software analogue of EVA²'s motion/warp engines running ahead
 *    of the accelerator, and what runtime/stage_scheduler exploits
 *    to software-pipeline one stream across frames.
 *
 * Bit-exactness: the stage bodies are the same arithmetic the serial
 * AmcPipeline always ran, so any interleaving the scheduler chooses
 * produces per-stream output digests identical to the serial path.
 */
#ifndef EVA2_CORE_FRAME_PLAN_H
#define EVA2_CORE_FRAME_PLAN_H

#include <memory>

#include "cnn/execution_plan.h"
#include "cnn/network.h"
#include "core/instrumentation.h"
#include "core/keyframe_policy.h"
#include "core/warp.h"
#include "flow/rfbme.h"
#include "sparse/rle.h"

namespace eva2 {

/** How the AMC target layer is chosen (Section II-C5, Table II). */
enum class TargetChoice
{
    kLastSpatial, ///< Last layer before any non-spatial layer.
    kEarly,       ///< First pooling layer (Table II's early target).
    kExplicit,    ///< Caller supplies the index.
};

/** Whether predicted frames warp or merely reuse the activation. */
enum class MotionMode
{
    kCompensation, ///< Warp by the estimated motion (detection nets).
    kMemoization,  ///< Reuse unchanged (classification, Section IV-E1).
};

/** Pipeline configuration. */
struct AmcOptions
{
    TargetChoice target_choice = TargetChoice::kLastSpatial;
    i64 explicit_target = -1;
    InterpMode interp = InterpMode::kBilinear;
    MotionMode motion_mode = MotionMode::kCompensation;
    i64 search_radius = 28; ///< RFBME search radius in pixels.
    /**
     * RFBME search step in pixels. 2 keeps the match-error floor (and
     * the warp's vector quantization) well below the adaptive
     * policies' useful threshold range; the hardware's parallel adder
     * trees make the finer search cheap (Section III-A1).
     */
    i64 search_stride = 2;
    /**
     * Store the key activation through the Q8.8 RLE codec, as the
     * hardware does; disable to isolate algorithmic error from
     * quantization in experiments.
     */
    bool quantize_storage = true;
    /**
     * Near-zero pruning for storage, as a fraction of the target
     * activation's RMS: values at or below this magnitude encode as
     * zeros (Section II-C2 — near-zero values "can be safely ignored
     * without a significant impact on output accuracy"). Pruning is
     * what pushes RLE storage savings well past the dense baseline.
     */
    double storage_prune_rel = 0.12;
    /**
     * CNN execution plan compilation options (kernel selection,
     * conv+ReLU fusion). The default — im2col/blocked-GEMM convs
     * with fusion — is bit-identical to the seed direct path.
     */
    PlanOptions plan;

    /**
     * Validate caller-controllable fields; throws ConfigError with a
     * descriptive message instead of letting a bad value reach the
     * search loops (where a zero stride would hang or divide by
     * zero). Called by FramePlan's constructor; `net` enables the
     * explicit-target bounds check.
     */
    void validate(const Network &net) const;
};

/** Running counters over a stream. */
struct AmcStats
{
    i64 frames = 0;
    i64 key_frames = 0;

    i64 predicted_frames() const { return frames - key_frames; }

    double
    key_fraction() const
    {
        return frames == 0 ? 0.0
                           : static_cast<double>(key_frames) /
                                 static_cast<double>(frames);
    }
};

/** What the front half of one frame decided and measured. */
struct FrontResult
{
    bool is_key = false;
    FrameFeatures features;   ///< Motion features seen by the policy.
    i64 me_add_ops = 0;       ///< RFBME arithmetic ops for this frame.
    i64 resident_bytes = 0;   ///< Stream state bytes after this frame.
};

/**
 * The compiled, stateful per-stream stage graph (see file comment).
 *
 * Threading model: front halves are serialized in frame order by the
 * caller (they carry the key-frame state); run_suffix() is const and
 * may run concurrently for different slots, each against its own
 * execution arena. The borrowed Network is read-only throughout.
 */
class FramePlan
{
  public:
    /**
     * Compile the stage graph for one stream.
     *
     * @param net    The network to accelerate (borrowed; must outlive
     *               the plan).
     * @param policy Key-frame policy (owned). Null selects a static
     *               every-frame policy (all key frames).
     * @param opts   Pipeline options, validated here.
     */
    FramePlan(const Network &net, std::unique_ptr<KeyFramePolicy> policy,
              AmcOptions opts = {});

    FramePlan(const FramePlan &) = delete;
    FramePlan &operator=(const FramePlan &) = delete;

    // ---------------------------------------------------------------
    // Stage execution.

    /**
     * Front half of one frame, policy-driven: ingest → motion
     * estimation → policy → key branch (prefix + encode) or
     * predicted branch (motion-field build + warp). Writes the
     * suffix input activation into ring slot `slot`. Touches all
     * carried stream state; calls must be serialized in frame order.
     *
     * @param exec_arena Arena the CNN prefix cycles activations
     *                   through (the executing thread's, typically).
     */
    FrontResult run_front(const Tensor &frame, i64 slot,
                          ScratchArena &exec_arena, AmcObserver *obs);

    /** Front half forced to the key path (controlled experiments). */
    FrontResult run_front_key(const Tensor &frame, i64 slot,
                              ScratchArena &exec_arena,
                              AmcObserver *obs);

    /**
     * Front half forced to the predicted path; requires a stored key
     * frame.
     */
    FrontResult run_front_predicted(const Tensor &frame, i64 slot,
                                    ScratchArena &exec_arena,
                                    AmcObserver *obs);

    /**
     * Back half: the CNN suffix on slot `slot`'s activation. Pure —
     * safe to run concurrently across distinct slots, each call with
     * its own execution arena. Returns a reference into `exec_arena`
     * (or to the slot activation for an empty suffix), valid until
     * that arena is next written.
     */
    const Tensor &run_suffix(i64 slot, ScratchArena &exec_arena,
                             AmcObserver *obs) const;

    /**
     * The suffix input activation the front half wrote for `slot`
     * (the frame's target-layer activation: stored for key frames,
     * predicted for the rest).
     */
    const Tensor &slot_activation(i64 slot) const;

    /**
     * Size the slot ring for `depth` concurrently in-flight frames.
     * The scheduler sets this once before pipelining; serial callers
     * use slot 0 of the default single-slot ring.
     */
    void set_depth(i64 depth);
    i64 depth() const { return depth_; }

    // ---------------------------------------------------------------
    // Carried stream state.

    /** Drop stored state and counters for a new stream. */
    void reset();

    /** True once a key frame is stored (predictions are possible). */
    bool has_key_frame() const { return has_key_; }

    /** Stored key activation (decoded); requires a stored key frame. */
    const Tensor &stored_activation() const;

    /** Stored key-frame pixels; requires a stored key frame. */
    const Tensor &key_pixels() const;

    /** Encoded size of the stored key activation, in bytes. */
    i64 stored_activation_bytes() const;

    const AmcStats &stats() const { return stats_; }

    // ---------------------------------------------------------------
    // Hibernation (the LRU memory tier; see docs/resident_state.md).

    /**
     * Collapse the stream's resident state to the compressed-only
     * form: the RLE key activation (already the canonical store under
     * quantized storage) plus the key pixels re-packed as Q8.8 raw —
     * everything RFBME and a later predicted frame need to resume —
     * and release every dense buffer and per-frame workspace. Only
     * valid under quantize_storage (the dense precise activation of
     * codec=dense cannot be recovered from the RLE form). The caller
     * must guarantee no frames are in flight on this plan.
     */
    void hibernate();

    /**
     * Rebuild the dense working state from the compressed form after
     * hibernate(); the next run_front proceeds as if the session had
     * never been evicted. Key pixels come back Q8.8-quantized, so
     * digests after rehydration are bit-identical whenever the
     * submitted pixels were Q8.8-representable (see docs).
     */
    void hydrate();

    bool hibernated() const { return hibernated_; }

    /**
     * Bytes of stream state currently held: compressed store, dense
     * key buffers, slot ring, and motion-estimation workspaces. The
     * number the Engine's memory budget accounts per session.
     */
    i64 resident_bytes() const;

    // ---------------------------------------------------------------
    // Compiled artifacts.

    /** The compiled plan for layers [0, target]. */
    const ExecutionPlan &prefix_plan() const { return *prefix_plan_; }

    /** The compiled plan for layers (target, end). */
    const ExecutionPlan &suffix_plan() const { return *suffix_plan_; }

    /**
     * The kernel selection of both compiled plans, in {prefix,
     * suffix} order — what on_plan reports and RunReport echoes.
     */
    std::vector<PlanRecord> plan_records() const;

    i64 target_layer() const { return target_layer_; }
    ReceptiveField target_rf() const { return target_rf_; }
    const RfbmeConfig &rfbme_config() const { return rfbme_config_; }
    const AmcOptions &options() const { return opts_; }
    const Network &network() const { return *net_; }

    /** Resolve a target layer index for a network and choice. */
    static i64 resolve_target(const Network &net, TargetChoice choice,
                              i64 explicit_target);

  private:
    /** Stage kIngest: frame admission. */
    void ingest_stage(const Tensor &frame, AmcObserver *obs) const;
    /** Stage kMotionEstimation: RFBME into the reused result. */
    void motion_stage(const Tensor &frame, AmcObserver *obs);
    /** Stages kPrefix + kEncode: the key branch. */
    FrontResult key_stage(const Tensor &frame, i64 slot,
                          ScratchArena &exec_arena, AmcObserver *obs);
    /** Stages kMotionField + kWarp: the predicted branch. */
    FrontResult predict_stage(i64 slot, AmcObserver *obs);

    Tensor &slot_tensor(i64 slot, const Shape &shape);
    void check_slot(i64 slot) const;
    /** Drop the RFBME/motion workspaces and slot-ring buffers. */
    void release_workspaces();

    const Network *net_;
    std::unique_ptr<KeyFramePolicy> policy_;
    AmcOptions opts_;
    i64 target_layer_;
    ReceptiveField target_rf_;
    RfbmeConfig rfbme_config_;
    std::unique_ptr<ExecutionPlan> prefix_plan_;
    std::unique_ptr<ExecutionPlan> suffix_plan_;

    /**
     * Inter-stage buffers: one suffix-input slot per in-flight frame.
     * Owned by the stream (not a worker thread) because the front
     * half that writes a slot and the suffix that reads it may run on
     * different threads.
     */
    ScratchArena slot_ring_;
    i64 depth_ = 1;

    // Carried stream state (front-half only). The RLE encoding is the
    // canonical key-activation store under quantize_storage; the
    // dense tensor is only materialized where a dense consumer exists
    // (codec=dense warping, memoization sharing, the accessor cache).
    bool has_key_ = false;
    Tensor key_pixels_;
    Tensor key_activation_dense_; ///< Precise; codec=dense only.
    RleActivation key_activation_rle_;
    /**
     * Memoization mode: the one decoded copy per key frame that every
     * predicted frame aliases (a refcount bump instead of a dense
     * copy). In-flight suffixes hold their own reference via
     * slot_alias_, so a new key frame can retire this safely.
     */
    std::shared_ptr<const Tensor> key_act_shared_;
    /** Per-slot aliases overriding the slot ring (memoization). */
    std::vector<std::shared_ptr<const Tensor>> slot_alias_;
    /** Lazy rle_decode cache backing stored_activation(). */
    mutable Tensor stored_cache_;
    mutable bool stored_cache_valid_ = false;
    // Hibernated form: Q8.8 raw key pixels (RFBME's reference frame).
    bool hibernated_ = false;
    std::vector<i16> hib_pixels_;
    Shape hib_pixels_shape_;
    i64 frames_since_key_ = 0;
    AmcStats stats_;

    // Reused per-frame workspaces (front-half only).
    RfbmeResult me_;
    RfbmeWorkspace me_ws_;
    MotionField fitted_field_;
};

} // namespace eva2

#endif // EVA2_CORE_FRAME_PLAN_H
