#include "core/instrumentation.h"

namespace eva2 {

namespace {

inline size_t
index_of(AmcStage stage)
{
    return static_cast<size_t>(stage);
}

} // namespace

const char *
amc_stage_name(AmcStage stage)
{
    switch (stage) {
      case AmcStage::kIngest:
        return "ingest";
      case AmcStage::kMotionEstimation:
        return "motion_estimation";
      case AmcStage::kMotionField:
        return "motion_field";
      case AmcStage::kPolicy:
        return "policy";
      case AmcStage::kPrefix:
        return "prefix";
      case AmcStage::kEncode:
        return "encode";
      case AmcStage::kWarp:
        return "warp";
      case AmcStage::kSuffix:
        return "suffix";
      case AmcStage::kCommit:
        return "commit";
    }
    return "unknown";
}

StageTimings::StageTimings(const StageTimings &other)
{
    MutexLock lock(other.mutex_);
    ms_ = other.ms_;
    calls_ = other.calls_;
}

StageTimings &
StageTimings::operator=(const StageTimings &other)
{
    if (this != &other) {
        MutexLock2 lock(mutex_, other.mutex_);
        ms_ = other.ms_;
        calls_ = other.calls_;
    }
    return *this;
}

void
StageTimings::on_stage(AmcStage stage, double ms)
{
    MutexLock lock(mutex_);
    ms_[index_of(stage)] += ms;
    calls_[index_of(stage)] += 1;
}

double
StageTimings::total_ms(AmcStage stage) const
{
    MutexLock lock(mutex_);
    return ms_[index_of(stage)];
}

i64
StageTimings::calls(AmcStage stage) const
{
    MutexLock lock(mutex_);
    return calls_[index_of(stage)];
}

double
StageTimings::total_ms() const
{
    MutexLock lock(mutex_);
    double total = 0.0;
    for (const double v : ms_) {
        total += v;
    }
    return total;
}

void
StageTimings::merge(const StageTimings &other)
{
    if (&other == this) {
        MutexLock lock(mutex_);
        for (size_t i = 0; i < static_cast<size_t>(kNumAmcStages);
             ++i) {
            ms_[i] += ms_[i];
            calls_[i] += calls_[i];
        }
        return;
    }
    MutexLock2 lock(mutex_, other.mutex_);
    for (size_t i = 0; i < static_cast<size_t>(kNumAmcStages); ++i) {
        ms_[i] += other.ms_[i];
        calls_[i] += other.calls_[i];
    }
}

StageTimings
StageTimings::delta_from(const StageTimings &baseline) const
{
    StageTimings delta;
    if (&baseline == this) {
        return delta;
    }
    MutexLock2 lock(mutex_, baseline.mutex_);
    // delta is function-local, so its mutex is uncontended; the lock
    // exists purely to satisfy the analysis on its guarded fields.
    MutexLock delta_lock(delta.mutex_);
    for (size_t i = 0; i < static_cast<size_t>(kNumAmcStages); ++i) {
        delta.ms_[i] = ms_[i] - baseline.ms_[i];
        delta.calls_[i] = calls_[i] - baseline.calls_[i];
    }
    return delta;
}

void
StageTimings::reset()
{
    MutexLock lock(mutex_);
    ms_.fill(0.0);
    calls_.fill(0);
}

} // namespace eva2
