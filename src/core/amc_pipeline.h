/**
 * @file
 * The activation motion compensation pipeline (Section II, Figure 1).
 *
 * The pipeline owns the state EVA2 keeps between frames — the last key
 * frame's pixels and its target-layer activation (run-length encoded,
 * as in the hardware's key frame activation buffer) — and drives the
 * per-frame flow: motion estimation with RFBME, the key-frame policy
 * decision, either full CNN execution (key frames) or activation
 * warping plus suffix execution (predicted frames).
 */
#ifndef EVA2_CORE_AMC_PIPELINE_H
#define EVA2_CORE_AMC_PIPELINE_H

#include <memory>

#include "cnn/execution_plan.h"
#include "cnn/network.h"
#include "core/instrumentation.h"
#include "core/keyframe_policy.h"
#include "core/warp.h"
#include "flow/rfbme.h"
#include "sparse/rle.h"

namespace eva2 {

/** How the AMC target layer is chosen (Section II-C5, Table II). */
enum class TargetChoice
{
    kLastSpatial, ///< Last layer before any non-spatial layer.
    kEarly,       ///< First pooling layer (Table II's early target).
    kExplicit,    ///< Caller supplies the index.
};

/** Whether predicted frames warp or merely reuse the activation. */
enum class MotionMode
{
    kCompensation, ///< Warp by the estimated motion (detection nets).
    kMemoization,  ///< Reuse unchanged (classification, Section IV-E1).
};

/** Pipeline configuration. */
struct AmcOptions
{
    TargetChoice target_choice = TargetChoice::kLastSpatial;
    i64 explicit_target = -1;
    InterpMode interp = InterpMode::kBilinear;
    MotionMode motion_mode = MotionMode::kCompensation;
    i64 search_radius = 28; ///< RFBME search radius in pixels.
    /**
     * RFBME search step in pixels. 2 keeps the match-error floor (and
     * the warp's vector quantization) well below the adaptive
     * policies' useful threshold range; the hardware's parallel adder
     * trees make the finer search cheap (Section III-A1).
     */
    i64 search_stride = 2;
    /**
     * Store the key activation through the Q8.8 RLE codec, as the
     * hardware does; disable to isolate algorithmic error from
     * quantization in experiments.
     */
    bool quantize_storage = true;
    /**
     * Near-zero pruning for storage, as a fraction of the target
     * activation's RMS: values at or below this magnitude encode as
     * zeros (Section II-C2 — near-zero values "can be safely ignored
     * without a significant impact on output accuracy"). Pruning is
     * what pushes RLE storage savings well past the dense baseline.
     */
    double storage_prune_rel = 0.12;
    /**
     * CNN execution plan compilation options (kernel selection,
     * conv+ReLU fusion). The default — im2col/blocked-GEMM convs
     * with fusion — is bit-identical to the seed direct path.
     */
    PlanOptions plan;

    /**
     * Validate caller-controllable fields; throws ConfigError with a
     * descriptive message instead of letting a bad value reach the
     * search loops (where a zero stride would hang or divide by
     * zero). Called by AmcPipeline's constructor; `net` enables the
     * explicit-target bounds check.
     */
    void validate(const Network &net) const;
};

/** Outcome of processing one frame. */
struct AmcFrameResult
{
    bool is_key = false;
    Tensor output;            ///< Final network output for the frame.
    Tensor target_activation; ///< Target-layer activation (stored or
                              ///< predicted), for activation-space
                              ///< read-outs such as detection.
    FrameFeatures features;   ///< Motion features seen by the policy.
    i64 me_add_ops = 0;       ///< RFBME arithmetic ops for this frame.
};

/** Running counters over a stream. */
struct AmcStats
{
    i64 frames = 0;
    i64 key_frames = 0;

    i64 predicted_frames() const { return frames - key_frames; }

    double
    key_fraction() const
    {
        return frames == 0 ? 0.0
                           : static_cast<double>(key_frames) /
                                 static_cast<double>(frames);
    }
};

/**
 * Stateful per-stream AMC executor over one network.
 *
 * Threading model: a pipeline is single-threaded — all mutable AMC
 * state (key pixels, the RLE activation buffer, policy state,
 * counters) lives here and is touched without synchronization. The
 * borrowed Network is only ever read, so any number of pipelines may
 * share one network from different threads; that is how the
 * runtime's StreamExecutor scales across streams.
 */
class AmcPipeline
{
  public:
    /**
     * @param net    The network to accelerate (borrowed; must outlive
     *               the pipeline).
     * @param policy Key-frame policy (owned). Null selects a
     *               static every-frame policy (all key frames).
     * @param opts   Pipeline options.
     */
    AmcPipeline(const Network &net, std::unique_ptr<KeyFramePolicy> policy,
                AmcOptions opts = {});

    /** Process the next frame of the stream (policy-driven). */
    AmcFrameResult process(const Tensor &frame);

    /** Force-run a key frame (controlled experiments). */
    Tensor run_key(const Tensor &frame);

    /** Force-run a predicted frame; requires a stored key frame. */
    AmcFrameResult run_predicted(const Tensor &frame);

    /**
     * Produce only the warped target activation for a frame (no
     * suffix execution); requires a stored key frame.
     */
    Tensor predicted_activation(const Tensor &frame);

    /** Drop stored state and counters for a new stream. */
    void reset();

    /**
     * Install a per-stage instrumentation sink (borrowed; may be
     * null to disable). The observer is invoked on the thread that
     * runs the pipeline — one observer per pipeline needs no locks.
     * A freshly installed observer immediately receives on_plan()
     * for the compiled prefix and suffix plans.
     */
    void set_observer(AmcObserver *observer);
    AmcObserver *observer() const { return observer_; }

    /** The compiled plan for layers [0, target]. */
    const ExecutionPlan &prefix_plan() const { return *prefix_plan_; }

    /** The compiled plan for layers (target, end). */
    const ExecutionPlan &suffix_plan() const { return *suffix_plan_; }

    /**
     * The kernel selection of both compiled plans, in {prefix,
     * suffix} order — what on_plan reports and RunReport echoes.
     */
    std::vector<PlanRecord> plan_records() const;

    /**
     * Override the scratch arena planned execution cycles
     * activations through (borrowed; null restores the default).
     * The default — each worker thread's own arena — is right for
     * the runtime; tests override to observe allocation behaviour.
     */
    void set_arena(ScratchArena *arena) { arena_override_ = arena; }

    i64 target_layer() const { return target_layer_; }
    ReceptiveField target_rf() const { return target_rf_; }
    const RfbmeConfig &rfbme_config() const { return rfbme_config_; }
    const AmcOptions &options() const { return opts_; }
    const AmcStats &stats() const { return stats_; }
    const Network &network() const { return *net_; }

    /** True once a key frame is stored (predictions are possible). */
    bool has_key_frame() const { return has_key_; }

    /** Stored key activation (decoded); requires a stored key frame. */
    const Tensor &stored_activation() const;

    /** Encoded size of the stored key activation, in bytes. */
    i64 stored_activation_bytes() const;

    /** Resolve a target layer index for a network and choice. */
    static i64 resolve_target(const Network &net, TargetChoice choice,
                              i64 explicit_target);

  private:
    AmcFrameResult key_frame_path(const Tensor &frame);
    AmcFrameResult predicted_frame_path(const RfbmeResult &me);

    /** The arena this execution cycles activations through. */
    ScratchArena &arena() const;

    const Network *net_;
    std::unique_ptr<KeyFramePolicy> policy_;
    AmcOptions opts_;
    i64 target_layer_;
    ReceptiveField target_rf_;
    RfbmeConfig rfbme_config_;
    std::unique_ptr<ExecutionPlan> prefix_plan_;
    std::unique_ptr<ExecutionPlan> suffix_plan_;
    ScratchArena *arena_override_ = nullptr;

    AmcObserver *observer_ = nullptr;
    bool has_key_ = false;
    Tensor key_pixels_;
    Tensor key_activation_;
    RleActivation key_activation_rle_;
    i64 frames_since_key_ = 0;
    AmcStats stats_;
};

} // namespace eva2

#endif // EVA2_CORE_AMC_PIPELINE_H
