/**
 * @file
 * The activation motion compensation pipeline (Section II, Figure 1).
 *
 * AmcPipeline is the per-stream serial executor over the compiled
 * FramePlan stage graph (core/frame_plan.h): each process() call runs
 * one frame's stages front-to-back on the calling thread. All state —
 * the last key frame's pixels and its target-layer activation
 * (run-length encoded, as in the hardware's key frame activation
 * buffer), policy state, counters — lives in the FramePlan; this
 * class adds the classic one-call-per-frame surface, result
 * materialization, and instrumentation plumbing. The runtime's
 * stage scheduler drives the same FramePlan pipelined across frames
 * instead (bit-identical outputs, overlapping stage execution).
 */
#ifndef EVA2_CORE_AMC_PIPELINE_H
#define EVA2_CORE_AMC_PIPELINE_H

#include <memory>

#include "core/frame_plan.h"

namespace eva2 {

/** Outcome of processing one frame. */
struct AmcFrameResult
{
    bool is_key = false;
    Tensor output;            ///< Final network output for the frame.
    Tensor target_activation; ///< Target-layer activation (stored or
                              ///< predicted), for activation-space
                              ///< read-outs such as detection.
    FrameFeatures features;   ///< Motion features seen by the policy.
    i64 me_add_ops = 0;       ///< RFBME arithmetic ops for this frame.
};

/**
 * Stateful per-stream AMC executor over one network.
 *
 * Threading model: a pipeline is single-threaded — all mutable AMC
 * state (key pixels, the RLE activation buffer, policy state,
 * counters) lives in its FramePlan and is touched without
 * synchronization. The borrowed Network is only ever read, so any
 * number of pipelines may share one network from different threads;
 * that is how the runtime's StreamExecutor scales across streams.
 * (The stage scheduler spreads ONE pipeline's frames across threads,
 * but serializes every stateful stage itself.)
 */
class AmcPipeline
{
  public:
    /**
     * @param net    The network to accelerate (borrowed; must outlive
     *               the pipeline).
     * @param policy Key-frame policy (owned). Null selects a
     *               static every-frame policy (all key frames).
     * @param opts   Pipeline options.
     */
    AmcPipeline(const Network &net, std::unique_ptr<KeyFramePolicy> policy,
                AmcOptions opts = {});

    /** Process the next frame of the stream (policy-driven). */
    AmcFrameResult process(const Tensor &frame);

    /** Force-run a key frame (controlled experiments). */
    Tensor run_key(const Tensor &frame);

    /** Force-run a predicted frame; requires a stored key frame. */
    AmcFrameResult run_predicted(const Tensor &frame);

    /**
     * Produce only the warped target activation for a frame (no
     * suffix execution); requires a stored key frame.
     */
    Tensor predicted_activation(const Tensor &frame);

    /** Drop stored state and counters for a new stream. */
    void reset();

    /**
     * Install a per-stage instrumentation sink (borrowed; may be
     * null to disable). Under pipelined execution the observer is
     * invoked from several threads — see AmcObserver::on_stage.
     * A freshly installed observer immediately receives on_plan()
     * for the compiled prefix and suffix plans.
     */
    void set_observer(AmcObserver *observer);
    AmcObserver *observer() const { return observer_; }

    /**
     * The compiled stage graph this pipeline executes. The runtime's
     * stage scheduler drives it directly to software-pipeline frames.
     */
    FramePlan &frame_plan() { return plan_; }
    const FramePlan &frame_plan() const { return plan_; }

    /** The compiled plan for layers [0, target]. */
    const ExecutionPlan &prefix_plan() const
    {
        return plan_.prefix_plan();
    }

    /** The compiled plan for layers (target, end). */
    const ExecutionPlan &suffix_plan() const
    {
        return plan_.suffix_plan();
    }

    /**
     * The kernel selection of both compiled plans, in {prefix,
     * suffix} order — what on_plan reports and RunReport echoes.
     */
    std::vector<PlanRecord> plan_records() const
    {
        return plan_.plan_records();
    }

    /**
     * Override the scratch arena planned execution cycles
     * activations through (borrowed; null restores the default).
     * The default — each worker thread's own arena — is right for
     * the runtime; tests override to observe allocation behaviour.
     */
    void set_arena(ScratchArena *arena) { arena_override_ = arena; }

    i64 target_layer() const { return plan_.target_layer(); }
    ReceptiveField target_rf() const { return plan_.target_rf(); }
    const RfbmeConfig &rfbme_config() const
    {
        return plan_.rfbme_config();
    }
    const AmcOptions &options() const { return plan_.options(); }
    const AmcStats &stats() const { return plan_.stats(); }
    const Network &network() const { return plan_.network(); }

    /** True once a key frame is stored (predictions are possible). */
    bool has_key_frame() const { return plan_.has_key_frame(); }

    /** Stored key activation (decoded); requires a stored key frame. */
    const Tensor &stored_activation() const
    {
        return plan_.stored_activation();
    }

    /** Encoded size of the stored key activation, in bytes. */
    i64 stored_activation_bytes() const
    {
        return plan_.stored_activation_bytes();
    }

    /** Resolve a target layer index for a network and choice. */
    static i64
    resolve_target(const Network &net, TargetChoice choice,
                   i64 explicit_target)
    {
        return FramePlan::resolve_target(net, choice, explicit_target);
    }

  private:
    /** Materialize the slot-0 front+suffix into an AmcFrameResult. */
    AmcFrameResult materialize(const FrontResult &front);

    /** The arena this execution cycles activations through. */
    ScratchArena &arena() const;

    FramePlan plan_;
    ScratchArena *arena_override_ = nullptr;
    AmcObserver *observer_ = nullptr;
};

} // namespace eva2

#endif // EVA2_CORE_AMC_PIPELINE_H
