/**
 * @file
 * Per-stage instrumentation hooks for the AMC pipeline.
 *
 * Serving deployments need to know where frame time goes — motion
 * estimation, the CNN prefix/suffix, warping, codec work — without
 * the pipeline hard-coding any particular metrics sink. The pipeline
 * reports stage durations to an optional AmcObserver; StageTimings is
 * the standard accumulating sink the Engine installs per stream and
 * merges into its RunReport. When no observer is installed the hot
 * path pays only an untaken branch.
 */
#ifndef EVA2_CORE_INSTRUMENTATION_H
#define EVA2_CORE_INSTRUMENTATION_H

#include <array>
#include <chrono>
#include <string>

#include "cnn/execution_plan.h"
#include "util/common.h"
#include "util/mutex.h"

namespace eva2 {

/**
 * The instrumented stages of one AMC frame (Section II, Figure 1),
 * in frame-path order: the FramePlan stage graph runs ingest →
 * motion estimation → motion-field build → policy → (key branch:
 * prefix → encode | predicted branch: warp) → suffix → commit.
 */
enum class AmcStage
{
    kIngest,           ///< Frame admission: shape check, bookkeeping.
    kMotionEstimation, ///< RFBME between stored key pixels and frame.
    kMotionField,      ///< Fit the RFBME field to the activation grid.
    kPolicy,           ///< Key-frame decision on the motion features.
    kPrefix,           ///< CNN prefix up to the target layer (keys).
    kEncode,           ///< RLE encode/decode of the key activation.
    kWarp,             ///< Activation warp (predicted frames).
    kSuffix,           ///< CNN suffix after the target activation.
    kCommit,           ///< In-order result delivery / materialization.
};

constexpr i64 kNumAmcStages = 9;

/** Stable lower-case stage name for reports ("motion_estimation"). */
const char *amc_stage_name(AmcStage stage);

/** Receives one callback per executed pipeline stage. */
class AmcObserver
{
  public:
    virtual ~AmcObserver() = default;

    /**
     * Called after a stage completes. Invoked on whichever thread
     * runs the stage: under serial execution that is the one thread
     * running the pipeline, but under pipelined frame execution
     * (runtime/stage_scheduler) the suffix and commit stages of one
     * stream report from pool workers concurrently with the front
     * stages — observers must be internally synchronized (the
     * standard StageTimings sink is).
     */
    virtual void on_stage(AmcStage stage, double ms) = 0;

    /**
     * Called once per compiled plan when the observer is installed:
     * which kernel each CNN layer will run (and what got fused), so
     * metrics sinks can attribute stage times to kernel choices.
     * Default ignores the report.
     */
    virtual void on_plan(const PlanRecord & /* plan */) {}
};

/**
 * Accumulates total wall time and call counts per stage. Internally
 * synchronized: with pipelined frame execution one stream's stages
 * report concurrently from several threads.
 */
class StageTimings : public AmcObserver
{
  public:
    StageTimings() = default;
    StageTimings(const StageTimings &other);
    StageTimings &operator=(const StageTimings &other);

    void on_stage(AmcStage stage, double ms) override;

    double total_ms(AmcStage stage) const;
    i64 calls(AmcStage stage) const;

    /** Sum of all stage times. */
    double total_ms() const;

    /** Add another accumulator's totals (cross-stream aggregation). */
    void merge(const StageTimings &other);

    /**
     * The accumulation since `baseline` (an earlier snapshot of this
     * accumulator): per-run deltas from a lifetime-cumulative sink.
     */
    StageTimings delta_from(const StageTimings &baseline) const;

    void reset();

  private:
    mutable Mutex mutex_;
    std::array<double, kNumAmcStages> ms_ GUARDED_BY(mutex_){};
    std::array<i64, kNumAmcStages> calls_ GUARDED_BY(mutex_){};
};

/**
 * RAII stage timer: reports the enclosed scope's duration to the
 * observer, or does nothing when the observer is null.
 */
class StageScope
{
  public:
    StageScope(AmcObserver *observer, AmcStage stage)
        : observer_(observer), stage_(stage)
    {
        if (observer_ != nullptr) {
            start_ = std::chrono::steady_clock::now();
        }
    }

    ~StageScope()
    {
        if (observer_ != nullptr) {
            const auto stop = std::chrono::steady_clock::now();
            observer_->on_stage(
                stage_, std::chrono::duration<double, std::milli>(
                            stop - start_)
                            .count());
        }
    }

    StageScope(const StageScope &) = delete;
    StageScope &operator=(const StageScope &) = delete;

  private:
    AmcObserver *observer_;
    AmcStage stage_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace eva2

#endif // EVA2_CORE_INSTRUMENTATION_H
