/**
 * @file
 * Activation warping: the motion-compensation half of AMC.
 *
 * Given the stored key-frame activation of the target layer and a
 * motion field estimated on the input pixels, warping produces the
 * predicted activation (Section II-B): pixel-space vectors are scaled
 * by the cumulative receptive-field stride into activation space, and
 * fractional destinations are resolved by interpolation
 * (Section II-C3 chooses bilinear; nearest-neighbour is the cheap
 * alternative it is compared against).
 */
#ifndef EVA2_CORE_WARP_H
#define EVA2_CORE_WARP_H

#include "flow/motion_field.h"
#include "sparse/rle.h"
#include "tensor/tensor.h"

namespace eva2 {

/** Interpolation mode for fractional activation coordinates. */
enum class InterpMode
{
    kBilinear,
    kNearest,
};

/**
 * Warp a stored activation with a motion field.
 *
 * @param key_activation Target-layer activation saved at the key frame.
 * @param field          Backward source offsets in *pixel* units, on a
 *                       grid matching the activation's spatial dims
 *                       (use fit_field() to reconcile off-by-one grid
 *                       sizes from RFBME).
 * @param rf_stride      Cumulative receptive-field stride of the
 *                       target layer; pixel vectors are divided by
 *                       this to land in activation coordinates.
 * @param mode           Interpolation for fractional coordinates.
 * @return The predicted activation, same shape as key_activation.
 */
Tensor warp_activation(const Tensor &key_activation,
                       const MotionField &field, i64 rf_stride,
                       InterpMode mode = InterpMode::kBilinear);

/**
 * warp_activation into a caller-owned tensor (reshaped in place, e.g.
 * a ScratchArena slot), the allocation-free form the compiled frame
 * path runs every predicted frame. Bit-identical to warp_activation.
 * `out` must not alias `key_activation`.
 */
void warp_activation_into(const Tensor &key_activation,
                          const MotionField &field, i64 rf_stride,
                          InterpMode mode, Tensor &out);

/**
 * Warp straight from the run-length encoded key activation — the
 * compressed-resident form a session keeps between frames — without
 * materializing a dense decoded tensor first (no rle_decode round
 * trip, no per-entry division). Each channel's runs are expanded into
 * a reused thread-local plane buffer and fed to the same apply
 * kernels as warp_activation_into; channels with no encoded entries
 * (fully pruned by the RLE zero threshold) skip the gather entirely
 * and write an exact +0.0 plane. Bit-identical to
 * warp_activation_into(rle_decode(key), ...) by construction.
 *
 * The per-shape choice between the scalar and SIMD apply kernels is
 * made by KernelTuner (key "warp_rle/<mode>/<h>x<w>"); both
 * candidates are in the bit-exact kernel class (docs/simd_kernels.md),
 * so the pick never affects digests.
 */
void warp_activation_rle_into(const RleActivation &key,
                              const MotionField &field, i64 rf_stride,
                              InterpMode mode, Tensor &out);

/** Allocating convenience form of warp_activation_rle_into. */
Tensor warp_activation_rle(const RleActivation &key,
                           const MotionField &field, i64 rf_stride,
                           InterpMode mode = InterpMode::kBilinear);

/**
 * Resize a motion field grid to (h, w) by cropping extra cells and
 * edge-extending missing ones. Receptive-field arithmetic and layer
 * flooring can disagree by a cell at the border; this reconciles them.
 */
MotionField fit_field(const MotionField &field, i64 h, i64 w);

/**
 * fit_field into a caller-owned field (resized in place), the
 * allocation-free form. Unlike fit_field it always copies, even when
 * the grids already agree. `out` must not alias `field`.
 */
void fit_field_into(const MotionField &field, i64 h, i64 w,
                    MotionField &out);

} // namespace eva2

#endif // EVA2_CORE_WARP_H
