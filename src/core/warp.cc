#include "core/warp.h"

#include <cmath>
#include <vector>

#include "simd/simd_kernels.h"
#include "tensor/tensor_ops.h"

namespace eva2 {

namespace {

/**
 * Per-pixel warp coefficients, precomputed once per call and applied
 * to every channel. The source coordinate depends only on (y, x), so
 * hoisting the floor/fraction/bounds work out of the channel loop is
 * a pure win — the original code recomputed it c_count times — and it
 * is what lets the per-channel apply loop vectorize: the SIMD kernels
 * consume these arrays directly. thread_local so concurrent warps
 * (pipelined frames, parallel streams) never share; plain vectors, so
 * the Tensor buffer-allocation counter (the zero-alloc tests' probe)
 * is untouched, and capacity persists across calls.
 */
struct WarpWorkspace
{
    // Bilinear: four corner offsets, their validity masks (0 / -1:
    // *select* masks, not multiplicands — see warp_apply_bilinear_simd
    // on why multiplying by 0.0 would not be bit-exact), and the
    // interpolation weights.
    std::vector<i32> o00, o01, o10, o11;
    std::vector<i32> k00, k01, k10, k11;
    std::vector<double> wx0, wx1, wy0, wy1;
    // Nearest: source offset, -1 when out of bounds.
    std::vector<i32> off;
};

WarpWorkspace &
workspace()
{
    thread_local WarpWorkspace ws;
    return ws;
}

/**
 * Scalar bilinear apply over one plane: the exact expression tree of
 * bilinear_sample (and of warp_apply_bilinear_simd), for builds and
 * machines where the SIMD kernels may not run.
 */
void
apply_bilinear_scalar(const float *plane, const WarpWorkspace &ws,
                      i64 n, float *out)
{
    for (i64 p = 0; p < n; ++p) {
        const double v00 =
            ws.k00[p] ? static_cast<double>(plane[ws.o00[p]]) : 0.0;
        const double v01 =
            ws.k01[p] ? static_cast<double>(plane[ws.o01[p]]) : 0.0;
        const double v10 =
            ws.k10[p] ? static_cast<double>(plane[ws.o10[p]]) : 0.0;
        const double v11 =
            ws.k11[p] ? static_cast<double>(plane[ws.o11[p]]) : 0.0;
        const double top = v00 * ws.wx0[p] + v01 * ws.wx1[p];
        const double bot = v10 * ws.wx0[p] + v11 * ws.wx1[p];
        out[p] =
            static_cast<float>(top * ws.wy0[p] + bot * ws.wy1[p]);
    }
}

} // namespace

void
fit_field_into(const MotionField &field, i64 h, i64 w, MotionField &out)
{
    require(&out != &field, "fit_field_into: out aliases input");
    require(field.height() > 0 && field.width() > 0,
            "fit_field: empty source field");
    out.resize_grid(h, w);
    for (i64 y = 0; y < h; ++y) {
        const i64 sy = std::min(y, field.height() - 1);
        for (i64 x = 0; x < w; ++x) {
            const i64 sx = std::min(x, field.width() - 1);
            out.at(y, x) = field.at(sy, sx);
        }
    }
}

MotionField
fit_field(const MotionField &field, i64 h, i64 w)
{
    if (field.height() == h && field.width() == w) {
        return field;
    }
    MotionField out;
    fit_field_into(field, h, w, out);
    return out;
}

void
warp_activation_into(const Tensor &key_activation,
                     const MotionField &field, i64 rf_stride,
                     InterpMode mode, Tensor &out)
{
    require(&out != &key_activation,
            "warp_activation_into: out aliases the key activation");
    require(field.height() == key_activation.height() &&
                field.width() == key_activation.width(),
            "warp_activation: field grid does not match activation");
    require(rf_stride > 0, "warp_activation: stride must be positive");

    const i64 c_count = key_activation.channels();
    const i64 h = key_activation.height();
    const i64 w = key_activation.width();
    const i64 n = h * w;
    const double inv_stride = 1.0 / static_cast<double>(rf_stride);
    out.reshape_to(key_activation.shape());

    WarpWorkspace &ws = workspace();
    const bool simd = simd_supported();
    if (mode == InterpMode::kNearest) {
        ws.off.resize(static_cast<size_t>(n));
        for (i64 y = 0; y < h; ++y) {
            for (i64 x = 0; x < w; ++x) {
                const Vec2 v = field.at(y, x);
                const i64 ny = static_cast<i64>(std::lround(
                    static_cast<double>(y) + v.dy * inv_stride));
                const i64 nx = static_cast<i64>(std::lround(
                    static_cast<double>(x) + v.dx * inv_stride));
                const bool inb =
                    ny >= 0 && ny < h && nx >= 0 && nx < w;
                ws.off[static_cast<size_t>(y * w + x)] =
                    inb ? static_cast<i32>(ny * w + nx) : -1;
            }
        }
        for (i64 c = 0; c < c_count; ++c) {
            const float *plane = key_activation.channel(c).data();
            float *dst = out.data().data() + c * n;
            if (simd) {
                warp_apply_nearest_simd(plane, ws.off.data(), n, dst);
            } else {
                for (i64 p = 0; p < n; ++p) {
                    dst[p] =
                        ws.off[static_cast<size_t>(p)] >= 0
                            ? plane[ws.off[static_cast<size_t>(p)]]
                            : 0.0f;
                }
            }
        }
        return;
    }

    const auto grow = [n](auto &v) {
        v.resize(static_cast<size_t>(n));
    };
    grow(ws.o00), grow(ws.o01), grow(ws.o10), grow(ws.o11);
    grow(ws.k00), grow(ws.k01), grow(ws.k10), grow(ws.k11);
    grow(ws.wx0), grow(ws.wx1), grow(ws.wy0), grow(ws.wy1);
    for (i64 y = 0; y < h; ++y) {
        for (i64 x = 0; x < w; ++x) {
            const Vec2 v = field.at(y, x);
            const double sy =
                static_cast<double>(y) + v.dy * inv_stride;
            const double sx =
                static_cast<double>(x) + v.dx * inv_stride;
            const i64 y0 = static_cast<i64>(std::floor(sy));
            const i64 x0 = static_cast<i64>(std::floor(sx));
            const double fy = sy - static_cast<double>(y0);
            const double fx = sx - static_cast<double>(x0);
            const size_t p = static_cast<size_t>(y * w + x);
            ws.wx0[p] = 1.0 - fx;
            ws.wx1[p] = fx;
            ws.wy0[p] = 1.0 - fy;
            ws.wy1[p] = fy;
            const auto corner = [&](i64 cy, i64 cx, std::vector<i32> &o,
                                    std::vector<i32> &k) {
                const bool inb =
                    cy >= 0 && cy < h && cx >= 0 && cx < w;
                o[p] = inb ? static_cast<i32>(cy * w + cx) : 0;
                k[p] = inb ? -1 : 0;
            };
            corner(y0, x0, ws.o00, ws.k00);
            corner(y0, x0 + 1, ws.o01, ws.k01);
            corner(y0 + 1, x0, ws.o10, ws.k10);
            corner(y0 + 1, x0 + 1, ws.o11, ws.k11);
        }
    }
    for (i64 c = 0; c < c_count; ++c) {
        const float *plane = key_activation.channel(c).data();
        float *dst = out.data().data() + c * n;
        if (simd) {
            warp_apply_bilinear_simd(
                plane, ws.o00.data(), ws.o01.data(), ws.o10.data(),
                ws.o11.data(), ws.k00.data(), ws.k01.data(),
                ws.k10.data(), ws.k11.data(), ws.wx0.data(),
                ws.wx1.data(), ws.wy0.data(), ws.wy1.data(), n, dst);
        } else {
            apply_bilinear_scalar(plane, ws, n, dst);
        }
    }
}

Tensor
warp_activation(const Tensor &key_activation, const MotionField &field,
                i64 rf_stride, InterpMode mode)
{
    Tensor out;
    warp_activation_into(key_activation, field, rf_stride, mode, out);
    return out;
}

} // namespace eva2
