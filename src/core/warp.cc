#include "core/warp.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace eva2 {

void
fit_field_into(const MotionField &field, i64 h, i64 w, MotionField &out)
{
    require(&out != &field, "fit_field_into: out aliases input");
    require(field.height() > 0 && field.width() > 0,
            "fit_field: empty source field");
    out.resize_grid(h, w);
    for (i64 y = 0; y < h; ++y) {
        const i64 sy = std::min(y, field.height() - 1);
        for (i64 x = 0; x < w; ++x) {
            const i64 sx = std::min(x, field.width() - 1);
            out.at(y, x) = field.at(sy, sx);
        }
    }
}

MotionField
fit_field(const MotionField &field, i64 h, i64 w)
{
    if (field.height() == h && field.width() == w) {
        return field;
    }
    MotionField out;
    fit_field_into(field, h, w, out);
    return out;
}

void
warp_activation_into(const Tensor &key_activation,
                     const MotionField &field, i64 rf_stride,
                     InterpMode mode, Tensor &out)
{
    require(&out != &key_activation,
            "warp_activation_into: out aliases the key activation");
    require(field.height() == key_activation.height() &&
                field.width() == key_activation.width(),
            "warp_activation: field grid does not match activation");
    require(rf_stride > 0, "warp_activation: stride must be positive");

    const i64 c_count = key_activation.channels();
    const i64 h = key_activation.height();
    const i64 w = key_activation.width();
    const double inv_stride = 1.0 / static_cast<double>(rf_stride);
    out.reshape_to(key_activation.shape());

    for (i64 y = 0; y < h; ++y) {
        for (i64 x = 0; x < w; ++x) {
            const Vec2 v = field.at(y, x);
            const double sy = static_cast<double>(y) + v.dy * inv_stride;
            const double sx = static_cast<double>(x) + v.dx * inv_stride;
            if (mode == InterpMode::kNearest) {
                const i64 ny = static_cast<i64>(std::lround(sy));
                const i64 nx = static_cast<i64>(std::lround(sx));
                for (i64 c = 0; c < c_count; ++c) {
                    out.at(c, y, x) = key_activation.at_padded(c, ny, nx);
                }
            } else {
                for (i64 c = 0; c < c_count; ++c) {
                    out.at(c, y, x) =
                        bilinear_sample(key_activation, c, sy, sx);
                }
            }
        }
    }
}

Tensor
warp_activation(const Tensor &key_activation, const MotionField &field,
                i64 rf_stride, InterpMode mode)
{
    Tensor out;
    warp_activation_into(key_activation, field, rf_stride, mode, out);
    return out;
}

} // namespace eva2
