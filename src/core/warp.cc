#include "core/warp.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "cnn/kernel_tuner.h"
#include "simd/simd_kernels.h"
#include "tensor/tensor_ops.h"
#include "util/fixed_point.h"

namespace eva2 {

namespace {

/**
 * Per-pixel warp coefficients, precomputed once per call and applied
 * to every channel. The source coordinate depends only on (y, x), so
 * hoisting the floor/fraction/bounds work out of the channel loop is
 * a pure win — the original code recomputed it c_count times — and it
 * is what lets the per-channel apply loop vectorize: the SIMD kernels
 * consume these arrays directly. thread_local so concurrent warps
 * (pipelined frames, parallel streams) never share; plain vectors, so
 * the Tensor buffer-allocation counter (the zero-alloc tests' probe)
 * is untouched, and capacity persists across calls.
 */
struct WarpWorkspace
{
    // Bilinear: four corner offsets, their validity masks (0 / -1:
    // *select* masks, not multiplicands — see warp_apply_bilinear_simd
    // on why multiplying by 0.0 would not be bit-exact), and the
    // interpolation weights.
    std::vector<i32> o00, o01, o10, o11;
    std::vector<i32> k00, k01, k10, k11;
    std::vector<double> wx0, wx1, wy0, wy1;
    // Nearest: source offset, -1 when out of bounds.
    std::vector<i32> off;
    // RLE expansion buffer: one channel's decoded plane at a time,
    // reused across channels, frames, and sessions on this thread.
    std::vector<float> plane;
};

WarpWorkspace &
workspace()
{
    thread_local WarpWorkspace ws;
    return ws;
}

/**
 * Scalar bilinear apply over one plane: the exact expression tree of
 * bilinear_sample (and of warp_apply_bilinear_simd), for builds and
 * machines where the SIMD kernels may not run.
 */
void
apply_bilinear_scalar(const float *plane, const WarpWorkspace &ws,
                      i64 n, float *out)
{
    for (i64 p = 0; p < n; ++p) {
        const double v00 =
            ws.k00[p] ? static_cast<double>(plane[ws.o00[p]]) : 0.0;
        const double v01 =
            ws.k01[p] ? static_cast<double>(plane[ws.o01[p]]) : 0.0;
        const double v10 =
            ws.k10[p] ? static_cast<double>(plane[ws.o10[p]]) : 0.0;
        const double v11 =
            ws.k11[p] ? static_cast<double>(plane[ws.o11[p]]) : 0.0;
        const double top = v00 * ws.wx0[p] + v01 * ws.wx1[p];
        const double bot = v10 * ws.wx0[p] + v11 * ws.wx1[p];
        out[p] =
            static_cast<float>(top * ws.wy0[p] + bot * ws.wy1[p]);
    }
}

void
apply_nearest_scalar(const float *plane, const WarpWorkspace &ws,
                     i64 n, float *out)
{
    for (i64 p = 0; p < n; ++p) {
        out[p] = ws.off[static_cast<size_t>(p)] >= 0
                     ? plane[ws.off[static_cast<size_t>(p)]]
                     : 0.0f;
    }
}

void
apply_bilinear(const float *plane, const WarpWorkspace &ws, i64 n,
               float *out, bool simd)
{
    if (simd) {
        warp_apply_bilinear_simd(
            plane, ws.o00.data(), ws.o01.data(), ws.o10.data(),
            ws.o11.data(), ws.k00.data(), ws.k01.data(), ws.k10.data(),
            ws.k11.data(), ws.wx0.data(), ws.wx1.data(), ws.wy0.data(),
            ws.wy1.data(), n, out);
    } else {
        apply_bilinear_scalar(plane, ws, n, out);
    }
}

void
apply_nearest(const float *plane, const WarpWorkspace &ws, i64 n,
              float *out, bool simd)
{
    if (simd) {
        warp_apply_nearest_simd(plane, ws.off.data(), n, out);
    } else {
        apply_nearest_scalar(plane, ws, n, out);
    }
}

/** Fill ws.off for an (h, w) grid; hoisted out of the channel loop. */
void
build_nearest_coeffs(const MotionField &field, i64 h, i64 w,
                     double inv_stride, WarpWorkspace &ws)
{
    const i64 n = h * w;
    ws.off.resize(static_cast<size_t>(n));
    for (i64 y = 0; y < h; ++y) {
        for (i64 x = 0; x < w; ++x) {
            const Vec2 v = field.at(y, x);
            const i64 ny = static_cast<i64>(std::lround(
                static_cast<double>(y) + v.dy * inv_stride));
            const i64 nx = static_cast<i64>(std::lround(
                static_cast<double>(x) + v.dx * inv_stride));
            const bool inb = ny >= 0 && ny < h && nx >= 0 && nx < w;
            ws.off[static_cast<size_t>(y * w + x)] =
                inb ? static_cast<i32>(ny * w + nx) : -1;
        }
    }
}

/** Fill the bilinear corner/weight arrays for an (h, w) grid. */
void
build_bilinear_coeffs(const MotionField &field, i64 h, i64 w,
                      double inv_stride, WarpWorkspace &ws)
{
    const i64 n = h * w;
    const auto grow = [n](auto &v) {
        v.resize(static_cast<size_t>(n));
    };
    grow(ws.o00), grow(ws.o01), grow(ws.o10), grow(ws.o11);
    grow(ws.k00), grow(ws.k01), grow(ws.k10), grow(ws.k11);
    grow(ws.wx0), grow(ws.wx1), grow(ws.wy0), grow(ws.wy1);
    for (i64 y = 0; y < h; ++y) {
        for (i64 x = 0; x < w; ++x) {
            const Vec2 v = field.at(y, x);
            const double sy =
                static_cast<double>(y) + v.dy * inv_stride;
            const double sx =
                static_cast<double>(x) + v.dx * inv_stride;
            const i64 y0 = static_cast<i64>(std::floor(sy));
            const i64 x0 = static_cast<i64>(std::floor(sx));
            const double fy = sy - static_cast<double>(y0);
            const double fx = sx - static_cast<double>(x0);
            const size_t p = static_cast<size_t>(y * w + x);
            ws.wx0[p] = 1.0 - fx;
            ws.wx1[p] = fx;
            ws.wy0[p] = 1.0 - fy;
            ws.wy1[p] = fy;
            const auto corner = [&](i64 cy, i64 cx, std::vector<i32> &o,
                                    std::vector<i32> &k) {
                const bool inb =
                    cy >= 0 && cy < h && cx >= 0 && cx < w;
                o[p] = inb ? static_cast<i32>(cy * w + cx) : 0;
                k[p] = inb ? -1 : 0;
            };
            corner(y0, x0, ws.o00, ws.k00);
            corner(y0, x0 + 1, ws.o01, ws.k01);
            corner(y0 + 1, x0, ws.o10, ws.k10);
            corner(y0 + 1, x0 + 1, ws.o11, ws.k11);
        }
    }
}

/**
 * Per-shape scalar-vs-SIMD contest for the RLE-direct apply, run once
 * per (mode, h, w) per process via KernelTuner and memoized per
 * thread so steady-state warps never touch the tuner's global lock.
 * Both candidates are bit-exact (same expression tree), so the pick
 * only moves time, never values. Uses whatever is resident in the
 * thread's coefficient arrays and expansion plane — real geometry,
 * representative data.
 */
bool
rle_apply_use_simd(InterpMode mode, i64 h, i64 w,
                   const WarpWorkspace &ws)
{
    if (!simd_supported()) {
        return false;
    }
    const std::string key =
        std::string("warp_rle/") +
        (mode == InterpMode::kBilinear ? "bilinear" : "nearest") + "/" +
        std::to_string(h) + "x" + std::to_string(w);
    thread_local std::map<std::string, bool> memo;
    const auto it = memo.find(key);
    if (it != memo.end()) {
        return it->second;
    }
    const i64 n = h * w;
    thread_local std::vector<float> tune_out;
    tune_out.resize(static_cast<size_t>(n));
    std::vector<TuneCandidate> candidates;
    if (mode == InterpMode::kBilinear) {
        candidates.push_back(TuneCandidate{
            "scalar", 0, [&ws, n] {
                apply_bilinear(ws.plane.data(), ws, n, tune_out.data(),
                               false);
            }});
        candidates.push_back(TuneCandidate{
            simd_isa_name(), 1, [&ws, n] {
                apply_bilinear(ws.plane.data(), ws, n, tune_out.data(),
                               true);
            }});
    } else {
        candidates.push_back(TuneCandidate{
            "scalar", 0, [&ws, n] {
                apply_nearest(ws.plane.data(), ws, n, tune_out.data(),
                              false);
            }});
        candidates.push_back(TuneCandidate{
            simd_isa_name(), 1, [&ws, n] {
                apply_nearest(ws.plane.data(), ws, n, tune_out.data(),
                              true);
            }});
    }
    const bool simd =
        KernelTuner::instance().pick(key, candidates, 2000).id == 1;
    memo.emplace(key, simd);
    return simd;
}

} // namespace

void
fit_field_into(const MotionField &field, i64 h, i64 w, MotionField &out)
{
    require(&out != &field, "fit_field_into: out aliases input");
    require(field.height() > 0 && field.width() > 0,
            "fit_field: empty source field");
    out.resize_grid(h, w);
    for (i64 y = 0; y < h; ++y) {
        const i64 sy = std::min(y, field.height() - 1);
        for (i64 x = 0; x < w; ++x) {
            const i64 sx = std::min(x, field.width() - 1);
            out.at(y, x) = field.at(sy, sx);
        }
    }
}

MotionField
fit_field(const MotionField &field, i64 h, i64 w)
{
    if (field.height() == h && field.width() == w) {
        return field;
    }
    MotionField out;
    fit_field_into(field, h, w, out);
    return out;
}

void
warp_activation_into(const Tensor &key_activation,
                     const MotionField &field, i64 rf_stride,
                     InterpMode mode, Tensor &out)
{
    require(&out != &key_activation,
            "warp_activation_into: out aliases the key activation");
    require(field.height() == key_activation.height() &&
                field.width() == key_activation.width(),
            "warp_activation: field grid does not match activation");
    require(rf_stride > 0, "warp_activation: stride must be positive");

    const i64 c_count = key_activation.channels();
    const i64 h = key_activation.height();
    const i64 w = key_activation.width();
    const i64 n = h * w;
    const double inv_stride = 1.0 / static_cast<double>(rf_stride);
    out.reshape_to(key_activation.shape());

    WarpWorkspace &ws = workspace();
    const bool simd = simd_supported();
    if (mode == InterpMode::kNearest) {
        build_nearest_coeffs(field, h, w, inv_stride, ws);
        for (i64 c = 0; c < c_count; ++c) {
            apply_nearest(key_activation.channel(c).data(), ws, n,
                          out.data().data() + c * n, simd);
        }
        return;
    }
    build_bilinear_coeffs(field, h, w, inv_stride, ws);
    for (i64 c = 0; c < c_count; ++c) {
        apply_bilinear(key_activation.channel(c).data(), ws, n,
                       out.data().data() + c * n, simd);
    }
}

void
warp_activation_rle_into(const RleActivation &key,
                         const MotionField &field, i64 rf_stride,
                         InterpMode mode, Tensor &out)
{
    const i64 c_count = key.shape.c;
    const i64 h = key.shape.h;
    const i64 w = key.shape.w;
    const i64 n = h * w;
    require(field.height() == h && field.width() == w,
            "warp_activation_rle: field grid does not match encoded "
            "shape");
    require(rf_stride > 0,
            "warp_activation_rle: stride must be positive");
    require(static_cast<i64>(key.channels.size()) == c_count,
            "warp_activation_rle: channel count mismatch");
    const double inv_stride = 1.0 / static_cast<double>(rf_stride);
    out.reshape_to(key.shape);

    WarpWorkspace &ws = workspace();
    if (mode == InterpMode::kNearest) {
        build_nearest_coeffs(field, h, w, inv_stride, ws);
    } else {
        build_bilinear_coeffs(field, h, w, inv_stride, ws);
    }
    ws.plane.resize(static_cast<size_t>(n));
    const bool simd = rle_apply_use_simd(mode, h, w, ws);
    for (i64 c = 0; c < c_count; ++c) {
        const RleChannel &ch = key.channels[static_cast<size_t>(c)];
        invariant(ch.dense_length == n,
                  "warp_activation_rle: channel length mismatch");
        float *dst = out.data().data() + c * n;
        if (ch.entries.empty()) {
            // Fully pruned channel: every source tap is 0.0, and the
            // interpolation weights are non-negative, so the full
            // expression tree produces exactly +0.0 at every output
            // pixel — a fill is bit-exact and skips the gather.
            std::fill(dst, dst + n, 0.0f);
            continue;
        }
        // Expand the runs into the reused plane buffer with a linear
        // cursor — the same values rle_decode writes, minus its dense
        // tensor allocation (and its per-iteration page-fault churn)
        // and per-entry divmod. The plane is a few hundred bytes, so
        // the refill is a single hot-cache memset.
        std::fill(ws.plane.begin(), ws.plane.end(), 0.0f);
        i64 pos = 0;
        for (const RleEntry &e : ch.entries) {
            pos += e.zero_gap;
            if (e.value_raw != 0) {
                invariant(pos < n,
                          "warp_activation_rle: entry past plane end");
                ws.plane[static_cast<size_t>(pos)] = static_cast<float>(
                    Q88::from_raw(e.value_raw).to_double());
                ++pos;
            }
        }
        if (mode == InterpMode::kNearest) {
            apply_nearest(ws.plane.data(), ws, n, dst, simd);
        } else {
            apply_bilinear(ws.plane.data(), ws, n, dst, simd);
        }
    }
}

Tensor
warp_activation_rle(const RleActivation &key, const MotionField &field,
                    i64 rf_stride, InterpMode mode)
{
    Tensor out;
    warp_activation_rle_into(key, field, rf_stride, mode, out);
    return out;
}

Tensor
warp_activation(const Tensor &key_activation, const MotionField &field,
                i64 rf_stride, InterpMode mode)
{
    Tensor out;
    warp_activation_into(key_activation, field, rf_stride, mode, out);
    return out;
}

} // namespace eva2
