#include "core/frame_plan.h"

#include <algorithm>
#include <cmath>

#include "cnn/kernel_tuner.h"
#include "tensor/tensor_ops.h"

namespace eva2 {

void
AmcOptions::validate(const Network &net) const
{
    require(search_radius > 0,
            "AmcOptions: search_radius must be > 0, got " +
                std::to_string(search_radius));
    require(search_stride > 0,
            "AmcOptions: search_stride must be > 0, got " +
                std::to_string(search_stride));
    require(search_stride <= search_radius,
            "AmcOptions: search_stride (" +
                std::to_string(search_stride) +
                ") must not exceed search_radius (" +
                std::to_string(search_radius) + ")");
    require(storage_prune_rel >= 0.0,
            "AmcOptions: storage_prune_rel must be >= 0, got " +
                std::to_string(storage_prune_rel));
    if (target_choice == TargetChoice::kExplicit) {
        require(explicit_target >= 0 &&
                    explicit_target < net.num_layers(),
                "AmcOptions: explicit_target " +
                    std::to_string(explicit_target) +
                    " out of range for network " + net.name() +
                    " with " + std::to_string(net.num_layers()) +
                    " layers");
        require(explicit_target <= net.last_spatial_index(),
                "AmcOptions: explicit_target " +
                    std::to_string(explicit_target) +
                    " is past the last spatial layer (" +
                    std::to_string(net.last_spatial_index()) +
                    ") of network " + net.name() +
                    "; AMC can only warp spatial activations");
    }
}

i64
FramePlan::resolve_target(const Network &net, TargetChoice choice,
                          i64 explicit_target)
{
    switch (choice) {
      case TargetChoice::kLastSpatial:
        return net.default_target_index();
      case TargetChoice::kEarly: {
        const i64 pool = net.first_pool_index();
        require(pool >= 0,
                "network " + net.name() + " has no pooling layer for an "
                "early target");
        return pool;
      }
      case TargetChoice::kExplicit:
        require(explicit_target >= 0 &&
                    explicit_target < net.num_layers(),
                "explicit target out of range");
        return explicit_target;
    }
    throw InternalError("unreachable target choice");
}

FramePlan::FramePlan(const Network &net,
                     std::unique_ptr<KeyFramePolicy> policy,
                     AmcOptions opts)
    : net_(&net),
      policy_(std::move(policy)),
      opts_(opts),
      target_layer_((opts.validate(net),
                     resolve_target(net, opts.target_choice,
                                    opts.explicit_target)))
{
    if (!policy_) {
        policy_ = std::make_unique<StaticRatePolicy>(1);
    }
    // Compile both layer ranges once: shapes resolved, arena slots
    // assigned, kernels selected. The suffix runs on every frame, so
    // this is where planned execution pays off.
    prefix_plan_ = std::make_unique<ExecutionPlan>(
        net, 0, target_layer_ + 1, net.input_shape(), opts_.plan);
    suffix_plan_ = std::make_unique<ExecutionPlan>(
        net, target_layer_ + 1, net.num_layers(),
        prefix_plan_->out_shape(), opts_.plan);
    slot_ring_.ensure_slots(depth_);
    slot_alias_.resize(static_cast<size_t>(depth_));
    target_rf_ = net.receptive_field_at(target_layer_);
    rfbme_config_.rf_size = target_rf_.size;
    rfbme_config_.rf_stride = target_rf_.stride;
    rfbme_config_.rf_pad = target_rf_.pad;
    rfbme_config_.search_radius = opts.search_radius;
    rfbme_config_.search_stride = opts.search_stride;
    if (opts_.plan.tune) {
        // Race the diff-tile producers at plan-compile time like the
        // conv/FC kernels. The variants are bit-identical, so the
        // pick never perturbs digests or the add_ops account.
        rfbme_config_.variant = tune_rfbme_tile(
            rfbme_config_.rf_stride, opts_.plan.tune_budget_us);
    }
}

std::vector<PlanRecord>
FramePlan::plan_records() const
{
    // The motion front end reports its compiled kernel choice like
    // the CNN steps do: one step whose kernel is the tuner contest
    // key and whose variant is the raced winner.
    const Shape in = net_->input_shape();
    PlanStepInfo me;
    me.layer_index = -1;
    me.layer = "rfbme";
    me.kernel = "rfbme_tile/" +
                std::to_string(rfbme_config_.rf_stride) + "x" +
                std::to_string(rfbme_config_.rf_stride);
    me.variant = rfbme_variant_name(rfbme_config_.variant);
    me.fused_relu = false;
    me.out = Shape{2, rfbme_out_size(in.h, rfbme_config_),
                   rfbme_out_size(in.w, rfbme_config_)};
    return {PlanRecord{"prefix", prefix_plan_->describe()},
            PlanRecord{"suffix", suffix_plan_->describe()},
            PlanRecord{"motion", {me}}};
}

void
FramePlan::set_depth(i64 depth)
{
    require(depth >= 1, "FramePlan: depth must be >= 1, got " +
                            std::to_string(depth));
    depth_ = depth;
    // Create the whole ring now: a front creating slot tensors while
    // another frame's suffix reads its own slot must not grow (and
    // possibly reallocate) the slot vector under the reader. The
    // alias array follows the same rule for the same reason.
    slot_ring_.ensure_slots(depth_);
    if (static_cast<i64>(slot_alias_.size()) < depth_) {
        slot_alias_.resize(static_cast<size_t>(depth_));
    }
}

void
FramePlan::check_slot(i64 slot) const
{
    // Per-frame hot path: no message construction on success.
    if (slot < 0 || slot >= depth_) {
        throw ConfigError("FramePlan: slot " + std::to_string(slot) +
                          " outside the depth-" +
                          std::to_string(depth_) + " ring");
    }
}

Tensor &
FramePlan::slot_tensor(i64 slot, const Shape &shape)
{
    check_slot(slot);
    return slot_ring_.slot(slot, shape);
}

const Tensor &
FramePlan::slot_activation(i64 slot) const
{
    check_slot(slot);
    // Memoization predictions alias the shared key activation rather
    // than copying it into the slot; the alias overrides the ring.
    const std::shared_ptr<const Tensor> &alias =
        slot_alias_[static_cast<size_t>(slot)];
    if (alias) {
        return *alias;
    }
    const Tensor *t = slot_ring_.peek(slot);
    require(t != nullptr && !t->empty(),
            "FramePlan: slot " + std::to_string(slot) +
                " has no activation (no front half ran)");
    return *t;
}

void
FramePlan::release_workspaces()
{
    // Sized for the previous stream's geometry; a reset or hibernated
    // session must actually return this memory, not keep workspaces
    // grown for a stream it may never see again. Slot buffers release
    // while the slot tensors (and the addresses readers hold) stay.
    me_ = RfbmeResult();
    me_ws_ = RfbmeWorkspace();
    fitted_field_ = MotionField();
    slot_ring_.release_slots();
}

void
FramePlan::reset()
{
    has_key_ = false;
    key_pixels_ = Tensor();
    key_activation_dense_ = Tensor();
    key_activation_rle_ = RleActivation();
    key_act_shared_.reset();
    for (auto &alias : slot_alias_) {
        alias.reset();
    }
    stored_cache_ = Tensor();
    stored_cache_valid_ = false;
    hibernated_ = false;
    hib_pixels_ = std::vector<i16>();
    hib_pixels_shape_ = Shape{};
    frames_since_key_ = 0;
    stats_ = AmcStats();
    policy_->reset();
    release_workspaces();
}

const Tensor &
FramePlan::stored_activation() const
{
    require(has_key_, "no key frame has been processed yet");
    if (opts_.motion_mode == MotionMode::kMemoization &&
        key_act_shared_) {
        return *key_act_shared_;
    }
    if (!opts_.quantize_storage) {
        return key_activation_dense_;
    }
    // Quantized storage keeps only the RLE form resident; decode
    // lazily for the (cold) accessor paths — reports, tests, the
    // pipeline conveniences — and cache until the next key frame.
    if (!stored_cache_valid_) {
        stored_cache_ = rle_decode(key_activation_rle_);
        stored_cache_valid_ = true;
    }
    return stored_cache_;
}

const Tensor &
FramePlan::key_pixels() const
{
    require(has_key_, "no key frame has been processed yet");
    require(!hibernated_,
            "key_pixels: session is hibernated (hydrate() first)");
    return key_pixels_;
}

i64
FramePlan::stored_activation_bytes() const
{
    require(has_key_, "no key frame has been processed yet");
    return key_activation_rle_.encoded_bytes();
}

void
FramePlan::hibernate()
{
    require(opts_.quantize_storage,
            "hibernate: requires quantized (RLE) key-activation "
            "storage; the precise dense activation of codec=dense "
            "cannot be recovered from the compressed form");
    if (hibernated_) {
        return;
    }
    if (has_key_) {
        // Q8.8 raw pixels: the RFBME reference frame in 2 bytes per
        // pixel instead of 4, matching the hardware's key buffers.
        hib_pixels_shape_ = key_pixels_.shape();
        hib_pixels_.resize(static_cast<size_t>(key_pixels_.size()));
        for (i64 i = 0; i < key_pixels_.size(); ++i) {
            hib_pixels_[static_cast<size_t>(i)] =
                Q88::from_double(key_pixels_[i]).raw();
        }
    }
    key_pixels_ = Tensor();
    key_activation_dense_ = Tensor();
    key_act_shared_.reset();
    for (auto &alias : slot_alias_) {
        alias.reset();
    }
    stored_cache_ = Tensor();
    stored_cache_valid_ = false;
    release_workspaces();
    hibernated_ = true;
}

void
FramePlan::hydrate()
{
    if (!hibernated_) {
        return;
    }
    if (has_key_) {
        key_pixels_ = Tensor(hib_pixels_shape_);
        for (i64 i = 0; i < key_pixels_.size(); ++i) {
            key_pixels_[i] = static_cast<float>(
                Q88::from_raw(hib_pixels_[static_cast<size_t>(i)])
                    .to_double());
        }
        if (opts_.motion_mode == MotionMode::kMemoization) {
            key_act_shared_ = std::make_shared<const Tensor>(
                rle_decode(key_activation_rle_));
        }
    }
    hib_pixels_ = std::vector<i16>();
    hib_pixels_shape_ = Shape{};
    hibernated_ = false;
}

i64
FramePlan::resident_bytes() const
{
    i64 bytes = key_activation_rle_.encoded_bytes();
    bytes += key_pixels_.size() * static_cast<i64>(sizeof(float));
    bytes +=
        key_activation_dense_.size() * static_cast<i64>(sizeof(float));
    if (key_act_shared_) {
        bytes +=
            key_act_shared_->size() * static_cast<i64>(sizeof(float));
    }
    if (stored_cache_valid_) {
        bytes += stored_cache_.size() * static_cast<i64>(sizeof(float));
    }
    bytes += static_cast<i64>(hib_pixels_.size() * sizeof(i16));
    bytes += static_cast<i64>(slot_ring_.bytes_reserved());
    const auto field_bytes = [](const MotionField &f) {
        return f.height() * f.width() * static_cast<i64>(sizeof(Vec2));
    };
    bytes += field_bytes(fitted_field_) + field_bytes(me_.field);
    bytes += static_cast<i64>(me_.rf_errors.size() * sizeof(double));
    bytes += static_cast<i64>(me_ws_.offsets.size() * sizeof(Vec2));
    bytes += static_cast<i64>(me_ws_.merge_best.size() * sizeof(double));
    for (const RfbmeWorkspace::Chunk &ch : me_ws_.chunks) {
        bytes += static_cast<i64>(
            (ch.best.size() + ch.prefix_diff.size() +
             ch.prefix_count.size() + ch.tile_diff.size() +
             ch.tile_count.size()) *
                sizeof(double) +
            ch.winner.size() * sizeof(i32));
    }
    return bytes;
}

void
FramePlan::ingest_stage(const Tensor &frame, AmcObserver *obs) const
{
    StageScope timer(obs, AmcStage::kIngest);
    // Per-frame hot path: no message construction on success.
    if (frame.shape() != net_->input_shape()) {
        throw ConfigError("frame shape " + frame.shape().str() +
                          " does not match network input " +
                          net_->input_shape().str());
    }
}

void
FramePlan::motion_stage(const Tensor &frame, AmcObserver *obs)
{
    StageScope timer(obs, AmcStage::kMotionEstimation);
    rfbme_into(key_pixels_, frame, rfbme_config_, me_, me_ws_);
}

FrontResult
FramePlan::key_stage(const Tensor &frame, i64 slot,
                     ScratchArena &exec_arena, AmcObserver *obs)
{
    FrontResult result;
    result.is_key = true;
    Tensor &stored = slot_tensor(slot, prefix_plan_->out_shape());
    {
        StageScope timer(obs, AmcStage::kPrefix);
        // Copied out of the execution arena into the stream's slot
        // ring: the target activation outlives the prefix (the suffix
        // may run it on another thread) and feeds key-frame storage.
        const Tensor &target = prefix_plan_->run(frame, exec_arena);
        stored.reshape_to(target.shape());
        std::copy(target.data().begin(), target.data().end(),
                  stored.data().begin());
    }

    // Store pixels and the target activation the way the hardware
    // does: pixels in the key pixel buffer, the activation run-length
    // encoded in the key frame activation buffer.
    key_pixels_ = frame;
    {
        StageScope timer(obs, AmcStage::kEncode);
        RleParams rle_params;
        if (opts_.storage_prune_rel > 0.0) {
            const double rms = std::sqrt(
                sum_squares(stored) /
                static_cast<double>(stored.size()));
            rle_params.zero_threshold =
                static_cast<float>(opts_.storage_prune_rel * rms);
        }
        key_activation_rle_ = rle_encode(stored, rle_params);
        stored_cache_valid_ = false;
        // Key frames are full, precise executions (Section II-A); the
        // quantized RLE copy is only consumed by later predicted
        // frames, so the slot keeps the precise activation. Under
        // quantized storage the RLE form *is* the resident store —
        // predictions warp it directly — and only the consumers that
        // need a dense tensor get one:
        if (opts_.motion_mode == MotionMode::kMemoization) {
            // One shared decoded copy per key frame; every predicted
            // frame aliases it instead of copying (slot_alias_).
            key_act_shared_ = std::make_shared<const Tensor>(
                opts_.quantize_storage
                    ? rle_decode(key_activation_rle_)
                    : stored);
        } else if (!opts_.quantize_storage) {
            key_activation_dense_.reshape_to(stored.shape());
            std::copy(stored.data().begin(), stored.data().end(),
                      key_activation_dense_.data().begin());
        }
    }
    slot_alias_[static_cast<size_t>(slot)].reset();
    has_key_ = true;
    frames_since_key_ = 0;
    ++stats_.frames;
    ++stats_.key_frames;
    return result;
}

FrontResult
FramePlan::predict_stage(i64 slot, AmcObserver *obs)
{
    FrontResult result;
    result.is_key = false;
    if (opts_.motion_mode == MotionMode::kMemoization) {
        // Alias the shared key activation: a refcount bump replaces
        // the former dense copy of the whole tensor into the slot.
        StageScope timer(obs, AmcStage::kWarp);
        check_slot(slot);
        slot_alias_[static_cast<size_t>(slot)] = key_act_shared_;
    } else if (opts_.quantize_storage) {
        // Sparse-direct: warp straight from the resident RLE form.
        const Shape shape = key_activation_rle_.shape;
        Tensor &predicted = slot_tensor(slot, shape);
        {
            StageScope timer(obs, AmcStage::kMotionField);
            fit_field_into(me_.field, shape.h, shape.w, fitted_field_);
        }
        {
            StageScope timer(obs, AmcStage::kWarp);
            warp_activation_rle_into(key_activation_rle_,
                                     fitted_field_, target_rf_.stride,
                                     opts_.interp, predicted);
        }
    } else {
        Tensor &predicted =
            slot_tensor(slot, key_activation_dense_.shape());
        {
            StageScope timer(obs, AmcStage::kMotionField);
            fit_field_into(me_.field, key_activation_dense_.height(),
                           key_activation_dense_.width(),
                           fitted_field_);
        }
        {
            StageScope timer(obs, AmcStage::kWarp);
            warp_activation_into(key_activation_dense_, fitted_field_,
                                 target_rf_.stride, opts_.interp,
                                 predicted);
        }
    }
    ++stats_.frames;
    return result;
}

FrontResult
FramePlan::run_front(const Tensor &frame, i64 slot,
                     ScratchArena &exec_arena, AmcObserver *obs)
{
    ingest_stage(frame, obs);
    if (!has_key_) {
        // First frame of a stream: always a key frame, no motion
        // estimation to run and no policy consulted.
        FrontResult result = key_stage(frame, slot, exec_arena, obs);
        result.resident_bytes = resident_bytes();
        return result;
    }
    ++frames_since_key_;
    motion_stage(frame, obs);
    FrameFeatures features;
    features.match_error = me_.mean_error;
    features.motion_magnitude = me_.field.total_magnitude();
    features.frames_since_key = frames_since_key_;
    bool is_key;
    {
        StageScope timer(obs, AmcStage::kPolicy);
        is_key = policy_->is_key_frame(features);
    }
    FrontResult result = is_key ? key_stage(frame, slot, exec_arena, obs)
                                : predict_stage(slot, obs);
    result.features = features;
    result.me_add_ops = me_.add_ops;
    result.resident_bytes = resident_bytes();
    return result;
}

FrontResult
FramePlan::run_front_key(const Tensor &frame, i64 slot,
                         ScratchArena &exec_arena, AmcObserver *obs)
{
    ingest_stage(frame, obs);
    FrontResult result = key_stage(frame, slot, exec_arena, obs);
    result.resident_bytes = resident_bytes();
    return result;
}

FrontResult
FramePlan::run_front_predicted(const Tensor &frame, i64 slot,
                               ScratchArena &exec_arena,
                               AmcObserver *obs)
{
    (void)exec_arena;
    require(has_key_, "run_predicted: no stored key frame");
    ingest_stage(frame, obs);
    ++frames_since_key_;
    motion_stage(frame, obs);
    FrontResult result = predict_stage(slot, obs);
    result.features.match_error = me_.mean_error;
    result.features.motion_magnitude = me_.field.total_magnitude();
    result.features.frames_since_key = frames_since_key_;
    result.me_add_ops = me_.add_ops;
    result.resident_bytes = resident_bytes();
    return result;
}

const Tensor &
FramePlan::run_suffix(i64 slot, ScratchArena &exec_arena,
                      AmcObserver *obs) const
{
    const Tensor &in = slot_activation(slot);
    StageScope timer(obs, AmcStage::kSuffix);
    return suffix_plan_->run(in, exec_arena);
}

} // namespace eva2
