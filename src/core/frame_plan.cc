#include "core/frame_plan.h"

#include <algorithm>
#include <cmath>

namespace eva2 {

void
AmcOptions::validate(const Network &net) const
{
    require(search_radius > 0,
            "AmcOptions: search_radius must be > 0, got " +
                std::to_string(search_radius));
    require(search_stride > 0,
            "AmcOptions: search_stride must be > 0, got " +
                std::to_string(search_stride));
    require(search_stride <= search_radius,
            "AmcOptions: search_stride (" +
                std::to_string(search_stride) +
                ") must not exceed search_radius (" +
                std::to_string(search_radius) + ")");
    require(storage_prune_rel >= 0.0,
            "AmcOptions: storage_prune_rel must be >= 0, got " +
                std::to_string(storage_prune_rel));
    if (target_choice == TargetChoice::kExplicit) {
        require(explicit_target >= 0 &&
                    explicit_target < net.num_layers(),
                "AmcOptions: explicit_target " +
                    std::to_string(explicit_target) +
                    " out of range for network " + net.name() +
                    " with " + std::to_string(net.num_layers()) +
                    " layers");
        require(explicit_target <= net.last_spatial_index(),
                "AmcOptions: explicit_target " +
                    std::to_string(explicit_target) +
                    " is past the last spatial layer (" +
                    std::to_string(net.last_spatial_index()) +
                    ") of network " + net.name() +
                    "; AMC can only warp spatial activations");
    }
}

i64
FramePlan::resolve_target(const Network &net, TargetChoice choice,
                          i64 explicit_target)
{
    switch (choice) {
      case TargetChoice::kLastSpatial:
        return net.default_target_index();
      case TargetChoice::kEarly: {
        const i64 pool = net.first_pool_index();
        require(pool >= 0,
                "network " + net.name() + " has no pooling layer for an "
                "early target");
        return pool;
      }
      case TargetChoice::kExplicit:
        require(explicit_target >= 0 &&
                    explicit_target < net.num_layers(),
                "explicit target out of range");
        return explicit_target;
    }
    throw InternalError("unreachable target choice");
}

FramePlan::FramePlan(const Network &net,
                     std::unique_ptr<KeyFramePolicy> policy,
                     AmcOptions opts)
    : net_(&net),
      policy_(std::move(policy)),
      opts_(opts),
      target_layer_((opts.validate(net),
                     resolve_target(net, opts.target_choice,
                                    opts.explicit_target)))
{
    if (!policy_) {
        policy_ = std::make_unique<StaticRatePolicy>(1);
    }
    // Compile both layer ranges once: shapes resolved, arena slots
    // assigned, kernels selected. The suffix runs on every frame, so
    // this is where planned execution pays off.
    prefix_plan_ = std::make_unique<ExecutionPlan>(
        net, 0, target_layer_ + 1, net.input_shape(), opts_.plan);
    suffix_plan_ = std::make_unique<ExecutionPlan>(
        net, target_layer_ + 1, net.num_layers(),
        prefix_plan_->out_shape(), opts_.plan);
    slot_ring_.ensure_slots(depth_);
    target_rf_ = net.receptive_field_at(target_layer_);
    rfbme_config_.rf_size = target_rf_.size;
    rfbme_config_.rf_stride = target_rf_.stride;
    rfbme_config_.rf_pad = target_rf_.pad;
    rfbme_config_.search_radius = opts.search_radius;
    rfbme_config_.search_stride = opts.search_stride;
}

std::vector<PlanRecord>
FramePlan::plan_records() const
{
    return {PlanRecord{"prefix", prefix_plan_->describe()},
            PlanRecord{"suffix", suffix_plan_->describe()}};
}

void
FramePlan::set_depth(i64 depth)
{
    require(depth >= 1, "FramePlan: depth must be >= 1, got " +
                            std::to_string(depth));
    depth_ = depth;
    // Create the whole ring now: a front creating slot tensors while
    // another frame's suffix reads its own slot must not grow (and
    // possibly reallocate) the slot vector under the reader.
    slot_ring_.ensure_slots(depth_);
}

void
FramePlan::check_slot(i64 slot) const
{
    // Per-frame hot path: no message construction on success.
    if (slot < 0 || slot >= depth_) {
        throw ConfigError("FramePlan: slot " + std::to_string(slot) +
                          " outside the depth-" +
                          std::to_string(depth_) + " ring");
    }
}

Tensor &
FramePlan::slot_tensor(i64 slot, const Shape &shape)
{
    check_slot(slot);
    return slot_ring_.slot(slot, shape);
}

const Tensor &
FramePlan::slot_activation(i64 slot) const
{
    check_slot(slot);
    const Tensor *t = slot_ring_.peek(slot);
    require(t != nullptr && !t->empty(),
            "FramePlan: slot " + std::to_string(slot) +
                " has no activation (no front half ran)");
    return *t;
}

void
FramePlan::reset()
{
    has_key_ = false;
    key_pixels_ = Tensor();
    key_activation_ = Tensor();
    key_activation_rle_ = RleActivation();
    frames_since_key_ = 0;
    stats_ = AmcStats();
    policy_->reset();
}

const Tensor &
FramePlan::stored_activation() const
{
    require(has_key_, "no key frame has been processed yet");
    return key_activation_;
}

const Tensor &
FramePlan::key_pixels() const
{
    require(has_key_, "no key frame has been processed yet");
    return key_pixels_;
}

i64
FramePlan::stored_activation_bytes() const
{
    require(has_key_, "no key frame has been processed yet");
    return key_activation_rle_.encoded_bytes();
}

void
FramePlan::ingest_stage(const Tensor &frame, AmcObserver *obs) const
{
    StageScope timer(obs, AmcStage::kIngest);
    // Per-frame hot path: no message construction on success.
    if (frame.shape() != net_->input_shape()) {
        throw ConfigError("frame shape " + frame.shape().str() +
                          " does not match network input " +
                          net_->input_shape().str());
    }
}

void
FramePlan::motion_stage(const Tensor &frame, AmcObserver *obs)
{
    StageScope timer(obs, AmcStage::kMotionEstimation);
    rfbme_into(key_pixels_, frame, rfbme_config_, me_, me_ws_);
}

FrontResult
FramePlan::key_stage(const Tensor &frame, i64 slot,
                     ScratchArena &exec_arena, AmcObserver *obs)
{
    FrontResult result;
    result.is_key = true;
    Tensor &stored = slot_tensor(slot, prefix_plan_->out_shape());
    {
        StageScope timer(obs, AmcStage::kPrefix);
        // Copied out of the execution arena into the stream's slot
        // ring: the target activation outlives the prefix (the suffix
        // may run it on another thread) and feeds key-frame storage.
        const Tensor &target = prefix_plan_->run(frame, exec_arena);
        stored.reshape_to(target.shape());
        std::copy(target.data().begin(), target.data().end(),
                  stored.data().begin());
    }

    // Store pixels and the target activation the way the hardware
    // does: pixels in the key pixel buffer, the activation run-length
    // encoded in the key frame activation buffer.
    key_pixels_ = frame;
    {
        StageScope timer(obs, AmcStage::kEncode);
        RleParams rle_params;
        if (opts_.storage_prune_rel > 0.0) {
            double acc = 0.0;
            for (i64 i = 0; i < stored.size(); ++i) {
                acc += static_cast<double>(stored[i]) * stored[i];
            }
            const double rms =
                std::sqrt(acc / static_cast<double>(stored.size()));
            rle_params.zero_threshold =
                static_cast<float>(opts_.storage_prune_rel * rms);
        }
        key_activation_rle_ = rle_encode(stored, rle_params);
        // Key frames are full, precise executions (Section II-A); the
        // quantized RLE copy is only consumed by later predicted
        // frames, so the slot keeps the precise activation.
        key_activation_ = opts_.quantize_storage
                              ? rle_decode(key_activation_rle_)
                              : stored;
    }
    has_key_ = true;
    frames_since_key_ = 0;
    ++stats_.frames;
    ++stats_.key_frames;
    return result;
}

FrontResult
FramePlan::predict_stage(i64 slot, AmcObserver *obs)
{
    FrontResult result;
    result.is_key = false;
    Tensor &predicted = slot_tensor(slot, key_activation_.shape());
    if (opts_.motion_mode == MotionMode::kMemoization) {
        StageScope timer(obs, AmcStage::kWarp);
        predicted.reshape_to(key_activation_.shape());
        std::copy(key_activation_.data().begin(),
                  key_activation_.data().end(),
                  predicted.data().begin());
    } else {
        {
            StageScope timer(obs, AmcStage::kMotionField);
            fit_field_into(me_.field, key_activation_.height(),
                           key_activation_.width(), fitted_field_);
        }
        {
            StageScope timer(obs, AmcStage::kWarp);
            warp_activation_into(key_activation_, fitted_field_,
                                 target_rf_.stride, opts_.interp,
                                 predicted);
        }
    }
    ++stats_.frames;
    return result;
}

FrontResult
FramePlan::run_front(const Tensor &frame, i64 slot,
                     ScratchArena &exec_arena, AmcObserver *obs)
{
    ingest_stage(frame, obs);
    if (!has_key_) {
        // First frame of a stream: always a key frame, no motion
        // estimation to run and no policy consulted.
        return key_stage(frame, slot, exec_arena, obs);
    }
    ++frames_since_key_;
    motion_stage(frame, obs);
    FrameFeatures features;
    features.match_error = me_.mean_error;
    features.motion_magnitude = me_.field.total_magnitude();
    features.frames_since_key = frames_since_key_;
    bool is_key;
    {
        StageScope timer(obs, AmcStage::kPolicy);
        is_key = policy_->is_key_frame(features);
    }
    FrontResult result = is_key ? key_stage(frame, slot, exec_arena, obs)
                                : predict_stage(slot, obs);
    result.features = features;
    result.me_add_ops = me_.add_ops;
    return result;
}

FrontResult
FramePlan::run_front_key(const Tensor &frame, i64 slot,
                         ScratchArena &exec_arena, AmcObserver *obs)
{
    ingest_stage(frame, obs);
    return key_stage(frame, slot, exec_arena, obs);
}

FrontResult
FramePlan::run_front_predicted(const Tensor &frame, i64 slot,
                               ScratchArena &exec_arena,
                               AmcObserver *obs)
{
    (void)exec_arena;
    require(has_key_, "run_predicted: no stored key frame");
    ingest_stage(frame, obs);
    ++frames_since_key_;
    motion_stage(frame, obs);
    FrontResult result = predict_stage(slot, obs);
    result.features.match_error = me_.mean_error;
    result.features.motion_magnitude = me_.field.total_magnitude();
    result.features.frames_since_key = frames_since_key_;
    result.me_add_ops = me_.add_ops;
    return result;
}

const Tensor &
FramePlan::run_suffix(i64 slot, ScratchArena &exec_arena,
                      AmcObserver *obs) const
{
    const Tensor &in = slot_activation(slot);
    StageScope timer(obs, AmcStage::kSuffix);
    return suffix_plan_->run(in, exec_arena);
}

} // namespace eva2
