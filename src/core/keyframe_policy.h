/**
 * @file
 * Key-frame selection policies (Section II-C4).
 *
 * The key-frame decision is AMC's accuracy/efficiency knob. The paper
 * implements a static rate plus two adaptive features measurable from
 * the motion-estimation pass EVA2 runs anyway: aggregate block match
 * error (chosen for the hardware, since it is a free byproduct of
 * RFBME) and total motion magnitude. Section IV-E5 sweeps both.
 */
#ifndef EVA2_CORE_KEYFRAME_POLICY_H
#define EVA2_CORE_KEYFRAME_POLICY_H

#include <memory>
#include <string>

#include "util/common.h"

namespace eva2 {

/** Scene features available when deciding a frame's type. */
struct FrameFeatures
{
    /** Mean per-receptive-field minimum match error from RFBME. */
    double match_error = 0.0;
    /** Total motion-vector magnitude from RFBME. */
    double motion_magnitude = 0.0;
    /** Frames since the last key frame (>= 1 for candidates). */
    i64 frames_since_key = 0;
};

/** Decides whether each incoming frame is a key frame. */
class KeyFramePolicy
{
  public:
    virtual ~KeyFramePolicy() = default;

    /**
     * Decide the type of the next frame. The very first frame of a
     * stream is always a key frame; the pipeline does not consult the
     * policy for it.
     */
    virtual bool is_key_frame(const FrameFeatures &features) = 0;

    /** Reset internal state for a new stream. */
    virtual void reset() {}

    /** Policy name for reports. */
    virtual std::string name() const = 0;
};

/** Every nth frame is a key frame. */
class StaticRatePolicy : public KeyFramePolicy
{
  public:
    /** @param interval Key frame every `interval` frames (>= 1). */
    explicit StaticRatePolicy(i64 interval);

    bool is_key_frame(const FrameFeatures &features) override;
    std::string name() const override;

    i64 interval() const { return interval_; }

  private:
    i64 interval_;
};

/**
 * Adaptive policy on RFBME match error: a high aggregate error means
 * motion estimation failed to explain the scene change (occlusion,
 * lighting, new content), so run a key frame.
 */
class BlockErrorPolicy : public KeyFramePolicy
{
  public:
    /**
     * @param threshold Mean match error above which a key frame runs.
     * @param max_gap   Force a key frame after this many predictions
     *                  (0 disables the cap).
     */
    explicit BlockErrorPolicy(double threshold, i64 max_gap = 0);

    bool is_key_frame(const FrameFeatures &features) override;
    std::string name() const override;

  private:
    double threshold_;
    i64 max_gap_;
};

/**
 * Adaptive policy on total motion magnitude: large total motion means
 * predictions are less reliable (Section II-C4's second feature).
 */
class MotionMagnitudePolicy : public KeyFramePolicy
{
  public:
    explicit MotionMagnitudePolicy(double threshold, i64 max_gap = 0);

    bool is_key_frame(const FrameFeatures &features) override;
    std::string name() const override;

  private:
    double threshold_;
    i64 max_gap_;
};

} // namespace eva2

#endif // EVA2_CORE_KEYFRAME_POLICY_H
