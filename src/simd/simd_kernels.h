/**
 * @file
 * Plain-function interface to the explicit-SIMD kernel variants.
 *
 * This header is safe to include from any translation unit: it
 * contains no intrinsics and no Vec types. The implementations live
 * in simd_kernels.cc, the one TU the build compiles with elevated ISA
 * flags (see src/simd/vec.h and the EVA2_SIMD CMake option), and they
 * must only be *called* after a positive simd_supported() check —
 * callers fall back to the scalar reference kernels otherwise.
 *
 * Two numeric classes of kernel live here:
 *
 *  - Bit-exact: relu_simd, the warp_apply_* kernels, and the SAD
 *    kernels (sad_span_simd / sad_tile_row_simd) perform, per
 *    element, exactly the operation sequence of the scalar reference
 *    (lane-parallel max / mul / add, no fma, no reordering; the SAD
 *    kernels reproduce the fixed-stripe reduction contract of
 *    flow/sad_kernels.h). They are drop-in replacements and need no
 *    divergence gating.
 *  - Bounded-divergence: the GEMM micro-kernels (fma: one rounding
 *    where the scalar reference has two) and the FC kernels (fma plus
 *    a tree-order horizontal sum). These are only selected through
 *    the `kernel=tuned` path, which the two-tier verification story
 *    gates on the tensor_ops ulp/L-inf digest check and end-task
 *    accuracy parity (docs/simd_kernels.md).
 */
#ifndef EVA2_SIMD_SIMD_KERNELS_H
#define EVA2_SIMD_SIMD_KERNELS_H

#include <vector>

#include "util/common.h"

namespace eva2 {

/**
 * A GEMM micro-kernel variant: the register-tile geometry the tuner
 * searches over. kScalar is the reference blocked kernel in
 * conv_kernels.cc; the kMrXxNvY variants are SIMD register tiles of
 * X weight rows by Y vectors of output pixels (X*Y accumulator
 * vectors held live; larger X amortizes the packed-column loads
 * across weight rows, larger Y hides fma latency).
 */
enum class GemmVariant : i64
{
    kScalar = 0,
    kMr1xNv4,
    kMr2xNv2,
    kMr2xNv4,
    kMr4xNv2,
    kMr4xNv3,
};

/** Printable variant name ("scalar", "mr2xnv4", ...). */
const char *gemm_variant_name(GemmVariant v);

/** The SIMD variants the tuner considers (excludes kScalar). */
const std::vector<GemmVariant> &simd_gemm_variants();

/** True when the SIMD TU was compiled for a real vector ISA. */
bool simd_compiled();

/**
 * True when the SIMD kernels may be called on this machine: compiled
 * for a real ISA *and* the running CPU supports it (x86 builds check
 * cpuid for AVX2+FMA; NEON is baseline on AArch64). Cheap; cached.
 */
bool simd_supported();

/** ISA the SIMD kernels run ("avx2", "sse2", "neon", "scalar"). */
const char *simd_isa_name();

/** Vector lanes of one Vec<float> ("8" for AVX2; 1 when scalar). */
i64 simd_lanes();

/**
 * SIMD blocked GEMM over a packed im2col matrix: out[m][j] =
 * bias[m] + sum_k w[m][k] * col[k][j] for j in [j0, j0+jn), all m in
 * [0, out_c). Accumulation per output element is ascending-k with
 * fused multiply-adds; columns beyond the last full vector run
 * through a value-safe lane-parallel tail. Requires simd_supported().
 */
void gemm_strip_simd(GemmVariant variant, const float *weights,
                     const float *biases, const float *col, i64 out_c,
                     i64 taps, i64 n, i64 j0, i64 jn, float *out,
                     bool fuse_relu);

/** Column-strip width gemm_strip_simd wants for a variant, in
 * pixels; parallel_for splits the GEMM over strips of this width. */
i64 gemm_strip_width(GemmVariant variant);

/**
 * SIMD dot product: bias + sum_i w[i] * x[i], accumulated in four
 * independent vector chains (fma) and reduced pairwise. Bounded
 * divergence vs the scalar left-to-right chain.
 */
float fc_dot_simd(const float *w, const float *x, i64 n, float bias);

/**
 * Batched SIMD FC row: one weight row dotted against nb sample
 * vectors (nb <= 8), each sample accumulated independently as in
 * fc_dot_simd. The weight vector is loaded once per block of taps
 * and reused across samples.
 */
void fc_dot_batched_simd(const float *w, float bias,
                         const float *const *xs, i64 nb, i64 n,
                         float *out);

/** Lane-parallel max(x, 0): bit-exact vs the scalar loop. */
void relu_simd(const float *in, float *out, i64 n);

/**
 * Apply precomputed bilinear-warp coefficients to one channel plane:
 * for each output pixel p,
 *
 *   top = v00*wx0 + v01*wx1;  bot = v10*wx0 + v11*wx1;
 *   out[p] = (float)(top*wy0 + bot*wy1)
 *
 * in double precision, where vXY = kXY[p] ? (double)plane[oXY[p]]
 * : 0.0 — the kXY masks (0 or -1) *select* the zero-padding of
 * out-of-bounds corners rather than multiplying by 0.0, which would
 * turn -x into -0.0 and infinities into NaN where the scalar
 * reference's padding is an exact +0.0. Bit-exact vs the reference in
 * core/warp.cc, which uses the identical expression tree. Offsets of
 * masked-out corners must still be valid indices (callers clamp to 0).
 */
void warp_apply_bilinear_simd(const float *plane, const i32 *o00,
                              const i32 *o01, const i32 *o10,
                              const i32 *o11, const i32 *k00,
                              const i32 *k01, const i32 *k10,
                              const i32 *k11, const double *wx0,
                              const double *wx1, const double *wy0,
                              const double *wy1, i64 n, float *out);

/**
 * Apply precomputed nearest-warp offsets to one channel plane:
 * out[p] = off[p] >= 0 ? plane[off[p]] : 0. Bit-exact (pure moves).
 */
void warp_apply_nearest_simd(const float *plane, const i32 *off, i64 n,
                             float *out);

/**
 * SIMD sum of |a[i] - b[i]| over i in [0, n): bit-exact vs the
 * scalar sad_span in flow/sad_kernels.h. Each float is widened to
 * double *before* the subtraction (float subtract-then-widen rounds
 * differently), elements accumulate into the same 8 stripes
 * (element i -> stripe i%8), and the stripes reduce through the same
 * pairwise tree, so the result is identical on every input.
 */
double sad_span_simd(const float *a, const float *b, i64 n);

/**
 * SIMD diff-tile row kernel: acc[t] += sad_span(a + t*s, b + t*s, s)
 * for t in [0, tiles). Bit-exact vs flow/sad_kernels.h
 * sad_tile_row. Narrow tiles (s = 2 and s = 4) vectorize *across*
 * adjacent tiles — one 8-float load covers 4 (resp. 2) tiles and a
 * horizontal pairwise add produces each tile's stripe reduction
 * exactly (for n < 8 the unused stripes of the scalar contract are
 * +0.0, an exact no-op) — wider tiles vectorize within the tile like
 * sad_span_simd.
 */
void sad_tile_row_simd(const float *a, const float *b, i64 tiles,
                       i64 s, double *acc);

} // namespace eva2

#endif // EVA2_SIMD_SIMD_KERNELS_H
