/**
 * @file
 * The one ISA-flagged translation unit: every explicit-SIMD kernel
 * variant is implemented here against the Vec wrapper, and the build
 * compiles this file (alone) with elevated ISA flags — `-mavx2 -mfma
 * -ffp-contract=off` on x86_64 when EVA2_SIMD is ON. Nothing in this
 * file runs unless the caller checked simd_supported() first, so the
 * binary stays runnable on machines without the elevated ISA.
 *
 * These kernels run per frame per layer: no std::string, no heap
 * allocation, literal-only require() messages.
 */
// eva2-lint: hot-path
#include "simd/simd_kernels.h"

#include <algorithm>
#include <cmath>

#include "flow/sad_kernels.h"
#include "simd/vec.h"

namespace eva2 {

using simd::VecF;

const char *
gemm_variant_name(GemmVariant v)
{
    switch (v) {
      case GemmVariant::kScalar: return "scalar";
      case GemmVariant::kMr1xNv4: return "mr1xnv4";
      case GemmVariant::kMr2xNv2: return "mr2xnv2";
      case GemmVariant::kMr2xNv4: return "mr2xnv4";
      case GemmVariant::kMr4xNv2: return "mr4xnv2";
      case GemmVariant::kMr4xNv3: return "mr4xnv3";
    }
    return "unknown";
}

const std::vector<GemmVariant> &
simd_gemm_variants()
{
    static const std::vector<GemmVariant> variants = {
        GemmVariant::kMr1xNv4, GemmVariant::kMr2xNv2,
        GemmVariant::kMr2xNv4, GemmVariant::kMr4xNv2,
        GemmVariant::kMr4xNv3,
    };
    return variants;
}

bool
simd_compiled()
{
    return simd::compiled_simd();
}

bool
simd_supported()
{
#if defined(EVA2_SIMD_ISA_AVX2)
    // Compiled for AVX2+FMA: only dispatch when the running CPU has
    // both (the rest of the binary is baseline-ISA, so the check
    // itself is safe to execute anywhere).
    static const bool ok = __builtin_cpu_supports("avx2") &&
                           __builtin_cpu_supports("fma");
    return ok;
#else
    // SSE2 is the x86_64 baseline and NEON the AArch64 baseline: if
    // the TU compiled for them at all, the CPU has them. The scalar
    // fallback reports unsupported so callers keep the reference
    // kernels (identical numerics, no pointless indirection).
    return simd::compiled_simd();
#endif
}

const char *
simd_isa_name()
{
    return simd::kIsaName;
}

i64
simd_lanes()
{
    return VecF::kLanes;
}

namespace {

/**
 * One full register tile of the GEMM: MR weight rows by NV vectors
 * of output pixels, all accumulators live in registers. Loads each
 * packed-column vector once per k and reuses it across the MR rows —
 * the arithmetic-intensity win the scalar blocked kernel (one row at
 * a time) cannot have. Per output element the accumulation is still
 * ascending-k into a single chain; fma is the only numeric
 * difference from the scalar reference.
 */
template <int MR, int NV>
void
gemm_register_tile(const float *weights, const float *biases,
                   const float *col, i64 m0, i64 taps, i64 n, i64 j0,
                   float *out, bool fuse_relu)
{
    constexpr i64 L = VecF::kLanes;
    VecF acc[MR][NV];
    for (int r = 0; r < MR; ++r) {
        const VecF b = VecF::broadcast(biases[m0 + r]);
        for (int v = 0; v < NV; ++v) {
            acc[r][v] = b;
        }
    }
    for (i64 k = 0; k < taps; ++k) {
        const float *brow = col + k * n + j0;
        VecF bv[NV];
        for (int v = 0; v < NV; ++v) {
            bv[v] = VecF::load(brow + v * L);
        }
        const float *wcol = weights + m0 * taps + k;
        for (int r = 0; r < MR; ++r) {
            const VecF wv = VecF::broadcast(wcol[r * taps]);
            for (int v = 0; v < NV; ++v) {
                acc[r][v] = acc[r][v].fma(wv, bv[v]);
            }
        }
    }
    const VecF zero = VecF::zero();
    for (int r = 0; r < MR; ++r) {
        float *c = out + (m0 + r) * n + j0;
        for (int v = 0; v < NV; ++v) {
            const VecF res =
                fuse_relu ? max(acc[r][v], zero) : acc[r][v];
            res.store(c + v * L);
        }
    }
}

/**
 * Tail columns of a strip (fewer than one vector): scalar, ascending
 * k, explicit mul+add. Deterministic for a given (shape, variant);
 * the bounded-divergence gate covers the whole tensor either way.
 */
void
gemm_scalar_tail(const float *weights, const float *biases,
                 const float *col, i64 out_c, i64 taps, i64 n, i64 j0,
                 i64 jn, float *out, bool fuse_relu)
{
    for (i64 m = 0; m < out_c; ++m) {
        const float *w = weights + m * taps;
        for (i64 j = j0; j < j0 + jn; ++j) {
            float acc = biases[m];
            for (i64 k = 0; k < taps; ++k) {
                acc += w[k] * col[k * n + j];
            }
            out[m * n + j] =
                fuse_relu ? (acc > 0.0f ? acc : 0.0f) : acc;
        }
    }
}

/** Geometry of one variant's register tile. */
struct TileGeom
{
    int mr;
    int nv;
};

TileGeom
variant_geom(GemmVariant v)
{
    switch (v) {
      case GemmVariant::kMr1xNv4: return {1, 4};
      case GemmVariant::kMr2xNv2: return {2, 2};
      case GemmVariant::kMr2xNv4: return {2, 4};
      case GemmVariant::kMr4xNv2: return {4, 2};
      case GemmVariant::kMr4xNv3: return {4, 3};
      case GemmVariant::kScalar: break;
    }
    throw InternalError("gemm_strip_simd: scalar variant dispatched "
                        "to the SIMD kernel");
}

template <int MR, int NV>
void
gemm_strip_impl(const float *weights, const float *biases,
                const float *col, i64 out_c, i64 taps, i64 n, i64 j0,
                i64 jn, float *out, bool fuse_relu)
{
    constexpr i64 L = VecF::kLanes;
    constexpr i64 kFull = NV * L;
    const i64 j_end = j0 + jn;
    i64 j = j0;
    for (; j + kFull <= j_end; j += kFull) {
        i64 m0 = 0;
        for (; m0 + MR <= out_c; m0 += MR) {
            gemm_register_tile<MR, NV>(weights, biases, col, m0, taps,
                                       n, j, out, fuse_relu);
        }
        for (; m0 < out_c; ++m0) {
            gemm_register_tile<1, NV>(weights, biases, col, m0, taps,
                                      n, j, out, fuse_relu);
        }
    }
    // Single-vector columns past the last full tile.
    for (; j + L <= j_end; j += L) {
        for (i64 m0 = 0; m0 < out_c; ++m0) {
            gemm_register_tile<1, 1>(weights, biases, col, m0, taps, n,
                                     j, out, fuse_relu);
        }
    }
    if (j < j_end) {
        gemm_scalar_tail(weights, biases, col, out_c, taps, n, j,
                         j_end - j, out, fuse_relu);
    }
}

} // namespace

void
gemm_strip_simd(GemmVariant variant, const float *weights,
                const float *biases, const float *col, i64 out_c,
                i64 taps, i64 n, i64 j0, i64 jn, float *out,
                bool fuse_relu)
{
    switch (variant) {
      case GemmVariant::kMr1xNv4:
        gemm_strip_impl<1, 4>(weights, biases, col, out_c, taps, n, j0,
                              jn, out, fuse_relu);
        return;
      case GemmVariant::kMr2xNv2:
        gemm_strip_impl<2, 2>(weights, biases, col, out_c, taps, n, j0,
                              jn, out, fuse_relu);
        return;
      case GemmVariant::kMr2xNv4:
        gemm_strip_impl<2, 4>(weights, biases, col, out_c, taps, n, j0,
                              jn, out, fuse_relu);
        return;
      case GemmVariant::kMr4xNv2:
        gemm_strip_impl<4, 2>(weights, biases, col, out_c, taps, n, j0,
                              jn, out, fuse_relu);
        return;
      case GemmVariant::kMr4xNv3:
        gemm_strip_impl<4, 3>(weights, biases, col, out_c, taps, n, j0,
                              jn, out, fuse_relu);
        return;
      case GemmVariant::kScalar: break;
    }
    throw InternalError("gemm_strip_simd: scalar variant dispatched "
                        "to the SIMD kernel");
}

i64
gemm_strip_width(GemmVariant variant)
{
    // Four full register tiles per parallel_for strip: wide enough to
    // amortize the dispatch, narrow enough to split small planes.
    const TileGeom g = variant_geom(variant);
    return 4 * static_cast<i64>(g.nv) * VecF::kLanes;
}

float
fc_dot_simd(const float *w, const float *x, i64 n, float bias)
{
    constexpr i64 L = VecF::kLanes;
    VecF a0 = VecF::zero();
    VecF a1 = VecF::zero();
    VecF a2 = VecF::zero();
    VecF a3 = VecF::zero();
    i64 i = 0;
    for (; i + 4 * L <= n; i += 4 * L) {
        a0 = a0.fma(VecF::load(w + i), VecF::load(x + i));
        a1 = a1.fma(VecF::load(w + i + L), VecF::load(x + i + L));
        a2 = a2.fma(VecF::load(w + i + 2 * L),
                    VecF::load(x + i + 2 * L));
        a3 = a3.fma(VecF::load(w + i + 3 * L),
                    VecF::load(x + i + 3 * L));
    }
    for (; i + L <= n; i += L) {
        a0 = a0.fma(VecF::load(w + i), VecF::load(x + i));
    }
    float s = ((a0 + a1) + (a2 + a3)).hsum();
    for (; i < n; ++i) {
        s += w[i] * x[i];
    }
    return bias + s;
}

namespace {

template <int NB>
void
fc_dot_batched_impl(const float *w, float bias, const float *const *xs,
                    i64 n, float *out)
{
    constexpr i64 L = VecF::kLanes;
    VecF acc[NB];
    for (int s = 0; s < NB; ++s) {
        acc[s] = VecF::zero();
    }
    i64 i = 0;
    for (; i + L <= n; i += L) {
        const VecF wv = VecF::load(w + i);
        for (int s = 0; s < NB; ++s) {
            acc[s] = acc[s].fma(wv, VecF::load(xs[s] + i));
        }
    }
    for (int s = 0; s < NB; ++s) {
        float t = acc[s].hsum();
        for (i64 j = i; j < n; ++j) {
            t += w[j] * xs[s][j];
        }
        out[s] = bias + t;
    }
}

} // namespace

void
fc_dot_batched_simd(const float *w, float bias, const float *const *xs,
                    i64 nb, i64 n, float *out)
{
    switch (nb) {
      case 1: fc_dot_batched_impl<1>(w, bias, xs, n, out); return;
      case 2: fc_dot_batched_impl<2>(w, bias, xs, n, out); return;
      case 3: fc_dot_batched_impl<3>(w, bias, xs, n, out); return;
      case 4: fc_dot_batched_impl<4>(w, bias, xs, n, out); return;
      case 5: fc_dot_batched_impl<5>(w, bias, xs, n, out); return;
      case 6: fc_dot_batched_impl<6>(w, bias, xs, n, out); return;
      case 7: fc_dot_batched_impl<7>(w, bias, xs, n, out); return;
      case 8: fc_dot_batched_impl<8>(w, bias, xs, n, out); return;
      default:
        throw InternalError("fc_dot_batched_simd: block width out of "
                            "range");
    }
}

void
relu_simd(const float *in, float *out, i64 n)
{
    constexpr i64 L = VecF::kLanes;
    const VecF zero = VecF::zero();
    i64 i = 0;
    for (; i + L <= n; i += L) {
        max(VecF::load(in + i), zero).store(out + i);
    }
    for (; i < n; ++i) {
        out[i] = in[i] > 0.0f ? in[i] : 0.0f;
    }
}

void
warp_apply_bilinear_simd(const float *plane, const i32 *o00,
                         const i32 *o01, const i32 *o10, const i32 *o11,
                         const i32 *k00, const i32 *k01, const i32 *k10,
                         const i32 *k11, const double *wx0,
                         const double *wx1, const double *wy0,
                         const double *wy1, i64 n, float *out)
{
    i64 p = 0;
#if defined(EVA2_SIMD_ISA_AVX2)
    // Four pixels per iteration in double precision: masked-gather
    // each corner's four floats (out-of-bounds corners select an
    // exact +0.0, the zero-padding value — see the header on why a
    // multiply-mask would not be bit-exact), widen, and evaluate the
    // exact expression tree of the scalar reference (mul/add only).
    const __m128 fzero = _mm_setzero_ps();
    for (; p + 4 <= n; p += 4) {
        const auto corner = [&](const i32 *o, const i32 *k) {
            const __m128i idx = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(o + p));
            const __m128 mask = _mm_castsi128_ps(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(k + p)));
            const __m128 f =
                _mm_mask_i32gather_ps(fzero, plane, idx, mask, 4);
            return _mm256_cvtps_pd(f);
        };
        const __m256d v00 = corner(o00, k00);
        const __m256d v01 = corner(o01, k01);
        const __m256d v10 = corner(o10, k10);
        const __m256d v11 = corner(o11, k11);
        const __m256d x0 = _mm256_loadu_pd(wx0 + p);
        const __m256d x1 = _mm256_loadu_pd(wx1 + p);
        const __m256d top = _mm256_add_pd(_mm256_mul_pd(v00, x0),
                                          _mm256_mul_pd(v01, x1));
        const __m256d bot = _mm256_add_pd(_mm256_mul_pd(v10, x0),
                                          _mm256_mul_pd(v11, x1));
        const __m256d res = _mm256_add_pd(
            _mm256_mul_pd(top, _mm256_loadu_pd(wy0 + p)),
            _mm256_mul_pd(bot, _mm256_loadu_pd(wy1 + p)));
        _mm_storeu_ps(out + p, _mm256_cvtpd_ps(res));
    }
#endif
    for (; p < n; ++p) {
        const double v00 =
            k00[p] ? static_cast<double>(plane[o00[p]]) : 0.0;
        const double v01 =
            k01[p] ? static_cast<double>(plane[o01[p]]) : 0.0;
        const double v10 =
            k10[p] ? static_cast<double>(plane[o10[p]]) : 0.0;
        const double v11 =
            k11[p] ? static_cast<double>(plane[o11[p]]) : 0.0;
        const double top = v00 * wx0[p] + v01 * wx1[p];
        const double bot = v10 * wx0[p] + v11 * wx1[p];
        out[p] = static_cast<float>(top * wy0[p] + bot * wy1[p]);
    }
}

void
warp_apply_nearest_simd(const float *plane, const i32 *off, i64 n,
                        float *out)
{
    i64 p = 0;
#if defined(EVA2_SIMD_ISA_AVX2)
    const __m256i neg1 = _mm256_set1_epi32(-1);
    const __m256 zero = _mm256_setzero_ps();
    for (; p + 8 <= n; p += 8) {
        const __m256i idx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(off + p));
        // mask lanes with off >= 0; masked-off lanes read nothing
        // and produce the zero-padding value.
        const __m256 mask =
            _mm256_castsi256_ps(_mm256_cmpgt_epi32(idx, neg1));
        const __m256 v =
            _mm256_mask_i32gather_ps(zero, plane, idx, mask, 4);
        _mm256_storeu_ps(out + p, v);
    }
#endif
    for (; p < n; ++p) {
        out[p] = off[p] >= 0 ? plane[off[p]] : 0.0f;
    }
}

#if defined(EVA2_SIMD_ISA_AVX2)
namespace {

/**
 * Lane-parallel |double(a) - double(b)| of four float lanes. The
 * widening happens before the subtraction — that order is part of
 * the bit-exactness contract with the scalar sad_span.
 */
inline __m256d
sad_abs_diff_pd(__m128 fa, __m128 fb)
{
    const __m256d sign = _mm256_set1_pd(-0.0);
    return _mm256_andnot_pd(
        sign, _mm256_sub_pd(_mm256_cvtps_pd(fa), _mm256_cvtps_pd(fb)));
}

/**
 * The fixed pairwise stripe reduction ((s0+s1)+(s2+s3)) +
 * ((s4+s5)+(s6+s7)) for stripe vectors lo = [s0..s3], hi = [s4..s7].
 * hadd interleaves the 128-bit lanes, giving [s01, s45, s23, s67];
 * adding its halves yields [s01+s23, s45+s67], and the final scalar
 * add matches the scalar tree's root exactly.
 */
inline double
sad_reduce_stripes(__m256d lo, __m256d hi)
{
    const __m256d h = _mm256_hadd_pd(lo, hi);
    const __m128d q = _mm_add_pd(_mm256_castpd256_pd128(h),
                                 _mm256_extractf128_pd(h, 1));
    return _mm_cvtsd_f64(q) + _mm_cvtsd_f64(_mm_unpackhi_pd(q, q));
}

/**
 * Tile row of whole 8-float groups (s = 8 * kGroups): keep each
 * tile's stripe vectors in registers and reduce tiles in transposed
 * batches of four so the horizontal work amortizes across the row.
 * Per tile, hadd + permute yield [s01, s23, s45, s67]; a second hadd
 * level pairs tiles into [A_L, B_L, A_H, B_H] (L = s01+s23,
 * H = s45+s67), and regrouping the 128-bit halves before the final
 * add produces each tile's exact scalar tree root
 * (s01+s23)+(s45+s67) — bit-exact, just four tiles at a time. The
 * compile-time group count lets the inner loop unroll fully for the
 * common receptive-field strides.
 */
template <i64 kGroups>
inline void
sad_tile_row_groups(const float *a, const float *b, i64 tiles,
                    double *acc)
{
    const i64 s = kGroups * 8;
    i64 t = 0;
    for (; t + 4 <= tiles; t += 4) {
        __m256d part[4];
        for (i64 j = 0; j < 4; ++j) {
            const float *pa = a + (t + j) * s;
            const float *pb = b + (t + j) * s;
            __m256d lo = _mm256_setzero_pd();
            __m256d hi = _mm256_setzero_pd();
            for (i64 g = 0; g < kGroups; ++g) {
                lo = _mm256_add_pd(
                    lo, sad_abs_diff_pd(_mm_loadu_ps(pa + g * 8),
                                        _mm_loadu_ps(pb + g * 8)));
                hi = _mm256_add_pd(
                    hi,
                    sad_abs_diff_pd(_mm_loadu_ps(pa + g * 8 + 4),
                                    _mm_loadu_ps(pb + g * 8 + 4)));
            }
            const __m256d h = _mm256_hadd_pd(lo, hi);
            part[j] =
                _mm256_permute4x64_pd(h, _MM_SHUFFLE(3, 1, 2, 0));
        }
        const __m256d q01 = _mm256_hadd_pd(part[0], part[1]);
        const __m256d q23 = _mm256_hadd_pd(part[2], part[3]);
        const __m256d lo128 = _mm256_permute2f128_pd(q01, q23, 0x20);
        const __m256d hi128 = _mm256_permute2f128_pd(q01, q23, 0x31);
        const __m256d sums = _mm256_add_pd(lo128, hi128);
        _mm256_storeu_pd(
            acc + t, _mm256_add_pd(_mm256_loadu_pd(acc + t), sums));
    }
    for (; t < tiles; ++t) {
        acc[t] += sad_span_simd(a + t * s, b + t * s, s);
    }
}

} // namespace
#endif

double
sad_span_simd(const float *a, const float *b, i64 n)
{
#if defined(EVA2_SIMD_ISA_AVX2)
    // Stripe vectors: lanes of `lo` are stripes 0..3, lanes of `hi`
    // stripes 4..7, accumulated in ascending-i order like the scalar
    // reference.
    __m256d lo = _mm256_setzero_pd();
    __m256d hi = _mm256_setzero_pd();
    i64 i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 fa = _mm256_loadu_ps(a + i);
        const __m256 fb = _mm256_loadu_ps(b + i);
        lo = _mm256_add_pd(lo,
                           sad_abs_diff_pd(_mm256_castps256_ps128(fa),
                                           _mm256_castps256_ps128(fb)));
        hi = _mm256_add_pd(hi,
                           sad_abs_diff_pd(_mm256_extractf128_ps(fa, 1),
                                           _mm256_extractf128_ps(fb, 1)));
    }
    if (i < n) {
        double st[8];
        _mm256_storeu_pd(st, lo);
        _mm256_storeu_pd(st + 4, hi);
        for (; i < n; ++i) {
            st[i % 8] += std::fabs(static_cast<double>(a[i]) -
                                   static_cast<double>(b[i]));
        }
        const double s01 = st[0] + st[1];
        const double s23 = st[2] + st[3];
        const double s45 = st[4] + st[5];
        const double s67 = st[6] + st[7];
        return (s01 + s23) + (s45 + s67);
    }
    return sad_reduce_stripes(lo, hi);
#else
    return sad_span(a, b, n);
#endif
}

void
sad_tile_row_simd(const float *a, const float *b, i64 tiles, i64 s,
                  double *acc)
{
#if defined(EVA2_SIMD_ISA_AVX2)
    if (s == 2) {
        // One 8-float load spans 4 tiles; hadd pairs the lanes into
        // per-tile sums [t0, t2, t1, t3], and the permute restores
        // tile order. A width-2 span's stripe reduction is exactly
        // e0+e1 (the other stripes are +0.0), so this is bit-exact.
        i64 t = 0;
        for (; t + 4 <= tiles; t += 4) {
            const __m256 fa = _mm256_loadu_ps(a + t * 2);
            const __m256 fb = _mm256_loadu_ps(b + t * 2);
            const __m256d d_lo =
                sad_abs_diff_pd(_mm256_castps256_ps128(fa),
                                _mm256_castps256_ps128(fb));
            const __m256d d_hi =
                sad_abs_diff_pd(_mm256_extractf128_ps(fa, 1),
                                _mm256_extractf128_ps(fb, 1));
            const __m256d h = _mm256_hadd_pd(d_lo, d_hi);
            const __m256d tile =
                _mm256_permute4x64_pd(h, _MM_SHUFFLE(3, 1, 2, 0));
            _mm256_storeu_pd(
                acc + t, _mm256_add_pd(_mm256_loadu_pd(acc + t), tile));
        }
        for (; t < tiles; ++t) {
            acc[t] += sad_span_simd(a + t * 2, b + t * 2, 2);
        }
        return;
    }
    if (s == 4) {
        // One 8-float load spans 2 tiles; two hadd levels produce
        // each tile's exact (e0+e1)+(e2+e3) reduction.
        i64 t = 0;
        for (; t + 2 <= tiles; t += 2) {
            const __m256 fa = _mm256_loadu_ps(a + t * 4);
            const __m256 fb = _mm256_loadu_ps(b + t * 4);
            const __m256d d_lo =
                sad_abs_diff_pd(_mm256_castps256_ps128(fa),
                                _mm256_castps256_ps128(fb));
            const __m256d d_hi =
                sad_abs_diff_pd(_mm256_extractf128_ps(fa, 1),
                                _mm256_extractf128_ps(fb, 1));
            const __m256d h = _mm256_hadd_pd(d_lo, d_hi);
            const __m128d q = _mm_add_pd(_mm256_castpd256_pd128(h),
                                         _mm256_extractf128_pd(h, 1));
            _mm_storeu_pd(acc + t,
                          _mm_add_pd(_mm_loadu_pd(acc + t), q));
        }
        for (; t < tiles; ++t) {
            acc[t] += sad_span_simd(a + t * 4, b + t * 4, 4);
        }
        return;
    }
    if (s % 8 == 0) {
        // Batched transposed reduction (sad_tile_row_groups) for the
        // common receptive-field strides; larger multiples of 8 fall
        // through to the per-tile path.
        switch (s / 8) {
          case 1: sad_tile_row_groups<1>(a, b, tiles, acc); return;
          case 2: sad_tile_row_groups<2>(a, b, tiles, acc); return;
          case 3: sad_tile_row_groups<3>(a, b, tiles, acc); return;
          case 4: sad_tile_row_groups<4>(a, b, tiles, acc); return;
          default: break;
        }
    }
    for (i64 t = 0; t < tiles; ++t) {
        acc[t] += sad_span_simd(a + t * s, b + t * s, s);
    }
#else
    sad_tile_row(a, b, tiles, s, acc);
#endif
}

} // namespace eva2
