/**
 * @file
 * Portable explicit-SIMD vector wrapper: one `Vec<float>` type over
 * AVX2, SSE2, and NEON, with a scalar fallback that keeps every call
 * site compilable (and correct) on any target.
 *
 * ISA selection is a *compile-time* property of the including
 * translation unit: the widest instruction set the TU is compiled for
 * wins (AVX2 > SSE2 > NEON > scalar), and `EVA2_SIMD_ENABLED=0`
 * forces the scalar fallback regardless of target flags. The build
 * compiles exactly one designated TU (src/simd/simd_kernels.cc) with
 * elevated ISA flags (`-mavx2 -mfma` on x86_64 under the EVA2_SIMD
 * CMake option), so this header must only be included from TUs that
 * are either ISA-flagged or content with the baseline ISA — including
 * it from two TUs compiled for different ISAs is an ODR violation.
 * Everything else reaches the SIMD kernels through the plain-function
 * interface in simd_kernels.h, which is safe to include anywhere.
 *
 * Numerics contract (what the two-tier verification story leans on):
 *
 *  - add/mul/max are lane-wise IEEE single ops: vectorizing a loop
 *    across independent outputs with them is *value-safe* (each
 *    lane's operation sequence equals the scalar loop's).
 *  - fma() fuses the multiply-add (no intermediate rounding) where
 *    the ISA has it — faster and *more* accurate than mul+add, but
 *    not bit-identical to it. Kernels that must stay bit-exact with
 *    the scalar reference use mul+add; kernels gated by the
 *    bounded-divergence check use fma.
 *  - hsum() reduces lanes pairwise (tree order) — a reassociation of
 *    the scalar left-to-right sum, again bounded-divergence only.
 *
 * The designated SIMD TUs are compiled with -ffp-contract=off so the
 * compiler cannot *implicitly* fuse what the kernels spell out as
 * mul+add; every fma in a kernel is an explicit fma() call.
 */
#ifndef EVA2_SIMD_VEC_H
#define EVA2_SIMD_VEC_H

#include "util/common.h"

#ifndef EVA2_SIMD_ENABLED
#define EVA2_SIMD_ENABLED 1
#endif

#if EVA2_SIMD_ENABLED && defined(__AVX2__) && defined(__FMA__)
#define EVA2_SIMD_ISA_AVX2 1
#include <immintrin.h>
#elif EVA2_SIMD_ENABLED && defined(__SSE2__)
#define EVA2_SIMD_ISA_SSE2 1
#include <emmintrin.h>
#elif EVA2_SIMD_ENABLED && defined(__ARM_NEON)
#define EVA2_SIMD_ISA_NEON 1
#include <arm_neon.h>
#else
#define EVA2_SIMD_ISA_SCALAR 1
#endif

namespace eva2 {
namespace simd {

template <typename T> struct Vec;

#if defined(EVA2_SIMD_ISA_AVX2)

/** The ISA this TU's Vec maps to, for reports. */
constexpr const char *kIsaName = "avx2";

template <> struct Vec<float>
{
    static constexpr i64 kLanes = 8;
    __m256 v;

    static Vec zero() { return {_mm256_setzero_ps()}; }
    static Vec broadcast(float x) { return {_mm256_set1_ps(x)}; }
    static Vec load(const float *p) { return {_mm256_loadu_ps(p)}; }
    void store(float *p) const { _mm256_storeu_ps(p, v); }

    friend Vec
    operator+(Vec a, Vec b)
    {
        return {_mm256_add_ps(a.v, b.v)};
    }
    friend Vec
    operator*(Vec a, Vec b)
    {
        return {_mm256_mul_ps(a.v, b.v)};
    }
    friend Vec
    max(Vec a, Vec b)
    {
        return {_mm256_max_ps(a.v, b.v)};
    }
    /** this = a * b + this, fused (single rounding). */
    Vec
    fma(Vec a, Vec b) const
    {
        return {_mm256_fmadd_ps(a.v, b.v, v)};
    }
    /** Pairwise (tree-order) horizontal sum of the lanes. */
    float
    hsum() const
    {
        const __m128 lo = _mm256_castps256_ps128(v);
        const __m128 hi = _mm256_extractf128_ps(v, 1);
        __m128 s = _mm_add_ps(lo, hi);           // 0+4 1+5 2+6 3+7
        s = _mm_add_ps(s, _mm_movehl_ps(s, s));  // +lanes 2,3
        s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
        return _mm_cvtss_f32(s);
    }
};

#elif defined(EVA2_SIMD_ISA_SSE2)

constexpr const char *kIsaName = "sse2";

template <> struct Vec<float>
{
    static constexpr i64 kLanes = 4;
    __m128 v;

    static Vec zero() { return {_mm_setzero_ps()}; }
    static Vec broadcast(float x) { return {_mm_set1_ps(x)}; }
    static Vec load(const float *p) { return {_mm_loadu_ps(p)}; }
    void store(float *p) const { _mm_storeu_ps(p, v); }

    friend Vec
    operator+(Vec a, Vec b)
    {
        return {_mm_add_ps(a.v, b.v)};
    }
    friend Vec
    operator*(Vec a, Vec b)
    {
        return {_mm_mul_ps(a.v, b.v)};
    }
    friend Vec
    max(Vec a, Vec b)
    {
        return {_mm_max_ps(a.v, b.v)};
    }
    /** SSE2 has no fused op: mul+add (two roundings). */
    Vec
    fma(Vec a, Vec b) const
    {
        return {_mm_add_ps(v, _mm_mul_ps(a.v, b.v))};
    }
    float
    hsum() const
    {
        __m128 s = _mm_add_ps(v, _mm_movehl_ps(v, v));
        s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
        return _mm_cvtss_f32(s);
    }
};

#elif defined(EVA2_SIMD_ISA_NEON)

constexpr const char *kIsaName = "neon";

template <> struct Vec<float>
{
    static constexpr i64 kLanes = 4;
    float32x4_t v;

    static Vec zero() { return {vdupq_n_f32(0.0f)}; }
    static Vec broadcast(float x) { return {vdupq_n_f32(x)}; }
    static Vec load(const float *p) { return {vld1q_f32(p)}; }
    void store(float *p) const { vst1q_f32(p, v); }

    friend Vec
    operator+(Vec a, Vec b)
    {
        return {vaddq_f32(a.v, b.v)};
    }
    friend Vec
    operator*(Vec a, Vec b)
    {
        return {vmulq_f32(a.v, b.v)};
    }
    friend Vec
    max(Vec a, Vec b)
    {
        return {vmaxq_f32(a.v, b.v)};
    }
    Vec
    fma(Vec a, Vec b) const
    {
#if defined(__aarch64__)
        return {vfmaq_f32(v, a.v, b.v)}; // Fused on AArch64.
#else
        return {vmlaq_f32(v, a.v, b.v)};
#endif
    }
    float
    hsum() const
    {
#if defined(__aarch64__)
        // vaddvq is a pairwise tree reduction, matching the
        // documented hsum order.
        const float32x2_t lohi =
            vadd_f32(vget_low_f32(v), vget_high_f32(v));
        return vget_lane_f32(vpadd_f32(lohi, lohi), 0);
#else
        const float32x2_t lohi =
            vadd_f32(vget_low_f32(v), vget_high_f32(v));
        const float32x2_t s = vpadd_f32(lohi, lohi);
        return vget_lane_f32(s, 0);
#endif
    }
};

#else // EVA2_SIMD_ISA_SCALAR

constexpr const char *kIsaName = "scalar";

/**
 * Single-lane fallback: every wrapper call site compiles and runs
 * (correctly, just not faster) on targets with no vector unit and in
 * EVA2_SIMD=OFF builds.
 */
template <> struct Vec<float>
{
    static constexpr i64 kLanes = 1;
    float v;

    static Vec zero() { return {0.0f}; }
    static Vec broadcast(float x) { return {x}; }
    static Vec load(const float *p) { return {*p}; }
    void store(float *p) const { *p = v; }

    friend Vec operator+(Vec a, Vec b) { return {a.v + b.v}; }
    friend Vec operator*(Vec a, Vec b) { return {a.v * b.v}; }
    friend Vec
    max(Vec a, Vec b)
    {
        return {a.v > b.v ? a.v : b.v};
    }
    Vec fma(Vec a, Vec b) const { return {v + a.v * b.v}; }
    float hsum() const { return v; }
};

#endif

using VecF = Vec<float>;

/** True when this TU's Vec<float> is a real vector type. */
constexpr bool
compiled_simd()
{
    return VecF::kLanes > 1;
}

} // namespace simd
} // namespace eva2

#endif // EVA2_SIMD_VEC_H
