#include "hw/warp_engine_sim.h"

#include <cmath>

namespace eva2 {

i16
interpolate_q88(i16 v00, i16 v01, i16 v10, i16 v11, i32 fu, i32 fv)
{
    invariant(fu >= 0 && fu <= 256 && fv >= 0 && fv <= 256,
              "interpolate_q88: fraction out of range");
    // Weighting units: each computes value * wu * wv with 8-bit
    // weight factors; products are accumulated wide (Figure 11's
    // "wide intermediate values").
    const i64 w00 = static_cast<i64>(256 - fu) * (256 - fv);
    const i64 w01 = static_cast<i64>(256 - fu) * fv;
    const i64 w10 = static_cast<i64>(fu) * (256 - fv);
    const i64 w11 = static_cast<i64>(fu) * fv;
    i64 acc = static_cast<i64>(v00) * w00 + static_cast<i64>(v01) * w01 +
              static_cast<i64>(v10) * w10 + static_cast<i64>(v11) * w11;
    // Shift back to Q8.8 with round-to-nearest.
    acc += i64{1} << 15;
    acc >>= 16;
    if (acc > 32767) {
        acc = 32767;
    }
    if (acc < -32768) {
        acc = -32768;
    }
    return static_cast<i16>(acc);
}

WarpEngineResult
simulate_warp_engine(const RleActivation &key_activation,
                     const MotionField &field, i64 rf_stride)
{
    const Shape shape = key_activation.shape;
    require(field.height() == shape.h && field.width() == shape.w,
            "warp engine: field grid does not match activation");
    require(rf_stride > 0, "warp engine: stride must be positive");

    // Decode the stored activation into a dense Q8.8 plane set; the
    // lanes' zero-skipping is modelled in the cycle accounting below.
    const Tensor dense = rle_decode(key_activation);

    WarpEngineResult result;
    result.output = Tensor(shape);

    auto raw_at = [&](i64 c, i64 y, i64 x) -> i16 {
        if (y < 0 || y >= shape.h || x < 0 || x >= shape.w) {
            return 0;
        }
        return static_cast<i16>(
            Q88::from_double(dense.at(c, y, x)).raw());
    };

    const double inv_stride = 1.0 / static_cast<double>(rf_stride);
    for (i64 y = 0; y < shape.h; ++y) {
        for (i64 x = 0; x < shape.w; ++x) {
            const Vec2 v = field.at(y, x);
            double sy = static_cast<double>(y) + v.dy * inv_stride;
            double sx = static_cast<double>(x) + v.dx * inv_stride;
            i64 y0 = static_cast<i64>(std::floor(sy));
            i64 x0 = static_cast<i64>(std::floor(sx));
            // 8-bit fractional part of the motion vector (the "(u,v)"
            // input of Figure 9), with carry when rounding hits 256.
            i32 fu = static_cast<i32>(
                std::lround((sy - static_cast<double>(y0)) * 256.0));
            i32 fv = static_cast<i32>(
                std::lround((sx - static_cast<double>(x0)) * 256.0));
            if (fu == 256) {
                fu = 0;
                ++y0;
            }
            if (fv == 256) {
                fv = 0;
                ++x0;
            }

            // All channels at this spatial location share the lane
            // fetch; model the per-channel pipeline.
            i64 nonzero_channels = 0;
            for (i64 c = 0; c < shape.c; ++c) {
                const i16 v00 = raw_at(c, y0, x0);
                const i16 v01 = raw_at(c, y0, x0 + 1);
                const i16 v10 = raw_at(c, y0 + 1, x0);
                const i16 v11 = raw_at(c, y0 + 1, x0 + 1);
                if (v00 == 0 && v01 == 0 && v10 == 0 && v11 == 0) {
                    continue;
                }
                ++nonzero_channels;
                const i16 out =
                    interpolate_q88(v00, v01, v10, v11, fu, fv);
                result.output.at(c, y, x) = static_cast<float>(
                    Q88::from_raw(out).to_double());
            }
            // One interpolator issue per non-zero neighbourhood; the
            // min unit jumps over shared zero runs 16 values per
            // cycle.
            result.interpolations += nonzero_channels;
            const i64 skipped = shape.c - nonzero_channels;
            result.zero_skips += skipped;
            result.cycles += nonzero_channels + (skipped + 15) / 16;
        }
    }
    return result;
}

} // namespace eva2
