#include "hw/vpu.h"

namespace eva2 {

namespace {

/** Index of the named layer in a spec; ConfigError when missing. */
i64
spec_layer_index(const NetworkSpec &spec, const std::string &name)
{
    for (size_t i = 0; i < spec.layers.size(); ++i) {
        if (spec.layers[i].name == name) {
            return static_cast<i64>(i);
        }
    }
    throw ConfigError("layer '" + name + "' not found in " + spec.name);
}

} // namespace

VpuReport
vpu_report(const NetworkSpec &spec, const VpuOptions &options)
{
    const std::string target =
        options.target_layer.empty() ? spec.late_target
                                     : options.target_layer;
    const i64 target_idx = spec_layer_index(spec, target);

    const EyerissModel eyeriss(EyerissModel::family_for(spec));
    const EieModel eie;
    const std::vector<LayerCost> costs = analyze(spec);

    Eva2Config eva2_cfg = eva2_config_for(spec, target);
    eva2_cfg.activation_sparsity = options.activation_sparsity;
    const Eva2Model eva2(eva2_cfg);

    VpuReport report;
    report.network = spec.name;
    report.target_layer = target;

    // Baseline: the whole network on Eyeriss + EIE, no EVA2.
    for (size_t i = 0; i < costs.size(); ++i) {
        const LayerCost &layer = costs[i];
        if (layer.kind == LayerKind::kConv) {
            report.orig.eyeriss =
                report.orig.eyeriss + eyeriss.conv_cost(layer.macs);
        } else if (layer.kind == LayerKind::kFc) {
            report.orig.eie = report.orig.eie + eie.fc_cost(layer.macs);
        }
    }

    // Key frame: full network plus EVA2's admission/ME/store overhead.
    report.key = report.orig;
    report.key.eva2 = eva2.key_frame_cost();

    // Predicted frame: EVA2 plus the suffix only.
    for (size_t i = static_cast<size_t>(target_idx) + 1; i < costs.size();
         ++i) {
        const LayerCost &layer = costs[i];
        if (layer.kind == LayerKind::kConv) {
            report.pred.eyeriss =
                report.pred.eyeriss + eyeriss.conv_cost(layer.macs);
        } else if (layer.kind == LayerKind::kFc) {
            report.pred.eie = report.pred.eie + eie.fc_cost(layer.macs);
        }
    }
    report.pred.eva2 = eva2.predicted_frame_cost();
    return report;
}

Eva2Area
vpu_eva2_area(const NetworkSpec &spec, const VpuOptions &options)
{
    // Buffers are sized for the live video resolution (spec.input),
    // which is what dominates EVA2's floorplan.
    Eva2Config cfg =
        eva2_config_for(spec, options.target_layer, spec.input);
    cfg.activation_sparsity = options.activation_sparsity;
    return Eva2Model(cfg).area();
}

} // namespace eva2
