/**
 * @file
 * Cycle-level simulation of EVA2's motion-estimation pipeline: the
 * diff tile producer and consumer of Section III-A (Figure 8).
 *
 * The producer walks tiles and search offsets, computing absolute
 * pixel differences through an adder tree of configurable width. The
 * consumer slides a receptive-field window over the incoming tile
 * differences, adding the new tile column at the leading edge and
 * subtracting the old column at the trailing edge (the rolling
 * strategy the hardware uses instead of exhaustive sums), checking
 * each result against a min-check register.
 *
 * This is an independent implementation of RFBME; tests verify it
 * produces the same motion vectors as the functional rfbme().
 */
#ifndef EVA2_HW_DIFF_TILE_SIM_H
#define EVA2_HW_DIFF_TILE_SIM_H

#include "flow/rfbme.h"

namespace eva2 {

/** Result of simulating the diff tile pipeline over one frame pair. */
struct DiffTileSimResult
{
    MotionField field;             ///< Same convention as RfbmeResult.
    std::vector<double> rf_errors; ///< Per-RF minimum mean difference.
    double total_error = 0.0;
    i64 producer_cycles = 0;
    i64 consumer_cycles = 0;

    i64 total_cycles() const { return producer_cycles + consumer_cycles; }

    /** Wall-clock time at the EVA2 clock. */
    double
    latency_ms(double clock_period_ns = 7.0) const
    {
        return static_cast<double>(total_cycles()) * clock_period_ns *
               1e-6;
    }
};

/**
 * Simulate the producer/consumer pipeline.
 *
 * @param key              Stored key frame (single channel).
 * @param current          Incoming frame.
 * @param config           Receptive-field and search geometry.
 * @param adder_tree_width Pixel differences the producer's adder tree
 *                         retires per cycle.
 */
DiffTileSimResult simulate_diff_tile_pipeline(const Tensor &key,
                                              const Tensor &current,
                                              const RfbmeConfig &config,
                                              i64 adder_tree_width = 8);

} // namespace eva2

#endif // EVA2_HW_DIFF_TILE_SIM_H
