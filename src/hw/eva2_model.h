/**
 * @file
 * First-order cost and area model of the EVA2 unit itself: the diff
 * tile producer/consumer (RFBME), the warp engine, and the pixel /
 * key-activation buffers (Sections III and IV-A/B).
 */
#ifndef EVA2_HW_EVA2_MODEL_H
#define EVA2_HW_EVA2_MODEL_H

#include "cnn/model_zoo.h"
#include "cnn/receptive_field.h"
#include "hw/accelerator_model.h"
#include "hw/memory_model.h"

namespace eva2 {

/**
 * Analytic operation counts for motion estimation, following the
 * paper's Section IV-A formulas exactly.
 */
struct RfbmeOpModel
{
    i64 layer_h = 0; ///< Target activation rows.
    i64 layer_w = 0; ///< Target activation columns.
    i64 rf_size = 0;
    i64 rf_stride = 1;
    i64 search_radius = 24;
    i64 search_stride = 8;

    /** Ops for exhaustive per-receptive-field matching (no reuse). */
    i64
    unoptimized_ops() const
    {
        const i64 positions = layer_h * layer_w;
        const i64 offsets_1d = 2 * search_radius / search_stride;
        return positions * offsets_1d * offsets_1d * rf_size * rf_size;
    }

    /** Ops with RFBME's tile-level reuse. */
    i64
    rfbme_ops() const
    {
        const i64 positions = layer_h * layer_w;
        const i64 tiles_per_rf = rf_size / rf_stride;
        return unoptimized_ops() / (rf_stride * rf_stride) +
               positions * tiles_per_rf * tiles_per_rf;
    }
};

/** Area breakdown of the EVA2 unit (Figure 12 discussion). */
struct Eva2Area
{
    MemoryMacro pixel_buffer_a;
    MemoryMacro pixel_buffer_b;
    MemoryMacro activation_buffer;
    double logic_mm2 = 0.0;

    double total_mm2(const TechParams &tech = default_tech()) const;
    double pixel_buffer_fraction(const TechParams &tech =
                                     default_tech()) const;
    double activation_buffer_fraction(const TechParams &tech =
                                          default_tech()) const;

    /** EVA2's share of a VPU that also has Eyeriss and EIE. */
    double vpu_fraction(const TechParams &tech = default_tech()) const;
};

/** Configuration of the EVA2 unit for one deployment. */
struct Eva2Config
{
    i64 image_h = 0; ///< Video frame rows (pixel buffer sizing).
    i64 image_w = 0; ///< Video frame columns.
    i64 act_c = 0;   ///< Target activation channels.
    i64 act_h = 0;   ///< Target activation rows.
    i64 act_w = 0;   ///< Target activation columns.
    i64 rf_size = 0;
    i64 rf_stride = 1;
    i64 search_radius = 24;
    i64 search_stride = 8;
    /**
     * Fraction of target activation values that are zero. Compressed
     * storage is derived from this through the RLE entry width (24-bit
     * gap+value entries vs a 16-bit dense baseline), so at the
     * sparsity of trained networks (~0.87-0.91) the model reproduces
     * the paper's 80-87% storage savings.
     */
    double activation_sparsity = 0.87;
    /** Adds the diff-tile adder trees retire per cycle. */
    i64 me_adds_per_cycle = 256;
    /** Pixels the input path writes to the pixel buffer per cycle. */
    i64 pixel_write_per_cycle = 8;
    /** Whether predicted frames warp (false = memoization only). */
    bool motion_compensation = true;
};

/** Per-frame costs of the EVA2 unit itself. */
class Eva2Model
{
  public:
    explicit Eva2Model(Eva2Config config,
                       TechParams tech = default_tech());

    const Eva2Config &config() const { return config_; }

    /** Analytic op model for this deployment. */
    RfbmeOpModel op_model() const;

    /** Motion estimation (diff tile producer + consumer). */
    HwCost motion_estimation_cost() const;

    /** Warp engine (sparsity decode + bilinear interpolation). */
    HwCost warp_cost() const;

    /** Writing the incoming frame into a pixel buffer. */
    HwCost frame_admission_cost() const;

    /** RLE-encoding and storing the key activation. */
    HwCost activation_store_cost() const;

    /** Total EVA2-side cost of a predicted frame. */
    HwCost predicted_frame_cost() const;

    /** Total EVA2-side overhead added to a key frame. */
    HwCost key_frame_cost() const;

    /** Area breakdown for this deployment. */
    Eva2Area area() const;

    /** Values in the target activation. */
    i64 act_values() const { return config_.act_c * config_.act_h *
                                    config_.act_w; }

    /** Dense 16-bit storage footprint of the target activation. */
    i64 dense_act_bytes() const { return act_values() * 2; }

    /**
     * RLE storage footprint at the configured sparsity (3-byte
     * entries per non-zero value, capped at the dense size).
     */
    i64 compressed_act_bytes() const;

  private:
    Eva2Config config_;
    TechParams tech_;
};

/**
 * Derive an Eva2Config from a network spec and a target layer name,
 * sizing buffers for the video input resolution and motion estimation
 * for the target's receptive field.
 *
 * @param spec        The network.
 * @param target_name Target layer (defaults to spec.late_target when
 *                    empty).
 * @param input       Input size basis; {0,0,0} uses spec.cost_input.
 */
Eva2Config eva2_config_for(const NetworkSpec &spec,
                           const std::string &target_name = "",
                           Shape input = Shape{0, 0, 0});

/** Receptive field of a named layer computed from a spec. */
ReceptiveField spec_receptive_field(const NetworkSpec &spec,
                                    const std::string &target_name);

} // namespace eva2

#endif // EVA2_HW_EVA2_MODEL_H
