#include "hw/memory_model.h"

namespace eva2 {

double
MemoryMacro::area_mm2(const TechParams &tech) const
{
    const double mib = static_cast<double>(bytes) / (1024.0 * 1024.0);
    const double density = kind == MemKind::kEdram
                               ? tech.edram_mm2_per_mib
                               : tech.sram_mm2_per_mib;
    // Small macros pay a fixed periphery overhead.
    return 0.01 + mib * density;
}

double
MemoryMacro::access_energy_pj(i64 n, const TechParams &tech) const
{
    const double per_byte = kind == MemKind::kEdram
                                ? tech.edram_pj_per_byte
                                : tech.sram_pj_per_byte;
    return static_cast<double>(n) * per_byte;
}

} // namespace eva2
