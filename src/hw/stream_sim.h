/**
 * @file
 * Stream simulation: couple the functional AMC pipeline with the VPU
 * hardware cost model to produce a per-frame deployment timeline.
 *
 * The paper's evaluation reports averages (Figure 13, Table I); a
 * downstream user deploying EVA2 also wants the *trajectory* — which
 * frames paid full cost, what the instantaneous frame latency and
 * energy were, and what the stream totals come to under a given
 * policy. StreamSimulator runs the real AmcPipeline (so key/predicted
 * decisions come from actual motion estimation on actual frames) and
 * charges each frame the hardware model's cost for its type.
 */
#ifndef EVA2_HW_STREAM_SIM_H
#define EVA2_HW_STREAM_SIM_H

#include <vector>

#include "core/amc_pipeline.h"
#include "hw/vpu.h"
#include "video/frame.h"

namespace eva2 {

/** One simulated frame of a deployment timeline. */
struct FrameTrace
{
    i64 index = 0;
    bool is_key = false;
    double match_error = 0.0;  ///< RFBME feature the policy saw.
    HwCost cost;               ///< Modeled whole-VPU cost.
    i64 me_add_ops = 0;        ///< Measured RFBME ops (functional).
};

/** Totals over a simulated stream. */
struct StreamReport
{
    std::string network;
    std::vector<FrameTrace> frames;
    HwCost total;          ///< Sum over the timeline.
    HwCost baseline_total; ///< Same stream, every frame precise.
    i64 key_frames = 0;

    i64 frame_count() const { return static_cast<i64>(frames.size()); }

    double
    key_fraction() const
    {
        return frames.empty() ? 0.0
                              : static_cast<double>(key_frames) /
                                    static_cast<double>(frames.size());
    }

    /** Energy saved relative to precise per-frame execution. */
    double
    energy_savings() const
    {
        return baseline_total.energy_mj <= 0.0
                   ? 0.0
                   : 1.0 - total.energy_mj / baseline_total.energy_mj;
    }
};

/**
 * Runs a labelled sequence through an AmcPipeline and charges each
 * frame the hardware model's cost for its type.
 */
class StreamSimulator
{
  public:
    /**
     * @param spec    Network spec for the hardware model (full-size
     *                cost basis).
     * @param options Hardware model options (target layer, sparsity).
     */
    explicit StreamSimulator(const NetworkSpec &spec,
                             const VpuOptions &options = {});

    /**
     * Simulate a sequence: the pipeline (borrowed) processes every
     * frame; its key/predicted decisions drive the cost accounting.
     * The pipeline is reset first so each simulation starts clean.
     */
    StreamReport simulate(AmcPipeline &pipeline,
                          const Sequence &sequence) const;

    const VpuReport &hw() const { return hw_; }

  private:
    VpuReport hw_;
};

} // namespace eva2

#endif // EVA2_HW_STREAM_SIM_H
