#include "hw/eva2_model.h"

#include <algorithm>
#include <cmath>

namespace eva2 {

double
Eva2Area::total_mm2(const TechParams &tech) const
{
    return pixel_buffer_a.area_mm2(tech) + pixel_buffer_b.area_mm2(tech) +
           activation_buffer.area_mm2(tech) + logic_mm2;
}

double
Eva2Area::pixel_buffer_fraction(const TechParams &tech) const
{
    return (pixel_buffer_a.area_mm2(tech) +
            pixel_buffer_b.area_mm2(tech)) /
           total_mm2(tech);
}

double
Eva2Area::activation_buffer_fraction(const TechParams &tech) const
{
    return activation_buffer.area_mm2(tech) / total_mm2(tech);
}

double
Eva2Area::vpu_fraction(const TechParams &tech) const
{
    const double mine = total_mm2(tech);
    return mine /
           (mine + EyerissModel::area_mm2 + EieModel::area_mm2);
}

Eva2Model::Eva2Model(Eva2Config config, TechParams tech)
    : config_(config), tech_(tech)
{
    require(config.image_h > 0 && config.image_w > 0,
            "eva2 model: image dimensions required");
    require(config.act_c > 0 && config.act_h > 0 && config.act_w > 0,
            "eva2 model: activation dimensions required");
    require(config.rf_stride > 0 && config.rf_size > 0,
            "eva2 model: receptive field required");
}

RfbmeOpModel
Eva2Model::op_model() const
{
    RfbmeOpModel m;
    m.layer_h = config_.act_h;
    m.layer_w = config_.act_w;
    m.rf_size = config_.rf_size;
    m.rf_stride = config_.rf_stride;
    m.search_radius = config_.search_radius;
    m.search_stride = config_.search_stride;
    return m;
}

i64
Eva2Model::compressed_act_bytes() const
{
    // RLE stores one 3-byte (8-bit gap + 16-bit value) entry per
    // non-zero value; the dense baseline is 2 bytes per value. Never
    // report more than dense: the buffer would simply store raw.
    const double nonzero =
        static_cast<double>(act_values()) *
        (1.0 - config_.activation_sparsity);
    return std::min(dense_act_bytes(),
                    static_cast<i64>(std::llround(nonzero * 3.0)));
}

HwCost
Eva2Model::motion_estimation_cost() const
{
    const i64 ops = op_model().rfbme_ops();
    HwCost cost;
    const double cycles = static_cast<double>(ops) /
                          static_cast<double>(config_.me_adds_per_cycle);
    cost.latency_ms = cycles * tech_.clock_period_ns * 1e-6;
    // Each op consumes one 8-bit pixel fetched from an SRAM-backed
    // tile buffer plus one 16-bit add.
    cost.energy_mj = static_cast<double>(ops) *
                     (tech_.add_energy_pj + tech_.sram_pj_per_byte) *
                     1e-9;
    return cost;
}

HwCost
Eva2Model::warp_cost() const
{
    HwCost cost;
    if (!config_.motion_compensation) {
        return cost;
    }
    const double nonzero =
        static_cast<double>(act_values()) *
        (1.0 - config_.activation_sparsity);
    // One interpolated output per cycle for non-zero neighbourhoods;
    // zero runs are skipped by the sparsity decoder lanes at 16
    // values per cycle (Section III-B / V point 4).
    const double cycles = nonzero + static_cast<double>(act_values()) /
                                        16.0;
    cost.latency_ms = cycles * tech_.clock_period_ns * 1e-6;
    // Four weighting-unit MACs per produced value, plus reading the
    // compressed activation from and writing it back to eDRAM.
    cost.energy_mj = (nonzero * 4.0 * tech_.mac_energy_pj +
                      2.0 * static_cast<double>(compressed_act_bytes()) *
                          tech_.edram_pj_per_byte) *
                     1e-9;
    return cost;
}

HwCost
Eva2Model::frame_admission_cost() const
{
    const double pixels =
        static_cast<double>(config_.image_h * config_.image_w);
    HwCost cost;
    cost.latency_ms = pixels /
                      static_cast<double>(config_.pixel_write_per_cycle) *
                      tech_.clock_period_ns * 1e-6;
    cost.energy_mj = pixels * tech_.edram_pj_per_byte * 1e-9;
    return cost;
}

HwCost
Eva2Model::activation_store_cost() const
{
    const double bytes = static_cast<double>(compressed_act_bytes());
    HwCost cost;
    // The RLE encoder keeps pace with the layer accelerator's output
    // stream; we charge 2 bytes per cycle of drain plus the eDRAM
    // write energy.
    cost.latency_ms = bytes / 2.0 * tech_.clock_period_ns * 1e-6;
    cost.energy_mj = bytes * tech_.edram_pj_per_byte * 1e-9;
    return cost;
}

HwCost
Eva2Model::predicted_frame_cost() const
{
    return frame_admission_cost() + motion_estimation_cost() +
           warp_cost();
}

HwCost
Eva2Model::key_frame_cost() const
{
    // Key frames still pay admission and motion estimation (the
    // adaptive policy's features come from RFBME) plus the activation
    // store.
    return frame_admission_cost() + motion_estimation_cost() +
           activation_store_cost();
}

Eva2Area
Eva2Model::area() const
{
    Eva2Area area;
    const i64 frame_bytes = config_.image_h * config_.image_w;
    area.pixel_buffer_a =
        MemoryMacro{"pixel buffer A", MemKind::kEdram, frame_bytes};
    area.pixel_buffer_b =
        MemoryMacro{"pixel buffer B", MemKind::kEdram, frame_bytes};
    area.activation_buffer = MemoryMacro{
        "key activation buffer", MemKind::kEdram, compressed_act_bytes()};
    // Synthesized datapath plus the small SRAM tile/partial-sum
    // memories, fixed across deployments.
    area.logic_mm2 = 0.75;
    return area;
}

ReceptiveField
spec_receptive_field(const NetworkSpec &spec,
                     const std::string &target_name)
{
    ReceptiveField rf;
    for (const LayerSpec &l : spec.layers) {
        if (l.kind == LayerKind::kFc || l.kind == LayerKind::kSoftmax) {
            break;
        }
        rf = rf.compose(WindowGeometry{l.kernel, l.stride, l.pad});
        if (l.name == target_name) {
            return rf;
        }
    }
    throw ConfigError("target layer '" + target_name +
                      "' not found among spatial layers of " + spec.name);
}

Eva2Config
eva2_config_for(const NetworkSpec &spec, const std::string &target_name,
                Shape input)
{
    const std::string target =
        target_name.empty() ? spec.late_target : target_name;
    if (input.size() == 0) {
        input = spec.cost_input;
    }
    Eva2Config config;
    config.image_h = input.h;
    config.image_w = input.w;

    const std::vector<LayerCost> costs = analyze_at(spec, input);
    bool found = false;
    for (const LayerCost &c : costs) {
        if (c.name == target) {
            config.act_c = c.out.c;
            config.act_h = c.out.h;
            config.act_w = c.out.w;
            found = true;
            break;
        }
    }
    require(found, "eva2_config_for: target layer '" + target +
                       "' not in " + spec.name);

    const ReceptiveField rf = spec_receptive_field(spec, target);
    config.rf_size = rf.size;
    config.rf_stride = rf.stride;
    config.motion_compensation = spec.task == VisionTask::kDetection;
    return config;
}

} // namespace eva2
