/**
 * @file
 * Simulation of EVA2's warp engine (Section III-B, Figures 9-11):
 * four sparsity decoder lanes feed a two-stage fixed-point bilinear
 * interpolator; a min unit lets all four lanes skip shared zero runs.
 *
 * The simulator reproduces the datapath's arithmetic exactly — 16-bit
 * Q8.8 activations, 8-bit motion-vector fractions, wide intermediate
 * products shifted back to 16 bits — and counts cycles with the
 * zero-skipping behaviour that makes motion compensation cost
 * proportional to activation density.
 */
#ifndef EVA2_HW_WARP_ENGINE_SIM_H
#define EVA2_HW_WARP_ENGINE_SIM_H

#include "flow/motion_field.h"
#include "sparse/rle.h"

namespace eva2 {

/** Result of one warp engine pass. */
struct WarpEngineResult
{
    Tensor output;          ///< Warped activation, Q8.8-quantized.
    i64 cycles = 0;         ///< Pipeline cycles consumed.
    i64 interpolations = 0; ///< Outputs that needed the interpolator.
    i64 zero_skips = 0;     ///< Outputs skipped as all-zero.

    double
    latency_ms(double clock_period_ns = 7.0) const
    {
        return static_cast<double>(cycles) * clock_period_ns * 1e-6;
    }
};

/**
 * Fixed-point bilinear interpolation of one 2x2 neighbourhood, the
 * exact weighting-unit arithmetic: fu/fv are 8-bit fractions (0-256),
 * values are Q8.8 raw; the weighted sum is computed wide and shifted
 * back. Exposed for unit testing against the float reference.
 */
i16 interpolate_q88(i16 v00, i16 v01, i16 v10, i16 v11, i32 fu, i32 fv);

/**
 * Run the warp engine over a stored (RLE-encoded) key activation.
 *
 * @param key_activation Encoded target activation from the key frame.
 * @param field          Backward source offsets in pixel units on the
 *                       activation grid (same convention as
 *                       warp_activation()).
 * @param rf_stride      Cumulative receptive-field stride.
 */
WarpEngineResult simulate_warp_engine(const RleActivation &key_activation,
                                      const MotionField &field,
                                      i64 rf_stride);

} // namespace eva2

#endif // EVA2_HW_WARP_ENGINE_SIM_H
