/**
 * @file
 * The composite vision processing unit model (Figure 5): Eyeriss for
 * conv layers, EIE for FC layers, EVA2 in front. Produces the
 * per-frame cost stacks behind Figure 13 and Table I: `orig` (the
 * baseline without EVA2), `key` (full CNN plus EVA2 overhead), `pred`
 * (EVA2 plus the CNN suffix only), and weighted averages for a given
 * key-frame fraction.
 */
#ifndef EVA2_HW_VPU_H
#define EVA2_HW_VPU_H

#include <string>

#include "hw/eva2_model.h"

namespace eva2 {

/** Per-unit cost stack for one frame. */
struct CostStack
{
    HwCost eyeriss;
    HwCost eie;
    HwCost eva2;

    HwCost total() const { return eyeriss + eie + eva2; }

    CostStack
    operator+(const CostStack &o) const
    {
        return {eyeriss + o.eyeriss, eie + o.eie, eva2 + o.eva2};
    }

    CostStack
    operator*(double s) const
    {
        return {eyeriss * s, eie * s, eva2 * s};
    }
};

/** Frame-type cost stacks for one network deployment. */
struct VpuReport
{
    std::string network;
    std::string target_layer;
    CostStack orig; ///< Baseline accelerator, EVA2 absent.
    CostStack key;  ///< Key frame with EVA2 in the loop.
    CostStack pred; ///< Predicted frame (EVA2 + suffix).

    /** Mixture cost at a key-frame fraction (Table I's avg). */
    CostStack
    average(double key_fraction) const
    {
        return key * key_fraction + pred * (1.0 - key_fraction);
    }

    /** Energy of the mixture relative to the baseline. */
    double
    energy_savings(double key_fraction) const
    {
        const double base = orig.total().energy_mj;
        return base <= 0.0
                   ? 0.0
                   : 1.0 - average(key_fraction).total().energy_mj / base;
    }
};

/** VPU model options. */
struct VpuOptions
{
    std::string target_layer; ///< Empty = spec.late_target.
    /**
     * Target activation sparsity; storage compression follows from it
     * (see Eva2Config::activation_sparsity). 0.87 reproduces the
     * paper's 80%+ RLE savings.
     */
    double activation_sparsity = 0.87;
};

/** Build the per-frame cost report for a network spec. */
VpuReport vpu_report(const NetworkSpec &spec,
                     const VpuOptions &options = {});

/** EVA2 area breakdown for a deployment (Figure 12). */
Eva2Area vpu_eva2_area(const NetworkSpec &spec,
                       const VpuOptions &options = {});

} // namespace eva2

#endif // EVA2_HW_VPU_H
