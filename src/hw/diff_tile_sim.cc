#include "hw/diff_tile_sim.h"

#include <cmath>
#include <limits>

#include "util/math_util.h"

namespace eva2 {

namespace {

i64
floor_div(i64 a, i64 b)
{
    i64 q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) {
        --q;
    }
    return q;
}

i64
ceil_div_signed(i64 a, i64 b)
{
    return -floor_div(-a, b);
}

/** Full-tile range for output u along one axis (matches rfbme.cc). */
void
tile_range(i64 u, const RfbmeConfig &c, i64 tiles, i64 &t_lo, i64 &t_hi)
{
    const i64 s = c.rf_stride;
    const i64 start = u * c.rf_stride - c.rf_pad;
    t_lo = std::max<i64>(0, ceil_div_signed(start, s));
    t_hi = std::min<i64>(tiles, floor_div(start + c.rf_size, s));
}

} // namespace

DiffTileSimResult
simulate_diff_tile_pipeline(const Tensor &key, const Tensor &current,
                            const RfbmeConfig &config,
                            i64 adder_tree_width)
{
    require(key.shape() == current.shape(),
            "diff tile sim: frame shape mismatch");
    require(key.channels() == 1, "diff tile sim: single channel only");
    require(adder_tree_width > 0, "diff tile sim: bad adder tree width");

    const i64 h = key.height();
    const i64 w = key.width();
    const i64 s = config.rf_stride;
    const i64 tiles_y = h / s;
    const i64 tiles_x = w / s;
    const i64 out_h = rfbme_out_size(h, config);
    const i64 out_w = rfbme_out_size(w, config);

    DiffTileSimResult result;
    result.field = MotionField(out_h, out_w);
    result.rf_errors.assign(static_cast<size_t>(out_h * out_w), 0.0);
    std::vector<double> best(static_cast<size_t>(out_h * out_w),
                             std::numeric_limits<double>::infinity());

    // Tile memory: one frame's worth of tile diffs for one offset.
    std::vector<double> tile_diff(static_cast<size_t>(tiles_y * tiles_x));
    std::vector<double> tile_count(static_cast<size_t>(tiles_y * tiles_x));

    const i64 steps = config.search_radius / config.search_stride;
    for (i64 ody = -steps; ody <= steps; ++ody) {
        for (i64 odx = -steps; odx <= steps; ++odx) {
            const i64 dy = ody * config.search_stride;
            const i64 dx = odx * config.search_stride;

            // --- Diff tile producer ---
            for (i64 ty = 0; ty < tiles_y; ++ty) {
                for (i64 tx = 0; tx < tiles_x; ++tx) {
                    double d = 0.0;
                    i64 n = 0;
                    for (i64 y = ty * s; y < (ty + 1) * s; ++y) {
                        const i64 ky = y + dy;
                        if (ky < 0 || ky >= h) {
                            continue;
                        }
                        for (i64 x = tx * s; x < (tx + 1) * s; ++x) {
                            const i64 kx = x + dx;
                            if (kx < 0 || kx >= w) {
                                continue;
                            }
                            d += std::fabs(
                                static_cast<double>(
                                    current.at(0, y, x)) -
                                static_cast<double>(key.at(0, ky, kx)));
                            ++n;
                        }
                    }
                    tile_diff[static_cast<size_t>(ty * tiles_x + tx)] = d;
                    tile_count[static_cast<size_t>(ty * tiles_x + tx)] =
                        static_cast<double>(n);
                    // The adder tree retires adder_tree_width
                    // differences per cycle; skipped out-of-bounds
                    // pixels cost nothing.
                    result.producer_cycles +=
                        ceil_div(std::max<i64>(n, 1), adder_tree_width);
                }
            }

            // --- Diff tile consumer: rolling window sums ---
            auto column_sum = [&](i64 tx, i64 ty_lo, i64 ty_hi,
                                  double &d, double &c) {
                d = 0.0;
                c = 0.0;
                for (i64 ty = ty_lo; ty < ty_hi; ++ty) {
                    d += tile_diff[static_cast<size_t>(ty * tiles_x +
                                                       tx)];
                    c += tile_count[static_cast<size_t>(ty * tiles_x +
                                                        tx)];
                }
            };

            for (i64 uy = 0; uy < out_h; ++uy) {
                i64 ty_lo;
                i64 ty_hi;
                tile_range(uy, config, tiles_y, ty_lo, ty_hi);
                if (ty_lo >= ty_hi) {
                    continue;
                }
                double window_d = 0.0;
                double window_c = 0.0;
                i64 prev_lo = 0;
                i64 prev_hi = 0;
                bool have_window = false;
                for (i64 ux = 0; ux < out_w; ++ux) {
                    i64 tx_lo;
                    i64 tx_hi;
                    tile_range(ux, config, tiles_x, tx_lo, tx_hi);
                    if (tx_lo >= tx_hi) {
                        have_window = false;
                        continue;
                    }
                    if (have_window && tx_lo == prev_lo + 1 &&
                        tx_hi == prev_hi + 1) {
                        // Steady state: add the leading column,
                        // subtract the trailing column.
                        double add_d;
                        double add_c;
                        double sub_d;
                        double sub_c;
                        column_sum(tx_hi - 1, ty_lo, ty_hi, add_d,
                                   add_c);
                        column_sum(prev_lo, ty_lo, ty_hi, sub_d, sub_c);
                        window_d += add_d - sub_d;
                        window_c += add_c - sub_c;
                        result.consumer_cycles += 2;
                    } else {
                        // Window (re)fill: exhaustive column sums.
                        window_d = 0.0;
                        window_c = 0.0;
                        for (i64 tx = tx_lo; tx < tx_hi; ++tx) {
                            double col_d;
                            double col_c;
                            column_sum(tx, ty_lo, ty_hi, col_d, col_c);
                            window_d += col_d;
                            window_c += col_c;
                            ++result.consumer_cycles;
                        }
                    }
                    prev_lo = tx_lo;
                    prev_hi = tx_hi;
                    have_window = true;

                    if (window_c <= 0.0) {
                        continue;
                    }
                    const double err = window_d / window_c;
                    const size_t idx =
                        static_cast<size_t>(uy * out_w + ux);
                    ++result.consumer_cycles; // min-check compare
                    if (err < best[idx]) {
                        best[idx] = err;
                        result.field.at(uy, ux) =
                            Vec2{static_cast<double>(dy),
                                 static_cast<double>(dx)};
                        result.rf_errors[idx] = err;
                    }
                }
            }
        }
    }

    for (double e : result.rf_errors) {
        result.total_error += e;
    }
    return result;
}

} // namespace eva2
