#include "hw/stream_sim.h"

namespace eva2 {

StreamSimulator::StreamSimulator(const NetworkSpec &spec,
                                 const VpuOptions &options)
    : hw_(vpu_report(spec, options))
{
}

StreamReport
StreamSimulator::simulate(AmcPipeline &pipeline,
                          const Sequence &sequence) const
{
    pipeline.reset();
    StreamReport report;
    report.network = hw_.network;
    report.frames.reserve(static_cast<size_t>(sequence.size()));

    for (i64 t = 0; t < sequence.size(); ++t) {
        const AmcFrameResult r = pipeline.process(sequence[t].image);
        FrameTrace trace;
        trace.index = t;
        trace.is_key = r.is_key;
        trace.match_error = r.features.match_error;
        trace.me_add_ops = r.me_add_ops;
        trace.cost = (r.is_key ? hw_.key : hw_.pred).total();
        report.total = report.total + trace.cost;
        report.baseline_total =
            report.baseline_total + hw_.orig.total();
        report.key_frames += r.is_key ? 1 : 0;
        report.frames.push_back(trace);
    }
    return report;
}

} // namespace eva2
