/**
 * @file
 * A CACTI-flavoured memory model: area and per-access energy for the
 * SRAM and eDRAM buffers EVA2 instantiates (two pixel buffers, the
 * RLE-compressed key activation buffer, and the small motion-
 * estimation scratch memories). The paper sizes the three large
 * buffers in eDRAM and the small ones in SRAM (Section IV-B).
 */
#ifndef EVA2_HW_MEMORY_MODEL_H
#define EVA2_HW_MEMORY_MODEL_H

#include <string>

#include "hw/tech_params.h"

namespace eva2 {

/** Memory macro flavour. */
enum class MemKind
{
    kSram,
    kEdram,
};

/** One on-chip memory instance. */
struct MemoryMacro
{
    std::string name;
    MemKind kind = MemKind::kSram;
    i64 bytes = 0;

    /** Area in mm^2 under the given technology. */
    double area_mm2(const TechParams &tech = default_tech()) const;

    /** Energy to read or write `n` bytes, in pJ. */
    double access_energy_pj(i64 n,
                            const TechParams &tech = default_tech()) const;
};

} // namespace eva2

#endif // EVA2_HW_MEMORY_MODEL_H
