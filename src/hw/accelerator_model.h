/**
 * @file
 * Cost models of the baseline deep-learning accelerators EVA2 plugs
 * into: Eyeriss for convolutional layers and EIE for fully-connected
 * layers (Section IV-B, Figure 5).
 *
 * Methodology mirrors the paper: per-layer costs are derived from the
 * published results for AlexNet and VGG-16 and other layers are scaled
 * by their multiply-accumulate counts, "which we find to correlate
 * closely with cost in both accelerators". EIE numbers are scaled
 * from its 45 nm process to 65 nm (linear in delay/power, quadratic
 * in area).
 */
#ifndef EVA2_HW_ACCELERATOR_MODEL_H
#define EVA2_HW_ACCELERATOR_MODEL_H

#include <vector>

#include "cnn/model_zoo.h"

namespace eva2 {

/** Latency/energy for some piece of work on one accelerator. */
struct HwCost
{
    double latency_ms = 0.0;
    double energy_mj = 0.0;

    HwCost
    operator+(const HwCost &o) const
    {
        return {latency_ms + o.latency_ms, energy_mj + o.energy_mj};
    }

    HwCost
    operator*(double s) const
    {
        return {latency_ms * s, energy_mj * s};
    }
};

/**
 * Eyeriss conv-layer model. Calibration anchors (published totals):
 * the AlexNet conv stack (0.666 GMAC) at 115.3 ms / 31.9 mJ and the
 * VGG-16 conv stack (15.35 GMAC) at 4309.5 ms / 1028 mJ. AlexNet's
 * layer shapes run more efficiently on the row-stationary dataflow,
 * hence the two operating points; other networks use the family whose
 * layer shapes they resemble.
 */
class EyerissModel
{
  public:
    /** Rough layer-shape family for calibration selection. */
    enum class Family
    {
        kAlexNetLike, ///< Large early kernels, grouped convs.
        kVggLike,     ///< Deep 3x3 stacks.
    };

    explicit EyerissModel(Family family = Family::kVggLike);

    /** Cost of `macs` conv multiply-accumulates. */
    HwCost conv_cost(i64 macs) const;

    /** Reported Eyeriss area at 65 nm, mm^2. */
    static constexpr double area_mm2 = 12.2;

    /** Pick the calibration family for a network spec by name. */
    static Family family_for(const NetworkSpec &spec);

    double macs_per_second() const { return macs_per_second_; }
    double energy_pj_per_mac() const { return energy_pj_per_mac_; }

  private:
    double macs_per_second_;
    double energy_pj_per_mac_;
};

/**
 * EIE fully-connected model: latency from its published effective
 * throughput on compressed FC layers, energy from total design power,
 * both scaled from 45 nm to 65 nm.
 */
class EieModel
{
  public:
    EieModel();

    /** Cost of `macs` dense-equivalent FC multiply-accumulates. */
    HwCost fc_cost(i64 macs) const;

    /** EIE area scaled to 65 nm, mm^2 (40.8 mm^2 at 45 nm). */
    static constexpr double area_mm2 = 58.9;

  private:
    double macs_per_second_;
    double power_w_;
};

/**
 * Sum baseline-accelerator costs over a range of analyzed layers:
 * conv layers on Eyeriss, FC layers on EIE, pointwise layers free.
 *
 * @param costs  Output of analyze()/analyze_at().
 * @param eyeriss Conv model.
 * @param eie     FC model.
 * @param begin   First layer index (inclusive).
 * @param end     Last layer index (exclusive); -1 means all.
 */
HwCost baseline_cost(const std::vector<LayerCost> &costs,
                     const EyerissModel &eyeriss, const EieModel &eie,
                     i64 begin = 0, i64 end = -1);

} // namespace eva2

#endif // EVA2_HW_ACCELERATOR_MODEL_H
