#include "hw/accelerator_model.h"

namespace eva2 {

namespace {

/** Published-aggregate calibration anchors (see class comment). */
constexpr double kAlexConvMacs = 0.666e9;
constexpr double kAlexConvMs = 115.3;
constexpr double kAlexConvMj = 31.9;

constexpr double kVggConvMacs = 15.35e9;
constexpr double kVggConvMs = 4309.5;
constexpr double kVggConvMj = 1028.0;

/** EIE 45 nm -> 65 nm linear scaling factor. */
constexpr double kEieScale = 65.0 / 45.0;

} // namespace

EyerissModel::EyerissModel(Family family)
{
    if (family == Family::kAlexNetLike) {
        macs_per_second_ = kAlexConvMacs / (kAlexConvMs * 1e-3);
        energy_pj_per_mac_ = kAlexConvMj * 1e9 / kAlexConvMacs;
    } else {
        macs_per_second_ = kVggConvMacs / (kVggConvMs * 1e-3);
        energy_pj_per_mac_ = kVggConvMj * 1e9 / kVggConvMacs;
    }
}

EyerissModel::Family
EyerissModel::family_for(const NetworkSpec &spec)
{
    // AlexNet and CNN-M share the large-kernel, LRN-bearing "medium"
    // topology; VGG-derived networks are deep 3x3 stacks.
    if (spec.name == "AlexNet") {
        return Family::kAlexNetLike;
    }
    return Family::kVggLike;
}

HwCost
EyerissModel::conv_cost(i64 macs) const
{
    HwCost cost;
    cost.latency_ms =
        static_cast<double>(macs) / macs_per_second_ * 1e3;
    cost.energy_mj =
        static_cast<double>(macs) * energy_pj_per_mac_ * 1e-9;
    return cost;
}

EieModel::EieModel()
{
    // EIE processes compressed FC layers at an effective dense-
    // equivalent rate of ~0.59 TMAC/s (102 GOP/s on weights at ~11%
    // density); power 0.59 W at 45 nm. Scale both to 65 nm.
    macs_per_second_ = 0.59e12 / kEieScale;
    power_w_ = 0.59 * kEieScale;
}

HwCost
EieModel::fc_cost(i64 macs) const
{
    HwCost cost;
    const double seconds = static_cast<double>(macs) / macs_per_second_;
    cost.latency_ms = seconds * 1e3;
    cost.energy_mj = seconds * power_w_ * 1e3;
    return cost;
}

HwCost
baseline_cost(const std::vector<LayerCost> &costs,
              const EyerissModel &eyeriss, const EieModel &eie, i64 begin,
              i64 end)
{
    if (end < 0) {
        end = static_cast<i64>(costs.size());
    }
    require(begin >= 0 && begin <= end &&
                end <= static_cast<i64>(costs.size()),
            "baseline_cost: bad layer range");
    HwCost total;
    for (i64 i = begin; i < end; ++i) {
        const LayerCost &layer = costs[static_cast<size_t>(i)];
        if (layer.kind == LayerKind::kConv) {
            total = total + eyeriss.conv_cost(layer.macs);
        } else if (layer.kind == LayerKind::kFc) {
            total = total + eie.fc_cost(layer.macs);
        }
    }
    return total;
}

} // namespace eva2
