/**
 * @file
 * Technology constants for the 65 nm process the paper synthesizes
 * EVA2 in (TSMC 65 nm, Synopsys flow, CACTI 6.5 memories). The values
 * are first-order per-operation energies at the scale architecture
 * papers of that era report; the evaluation depends on their relative
 * magnitudes (MAC >> add; DRAM >> eDRAM >> SRAM), not their third
 * significant digit.
 */
#ifndef EVA2_HW_TECH_PARAMS_H
#define EVA2_HW_TECH_PARAMS_H

#include "util/common.h"

namespace eva2 {

/** 65 nm process and EVA2 clock parameters. */
struct TechParams
{
    /** EVA2 meets timing at a 7 ns cycle (Section IV-B). */
    double clock_period_ns = 7.0;

    /** Energy of one 16-bit add/subtract, pJ. */
    double add_energy_pj = 0.1;

    /** Energy of one 16-bit multiply(+accumulate), pJ. */
    double mac_energy_pj = 1.0;

    /** SRAM access energy per byte, pJ. */
    double sram_pj_per_byte = 1.0;

    /** eDRAM access energy per byte, pJ (denser, slightly costlier). */
    double edram_pj_per_byte = 2.0;

    /** Off-chip DRAM access energy per byte, pJ. */
    double dram_pj_per_byte = 100.0;

    /** eDRAM density at 65 nm, mm^2 per MiB (calibrated so the pixel
     * buffers land at the paper's 54.5% of EVA2's 2.6 mm^2). */
    double edram_mm2_per_mib = 1.26;

    /** SRAM density at 65 nm, mm^2 per MiB. */
    double sram_mm2_per_mib = 4.0;

    double clock_hz() const { return 1e9 / clock_period_ns; }
};

/** The default 65 nm parameter set used across the hardware models. */
inline const TechParams &
default_tech()
{
    static const TechParams params;
    return params;
}

} // namespace eva2

#endif // EVA2_HW_TECH_PARAMS_H
