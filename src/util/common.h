/**
 * @file
 * Common definitions shared across the EVA2 reproduction: fundamental
 * integer typedefs, assertion macros, and small helpers that every
 * module may use.
 */
#ifndef EVA2_UTIL_COMMON_H
#define EVA2_UTIL_COMMON_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace eva2 {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/**
 * Thrown when a user-facing configuration is invalid (the analogue of
 * gem5's fatal()): the library cannot proceed but the condition is the
 * caller's responsibility, not an internal bug.
 */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &msg)
        : std::runtime_error("eva2 config error: " + msg)
    {
    }
};

/**
 * Thrown for internal invariant violations (the analogue of gem5's
 * panic()): if this fires, the library itself is broken.
 */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &msg)
        : std::logic_error("eva2 internal error: " + msg)
    {
    }
};

/**
 * Check a caller-supplied condition; throw ConfigError when violated.
 *
 * @param cond The condition that must hold.
 * @param msg  Human-readable description of the requirement.
 */
inline void
require(bool cond, const std::string &msg)
{
    if (!cond) {
        throw ConfigError(msg);
    }
}

/**
 * String-literal overload: defers all message work to the failure
 * path. The std::string overload materializes (allocates) its
 * message even when the check passes, which is real money in
 * per-entry hot loops (RLE scatter/decode run one check per encoded
 * entry); literal call sites resolve here and pay nothing until the
 * check actually fails.
 */
inline void
require(bool cond, const char *msg)
{
    if (!cond) {
        throw ConfigError(msg);
    }
}

/**
 * Check an internal invariant; throw InternalError when violated.
 *
 * @param cond The invariant that must hold.
 * @param msg  Human-readable description of the invariant.
 */
inline void
invariant(bool cond, const std::string &msg)
{
    if (!cond) {
        throw InternalError(msg);
    }
}

/** String-literal overload; see require(bool, const char*). */
inline void
invariant(bool cond, const char *msg)
{
    if (!cond) {
        throw InternalError(msg);
    }
}

} // namespace eva2

#endif // EVA2_UTIL_COMMON_H
