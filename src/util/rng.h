/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the reproduction (synthetic video content,
 * weight initialization, noise injection) draws from these generators so
 * that experiments are bit-reproducible across runs and platforms. We
 * deliberately avoid std::mt19937 + std::*_distribution because the
 * distributions are not guaranteed identical across standard library
 * implementations.
 */
#ifndef EVA2_UTIL_RNG_H
#define EVA2_UTIL_RNG_H

#include <cmath>

#include "util/common.h"

namespace eva2 {

/**
 * SplitMix64 generator. Tiny state, excellent statistical quality for
 * non-cryptographic use, and trivially seedable. Used both directly and
 * to seed derived streams.
 */
class Rng
{
  public:
    /** Construct a generator from a 64-bit seed. */
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

    /** Next raw 64-bit value. */
    u64
    next_u64()
    {
        u64 z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Next 32-bit value. */
    u32 next_u32() { return static_cast<u32>(next_u64() >> 32); }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform float in [lo, hi). */
    float
    uniform_f(float lo, float hi)
    {
        return static_cast<float>(uniform(lo, hi));
    }

    /** Uniform integer in [lo, hi] (inclusive). */
    i64
    uniform_int(i64 lo, i64 hi)
    {
        invariant(hi >= lo, "uniform_int: hi < lo");
        u64 span = static_cast<u64>(hi - lo) + 1;
        return lo + static_cast<i64>(next_u64() % span);
    }

    /** Standard normal via Box-Muller (deterministic, portable). */
    double
    normal()
    {
        if (have_cached_) {
            have_cached_ = false;
            return cached_;
        }
        double u1 = 0.0;
        while (u1 <= 1e-12) {
            u1 = uniform();
        }
        double u2 = uniform();
        double r = std::sqrt(-2.0 * std::log(u1));
        double theta = 2.0 * M_PI * u2;
        cached_ = r * std::sin(theta);
        have_cached_ = true;
        return r * std::cos(theta);
    }

    /** Normal with the given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        return mean + stddev * normal();
    }

    /** Bernoulli draw with probability p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Derive an independent child stream. Used to give each subsystem
     * (e.g. each CNN layer's weights) its own stream so adding draws in
     * one place does not perturb another.
     *
     * @param tag Distinguishes sibling streams derived from one parent.
     */
    Rng
    fork(u64 tag)
    {
        Rng parent_copy(state_ ^ (0xa0761d6478bd642full * (tag + 1)));
        return Rng(parent_copy.next_u64());
    }

  private:
    u64 state_;
    bool have_cached_ = false;
    double cached_ = 0.0;
};

} // namespace eva2

#endif // EVA2_UTIL_RNG_H
