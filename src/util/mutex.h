/**
 * @file
 * Annotated mutex/condvar wrappers for Clang Thread Safety Analysis.
 *
 * Every lock in the codebase goes through these types (enforced by
 * scripts/eva2_lint.py: raw std::mutex / std::lock_guard outside this
 * header is a lint error) so that GUARDED_BY / REQUIRES contracts in
 * headers are actually checked by the clang CI leg. The wrappers are
 * zero-cost: each is exactly its std counterpart plus attributes that
 * compile to nothing.
 *
 * Patterns:
 *  - `MutexLock lock(mu);` — scoped lock, the std::lock_guard shape.
 *  - `lock.unlock(); ...; lock.lock();` — relock windows (drain loops
 *    that must run callbacks unlocked).
 *  - `MutexLock lock(mu, std::defer_lock); if (!lock.try_lock()) ...`
 *    — scoped try-lock; the analysis checks the branch and the
 *    destructor releases only if held. Sites are listed in
 *    docs/static_analysis.md.
 *  - `cv.wait(lock)` — always inside a `while (!condition)` loop. Do
 *    NOT use predicate-lambda waits: the analysis cannot see that the
 *    lambda runs with the lock held and reports false positives.
 */
#ifndef EVA2_UTIL_MUTEX_H
#define EVA2_UTIL_MUTEX_H

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace eva2 {

/** An annotated std::mutex. */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

    /**
     * Tell the analysis this mutex is held — a no-op at runtime. Only
     * for aliasing the analysis cannot see through (e.g. net::Client
     * holds `this->mutex_` while touching a ClientSession whose
     * fields are guarded by `client_->mutex_`; the two are the same
     * object, but not the same expression). Every call site is a
     * documented escape in docs/static_analysis.md.
     */
    void assert_held() const ASSERT_CAPABILITY(this) {}

  private:
    friend class MutexLock;
    friend class MutexLock2;

    std::mutex mu_;
};

/**
 * Scoped lock over one Mutex (the std::lock_guard / std::unique_lock
 * shape). Relockable: unlock()/lock() open a window where the mutex
 * is not held, and the analysis tracks it.
 */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) ACQUIRE(mu) : lock_(mu.mu_) {}

    /**
     * Deferred form for the scoped try-lock pattern:
     *
     *   MutexLock lock(mu, std::defer_lock);
     *   if (!lock.try_lock()) { ... not acquired ... }
     *
     * The destructor releases only if held (unique_lock semantics),
     * which the analysis models via the RELEASE() on ~MutexLock.
     */
    MutexLock(Mutex &mu, std::defer_lock_t) EXCLUDES(mu)
        : lock_(mu.mu_, std::defer_lock)
    {
    }

    ~MutexLock() RELEASE() {}

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    void lock() ACQUIRE() { lock_.lock(); }
    void unlock() RELEASE() { lock_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return lock_.try_lock(); }

    /** The underlying unique_lock — for CondVar only. */
    std::unique_lock<std::mutex> &native() { return lock_; }

  private:
    std::unique_lock<std::mutex> lock_;
};

/**
 * Scoped lock over two Mutexes with std::lock deadlock avoidance (the
 * std::scoped_lock shape). Used by StageTimings' two-object ops.
 */
class SCOPED_CAPABILITY MutexLock2
{
  public:
    MutexLock2(Mutex &a, Mutex &b) ACQUIRE(a, b) : lock_(a.mu_, b.mu_)
    {
    }
    ~MutexLock2() RELEASE() {}

    MutexLock2(const MutexLock2 &) = delete;
    MutexLock2 &operator=(const MutexLock2 &) = delete;

  private:
    std::scoped_lock<std::mutex, std::mutex> lock_;
};

/**
 * A condition variable over MutexLock. Deliberately unannotated on
 * the wait side (the caller's MutexLock stays "held" for the
 * analysis, which matches the caller's view: held before and after).
 * Callers must use explicit `while (!cond) cv.wait(lock);` loops —
 * see the header comment.
 */
class CondVar
{
  public:
    void wait(MutexLock &lock) { cv_.wait(lock.native()); }

    template <class Rep, class Period>
    std::cv_status
    wait_for(MutexLock &lock,
             const std::chrono::duration<Rep, Period> &dur)
    {
        return cv_.wait_for(lock.native(), dur);
    }

    template <class Clock, class Duration>
    std::cv_status
    wait_until(MutexLock &lock,
               const std::chrono::time_point<Clock, Duration> &tp)
    {
        return cv_.wait_until(lock.native(), tp);
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

/**
 * A zero-state capability naming a thread role (e.g. "the IO
 * thread"). Fields tagged GUARDED_BY(role) may only be touched by
 * functions marked REQUIRES(role); the role is acquired at the top of
 * the owning thread's loop and transferred by join: a thread that has
 * join()ed the owner may acquire the role afterwards. acquire() and
 * release() are no-ops at runtime — the value is purely the
 * compile-time check (documented escape: the empty bodies themselves,
 * see docs/static_analysis.md).
 */
class CAPABILITY("role") ThreadRole
{
  public:
    void acquire() ACQUIRE() {}
    void release() RELEASE() {}
};

} // namespace eva2

#endif // EVA2_UTIL_MUTEX_H
