/**
 * @file
 * Q-format fixed-point arithmetic.
 *
 * EVA2's warp engine computes bilinear interpolation in 16-bit
 * fixed-point (Section III-B of the paper: "The interpolator computes
 * wide intermediate values and then shifts the final result back to a
 * 16-bit fixed-point representation"). This header provides a small
 * Q-format value type used by the warp-engine microarchitecture model
 * so that the datapath's rounding behaviour can be simulated and tested
 * against the floating-point reference.
 */
#ifndef EVA2_UTIL_FIXED_POINT_H
#define EVA2_UTIL_FIXED_POINT_H

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace eva2 {

/**
 * A fixed-point number with IntBits integer bits and FracBits fractional
 * bits stored in a signed 32-bit raw value, saturating on overflow.
 * EVA2's activations use Fixed<8, 8> (Q8.8, 16 bits total); its motion
 * vector fractions use Fixed<1, 8>.
 */
template <int IntBits, int FracBits>
class Fixed
{
  public:
    static_assert(IntBits >= 1 && FracBits >= 0, "invalid Q format");
    static_assert(IntBits + FracBits <= 24, "raw value must fit in i32");

    static constexpr int int_bits = IntBits;
    static constexpr int frac_bits = FracBits;
    static constexpr i32 one_raw = i32{1} << FracBits;
    static constexpr i32 max_raw = (i32{1} << (IntBits + FracBits - 1)) - 1;
    static constexpr i32 min_raw = -(i32{1} << (IntBits + FracBits - 1));

    constexpr Fixed() = default;

    /**
     * Quantize a double to the nearest representable value. NaN maps
     * to zero (a NaN activation carries no magnitude the hardware
     * datapath could represent); funnelling it through the clamp and
     * integer cast instead would be undefined behaviour.
     */
    static Fixed
    from_double(double v)
    {
        if (std::isnan(v)) {
            return Fixed();
        }
        double scaled = std::round(v * static_cast<double>(one_raw));
        scaled = std::clamp(scaled, static_cast<double>(min_raw),
                            static_cast<double>(max_raw));
        return from_raw(static_cast<i32>(scaled));
    }

    /** Wrap an existing raw (already scaled) integer value. */
    static Fixed
    from_raw(i32 raw)
    {
        Fixed f;
        f.raw_ = saturate(raw);
        return f;
    }

    /** Convert back to double. */
    double
    to_double() const
    {
        return static_cast<double>(raw_) / static_cast<double>(one_raw);
    }

    /** Raw scaled integer value. */
    i32 raw() const { return raw_; }

    /** Largest representable value of this format. */
    static Fixed max_value() { return from_raw(max_raw); }

    /** Smallest (most negative) representable value. */
    static Fixed min_value() { return from_raw(min_raw); }

    /** Smallest positive increment. */
    static double resolution() { return 1.0 / static_cast<double>(one_raw); }

    Fixed
    operator+(Fixed o) const
    {
        return from_raw(raw_ + o.raw_);
    }

    Fixed
    operator-(Fixed o) const
    {
        return from_raw(raw_ - o.raw_);
    }

    /** Full-width multiply then shift back, round-to-nearest. */
    Fixed
    operator*(Fixed o) const
    {
        i64 wide = static_cast<i64>(raw_) * static_cast<i64>(o.raw_);
        // Integer-only formats (FracBits == 0) have no fractional bits
        // to round away; the unguarded rounding term would be a shift
        // by -1, which is undefined.
        if constexpr (FracBits > 0) {
            wide += i64{1} << (FracBits - 1); // round half up
        }
        // Saturate from the wide value: the shifted product of an
        // integer-only format can exceed i32 before clamping.
        Fixed f;
        f.raw_ = saturate(wide >> FracBits);
        return f;
    }

    bool operator==(const Fixed &o) const { return raw_ == o.raw_; }
    bool operator!=(const Fixed &o) const { return raw_ != o.raw_; }
    bool operator<(const Fixed &o) const { return raw_ < o.raw_; }

  private:
    static i32
    saturate(i64 raw)
    {
        return static_cast<i32>(
            std::clamp<i64>(raw, min_raw, max_raw));
    }

    i32 raw_ = 0;
};

/** EVA2's 16-bit activation format. */
using Q88 = Fixed<8, 8>;

/**
 * Fractional motion-vector component with 8-bit precision, covering
 * [0, 1] *inclusive*: the warp engine's bilinear fractions (the fu/fv
 * inputs of hw/warp_engine_sim's interpolate_q88) round to raw values
 * in [0, 256], and the carry case rounds to exactly 1.0 (raw 256)
 * before being renormalized into the integer coordinate. Fixed<1, 8>
 * saturates at raw 255 and cannot represent that carry, so the type
 * needs two integer bits; its full representable range is [-2, 2).
 */
using QFrac = Fixed<2, 8>;

} // namespace eva2

#endif // EVA2_UTIL_FIXED_POINT_H
