/**
 * @file
 * Clang Thread Safety Analysis attribute macros.
 *
 * These expand to the `capability`-style attributes documented at
 * https://clang.llvm.org/docs/ThreadSafetyAnalysis.html under Clang
 * and to nothing elsewhere, so GCC builds are unaffected and the
 * analysis runs only where `-Wthread-safety` is available (the clang
 * CI leg promotes it to an error via EVA2_WERROR_THREAD_SAFETY).
 *
 * Annotate data with the mutex that guards it and functions with the
 * locks they take or expect; the compiler then rejects any access
 * that does not hold the right lock. Use the wrappers in
 * util/mutex.h — raw std::mutex cannot carry these attributes and is
 * rejected by scripts/eva2_lint.py outside that header.
 */
#ifndef EVA2_UTIL_THREAD_ANNOTATIONS_H
#define EVA2_UTIL_THREAD_ANNOTATIONS_H

#if defined(__clang__)
#define EVA2_THREAD_ANNOTATION_ATTR(x) __attribute__((x))
#else
#define EVA2_THREAD_ANNOTATION_ATTR(x) // no-op outside clang
#endif

/** Marks a class as a lockable capability (e.g. a mutex wrapper). */
#define CAPABILITY(x) EVA2_THREAD_ANNOTATION_ATTR(capability(x))

/** Marks an RAII class that acquires in its ctor, releases in dtor. */
#define SCOPED_CAPABILITY EVA2_THREAD_ANNOTATION_ATTR(scoped_lockable)

/** Data member readable/writable only with `x` held. */
#define GUARDED_BY(x) EVA2_THREAD_ANNOTATION_ATTR(guarded_by(x))

/** Pointer member whose pointee is guarded by `x`. */
#define PT_GUARDED_BY(x) EVA2_THREAD_ANNOTATION_ATTR(pt_guarded_by(x))

/** Function precondition: the listed capabilities are held on entry. */
#define REQUIRES(...) \
    EVA2_THREAD_ANNOTATION_ATTR(requires_capability(__VA_ARGS__))

/** Function precondition: shared (reader) hold of the capabilities. */
#define REQUIRES_SHARED(...) \
    EVA2_THREAD_ANNOTATION_ATTR(requires_shared_capability(__VA_ARGS__))

/** Function acquires the listed capabilities (held on return). */
#define ACQUIRE(...) \
    EVA2_THREAD_ANNOTATION_ATTR(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities (held on entry). */
#define RELEASE(...) \
    EVA2_THREAD_ANNOTATION_ATTR(release_capability(__VA_ARGS__))

/** Function tries to acquire; first arg is the success return value. */
#define TRY_ACQUIRE(...) \
    EVA2_THREAD_ANNOTATION_ATTR(try_acquire_capability(__VA_ARGS__))

/** Function must be called with the listed capabilities NOT held. */
#define EXCLUDES(...) \
    EVA2_THREAD_ANNOTATION_ATTR(locks_excluded(__VA_ARGS__))

/** Runtime assertion that the capability is held (no acquisition). */
#define ASSERT_CAPABILITY(x) \
    EVA2_THREAD_ANNOTATION_ATTR(assert_capability(x))

/** Function returns a reference to the named capability. */
#define RETURN_CAPABILITY(x) EVA2_THREAD_ANNOTATION_ATTR(lock_returned(x))

/**
 * Escape hatch: disables the analysis for one function. Forbidden in
 * src/runtime/ and src/api/ except at the documented sites listed in
 * docs/static_analysis.md (enforced by review, checked in CI greps).
 */
#define NO_THREAD_SAFETY_ANALYSIS \
    EVA2_THREAD_ANNOTATION_ATTR(no_thread_safety_analysis)

#endif // EVA2_UTIL_THREAD_ANNOTATIONS_H
