/**
 * @file
 * A minimal contiguous-view type standing in for C++20's std::span so
 * the library builds as strict C++17. Only the operations the
 * reproduction actually uses are provided: iteration, indexing, size
 * queries, and implicit construction from std::vector.
 */
#ifndef EVA2_UTIL_SPAN_H
#define EVA2_UTIL_SPAN_H

#include <cstddef>
#include <type_traits>
#include <vector>

namespace eva2 {

/** A non-owning view of a contiguous run of T. */
template <typename T>
class Span
{
  public:
    Span() = default;

    Span(T *data, std::size_t size) : data_(data), size_(size) {}

    /** From a mutable vector (Span<T> or Span<const T>). */
    Span(std::vector<std::remove_const_t<T>> &v)
        : data_(v.data()), size_(v.size())
    {
    }

    /** From a const vector (Span<const T> only). */
    template <typename U = T,
              typename = std::enable_if_t<std::is_const_v<U>>>
    Span(const std::vector<std::remove_const_t<T>> &v)
        : data_(v.data()), size_(v.size())
    {
    }

    /** Span<T> converts to Span<const T>. */
    operator Span<const T>() const { return {data_, size_}; }

    T *data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T &operator[](std::size_t i) const { return data_[i]; }

    T *begin() const { return data_; }
    T *end() const { return data_ + size_; }

  private:
    T *data_ = nullptr;
    std::size_t size_ = 0;
};

} // namespace eva2

#endif // EVA2_UTIL_SPAN_H
