/**
 * @file
 * A minimal streaming JSON writer for machine-readable reports.
 *
 * The repo's reports (RunReport, bench --json output) need valid
 * JSON without an external dependency, so this is a deliberately
 * small push-style writer: begin/end object or array, keys, scalar
 * values. It tracks nesting and comma placement; structural misuse
 * (a key outside an object, unbalanced end calls) throws
 * InternalError rather than emitting broken output. Numbers print
 * with enough precision to round-trip doubles; non-finite doubles
 * encode as null, which is what most JSON consumers expect.
 */
#ifndef EVA2_UTIL_JSON_H
#define EVA2_UTIL_JSON_H

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "util/common.h"

namespace eva2 {

/**
 * Escape a string for embedding inside a JSON string literal (no
 * surrounding quotes added). The one escaping routine every report
 * path shares — stage names, kernel names, stream/session names all
 * pass through here, so a name containing quotes, backslashes, or
 * control characters can never corrupt a saved report.
 */
inline std::string
json_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Push-style JSON writer with pretty printing. */
class JsonWriter
{
  public:
    /** @param indent Spaces per nesting level; 0 writes compactly. */
    explicit JsonWriter(int indent = 2) : indent_(indent) {}

    JsonWriter &
    begin_object()
    {
        open('{', Frame::kObject);
        return *this;
    }

    JsonWriter &
    end_object()
    {
        close('}', Frame::kObject);
        return *this;
    }

    JsonWriter &
    begin_array()
    {
        open('[', Frame::kArray);
        return *this;
    }

    JsonWriter &
    end_array()
    {
        close(']', Frame::kArray);
        return *this;
    }

    /** Write the key of the next object member. */
    JsonWriter &
    key(const std::string &name)
    {
        invariant(!stack_.empty() &&
                      stack_.back().kind == Frame::kObject,
                  "json: key() outside an object");
        invariant(!stack_.back().key_pending,
                  "json: consecutive key() calls");
        separate();
        write_string(name);
        out_ += indent_ > 0 ? ": " : ":";
        stack_.back().key_pending = true;
        return *this;
    }

    JsonWriter &
    value(const std::string &v)
    {
        before_value();
        write_string(v);
        return *this;
    }

    JsonWriter &
    value(const char *v)
    {
        return value(std::string(v));
    }

    JsonWriter &
    value(bool v)
    {
        before_value();
        out_ += v ? "true" : "false";
        return *this;
    }

    JsonWriter &
    value(i64 v)
    {
        before_value();
        out_ += std::to_string(v);
        return *this;
    }

    JsonWriter &
    value(int v)
    {
        return value(static_cast<i64>(v));
    }

    JsonWriter &
    value(u64 v)
    {
        before_value();
        out_ += std::to_string(v);
        return *this;
    }

    JsonWriter &
    value(double v)
    {
        before_value();
        if (!std::isfinite(v)) {
            out_ += "null";
            return *this;
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        out_ += buf;
        return *this;
    }

    JsonWriter &
    null()
    {
        before_value();
        out_ += "null";
        return *this;
    }

    /**
     * Splice a pre-serialized JSON value in verbatim (e.g. a nested
     * RunReport::to_json()). The caller is responsible for `json`
     * being a single well-formed value; it is emitted as-is, so a
     * compact sub-document inside a pretty outer one stays compact.
     */
    JsonWriter &
    raw(const std::string &json)
    {
        invariant(!json.empty(), "json: raw() with empty value");
        before_value();
        out_ += json;
        return *this;
    }

    /** Shorthand: key(name) followed by value(v). */
    template <typename T>
    JsonWriter &
    member(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

    /** The completed document; all containers must be closed. */
    const std::string &
    str() const
    {
        invariant(stack_.empty(), "json: unclosed containers");
        return out_;
    }

  private:
    struct Frame
    {
        enum Kind { kObject, kArray };
        Kind kind;
        bool has_items = false;
        bool key_pending = false;
    };

    void
    open(char bracket, Frame::Kind kind)
    {
        before_value();
        out_ += bracket;
        stack_.push_back(Frame{kind, false, false});
    }

    void
    close(char bracket, Frame::Kind kind)
    {
        invariant(!stack_.empty() && stack_.back().kind == kind,
                  "json: mismatched container end");
        invariant(!stack_.back().key_pending,
                  "json: container ended after a dangling key");
        const bool had_items = stack_.back().has_items;
        stack_.pop_back();
        if (had_items) {
            newline_indent(stack_.size());
        }
        out_ += bracket;
    }

    /** Comma/newline bookkeeping before an item in a container. */
    void
    separate()
    {
        if (stack_.back().has_items) {
            out_ += ',';
        }
        stack_.back().has_items = true;
        newline_indent(stack_.size());
    }

    /** Validity checks and separators before any value is written. */
    void
    before_value()
    {
        if (stack_.empty()) {
            invariant(out_.empty(), "json: multiple root values");
            return;
        }
        Frame &top = stack_.back();
        if (top.kind == Frame::kObject) {
            invariant(top.key_pending,
                      "json: object value without a key");
            top.key_pending = false;
        } else {
            separate();
        }
    }

    void
    newline_indent(size_t depth)
    {
        if (indent_ <= 0) {
            return;
        }
        out_ += '\n';
        out_.append(depth * static_cast<size_t>(indent_), ' ');
    }

    void
    write_string(const std::string &s)
    {
        out_ += '"';
        out_ += json_escape(s);
        out_ += '"';
    }

    int indent_;
    std::string out_;
    std::vector<Frame> stack_;
};

} // namespace eva2

#endif // EVA2_UTIL_JSON_H
