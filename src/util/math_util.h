/**
 * @file
 * Small numeric helpers shared across modules: integer ceiling division,
 * clamping, conv output-size arithmetic, and simple statistics over
 * float spans.
 */
#ifndef EVA2_UTIL_MATH_UTIL_H
#define EVA2_UTIL_MATH_UTIL_H

#include <algorithm>
#include <cmath>
#include "util/span.h"
#include <vector>

#include "util/common.h"

namespace eva2 {

/** Ceiling division for non-negative integers. */
constexpr i64
ceil_div(i64 a, i64 b)
{
    return (a + b - 1) / b;
}

/**
 * Output extent of a convolution/pooling window sweep.
 *
 * @param in     Input extent (height or width).
 * @param kernel Window extent.
 * @param stride Step between window placements.
 * @param pad    Zero padding added to both sides.
 * @return Number of window placements along the axis.
 */
constexpr i64
conv_out_size(i64 in, i64 kernel, i64 stride, i64 pad)
{
    return (in + 2 * pad - kernel) / stride + 1;
}

/** Mean of a span; 0 for an empty span. */
inline double
mean(Span<const float> xs)
{
    if (xs.empty()) {
        return 0.0;
    }
    double acc = 0.0;
    for (float x : xs) {
        acc += x;
    }
    return acc / static_cast<double>(xs.size());
}

/** Max absolute value of a span; 0 for an empty span. */
inline double
max_abs(Span<const float> xs)
{
    double m = 0.0;
    for (float x : xs) {
        m = std::max(m, static_cast<double>(std::fabs(x)));
    }
    return m;
}

/** Root-mean-square difference between two equal-length spans. */
inline double
rms_diff(Span<const float> a, Span<const float> b)
{
    invariant(a.size() == b.size(), "rms_diff: size mismatch");
    if (a.empty()) {
        return 0.0;
    }
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(a.size()));
}

/** Fraction of entries whose magnitude is at or below a threshold. */
inline double
sparsity(Span<const float> xs, float threshold = 0.0f)
{
    if (xs.empty()) {
        return 0.0;
    }
    size_t zeros = 0;
    for (float x : xs) {
        if (std::fabs(x) <= threshold) {
            ++zeros;
        }
    }
    return static_cast<double>(zeros) / static_cast<double>(xs.size());
}

} // namespace eva2

#endif // EVA2_UTIL_MATH_UTIL_H
