/**
 * @file
 * Receptive field block motion estimation (RFBME), the paper's new
 * motion estimation algorithm (Sections II-C1 and III-A).
 *
 * RFBME estimates one motion vector per *receptive field* of the AMC
 * target layer, exactly the granularity activation warping can use.
 * It exploits two properties of receptive fields: (1) nearby fields
 * overlap heavily, so their absolute-difference sums share tile-level
 * partial sums (tiles are s x s squares where s is the receptive-field
 * stride), and (2) padding places part of border fields outside the
 * image, where comparisons are unnecessary.
 *
 * `rfbme()` is the optimized functional algorithm (tile reuse via
 * summed-area tables, the software analogue of the hardware's rolling
 * adds/subtracts); `rfbme_naive()` recomputes every receptive field
 * from scratch and exists to validate the optimized path and to
 * measure the op-count gap the paper quantifies in Section IV-A.
 */
#ifndef EVA2_FLOW_RFBME_H
#define EVA2_FLOW_RFBME_H

#include <vector>

#include "flow/motion_field.h"
#include "tensor/tensor.h"

namespace eva2 {

/**
 * Diff-tile producer implementation. Both variants follow the
 * fixed-stripe SAD contract of flow/sad_kernels.h for interior tiles
 * and share the guarded per-pixel loop for border tiles, so they are
 * bit-identical on every input — the kernel tuner races them freely
 * without perturbing digests or the `add_ops` account. kSimd falls
 * back to the scalar kernels when simd_supported() is false.
 */
enum class RfbmeVariant : i64
{
    kScalar = 0, ///< Fixed-stripe scalar SAD (the oracle tier).
    kSimd = 1,   ///< Runtime-dispatched SIMD SAD tile kernels.
};

/** Printable variant name ("scalar" or "simd"). */
const char *rfbme_variant_name(RfbmeVariant v);

/** Parameters of an RFBME run. */
struct RfbmeConfig
{
    i64 rf_size = 6;   ///< Receptive-field extent in pixels.
    i64 rf_stride = 2; ///< Receptive-field stride in pixels.
    i64 rf_pad = 2;    ///< Receptive-field padding in pixels.
    i64 search_radius = 12; ///< Max offset searched, in pixels.
    i64 search_stride = 2;  ///< Offset grid step, in pixels.

    /** Diff-tile producer; variants are bit-identical (see above). */
    RfbmeVariant variant = RfbmeVariant::kScalar;
};

/** Output of an RFBME run. */
struct RfbmeResult
{
    /**
     * Backward source offsets (pixel units) on the activation grid:
     * activation(u) should be read from key activation at
     * u + field(u)/rf_stride.
     */
    MotionField field;

    /**
     * Per-receptive-field minimum mean absolute pixel difference, the
     * block "match error" reused by the adaptive key-frame policy.
     * Row-major, aligned with `field`.
     */
    std::vector<double> rf_errors;

    /** Sum of rf_errors: the aggregate match-quality feature. */
    double total_error = 0.0;

    /** Mean of rf_errors. */
    double mean_error = 0.0;

    /** Arithmetic (add/subtract) operations actually performed. */
    i64 add_ops = 0;
};

/**
 * Reusable buffers for rfbme_into. A workspace amortizes every
 * heap allocation RFBME needs — the candidate-offset grid, the
 * per-chunk minimum/winner planes, and the tile/prefix-sum planes —
 * so a per-stream workspace makes steady-state motion estimation
 * allocation-free (the compiled frame path keeps one per stream).
 * A workspace is not thread-safe; it belongs to one estimator call
 * at a time. The offset grid is cached against the config that built
 * it and rebuilt only when the search geometry changes.
 */
struct RfbmeWorkspace
{
    /**
     * Per-chunk buffers of the parallel candidate-offset search.
     * Only `best` and `winner` are cleared per frame; the tile and
     * prefix planes are fully rewritten per offset, so a same-shape
     * frame reuses their contents-stale allocations untouched.
     */
    struct Chunk
    {
        std::vector<double> best;
        std::vector<i32> winner;
        std::vector<double> prefix_diff;
        std::vector<double> prefix_count;
        std::vector<double> tile_diff;
        std::vector<double> tile_count;
        i64 add_ops = 0;
    };

    std::vector<Vec2> offsets;
    std::vector<Chunk> chunks;
    std::vector<double> merge_best;

    bool offsets_valid = false;
    i64 offsets_radius = -1;
    i64 offsets_stride = -1;
};

/**
 * Run optimized RFBME between a stored key frame and the current
 * frame. Both frames must be single-channel and the same size.
 */
RfbmeResult rfbme(const Tensor &key, const Tensor &current,
                  const RfbmeConfig &config);

/**
 * rfbme into a caller-owned result and workspace, both resized in
 * place: the allocation-free form the compiled frame path runs every
 * candidate frame. Bit-identical to rfbme() — same chunking, same
 * ascending-offset merge.
 */
void rfbme_into(const Tensor &key, const Tensor &current,
                const RfbmeConfig &config, RfbmeResult &result,
                RfbmeWorkspace &ws);

/**
 * Reference implementation without tile reuse: every receptive field
 * difference is recomputed pixel by pixel. Must produce identical
 * vectors and errors to rfbme().
 */
RfbmeResult rfbme_naive(const Tensor &key, const Tensor &current,
                        const RfbmeConfig &config);

/** Activation-grid height RFBME produces for an image height. */
i64 rfbme_out_size(i64 image_extent, const RfbmeConfig &config);

} // namespace eva2

#endif // EVA2_FLOW_RFBME_H
