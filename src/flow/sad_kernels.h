/**
 * @file
 * Scalar SAD (sum of absolute differences) span/tile kernels: the
 * bit-exact reference contract shared by the RFBME diff-tile producer
 * and block matching.
 *
 * Contract (the `sum_squares` fixed-stripe convention): a span of n
 * pixels is accumulated into 8 double-precision stripes — element i
 * goes to stripe i%8, widened to double *before* the subtraction —
 * and the stripes are reduced pairwise as
 *
 *   ((s0+s1) + (s2+s3)) + ((s4+s5) + (s6+s7))
 *
 * Unused stripes stay +0.0, which is an exact no-op on a non-negative
 * sum, so the convention degrades cleanly for n < 8 (n=2 is exactly
 * e0+e1, n=4 exactly (e0+e1)+(e2+e3)). The SIMD implementations in
 * src/simd/simd_kernels.h follow the same operation sequence lane for
 * lane, so every variant is bit-identical on every input — which is
 * what lets the kernel tuner race them without perturbing end-to-end
 * digests or the per-frame `add_ops` account.
 *
 * This translation unit is compiled with baseline ISA flags: it is
 * the fallback on machines without SIMD support, so it must never be
 * built with vector extensions enabled.
 */
#ifndef EVA2_FLOW_SAD_KERNELS_H
#define EVA2_FLOW_SAD_KERNELS_H

#include "util/common.h"

namespace eva2 {

/**
 * Sum of |a[i] - b[i]| over i in [0, n) under the fixed-stripe
 * reduction contract above. Differences are taken in double
 * precision (each float is widened first).
 */
double sad_span(const float *a, const float *b, i64 n);

/**
 * One image row of `tiles` adjacent width-s tiles:
 * acc[t] += sad_span(a + t*s, b + t*s, s) for every t. Callers fold
 * tile rows in ascending y to build per-tile SADs; the per-row
 * accumulation order is part of the bit-exactness contract.
 */
void sad_tile_row(const float *a, const float *b, i64 tiles, i64 s,
                  double *acc);

} // namespace eva2

#endif // EVA2_FLOW_SAD_KERNELS_H
