#include "flow/rfbme.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "flow/sad_kernels.h"
#include "runtime/parallel_for.h"
#include "simd/simd_kernels.h"
#include "util/math_util.h"

namespace eva2 {

namespace {

/** Floor division that is correct for negative numerators. */
i64
floor_div(i64 a, i64 b)
{
    i64 q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) {
        --q;
    }
    return q;
}

/** Ceiling division that is correct for negative numerators. */
i64
ceil_div_signed(i64 a, i64 b)
{
    return -floor_div(-a, b);
}

/** The grid of candidate offsets (always includes the zero offset). */
std::vector<Vec2>
make_offsets(const RfbmeConfig &c)
{
    std::vector<Vec2> offsets;
    const i64 steps = c.search_radius / c.search_stride;
    for (i64 dy = -steps; dy <= steps; ++dy) {
        for (i64 dx = -steps; dx <= steps; ++dx) {
            offsets.push_back(Vec2{
                static_cast<double>(dy * c.search_stride),
                static_cast<double>(dx * c.search_stride)});
        }
    }
    return offsets;
}

/** The workspace's offset grid, rebuilt only when the search changed. */
const std::vector<Vec2> &
cached_offsets(const RfbmeConfig &c, RfbmeWorkspace &ws)
{
    if (!ws.offsets_valid || ws.offsets_radius != c.search_radius ||
        ws.offsets_stride != c.search_stride) {
        ws.offsets = make_offsets(c);
        ws.offsets_radius = c.search_radius;
        ws.offsets_stride = c.search_stride;
        ws.offsets_valid = true;
    }
    return ws.offsets;
}

/**
 * Full-tile range [t_lo, t_hi) covered by receptive field coordinate u
 * along one axis, clipped to the image's tile grid. A tile t covers
 * pixels [t*s, (t+1)*s); it belongs to the receptive field only if it
 * lies entirely within the field's window (partial tiles are ignored,
 * Section III-A).
 */
void
tile_range(i64 u, const RfbmeConfig &c, i64 tiles, i64 &t_lo, i64 &t_hi)
{
    const i64 s = c.rf_stride;
    const i64 start = u * c.rf_stride - c.rf_pad;
    t_lo = std::max<i64>(0, ceil_div_signed(start, s));
    t_hi = std::min<i64>(tiles, floor_div(start + c.rf_size, s));
}

/**
 * Range [t_lo, t_hi) of tiles that are *interior* for shift d along
 * one axis: every pixel of the shifted tile [t*s + d, (t+1)*s + d)
 * stays inside [0, extent). Everything outside the range needs the
 * guarded border loop.
 */
void
interior_tile_range(i64 d, i64 s, i64 extent, i64 tiles, i64 &t_lo,
                    i64 &t_hi)
{
    // Both bounds clamp to the tile grid: a shift past the image
    // makes the range empty, never out of range.
    t_lo = std::min(std::max<i64>(0, ceil_div_signed(-d, s)), tiles);
    t_hi = std::max(t_lo, std::min(tiles, floor_div(extent - d, s)));
}

/** The diff-tile row kernel a variant dispatches to. */
using SadTileRowFn = void (*)(const float *, const float *, i64, i64,
                              double *);

SadTileRowFn
sad_rows_for(RfbmeVariant variant)
{
    if (variant == RfbmeVariant::kSimd && simd_supported()) {
        return &sad_tile_row_simd;
    }
    return &sad_tile_row;
}

void
validate(const Tensor &key, const Tensor &current, const RfbmeConfig &c)
{
    require(key.shape() == current.shape(),
            "rfbme: frame shape mismatch");
    require(key.channels() == 1, "rfbme: frames must be single-channel");
    require(c.rf_size > 0 && c.rf_stride > 0 && c.rf_pad >= 0,
            "rfbme: invalid receptive-field geometry");
    require(c.search_radius >= 0 && c.search_stride > 0,
            "rfbme: invalid search parameters");
}

} // namespace

const char *
rfbme_variant_name(RfbmeVariant v)
{
    switch (v) {
      case RfbmeVariant::kScalar: return "scalar";
      case RfbmeVariant::kSimd: return "simd";
    }
    return "unknown";
}

i64
rfbme_out_size(i64 image_extent, const RfbmeConfig &config)
{
    return conv_out_size(image_extent, config.rf_size, config.rf_stride,
                         config.rf_pad);
}

void
rfbme_into(const Tensor &key, const Tensor &current,
           const RfbmeConfig &config, RfbmeResult &result,
           RfbmeWorkspace &ws)
{
    validate(key, current, config);
    const i64 h = key.height();
    const i64 w = key.width();
    const i64 s = config.rf_stride;
    const i64 tiles_y = h / s;
    const i64 tiles_x = w / s;
    const i64 out_h = rfbme_out_size(h, config);
    const i64 out_w = rfbme_out_size(w, config);
    const std::vector<Vec2> &offsets = cached_offsets(config, ws);

    result.field.resize_grid(out_h, out_w);
    result.rf_errors.assign(static_cast<size_t>(out_h * out_w),
                            std::numeric_limits<double>::infinity());
    result.add_ops = 0;

    const i64 cells = out_h * out_w;
    const size_t plane = static_cast<size_t>((tiles_y + 1) * (tiles_x + 1));
    const i64 num_offsets = static_cast<i64>(offsets.size());

    // The candidate-offset search parallelizes over fixed-size chunks
    // of the offset grid (the hardware runs the same search on
    // parallel adder trees). Each chunk computes its own per-cell
    // minimum and winning-offset index from scratch; the per-offset
    // arithmetic is untouched, and the merge below makes the combined
    // result independent of the partition, so the output is
    // bit-identical to the serial search for any thread count.
    const i64 offsets_per_chunk = 32;
    const i64 num_chunks = ceil_div(num_offsets, offsets_per_chunk);

    if (static_cast<i64>(ws.chunks.size()) < num_chunks) {
        ws.chunks.resize(static_cast<size_t>(num_chunks));
    }

    const SadTileRowFn sad_rows = sad_rows_for(config.variant);
    const float *cur_base = current.data().data();
    const float *key_base = key.data().data();

    parallel_for(0, num_chunks, [&](i64 ci) {
        RfbmeWorkspace::Chunk &cb = ws.chunks[static_cast<size_t>(ci)];
        cb.add_ops = 0;
        cb.best.assign(static_cast<size_t>(cells),
                       std::numeric_limits<double>::infinity());
        cb.winner.assign(static_cast<size_t>(cells), -1);

        // Per-offset tile difference and valid-pixel-count planes,
        // plus their 2D prefix sums for O(1) receptive-field
        // aggregation (the software analogue of the diff tile
        // consumer's rolling sums). Every element is rewritten per
        // offset before it is read, so a same-shape frame reuses the
        // stale planes as-is — resize only reshapes, it never clears.
        cb.prefix_diff.resize(plane);
        cb.prefix_count.resize(plane);
        cb.tile_diff.resize(static_cast<size_t>(tiles_y * tiles_x));
        cb.tile_count.resize(static_cast<size_t>(tiles_y * tiles_x));
        std::vector<double> &prefix_diff = cb.prefix_diff;
        std::vector<double> &prefix_count = cb.prefix_count;
        std::vector<double> &tile_diff = cb.tile_diff;
        std::vector<double> &tile_count = cb.tile_count;

        const i64 oi_lo = ci * offsets_per_chunk;
        const i64 oi_hi =
            std::min<i64>(num_offsets, oi_lo + offsets_per_chunk);
        for (i64 oi = oi_lo; oi < oi_hi; ++oi) {
            const Vec2 &off = offsets[static_cast<size_t>(oi)];
            const i64 dy = static_cast<i64>(off.dy);
            const i64 dx = static_cast<i64>(off.dx);

            // Guarded per-pixel border tile: part of the shifted tile
            // may fall outside the key frame. This loop is the oracle
            // tier — both variants run it verbatim.
            const auto border_tile = [&](i64 ty, i64 tx) {
                double d = 0.0;
                i64 n = 0;
                for (i64 y = ty * s; y < (ty + 1) * s; ++y) {
                    const i64 ky = y + dy;
                    if (ky < 0 || ky >= h) {
                        continue;
                    }
                    for (i64 x = tx * s; x < (tx + 1) * s; ++x) {
                        const i64 kx = x + dx;
                        if (kx < 0 || kx >= w) {
                            continue;
                        }
                        d += std::fabs(
                            static_cast<double>(current.at(0, y, x)) -
                            static_cast<double>(key.at(0, ky, kx)));
                        ++n;
                    }
                }
                tile_diff[static_cast<size_t>(ty * tiles_x + tx)] = d;
                tile_count[static_cast<size_t>(ty * tiles_x + tx)] =
                    static_cast<double>(n);
                cb.add_ops += n;
            };

            // Diff tile producer, split interior/border: a tile whose
            // shifted footprint is fully inside the key frame needs no
            // bounds checks and runs the fixed-stripe SAD row kernel
            // on raw row pointers (SIMD when the variant says so;
            // bit-identical either way — flow/sad_kernels.h).
            i64 ity_lo;
            i64 ity_hi;
            i64 itx_lo;
            i64 itx_hi;
            interior_tile_range(dy, s, h, tiles_y, ity_lo, ity_hi);
            interior_tile_range(dx, s, w, tiles_x, itx_lo, itx_hi);

            for (i64 ty = 0; ty < tiles_y; ++ty) {
                const bool row_interior = ty >= ity_lo && ty < ity_hi;
                const i64 ix_lo = row_interior ? itx_lo : 0;
                const i64 ix_hi = row_interior ? itx_hi : 0;
                for (i64 tx = 0; tx < ix_lo; ++tx) {
                    border_tile(ty, tx);
                }
                for (i64 tx = ix_hi; tx < tiles_x; ++tx) {
                    border_tile(ty, tx);
                }
                if (ix_lo >= ix_hi) {
                    continue;
                }
                const i64 ntiles = ix_hi - ix_lo;
                double *acc = tile_diff.data() + ty * tiles_x + ix_lo;
                std::fill(acc, acc + ntiles, 0.0);
                for (i64 y = ty * s; y < (ty + 1) * s; ++y) {
                    sad_rows(cur_base + y * w + ix_lo * s,
                             key_base + (y + dy) * w + ix_lo * s + dx,
                             ntiles, s, acc);
                }
                for (i64 tx = ix_lo; tx < ix_hi; ++tx) {
                    tile_count[static_cast<size_t>(ty * tiles_x + tx)] =
                        static_cast<double>(s * s);
                }
                cb.add_ops += ntiles * s * s;
            }

            // Prefix sums over the tile grid.
            for (i64 ty = 0; ty <= tiles_y; ++ty) {
                for (i64 tx = 0; tx <= tiles_x; ++tx) {
                    const size_t idx =
                        static_cast<size_t>(ty * (tiles_x + 1) + tx);
                    if (ty == 0 || tx == 0) {
                        prefix_diff[idx] = 0.0;
                        prefix_count[idx] = 0.0;
                        continue;
                    }
                    const size_t up = static_cast<size_t>(
                        (ty - 1) * (tiles_x + 1) + tx);
                    const size_t left = static_cast<size_t>(
                        ty * (tiles_x + 1) + tx - 1);
                    const size_t diag = static_cast<size_t>(
                        (ty - 1) * (tiles_x + 1) + tx - 1);
                    const size_t cell = static_cast<size_t>(
                        (ty - 1) * tiles_x + tx - 1);
                    prefix_diff[idx] = tile_diff[cell] +
                                       prefix_diff[up] +
                                       prefix_diff[left] -
                                       prefix_diff[diag];
                    prefix_count[idx] = tile_count[cell] +
                                        prefix_count[up] +
                                        prefix_count[left] -
                                        prefix_count[diag];
                    cb.add_ops += 6;
                }
            }

            // Diff tile consumer: aggregate tiles per receptive field
            // and track the running minimum (min-check register).
            for (i64 uy = 0; uy < out_h; ++uy) {
                i64 ty_lo;
                i64 ty_hi;
                tile_range(uy, config, tiles_y, ty_lo, ty_hi);
                if (ty_lo >= ty_hi) {
                    continue;
                }
                for (i64 ux = 0; ux < out_w; ++ux) {
                    i64 tx_lo;
                    i64 tx_hi;
                    tile_range(ux, config, tiles_x, tx_lo, tx_hi);
                    if (tx_lo >= tx_hi) {
                        continue;
                    }
                    auto rect = [&](const std::vector<double> &p) {
                        return p[static_cast<size_t>(
                                   ty_hi * (tiles_x + 1) + tx_hi)] -
                               p[static_cast<size_t>(
                                   ty_lo * (tiles_x + 1) + tx_hi)] -
                               p[static_cast<size_t>(
                                   ty_hi * (tiles_x + 1) + tx_lo)] +
                               p[static_cast<size_t>(
                                   ty_lo * (tiles_x + 1) + tx_lo)];
                    };
                    const double count = rect(prefix_count);
                    cb.add_ops += 6;
                    if (count <= 0.0) {
                        continue;
                    }
                    const double err = rect(prefix_diff) / count;
                    const size_t idx =
                        static_cast<size_t>(uy * out_w + ux);
                    if (err < cb.best[idx]) {
                        cb.best[idx] = err;
                        cb.winner[idx] = static_cast<i32>(oi);
                    }
                }
            }
        }
    });

    // Merge chunks in ascending offset order. Strict '<' comparisons
    // both inside chunks and here pick, per cell, the lowest-indexed
    // offset attaining the minimal error — exactly the offset the
    // serial running-minimum loop selects.
    ws.merge_best.assign(static_cast<size_t>(cells),
                         std::numeric_limits<double>::infinity());
    std::vector<double> &best = ws.merge_best;
    for (i64 ci = 0; ci < num_chunks; ++ci) {
        const RfbmeWorkspace::Chunk &cb =
            ws.chunks[static_cast<size_t>(ci)];
        result.add_ops += cb.add_ops;
        for (i64 cell = 0; cell < cells; ++cell) {
            const size_t idx = static_cast<size_t>(cell);
            if (cb.winner[idx] < 0 || !(cb.best[idx] < best[idx])) {
                continue;
            }
            best[idx] = cb.best[idx];
            result.field.at(cell / out_w, cell % out_w) =
                offsets[static_cast<size_t>(cb.winner[idx])];
            result.rf_errors[idx] = cb.best[idx];
        }
    }

    result.total_error = 0.0;
    for (double &e : result.rf_errors) {
        if (std::isinf(e)) {
            e = 0.0;
        }
        result.total_error += e;
    }
    result.mean_error =
        result.rf_errors.empty()
            ? 0.0
            : result.total_error /
                  static_cast<double>(result.rf_errors.size());
}

RfbmeResult
rfbme(const Tensor &key, const Tensor &current, const RfbmeConfig &config)
{
    RfbmeResult result;
    RfbmeWorkspace ws;
    rfbme_into(key, current, config, result, ws);
    return result;
}

RfbmeResult
rfbme_naive(const Tensor &key, const Tensor &current,
            const RfbmeConfig &config)
{
    validate(key, current, config);
    const i64 h = key.height();
    const i64 w = key.width();
    const i64 s = config.rf_stride;
    const i64 tiles_y = h / s;
    const i64 tiles_x = w / s;
    const i64 out_h = rfbme_out_size(h, config);
    const i64 out_w = rfbme_out_size(w, config);
    const std::vector<Vec2> offsets = make_offsets(config);

    RfbmeResult result;
    result.field = MotionField(out_h, out_w);
    result.rf_errors.assign(static_cast<size_t>(out_h * out_w), 0.0);

    for (i64 uy = 0; uy < out_h; ++uy) {
        i64 ty_lo;
        i64 ty_hi;
        tile_range(uy, config, tiles_y, ty_lo, ty_hi);
        for (i64 ux = 0; ux < out_w; ++ux) {
            i64 tx_lo;
            i64 tx_hi;
            tile_range(ux, config, tiles_x, tx_lo, tx_hi);
            if (ty_lo >= ty_hi || tx_lo >= tx_hi) {
                continue;
            }
            double best_err = std::numeric_limits<double>::infinity();
            Vec2 best_off{0.0, 0.0};
            for (const Vec2 &off : offsets) {
                const i64 dy = static_cast<i64>(off.dy);
                const i64 dx = static_cast<i64>(off.dx);
                double d = 0.0;
                i64 n = 0;
                for (i64 y = ty_lo * s; y < ty_hi * s; ++y) {
                    const i64 ky = y + dy;
                    if (ky < 0 || ky >= h) {
                        continue;
                    }
                    for (i64 x = tx_lo * s; x < tx_hi * s; ++x) {
                        const i64 kx = x + dx;
                        if (kx < 0 || kx >= w) {
                            continue;
                        }
                        d += std::fabs(
                            static_cast<double>(current.at(0, y, x)) -
                            static_cast<double>(key.at(0, ky, kx)));
                        ++n;
                    }
                }
                result.add_ops += n;
                if (n == 0) {
                    continue;
                }
                const double err = d / static_cast<double>(n);
                if (err < best_err) {
                    best_err = err;
                    best_off = off;
                }
            }
            if (!std::isinf(best_err)) {
                result.field.at(uy, ux) = best_off;
                result.rf_errors[static_cast<size_t>(uy * out_w + ux)] =
                    best_err;
            }
        }
    }

    for (double e : result.rf_errors) {
        result.total_error += e;
    }
    result.mean_error =
        result.rf_errors.empty()
            ? 0.0
            : result.total_error /
                  static_cast<double>(result.rf_errors.size());
    return result;
}

} // namespace eva2
