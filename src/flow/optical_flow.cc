#include "flow/optical_flow.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace eva2 {

namespace {

/** Central-difference spatial gradients of a single-channel image. */
void
gradients(const Tensor &img, Tensor &gy, Tensor &gx)
{
    const i64 h = img.height();
    const i64 w = img.width();
    gy = Tensor(1, h, w);
    gx = Tensor(1, h, w);
    for (i64 y = 0; y < h; ++y) {
        for (i64 x = 0; x < w; ++x) {
            const float yp = img.at_padded(0, y + 1, x);
            const float ym = img.at_padded(0, y - 1, x);
            const float xp = img.at_padded(0, y, x + 1);
            const float xm = img.at_padded(0, y, x - 1);
            gy.at(0, y, x) = 0.5f * (yp - ym);
            gx.at(0, y, x) = 0.5f * (xp - xm);
        }
    }
}

/** One Lucas-Kanade refinement pass at a single scale. */
void
lk_refine(const Tensor &from, const Tensor &to,
          const LucasKanadeConfig &c, MotionField &flow)
{
    const i64 h = from.height();
    const i64 w = from.width();
    Tensor gy;
    Tensor gx;
    gradients(from, gy, gx);
    const i64 half = c.window / 2;

    for (i64 iter = 0; iter < c.iterations; ++iter) {
        MotionField next = flow;
        for (i64 y = 0; y < h; ++y) {
            for (i64 x = 0; x < w; ++x) {
                const Vec2 cur = flow.at(y, x);
                double a11 = 0.0;
                double a12 = 0.0;
                double a22 = 0.0;
                double b1 = 0.0;
                double b2 = 0.0;
                for (i64 wy = -half; wy <= half; ++wy) {
                    const i64 py = y + wy;
                    if (py < 0 || py >= h) {
                        continue;
                    }
                    for (i64 wx = -half; wx <= half; ++wx) {
                        const i64 px = x + wx;
                        if (px < 0 || px >= w) {
                            continue;
                        }
                        const double iy = gy.at(0, py, px);
                        const double ix = gx.at(0, py, px);
                        // Temporal difference with the current warp.
                        const double warped = bilinear_sample(
                            to, 0, static_cast<double>(py) + cur.dy,
                            static_cast<double>(px) + cur.dx);
                        const double it =
                            warped - static_cast<double>(
                                         from.at(0, py, px));
                        a11 += iy * iy;
                        a12 += iy * ix;
                        a22 += ix * ix;
                        b1 += iy * it;
                        b2 += ix * it;
                    }
                }
                const double det = a11 * a22 - a12 * a12;
                if (std::fabs(det) < 1e-9) {
                    continue;
                }
                const double ddy = (-a22 * b1 + a12 * b2) / det;
                const double ddx = (a12 * b1 - a11 * b2) / det;
                // Damped update keeps the iteration stable on the
                // strongly textured synthetic inputs.
                next.at(y, x) =
                    Vec2{cur.dy + 0.8 * ddy, cur.dx + 0.8 * ddx};
            }
        }
        flow = next;
    }
}

/** Bilinearly upsample a flow field to a larger grid, scaling x2. */
MotionField
upsample_flow(const MotionField &coarse, i64 out_h, i64 out_w)
{
    MotionField fine(out_h, out_w);
    for (i64 y = 0; y < out_h; ++y) {
        for (i64 x = 0; x < out_w; ++x) {
            const double sy = std::min(
                static_cast<double>(coarse.height() - 1),
                static_cast<double>(y) / 2.0);
            const double sx = std::min(
                static_cast<double>(coarse.width() - 1),
                static_cast<double>(x) / 2.0);
            const i64 y0 = static_cast<i64>(std::floor(sy));
            const i64 x0 = static_cast<i64>(std::floor(sx));
            const i64 y1 = std::min(coarse.height() - 1, y0 + 1);
            const i64 x1 = std::min(coarse.width() - 1, x0 + 1);
            const double fy = sy - static_cast<double>(y0);
            const double fx = sx - static_cast<double>(x0);
            const Vec2 v00 = coarse.at(y0, x0);
            const Vec2 v01 = coarse.at(y0, x1);
            const Vec2 v10 = coarse.at(y1, x0);
            const Vec2 v11 = coarse.at(y1, x1);
            Vec2 top = v00 * (1.0 - fx) + v01 * fx;
            Vec2 bot = v10 * (1.0 - fx) + v11 * fx;
            fine.at(y, x) = (top * (1.0 - fy) + bot * fy) * 2.0;
        }
    }
    return fine;
}

} // namespace

Tensor
downsample2(const Tensor &t)
{
    const i64 h = std::max<i64>(1, t.height() / 2);
    const i64 w = std::max<i64>(1, t.width() / 2);
    Tensor out(t.channels(), h, w);
    for (i64 c = 0; c < t.channels(); ++c) {
        for (i64 y = 0; y < h; ++y) {
            for (i64 x = 0; x < w; ++x) {
                float acc = 0.0f;
                int n = 0;
                for (i64 sy = 2 * y; sy < std::min(t.height(), 2 * y + 2);
                     ++sy) {
                    for (i64 sx = 2 * x;
                         sx < std::min(t.width(), 2 * x + 2); ++sx) {
                        acc += t.at(c, sy, sx);
                        ++n;
                    }
                }
                out.at(c, y, x) = acc / static_cast<float>(n);
            }
        }
    }
    return out;
}

MotionField
lucas_kanade(const Tensor &from, const Tensor &to,
             const LucasKanadeConfig &config)
{
    require(from.shape() == to.shape(), "lucas_kanade: shape mismatch");
    require(from.channels() == 1, "lucas_kanade: single-channel only");

    // Build pyramids.
    std::vector<Tensor> pyr_from{from};
    std::vector<Tensor> pyr_to{to};
    for (i64 l = 1; l < config.pyramid_levels; ++l) {
        if (pyr_from.back().height() < 16 ||
            pyr_from.back().width() < 16) {
            break;
        }
        pyr_from.push_back(downsample2(pyr_from.back()));
        pyr_to.push_back(downsample2(pyr_to.back()));
    }

    MotionField flow(pyr_from.back().height(), pyr_from.back().width());
    for (i64 l = static_cast<i64>(pyr_from.size()) - 1; l >= 0; --l) {
        if (l != static_cast<i64>(pyr_from.size()) - 1) {
            flow = upsample_flow(flow, pyr_from[static_cast<size_t>(l)]
                                           .height(),
                                 pyr_from[static_cast<size_t>(l)].width());
        }
        lk_refine(pyr_from[static_cast<size_t>(l)],
                  pyr_to[static_cast<size_t>(l)], config, flow);
    }
    return flow;
}

MotionField
horn_schunck(const Tensor &from, const Tensor &to,
             const HornSchunckConfig &config)
{
    require(from.shape() == to.shape(), "horn_schunck: shape mismatch");
    require(from.channels() == 1, "horn_schunck: single-channel only");
    const i64 h = from.height();
    const i64 w = from.width();

    // Gradients of the average image plus the temporal difference.
    Tensor gy;
    Tensor gx;
    Tensor avg(1, h, w);
    for (i64 i = 0; i < avg.size(); ++i) {
        avg[i] = 0.5f * (from[i] + to[i]);
    }
    gradients(avg, gy, gx);
    Tensor gt(1, h, w);
    for (i64 i = 0; i < gt.size(); ++i) {
        gt[i] = to[i] - from[i];
    }

    // Normalize the brightness scale so the data term's weight is
    // independent of the input's dynamic range ([0,1] frames would
    // otherwise be swamped by any fixed alpha).
    double mean = 0.0;
    for (i64 i = 0; i < avg.size(); ++i) {
        mean += avg[i];
    }
    mean /= static_cast<double>(avg.size());
    double var = 0.0;
    for (i64 i = 0; i < avg.size(); ++i) {
        const double d = avg[i] - mean;
        var += d * d;
    }
    var /= static_cast<double>(avg.size());
    const double stddev = std::sqrt(var);
    if (stddev > 1e-9) {
        const float inv = static_cast<float>(1.0 / stddev);
        for (i64 i = 0; i < gy.size(); ++i) {
            gy[i] *= inv;
            gx[i] *= inv;
            gt[i] *= inv;
        }
    }

    MotionField flow(h, w);
    const double alpha2 = config.alpha * config.alpha;
    for (i64 iter = 0; iter < config.iterations; ++iter) {
        MotionField next(h, w);
        for (i64 y = 0; y < h; ++y) {
            for (i64 x = 0; x < w; ++x) {
                // 4-neighbour average of the current field (Jacobi).
                Vec2 bar{0.0, 0.0};
                int n = 0;
                const i64 ny[4] = {y - 1, y + 1, y, y};
                const i64 nx[4] = {x, x, x - 1, x + 1};
                for (int k = 0; k < 4; ++k) {
                    if (ny[k] < 0 || ny[k] >= h || nx[k] < 0 ||
                        nx[k] >= w) {
                        continue;
                    }
                    bar = bar + flow.at(ny[k], nx[k]);
                    ++n;
                }
                if (n > 0) {
                    bar = bar * (1.0 / static_cast<double>(n));
                }
                const double iy = gy.at(0, y, x);
                const double ix = gx.at(0, y, x);
                const double it = gt.at(0, y, x);
                const double denom = alpha2 + iy * iy + ix * ix;
                const double common =
                    (iy * bar.dy + ix * bar.dx + it) / denom;
                next.at(y, x) =
                    Vec2{bar.dy - iy * common, bar.dx - ix * common};
            }
        }
        flow = next;
    }
    return flow;
}

} // namespace eva2
