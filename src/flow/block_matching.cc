#include "flow/block_matching.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "flow/sad_kernels.h"
#include "runtime/parallel_for.h"
#include "simd/simd_kernels.h"

namespace eva2 {

double
block_mad(const Tensor &key, const Tensor &current, i64 by, i64 bx,
          i64 block, i64 dy, i64 dx)
{
    // Per in-bounds block row, the in-bounds pixels form one
    // contiguous span, so the whole row is a single fixed-stripe SAD
    // call (flow/sad_kernels.h) on raw row pointers. The SIMD and
    // scalar span kernels are bit-identical, so the one-time dispatch
    // never changes the result.
    static const auto sad =
        simd_supported() ? &sad_span_simd : &sad_span;
    const i64 h = key.height();
    const i64 w = key.width();
    const i64 y_lo = std::max(by, -dy);
    const i64 y_hi = std::min(std::min(by + block, h), h - dy);
    const i64 x_lo = std::max(bx, -dx);
    const i64 x_hi = std::min(std::min(bx + block, w), w - dx);
    const i64 span = x_hi - x_lo;
    if (span <= 0 || y_lo >= y_hi) {
        return std::numeric_limits<double>::infinity();
    }
    const float *cur_base = current.data().data();
    const float *key_base = key.data().data();
    double acc = 0.0;
    for (i64 y = y_lo; y < y_hi; ++y) {
        acc += sad(cur_base + y * w + x_lo,
                   key_base + (y + dy) * w + x_lo + dx, span);
    }
    const i64 n = (y_hi - y_lo) * span;
    return acc / static_cast<double>(n);
}

void
exhaustive_block_match_into(const Tensor &key, const Tensor &current,
                       const BlockMatchConfig &c, MotionField &out)
{
    require(key.shape() == current.shape(),
            "block match: frame shape mismatch");
    require(c.block_size > 0 && c.search_radius >= 0 && c.search_stride > 0,
            "block match: bad config");
    const i64 bh = key.height() / c.block_size;
    const i64 bw = key.width() / c.block_size;
    out.resize_grid(bh, bw);
    MotionField &field = out;
    // Blocks are independent — each (by, bx) writes only its own
    // field cell and scans the offset grid in the same serial order —
    // so parallelizing over block rows is bit-identical for any
    // thread count.
    parallel_for(0, bh, [&](i64 by) {
        for (i64 bx = 0; bx < bw; ++bx) {
            double best = std::numeric_limits<double>::infinity();
            Vec2 best_off{0.0, 0.0};
            for (i64 dy = -c.search_radius; dy <= c.search_radius;
                 dy += c.search_stride) {
                for (i64 dx = -c.search_radius; dx <= c.search_radius;
                     dx += c.search_stride) {
                    const double err =
                        block_mad(key, current, by * c.block_size,
                                  bx * c.block_size, c.block_size, dy, dx);
                    if (err < best) {
                        best = err;
                        best_off = Vec2{static_cast<double>(dy),
                                        static_cast<double>(dx)};
                    }
                }
            }
            field.at(by, bx) = best_off;
        }
    });
}

void
three_step_search_into(const Tensor &key, const Tensor &current,
                  const BlockMatchConfig &c, MotionField &out)
{
    require(key.shape() == current.shape(),
            "three step search: frame shape mismatch");
    require(c.block_size > 0 && c.search_radius >= 0 &&
                c.search_stride > 0,
            "three step search: bad config");
    const i64 bh = key.height() / c.block_size;
    const i64 bw = key.width() / c.block_size;
    out.resize_grid(bh, bw);
    MotionField &field = out;
    for (i64 by = 0; by < bh; ++by) {
        for (i64 bx = 0; bx < bw; ++bx) {
            i64 cy = 0;
            i64 cx = 0;
            double best = block_mad(key, current, by * c.block_size,
                                    bx * c.block_size, c.block_size, 0, 0);
            i64 step = std::max<i64>(1, c.search_radius / 2);
            while (step >= 1) {
                i64 next_cy = cy;
                i64 next_cx = cx;
                for (i64 sy = -1; sy <= 1; ++sy) {
                    for (i64 sx = -1; sx <= 1; ++sx) {
                        if (sy == 0 && sx == 0) {
                            continue;
                        }
                        const i64 dy = cy + sy * step;
                        const i64 dx = cx + sx * step;
                        if (std::abs(dy) > c.search_radius ||
                            std::abs(dx) > c.search_radius) {
                            continue;
                        }
                        const double err = block_mad(
                            key, current, by * c.block_size,
                            bx * c.block_size, c.block_size, dy, dx);
                        if (err < best) {
                            best = err;
                            next_cy = dy;
                            next_cx = dx;
                        }
                    }
                }
                cy = next_cy;
                cx = next_cx;
                step /= 2;
            }
            field.at(by, bx) = Vec2{static_cast<double>(cy),
                                    static_cast<double>(cx)};
        }
    }
}

void
diamond_search_into(const Tensor &key, const Tensor &current,
               const BlockMatchConfig &c, MotionField &out)
{
    require(key.shape() == current.shape(),
            "diamond search: frame shape mismatch");
    require(c.block_size > 0 && c.search_radius >= 0,
            "diamond search: bad config");
    // Large diamond search pattern (LDSP): centre plus 8 points at
    // Chebyshev/Manhattan distance 2; small pattern (SDSP): the 4
    // direct neighbours (Zhu & Ma 1997).
    static constexpr i64 kLdsp[8][2] = {{-2, 0}, {-1, -1}, {-1, 1},
                                        {0, -2}, {0, 2},   {1, -1},
                                        {1, 1},  {2, 0}};
    static constexpr i64 kSdsp[4][2] = {{-1, 0}, {0, -1}, {0, 1}, {1, 0}};

    const i64 bh = key.height() / c.block_size;
    const i64 bw = key.width() / c.block_size;
    out.resize_grid(bh, bw);
    MotionField &field = out;
    for (i64 by = 0; by < bh; ++by) {
        for (i64 bx = 0; bx < bw; ++bx) {
            const i64 oy = by * c.block_size;
            const i64 ox = bx * c.block_size;
            i64 cy = 0;
            i64 cx = 0;
            double best =
                block_mad(key, current, oy, ox, c.block_size, 0, 0);

            // LDSP until the centre wins (bounded by the search
            // radius so pathological inputs terminate).
            for (i64 iter = 0; iter <= 2 * c.search_radius; ++iter) {
                i64 next_cy = cy;
                i64 next_cx = cx;
                for (const auto &d : kLdsp) {
                    const i64 dy = cy + d[0];
                    const i64 dx = cx + d[1];
                    if (std::abs(dy) > c.search_radius ||
                        std::abs(dx) > c.search_radius) {
                        continue;
                    }
                    const double err = block_mad(key, current, oy, ox,
                                                 c.block_size, dy, dx);
                    if (err < best) {
                        best = err;
                        next_cy = dy;
                        next_cx = dx;
                    }
                }
                if (next_cy == cy && next_cx == cx) {
                    break;
                }
                cy = next_cy;
                cx = next_cx;
            }

            // Final SDSP refinement.
            for (const auto &d : kSdsp) {
                const i64 dy = cy + d[0];
                const i64 dx = cx + d[1];
                if (std::abs(dy) > c.search_radius ||
                    std::abs(dx) > c.search_radius) {
                    continue;
                }
                const double err = block_mad(key, current, oy, ox,
                                             c.block_size, dy, dx);
                if (err < best) {
                    best = err;
                    cy = dy;
                    cx = dx;
                }
            }
            field.at(by, bx) = Vec2{static_cast<double>(cy),
                                    static_cast<double>(cx)};
        }
    }
}

MotionField
exhaustive_block_match(const Tensor &key, const Tensor &current,
                       const BlockMatchConfig &config)
{
    MotionField out;
    exhaustive_block_match_into(key, current, config, out);
    return out;
}

MotionField
three_step_search(const Tensor &key, const Tensor &current,
                  const BlockMatchConfig &config)
{
    MotionField out;
    three_step_search_into(key, current, config, out);
    return out;
}

MotionField
diamond_search(const Tensor &key, const Tensor &current,
               const BlockMatchConfig &config)
{
    MotionField out;
    diamond_search_into(key, current, config, out);
    return out;
}

} // namespace eva2
