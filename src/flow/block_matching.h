/**
 * @file
 * Classic block-matching motion estimation, the family of algorithms
 * from video codecs that RFBME specializes (Section II-C1 cites
 * exhaustive search and fast variants such as three-step search).
 * These serve as baselines and as building blocks in tests.
 */
#ifndef EVA2_FLOW_BLOCK_MATCHING_H
#define EVA2_FLOW_BLOCK_MATCHING_H

#include "flow/motion_field.h"
#include "tensor/tensor.h"

namespace eva2 {

/** Parameters for block matching. */
struct BlockMatchConfig
{
    i64 block_size = 8;
    i64 search_radius = 8;
    i64 search_stride = 1;
};

/**
 * Exhaustive (full-search) block matching: for every block of the
 * current frame, scan all offsets within the radius in the key frame
 * and pick the minimum mean absolute difference. Returns a field on
 * the block grid (height/block_size x width/block_size) of backward
 * source offsets in pixels.
 */
MotionField exhaustive_block_match(const Tensor &key, const Tensor &current,
                                   const BlockMatchConfig &config);

/**
 * exhaustive_block_match into a caller-owned field (resized in
 * place): the allocation-free form for per-frame serving loops.
 */
void exhaustive_block_match_into(const Tensor &key, const Tensor &current,
                                 const BlockMatchConfig &config,
                                 MotionField &out);

/**
 * Three-step search: a logarithmic refinement that evaluates 9 points
 * per step with a halving step size. Much cheaper than exhaustive
 * search and usually close in quality (Li, Zeng, Liou 1994).
 */
MotionField three_step_search(const Tensor &key, const Tensor &current,
                              const BlockMatchConfig &config);

/** three_step_search into a caller-owned field (resized in place). */
void three_step_search_into(const Tensor &key, const Tensor &current,
                            const BlockMatchConfig &config,
                            MotionField &out);

/**
 * Diamond search: repeated large-diamond refinement followed by one
 * small-diamond step (Zhu & Ma 1997). The cheapest of the classic
 * fast searches; gradient-descent-like, so it can stop in a local
 * minimum on repetitive textures.
 */
MotionField diamond_search(const Tensor &key, const Tensor &current,
                           const BlockMatchConfig &config);

/** diamond_search into a caller-owned field (resized in place). */
void diamond_search_into(const Tensor &key, const Tensor &current,
                         const BlockMatchConfig &config,
                         MotionField &out);

/**
 * Mean absolute difference between a block of `current` anchored at
 * (by, bx) and the block of `key` displaced by (dy, dx), counting only
 * in-bounds pixels. Returns infinity when no pixels overlap.
 */
double block_mad(const Tensor &key, const Tensor &current, i64 by, i64 bx,
                 i64 block, i64 dy, i64 dx);

} // namespace eva2

#endif // EVA2_FLOW_BLOCK_MATCHING_H
