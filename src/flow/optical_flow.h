/**
 * @file
 * Dense pixel-level optical flow baselines for the Figure 14
 * comparison: classic Lucas-Kanade (iterative, pyramidal) and
 * Horn-Schunck (variational). Horn-Schunck stands in for the paper's
 * FlowNet2-s baseline — we cannot ship trained CNN flow weights, and
 * H-S plays the same role: a dense, smooth, sub-pixel flow field that
 * is far more expensive than RFBME (see DESIGN.md, substitutions).
 *
 * Both estimators are invoked in the new-to-key direction so their
 * output is a backward source-offset field (see motion_field.h).
 */
#ifndef EVA2_FLOW_OPTICAL_FLOW_H
#define EVA2_FLOW_OPTICAL_FLOW_H

#include "flow/motion_field.h"
#include "tensor/tensor.h"

namespace eva2 {

/** Lucas-Kanade parameters. */
struct LucasKanadeConfig
{
    i64 window = 9;         ///< Square aggregation window.
    i64 iterations = 3;     ///< Warp-refine iterations per level.
    i64 pyramid_levels = 3; ///< Coarse-to-fine levels.
};

/** Horn-Schunck parameters. */
struct HornSchunckConfig
{
    /**
     * Smoothness weight, relative to unit-variance brightness (the
     * solver normalizes gradients by the input's standard deviation).
     */
    double alpha = 1.0;
    i64 iterations = 200; ///< Jacobi relaxation iterations.
};

/**
 * Dense Lucas-Kanade flow from `from` to `to`: returns a per-pixel
 * field d with to(u + d(u)) ~= from(u). Call with from = new frame,
 * to = key frame to get the backward field AMC consumes.
 */
MotionField lucas_kanade(const Tensor &from, const Tensor &to,
                         const LucasKanadeConfig &config = {});

/** Dense Horn-Schunck flow, same conventions as lucas_kanade(). */
MotionField horn_schunck(const Tensor &from, const Tensor &to,
                         const HornSchunckConfig &config = {});

/** Box-filtered 2x downsample used by the pyramid (exposed for tests). */
Tensor downsample2(const Tensor &t);

} // namespace eva2

#endif // EVA2_FLOW_OPTICAL_FLOW_H
