#include "flow/motion_field.h"

#include <algorithm>

namespace eva2 {

void
average_to_grid_into(const MotionField &dense, i64 out_h, i64 out_w,
                     i64 size, i64 stride, i64 pad, MotionField &out)
{
    require(&out != &dense, "average_to_grid_into: out aliases input");
    out.resize_grid(out_h, out_w);
    for (i64 uy = 0; uy < out_h; ++uy) {
        const i64 y_lo = std::max<i64>(0, uy * stride - pad);
        const i64 y_hi =
            std::min(dense.height(), uy * stride - pad + size);
        for (i64 ux = 0; ux < out_w; ++ux) {
            const i64 x_lo = std::max<i64>(0, ux * stride - pad);
            const i64 x_hi =
                std::min(dense.width(), ux * stride - pad + size);
            Vec2 acc{0.0, 0.0};
            i64 count = 0;
            for (i64 y = y_lo; y < y_hi; ++y) {
                for (i64 x = x_lo; x < x_hi; ++x) {
                    acc = acc + dense.at(y, x);
                    ++count;
                }
            }
            if (count > 0) {
                out.at(uy, ux) =
                    acc * (1.0 / static_cast<double>(count));
            }
        }
    }
}

MotionField
average_to_grid(const MotionField &dense, i64 out_h, i64 out_w, i64 size,
                i64 stride, i64 pad)
{
    MotionField out;
    average_to_grid_into(dense, out_h, out_w, size, stride, pad, out);
    return out;
}

} // namespace eva2
