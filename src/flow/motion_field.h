/**
 * @file
 * Motion vector fields.
 *
 * Every motion estimator in this library produces a *backward* field of
 * source offsets: for a grid position u in the new frame, v(u) is the
 * relative position in the key frame the content at u came from, i.e.
 *
 *     new(u) ~= key(u + v(u)).
 *
 * This is exactly the quantity activation warping consumes: the
 * predicted activation at u is read from the stored key activation at
 * u + v(u) / stride (Section II-B). Block-matching offsets are
 * backward by construction ("the location of the closest matching
 * reference block"); the optical-flow estimators are run in the
 * new-to-key direction to match.
 */
#ifndef EVA2_FLOW_MOTION_FIELD_H
#define EVA2_FLOW_MOTION_FIELD_H

#include <cmath>
#include <vector>

#include "util/common.h"

namespace eva2 {

/** A 2D displacement in (row, column) order. */
struct Vec2
{
    double dy = 0.0;
    double dx = 0.0;

    double magnitude() const { return std::hypot(dy, dx); }

    Vec2
    operator+(const Vec2 &o) const
    {
        return {dy + o.dy, dx + o.dx};
    }

    Vec2
    operator*(double s) const
    {
        return {dy * s, dx * s};
    }

    bool
    operator==(const Vec2 &o) const
    {
        return dy == o.dy && dx == o.dx;
    }

    bool operator!=(const Vec2 &o) const { return !(*this == o); }
};

/** A dense grid of displacement vectors at some granularity. */
class MotionField
{
  public:
    MotionField() = default;

    /** A zero field of the given grid size. */
    MotionField(i64 h, i64 w)
        : h_(h), w_(w),
          v_(static_cast<size_t>(h * w))
    {
        require(h >= 0 && w >= 0, "motion field dims must be >= 0");
    }

    /** A constant field (every cell = vec). */
    static MotionField
    uniform(i64 h, i64 w, Vec2 vec)
    {
        MotionField f(h, w);
        for (auto &cell : f.v_) {
            cell = vec;
        }
        return f;
    }

    i64 height() const { return h_; }
    i64 width() const { return w_; }
    i64 size() const { return h_ * w_; }

    /**
     * Re-size the grid in place to (h, w), zero-filling every cell,
     * without shrinking the underlying storage. This is the
     * motion-field analogue of Tensor::reshape_to: a field reused as
     * an estimator output performs no steady-state allocation once it
     * has grown to the largest grid it is asked for.
     */
    void
    resize_grid(i64 h, i64 w)
    {
        require(h >= 0 && w >= 0, "motion field dims must be >= 0");
        h_ = h;
        w_ = w;
        v_.assign(static_cast<size_t>(h * w), Vec2{});
    }

    Vec2 &
    at(i64 y, i64 x)
    {
        return v_[static_cast<size_t>(y * w_ + x)];
    }

    const Vec2 &
    at(i64 y, i64 x) const
    {
        return v_[static_cast<size_t>(y * w_ + x)];
    }

    /** Sum of vector magnitudes: the paper's "total motion magnitude"
     * key-frame feature (Section II-C4). */
    double
    total_magnitude() const
    {
        double acc = 0.0;
        for (const Vec2 &vec : v_) {
            acc += vec.magnitude();
        }
        return acc;
    }

    /** Mean vector magnitude over the grid. */
    double
    mean_magnitude() const
    {
        return v_.empty()
                   ? 0.0
                   : total_magnitude() / static_cast<double>(v_.size());
    }

    /** Scale every vector by s (e.g. 1/stride for activation space). */
    MotionField
    scaled(double s) const
    {
        MotionField out(h_, w_);
        for (size_t i = 0; i < v_.size(); ++i) {
            out.v_[i] = v_[i] * s;
        }
        return out;
    }

  private:
    i64 h_ = 0;
    i64 w_ = 0;
    std::vector<Vec2> v_;
};

/**
 * Reduce a dense per-pixel field to receptive-field granularity by
 * averaging the vectors inside each receptive field's pixel window —
 * the conversion the paper applies to the pixel-level baselines in
 * its Figure 14 comparison.
 *
 * @param dense   Per-pixel field (h x w in image coordinates).
 * @param out_h   Target grid height (activation rows).
 * @param out_w   Target grid width (activation columns).
 * @param size    Receptive-field extent in pixels.
 * @param stride  Receptive-field stride in pixels.
 * @param pad     Receptive-field padding in pixels.
 */
MotionField average_to_grid(const MotionField &dense, i64 out_h, i64 out_w,
                            i64 size, i64 stride, i64 pad);

/**
 * average_to_grid into a caller-owned field (resized in place), the
 * allocation-free form the compiled frame path uses. `out` must not
 * alias `dense`.
 */
void average_to_grid_into(const MotionField &dense, i64 out_h, i64 out_w,
                          i64 size, i64 stride, i64 pad,
                          MotionField &out);

} // namespace eva2

#endif // EVA2_FLOW_MOTION_FIELD_H
