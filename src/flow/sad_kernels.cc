// eva2-lint: hot-path
#include "flow/sad_kernels.h"

#include <cmath>

namespace eva2 {

double
sad_span(const float *a, const float *b, i64 n)
{
    // Eight independent accumulator stripes (see the header contract):
    // element i lands in stripe i%8, and the final pairwise reduction
    // is the fixed tree every variant must reproduce exactly.
    double acc[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
    i64 i = 0;
    for (; i + 8 <= n; i += 8) {
        for (i64 l = 0; l < 8; ++l) {
            acc[l] += std::fabs(static_cast<double>(a[i + l]) -
                                static_cast<double>(b[i + l]));
        }
    }
    for (; i < n; ++i) {
        acc[i % 8] += std::fabs(static_cast<double>(a[i]) -
                                static_cast<double>(b[i]));
    }
    const double s01 = acc[0] + acc[1];
    const double s23 = acc[2] + acc[3];
    const double s45 = acc[4] + acc[5];
    const double s67 = acc[6] + acc[7];
    return (s01 + s23) + (s45 + s67);
}

void
sad_tile_row(const float *a, const float *b, i64 tiles, i64 s,
             double *acc)
{
    for (i64 t = 0; t < tiles; ++t) {
        acc[t] += sad_span(a + t * s, b + t * s, s);
    }
}

} // namespace eva2
