#include "eval/detector.h"

#include <algorithm>
#include <cmath>

#include "video/scenarios.h"

namespace eva2 {

namespace {

/** Background label used by the per-cell classifier. */
constexpr i64 kBackground = kNumClasses;

/** A single-sprite calibration scene with a known class and size. */
SceneConfig
calibration_scene(u64 seed, i64 cls, i64 height, i64 width,
                  double half_size, double speed)
{
    SceneConfig cfg;
    cfg.height = height;
    cfg.width = width;
    cfg.seed = seed;
    Rng rng(seed);
    SpriteConfig s;
    s.cls = cls;
    s.half_h = half_size * rng.uniform(0.85, 1.2);
    s.half_w = half_size * rng.uniform(0.85, 1.2);
    s.cy = rng.uniform(s.half_h + 2.0,
                       static_cast<double>(height) - s.half_h - 2.0);
    s.cx = rng.uniform(s.half_w + 2.0,
                       static_cast<double>(width) - s.half_w - 2.0);
    const double angle = rng.uniform(0.0, 2.0 * M_PI);
    s.vy = speed * std::sin(angle);
    s.vx = speed * std::cos(angle);
    s.phase = rng.uniform(0.0, 2.0 * M_PI);
    cfg.sprites.push_back(s);
    return cfg;
}

} // namespace

double
ActivationDetector::cell_center(i64 u) const
{
    return static_cast<double>(u * rf_.stride - rf_.pad) +
           static_cast<double>(rf_.size - 1) / 2.0;
}

std::vector<float>
ActivationDetector::cell_features(const Tensor &activation, i64 y,
                                  i64 x) const
{
    // Two L2-normalized blocks: the cell's own channel vector and the
    // mean over its 3x3 neighbourhood. Deep targets (VGG-scale
    // prefixes) have noisy individual cells; the context block keeps
    // classes separable where a single cell is ambiguous.
    const i64 channels = activation.channels();
    std::vector<float> f(static_cast<size_t>(2 * channels), 0.0f);
    for (i64 c = 0; c < channels; ++c) {
        f[static_cast<size_t>(c)] = activation.at(c, y, x);
    }
    for (i64 c = 0; c < channels; ++c) {
        double acc = 0.0;
        i64 n = 0;
        for (i64 dy = -1; dy <= 1; ++dy) {
            for (i64 dx = -1; dx <= 1; ++dx) {
                const i64 ny = y + dy;
                const i64 nx = x + dx;
                if (ny < 0 || ny >= activation.height() || nx < 0 ||
                    nx >= activation.width()) {
                    continue;
                }
                acc += activation.at(c, ny, nx);
                ++n;
            }
        }
        f[static_cast<size_t>(channels + c)] =
            static_cast<float>(acc / static_cast<double>(n));
    }
    for (const i64 offset : {i64{0}, channels}) {
        double norm = 0.0;
        for (i64 c = 0; c < channels; ++c) {
            const float v = f[static_cast<size_t>(offset + c)];
            norm += static_cast<double>(v) * v;
        }
        norm = std::sqrt(norm);
        if (norm > 1e-9) {
            for (i64 c = 0; c < channels; ++c) {
                f[static_cast<size_t>(offset + c)] =
                    static_cast<float>(f[static_cast<size_t>(offset + c)] /
                                       norm);
            }
        }
    }
    return f;
}

ActivationDetector
ActivationDetector::calibrate(const Network &net, i64 target_layer,
                              u64 seed)
{
    ActivationDetector det;
    det.rf_ = net.receptive_field_at(target_layer);
    det.image_h_ = net.input_shape().h;
    det.image_w_ = net.input_shape().w;
    det.num_classes_ = kNumClasses;

    std::vector<LabeledFeatures> object_cells;
    std::vector<LabeledFeatures> background_cells;

    auto harvest = [&](const LabeledFrame &frame) {
        const Tensor act = net.forward_prefix(frame.image, target_layer);
        for (i64 y = 0; y < act.height(); ++y) {
            const double cy = det.cell_center(y);
            for (i64 x = 0; x < act.width(); ++x) {
                const double cx = det.cell_center(x);
                i64 label = kBackground;
                bool ambiguous = false;
                for (const BoundingBox &b : frame.truth.boxes) {
                    // Shrink for confident object cells; expand for a
                    // confident background band.
                    const double sh = 0.25 * (b.y1 - b.y0);
                    const double sw = 0.25 * (b.x1 - b.x0);
                    const bool inside =
                        cy >= b.y0 + sh && cy <= b.y1 - sh &&
                        cx >= b.x0 + sw && cx <= b.x1 - sw;
                    const bool near =
                        cy >= b.y0 - sh && cy <= b.y1 + sh &&
                        cx >= b.x0 - sw && cx <= b.x1 + sw;
                    if (inside) {
                        label = b.cls;
                    } else if (near) {
                        ambiguous = true;
                    }
                }
                if (ambiguous && label == kBackground) {
                    continue;
                }
                LabeledFeatures ex;
                ex.x = det.cell_features(act, y, x);
                ex.label = label;
                (label == kBackground ? background_cells : object_cells)
                    .push_back(std::move(ex));
            }
        }
    };

    // Single-object clips of every class, across three object sizes
    // spanning the receptive-field dilution regimes (the rf is much
    // larger than small objects, so their cells see mixed stimulus).
    for (i64 cls = 0; cls < kNumClasses; ++cls) {
        for (int variant = 0; variant < 3; ++variant) {
            for (double half : {45.0, 28.0, 14.0}) {
                SceneConfig cfg = calibration_scene(
                    seed + static_cast<u64>(cls) * 131 +
                        static_cast<u64>(variant) * 7919 +
                        static_cast<u64>(half) * 71,
                    cls, det.image_h_, det.image_w_, half, 1.0);
                const SyntheticVideo video(cfg);
                for (i64 t : {0, 5}) {
                    harvest(video.render(t));
                }
            }
        }
    }
    // Empty scenes for pure background.
    for (int variant = 0; variant < 3; ++variant) {
        SceneConfig cfg;
        cfg.height = det.image_h_;
        cfg.width = det.image_w_;
        cfg.seed = seed ^ (0x9e3779b97f4a7c15ull *
                           static_cast<u64>(variant + 1));
        const SyntheticVideo video(cfg);
        harvest(video.render(0));
    }

    std::vector<LabeledFeatures> data = std::move(object_cells);
    for (auto &ex : background_cells) {
        data.push_back(std::move(ex));
    }

    det.head_ = std::make_unique<LinearHead>(
        LinearHead::train(data, kNumClasses + 1, 150, 0.5, seed));
    return det;
}

i64
ActivationDetector::classify_cell(const Tensor &activation, i64 y,
                                  i64 x) const
{
    return head_->predict(cell_features(activation, y, x));
}

std::vector<Detection>
ActivationDetector::detect(const Tensor &activation, i64 frame_id) const
{
    require(head_ != nullptr, "detector not calibrated");
    const i64 h = activation.height();
    const i64 w = activation.width();

    // Per-cell class decisions. The cell features already include
    // 3x3 neighbourhood context (see cell_features), which is what
    // keeps individual decisions stable on deep targets; probability
    // maps are deliberately NOT spatially smoothed here, because on
    // coarse activation grids small objects occupy only one or two
    // cells and smoothing erases them.
    std::vector<i64> cell_class(static_cast<size_t>(h * w), kBackground);
    std::vector<double> cell_conf(static_cast<size_t>(h * w), 0.0);
    for (i64 y = 0; y < h; ++y) {
        for (i64 x = 0; x < w; ++x) {
            const std::vector<double> probs =
                head_->probabilities(cell_features(activation, y, x));
            i64 best = kBackground;
            double best_p = probs[static_cast<size_t>(kBackground)];
            for (i64 c = 0; c < kNumClasses; ++c) {
                if (probs[static_cast<size_t>(c)] > best_p) {
                    best_p = probs[static_cast<size_t>(c)];
                    best = c;
                }
            }
            if (best != kBackground && best_p < confidence_threshold_) {
                best = kBackground;
            }
            cell_class[static_cast<size_t>(y * w + x)] = best;
            cell_conf[static_cast<size_t>(y * w + x)] = best_p;
        }
    }

    // 4-connected components of same-class object cells.
    std::vector<Detection> detections;
    std::vector<bool> visited(static_cast<size_t>(h * w), false);
    for (i64 y = 0; y < h; ++y) {
        for (i64 x = 0; x < w; ++x) {
            const size_t idx = static_cast<size_t>(y * w + x);
            if (visited[idx] || cell_class[idx] == kBackground) {
                continue;
            }
            const i64 cls = cell_class[idx];
            std::vector<std::pair<i64, i64>> stack{{y, x}};
            visited[idx] = true;
            i64 min_y = y;
            i64 max_y = y;
            i64 min_x = x;
            i64 max_x = x;
            double conf = 0.0;
            i64 cells = 0;
            while (!stack.empty()) {
                auto [cy, cx] = stack.back();
                stack.pop_back();
                min_y = std::min(min_y, cy);
                max_y = std::max(max_y, cy);
                min_x = std::min(min_x, cx);
                max_x = std::max(max_x, cx);
                conf += cell_conf[static_cast<size_t>(cy * w + cx)];
                ++cells;
                const i64 ny[4] = {cy - 1, cy + 1, cy, cy};
                const i64 nx[4] = {cx, cx, cx - 1, cx + 1};
                for (int k = 0; k < 4; ++k) {
                    if (ny[k] < 0 || ny[k] >= h || nx[k] < 0 ||
                        nx[k] >= w) {
                        continue;
                    }
                    const size_t nidx =
                        static_cast<size_t>(ny[k] * w + nx[k]);
                    if (!visited[nidx] && cell_class[nidx] == cls) {
                        visited[nidx] = true;
                        stack.emplace_back(ny[k], nx[k]);
                    }
                }
            }

            const double half_stride =
                static_cast<double>(rf_.stride) / 2.0;
            Detection d;
            d.box.y0 = std::max(0.0, cell_center(min_y) - half_stride);
            d.box.y1 = std::min(static_cast<double>(image_h_),
                                cell_center(max_y) + half_stride);
            d.box.x0 = std::max(0.0, cell_center(min_x) - half_stride);
            d.box.x1 = std::min(static_cast<double>(image_w_),
                                cell_center(max_x) + half_stride);
            d.box.cls = cls;
            // Mean cell confidence, discounted for tiny components: a
            // one- or two-cell blob is usually classifier noise and
            // must not out-score a full-object component.
            const double size_factor = std::sqrt(
                std::min<double>(static_cast<double>(cells), 4.0) / 4.0);
            d.score = size_factor * conf / static_cast<double>(cells);
            d.frame = frame_id;
            detections.push_back(d);
        }
    }
    return detections;
}

} // namespace eva2
