#include "eval/oracle_motion.h"

#include <cmath>

namespace eva2 {

namespace {

/** Topmost sprite containing (y, x), or nullptr. */
const SpriteState *
sprite_at(const SceneState &state, double y, double x)
{
    // Later sprites draw over earlier ones; scan back to front.
    for (auto it = state.sprites.rbegin(); it != state.sprites.rend();
         ++it) {
        const double ny = (y - it->cy) / it->half_h;
        const double nx = (x - it->cx) / it->half_w;
        const bool inside = it->ellipse
                                ? (ny * ny + nx * nx <= 1.0)
                                : (std::fabs(ny) <= 1.0 &&
                                   std::fabs(nx) <= 1.0);
        if (inside) {
            return &*it;
        }
    }
    return nullptr;
}

/** Sprite with the given id, or nullptr. */
const SpriteState *
sprite_by_id(const SceneState &state, i64 id)
{
    for (const SpriteState &s : state.sprites) {
        if (s.id == id) {
            return &s;
        }
    }
    return nullptr;
}

} // namespace

MotionField
oracle_backward_motion(const LabeledFrame &key, const LabeledFrame &cur)
{
    const i64 h = cur.image.height();
    const i64 w = cur.image.width();
    MotionField field(h, w);

    // Background: content at y in cur sits at y - pan_cur in texture
    // space, hence at y - pan_cur + pan_key in the key frame.
    const Vec2 pan{key.state.pan_y - cur.state.pan_y,
                   key.state.pan_x - cur.state.pan_x};
    // A scene cut between the frames destroys all correspondence;
    // report zero motion (the caller's match error will be huge).
    const bool cut = key.state.after_cut != cur.state.after_cut;

    for (i64 y = 0; y < h; ++y) {
        for (i64 x = 0; x < w; ++x) {
            if (cut) {
                continue; // zero-initialized
            }
            const SpriteState *s =
                sprite_at(cur.state, static_cast<double>(y),
                          static_cast<double>(x));
            const SpriteState *in_key =
                s != nullptr ? sprite_by_id(key.state, s->id) : nullptr;
            if (s != nullptr && in_key != nullptr) {
                field.at(y, x) =
                    Vec2{in_key->cy - s->cy, in_key->cx - s->cx};
            } else {
                field.at(y, x) = pan;
            }
        }
    }
    return field;
}

} // namespace eva2
