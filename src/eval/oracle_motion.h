/**
 * @file
 * Oracle motion from generator kinematics.
 *
 * The paper's future-work discussion (Section VI) proposes replacing
 * RFBME with the motion vectors a hardware video codec computes
 * anyway. Real codec vectors are rate-distortion-optimized estimates;
 * our synthetic substrate can do one better and expose the *exact*
 * pixel motion between two frames of a scene, giving an upper bound
 * for what any externally supplied motion source could achieve.
 * The experiments use it as the `MotionSource::kOracleMotion` row.
 */
#ifndef EVA2_EVAL_ORACLE_MOTION_H
#define EVA2_EVAL_ORACLE_MOTION_H

#include "flow/motion_field.h"
#include "video/frame.h"

namespace eva2 {

/**
 * Dense per-pixel backward motion from `cur` to `key`, computed from
 * the generator states: for every pixel of `cur`, the offset to add
 * to reach the same content in `key`. Sprite-covered pixels follow
 * their sprite; background follows the pan. Content revealed by a
 * scene cut or by sprites absent from the key frame falls back to
 * the background motion (there is no true correspondence).
 */
MotionField oracle_backward_motion(const LabeledFrame &key,
                                   const LabeledFrame &cur);

} // namespace eva2

#endif // EVA2_EVAL_ORACLE_MOTION_H
