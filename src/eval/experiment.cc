#include "eval/experiment.h"

#include "api/registry.h"
#include "eval/oracle_motion.h"
#include "flow/optical_flow.h"
#include "flow/rfbme.h"

namespace eva2 {

const char *
motion_source_name(MotionSource source)
{
    switch (source) {
      case MotionSource::kNewKey:
        return "new key frame";
      case MotionSource::kRfbme:
        return "RFBME";
      case MotionSource::kLucasKanade:
        return "Lucas-Kanade";
      case MotionSource::kDenseFlow:
        return "FlowNet2-s (sub)";
      case MotionSource::kOldKey:
        return "old key frame";
      case MotionSource::kOracleMotion:
        return "oracle motion";
    }
    return "unknown";
}

Tensor
predict_target_activation(const Network &net, i64 target_layer,
                          const Tensor &key_frame,
                          const Tensor &current_frame, MotionSource source,
                          InterpMode interp, i64 search_radius,
                          i64 search_stride)
{
    if (source == MotionSource::kNewKey) {
        return net.forward_prefix(current_frame, target_layer);
    }

    const Tensor key_act = net.forward_prefix(key_frame, target_layer);
    if (source == MotionSource::kOldKey) {
        return key_act;
    }

    const ReceptiveField rf = net.receptive_field_at(target_layer);
    MotionField field;
    switch (source) {
      case MotionSource::kRfbme: {
        RfbmeConfig config;
        config.rf_size = rf.size;
        config.rf_stride = rf.stride;
        config.rf_pad = rf.pad;
        config.search_radius = search_radius;
        config.search_stride = search_stride;
        field = rfbme(key_frame, current_frame, config).field;
        break;
      }
      case MotionSource::kLucasKanade: {
        const MotionField dense =
            lucas_kanade(current_frame, key_frame);
        field = average_to_grid(dense, key_act.height(), key_act.width(),
                                rf.size, rf.stride, rf.pad);
        break;
      }
      case MotionSource::kDenseFlow: {
        const MotionField dense =
            horn_schunck(current_frame, key_frame);
        field = average_to_grid(dense, key_act.height(), key_act.width(),
                                rf.size, rf.stride, rf.pad);
        break;
      }
      default:
        throw InternalError("unhandled motion source");
    }
    field = fit_field(field, key_act.height(), key_act.width());
    return warp_activation(key_act, field, rf.stride, interp);
}

Tensor
predict_target_activation(const Network &net, i64 target_layer,
                          const LabeledFrame &key_frame,
                          const LabeledFrame &current_frame,
                          MotionSource source, InterpMode interp,
                          i64 search_radius, i64 search_stride)
{
    if (source != MotionSource::kOracleMotion) {
        return predict_target_activation(
            net, target_layer, key_frame.image, current_frame.image,
            source, interp, search_radius, search_stride);
    }
    const Tensor key_act =
        net.forward_prefix(key_frame.image, target_layer);
    const ReceptiveField rf = net.receptive_field_at(target_layer);
    const MotionField dense =
        oracle_backward_motion(key_frame, current_frame);
    MotionField field =
        average_to_grid(dense, key_act.height(), key_act.width(),
                        rf.size, rf.stride, rf.pad);
    field = fit_field(field, key_act.height(), key_act.width());
    return warp_activation(key_act, field, rf.stride, interp);
}

GapDetectionResult
detection_at_gap(const Network &net, const ActivationDetector &detector,
                 const std::vector<Sequence> &sequences, i64 gap_frames,
                 MotionSource source, InterpMode interp, i64 target_layer,
                 i64 step, i64 search_radius, i64 search_stride)
{
    // The detector reads the last spatial activation; when predicting
    // at an earlier target layer (Table II's early-target runs), the
    // layers between target and read-out still execute, exactly as
    // the CNN suffix does after AMC's warp.
    const i64 readout_layer = net.default_target_index();
    if (target_layer < 0) {
        target_layer = readout_layer;
    }
    require(target_layer <= readout_layer,
            "detection_at_gap: target must be a spatial layer");
    require(gap_frames >= 1, "detection_at_gap: gap must be >= 1");
    require(step >= 1, "detection_at_gap: step must be >= 1");

    std::vector<Detection> dets;
    std::vector<Detection> oracle_dets;
    std::vector<GtBox> truths;
    std::vector<GtBox> oracle_truths;
    GapDetectionResult result;
    i64 frame_id = 0;

    for (const Sequence &seq : sequences) {
        for (i64 t = 0; t + gap_frames < seq.size(); t += step) {
            const LabeledFrame &key = seq[t];
            const LabeledFrame &cur = seq[t + gap_frames];
            const Tensor oracle =
                net.forward_prefix(cur.image, readout_layer);
            Tensor predicted =
                source == MotionSource::kNewKey
                    ? net.forward_prefix(cur.image, target_layer)
                    : predict_target_activation(net, target_layer, key,
                                                cur, source, interp,
                                                search_radius,
                                                search_stride);
            if (target_layer < readout_layer) {
                predicted = net.forward(predicted, target_layer + 1,
                                        readout_layer + 1);
            }

            const std::vector<Detection> frame_dets =
                detector.detect(predicted, frame_id);
            dets.insert(dets.end(), frame_dets.begin(), frame_dets.end());
            oracle_dets.insert(oracle_dets.end(), frame_dets.begin(),
                               frame_dets.end());
            for (const BoundingBox &b : cur.truth.boxes) {
                truths.push_back(GtBox{b, frame_id});
            }
            // The oracle's own detections serve as ground truth for
            // the agreement metric.
            for (const Detection &d : detector.detect(oracle, frame_id)) {
                oracle_truths.push_back(GtBox{d.box, frame_id});
            }
            ++frame_id;
            ++result.evaluated_frames;
        }
    }
    result.map = mean_average_precision(dets, truths);
    result.map_oracle =
        mean_average_precision(oracle_dets, oracle_truths);
    return result;
}

GapClassificationResult
classification_at_gap(const Network &net,
                      const PrototypeClassifier &classifier,
                      const std::vector<Sequence> &sequences,
                      i64 gap_frames, MotionSource source,
                      i64 target_layer, i64 step)
{
    // The classifier reads the designated target activation; when
    // predicting at an earlier layer, the layers in between still
    // execute, exactly as the CNN suffix does after AMC's warp.
    const i64 readout_layer = net.default_target_index();
    if (target_layer < 0) {
        target_layer = readout_layer;
    }
    require(target_layer <= readout_layer,
            "classification_at_gap: target must precede the read-out");
    require(gap_frames >= 1, "classification_at_gap: gap must be >= 1");

    GapClassificationResult result;
    std::vector<i64> predicted_labels;
    std::vector<i64> truth_labels;
    std::vector<i64> oracle_labels;

    for (const Sequence &seq : sequences) {
        for (i64 t = 0; t + gap_frames < seq.size(); t += step) {
            const LabeledFrame &key = seq[t];
            const LabeledFrame &cur = seq[t + gap_frames];
            Tensor predicted_act = predict_target_activation(
                net, target_layer, key, cur, source);
            if (target_layer < readout_layer) {
                predicted_act = net.forward(
                    predicted_act, target_layer + 1, readout_layer + 1);
            }
            const Tensor oracle_act =
                net.forward_prefix(cur.image, readout_layer);

            predicted_labels.push_back(classifier.classify(predicted_act));
            oracle_labels.push_back(classifier.classify(oracle_act));
            truth_labels.push_back(cur.truth.dominant_class);
            ++result.evaluated_frames;
        }
    }
    result.accuracy = agreement(predicted_labels, truth_labels);
    result.oracle_agreement = agreement(predicted_labels, oracle_labels);
    return result;
}

AdaptiveRunResult
run_adaptive_detection(const Network &net,
                       const ActivationDetector &detector,
                       const std::vector<Sequence> &sequences,
                       const PolicyFactory &policy, AmcOptions options)
{
    AdaptiveRunResult result;
    std::vector<Detection> dets;
    std::vector<GtBox> truths;
    i64 frame_id = 0;

    for (const Sequence &seq : sequences) {
        AmcPipeline pipeline(net, policy(), options);
        for (i64 t = 0; t < seq.size(); ++t) {
            const AmcFrameResult fr = pipeline.process(seq[t].image);
            for (Detection d :
                 detector.detect(fr.target_activation, frame_id)) {
                dets.push_back(d);
            }
            for (const BoundingBox &b : seq[t].truth.boxes) {
                truths.push_back(GtBox{b, frame_id});
            }
            ++frame_id;
        }
        result.frames += pipeline.stats().frames;
        result.key_frames += pipeline.stats().key_frames;
    }
    result.accuracy = mean_average_precision(dets, truths);
    result.key_fraction =
        result.frames == 0 ? 0.0
                           : static_cast<double>(result.key_frames) /
                                 static_cast<double>(result.frames);
    return result;
}

AdaptiveRunResult
run_adaptive_classification(const Network &net,
                            const PrototypeClassifier &classifier,
                            const std::vector<Sequence> &sequences,
                            const PolicyFactory &policy,
                            AmcOptions options)
{
    AdaptiveRunResult result;
    std::vector<i64> predicted;
    std::vector<i64> truth;

    for (const Sequence &seq : sequences) {
        AmcPipeline pipeline(net, policy(), options);
        for (i64 t = 0; t < seq.size(); ++t) {
            const AmcFrameResult fr = pipeline.process(seq[t].image);
            predicted.push_back(
                classifier.classify(fr.target_activation));
            truth.push_back(seq[t].truth.dominant_class);
        }
        result.frames += pipeline.stats().frames;
        result.key_frames += pipeline.stats().key_frames;
    }
    result.accuracy = agreement(predicted, truth);
    result.key_fraction =
        result.frames == 0 ? 0.0
                           : static_cast<double>(result.key_frames) /
                                 static_cast<double>(result.frames);
    return result;
}

AdaptiveRunResult
run_adaptive_detection(const Network &net,
                       const ActivationDetector &detector,
                       const std::vector<Sequence> &sequences,
                       const std::string &policy_spec,
                       AmcOptions options)
{
    return run_adaptive_detection(
        net, detector, sequences,
        PolicyRegistry::instance().factory(policy_spec), options);
}

AdaptiveRunResult
run_adaptive_classification(const Network &net,
                            const PrototypeClassifier &classifier,
                            const std::vector<Sequence> &sequences,
                            const std::string &policy_spec,
                            AmcOptions options)
{
    return run_adaptive_classification(
        net, classifier, sequences,
        PolicyRegistry::instance().factory(policy_spec), options);
}

double
baseline_detection_map(const Network &net,
                       const ActivationDetector &detector,
                       const std::vector<Sequence> &sequences,
                       i64 target_layer)
{
    if (target_layer < 0) {
        target_layer = net.default_target_index();
    }
    std::vector<Detection> dets;
    std::vector<GtBox> truths;
    i64 frame_id = 0;
    for (const Sequence &seq : sequences) {
        for (i64 t = 0; t < seq.size(); ++t) {
            const Tensor act =
                net.forward_prefix(seq[t].image, target_layer);
            for (Detection d : detector.detect(act, frame_id)) {
                dets.push_back(d);
            }
            for (const BoundingBox &b : seq[t].truth.boxes) {
                truths.push_back(GtBox{b, frame_id});
            }
            ++frame_id;
        }
    }
    return mean_average_precision(dets, truths);
}

double
baseline_classification_accuracy(const Network &net,
                                 const PrototypeClassifier &classifier,
                                 const std::vector<Sequence> &sequences)
{
    std::vector<i64> predicted;
    std::vector<i64> truth;
    for (const Sequence &seq : sequences) {
        for (i64 t = 0; t < seq.size(); ++t) {
            predicted.push_back(classifier.classify(net.forward_prefix(
                seq[t].image, net.default_target_index())));
            truth.push_back(seq[t].truth.dominant_class);
        }
    }
    return agreement(predicted, truth);
}

} // namespace eva2
