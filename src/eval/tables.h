/**
 * @file
 * Plain-text table formatting for the benchmark harness output, so
 * every bench prints rows directly comparable to the paper's tables
 * and figure series.
 */
#ifndef EVA2_EVAL_TABLES_H
#define EVA2_EVAL_TABLES_H

#include <iostream>
#include <string>
#include <vector>

#include "util/common.h"

namespace eva2 {

/** Fixed-precision formatting of a double. */
std::string fmt(double v, int precision = 2);

/** Percentage formatting ("54.2%"). */
std::string fmt_pct(double fraction, int precision = 1);

/** Column-aligned text table. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void row(std::vector<std::string> cells);

    /** Render to a stream with aligned columns. */
    void print(std::ostream &os = std::cout) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner for bench output. */
void banner(const std::string &title, std::ostream &os = std::cout);

} // namespace eva2

#endif // EVA2_EVAL_TABLES_H
