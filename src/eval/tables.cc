#include "eval/tables.h"

#include <iomanip>
#include <sstream>

namespace eva2 {

std::string
fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
fmt_pct(double fraction, int precision)
{
    return fmt(fraction * 100.0, precision) + "%";
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::row(std::vector<std::string> cells)
{
    require(cells.size() == headers_.size(),
            "table row width does not match headers");
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto &r : rows_) {
        for (size_t c = 0; c < r.size(); ++c) {
            widths[c] = std::max(widths[c], r[c].size());
        }
    }
    auto print_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << cells[c];
        }
        os << "\n";
    };
    print_row(headers_);
    std::string rule;
    for (size_t c = 0; c < widths.size(); ++c) {
        rule += std::string(widths[c], '-') + "  ";
    }
    os << rule << "\n";
    for (const auto &r : rows_) {
        print_row(r);
    }
}

void
banner(const std::string &title, std::ostream &os)
{
    os << "\n=== " << title << " ===\n";
}

} // namespace eva2
