/**
 * @file
 * A classification read-out for untrained networks: per-class
 * prototypes of globally pooled target-layer activations, computed
 * from calibration scenes. Global average pooling gives the decision
 * the translation stability real trained classifiers have (and that
 * the paper's Section IV-D observation — "frame classification
 * results change slowly over time" — depends on), so memoized or
 * warped activations classify like precise ones unless the scene
 * content actually changes. As with the detector, the read-out is
 * fixed across execution strategies so accuracy differences isolate
 * AMC's effects.
 */
#ifndef EVA2_EVAL_CLASSIFIER_H
#define EVA2_EVAL_CLASSIFIER_H

#include <vector>

#include "cnn/network.h"

namespace eva2 {

/** Calibrated nearest-prototype classifier over pooled activations. */
class PrototypeClassifier
{
  public:
    /**
     * Render a few stationary single-object scenes per class, run the
     * network prefix to its designated AMC target layer, and average
     * the pooled activations into unit-norm prototypes.
     */
    static PrototypeClassifier calibrate(const Network &net, u64 seed = 11);

    /**
     * Classify a target-layer activation (cosine nearest prototype on
     * its globally pooled channel features). The activation's channel
     * count must match the calibration network's target layer.
     */
    i64 classify(const Tensor &target_activation) const;

    i64 num_classes() const { return static_cast<i64>(protos_.size()); }

  private:
    PrototypeClassifier() = default;

    std::vector<std::vector<double>> protos_;
};

} // namespace eva2

#endif // EVA2_EVAL_CLASSIFIER_H
