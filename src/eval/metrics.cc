#include "eval/metrics.h"

#include <algorithm>
#include <map>

namespace eva2 {

namespace {

/** Average precision for one class from matched detection flags. */
double
average_precision(std::vector<std::pair<double, bool>> &scored,
                  i64 num_truths)
{
    if (num_truths == 0) {
        return 0.0;
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });
    std::vector<double> precision;
    std::vector<double> recall;
    i64 tp = 0;
    i64 fp = 0;
    for (const auto &[score, is_tp] : scored) {
        (void)score;
        if (is_tp) {
            ++tp;
        } else {
            ++fp;
        }
        precision.push_back(static_cast<double>(tp) /
                            static_cast<double>(tp + fp));
        recall.push_back(static_cast<double>(tp) /
                         static_cast<double>(num_truths));
    }
    // All-point interpolation: integrate precision envelope over
    // recall.
    double ap = 0.0;
    double prev_recall = 0.0;
    for (size_t i = 0; i < precision.size(); ++i) {
        double max_prec = 0.0;
        for (size_t j = i; j < precision.size(); ++j) {
            max_prec = std::max(max_prec, precision[j]);
        }
        ap += max_prec * (recall[i] - prev_recall);
        prev_recall = recall[i];
    }
    return ap;
}

} // namespace

double
mean_average_precision(const std::vector<Detection> &detections,
                       const std::vector<GtBox> &truths,
                       double iou_threshold)
{
    // Group ground truth by class.
    std::map<i64, std::vector<GtBox>> gt_by_class;
    for (const GtBox &gt : truths) {
        gt_by_class[gt.box.cls].push_back(gt);
    }
    if (gt_by_class.empty()) {
        return 0.0;
    }

    double ap_sum = 0.0;
    i64 classes_counted = 0;
    for (const auto &[cls, class_gts] : gt_by_class) {
        // Split ground truth into scoreable and "difficult" boxes.
        std::vector<GtBox> real_gts;
        std::vector<GtBox> difficult_gts;
        for (const GtBox &g : class_gts) {
            (g.box.difficult ? difficult_gts : real_gts).push_back(g);
        }
        if (real_gts.empty()) {
            continue;
        }
        ++classes_counted;

        // Detections of this class, sorted by score.
        std::vector<Detection> class_dets;
        for (const Detection &d : detections) {
            if (d.box.cls == cls) {
                class_dets.push_back(d);
            }
        }
        std::sort(class_dets.begin(), class_dets.end(),
                  [](const Detection &a, const Detection &b) {
                      return a.score > b.score;
                  });

        std::vector<bool> gt_used(real_gts.size(), false);
        std::vector<std::pair<double, bool>> scored;
        scored.reserve(class_dets.size());
        for (const Detection &d : class_dets) {
            double best_iou = 0.0;
            i64 best_gt = -1;
            for (size_t g = 0; g < real_gts.size(); ++g) {
                if (gt_used[g] || real_gts[g].frame != d.frame) {
                    continue;
                }
                const double iou = d.box.iou(real_gts[g].box);
                if (iou > best_iou) {
                    best_iou = iou;
                    best_gt = static_cast<i64>(g);
                }
            }
            if (best_gt >= 0 && best_iou >= iou_threshold) {
                gt_used[static_cast<size_t>(best_gt)] = true;
                scored.emplace_back(d.score, true);
                continue;
            }
            // A detection overlapping a difficult box is ignored
            // entirely (Pascal VOC semantics).
            bool ignored = false;
            for (const GtBox &g : difficult_gts) {
                if (g.frame == d.frame &&
                    d.box.iou(g.box) >= iou_threshold * 0.5) {
                    ignored = true;
                    break;
                }
            }
            if (!ignored) {
                scored.emplace_back(d.score, false);
            }
        }
        ap_sum += average_precision(scored,
                                    static_cast<i64>(real_gts.size()));
    }
    return classes_counted > 0
               ? ap_sum / static_cast<double>(classes_counted)
               : 0.0;
}

i64
top1(const Tensor &logits)
{
    require(!logits.empty(), "top1: empty tensor");
    i64 best = 0;
    for (i64 i = 1; i < logits.size(); ++i) {
        if (logits[i] > logits[best]) {
            best = i;
        }
    }
    return best;
}

double
agreement(const std::vector<i64> &a, const std::vector<i64> &b)
{
    require(a.size() == b.size(), "agreement: size mismatch");
    if (a.empty()) {
        return 0.0;
    }
    i64 same = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] == b[i]) {
            ++same;
        }
    }
    return static_cast<double>(same) / static_cast<double>(a.size());
}

} // namespace eva2
