#include "eval/retrain.h"

#include <algorithm>
#include <cmath>

namespace eva2 {

std::vector<float>
pooled_features(const Tensor &activation)
{
    std::vector<float> out(static_cast<size_t>(activation.channels()));
    const i64 plane = activation.height() * activation.width();
    for (i64 c = 0; c < activation.channels(); ++c) {
        double acc = 0.0;
        for (float v : activation.channel(c)) {
            acc += v;
        }
        out[static_cast<size_t>(c)] =
            plane > 0 ? static_cast<float>(acc /
                                           static_cast<double>(plane))
                      : 0.0f;
    }
    return out;
}

LinearHead::LinearHead(i64 classes, i64 dim)
    : classes_(classes),
      dim_(dim),
      weights_(static_cast<size_t>(classes * dim), 0.0),
      biases_(static_cast<size_t>(classes), 0.0)
{
}

LinearHead
LinearHead::train(const std::vector<LabeledFeatures> &data, i64 classes,
                  i64 epochs, double lr, u64 seed)
{
    require(!data.empty(), "linear head: no training data");
    const i64 dim = static_cast<i64>(data.front().x.size());
    LinearHead head(classes, dim);
    Rng rng(seed);

    std::vector<size_t> order(data.size());
    for (size_t i = 0; i < order.size(); ++i) {
        order[i] = i;
    }

    std::vector<double> logits(static_cast<size_t>(classes));
    for (i64 epoch = 0; epoch < epochs; ++epoch) {
        // Fisher-Yates shuffle with the deterministic stream.
        for (size_t i = order.size(); i > 1; --i) {
            const size_t j = static_cast<size_t>(
                rng.uniform_int(0, static_cast<i64>(i) - 1));
            std::swap(order[i - 1], order[j]);
        }
        const double step = lr / (1.0 + 0.05 * static_cast<double>(epoch));
        for (size_t idx : order) {
            const LabeledFeatures &ex = data[idx];
            // Forward: softmax over class logits.
            double max_logit = -1e300;
            for (i64 c = 0; c < classes; ++c) {
                double z = head.biases_[static_cast<size_t>(c)];
                const double *w =
                    &head.weights_[static_cast<size_t>(c * dim)];
                for (i64 d = 0; d < dim; ++d) {
                    z += w[d] * ex.x[static_cast<size_t>(d)];
                }
                logits[static_cast<size_t>(c)] = z;
                max_logit = std::max(max_logit, z);
            }
            double denom = 0.0;
            for (i64 c = 0; c < classes; ++c) {
                logits[static_cast<size_t>(c)] =
                    std::exp(logits[static_cast<size_t>(c)] - max_logit);
                denom += logits[static_cast<size_t>(c)];
            }
            // Backward: gradient of cross-entropy.
            for (i64 c = 0; c < classes; ++c) {
                const double p = logits[static_cast<size_t>(c)] / denom;
                const double g =
                    p - (c == ex.label ? 1.0 : 0.0);
                double *w = &head.weights_[static_cast<size_t>(c * dim)];
                for (i64 d = 0; d < dim; ++d) {
                    w[d] -= step * g * ex.x[static_cast<size_t>(d)];
                }
                head.biases_[static_cast<size_t>(c)] -= step * g;
            }
        }
    }
    return head;
}

std::vector<double>
LinearHead::probabilities(const std::vector<float> &x) const
{
    require(static_cast<i64>(x.size()) == dim_,
            "linear head: feature dimension mismatch");
    std::vector<double> logits(static_cast<size_t>(classes_));
    double max_logit = -1e300;
    for (i64 c = 0; c < classes_; ++c) {
        double z = biases_[static_cast<size_t>(c)];
        const double *w = &weights_[static_cast<size_t>(c * dim_)];
        for (i64 d = 0; d < dim_; ++d) {
            z += w[d] * x[static_cast<size_t>(d)];
        }
        logits[static_cast<size_t>(c)] = z;
        max_logit = std::max(max_logit, z);
    }
    double denom = 0.0;
    for (double &z : logits) {
        z = std::exp(z - max_logit);
        denom += z;
    }
    for (double &z : logits) {
        z /= denom;
    }
    return logits;
}

i64
LinearHead::predict(const std::vector<float> &x) const
{
    require(static_cast<i64>(x.size()) == dim_,
            "linear head: feature dimension mismatch");
    double best = -1e300;
    i64 best_cls = 0;
    for (i64 c = 0; c < classes_; ++c) {
        double z = biases_[static_cast<size_t>(c)];
        const double *w = &weights_[static_cast<size_t>(c * dim_)];
        for (i64 d = 0; d < dim_; ++d) {
            z += w[d] * x[static_cast<size_t>(d)];
        }
        if (z > best) {
            best = z;
            best_cls = c;
        }
    }
    return best_cls;
}

double
LinearHead::accuracy(const std::vector<LabeledFeatures> &data) const
{
    if (data.empty()) {
        return 0.0;
    }
    i64 correct = 0;
    for (const LabeledFeatures &ex : data) {
        if (predict(ex.x) == ex.label) {
            ++correct;
        }
    }
    return static_cast<double>(correct) /
           static_cast<double>(data.size());
}

} // namespace eva2
