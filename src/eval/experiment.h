/**
 * @file
 * Experiment harnesses behind the paper's evaluation tables/figures:
 * fixed-gap prediction quality under different motion estimators
 * (Figure 14, Table II), adaptive key-frame policy sweeps (Figure 15,
 * Table I), and end-to-end accuracy/efficiency points.
 */
#ifndef EVA2_EVAL_EXPERIMENT_H
#define EVA2_EVAL_EXPERIMENT_H

#include <functional>
#include <memory>

#include "core/amc_pipeline.h"
#include "eval/classifier.h"
#include "eval/detector.h"
#include "video/frame.h"

namespace eva2 {

/** How the predicted frame's activation is produced (Figure 14). */
enum class MotionSource
{
    kNewKey,      ///< Oracle: full CNN execution on the new frame.
    kRfbme,       ///< The paper's RFBME + warp.
    kLucasKanade, ///< Dense Lucas-Kanade flow + warp.
    kDenseFlow,   ///< Dense variational flow (FlowNet2-s substitute).
    kOldKey,      ///< Stale key activation, no update (memoization).
    /**
     * Exact generator motion + warp: the upper bound for externally
     * supplied motion (Section VI's codec-vector proposal). Only
     * available through the LabeledFrame-based experiment paths.
     */
    kOracleMotion,
};

/** Printable label matching the paper's Figure 14 x-axis. */
const char *motion_source_name(MotionSource source);

/**
 * Produce the target-layer activation for `current` given a key frame,
 * under the chosen motion source. This is the controlled-experiment
 * core shared by the Figure 14 and Table II benches.
 */
Tensor predict_target_activation(const Network &net, i64 target_layer,
                                 const Tensor &key_frame,
                                 const Tensor &current_frame,
                                 MotionSource source,
                                 InterpMode interp = InterpMode::kBilinear,
                                 i64 search_radius = 28,
                                 i64 search_stride = 2);

/**
 * LabeledFrame overload: like the Tensor version, and additionally
 * supports MotionSource::kOracleMotion via the frames' generator
 * states.
 */
Tensor predict_target_activation(const Network &net, i64 target_layer,
                                 const LabeledFrame &key_frame,
                                 const LabeledFrame &current_frame,
                                 MotionSource source,
                                 InterpMode interp = InterpMode::kBilinear,
                                 i64 search_radius = 28,
                                 i64 search_stride = 2);

/** Accuracy results of a fixed-gap detection experiment. */
struct GapDetectionResult
{
    double map = 0.0;        ///< mAP vs. synthetic ground truth.
    double map_oracle = 0.0; ///< mAP vs. full-execution detections.
    i64 evaluated_frames = 0;
};

/**
 * Fixed-gap detection quality: for key frames spaced through each
 * sequence, predict the frame `gap_frames` later and score its
 * detections.
 *
 * @param step Distance between successive key anchors (controls cost).
 */
GapDetectionResult detection_at_gap(
    const Network &net, const ActivationDetector &detector,
    const std::vector<Sequence> &sequences, i64 gap_frames,
    MotionSource source, InterpMode interp = InterpMode::kBilinear,
    i64 target_layer = -1, i64 step = 4, i64 search_radius = 28,
    i64 search_stride = 2);

/** Fixed-gap classification accuracy (AlexNet-style workloads). */
struct GapClassificationResult
{
    double accuracy = 0.0;        ///< vs. ground-truth dominant class.
    double oracle_agreement = 0.0; ///< vs. full execution's label.
    i64 evaluated_frames = 0;
};

GapClassificationResult classification_at_gap(
    const Network &net, const PrototypeClassifier &classifier,
    const std::vector<Sequence> &sequences, i64 gap_frames,
    MotionSource source, i64 target_layer = -1, i64 step = 4);

/** Outcome of an adaptive end-to-end run over a sequence set. */
struct AdaptiveRunResult
{
    double accuracy = 0.0; ///< Task metric (mAP or top-1) vs. truth.
    double key_fraction = 0.0;
    i64 frames = 0;
    i64 key_frames = 0;
};

/** Factory so each sequence gets a fresh policy instance. */
using PolicyFactory = std::function<std::unique_ptr<KeyFramePolicy>()>;

/** Run the full AMC pipeline with a policy over detection sequences. */
AdaptiveRunResult run_adaptive_detection(
    const Network &net, const ActivationDetector &detector,
    const std::vector<Sequence> &sequences, const PolicyFactory &policy,
    AmcOptions options = {});

/** Run the full AMC pipeline over classification sequences. */
AdaptiveRunResult run_adaptive_classification(
    const Network &net, const PrototypeClassifier &classifier,
    const std::vector<Sequence> &sequences, const PolicyFactory &policy,
    AmcOptions options = {});

/**
 * Registry-spec overloads: the policy is a PolicyRegistry spec string
 * such as "adaptive_error:th=0.05,max_gap=8" (the serving API's
 * configuration idiom), validated before any sequence runs.
 */
AdaptiveRunResult run_adaptive_detection(
    const Network &net, const ActivationDetector &detector,
    const std::vector<Sequence> &sequences,
    const std::string &policy_spec, AmcOptions options = {});

AdaptiveRunResult run_adaptive_classification(
    const Network &net, const PrototypeClassifier &classifier,
    const std::vector<Sequence> &sequences,
    const std::string &policy_spec, AmcOptions options = {});

/** Baseline (every frame precise) detection mAP over a set. */
double baseline_detection_map(const Network &net,
                              const ActivationDetector &detector,
                              const std::vector<Sequence> &sequences,
                              i64 target_layer = -1);

/** Baseline classification accuracy over a set. */
double baseline_classification_accuracy(
    const Network &net, const PrototypeClassifier &classifier,
    const std::vector<Sequence> &sequences);

} // namespace eva2

#endif // EVA2_EVAL_EXPERIMENT_H
