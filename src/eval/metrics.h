/**
 * @file
 * Vision quality metrics: top-1 accuracy for classification and mean
 * average precision (mAP) for detection, the two metrics the paper
 * reports (Section IV-B). Detections are matched to ground truth
 * greedily by IoU, and AP is the area under the all-point
 * interpolated precision-recall curve, averaged over classes.
 */
#ifndef EVA2_EVAL_METRICS_H
#define EVA2_EVAL_METRICS_H

#include <vector>

#include "video/frame.h"

namespace eva2 {

/** A scored detection emitted by a detector for one frame. */
struct Detection
{
    BoundingBox box;
    double score = 0.0;
    i64 frame = 0; ///< Frame identifier for cross-frame aggregation.
};

/** Ground-truth box tagged with its frame. */
struct GtBox
{
    BoundingBox box;
    i64 frame = 0;
};

/**
 * Mean average precision over classes.
 *
 * @param detections  All detections over the evaluation set.
 * @param truths      All ground-truth boxes over the set.
 * @param iou_threshold Match threshold (the activation grid of the
 *                     scaled networks quantizes boxes to the
 *                     receptive-field stride, so the default is looser
 *                     than the 0.5 used with full-resolution outputs).
 * @return mAP in [0, 1]; classes with no ground truth are skipped.
 */
double mean_average_precision(const std::vector<Detection> &detections,
                              const std::vector<GtBox> &truths,
                              double iou_threshold = 0.2);

/** Argmax index of a flat tensor (top-1 class). */
i64 top1(const Tensor &logits);

/** Fraction of equal entries in two label vectors. */
double agreement(const std::vector<i64> &a, const std::vector<i64> &b);

} // namespace eva2

#endif // EVA2_EVAL_METRICS_H
