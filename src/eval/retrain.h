/**
 * @file
 * Suffix retraining on warped activations (Table III).
 *
 * The paper asks whether fine-tuning the CNN suffix on AMC's warped
 * activations recovers accuracy lost to warp artifacts, and finds the
 * effect small or negative. We reproduce the experiment with a
 * trainable linear (multinomial logistic) head over globally pooled
 * target activations — any trainable suffix answers the question; a
 * linear head keeps training deterministic and fast (see DESIGN.md).
 */
#ifndef EVA2_EVAL_RETRAIN_H
#define EVA2_EVAL_RETRAIN_H

#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace eva2 {

/** One training/test example: pooled features plus a class label. */
struct LabeledFeatures
{
    std::vector<float> x;
    i64 label = 0;
};

/** Global average pooling per channel: the head's feature vector. */
std::vector<float> pooled_features(const Tensor &activation);

/** A trainable multinomial logistic regression head. */
class LinearHead
{
  public:
    /**
     * Train with plain SGD + softmax cross-entropy.
     *
     * @param data    Training examples.
     * @param classes Number of classes.
     * @param epochs  Full passes over the data.
     * @param lr      Learning rate.
     * @param seed    Shuffling/init seed (deterministic).
     */
    static LinearHead train(const std::vector<LabeledFeatures> &data,
                            i64 classes, i64 epochs = 60,
                            double lr = 0.5, u64 seed = 3);

    /** Predicted class for one feature vector. */
    i64 predict(const std::vector<float> &x) const;

    /** Softmax class probabilities for one feature vector. */
    std::vector<double> probabilities(const std::vector<float> &x) const;

    /** Top-1 accuracy over a labelled set. */
    double accuracy(const std::vector<LabeledFeatures> &data) const;

    i64 classes() const { return classes_; }
    i64 dim() const { return dim_; }

  private:
    LinearHead(i64 classes, i64 dim);

    i64 classes_;
    i64 dim_;
    std::vector<double> weights_; ///< [classes][dim].
    std::vector<double> biases_;  ///< [classes].
};

} // namespace eva2

#endif // EVA2_EVAL_RETRAIN_H
