#include "eval/classifier.h"

#include <cmath>

#include "eval/retrain.h"
#include "video/scenarios.h"

namespace eva2 {

PrototypeClassifier
PrototypeClassifier::calibrate(const Network &net, u64 seed)
{
    PrototypeClassifier clf;
    const i64 target = net.default_target_index();
    for (i64 cls = 0; cls < kNumClasses; ++cls) {
        // Average several scene variants (different backgrounds,
        // object placements and sizes) so the prototype captures the
        // class texture rather than one particular scene.
        std::vector<double> proto;
        for (u64 variant = 0; variant < 4; ++variant) {
            SceneConfig cfg = classification_scene(
                seed + static_cast<u64>(cls) * 977 + variant * 8171,
                cls, 0.0, net.input_shape().h);
            const SyntheticVideo video(cfg);
            for (i64 t : {0, 7}) {
                const std::vector<float> f = pooled_features(
                    net.forward_prefix(video.render(t).image, target));
                if (proto.empty()) {
                    proto.assign(f.size(), 0.0);
                }
                for (size_t i = 0; i < f.size(); ++i) {
                    proto[i] += f[i];
                }
            }
        }
        double norm = 0.0;
        for (double v : proto) {
            norm += v * v;
        }
        norm = std::sqrt(norm);
        if (norm > 1e-12) {
            for (double &v : proto) {
                v /= norm;
            }
        }
        clf.protos_.push_back(std::move(proto));
    }
    return clf;
}

i64
PrototypeClassifier::classify(const Tensor &target_activation) const
{
    require(!protos_.empty(), "classifier not calibrated");
    const std::vector<float> f = pooled_features(target_activation);
    require(f.size() == protos_[0].size(),
            "classifier: activation channel count mismatch");
    double norm = 0.0;
    for (float v : f) {
        norm += static_cast<double>(v) * v;
    }
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
        return 0;
    }
    double best = -2.0;
    i64 best_cls = 0;
    for (size_t cls = 0; cls < protos_.size(); ++cls) {
        double dot = 0.0;
        for (size_t i = 0; i < f.size(); ++i) {
            dot += static_cast<double>(f[i]) * protos_[cls][i];
        }
        const double sim = dot / norm;
        if (sim > best) {
            best = sim;
            best_cls = static_cast<i64>(cls);
        }
    }
    return best_cls;
}

} // namespace eva2
