/**
 * @file
 * A detection read-out for untrained feature extractors.
 *
 * The paper evaluates trained Faster R-CNN heads; we cannot ship
 * trained weights, so detection quality is measured with a calibrated
 * read-out over the AMC target activation (see DESIGN.md,
 * substitutions): a per-cell linear classifier (object classes plus
 * background) is trained once on labelled calibration scenes —
 * structurally the same operation as Faster R-CNN's 1x1-convolution
 * RPN classifier — and detection thresholds cell probabilities,
 * groups object cells into connected components, and maps components
 * to pixel boxes through the target layer's receptive-field geometry.
 * The read-out is *fixed* across execution strategies, so mAP
 * differences isolate the quality of the predicted activations.
 */
#ifndef EVA2_EVAL_DETECTOR_H
#define EVA2_EVAL_DETECTOR_H

#include "cnn/network.h"
#include "cnn/receptive_field.h"
#include "eval/metrics.h"
#include "eval/retrain.h"

namespace eva2 {

/** Calibrated activation-space detector. */
class ActivationDetector
{
  public:
    /**
     * Train the per-cell classifier from labelled calibration scenes:
     * moving single-object clips of every class plus empty scenes,
     * with cells labelled by the ground-truth boxes.
     *
     * @param net          The (scaled) detection network.
     * @param target_layer AMC target layer index; activations at this
     *                     layer are what detect() consumes.
     * @param seed         Calibration scene seed.
     */
    static ActivationDetector calibrate(const Network &net,
                                        i64 target_layer, u64 seed = 7);

    /**
     * Decode detections from a target-layer activation.
     *
     * @param activation Target-layer activation (any provenance: full
     *                   execution, warped, or stale).
     * @param frame_id   Tag copied to the emitted detections.
     */
    std::vector<Detection> detect(const Tensor &activation,
                                  i64 frame_id) const;

    /** Per-cell class decision (background = num_classes). Exposed
     * for tests. */
    i64 classify_cell(const Tensor &activation, i64 y, i64 x) const;

    i64 num_classes() const { return num_classes_; }
    const ReceptiveField &rf() const { return rf_; }

    /** Pixel-space centre of an activation cell coordinate. */
    double cell_center(i64 u) const;

  private:
    ActivationDetector() = default;

    std::vector<float> cell_features(const Tensor &activation, i64 y,
                                     i64 x) const;

    std::unique_ptr<LinearHead> head_;
    i64 num_classes_ = 0;
    /**
     * Minimum (spatially smoothed) class probability for a cell to
     * count as an object. The 3x3 smoothing pass in detect() already
     * suppresses isolated noise, so the threshold is set for recall.
     */
    double confidence_threshold_ = 0.35;
    ReceptiveField rf_;
    i64 image_h_ = 0;
    i64 image_w_ = 0;
};

} // namespace eva2

#endif // EVA2_EVAL_DETECTOR_H
