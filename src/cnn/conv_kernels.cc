#include "cnn/conv_kernels.h"

#include <cstring>

#include "runtime/parallel_for.h"
#include "util/math_util.h"

namespace eva2 {

namespace {

/**
 * GEMM tile width in output pixels. 32 floats of accumulator fits
 * the vector register file comfortably (8 SSE / 4 AVX registers)
 * while a K x 32 strip of the packed matrix stays L2-resident for
 * every realistic K in the model zoo.
 */
constexpr i64 kTileN = 32;

/**
 * One output-pixel tile of the GEMM: C[m][j0..j0+jn) for all m.
 * Each accumulator sums taps in ascending k, preserving the
 * per-output accumulation order of the direct kernel.
 */
void
gemm_tile(const float *weights, const float *biases, const float *col,
          i64 out_c, i64 taps, i64 n, i64 j0, i64 jn, float *out,
          bool fuse_relu)
{
    float acc[kTileN];
    for (i64 m = 0; m < out_c; ++m) {
        const float *w = weights + m * taps;
        for (i64 jj = 0; jj < jn; ++jj) {
            acc[jj] = biases[m];
        }
        for (i64 k = 0; k < taps; ++k) {
            const float wk = w[k];
            const float *b = col + k * n + j0;
            for (i64 jj = 0; jj < jn; ++jj) {
                acc[jj] += wk * b[jj];
            }
        }
        float *c = out + m * n + j0;
        if (fuse_relu) {
            for (i64 jj = 0; jj < jn; ++jj) {
                c[jj] = acc[jj] > 0.0f ? acc[jj] : 0.0f;
            }
        } else {
            for (i64 jj = 0; jj < jn; ++jj) {
                c[jj] = acc[jj];
            }
        }
    }
}

/**
 * Pack tap row `k` of one sample into a column matrix whose rows are
 * `row_stride` wide: the sample's output pixels land at columns
 * [col_offset, col_offset + oh*ow). The single-sample packer uses
 * row_stride == oh*ow and offset 0; the batched packer lays samples
 * side by side in wider rows.
 */
void
pack_tap_row(const Tensor &in, const ConvGeometry &g,
             const Shape &out_shape, float *dst, i64 row_stride,
             i64 col_offset, i64 k)
{
    const i64 kx = k % g.kernel;
    const i64 ky = (k / g.kernel) % g.kernel;
    const i64 ic = k / (g.kernel * g.kernel);
    const i64 ih = in.height();
    const i64 iw = in.width();
    float *row = dst + k * row_stride + col_offset;
    const float *plane = in.channel(ic).data();
    for (i64 oy = 0; oy < out_shape.h; ++oy) {
        const i64 y = oy * g.stride - g.pad + ky;
        float *r = row + oy * out_shape.w;
        if (y < 0 || y >= ih) {
            for (i64 ox = 0; ox < out_shape.w; ++ox) {
                r[ox] = 0.0f;
            }
            continue;
        }
        const float *src = plane + y * iw;
        for (i64 ox = 0; ox < out_shape.w; ++ox) {
            const i64 x = ox * g.stride - g.pad + kx;
            r[ox] = (x < 0 || x >= iw) ? 0.0f : src[x];
        }
    }
}

/**
 * Full GEMM over `ncols` packed columns, split across threads in
 * disjoint column strips. kScalar runs the blocked reference tile;
 * SIMD variants run their register-tile strip kernel at the variant's
 * preferred strip width. Either way strips write disjoint columns and
 * per-output accumulation order is fixed, so the split is
 * deterministic and thread-count-invariant.
 */
void
run_gemm(GemmVariant variant, const float *weights, const float *biases,
         const float *packed, i64 out_c, i64 taps, i64 ncols,
         float *dst, bool fuse_relu)
{
    const i64 width = variant == GemmVariant::kScalar
                          ? kTileN
                          : gemm_strip_width(variant);
    const i64 strips = ceil_div(ncols, width);
    parallel_for(0, strips, [&](i64 s) {
        const i64 j0 = s * width;
        const i64 jn = std::min<i64>(width, ncols - j0);
        if (variant == GemmVariant::kScalar) {
            gemm_tile(weights, biases, packed, out_c, taps, ncols, j0,
                      jn, dst, fuse_relu);
        } else {
            gemm_strip_simd(variant, weights, biases, packed, out_c,
                            taps, ncols, j0, jn, dst, fuse_relu);
        }
    });
}

} // namespace

void
gemm_strip_scalar(const float *weights, const float *biases,
                  const float *col, i64 out_c, i64 taps, i64 n, i64 j0,
                  i64 jn, float *out, bool fuse_relu)
{
    for (i64 t0 = 0; t0 < jn; t0 += kTileN) {
        const i64 tn = std::min<i64>(kTileN, jn - t0);
        gemm_tile(weights, biases, col, out_c, taps, n, j0 + t0, tn,
                  out, fuse_relu);
    }
}

void
im2col_pack(const Tensor &in, const ConvGeometry &g,
            const Shape &out_shape, Tensor &col)
{
    const i64 taps = im2col_rows(g);
    const i64 n = out_shape.h * out_shape.w;
    col.reshape_to(Shape{1, taps, n});
    float *dst = col.data().data();
    // Rows are independent (one (ic, ky, kx) tap each) and written
    // disjointly, so splitting them across threads is deterministic.
    parallel_for(
        0, taps,
        [&](i64 k) {
            pack_tap_row(in, g, out_shape, dst, n, 0, k);
        },
        ParallelForOptions{/*grain=*/4, /*pool=*/nullptr});
}

void
conv_direct(const Tensor &in, const ConvGeometry &g,
            const float *weights, const float *biases, Tensor &out,
            bool fuse_relu)
{
    const Shape os = out.shape();
    const i64 ih = in.height();
    const i64 iw = in.width();
    // Output channels are independent and write disjoint planes, so
    // splitting them across threads is bit-identical to the serial
    // loop (the per-element accumulation order is unchanged).
    parallel_for(0, g.out_c, [&](i64 oc) {
        for (i64 oy = 0; oy < os.h; ++oy) {
            const i64 base_y = oy * g.stride - g.pad;
            for (i64 ox = 0; ox < os.w; ++ox) {
                const i64 base_x = ox * g.stride - g.pad;
                float acc = biases[oc];
                for (i64 ic = 0; ic < g.in_c; ++ic) {
                    for (i64 ky = 0; ky < g.kernel; ++ky) {
                        const i64 y = base_y + ky;
                        if (y < 0 || y >= ih) {
                            continue;
                        }
                        const float *w =
                            weights +
                            ((oc * g.in_c + ic) * g.kernel + ky) *
                                g.kernel;
                        for (i64 kx = 0; kx < g.kernel; ++kx) {
                            const i64 x = base_x + kx;
                            if (x < 0 || x >= iw) {
                                continue;
                            }
                            acc += w[kx] * in.at(ic, y, x);
                        }
                    }
                }
                out.at(oc, oy, ox) =
                    fuse_relu ? (acc > 0.0f ? acc : 0.0f) : acc;
            }
        }
    });
}

void
conv_im2col_gemm(const Tensor &in, const ConvGeometry &g,
                 const float *weights, const float *biases, Tensor &out,
                 Tensor &col, bool fuse_relu, GemmVariant variant)
{
    const Shape os = out.shape();
    im2col_pack(in, g, os, col);
    const i64 taps = im2col_rows(g);
    const i64 n = os.h * os.w;
    const float *packed = col.data().data();
    float *dst = out.data().data();
    run_gemm(variant, weights, biases, packed, g.out_c, taps, n, dst,
             fuse_relu);
}

void
conv_im2col_gemm_batched(const Tensor *const *ins, i64 nb,
                         const ConvGeometry &g, const float *weights,
                         const float *biases, Tensor *const *outs,
                         Tensor &col, Tensor &gemm_out, bool fuse_relu,
                         GemmVariant variant)
{
    require(nb >= 1, "batched conv: batch must be >= 1");
    const Shape os = outs[0]->shape();
    const i64 taps = im2col_rows(g);
    const i64 pix = os.h * os.w;
    const i64 ncols = nb * pix;
    col.reshape_to(Shape{1, taps, ncols});
    gemm_out.reshape_to(Shape{1, g.out_c, ncols});
    float *packed = col.data().data();
    // Pack every sample side by side: sample i's output pixels occupy
    // columns [i*pix, (i+1)*pix) of every tap row.
    parallel_for(
        0, taps,
        [&](i64 k) {
            for (i64 i = 0; i < nb; ++i) {
                pack_tap_row(*ins[i], g, os, packed, ncols, i * pix, k);
            }
        },
        ParallelForOptions{/*grain=*/4, /*pool=*/nullptr});
    // One GEMM over the whole batch's columns. Tiles may span sample
    // boundaries; each output element's accumulation is per-column,
    // so the grouping cannot change any result bit.
    float *dst = gemm_out.data().data();
    run_gemm(variant, weights, biases, packed, g.out_c, taps, ncols,
             dst, fuse_relu);
    // Scatter the interleaved [out_c][nb*pix] product back to each
    // sample's CHW tensor (plain copies: values are already final).
    parallel_for(0, nb, [&](i64 i) {
        float *sample = outs[i]->data().data();
        const float *src = dst + i * pix;
        for (i64 m = 0; m < g.out_c; ++m) {
            std::memcpy(sample + m * pix, src + m * ncols,
                        static_cast<size_t>(pix) * sizeof(float));
        }
    });
}

} // namespace eva2
