/**
 * @file
 * Fully-connected and softmax layers. These are the non-spatial layers
 * that must remain in the CNN suffix: they have "no 2D spatial
 * structure and no meaningful relationship with motion in the input"
 * (Section II-C5).
 */
#ifndef EVA2_CNN_FC_LAYER_H
#define EVA2_CNN_FC_LAYER_H

#include <vector>

#include "cnn/layer.h"

namespace eva2 {

/**
 * Dense layer: flattens its input (whatever its CHW shape) and applies
 * y = Wx + b. Output shape is {out_dim, 1, 1}.
 */
class FcLayer : public Layer
{
  public:
    /**
     * @param in_dim  Flattened input length.
     * @param out_dim Output vector length.
     */
    FcLayer(i64 in_dim, i64 out_dim);

    Tensor forward(const Tensor &in) const override;
    void forward_into(const Tensor &in,
                      const ForwardCtx &ctx) const override;

    /**
     * Batched forward over `nb` same-shape inputs: for each output
     * neuron, the weight row is loaded once and dotted against every
     * sample before moving on. An unbatched FC is a matrix-vector
     * product that re-streams the whole weight matrix per sample;
     * batching turns it into a matrix-matrix product whose weight
     * traffic is amortized across the batch — the dominant win of
     * cross-stream suffix batching, since FC weights are the largest
     * tensors the suffix touches. Per-sample accumulation (bias, then
     * ascending input index) is identical to forward_into, so each
     * sample's output is bit-identical to a batch-of-1 call.
     *
     * With `simd` (tuner-selected; requires simd_supported()), each
     * sample's chain runs through the SIMD dot kernel instead —
     * bounded divergence vs the scalar chains, never bit-exact.
     */
    void forward_batched(const Tensor *const *ins, i64 nb,
                         Tensor *const *outs, bool fuse_relu,
                         bool simd = false) const;

    Shape out_shape(const Shape &in) const override;
    LayerKind kind() const override { return LayerKind::kFc; }
    i64 macs(const Shape & /* in */) const override
    {
        return in_dim_ * out_dim_;
    }
    bool spatial() const override { return false; }

    i64 in_dim() const { return in_dim_; }
    i64 out_dim() const { return out_dim_; }

    /** Mutable weight storage, row-major [out_dim][in_dim]. */
    std::vector<float> &weights() { return weights_; }
    const std::vector<float> &weights() const { return weights_; }

    /** Mutable bias storage; size out_dim. */
    std::vector<float> &biases() { return biases_; }
    const std::vector<float> &biases() const { return biases_; }

  private:
    i64 in_dim_;
    i64 out_dim_;
    std::vector<float> weights_;
    std::vector<float> biases_;
};

/** Numerically-stable softmax over the flattened input. */
class SoftmaxLayer : public Layer
{
  public:
    Tensor forward(const Tensor &in) const override;
    void forward_into(const Tensor &in,
                      const ForwardCtx &ctx) const override;
    Shape
    out_shape(const Shape &in) const override
    {
        return Shape{in.size(), 1, 1};
    }
    LayerKind kind() const override { return LayerKind::kSoftmax; }
    bool spatial() const override { return false; }
};

} // namespace eva2

#endif // EVA2_CNN_FC_LAYER_H
