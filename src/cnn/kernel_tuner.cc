#include "cnn/kernel_tuner.h"

#include <algorithm>
#include <chrono>

#include "flow/rfbme.h"
#include "flow/sad_kernels.h"
#include "util/rng.h"

namespace eva2 {

namespace {

using Clock = std::chrono::steady_clock;

double
us_since(Clock::time_point t0)
{
    return std::chrono::duration<double, std::micro>(Clock::now() - t0)
        .count();
}

/**
 * Defeats dead-code elimination of the tuning workloads: the
 * candidates write into scratch buffers nothing reads, so each run
 * folds one element into this volatile sink.
 */
volatile float g_tune_sink = 0.0f;

void
consume(float v)
{
    g_tune_sink = g_tune_sink + v;
}

/** Deterministic synthetic fill for tuning workloads. */
void
fill_uniform(std::vector<float> &v, u64 seed)
{
    Rng rng(seed);
    for (float &x : v) {
        x = rng.uniform_f(-1.0f, 1.0f);
    }
}

} // namespace

KernelTuner &
KernelTuner::instance()
{
    static KernelTuner tuner;
    return tuner;
}

TunePick
KernelTuner::pick(const std::string &key,
                  const std::vector<TuneCandidate> &candidates,
                  i64 budget_us)
{
    require(!candidates.empty(), "kernel tuner: no candidates for '" +
                                     key + "'");
    {
        MutexLock lock(mutex_);
        const auto it = cache_.find(key);
        if (it != cache_.end()) {
            return it->second;
        }
    }
    // Tune outside the lock: contests can take milliseconds, and two
    // plans compiling different shapes should not serialize. A race
    // on the *same* shape tunes twice; the first insert wins below.
    const double budget = static_cast<double>(std::max<i64>(
        budget_us, 1));
    std::vector<double> best(candidates.size(), 0.0);
    for (size_t c = 0; c < candidates.size(); ++c) {
        candidates[c].run(); // Warm caches and code paths, untimed.
    }
    const Clock::time_point start = Clock::now();
    constexpr int kMaxRounds = 5;
    for (int round = 0; round < kMaxRounds; ++round) {
        for (size_t c = 0; c < candidates.size(); ++c) {
            const Clock::time_point t0 = Clock::now();
            candidates[c].run();
            const double dt = us_since(t0);
            if (round == 0 || dt < best[c]) {
                best[c] = dt;
            }
        }
        // Every candidate got at least one timed run by now; stop
        // once the budget is spent.
        if (us_since(start) >= budget) {
            break;
        }
    }
    size_t winner = 0;
    for (size_t c = 1; c < candidates.size(); ++c) {
        if (best[c] < best[winner]) {
            winner = c;
        }
    }
    TunePick pick;
    pick.id = candidates[winner].id;
    pick.name = candidates[winner].name;
    pick.best_us = best[winner];
    MutexLock lock(mutex_);
    const auto inserted = cache_.emplace(key, pick);
    if (inserted.second) {
        ++contests_;
    }
    // Losers of an insert race adopt the resident pick, so every
    // caller in the process agrees on one variant per shape.
    return inserted.first->second;
}

i64
KernelTuner::cache_size() const
{
    MutexLock lock(mutex_);
    return static_cast<i64>(cache_.size());
}

i64
KernelTuner::contests() const
{
    MutexLock lock(mutex_);
    return contests_;
}

void
KernelTuner::clear()
{
    MutexLock lock(mutex_);
    cache_.clear();
    contests_ = 0;
}

GemmVariant
tune_conv_gemm(const ConvGeometry &g, i64 out_h, i64 out_w,
               bool fuse_relu, i64 budget_us)
{
    if (!simd_supported()) {
        return GemmVariant::kScalar;
    }
    const i64 taps = im2col_rows(g);
    const i64 n = out_h * out_w;
    // Cap the tuning workload's columns so one contest costs a few
    // megaflops per candidate regardless of layer size; the register
    // tiles' relative ranking is column-count-invariant past a few
    // tiles.
    const i64 flops_per_col = std::max<i64>(g.out_c * taps, 1);
    const i64 n_cap = std::max<i64>(64, 4000000 / flops_per_col);
    const i64 n_tune = std::min(n, n_cap);

    const std::string key =
        "conv_gemm:ic=" + std::to_string(g.in_c) +
        ",oc=" + std::to_string(g.out_c) +
        ",k=" + std::to_string(g.kernel) +
        ",s=" + std::to_string(g.stride) +
        ",p=" + std::to_string(g.pad) + ",oh=" + std::to_string(out_h) +
        ",ow=" + std::to_string(out_w) +
        ",fuse=" + std::to_string(fuse_relu ? 1 : 0);

    std::vector<float> weights(
        static_cast<size_t>(g.out_c * taps));
    std::vector<float> biases(static_cast<size_t>(g.out_c));
    std::vector<float> col(static_cast<size_t>(taps * n_tune));
    std::vector<float> out(static_cast<size_t>(g.out_c * n_tune));
    fill_uniform(weights, 17);
    fill_uniform(biases, 19);
    fill_uniform(col, 23);

    std::vector<TuneCandidate> candidates;
    TuneCandidate scalar;
    scalar.name = gemm_variant_name(GemmVariant::kScalar);
    scalar.id = static_cast<i64>(GemmVariant::kScalar);
    scalar.run = [&weights, &biases, &col, &out, g, taps, n_tune,
                  fuse_relu]() {
        gemm_strip_scalar(weights.data(), biases.data(), col.data(),
                          g.out_c, taps, n_tune, 0, n_tune, out.data(),
                          fuse_relu);
        consume(out[0]);
    };
    candidates.push_back(std::move(scalar));
    for (const GemmVariant v : simd_gemm_variants()) {
        TuneCandidate cand;
        cand.name = gemm_variant_name(v);
        cand.id = static_cast<i64>(v);
        cand.run = [&weights, &biases, &col, &out, g, taps, n_tune,
                    fuse_relu, v]() {
            gemm_strip_simd(v, weights.data(), biases.data(),
                            col.data(), g.out_c, taps, n_tune, 0,
                            n_tune, out.data(), fuse_relu);
            consume(out[0]);
        };
        candidates.push_back(std::move(cand));
    }
    const TunePick pick =
        KernelTuner::instance().pick(key, candidates, budget_us);
    return static_cast<GemmVariant>(pick.id);
}

bool
tune_fc_simd(i64 in_dim, i64 out_dim, i64 budget_us)
{
    if (!simd_supported()) {
        return false;
    }
    // Tune on a row subset: the dot kernels' ranking depends on
    // in_dim (chain length), not on how many rows consume it.
    const i64 rows = std::max<i64>(
        4, std::min(out_dim, 2000000 / std::max<i64>(in_dim, 1)));
    const std::string key = "fc:in=" + std::to_string(in_dim) +
                            ",out=" + std::to_string(out_dim);

    std::vector<float> weights(static_cast<size_t>(rows * in_dim));
    std::vector<float> x(static_cast<size_t>(in_dim));
    fill_uniform(weights, 29);
    fill_uniform(x, 31);

    std::vector<TuneCandidate> candidates(2);
    candidates[0].name = "scalar";
    candidates[0].id = 0;
    candidates[0].run = [&weights, &x, rows, in_dim]() {
        float sink = 0.0f;
        for (i64 r = 0; r < rows; ++r) {
            const float *w =
                weights.data() + static_cast<size_t>(r * in_dim);
            float acc = 0.0f;
            for (i64 i = 0; i < in_dim; ++i) {
                acc += w[i] * x[static_cast<size_t>(i)];
            }
            sink += acc;
        }
        consume(sink);
    };
    candidates[1].name = "simd";
    candidates[1].id = 1;
    candidates[1].run = [&weights, &x, rows, in_dim]() {
        float sink = 0.0f;
        for (i64 r = 0; r < rows; ++r) {
            sink += fc_dot_simd(
                weights.data() + static_cast<size_t>(r * in_dim),
                x.data(), in_dim, 0.0f);
        }
        consume(sink);
    };
    return KernelTuner::instance()
               .pick(key, candidates, budget_us)
               .id == 1;
}

RfbmeVariant
tune_rfbme_tile(i64 rf_stride, i64 budget_us)
{
    if (!simd_supported()) {
        return RfbmeVariant::kScalar;
    }
    const i64 s = std::max<i64>(rf_stride, 1);
    // Synthetic interior tile rows at the real tile width: enough
    // adjacent tiles that the row kernel dominates the call, folded
    // over several rows like the producer does.
    const i64 tiles = std::max<i64>(1, 4096 / s);
    const i64 n = tiles * s;
    const i64 rows = 16;
    const std::string key = "rfbme_tile/" + std::to_string(s) + "x" +
                            std::to_string(s);

    std::vector<float> a(static_cast<size_t>(n * rows));
    std::vector<float> b(static_cast<size_t>(n * rows));
    std::vector<double> acc(static_cast<size_t>(tiles), 0.0);
    fill_uniform(a, 37);
    fill_uniform(b, 41);

    std::vector<TuneCandidate> candidates(2);
    candidates[0].name = rfbme_variant_name(RfbmeVariant::kScalar);
    candidates[0].id = static_cast<i64>(RfbmeVariant::kScalar);
    candidates[0].run = [&a, &b, &acc, tiles, s, n, rows]() {
        for (i64 r = 0; r < rows; ++r) {
            sad_tile_row(a.data() + r * n, b.data() + r * n, tiles, s,
                         acc.data());
        }
        consume(static_cast<float>(acc[0]));
    };
    candidates[1].name = rfbme_variant_name(RfbmeVariant::kSimd);
    candidates[1].id = static_cast<i64>(RfbmeVariant::kSimd);
    candidates[1].run = [&a, &b, &acc, tiles, s, n, rows]() {
        for (i64 r = 0; r < rows; ++r) {
            sad_tile_row_simd(a.data() + r * n, b.data() + r * n,
                              tiles, s, acc.data());
        }
        consume(static_cast<float>(acc[0]));
    };
    return static_cast<RfbmeVariant>(
        KernelTuner::instance().pick(key, candidates, budget_us).id);
}

} // namespace eva2
