#include "cnn/weights.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "cnn/conv_layer.h"
#include "cnn/fc_layer.h"

namespace eva2 {

namespace {

/**
 * Normalize a filter slice to zero mean and unit L2 norm so first-layer
 * responses are comparable across orientations.
 */
void
normalize_filter(float *w, i64 n)
{
    double mean = 0.0;
    for (i64 i = 0; i < n; ++i) {
        mean += w[i];
    }
    mean /= static_cast<double>(n);
    double norm = 0.0;
    for (i64 i = 0; i < n; ++i) {
        w[i] -= static_cast<float>(mean);
        norm += static_cast<double>(w[i]) * w[i];
    }
    norm = std::sqrt(norm);
    if (norm > 1e-9) {
        for (i64 i = 0; i < n; ++i) {
            w[i] = static_cast<float>(w[i] / norm);
        }
    }
}

/** He-scaled Gaussian fill for one conv layer plus a sparsifying bias. */
void
init_conv_random(ConvLayer &conv, Rng rng)
{
    const i64 fan_in = conv.in_channels() * conv.kernel() * conv.kernel();
    const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
    for (float &w : conv.weights()) {
        w = static_cast<float>(rng.normal(0.0, stddev));
    }
    // A small negative bias pushes marginal responses below the ReLU
    // threshold, reproducing the activation sparsity (typically well
    // over half zeros) that EVA2's RLE storage and sparsity decoder
    // lanes exploit.
    for (float &b : conv.biases()) {
        b = static_cast<float>(-0.25 * stddev * std::sqrt(fan_in) *
                               rng.uniform(0.5, 1.5));
    }
}

} // namespace

void
fill_first_layer_bank(ConvLayer &conv)
{
    const i64 k = conv.kernel();
    const double center = static_cast<double>(k - 1) / 2.0;
    const double sigma = std::max(1.0, static_cast<double>(k) / 4.0);
    std::vector<float> slice(static_cast<size_t>(k * k));

    // Orientation/frequency factorized bank: adjacent channel pairs
    // share an orientation and split the two wavelength families, so
    // every orientation is sensed at both texture frequencies. One
    // channel in ~five is a centre-surround blob detector.
    const i64 n_orient =
        std::max<i64>(4, (conv.out_channels() + 1) / 2);
    for (i64 oc = 0; oc < conv.out_channels(); ++oc) {
        const bool surround = (oc % 5) == 4;
        const double theta =
            M_PI * static_cast<double>((oc / 2) % n_orient) /
            static_cast<double>(n_orient);
        for (i64 y = 0; y < k; ++y) {
            for (i64 x = 0; x < k; ++x) {
                const double dy = static_cast<double>(y) - center;
                const double dx = static_cast<double>(x) - center;
                const double r2 = dx * dx + dy * dy;
                const double envelope =
                    std::exp(-r2 / (2.0 * sigma * sigma));
                double v;
                if (surround) {
                    // Difference of Gaussians (blob detector).
                    const double s2 = sigma / 2.0;
                    v = std::exp(-r2 / (2.0 * s2 * s2)) - 0.5 * envelope;
                } else {
                    // Odd Gabor: responds to stripes along theta, in
                    // two frequency families so both texture bands of
                    // the synthetic classes excite distinct channels.
                    const double wavelength =
                        (oc % 2 == 0) ? 1.4 * static_cast<double>(k)
                                      : 0.8 * static_cast<double>(k);
                    const double u =
                        dx * std::cos(theta) + dy * std::sin(theta);
                    v = envelope * std::sin(2.0 * M_PI * u / wavelength);
                }
                slice[static_cast<size_t>(y * k + x)] =
                    static_cast<float>(v);
            }
        }
        normalize_filter(slice.data(), k * k);
        for (i64 ic = 0; ic < conv.in_channels(); ++ic) {
            for (i64 y = 0; y < k; ++y) {
                for (i64 x = 0; x < k; ++x) {
                    conv.weights()[static_cast<size_t>(
                        conv.weight_index(oc, ic, y, x))] =
                        slice[static_cast<size_t>(y * k + x)] /
                        static_cast<float>(conv.in_channels());
                }
            }
        }
    }
    for (float &b : conv.biases()) {
        b = 0.0f;
    }
}

namespace {

/**
 * Deterministic richly textured calibration image: multi-octave hash
 * noise plus oriented stripe patches, so every filter family sees
 * representative stimulus during calibration.
 */
Tensor
calibration_image(const Shape &shape, u64 seed)
{
    Tensor img(shape);
    auto hash01 = [seed](i64 a, i64 b, u64 salt) {
        u64 z = seed ^ (static_cast<u64>(a) * 0x9e3779b97f4a7c15ull) ^
                (static_cast<u64>(b) * 0xbf58476d1ce4e5b9ull) ^
                (salt * 0x94d049bb133111ebull);
        z ^= z >> 30;
        z *= 0xbf58476d1ce4e5b9ull;
        z ^= z >> 27;
        return static_cast<double>(z >> 11) * 0x1.0p-53;
    };
    for (i64 c = 0; c < shape.c; ++c) {
        for (i64 y = 0; y < shape.h; ++y) {
            for (i64 x = 0; x < shape.w; ++x) {
                double v = 0.5 * hash01(y / 16, x / 16, 1) +
                           0.3 * hash01(y / 4, x / 4, 2) +
                           0.2 * hash01(y, x, 3);
                // Oriented stripes in the lower-right quadrant.
                if (y > shape.h / 2 && x > shape.w / 2) {
                    const double theta =
                        M_PI * static_cast<double>((x * 4) / shape.w) /
                        4.0;
                    const double u = x * std::cos(theta) +
                                     y * std::sin(theta);
                    v = 0.5 + 0.4 * std::sin(u * 0.8);
                }
                img.at(c, y, x) = static_cast<float>(v);
            }
        }
    }
    return img;
}

/**
 * Smooth bilinear-interpolated lattice noise: the same statistics as
 * the video substrate's value-noise textures (smooth at the given
 * feature scale), without depending on the video module.
 */
Tensor
smooth_noise_image(const Shape &shape, u64 seed, double scale)
{
    auto lattice = [seed](i64 a, i64 b) {
        u64 z = seed ^ (static_cast<u64>(a) * 0x9e3779b97f4a7c15ull) ^
                (static_cast<u64>(b) * 0xbf58476d1ce4e5b9ull);
        z ^= z >> 30;
        z *= 0xbf58476d1ce4e5b9ull;
        z ^= z >> 27;
        return static_cast<double>(z >> 11) * 0x1.0p-53;
    };
    auto smoothstep = [](double t) { return t * t * (3.0 - 2.0 * t); };
    Tensor img(shape);
    for (i64 c = 0; c < shape.c; ++c) {
        for (i64 y = 0; y < shape.h; ++y) {
            for (i64 x = 0; x < shape.w; ++x) {
                const double fy = static_cast<double>(y) / scale;
                const double fx = static_cast<double>(x) / scale;
                const i64 y0 = static_cast<i64>(std::floor(fy));
                const i64 x0 = static_cast<i64>(std::floor(fx));
                const double ty = smoothstep(fy - static_cast<double>(y0));
                const double tx = smoothstep(fx - static_cast<double>(x0));
                const double top = lattice(y0, x0) * (1.0 - tx) +
                                   lattice(y0, x0 + 1) * tx;
                const double bot = lattice(y0 + 1, x0) * (1.0 - tx) +
                                   lattice(y0 + 1, x0 + 1) * tx;
                img.at(c, y, x) = static_cast<float>(
                    top * (1.0 - ty) + bot * ty);
            }
        }
    }
    return img;
}

/** Quantile of a span of floats (copies and partially sorts). */
float
quantile(Span<const float> xs, double q)
{
    std::vector<float> copy(xs.begin(), xs.end());
    const size_t k = static_cast<size_t>(
        q * static_cast<double>(copy.size() - 1));
    std::nth_element(copy.begin(), copy.begin() + static_cast<long>(k),
                     copy.end());
    return copy[k];
}

} // namespace

void
calibrate_activations(Network &net, u64 seed, double target_sparsity)
{
    // Calibrate over an ensemble of stimuli so the resulting sparsity
    // holds for inputs the network was not calibrated on: a textured
    // scene-like image, white noise at two amplitudes, and smooth
    // interpolated lattice noise at two feature scales (matching the
    // statistics of the synthetic video substrate's scenes).
    std::vector<Tensor> acts;
    acts.push_back(
        calibration_image(net.input_shape(), seed ^ 0xabcdefull));
    Rng rng(seed ^ 0x5eedull);
    for (const float amp : {1.0f, 0.5f}) {
        Tensor noise(net.input_shape());
        for (i64 i = 0; i < noise.size(); ++i) {
            noise[i] = rng.uniform_f(0.0f, amp);
        }
        acts.push_back(std::move(noise));
    }
    for (const double scale : {8.0, 24.0}) {
        acts.push_back(smooth_noise_image(net.input_shape(),
                                          seed ^ 0x5107ull, scale));
    }

    // Trained CNNs get sparser with depth (the deepest layers are the
    // most class-selective); ramp the per-layer target up to
    // `target_sparsity` at the last conv so the stored target
    // activation stays sparse even after overlapping max-pooling.
    i64 num_convs = 0;
    for (i64 i = 0; i < net.num_layers(); ++i) {
        if (net.layer(i).kind() == LayerKind::kConv) {
            ++num_convs;
        }
    }
    i64 conv_index = 0;

    for (i64 i = 0; i < net.num_layers(); ++i) {
        Layer &l = net.layer(i);
        if (l.kind() != LayerKind::kConv) {
            if (!l.spatial()) {
                break; // FC head needs no spatial calibration.
            }
            for (Tensor &act : acts) {
                act = l.forward(act);
            }
            continue;
        }
        const double depth_frac =
            num_convs > 1 ? static_cast<double>(conv_index) /
                                static_cast<double>(num_convs - 1)
                          : 1.0;
        const double layer_target =
            0.6 + (target_sparsity - 0.6) * depth_frac;
        ++conv_index;
        auto &conv = static_cast<ConvLayer &>(l);
        std::vector<Tensor> outs;
        outs.reserve(acts.size());
        for (const Tensor &act : acts) {
            outs.push_back(conv.forward(act));
        }

        // Per-channel bias shift: place the ReLU threshold at the
        // target sparsity quantile of the pooled pre-activation
        // distribution across all stimuli. (Taking the max of
        // per-stimulus quantiles instead would guarantee the target
        // for every family, but the compounding across deep stacks
        // silences weak-response inputs entirely; pooling degrades
        // gracefully.)
        const i64 plane = outs[0].height() * outs[0].width();
        std::vector<float> pooled;
        pooled.reserve(outs.size() * static_cast<size_t>(plane));
        for (i64 oc = 0; oc < outs[0].channels(); ++oc) {
            pooled.clear();
            for (const Tensor &out : outs) {
                Span<const float> ch = out.channel(oc);
                pooled.insert(pooled.end(), ch.begin(), ch.end());
            }
            const float q = quantile(pooled, layer_target);
            conv.biases()[static_cast<size_t>(oc)] -= q;
            for (Tensor &out : outs) {
                for (i64 p = 0; p < plane; ++p) {
                    out.at(oc, p / out.width(), p % out.width()) -= q;
                }
            }
        }

        // Magnitude normalization: unit RMS over the surviving
        // (positive) values keeps activations O(1) at every depth.
        double acc = 0.0;
        i64 n = 0;
        for (const Tensor &out : outs) {
            for (i64 j = 0; j < out.size(); ++j) {
                if (out[j] > 0.0f) {
                    acc += static_cast<double>(out[j]) * out[j];
                    ++n;
                }
            }
        }
        const double rms = n > 0 ? std::sqrt(acc / n) : 0.0;
        if (rms > 1e-9) {
            const float s = static_cast<float>(1.0 / rms);
            for (float &w : conv.weights()) {
                w *= s;
            }
            for (float &b : conv.biases()) {
                b *= s;
            }
            for (Tensor &out : outs) {
                for (i64 j = 0; j < out.size(); ++j) {
                    out[j] *= s;
                }
            }
        }
        acts = std::move(outs);
    }
}

void
init_weights(Network &net, u64 seed)
{
    Rng root(seed);
    bool first_conv = true;
    for (i64 i = 0; i < net.num_layers(); ++i) {
        Layer &l = net.layer(i);
        Rng stream = root.fork(static_cast<u64>(i));
        if (l.kind() == LayerKind::kConv) {
            auto &conv = static_cast<ConvLayer &>(l);
            if (first_conv) {
                fill_first_layer_bank(conv);
                first_conv = false;
            } else {
                init_conv_random(conv, stream);
            }
        } else if (l.kind() == LayerKind::kFc) {
            auto &fc = static_cast<FcLayer &>(l);
            const double stddev =
                std::sqrt(2.0 / static_cast<double>(fc.in_dim()));
            for (float &w : fc.weights()) {
                w = static_cast<float>(stream.normal(0.0, stddev));
            }
            for (float &b : fc.biases()) {
                b = 0.0f;
            }
        }
    }
    calibrate_activations(net, seed);
}

} // namespace eva2
