/**
 * @file
 * 2D convolutional layer: the workhorse of every network in the paper
 * and the dominant term in the first-order cost model.
 */
#ifndef EVA2_CNN_CONV_LAYER_H
#define EVA2_CNN_CONV_LAYER_H

#include <vector>

#include "cnn/layer.h"
#include "util/math_util.h"

namespace eva2 {

/**
 * A standard (dense, ungrouped) 2D convolution with square kernels,
 * equal stride in both axes, symmetric zero padding, and per-output-
 * channel bias.
 *
 * Weight layout: [out_c][in_c][ky][kx], flat row-major.
 */
class ConvLayer : public Layer
{
  public:
    /**
     * @param in_c   Input channel count.
     * @param out_c  Output channel count (filter count).
     * @param kernel Square kernel extent.
     * @param stride Window step.
     * @param pad    Zero padding on each border.
     */
    ConvLayer(i64 in_c, i64 out_c, i64 kernel, i64 stride, i64 pad);

    Tensor forward(const Tensor &in) const override;
    void forward_into(const Tensor &in,
                      const ForwardCtx &ctx) const override;
    Shape out_shape(const Shape &in) const override;
    LayerKind kind() const override { return LayerKind::kConv; }
    i64 macs(const Shape &in) const override;
    WindowGeometry geometry() const override
    {
        return {kernel_, stride_, pad_};
    }

    i64 in_channels() const { return in_c_; }
    i64 out_channels() const { return out_c_; }
    i64 kernel() const { return kernel_; }
    i64 stride() const { return stride_; }
    i64 pad() const { return pad_; }

    /** Mutable weight storage for initializers; size out*in*k*k. */
    std::vector<float> &weights() { return weights_; }
    const std::vector<float> &weights() const { return weights_; }

    /** Mutable bias storage; size out_c. */
    std::vector<float> &biases() { return biases_; }
    const std::vector<float> &biases() const { return biases_; }

    /** Flat index of weight (oc, ic, ky, kx). */
    i64
    weight_index(i64 oc, i64 ic, i64 ky, i64 kx) const
    {
        return ((oc * in_c_ + ic) * kernel_ + ky) * kernel_ + kx;
    }

  private:
    i64 in_c_;
    i64 out_c_;
    i64 kernel_;
    i64 stride_;
    i64 pad_;
    std::vector<float> weights_;
    std::vector<float> biases_;
};

} // namespace eva2

#endif // EVA2_CNN_CONV_LAYER_H
