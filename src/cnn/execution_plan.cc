#include "cnn/execution_plan.h"

#include "cnn/conv_kernels.h"
#include "cnn/conv_layer.h"
#include "cnn/fc_layer.h"
#include "cnn/kernel_tuner.h"

namespace eva2 {

namespace {

/** Arena slot ids: activations ping-pong, the im2col buffer is its
 * own slot so one workspace serves every gemm conv in the plan. */
constexpr i64 kActSlotA = 0;
constexpr i64 kActSlotB = 1;
constexpr i64 kColSlot = 2;

/** Human-readable variant for one compiled step (reports). */
std::string
step_variant(const Layer &layer, ConvKernel kernel,
             GemmVariant conv_variant, bool simd_fc)
{
    if (layer.kind() == LayerKind::kConv) {
        return kernel == ConvKernel::kIm2colGemm
                   ? gemm_variant_name(conv_variant)
                   : "";
    }
    if (layer.kind() == LayerKind::kFc) {
        return simd_fc ? "simd" : "scalar";
    }
    return "";
}

} // namespace

ExecutionPlan::ExecutionPlan(const Network &net, i64 begin, i64 end,
                             Shape in_shape, PlanOptions opts)
    : net_(&net),
      begin_(begin),
      end_(end),
      in_shape_(in_shape),
      out_shape_(in_shape),
      opts_(opts)
{
    require(begin >= 0 && end <= net.num_layers() && begin <= end,
            "execution plan: bad layer range [" + std::to_string(begin) +
                ", " + std::to_string(end) + ") for network " +
                net.name());
    Shape s = in_shape;
    i64 parity = 0;
    for (i64 i = begin; i < end; ++i) {
        const Layer &layer = net.layer(i);
        Step step;
        step.layer = &layer;
        step.layer_index = i;
        step.out_shape = layer.out_shape(s);
        step.out_slot = parity == 0 ? kActSlotA : kActSlotB;
        if (layer.kind() == LayerKind::kConv) {
            step.conv_kernel = opts.conv_kernel;
            if (step.conv_kernel == ConvKernel::kIm2colGemm) {
                const WindowGeometry g = layer.geometry();
                step.col_slot = kColSlot;
                step.col_shape =
                    Shape{1, s.c * g.kernel * g.kernel,
                          step.out_shape.h * step.out_shape.w};
            }
            if (opts.fuse_conv_relu && i + 1 < end &&
                net.layer(i + 1).kind() == LayerKind::kRelu) {
                // ReLU preserves shape, so the fused step's output
                // shape is the conv's.
                step.fuse_relu = true;
                ++i;
            }
            if (opts.tune &&
                step.conv_kernel == ConvKernel::kIm2colGemm) {
                // After the fuse decision: fusion is part of the
                // tuning key (it changes the kernel's epilogue).
                const WindowGeometry g = layer.geometry();
                step.conv_variant = tune_conv_gemm(
                    ConvGeometry{s.c, step.out_shape.c, g.kernel,
                                 g.stride, g.pad},
                    step.out_shape.h, step.out_shape.w, step.fuse_relu,
                    opts.tune_budget_us);
            }
        } else if (opts.tune && layer.kind() == LayerKind::kFc) {
            step.simd_fc = tune_fc_simd(s.size(), step.out_shape.size(),
                                        opts.tune_budget_us);
        }
        s = step.out_shape;
        parity ^= 1;
        steps_.push_back(step);
    }
    out_shape_ = s;
}

const Tensor &
ExecutionPlan::run(const Tensor &in, ScratchArena &arena) const
{
    // Per-frame hot path: build the failure message only on failure.
    if (in.shape() != in_shape_) {
        throw ConfigError("execution plan: input shape " +
                          in.shape().str() +
                          " does not match compiled shape " +
                          in_shape_.str());
    }
    if (steps_.empty()) {
        return in;
    }
    // If the caller's input *is* the slot the first step would write
    // (e.g. chaining two plans through one arena), shift the
    // ping-pong parity so no step reads the tensor it is writing.
    i64 flip = 0;
    if (arena.peek(steps_.front().out_slot) == &in) {
        flip = 1;
    }
    const Tensor *cur = &in;
    for (const Step &step : steps_) {
        Tensor &out =
            arena.slot(step.out_slot ^ flip, step.out_shape);
        ForwardCtx ctx;
        ctx.out = &out;
        ctx.conv_kernel = step.conv_kernel;
        ctx.conv_variant = step.conv_variant;
        ctx.simd_fc = step.simd_fc;
        ctx.fuse_relu = step.fuse_relu;
        if (step.col_slot >= 0) {
            // Pre-resolved im2col dimensions, so the kernel's own
            // reshape_to is a no-op.
            ctx.scratch =
                &arena.slot(step.col_slot, step.col_shape);
        }
        step.layer->forward_into(*cur, ctx);
        cur = &out;
    }
    return *cur;
}

Tensor
ExecutionPlan::forward(const Tensor &in) const
{
    return run(in, ScratchArena::for_current_thread());
}

BatchedExecutionPlan::BatchedExecutionPlan(const Network &net, i64 begin,
                                           i64 end, Shape in_shape,
                                           i64 max_batch,
                                           PlanOptions opts)
    : net_(&net),
      begin_(begin),
      end_(end),
      in_shape_(in_shape),
      out_shape_(in_shape),
      max_batch_(max_batch),
      opts_(opts)
{
    require(begin >= 0 && end <= net.num_layers() && begin <= end,
            "batched plan: bad layer range [" + std::to_string(begin) +
                ", " + std::to_string(end) + ") for network " +
                net.name());
    require(max_batch >= 1 && max_batch <= kMaxSuffixBatch,
            "batched plan: max_batch must be in [1, " +
                std::to_string(kMaxSuffixBatch) + "], got " +
                std::to_string(max_batch));
    // The step sequence (shapes, kernel selection, conv+ReLU fusion)
    // mirrors ExecutionPlan's compile loop exactly, so a batched run
    // executes the same steps the unbatched plan would.
    Shape s = in_shape;
    i64 parity = 0;
    for (i64 i = begin; i < end; ++i) {
        const Layer &layer = net.layer(i);
        Step step;
        step.layer = &layer;
        step.layer_index = i;
        step.out_shape = layer.out_shape(s);
        step.parity = parity;
        if (layer.kind() == LayerKind::kConv) {
            step.conv_kernel = opts.conv_kernel;
            if (step.conv_kernel == ConvKernel::kIm2colGemm) {
                const WindowGeometry g = layer.geometry();
                step.batched_conv = true;
                step.col_shape =
                    Shape{1, s.c * g.kernel * g.kernel,
                          step.out_shape.h * step.out_shape.w};
            }
            if (opts.fuse_conv_relu && i + 1 < end &&
                net.layer(i + 1).kind() == LayerKind::kRelu) {
                step.fuse_relu = true;
                ++i;
            }
            if (opts.tune &&
                step.conv_kernel == ConvKernel::kIm2colGemm) {
                // Same key as the unbatched plan (per-sample shape),
                // so both agree on one variant per layer.
                const WindowGeometry g = layer.geometry();
                step.conv_variant = tune_conv_gemm(
                    ConvGeometry{s.c, step.out_shape.c, g.kernel,
                                 g.stride, g.pad},
                    step.out_shape.h, step.out_shape.w, step.fuse_relu,
                    opts.tune_budget_us);
            }
        } else if (layer.kind() == LayerKind::kFc) {
            step.batched_fc = true;
            if (opts.tune) {
                step.simd_fc = tune_fc_simd(
                    s.size(), step.out_shape.size(),
                    opts.tune_budget_us);
            }
        }
        s = step.out_shape;
        parity ^= 1;
        steps_.push_back(step);
    }
    out_shape_ = s;
}

void
BatchedExecutionPlan::run(const Tensor *const *inputs, i64 n,
                          const Tensor **outs,
                          ScratchArena &arena) const
{
    // Per-batch hot path: build failure messages only on failure.
    if (n < 1 || n > max_batch_) {
        throw ConfigError("batched plan: batch size " +
                          std::to_string(n) + " outside [1, " +
                          std::to_string(max_batch_) + "]");
    }
    for (i64 i = 0; i < n; ++i) {
        if (inputs[i]->shape() != in_shape_) {
            throw ConfigError("batched plan: sample " +
                              std::to_string(i) + " shape " +
                              inputs[i]->shape().str() +
                              " does not match compiled shape " +
                              in_shape_.str());
        }
    }
    if (steps_.empty()) {
        for (i64 i = 0; i < n; ++i) {
            outs[i] = inputs[i];
        }
        return;
    }
    // Per-lane ping-pong parity shift when a caller chains a lane's
    // input through the slot its first step would write (the
    // ExecutionPlan aliasing rule, applied lane by lane).
    const Tensor *cur[kMaxSuffixBatch];
    i64 flip[kMaxSuffixBatch];
    Tensor *louts[kMaxSuffixBatch];
    for (i64 i = 0; i < n; ++i) {
        cur[i] = inputs[i];
        flip[i] =
            arena.peek(lane_slot(i, steps_.front().parity)) == inputs[i]
                ? 1
                : 0;
    }
    for (const Step &step : steps_) {
        for (i64 i = 0; i < n; ++i) {
            louts[i] = &arena.slot(lane_slot(i, step.parity ^ flip[i]),
                                   step.out_shape);
        }
        if (step.batched_conv) {
            const auto *conv =
                static_cast<const ConvLayer *>(step.layer);
            ConvGeometry g;
            g.in_c = conv->in_channels();
            g.out_c = conv->out_channels();
            g.kernel = conv->kernel();
            g.stride = conv->stride();
            g.pad = conv->pad();
            Tensor &col = arena.slot(
                col_slot(),
                Shape{1, step.col_shape.h, n * step.col_shape.w});
            Tensor &gemm_out = arena.slot(
                gemm_slot(),
                Shape{1, g.out_c, n * step.col_shape.w});
            conv_im2col_gemm_batched(cur, n, g, conv->weights().data(),
                                     conv->biases().data(), louts, col,
                                     gemm_out, step.fuse_relu,
                                     step.conv_variant);
        } else if (step.batched_fc) {
            static_cast<const FcLayer *>(step.layer)->forward_batched(
                cur, n, louts, /*fuse_relu=*/false, step.simd_fc);
        } else {
            for (i64 i = 0; i < n; ++i) {
                ForwardCtx ctx;
                ctx.out = louts[i];
                ctx.conv_kernel = step.conv_kernel;
                ctx.conv_variant = step.conv_variant;
                ctx.simd_fc = step.simd_fc;
                ctx.fuse_relu = step.fuse_relu;
                step.layer->forward_into(*cur[i], ctx);
            }
        }
        for (i64 i = 0; i < n; ++i) {
            cur[i] = louts[i];
        }
    }
    for (i64 i = 0; i < n; ++i) {
        outs[i] = cur[i];
    }
}

std::vector<PlanStepInfo>
ExecutionPlan::describe() const
{
    std::vector<PlanStepInfo> out;
    out.reserve(steps_.size());
    for (const Step &step : steps_) {
        PlanStepInfo info;
        info.layer_index = step.layer_index;
        info.layer = step.layer->name().empty()
                         ? layer_kind_name(step.layer->kind())
                         : step.layer->name();
        info.kernel = step.layer->kind() == LayerKind::kConv
                          ? conv_kernel_name(step.conv_kernel)
                          : layer_kind_name(step.layer->kind());
        info.variant = step_variant(*step.layer, step.conv_kernel,
                                    step.conv_variant, step.simd_fc);
        info.fused_relu = step.fuse_relu;
        info.out = step.out_shape;
        out.push_back(std::move(info));
    }
    return out;
}

} // namespace eva2
