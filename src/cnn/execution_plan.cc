#include "cnn/execution_plan.h"

namespace eva2 {

namespace {

/** Arena slot ids: activations ping-pong, the im2col buffer is its
 * own slot so one workspace serves every gemm conv in the plan. */
constexpr i64 kActSlotA = 0;
constexpr i64 kActSlotB = 1;
constexpr i64 kColSlot = 2;

} // namespace

ExecutionPlan::ExecutionPlan(const Network &net, i64 begin, i64 end,
                             Shape in_shape, PlanOptions opts)
    : net_(&net),
      begin_(begin),
      end_(end),
      in_shape_(in_shape),
      out_shape_(in_shape),
      opts_(opts)
{
    require(begin >= 0 && end <= net.num_layers() && begin <= end,
            "execution plan: bad layer range [" + std::to_string(begin) +
                ", " + std::to_string(end) + ") for network " +
                net.name());
    Shape s = in_shape;
    i64 parity = 0;
    for (i64 i = begin; i < end; ++i) {
        const Layer &layer = net.layer(i);
        Step step;
        step.layer = &layer;
        step.layer_index = i;
        step.out_shape = layer.out_shape(s);
        step.out_slot = parity == 0 ? kActSlotA : kActSlotB;
        if (layer.kind() == LayerKind::kConv) {
            step.conv_kernel = opts.conv_kernel;
            if (step.conv_kernel == ConvKernel::kIm2colGemm) {
                const WindowGeometry g = layer.geometry();
                step.col_slot = kColSlot;
                step.col_shape =
                    Shape{1, s.c * g.kernel * g.kernel,
                          step.out_shape.h * step.out_shape.w};
            }
            if (opts.fuse_conv_relu && i + 1 < end &&
                net.layer(i + 1).kind() == LayerKind::kRelu) {
                // ReLU preserves shape, so the fused step's output
                // shape is the conv's.
                step.fuse_relu = true;
                ++i;
            }
        }
        s = step.out_shape;
        parity ^= 1;
        steps_.push_back(step);
    }
    out_shape_ = s;
}

const Tensor &
ExecutionPlan::run(const Tensor &in, ScratchArena &arena) const
{
    // Per-frame hot path: build the failure message only on failure.
    if (in.shape() != in_shape_) {
        throw ConfigError("execution plan: input shape " +
                          in.shape().str() +
                          " does not match compiled shape " +
                          in_shape_.str());
    }
    if (steps_.empty()) {
        return in;
    }
    // If the caller's input *is* the slot the first step would write
    // (e.g. chaining two plans through one arena), shift the
    // ping-pong parity so no step reads the tensor it is writing.
    i64 flip = 0;
    if (arena.peek(steps_.front().out_slot) == &in) {
        flip = 1;
    }
    const Tensor *cur = &in;
    for (const Step &step : steps_) {
        Tensor &out =
            arena.slot(step.out_slot ^ flip, step.out_shape);
        ForwardCtx ctx;
        ctx.out = &out;
        ctx.conv_kernel = step.conv_kernel;
        ctx.fuse_relu = step.fuse_relu;
        if (step.col_slot >= 0) {
            // Pre-resolved im2col dimensions, so the kernel's own
            // reshape_to is a no-op.
            ctx.scratch =
                &arena.slot(step.col_slot, step.col_shape);
        }
        step.layer->forward_into(*cur, ctx);
        cur = &out;
    }
    return *cur;
}

Tensor
ExecutionPlan::forward(const Tensor &in) const
{
    return run(in, ScratchArena::for_current_thread());
}

std::vector<PlanStepInfo>
ExecutionPlan::describe() const
{
    std::vector<PlanStepInfo> out;
    out.reserve(steps_.size());
    for (const Step &step : steps_) {
        PlanStepInfo info;
        info.layer_index = step.layer_index;
        info.layer = step.layer->name().empty()
                         ? layer_kind_name(step.layer->kind())
                         : step.layer->name();
        info.kernel = step.layer->kind() == LayerKind::kConv
                          ? conv_kernel_name(step.conv_kernel)
                          : layer_kind_name(step.layer->kind());
        info.fused_relu = step.fuse_relu;
        info.out = step.out_shape;
        out.push_back(std::move(info));
    }
    return out;
}

} // namespace eva2
