#include "cnn/conv_layer.h"

#include "cnn/conv_kernels.h"

namespace eva2 {

ConvLayer::ConvLayer(i64 in_c, i64 out_c, i64 kernel, i64 stride, i64 pad)
    : in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weights_(static_cast<size_t>(out_c * in_c * kernel * kernel), 0.0f),
      biases_(static_cast<size_t>(out_c), 0.0f)
{
    require(in_c > 0 && out_c > 0, "conv: channel counts must be positive");
    require(kernel > 0 && stride > 0 && pad >= 0,
            "conv: invalid window geometry");
}

Shape
ConvLayer::out_shape(const Shape &in) const
{
    require(in.c == in_c_,
            "conv: input has " + std::to_string(in.c) + " channels, layer " +
                "expects " + std::to_string(in_c_));
    return Shape{out_c_, conv_out_size(in.h, kernel_, stride_, pad_),
                 conv_out_size(in.w, kernel_, stride_, pad_)};
}

i64
ConvLayer::macs(const Shape &in) const
{
    Shape out = out_shape(in);
    // outputs x (in_channels x kernel area) per output; Section IV-A.
    return out.size() * in_c_ * kernel_ * kernel_;
}

Tensor
ConvLayer::forward(const Tensor &in) const
{
    // The plain-forward path is the seed reference: direct kernel,
    // no fusion.
    Tensor out(out_shape(in.shape()));
    conv_direct(in, {in_c_, out_c_, kernel_, stride_, pad_},
                weights_.data(), biases_.data(), out,
                /*fuse_relu=*/false);
    return out;
}

void
ConvLayer::forward_into(const Tensor &in, const ForwardCtx &ctx) const
{
    const ConvGeometry g{in_c_, out_c_, kernel_, stride_, pad_};
    if (ctx.conv_kernel == ConvKernel::kIm2colGemm) {
        if (ctx.scratch != nullptr) {
            conv_im2col_gemm(in, g, weights_.data(), biases_.data(),
                             *ctx.out, *ctx.scratch, ctx.fuse_relu,
                             ctx.conv_variant);
        } else {
            // No caller workspace: still correct, just not
            // allocation-free.
            Tensor col;
            conv_im2col_gemm(in, g, weights_.data(), biases_.data(),
                             *ctx.out, col, ctx.fuse_relu,
                             ctx.conv_variant);
        }
        return;
    }
    conv_direct(in, g, weights_.data(), biases_.data(), *ctx.out,
                ctx.fuse_relu);
}

} // namespace eva2
