#include "cnn/conv_layer.h"

#include "runtime/parallel_for.h"

namespace eva2 {

ConvLayer::ConvLayer(i64 in_c, i64 out_c, i64 kernel, i64 stride, i64 pad)
    : in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weights_(static_cast<size_t>(out_c * in_c * kernel * kernel), 0.0f),
      biases_(static_cast<size_t>(out_c), 0.0f)
{
    require(in_c > 0 && out_c > 0, "conv: channel counts must be positive");
    require(kernel > 0 && stride > 0 && pad >= 0,
            "conv: invalid window geometry");
}

Shape
ConvLayer::out_shape(const Shape &in) const
{
    require(in.c == in_c_,
            "conv: input has " + std::to_string(in.c) + " channels, layer " +
                "expects " + std::to_string(in_c_));
    return Shape{out_c_, conv_out_size(in.h, kernel_, stride_, pad_),
                 conv_out_size(in.w, kernel_, stride_, pad_)};
}

i64
ConvLayer::macs(const Shape &in) const
{
    Shape out = out_shape(in);
    // outputs x (in_channels x kernel area) per output; Section IV-A.
    return out.size() * in_c_ * kernel_ * kernel_;
}

Tensor
ConvLayer::forward(const Tensor &in) const
{
    Shape os = out_shape(in.shape());
    Tensor out(os);
    const i64 ih = in.height();
    const i64 iw = in.width();
    // Output channels are independent and write disjoint planes, so
    // splitting them across threads is bit-identical to the serial
    // loop (the per-element accumulation order is unchanged).
    parallel_for(0, out_c_, [&](i64 oc) {
        for (i64 oy = 0; oy < os.h; ++oy) {
            const i64 base_y = oy * stride_ - pad_;
            for (i64 ox = 0; ox < os.w; ++ox) {
                const i64 base_x = ox * stride_ - pad_;
                float acc = biases_[static_cast<size_t>(oc)];
                for (i64 ic = 0; ic < in_c_; ++ic) {
                    for (i64 ky = 0; ky < kernel_; ++ky) {
                        const i64 y = base_y + ky;
                        if (y < 0 || y >= ih) {
                            continue;
                        }
                        const float *w = &weights_[static_cast<size_t>(
                            weight_index(oc, ic, ky, 0))];
                        for (i64 kx = 0; kx < kernel_; ++kx) {
                            const i64 x = base_x + kx;
                            if (x < 0 || x >= iw) {
                                continue;
                            }
                            acc += w[kx] * in.at(ic, y, x);
                        }
                    }
                }
                out.at(oc, oy, ox) = acc;
            }
        }
    });
    return out;
}

} // namespace eva2
