/**
 * @file
 * Receptive-field algebra.
 *
 * A value in a deep activation corresponds to a window of input pixels
 * (its receptive field, Figure 2 of the paper). AMC needs the
 * cumulative size, stride, and padding of that window at the target
 * layer: RFBME estimates motion at receptive-field granularity, and
 * activation warping scales pixel motion vectors by the cumulative
 * stride (Section II-B).
 */
#ifndef EVA2_CNN_RECEPTIVE_FIELD_H
#define EVA2_CNN_RECEPTIVE_FIELD_H

#include "cnn/layer.h"

namespace eva2 {

/**
 * Cumulative receptive-field parameters at some depth in a network.
 * Output coordinate u (along either spatial axis) covers input pixels
 * [u * stride - pad, u * stride - pad + size).
 */
struct ReceptiveField
{
    i64 size = 1;   ///< Extent of the input window in pixels.
    i64 stride = 1; ///< Input-pixel step between adjacent outputs.
    i64 pad = 0;    ///< Left/top overhang of output 0 beyond the image.

    bool
    operator==(const ReceptiveField &o) const
    {
        return size == o.size && stride == o.stride && pad == o.pad;
    }

    bool
    operator!=(const ReceptiveField &o) const
    {
        return !(*this == o);
    }

    /** First input pixel covered by output coordinate u (may be < 0). */
    i64 start(i64 u) const { return u * stride - pad; }

    /**
     * Compose with one more layer of the given window geometry stacked
     * on top of this one.
     *
     * Derivation: the new layer's output u covers its own input
     * coordinates [u*s - p, u*s - p + k). Each such coordinate v covers
     * original pixels [v*stride - pad, v*stride - pad + size). The
     * union is [u*(s*stride) - (p*stride + pad),
     *           ... + size + (k-1)*stride).
     */
    ReceptiveField
    compose(const WindowGeometry &g) const
    {
        ReceptiveField out;
        out.size = size + (g.kernel - 1) * stride;
        out.stride = stride * g.stride;
        out.pad = pad + g.pad * stride;
        return out;
    }
};

} // namespace eva2

#endif // EVA2_CNN_RECEPTIVE_FIELD_H
