#include "cnn/model_zoo.h"

#include <cmath>

#include "cnn/activation_layer.h"
#include "cnn/conv_layer.h"
#include "cnn/fc_layer.h"
#include "cnn/pool_layer.h"
#include "cnn/weights.h"
#include "util/math_util.h"

namespace eva2 {

namespace {

LayerSpec
conv(std::string name, i64 out, i64 k, i64 s, i64 p, i64 groups = 1)
{
    return {LayerKind::kConv, std::move(name), out, k, s, p, groups};
}

LayerSpec
pool(std::string name, i64 k, i64 s, i64 p = 0)
{
    return {LayerKind::kPool, std::move(name), 0, k, s, p, 1};
}

LayerSpec
relu(std::string name)
{
    return {LayerKind::kRelu, std::move(name), 0, 1, 1, 0, 1};
}

LayerSpec
lrn(std::string name)
{
    return {LayerKind::kLrn, std::move(name), 0, 1, 1, 0, 1};
}

LayerSpec
fc(std::string name, i64 out)
{
    return {LayerKind::kFc, std::move(name), out, 1, 1, 0, 1};
}

LayerSpec
softmax(std::string name)
{
    return {LayerKind::kSoftmax, std::move(name), 0, 1, 1, 0, 1};
}

/** Append the 13-layer VGG-16 conv stack (through conv5_3 + relu). */
void
append_vgg16_convs(std::vector<LayerSpec> &ls)
{
    const struct
    {
        const char *stage;
        i64 filters;
        i64 count;
    } stages[] = {
        {"1", 64, 2}, {"2", 128, 2}, {"3", 256, 3},
        {"4", 512, 3}, {"5", 512, 3},
    };
    for (const auto &st : stages) {
        for (i64 i = 1; i <= st.count; ++i) {
            std::string base =
                std::string(st.stage) + "_" + std::to_string(i);
            ls.push_back(conv("conv" + base, st.filters, 3, 1, 1));
            ls.push_back(relu("relu" + base));
        }
        if (st.stage != std::string("5")) {
            ls.push_back(pool(std::string("pool") + st.stage, 2, 2));
        }
    }
}

/**
 * Append the Faster R-CNN head shared by Faster16 and FasterM: a 3x3
 * RPN conv, two 1x1 sibling convs (modelled sequentially), an
 * RoI-pooling surrogate, and the 4-layer FC head.
 */
void
append_faster_rcnn_head(std::vector<LayerSpec> &ls, i64 feat_channels,
                        i64 roi_kernel)
{
    ls.push_back(conv("rpn_conv", feat_channels, 3, 1, 1));
    ls.push_back(relu("rpn_relu"));
    ls.push_back(conv("rpn_cls", 18, 1, 1, 0));
    ls.push_back(conv("rpn_bbox", 36, 1, 1, 0));
    ls.push_back(pool("roi_pool", roi_kernel, roi_kernel));
    ls.push_back(fc("fc6", 4096));
    ls.push_back(relu("relu6"));
    ls.push_back(fc("fc7", 4096));
    ls.push_back(relu("relu7"));
    ls.push_back(fc("cls_score", 21));
    ls.push_back(fc("bbox_pred", 84));
}

} // namespace

NetworkSpec
alexnet_spec()
{
    NetworkSpec spec;
    spec.name = "AlexNet";
    spec.input = Shape{3, 227, 227};
    spec.cost_input = spec.input;
    spec.task = VisionTask::kClassification;
    auto &ls = spec.layers;
    ls.push_back(conv("conv1", 96, 11, 4, 0));
    ls.push_back(relu("relu1"));
    ls.push_back(lrn("norm1"));
    ls.push_back(pool("pool1", 3, 2));
    ls.push_back(conv("conv2", 256, 5, 1, 2, 2));
    ls.push_back(relu("relu2"));
    ls.push_back(lrn("norm2"));
    ls.push_back(pool("pool2", 3, 2));
    ls.push_back(conv("conv3", 384, 3, 1, 1));
    ls.push_back(relu("relu3"));
    ls.push_back(conv("conv4", 384, 3, 1, 1, 2));
    ls.push_back(relu("relu4"));
    ls.push_back(conv("conv5", 256, 3, 1, 1, 2));
    ls.push_back(relu("relu5"));
    ls.push_back(pool("pool5", 3, 2));
    ls.push_back(fc("fc6", 4096));
    ls.push_back(relu("relu6"));
    ls.push_back(fc("fc7", 4096));
    ls.push_back(relu("relu7"));
    ls.push_back(fc("fc8", 1000));
    ls.push_back(softmax("prob"));
    spec.early_target = "pool1";
    spec.late_target = "pool5";
    return spec;
}

NetworkSpec
vgg16_spec()
{
    NetworkSpec spec;
    spec.name = "VGG-16";
    spec.input = Shape{3, 224, 224};
    spec.cost_input = spec.input;
    spec.task = VisionTask::kClassification;
    auto &ls = spec.layers;
    append_vgg16_convs(ls);
    ls.push_back(pool("pool5", 2, 2));
    ls.push_back(fc("fc6", 4096));
    ls.push_back(relu("relu6"));
    ls.push_back(fc("fc7", 4096));
    ls.push_back(relu("relu7"));
    ls.push_back(fc("fc8", 1000));
    ls.push_back(softmax("prob"));
    spec.early_target = "pool1";
    spec.late_target = "pool5";
    return spec;
}

NetworkSpec
faster16_spec()
{
    NetworkSpec spec;
    spec.name = "Faster16";
    // The paper evaluates Faster16 on 1000x562 video frames (IV-A);
    // hardware costs are modelled at the published 224x224 basis.
    spec.input = Shape{3, 562, 1000};
    spec.cost_input = Shape{3, 224, 224};
    spec.task = VisionTask::kDetection;
    append_vgg16_convs(spec.layers);
    append_faster_rcnn_head(spec.layers, 512, 5);
    spec.early_target = "pool1";
    spec.late_target = "relu5_3";
    return spec;
}

NetworkSpec
fasterm_spec()
{
    NetworkSpec spec;
    spec.name = "FasterM";
    spec.input = Shape{3, 562, 1000};
    spec.cost_input = Shape{3, 224, 224};
    spec.task = VisionTask::kDetection;
    auto &ls = spec.layers;
    // CNN-M ("medium") feature extractor from Chatfield et al.
    ls.push_back(conv("conv1", 96, 7, 2, 0));
    ls.push_back(relu("relu1"));
    ls.push_back(lrn("norm1"));
    ls.push_back(pool("pool1", 3, 2));
    ls.push_back(conv("conv2", 256, 5, 2, 1));
    ls.push_back(relu("relu2"));
    ls.push_back(lrn("norm2"));
    ls.push_back(pool("pool2", 3, 2));
    ls.push_back(conv("conv3", 512, 3, 1, 1));
    ls.push_back(relu("relu3"));
    ls.push_back(conv("conv4", 512, 3, 1, 1));
    ls.push_back(relu("relu4"));
    ls.push_back(conv("conv5", 512, 3, 1, 1));
    ls.push_back(relu("relu5"));
    append_faster_rcnn_head(ls, 512, 5);
    spec.early_target = "pool1";
    spec.late_target = "relu5";
    return spec;
}

std::vector<NetworkSpec>
paper_network_specs()
{
    return {alexnet_spec(), faster16_spec(), fasterm_spec()};
}

std::vector<LayerCost>
analyze(const NetworkSpec &spec)
{
    return analyze_at(spec, spec.cost_input);
}

std::vector<LayerCost>
analyze_at(const NetworkSpec &spec, Shape input)
{
    std::vector<LayerCost> costs;
    costs.reserve(spec.layers.size());
    Shape s = input;
    for (const LayerSpec &l : spec.layers) {
        LayerCost cost;
        cost.name = l.name;
        cost.kind = l.kind;
        switch (l.kind) {
          case LayerKind::kConv: {
            Shape out{l.out, conv_out_size(s.h, l.kernel, l.stride, l.pad),
                      conv_out_size(s.w, l.kernel, l.stride, l.pad)};
            cost.out = out;
            cost.macs =
                out.size() * (s.c / l.groups) * l.kernel * l.kernel;
            s = out;
            break;
          }
          case LayerKind::kPool: {
            cost.out =
                Shape{s.c, conv_out_size(s.h, l.kernel, l.stride, l.pad),
                      conv_out_size(s.w, l.kernel, l.stride, l.pad)};
            s = cost.out;
            break;
          }
          case LayerKind::kRelu:
          case LayerKind::kLrn:
            cost.out = s;
            break;
          case LayerKind::kFc:
            cost.macs = s.size() * l.out;
            cost.out = Shape{l.out, 1, 1};
            s = cost.out;
            break;
          case LayerKind::kSoftmax:
            cost.out = Shape{s.size(), 1, 1};
            s = cost.out;
            break;
        }
        costs.push_back(std::move(cost));
    }
    return costs;
}

i64
total_conv_macs(const std::vector<LayerCost> &costs)
{
    i64 total = 0;
    for (const LayerCost &c : costs) {
        if (c.kind == LayerKind::kConv) {
            total += c.macs;
        }
    }
    return total;
}

i64
total_fc_macs(const std::vector<LayerCost> &costs)
{
    i64 total = 0;
    for (const LayerCost &c : costs) {
        if (c.kind == LayerKind::kFc) {
            total += c.macs;
        }
    }
    return total;
}

Network
build_scaled(const NetworkSpec &spec, const ScaledBuildOptions &opts)
{
    Network net(spec.name, opts.input);
    Shape s = opts.input;
    const i64 num_fc =
        static_cast<i64>(std::count_if(spec.layers.begin(),
                                       spec.layers.end(), [](const auto &l) {
                                           return l.kind == LayerKind::kFc;
                                       }));
    i64 fc_seen = 0;
    for (const LayerSpec &l : spec.layers) {
        LayerPtr built;
        switch (l.kind) {
          case LayerKind::kConv: {
            i64 out_c = std::max<i64>(
                opts.min_channels,
                static_cast<i64>(std::llround(
                    static_cast<double>(l.out) * opts.channel_scale)));
            auto conv_layer = std::make_unique<ConvLayer>(
                s.c, out_c, l.kernel, l.stride, l.pad);
            built = std::move(conv_layer);
            break;
          }
          case LayerKind::kPool: {
            // Guard tiny scaled feature maps: clamp the window so the
            // output never vanishes.
            i64 k = std::min(l.kernel, std::min(s.h, s.w));
            i64 st = std::min(l.stride, k);
            built = std::make_unique<MaxPoolLayer>(k, st, l.pad);
            break;
          }
          case LayerKind::kRelu:
            built = std::make_unique<ReluLayer>();
            break;
          case LayerKind::kLrn:
            built = std::make_unique<LrnLayer>();
            break;
          case LayerKind::kFc: {
            ++fc_seen;
            // The final FC maps to task classes; hidden FCs use the
            // scaled width.
            i64 out = opts.fc_dim;
            if (spec.task == VisionTask::kClassification &&
                fc_seen == num_fc) {
                out = opts.num_classes;
            } else if (spec.task == VisionTask::kDetection &&
                       fc_seen >= num_fc - 1) {
                out = opts.num_classes;
            }
            built = std::make_unique<FcLayer>(s.size(), out);
            break;
          }
          case LayerKind::kSoftmax:
            // Scaled builds end at the logits: softmax is monotone per
            // component, so argmax-style read-outs are unaffected, and
            // the prototype classifier separates classes better in
            // logit space.
            continue;
        }
        built->set_name(l.name);
        s = built->out_shape(s);
        net.add(std::move(built));
    }
    // Designate the spec's late target (the end of the feature
    // extractor) as the network's default AMC target; for Faster
    // R-CNN variants the mechanical last spatial layer would land
    // inside the RPN/RoI head, which the paper treats as suffix.
    if (!spec.late_target.empty()) {
        const i64 target = net.find_layer(spec.late_target);
        require(target >= 0, "late target '" + spec.late_target +
                                 "' missing from " + spec.name);
        net.set_default_target(target);
    }
    init_weights(net, opts.seed);
    return net;
}

} // namespace eva2
