#include "cnn/fc_layer.h"

#include <cmath>

#include "runtime/parallel_for.h"

namespace eva2 {

FcLayer::FcLayer(i64 in_dim, i64 out_dim)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weights_(static_cast<size_t>(in_dim * out_dim), 0.0f),
      biases_(static_cast<size_t>(out_dim), 0.0f)
{
    require(in_dim > 0 && out_dim > 0, "fc: dimensions must be positive");
}

Shape
FcLayer::out_shape(const Shape &in) const
{
    require(in.size() == in_dim_,
            "fc: input " + in.str() + " flattens to " +
                std::to_string(in.size()) + " but layer expects " +
                std::to_string(in_dim_));
    return Shape{out_dim_, 1, 1};
}

Tensor
FcLayer::forward(const Tensor &in) const
{
    Tensor out(out_shape(in.shape()));
    ForwardCtx ctx;
    ctx.out = &out;
    forward_into(in, ctx);
    return out;
}

void
FcLayer::forward_into(const Tensor &in, const ForwardCtx &ctx) const
{
    Tensor &out = *ctx.out;
    Span<const float> x = in.data();
    const bool fuse_relu = ctx.fuse_relu;
    // Output neurons are independent and write disjoint elements, so
    // the split is bit-identical to the serial loop (same per-neuron
    // accumulation order) — the ConvLayer pattern, applied to the
    // non-spatial suffix. Grain keeps cheap rows batched.
    parallel_for(
        0, out_dim_,
        [&](i64 o) {
            const float *w =
                &weights_[static_cast<size_t>(o * in_dim_)];
            float acc = biases_[static_cast<size_t>(o)];
            for (i64 i = 0; i < in_dim_; ++i) {
                acc += w[i] * x[static_cast<size_t>(i)];
            }
            out[o] = fuse_relu ? (acc > 0.0f ? acc : 0.0f) : acc;
        },
        ParallelForOptions{/*grain=*/8, /*pool=*/nullptr});
}

Tensor
SoftmaxLayer::forward(const Tensor &in) const
{
    Tensor out(out_shape(in.shape()));
    ForwardCtx ctx;
    ctx.out = &out;
    forward_into(in, ctx);
    return out;
}

void
SoftmaxLayer::forward_into(const Tensor &in, const ForwardCtx &ctx) const
{
    Tensor &out = *ctx.out;
    float max_v = -std::numeric_limits<float>::infinity();
    for (i64 i = 0; i < in.size(); ++i) {
        max_v = std::max(max_v, in[i]);
    }
    double denom = 0.0;
    for (i64 i = 0; i < in.size(); ++i) {
        double e = std::exp(static_cast<double>(in[i] - max_v));
        out[i] = static_cast<float>(e);
        denom += e;
    }
    for (i64 i = 0; i < in.size(); ++i) {
        out[i] = static_cast<float>(out[i] / denom);
    }
}

} // namespace eva2
