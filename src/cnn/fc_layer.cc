#include "cnn/fc_layer.h"

#include <algorithm>
#include <cmath>

#include "runtime/parallel_for.h"

namespace eva2 {

namespace {

/**
 * One neuron's accumulation over a compile-time block of NB samples:
 * NB independent chains held in registers (a runtime-sized
 * accumulator array spills to memory and serializes through
 * store-forwarding, which is slower than the plain single chain).
 * Each sample sums taps in ascending input order — bit-identical to
 * the unbatched loop.
 */
template <int NB>
inline void
fc_accumulate(const float *w, float bias, const float *const *xs,
              i64 in_dim, float *out)
{
    float acc[NB];
    for (int s = 0; s < NB; ++s) {
        acc[s] = bias;
    }
    for (i64 i = 0; i < in_dim; ++i) {
        const float wi = w[i];
        for (int s = 0; s < NB; ++s) {
            acc[s] += wi * xs[s][i];
        }
    }
    for (int s = 0; s < NB; ++s) {
        out[s] = acc[s];
    }
}

/** Block width: 8 chains fill the FMA pipeline without register
 * spills, and 8 input vectors stay cache-resident. */
constexpr i64 kFcBlock = 8;

void
fc_accumulate_block(const float *w, float bias,
                    const float *const *xs, i64 nb, i64 in_dim,
                    float *out)
{
    switch (nb) {
      case 1: fc_accumulate<1>(w, bias, xs, in_dim, out); break;
      case 2: fc_accumulate<2>(w, bias, xs, in_dim, out); break;
      case 3: fc_accumulate<3>(w, bias, xs, in_dim, out); break;
      case 4: fc_accumulate<4>(w, bias, xs, in_dim, out); break;
      case 5: fc_accumulate<5>(w, bias, xs, in_dim, out); break;
      case 6: fc_accumulate<6>(w, bias, xs, in_dim, out); break;
      case 7: fc_accumulate<7>(w, bias, xs, in_dim, out); break;
      case 8: fc_accumulate<8>(w, bias, xs, in_dim, out); break;
      default:
        throw InternalError("fc block width out of range");
    }
}

} // namespace

FcLayer::FcLayer(i64 in_dim, i64 out_dim)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weights_(static_cast<size_t>(in_dim * out_dim), 0.0f),
      biases_(static_cast<size_t>(out_dim), 0.0f)
{
    require(in_dim > 0 && out_dim > 0, "fc: dimensions must be positive");
}

Shape
FcLayer::out_shape(const Shape &in) const
{
    require(in.size() == in_dim_,
            "fc: input " + in.str() + " flattens to " +
                std::to_string(in.size()) + " but layer expects " +
                std::to_string(in_dim_));
    return Shape{out_dim_, 1, 1};
}

Tensor
FcLayer::forward(const Tensor &in) const
{
    Tensor out(out_shape(in.shape()));
    ForwardCtx ctx;
    ctx.out = &out;
    forward_into(in, ctx);
    return out;
}

void
FcLayer::forward_into(const Tensor &in, const ForwardCtx &ctx) const
{
    Tensor &out = *ctx.out;
    Span<const float> x = in.data();
    const bool fuse_relu = ctx.fuse_relu;
    const bool simd = ctx.simd_fc;
    // Output neurons are independent and write disjoint elements, so
    // the split is bit-identical to the serial loop (same per-neuron
    // accumulation order) — the ConvLayer pattern, applied to the
    // non-spatial suffix. Grain keeps cheap rows batched. The SIMD
    // dot kernel changes the per-neuron accumulation order (fma +
    // tree reduction): bounded divergence, tuner-selected only.
    parallel_for(
        0, out_dim_,
        [&](i64 o) {
            const float *w =
                &weights_[static_cast<size_t>(o * in_dim_)];
            float acc;
            if (simd) {
                acc = fc_dot_simd(w, x.data(), in_dim_,
                                  biases_[static_cast<size_t>(o)]);
            } else {
                acc = biases_[static_cast<size_t>(o)];
                for (i64 i = 0; i < in_dim_; ++i) {
                    acc += w[i] * x[static_cast<size_t>(i)];
                }
            }
            out[o] = fuse_relu ? (acc > 0.0f ? acc : 0.0f) : acc;
        },
        ParallelForOptions{/*grain=*/8, /*pool=*/nullptr});
}

void
FcLayer::forward_batched(const Tensor *const *ins, i64 nb,
                         Tensor *const *outs, bool fuse_relu,
                         bool simd) const
{
    require(nb >= 1 && nb <= kMaxSuffixBatch,
            "fc: batch must be in [1, " +
                std::to_string(kMaxSuffixBatch) + "], got " +
                std::to_string(nb));
    const float *xs[kMaxSuffixBatch];
    for (i64 s = 0; s < nb; ++s) {
        xs[s] = ins[s]->data().data();
    }
    // Neurons split across threads exactly like forward_into. Within
    // one neuron, the samples' accumulator chains are *interleaved*
    // in register-resident blocks: each sample still sums taps in
    // ascending input order into its own accumulator (bit-identical
    // to forward_into), but the chains are independent, so the inner
    // loop issues one FMA per chain per weight instead of stalling
    // on a single chain's add latency — and the weight row is
    // streamed once per block instead of once per sample. This is
    // the structural win batch-of-1 execution cannot have: one
    // sample is a single latency-bound dependency chain by
    // construction.
    parallel_for(
        0, out_dim_,
        [&](i64 o) {
            const float *w =
                &weights_[static_cast<size_t>(o * in_dim_)];
            const float bias = biases_[static_cast<size_t>(o)];
            float acc[kFcBlock];
            for (i64 s0 = 0; s0 < nb; s0 += kFcBlock) {
                const i64 blk = std::min<i64>(kFcBlock, nb - s0);
                if (simd) {
                    fc_dot_batched_simd(w, bias, xs + s0, blk, in_dim_,
                                        acc);
                } else {
                    fc_accumulate_block(w, bias, xs + s0, blk, in_dim_,
                                        acc);
                }
                for (i64 s = 0; s < blk; ++s) {
                    (*outs[s0 + s])[o] =
                        fuse_relu ? (acc[s] > 0.0f ? acc[s] : 0.0f)
                                  : acc[s];
                }
            }
        },
        ParallelForOptions{/*grain=*/8, /*pool=*/nullptr});
}

Tensor
SoftmaxLayer::forward(const Tensor &in) const
{
    Tensor out(out_shape(in.shape()));
    ForwardCtx ctx;
    ctx.out = &out;
    forward_into(in, ctx);
    return out;
}

void
SoftmaxLayer::forward_into(const Tensor &in, const ForwardCtx &ctx) const
{
    Tensor &out = *ctx.out;
    float max_v = -std::numeric_limits<float>::infinity();
    for (i64 i = 0; i < in.size(); ++i) {
        max_v = std::max(max_v, in[i]);
    }
    double denom = 0.0;
    for (i64 i = 0; i < in.size(); ++i) {
        double e = std::exp(static_cast<double>(in[i] - max_v));
        out[i] = static_cast<float>(e);
        denom += e;
    }
    for (i64 i = 0; i < in.size(); ++i) {
        out[i] = static_cast<float>(out[i] / denom);
    }
}

} // namespace eva2
