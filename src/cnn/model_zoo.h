/**
 * @file
 * The network zoo: declarative specifications of the paper's three
 * vision workloads (and plain VGG-16), with two consumers:
 *
 *  1. `analyze()` walks a spec at its full paper dimensions and
 *     produces per-layer shapes and MAC counts for the first-order
 *     hardware cost model (Section IV-A) — without allocating weights,
 *     since full VGG-16 weights would occupy hundreds of megabytes.
 *  2. `build_scaled()` constructs a runnable `Network` with the same
 *     layer structure (identical kernels, strides, pads, hence
 *     identical receptive-field geometry) but reduced channel counts
 *     and input size, used by the accuracy experiments.
 *
 * Faster R-CNN's RoI pooling is approximated by a max-pool stage that
 * reduces the feature map to roughly 7x7 before the FC head; the FC
 * head is modelled sequentially (fc6, fc7, classifier). Both
 * approximations only affect the tiny EIE-side FC costs, not the conv
 * prefix AMC skips. AlexNet's grouped convolutions are modelled via a
 * `groups` divisor in the MAC count.
 */
#ifndef EVA2_CNN_MODEL_ZOO_H
#define EVA2_CNN_MODEL_ZOO_H

#include <string>
#include <vector>

#include "cnn/network.h"

namespace eva2 {

/** One layer in a declarative network description. */
struct LayerSpec
{
    LayerKind kind = LayerKind::kConv;
    std::string name;
    i64 out = 0;    ///< Conv: filters. FC: output length. Else unused.
    i64 kernel = 1; ///< Conv/pool window extent.
    i64 stride = 1; ///< Conv/pool stride.
    i64 pad = 0;    ///< Conv/pool padding.
    i64 groups = 1; ///< Conv groups (affects MACs only).
};

/** The vision task a network performs. */
enum class VisionTask
{
    kClassification, ///< Top-1 class per frame (AlexNet).
    kDetection,      ///< Bounding boxes per frame (Faster16/M).
};

/** A complete declarative network description. */
struct NetworkSpec
{
    std::string name;
    Shape input;                   ///< Full paper input dimensions.
    /**
     * Input size used for hardware cost modeling. The paper builds
     * its cost model from published per-layer accelerator results,
     * which exist at the networks' native ImageNet resolutions; its
     * Table I per-frame costs are consistent with that basis (e.g.
     * Faster16's 4370 ms matches the published VGG-16 conv-stack
     * latency), while Section IV-A's op-count illustration uses the
     * full 1000x562 video frames. We keep both sizes explicit.
     */
    Shape cost_input;
    std::vector<LayerSpec> layers;
    std::string early_target;      ///< Table II "early" target layer.
    std::string late_target;       ///< Table II "late" target layer.
    VisionTask task = VisionTask::kClassification;
};

/** AlexNet, 5 conv + 3 FC, 227x227 input (classification). */
NetworkSpec alexnet_spec();

/** Plain VGG-16 classification network, 224x224 input. */
NetworkSpec vgg16_spec();

/** Faster R-CNN with the VGG-16 feature extractor at 1000x562. */
NetworkSpec faster16_spec();

/** Faster R-CNN with the CNN-M feature extractor at 1000x562. */
NetworkSpec fasterm_spec();

/** The three workloads evaluated in the paper, in paper order. */
std::vector<NetworkSpec> paper_network_specs();

/** Per-layer cost record produced by `analyze`. */
struct LayerCost
{
    std::string name;
    LayerKind kind = LayerKind::kConv;
    Shape out;    ///< Output activation shape.
    i64 macs = 0; ///< MACs at full input size (group-aware).
};

/** Walk a spec at full size, computing shapes and MACs per layer. */
std::vector<LayerCost> analyze(const NetworkSpec &spec);

/** Like analyze(), but at an explicit input size. */
std::vector<LayerCost> analyze_at(const NetworkSpec &spec, Shape input);

/** Sum of conv-layer MACs in an analyze() result. */
i64 total_conv_macs(const std::vector<LayerCost> &costs);

/** Sum of FC-layer MACs in an analyze() result. */
i64 total_fc_macs(const std::vector<LayerCost> &costs);

/** Options controlling the runnable scaled-down build. */
struct ScaledBuildOptions
{
    Shape input{1, 128, 128}; ///< Grayscale input for synthetic video.
    double channel_scale = 0.125;
    i64 min_channels = 16;
    i64 fc_dim = 64;     ///< Hidden FC width replacing 4096.
    i64 num_classes = 8; ///< Output classes of the final FC.
    u64 seed = 42;       ///< Weight-init seed.
};

/**
 * Build a runnable network from a spec: same layer sequence and window
 * geometry, scaled channels/FC widths, deterministic weights.
 */
Network build_scaled(const NetworkSpec &spec,
                     const ScaledBuildOptions &opts = {});

} // namespace eva2

#endif // EVA2_CNN_MODEL_ZOO_H
