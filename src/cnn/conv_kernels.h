/**
 * @file
 * The convolution kernel implementations ExecutionPlan selects from.
 *
 * Two kernels compute the same layer:
 *
 *  - conv_direct: the seed's nested-loop convolution, kept verbatim
 *    as the bit-exactness reference.
 *  - conv_im2col_gemm: packs input patches into a K x N column matrix
 *    (K = in_c * kernel^2 taps, N = output pixels) and multiplies by
 *    the [out_c x K] weight matrix with an N-tiled GEMM. Tiles keep a
 *    strip of the packed matrix hot in cache while every output
 *    channel consumes it, and the per-tile accumulator array
 *    vectorizes without reassociation.
 *
 * Bit-exactness: for each output element both kernels start from the
 * bias and accumulate taps in the identical (in_c, ky, kx) order into
 * a single float accumulator — the GEMM tiles only regroup *which*
 * outputs are computed together, never the per-output order — so
 * their results are bit-identical (padding taps contribute exact
 * zeros). The optional fused ReLU writes max(acc, 0), which is
 * bit-identical to a separate ReLU pass.
 *
 * Both kernels parallelize over disjoint output regions with the
 * deterministic parallel_for, so results are independent of thread
 * count and nest safely under stream-level parallelism.
 */
#ifndef EVA2_CNN_CONV_KERNELS_H
#define EVA2_CNN_CONV_KERNELS_H

#include "simd/simd_kernels.h"
#include "tensor/tensor.h"

namespace eva2 {

/** Geometry of one dense 2D convolution. */
struct ConvGeometry
{
    i64 in_c = 0;
    i64 out_c = 0;
    i64 kernel = 1;
    i64 stride = 1;
    i64 pad = 0;
};

/** Rows of the im2col matrix: taps per output (in_c * kernel^2). */
inline i64
im2col_rows(const ConvGeometry &g)
{
    return g.in_c * g.kernel * g.kernel;
}

/**
 * Pack input patches column-major-by-pixel: col[k][j] is tap k of
 * output pixel j, with k ordered (ic, ky, kx) and j ordered (oy, ox).
 * `col` is reshaped to {1, K, N}; out-of-bounds taps pack as 0.
 */
void im2col_pack(const Tensor &in, const ConvGeometry &g,
                 const Shape &out_shape, Tensor &col);

/**
 * The seed's direct convolution. `out` must be pre-shaped to the
 * layer's output shape; `weights` is [out_c][in_c][ky][kx] flat,
 * `biases` is [out_c].
 */
void conv_direct(const Tensor &in, const ConvGeometry &g,
                 const float *weights, const float *biases, Tensor &out,
                 bool fuse_relu);

/**
 * The scalar blocked GEMM over one column strip [j0, j0+jn): the
 * bit-exact reference micro-kernel (internally tiled at the blocked
 * kernel's native width). Exposed so the tuner and tests can race the
 * reference against the SIMD variants on identical inputs.
 */
void gemm_strip_scalar(const float *weights, const float *biases,
                       const float *col, i64 out_c, i64 taps, i64 n,
                       i64 j0, i64 jn, float *out, bool fuse_relu);

/**
 * im2col + blocked GEMM convolution; with the default kScalar variant,
 * bit-identical to conv_direct (see file comment). `col` is the
 * packing workspace (any shape; it is reshaped here and reusable
 * across calls and layers). A SIMD `variant` (tuner-selected, see
 * kernel_tuner.h) computes the same GEMM with fused multiply-adds —
 * bounded divergence vs the scalar reference, never bit-exact; it
 * requires simd_supported().
 */
void conv_im2col_gemm(const Tensor &in, const ConvGeometry &g,
                      const float *weights, const float *biases,
                      Tensor &out, Tensor &col, bool fuse_relu,
                      GemmVariant variant = GemmVariant::kScalar);

/**
 * Batched im2col + blocked GEMM over `nb` same-shape inputs in one
 * pass: every sample's output pixels are packed side by side into one
 * K x (nb * pixels) column matrix, multiplied by the weight matrix in
 * shared 32-wide tiles, and scattered back to the per-sample output
 * tensors (`outs[i]` pre-shaped to the layer's output shape).
 *
 * Why batch: one sample's late-suffix plane is often smaller than a
 * GEMM tile, so the per-tile weight stream is amortized over a
 * fraction of a tile; concatenating samples fills the tiles and
 * streams each weight row once per 32 output pixels *of the whole
 * batch*. Bit-exactness is untouched — each output element still
 * starts from its bias and accumulates taps in ascending k into one
 * accumulator, so every sample's result is bit-identical to a
 * batch-of-1 conv_im2col_gemm call.
 *
 * `col` and `gemm_out` are caller-owned workspaces (arena slots),
 * reshaped here and reusable across calls and layers.
 */
void conv_im2col_gemm_batched(const Tensor *const *ins, i64 nb,
                              const ConvGeometry &g,
                              const float *weights, const float *biases,
                              Tensor *const *outs, Tensor &col,
                              Tensor &gemm_out, bool fuse_relu,
                              GemmVariant variant = GemmVariant::kScalar);

} // namespace eva2

#endif // EVA2_CNN_CONV_KERNELS_H
