/**
 * @file
 * Planned, allocation-free execution of a layer range.
 *
 * Network::forward heap-allocates one tensor per layer per call; at
 * serving rates, with the suffix running on *every* frame (key or
 * predicted — Section II of the paper), that allocation traffic and
 * the naive direct convolution dominate per-frame cost. Compiling a
 * network for a fixed input shape removes both:
 *
 *  - every layer's output shape is resolved once, at compile time;
 *  - each activation is assigned a slot in a caller-supplied
 *    ScratchArena (ping-pong between two slots, since each layer
 *    only reads its immediate predecessor), so steady-state frames
 *    allocate nothing;
 *  - a kernel is chosen per layer — convolutions run the im2col +
 *    blocked-GEMM kernel by default (bit-identical to the seed's
 *    direct loop, see conv_kernels.h), optionally fusing a following
 *    ReLU into the conv's output write.
 *
 * A plan borrows its Network and is immutable after compilation, so
 * one plan may be shared by any number of threads, each running it
 * against its own arena.
 */
#ifndef EVA2_CNN_EXECUTION_PLAN_H
#define EVA2_CNN_EXECUTION_PLAN_H

#include <string>
#include <vector>

#include "cnn/network.h"
#include "tensor/scratch_arena.h"

namespace eva2 {

/** Compilation knobs for ExecutionPlan. */
struct PlanOptions
{
    /** Convolution kernel to select for conv layers. */
    ConvKernel conv_kernel = ConvKernel::kIm2colGemm;
    /**
     * Fold each ReLU that immediately follows a conv into the conv's
     * output write, eliding the ReLU pass and one buffer swap.
     * Bit-identical to the separate pass.
     */
    bool fuse_conv_relu = true;
    /**
     * Autotune kernels per layer shape (the `kernel=tuned` registry
     * spec): at compile time every conv layer's GEMM micro-kernel
     * variant and every FC layer's dot kernel are picked by
     * KernelTuner contests on synthetic data of the real shape,
     * cached process-wide so each shape tunes once. The SIMD winners
     * are bounded-divergence vs the scalar reference (fma, tree
     * reductions) — see docs/simd_kernels.md for the verification
     * contract. No-op when SIMD is unsupported on this machine.
     */
    bool tune = false;
    /** Per-contest tuning budget in microseconds (tune only). */
    i64 tune_budget_us = 20000;
};

/** One compiled step, as exposed for reports and tests. */
struct PlanStepInfo
{
    i64 layer_index = 0;  ///< Index in the source network.
    std::string layer;    ///< Layer report name.
    std::string kernel;   ///< Selected kernel name.
    /**
     * Chosen micro-kernel variant: the GEMM register tile for gemm
     * convs ("scalar", "mr2xnv4", ...), "simd"/"scalar" for FC
     * layers, empty for steps with no variant dimension.
     */
    std::string variant;
    bool fused_relu = false;
    Shape out;            ///< Pre-resolved output shape.
};

/**
 * The kernel selection of one compiled plan, as reported through the
 * instrumentation hooks (AmcObserver::on_plan) and echoed in the
 * serving API's RunReport.
 */
struct PlanRecord
{
    std::string scope; ///< "prefix", "suffix", or "motion".
    std::vector<PlanStepInfo> steps;
};

/**
 * A layer range of a Network, compiled for one input shape.
 * See the file comment for what compilation buys.
 */
class ExecutionPlan
{
  public:
    /**
     * Compile layers [begin, end) of `net` for inputs of shape
     * `in_shape`. Shape propagation runs here, so an incompatible
     * input shape fails at compile time, not on the first frame.
     * The network is borrowed and must outlive the plan.
     */
    ExecutionPlan(const Network &net, i64 begin, i64 end, Shape in_shape,
                  PlanOptions opts = {});

    /** Compile the whole network at its declared input shape. */
    explicit ExecutionPlan(const Network &net, PlanOptions opts = {})
        : ExecutionPlan(net, 0, net.num_layers(), net.input_shape(),
                        opts)
    {
    }

    /**
     * Execute the plan on `in`, cycling activations through `arena`.
     * Returns a reference to the arena slot holding the final
     * activation (or to `in` itself for an empty range) — valid until
     * the arena is next written. Callers that need the result to
     * outlive the arena copy it.
     *
     * Zero steady-state allocations: once the arena slots have grown
     * to this plan's largest shapes, run() performs no heap
     * allocation. Safe against `in` aliasing an arena slot.
     */
    const Tensor &run(const Tensor &in, ScratchArena &arena) const;

    /**
     * Convenience wrapper over run(): executes against the calling
     * thread's arena and copies the result out.
     */
    Tensor forward(const Tensor &in) const;

    Shape in_shape() const { return in_shape_; }
    Shape out_shape() const { return out_shape_; }
    i64 begin() const { return begin_; }
    i64 end() const { return end_; }
    i64 num_steps() const { return static_cast<i64>(steps_.size()); }
    const PlanOptions &options() const { return opts_; }
    const Network &network() const { return *net_; }

    /** Per-step kernel selection, for reports and tests. */
    std::vector<PlanStepInfo> describe() const;

  private:
    struct Step
    {
        const Layer *layer = nullptr;
        i64 layer_index = 0;
        Shape out_shape;
        ConvKernel conv_kernel = ConvKernel::kDirect;
        /** Tuner-picked GEMM variant (kScalar unless opts.tune). */
        GemmVariant conv_variant = GemmVariant::kScalar;
        /** Tuner-picked SIMD FC dot kernel (false unless opts.tune). */
        bool simd_fc = false;
        bool fuse_relu = false;
        i64 out_slot = 0;
        i64 col_slot = -1; ///< im2col workspace slot, or -1.
        Shape col_shape;   ///< Pre-resolved im2col dimensions.
    };

    const Network *net_;
    i64 begin_;
    i64 end_;
    Shape in_shape_;
    Shape out_shape_;
    PlanOptions opts_;
    std::vector<Step> steps_;
};

/**
 * A layer range of a Network, compiled for N same-shape inputs
 * executed in one pass — the cross-stream form of ExecutionPlan.
 *
 * At serving scale the CNN suffix runs on *every* frame of *every*
 * stream (only the prefix is skipped on predicted frames), so its
 * per-sample cost is the number that bounds frames/sec per machine.
 * Executing many streams' suffixes as one batch buys what batch-of-1
 * execution cannot:
 *
 *  - FC layers become matrix-matrix products: each weight row is
 *    streamed from memory once per *batch* instead of once per
 *    sample (FcLayer::forward_batched);
 *  - conv layers pack all samples' output pixels into one im2col
 *    matrix, so GEMM tiles that a single small late-suffix plane
 *    would leave mostly empty are filled, and the per-tile weight
 *    stream is amortized across the batch
 *    (conv_im2col_gemm_batched);
 *  - pointwise layers run per sample through the same forward_into
 *    bodies the unbatched plan uses.
 *
 * Bit-exactness: every output element of every sample is computed
 * with exactly the accumulation order of the unbatched plan, so each
 * sample's result — and therefore each stream's digest chain — is
 * bit-identical to batch-of-1 execution. Batching is purely an
 * execution-shape knob.
 *
 * Memory: lane activations ping-pong through 2*max_batch arena
 * slots, plus one shared im2col slot and one shared GEMM output
 * slot; after warm-up a run performs zero heap allocations. Like
 * ExecutionPlan, a compiled batched plan is immutable and may be
 * shared by any number of threads, each running against its own
 * arena.
 */
class BatchedExecutionPlan
{
  public:
    /**
     * Compile layers [begin, end) of `net` for up to `max_batch`
     * inputs of shape `in_shape` (1 <= max_batch <= kMaxSuffixBatch).
     * The network is borrowed and must outlive the plan.
     */
    BatchedExecutionPlan(const Network &net, i64 begin, i64 end,
                         Shape in_shape, i64 max_batch,
                         PlanOptions opts = {});

    /** Compile the batched form of an existing single-sample plan. */
    BatchedExecutionPlan(const ExecutionPlan &plan, i64 max_batch)
        : BatchedExecutionPlan(plan.network(), plan.begin(), plan.end(),
                               plan.in_shape(), max_batch,
                               plan.options())
    {
    }

    /**
     * Execute samples inputs[0..n) (1 <= n <= max_batch, all of shape
     * in_shape()) in one pass, cycling activations through `arena`.
     * On return outs[i] points at the arena slot holding sample i's
     * final activation (or at inputs[i] for an empty range) — valid
     * until the arena is next written.
     *
     * Aliasing: the ExecutionPlan rule, applied lane by lane —
     * inputs[i] may be lane i's *own* previous output (chaining two
     * batched runs through one arena shifts that lane's ping-pong
     * parity). Inputs must not alias a *different* lane's slots or
     * the shared im2col/GEMM slots; callers that permute lane order
     * between chained runs copy instead.
     *
     * Zero steady-state allocations once the arena has grown to this
     * plan's largest shapes.
     */
    void run(const Tensor *const *inputs, i64 n, const Tensor **outs,
             ScratchArena &arena) const;

    Shape in_shape() const { return in_shape_; }
    Shape out_shape() const { return out_shape_; }
    i64 begin() const { return begin_; }
    i64 end() const { return end_; }
    i64 max_batch() const { return max_batch_; }
    i64 num_steps() const { return static_cast<i64>(steps_.size()); }
    const PlanOptions &options() const { return opts_; }
    const Network &network() const { return *net_; }

  private:
    struct Step
    {
        const Layer *layer = nullptr;
        i64 layer_index = 0;
        Shape out_shape;
        ConvKernel conv_kernel = ConvKernel::kDirect;
        /** Tuner-picked GEMM variant (kScalar unless opts.tune). The
         * contest runs on the per-sample shape; the batched GEMM
         * reuses the pick for every batch size (same key as the
         * unbatched plan, so both agree on one variant). */
        GemmVariant conv_variant = GemmVariant::kScalar;
        /** Tuner-picked SIMD FC dot kernel (false unless opts.tune). */
        bool simd_fc = false;
        bool fuse_relu = false;
        i64 parity = 0;    ///< Lane ping-pong side this step writes.
        bool batched_conv = false; ///< conv_im2col_gemm_batched step.
        bool batched_fc = false;   ///< FcLayer::forward_batched step.
        Shape col_shape;   ///< Per-sample im2col dimensions.
    };

    /** Arena slot of lane `lane`'s ping-pong side `parity`. */
    i64
    lane_slot(i64 lane, i64 parity) const
    {
        return lane * 2 + parity;
    }

    i64 col_slot() const { return max_batch_ * 2; }
    i64 gemm_slot() const { return max_batch_ * 2 + 1; }

    const Network *net_;
    i64 begin_;
    i64 end_;
    Shape in_shape_;
    Shape out_shape_;
    i64 max_batch_;
    PlanOptions opts_;
    std::vector<Step> steps_;
};

} // namespace eva2

#endif // EVA2_CNN_EXECUTION_PLAN_H
