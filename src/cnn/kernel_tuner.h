/**
 * @file
 * Per-shape kernel autotuning behind `kernel=tuned`.
 *
 * The searchable space (in the spirit of AMOS's automatic mapping of
 * tensor computations onto hardware intrinsics): for each distinct
 * conv layer shape, the SIMD GEMM register-tile variants of
 * simd_kernels.h plus the scalar blocked reference; for each distinct
 * FC shape, the SIMD dot kernel vs the scalar chain. At plan-compile
 * time ExecutionPlan asks the tuner for the winner; the tuner
 * benchmarks the candidates on synthetic data of the real shape
 * (column-capped so tuning cost stays bounded) within a caller
 * budget, and caches the pick in a process-wide shape -> variant
 * table so recompiles and new sessions never re-tune.
 *
 * Determinism: within one process, one shape tunes exactly once —
 * every later plan compile returns the cached pick, so all plans for
 * a shape run the same variant and per-stream digests stay
 * reproducible across a run. Across processes the pick may differ
 * (timing noise); that is exactly why tuned kernels are gated by the
 * bounded-divergence check rather than bit-equality
 * (docs/simd_kernels.md).
 */
#ifndef EVA2_CNN_KERNEL_TUNER_H
#define EVA2_CNN_KERNEL_TUNER_H

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cnn/conv_kernels.h"
#include "simd/simd_kernels.h"
#include "util/mutex.h"

namespace eva2 {

enum class RfbmeVariant : i64; // flow/rfbme.h

/** One candidate implementation in a tuning contest. */
struct TuneCandidate
{
    std::string name; ///< Variant label ("mr2xnv4", "scalar", ...).
    i64 id = 0;       ///< Caller-defined id returned on a win.
    /** Run the kernel once on the tuning workload. */
    std::function<void()> run;
};

/** The cached outcome of one tuning contest. */
struct TunePick
{
    i64 id = 0;
    std::string name;
    double best_us = 0.0; ///< Winner's best observed run time.
};

/**
 * The process-wide tuning cache. Thread-safe: concurrent plan
 * compiles for the same shape race benignly — the first insert wins
 * and every caller returns the resident pick.
 */
class KernelTuner
{
  public:
    static KernelTuner &instance();

    /**
     * The cached pick for `key`, tuning on a miss: every candidate is
     * warmed once, then timed round-robin within `budget_us`
     * microseconds total (each candidate gets at least one timed run
     * even on a blown budget); the minimum observed time wins.
     */
    TunePick pick(const std::string &key,
                  const std::vector<TuneCandidate> &candidates,
                  i64 budget_us);

    /** Cached picks (tests). */
    i64 cache_size() const;

    /** Tuning contests actually run, i.e. cache misses (tests). */
    i64 contests() const;

    /** Drop the cache (tests only — defeats cross-plan reuse). */
    void clear();

  private:
    KernelTuner() = default;

    mutable Mutex mutex_;
    std::map<std::string, TunePick> cache_ GUARDED_BY(mutex_);
    i64 contests_ GUARDED_BY(mutex_) = 0;
};

/**
 * Tuned GEMM variant for one conv layer shape: kScalar when SIMD is
 * unsupported, otherwise the contest winner among the scalar blocked
 * kernel and every SIMD register-tile variant, benchmarked on a
 * synthetic im2col matrix of the layer's real geometry (columns
 * capped so one contest costs well under a frame).
 */
GemmVariant tune_conv_gemm(const ConvGeometry &g, i64 out_h, i64 out_w,
                           bool fuse_relu, i64 budget_us);

/**
 * Whether the SIMD FC dot kernel wins over the scalar chain for one
 * FC shape. False when SIMD is unsupported.
 */
bool tune_fc_simd(i64 in_dim, i64 out_dim, i64 budget_us);

/**
 * Tuned RFBME diff-tile producer for tile width `rf_stride` (the
 * contest key is `rfbme_tile/<s>x<s>`): kScalar when SIMD is
 * unsupported, otherwise whichever of the scalar and SIMD
 * fixed-stripe SAD row kernels wins on a synthetic interior tile-row
 * workload of the real tile width. The variants are bit-exact
 * (flow/sad_kernels.h), so the pick affects time only, never output
 * — no divergence gate needed.
 */
RfbmeVariant tune_rfbme_tile(i64 rf_stride, i64 budget_us);

} // namespace eva2

#endif // EVA2_CNN_KERNEL_TUNER_H
