/**
 * @file
 * Max-pooling layer. Pooling is the paper's canonical example of a
 * nonlinearity that only approximately commutes with translation
 * (Figure 4e), so its exact semantics matter to the AMC error model.
 */
#ifndef EVA2_CNN_POOL_LAYER_H
#define EVA2_CNN_POOL_LAYER_H

#include "cnn/layer.h"
#include "util/math_util.h"

namespace eva2 {

/** Square-window max pooling with symmetric zero padding. */
class MaxPoolLayer : public Layer
{
  public:
    MaxPoolLayer(i64 kernel, i64 stride, i64 pad = 0);

    Tensor forward(const Tensor &in) const override;
    void forward_into(const Tensor &in,
                      const ForwardCtx &ctx) const override;
    Shape out_shape(const Shape &in) const override;
    LayerKind kind() const override { return LayerKind::kPool; }
    WindowGeometry geometry() const override
    {
        return {kernel_, stride_, pad_};
    }

    i64 kernel() const { return kernel_; }
    i64 stride() const { return stride_; }
    i64 pad() const { return pad_; }

  private:
    i64 kernel_;
    i64 stride_;
    i64 pad_;
};

} // namespace eva2

#endif // EVA2_CNN_POOL_LAYER_H
