#include "cnn/network.h"

namespace eva2 {

void
Network::check_range(i64 begin, i64 end) const
{
    require(begin >= 0 && end <= num_layers() && begin <= end,
            "network " + name_ + ": bad layer range [" +
                std::to_string(begin) + ", " + std::to_string(end) + ")");
}

Tensor
Network::forward(const Tensor &in, i64 begin, i64 end) const
{
    if (end < 0) {
        end = num_layers();
    }
    check_range(begin, end);
    Tensor act = in;
    for (i64 i = begin; i < end; ++i) {
        act = layers_[static_cast<size_t>(i)]->forward(act);
    }
    return act;
}

Shape
Network::shape_at(i64 i) const
{
    check_range(0, i + 1);
    Shape s = input_shape_;
    for (i64 j = 0; j <= i; ++j) {
        s = layers_[static_cast<size_t>(j)]->out_shape(s);
    }
    return s;
}

std::vector<Shape>
Network::all_shapes() const
{
    std::vector<Shape> shapes;
    shapes.reserve(static_cast<size_t>(num_layers()));
    Shape s = input_shape_;
    for (const auto &layer : layers_) {
        s = layer->out_shape(s);
        shapes.push_back(s);
    }
    return shapes;
}

ReceptiveField
Network::receptive_field_at(i64 i) const
{
    check_range(0, i + 1);
    ReceptiveField rf;
    for (i64 j = 0; j <= i; ++j) {
        const Layer &l = *layers_[static_cast<size_t>(j)];
        require(l.spatial(),
                "receptive_field_at: layer " + std::to_string(j) + " (" +
                    l.name() + ") is non-spatial");
        rf = rf.compose(l.geometry());
    }
    return rf;
}

i64
Network::last_spatial_index() const
{
    i64 last = -1;
    for (i64 i = 0; i < num_layers(); ++i) {
        if (!layers_[static_cast<size_t>(i)]->spatial()) {
            break;
        }
        last = i;
    }
    require(last >= 0, "network " + name_ + " has no spatial layers");
    return last;
}

i64
Network::first_pool_index() const
{
    for (i64 i = 0; i < num_layers(); ++i) {
        if (layers_[static_cast<size_t>(i)]->kind() == LayerKind::kPool) {
            return i;
        }
    }
    return -1;
}

i64
Network::macs_in_range(i64 begin, i64 end) const
{
    if (end < 0) {
        end = num_layers();
    }
    check_range(begin, end);
    i64 total = 0;
    Shape s = input_shape_;
    for (i64 i = 0; i < end; ++i) {
        const Layer &l = *layers_[static_cast<size_t>(i)];
        if (i >= begin) {
            total += l.macs(s);
        }
        s = l.out_shape(s);
    }
    return total;
}

i64
Network::layer_macs(i64 i) const
{
    check_range(0, i + 1);
    Shape s = i == 0 ? input_shape_ : shape_at(i - 1);
    return layers_[static_cast<size_t>(i)]->macs(s);
}

i64
Network::find_layer(const std::string &name) const
{
    for (i64 i = 0; i < num_layers(); ++i) {
        if (layers_[static_cast<size_t>(i)]->name() == name) {
            return i;
        }
    }
    return -1;
}

const char *
conv_kernel_name(ConvKernel kernel)
{
    switch (kernel) {
      case ConvKernel::kDirect:
        return "direct";
      case ConvKernel::kIm2colGemm:
        return "im2col_gemm";
    }
    return "unknown";
}

const char *
layer_kind_name(LayerKind kind)
{
    switch (kind) {
      case LayerKind::kConv:
        return "conv";
      case LayerKind::kPool:
        return "pool";
      case LayerKind::kRelu:
        return "relu";
      case LayerKind::kLrn:
        return "lrn";
      case LayerKind::kFc:
        return "fc";
      case LayerKind::kSoftmax:
        return "softmax";
    }
    return "unknown";
}

} // namespace eva2
