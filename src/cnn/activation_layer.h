/**
 * @file
 * Pointwise nonlinearity layers: ReLU and local response normalization.
 * Both are spatial (each output location depends only on the same
 * input location), so they commute with translation exactly and may
 * live in the AMC prefix.
 */
#ifndef EVA2_CNN_ACTIVATION_LAYER_H
#define EVA2_CNN_ACTIVATION_LAYER_H

#include "cnn/layer.h"

namespace eva2 {

/** Rectified linear unit: max(0, x) elementwise. */
class ReluLayer : public Layer
{
  public:
    Tensor forward(const Tensor &in) const override;
    void forward_into(const Tensor &in,
                      const ForwardCtx &ctx) const override;
    Shape out_shape(const Shape &in) const override { return in; }
    LayerKind kind() const override { return LayerKind::kRelu; }
};

/**
 * AlexNet/CNN-M style local response normalization across channels:
 *   out[c] = in[c] / (k + alpha/n * sum_{c'} in[c']^2)^beta
 * with the sum over a window of n channels centred on c.
 */
class LrnLayer : public Layer
{
  public:
    LrnLayer(i64 local_size = 5, float alpha = 1e-4f, float beta = 0.75f,
             float k = 2.0f);

    Tensor forward(const Tensor &in) const override;
    void forward_into(const Tensor &in,
                      const ForwardCtx &ctx) const override;
    Shape out_shape(const Shape &in) const override { return in; }
    LayerKind kind() const override { return LayerKind::kLrn; }

  private:
    i64 local_size_;
    float alpha_;
    float beta_;
    float k_;
};

} // namespace eva2

#endif // EVA2_CNN_ACTIVATION_LAYER_H
