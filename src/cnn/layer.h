/**
 * @file
 * The abstract CNN layer interface.
 *
 * AMC (Section II of the paper) depends on three per-layer properties
 * beyond plain forward execution: the layer's window geometry (kernel,
 * stride, padding) for receptive-field propagation, whether the layer
 * is *spatial* (its output has a 2D relationship with the input, so
 * activation warping is meaningful), and its multiply-accumulate count
 * for the first-order hardware cost model (Section IV-A).
 */
#ifndef EVA2_CNN_LAYER_H
#define EVA2_CNN_LAYER_H

#include <memory>
#include <string>

#include "simd/simd_kernels.h"
#include "tensor/tensor.h"

namespace eva2 {

/** The layer varieties the reproduction models. */
enum class LayerKind
{
    kConv,    ///< 2D convolution (spatial).
    kPool,    ///< Max pooling (spatial).
    kRelu,    ///< Rectified linear unit (spatial, pointwise).
    kLrn,     ///< Local response normalization (spatial, pointwise).
    kFc,      ///< Fully connected (non-spatial).
    kSoftmax, ///< Softmax over a flat vector (non-spatial).
};

/** Printable name of a layer kind. */
const char *layer_kind_name(LayerKind kind);

/**
 * Window geometry of a spatial layer, used by receptive-field
 * propagation. Pointwise layers use kernel = stride = 1, pad = 0.
 */
struct WindowGeometry
{
    i64 kernel = 1;
    i64 stride = 1;
    i64 pad = 0;
};

/** Selectable convolution kernels (ExecutionPlan picks per layer). */
enum class ConvKernel
{
    kDirect,     ///< The seed's direct loop: the bit-exactness reference.
    kIm2colGemm, ///< im2col packing + blocked GEMM (same accumulation
                 ///< order per output element, so bit-identical).
};

/** Printable name of a conv kernel. */
const char *conv_kernel_name(ConvKernel kernel);

/**
 * Hard upper bound on batched layer execution (the cross-stream
 * suffix batch size of BatchedExecutionPlan and the batched layer
 * kernels it drives). It exists so batched runs can keep their
 * per-lane bookkeeping on the stack (no per-call allocation) and is
 * far above any useful batch — past ~16 the marginal weight-reuse
 * win is gone while batch-formation latency keeps growing.
 */
constexpr i64 kMaxSuffixBatch = 64;

/**
 * Execution context for allocation-free forwarding. The destination
 * (and any kernel workspace) is owned by the caller — in planned
 * execution, by a per-worker ScratchArena — so the layer writes in
 * place instead of returning a fresh tensor.
 */
struct ForwardCtx
{
    /** Destination, already shaped to out_shape(in.shape()). */
    Tensor *out = nullptr;
    /**
     * Kernel workspace (the im2col packing buffer), reshaped by the
     * kernel as needed. May be null: kernels that need a workspace
     * then allocate a local one, trading the zero-allocation
     * guarantee for convenience.
     */
    Tensor *scratch = nullptr;
    /** Which convolution kernel conv layers should run. */
    ConvKernel conv_kernel = ConvKernel::kDirect;
    /**
     * Fold the following ReLU into this layer (plans set this when
     * they elide the ReLU step): the kernel writes max(acc, 0).
     */
    bool fuse_relu = false;
    /**
     * GEMM micro-kernel variant for im2col conv (tuner-selected by
     * `kernel=tuned` plans; kScalar is the bit-exact reference). SIMD
     * variants are bounded-divergence and require simd_supported().
     */
    GemmVariant conv_variant = GemmVariant::kScalar;
    /**
     * Run FC layers through the SIMD dot kernel (tuner-selected, see
     * kernel_tuner.h). Bounded-divergence; requires simd_supported().
     */
    bool simd_fc = false;
};

/**
 * Abstract base class for all layers. Layers are stateless with
 * respect to execution: forward() is const and may be called from
 * multiple frames/pipelines concurrently.
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Run the layer on one input activation. */
    virtual Tensor forward(const Tensor &in) const = 0;

    /**
     * Run the layer into caller-owned storage (see ForwardCtx). The
     * built-in layers overwrite *ctx.out without allocating; this
     * default covers external subclasses by falling back to
     * forward(). `in` and `*ctx.out` must not alias.
     */
    virtual void
    forward_into(const Tensor &in, const ForwardCtx &ctx) const
    {
        *ctx.out = forward(in);
        if (ctx.fuse_relu) {
            Tensor &out = *ctx.out;
            for (i64 i = 0; i < out.size(); ++i) {
                out[i] = out[i] > 0.0f ? out[i] : 0.0f;
            }
        }
    }

    /** Output shape for a given input shape (without executing). */
    virtual Shape out_shape(const Shape &in) const = 0;

    /** The layer's kind tag. */
    virtual LayerKind kind() const = 0;

    /**
     * Number of multiply-accumulate operations to process one input
     * of the given shape. Pointwise layers return 0: the paper's
     * first-order model (Section IV-A) counts only conv and FC MACs,
     * which dominate.
     */
    virtual i64 macs(const Shape & /* in */) const { return 0; }

    /**
     * Whether the output preserves a 2D spatial relationship with the
     * input, i.e. whether activation warping can pass through this
     * layer. FC and softmax layers are non-spatial and must stay in
     * the CNN suffix (Section II-C5).
     */
    virtual bool spatial() const { return true; }

    /** Window geometry for receptive-field propagation. */
    virtual WindowGeometry geometry() const { return {}; }

    /** Layer name used in reports ("conv3_1", "fc6", ...). */
    const std::string &name() const { return name_; }

    /** Set the report name (builders call this). */
    void set_name(std::string name) { name_ = std::move(name); }

  protected:
    Layer() = default;

  private:
    std::string name_;
};

using LayerPtr = std::unique_ptr<Layer>;

} // namespace eva2

#endif // EVA2_CNN_LAYER_H
