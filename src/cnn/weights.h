/**
 * @file
 * Deterministic structured weight initialization.
 *
 * The reproduction cannot ship ImageNet-trained weights, but AMC's
 * behaviour depends on activations that respond meaningfully and
 * sparsely to image content. We therefore initialize the first
 * convolutional layer with a deterministic bank of oriented-edge and
 * center-surround filters (the filter types first layers of trained
 * CNNs converge to) and deeper layers with He-scaled Gaussians and a
 * small negative bias, which yields post-ReLU sparsity in the range
 * sparse accelerators report for trained networks. See DESIGN.md §1.
 */
#ifndef EVA2_CNN_WEIGHTS_H
#define EVA2_CNN_WEIGHTS_H

#include "cnn/network.h"
#include "util/rng.h"

namespace eva2 {
class ConvLayer;
} // namespace eva2

namespace eva2 {

/**
 * Initialize every conv and FC layer in a network.
 *
 * @param net  The network to initialize in place.
 * @param seed Root seed; each layer derives an independent stream, so
 *             results are reproducible regardless of layer count.
 */
void init_weights(Network &net, u64 seed);

/**
 * Fill one convolutional layer with the deterministic first-layer
 * filter bank (oriented edges at evenly spaced angles plus
 * center-surround filters). Exposed for tests.
 */
void fill_first_layer_bank(ConvLayer &conv);

/**
 * Empirically calibrate conv biases and weight scales so that every
 * conv layer's post-ReLU activations hit a target sparsity with O(1)
 * magnitudes (LSUV-style data-dependent init on a deterministic
 * texture image). Trained CNNs exhibit exactly this regime — most
 * activation values zero, the rest moderate — and EVA2's RLE storage
 * and sparsity decoder lanes depend on it. Called by init_weights().
 *
 * @param net             Network with weights already initialized.
 * @param seed            Seed for the calibration image.
 * @param target_sparsity Desired post-ReLU zero fraction per channel.
 */
void calibrate_activations(Network &net, u64 seed,
                           double target_sparsity = 0.92);

} // namespace eva2

#endif // EVA2_CNN_WEIGHTS_H
