#include "cnn/activation_layer.h"

#include <cmath>

#include "simd/simd_kernels.h"

namespace eva2 {

Tensor
ReluLayer::forward(const Tensor &in) const
{
    Tensor out(in.shape());
    ForwardCtx ctx;
    ctx.out = &out;
    forward_into(in, ctx);
    return out;
}

void
ReluLayer::forward_into(const Tensor &in, const ForwardCtx &ctx) const
{
    Tensor &out = *ctx.out;
    // Lane-parallel max(x, 0) is bit-exact vs this loop, so SIMD is
    // safe to take whenever the machine has it — no tuner or
    // divergence gate involved.
    if (simd_supported()) {
        relu_simd(in.data().data(), out.data().data(), in.size());
        return;
    }
    for (i64 i = 0; i < in.size(); ++i) {
        out[i] = in[i] > 0.0f ? in[i] : 0.0f;
    }
}

LrnLayer::LrnLayer(i64 local_size, float alpha, float beta, float k)
    : local_size_(local_size), alpha_(alpha), beta_(beta), k_(k)
{
    require(local_size > 0, "lrn: local_size must be positive");
}

Tensor
LrnLayer::forward(const Tensor &in) const
{
    Tensor out(in.shape());
    ForwardCtx ctx;
    ctx.out = &out;
    forward_into(in, ctx);
    return out;
}

void
LrnLayer::forward_into(const Tensor &in, const ForwardCtx &ctx) const
{
    Tensor &out = *ctx.out;
    const i64 half = local_size_ / 2;
    for (i64 c = 0; c < in.channels(); ++c) {
        const i64 c_lo = std::max<i64>(0, c - half);
        const i64 c_hi = std::min<i64>(in.channels() - 1, c + half);
        for (i64 y = 0; y < in.height(); ++y) {
            for (i64 x = 0; x < in.width(); ++x) {
                float acc = 0.0f;
                for (i64 cc = c_lo; cc <= c_hi; ++cc) {
                    float v = in.at(cc, y, x);
                    acc += v * v;
                }
                float denom = std::pow(
                    k_ + alpha_ / static_cast<float>(local_size_) * acc,
                    beta_);
                out.at(c, y, x) = in.at(c, y, x) / denom;
            }
        }
    }
}

} // namespace eva2
