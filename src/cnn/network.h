/**
 * @file
 * A sequential CNN with the prefix/suffix split machinery AMC needs.
 *
 * AMC (Section II-A) divides the layer sequence at a *target layer*:
 * the prefix (everything up to and including the target) runs only on
 * key frames; the suffix runs on every frame. This class exposes
 * partial execution over layer ranges, per-layer shape and
 * receptive-field queries, and MAC accounting for the cost model.
 */
#ifndef EVA2_CNN_NETWORK_H
#define EVA2_CNN_NETWORK_H

#include <string>
#include <vector>

#include "cnn/layer.h"
#include "cnn/receptive_field.h"

namespace eva2 {

/** A feed-forward stack of layers executed in order. */
class Network
{
  public:
    /**
     * @param name        Report name ("AlexNet", "Faster16", ...).
     * @param input_shape The CHW shape this network expects.
     */
    Network(std::string name, Shape input_shape)
        : name_(std::move(name)), input_shape_(input_shape)
    {
    }

    Network(Network &&) = default;
    Network &operator=(Network &&) = default;
    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /** Append a layer; returns its index. */
    i64
    add(LayerPtr layer)
    {
        layers_.push_back(std::move(layer));
        return static_cast<i64>(layers_.size()) - 1;
    }

    const std::string &name() const { return name_; }
    Shape input_shape() const { return input_shape_; }
    i64 num_layers() const { return static_cast<i64>(layers_.size()); }
    const Layer &layer(i64 i) const { return *layers_[static_cast<size_t>(i)]; }
    Layer &layer(i64 i) { return *layers_[static_cast<size_t>(i)]; }

    /**
     * Run layers [begin, end) on the given activation. The default
     * arguments execute the whole network.
     */
    Tensor forward(const Tensor &in, i64 begin = 0, i64 end = -1) const;

    /** Run the prefix: layers [0, target_layer]. */
    Tensor
    forward_prefix(const Tensor &in, i64 target_layer) const
    {
        return forward(in, 0, target_layer + 1);
    }

    /** Run the suffix: layers (target_layer, end). */
    Tensor
    forward_suffix(const Tensor &target_activation, i64 target_layer) const
    {
        return forward(target_activation, target_layer + 1, num_layers());
    }

    /** Output shape of layer i given the network's input shape. */
    Shape shape_at(i64 i) const;

    /** Output shapes of every layer, index-aligned with the layers. */
    std::vector<Shape> all_shapes() const;

    /**
     * Cumulative receptive field of layer i's outputs with respect to
     * the input pixels. Only valid while every layer in [0, i] is
     * spatial.
     */
    ReceptiveField receptive_field_at(i64 i) const;

    /**
     * Index of the last spatial layer: the latest mechanically legal
     * AMC target (every layer up to it has 2D structure).
     */
    i64 last_spatial_index() const;

    /**
     * The network's designated AMC target layer (Section II-C5's
     * "last spatial layer" in the paper's sense: the end of the
     * feature extractor, before task-specific machinery such as
     * Faster R-CNN's RPN/RoI stages whose data-dependent behaviour
     * prevents warping). Set by build_scaled() from the spec's
     * late_target; falls back to last_spatial_index() when unset.
     */
    i64
    default_target_index() const
    {
        return default_target_ >= 0 ? default_target_
                                    : last_spatial_index();
    }

    /** Designate the AMC target layer (see default_target_index). */
    void
    set_default_target(i64 i)
    {
        require(i >= 0 && i < num_layers(),
                "default target out of range");
        default_target_ = i;
    }

    /**
     * Index of the "early" target used in the paper's Table II study:
     * the first pooling layer.
     */
    i64 first_pool_index() const;

    /** Total MACs for layers [begin, end) at the network's input size. */
    i64 macs_in_range(i64 begin, i64 end) const;

    /** Total MACs for full execution. */
    i64 total_macs() const { return macs_in_range(0, num_layers()); }

    /** MACs in the prefix [0, target_layer]. */
    i64
    prefix_macs(i64 target_layer) const
    {
        return macs_in_range(0, target_layer + 1);
    }

    /** MACs in the suffix (target_layer, end). */
    i64
    suffix_macs(i64 target_layer) const
    {
        return macs_in_range(target_layer + 1, num_layers());
    }

    /** MACs of one layer at its in-network input shape. */
    i64 layer_macs(i64 i) const;

    /** Find a layer index by report name; -1 if absent. */
    i64 find_layer(const std::string &name) const;

  private:
    void check_range(i64 begin, i64 end) const;

    std::string name_;
    Shape input_shape_;
    std::vector<LayerPtr> layers_;
    i64 default_target_ = -1;
};

} // namespace eva2

#endif // EVA2_CNN_NETWORK_H
