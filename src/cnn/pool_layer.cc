#include "cnn/pool_layer.h"

#include <limits>

namespace eva2 {

MaxPoolLayer::MaxPoolLayer(i64 kernel, i64 stride, i64 pad)
    : kernel_(kernel), stride_(stride), pad_(pad)
{
    require(kernel > 0 && stride > 0 && pad >= 0,
            "pool: invalid window geometry");
}

Shape
MaxPoolLayer::out_shape(const Shape &in) const
{
    return Shape{in.c, conv_out_size(in.h, kernel_, stride_, pad_),
                 conv_out_size(in.w, kernel_, stride_, pad_)};
}

Tensor
MaxPoolLayer::forward(const Tensor &in) const
{
    Tensor out(out_shape(in.shape()));
    ForwardCtx ctx;
    ctx.out = &out;
    forward_into(in, ctx);
    return out;
}

void
MaxPoolLayer::forward_into(const Tensor &in, const ForwardCtx &ctx) const
{
    Tensor &out = *ctx.out;
    const Shape os = out.shape();
    for (i64 c = 0; c < os.c; ++c) {
        for (i64 oy = 0; oy < os.h; ++oy) {
            const i64 base_y = oy * stride_ - pad_;
            for (i64 ox = 0; ox < os.w; ++ox) {
                const i64 base_x = ox * stride_ - pad_;
                // Padded cells count as zero, matching common framework
                // semantics for positive activations after ReLU.
                float best = -std::numeric_limits<float>::infinity();
                bool any = false;
                for (i64 ky = 0; ky < kernel_; ++ky) {
                    const i64 y = base_y + ky;
                    if (y < 0 || y >= in.height()) {
                        continue;
                    }
                    for (i64 kx = 0; kx < kernel_; ++kx) {
                        const i64 x = base_x + kx;
                        if (x < 0 || x >= in.width()) {
                            continue;
                        }
                        best = std::max(best, in.at(c, y, x));
                        any = true;
                    }
                }
                out.at(c, oy, ox) = any ? best : 0.0f;
            }
        }
    }
}

} // namespace eva2
