#include "api/run_report.h"

#include <cstdio>

#include "util/json.h"

namespace eva2 {

std::string
digest_hex(u64 digest)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(digest));
    return buf;
}

std::vector<StageReport>
stage_reports(const StageTimings &timings, double wall_ms)
{
    std::vector<StageReport> out;
    for (i64 i = 0; i < kNumAmcStages; ++i) {
        const AmcStage stage = static_cast<AmcStage>(i);
        StageReport row;
        row.stage = amc_stage_name(stage);
        row.total_ms = timings.total_ms(stage);
        row.calls = timings.calls(stage);
        row.occupancy = wall_ms > 0.0 ? row.total_ms / wall_ms : 0.0;
        out.push_back(std::move(row));
    }
    return out;
}

std::string
RunReport::to_json(int indent) const
{
    JsonWriter w(indent);
    w.begin_object();
    w.member("network", network);
    w.key("config").begin_object();
    w.member("policy", policy);
    w.member("interp", interp);
    w.member("codec", codec);
    w.member("kernel", kernel);
    w.member("target", target);
    w.member("motion", motion);
    w.member("batch", batch);
    w.member("memory", memory_spec);
    w.member("simd_isa", simd_isa);
    w.member("num_threads", num_threads);
    w.member("pipeline_depth", pipeline_depth);
    w.end_object();
    w.member("wall_ms", wall_ms);
    w.member("frames", frames);
    w.member("key_frames", key_frames);
    w.member("key_fraction", key_fraction());
    w.member("fps", frames_per_second());
    w.member("me_add_ops", me_add_ops);
    w.member("digest", digest_hex(digest));
    w.key("streams").begin_array();
    for (const StreamReport &s : streams) {
        w.begin_object();
        w.member("name", s.name);
        w.member("index", s.stream_index);
        w.member("frames", s.frames);
        w.member("key_frames", s.key_frames);
        w.member("key_fraction", s.key_fraction());
        w.member("me_add_ops", s.me_add_ops);
        w.member("digest", digest_hex(s.digest));
        w.end_object();
    }
    w.end_array();
    w.key("stages").begin_array();
    for (const StageReport &s : stages) {
        w.begin_object();
        // Stage names flow through the shared util/json escape
        // helper (JsonWriter::value), like every string here — a
        // registered kernel or stage label with quotes or
        // backslashes cannot corrupt the document.
        w.member("stage", s.stage);
        w.member("total_ms", s.total_ms);
        w.member("calls", s.calls);
        w.member("mean_ms", s.mean_ms());
        w.member("occupancy", s.occupancy);
        w.end_object();
    }
    w.end_array();
    w.key("plan").begin_array();
    for (const PlanRecord &p : plan) {
        w.begin_object();
        w.member("scope", p.scope);
        w.key("steps").begin_array();
        for (const PlanStepInfo &s : p.steps) {
            w.begin_object();
            w.member("layer", s.layer);
            w.member("kernel", s.kernel);
            w.member("variant", s.variant);
            w.member("fused_relu", s.fused_relu);
            w.member("out", s.out.str());
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.key("suffix_batching").begin_object();
    w.member("batches", batching.batches);
    w.member("items", batching.items);
    w.member("mean_occupancy", batching.mean_occupancy());
    w.key("occupancy_histogram").begin_array();
    for (const i64 count : batching.occupancy) {
        w.value(count);
    }
    w.end_array();
    w.end_object();
    w.key("net").begin_object();
    w.member("connections_accepted", net.connections_accepted);
    w.member("connections_rejected", net.connections_rejected);
    w.member("sessions_accepted", net.sessions_accepted);
    w.member("sessions_rejected", net.sessions_rejected);
    w.member("frames_in", net.frames_in);
    w.member("outcomes_out", net.outcomes_out);
    w.member("shed_window", net.shed_window);
    w.member("shed_overload", net.shed_overload);
    w.member("shed_draining", net.shed_draining);
    w.member("shed_memory", net.shed_memory);
    w.member("shed_total", net.shed_total());
    w.member("protocol_errors", net.protocol_errors);
    w.member("bytes_in", net.bytes_in);
    w.member("bytes_out", net.bytes_out);
    w.member("window_stalls", net.window_stalls);
    w.end_object();
    w.key("memory").begin_object();
    w.member("budget_bytes", memory.budget_bytes);
    w.member("hibernate", memory.hibernate);
    w.member("resident_bytes", memory.resident_bytes);
    w.member("peak_resident_bytes", memory.peak_resident_bytes);
    w.member("sessions_tracked", memory.sessions_tracked);
    w.member("sessions_resident", memory.sessions_resident);
    w.member("sessions_hibernated", memory.sessions_hibernated);
    w.member("bytes_per_session", memory.bytes_per_session());
    w.member("hibernations", memory.hibernations);
    w.member("hydrations", memory.hydrations);
    w.member("hydrate_p50_us", memory.hydrate_p50_us);
    w.member("hydrate_p99_us", memory.hydrate_p99_us);
    w.end_object();
    w.end_object();
    return w.str();
}

} // namespace eva2
