#include "api/registry.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace eva2 {

namespace {

std::string
join(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &n : names) {
        if (!out.empty()) {
            out += ", ";
        }
        out += n;
    }
    return out;
}

} // namespace

bool
ComponentSpec::has(const std::string &key) const
{
    for (const auto &kv : params) {
        if (kv.first == key) {
            return true;
        }
    }
    return false;
}

std::string
ComponentSpec::str(const std::string &key,
                   const std::string &fallback) const
{
    for (const auto &kv : params) {
        if (kv.first == key) {
            return kv.second;
        }
    }
    return fallback;
}

double
ComponentSpec::number(const std::string &key, double fallback) const
{
    if (!has(key)) {
        return fallback;
    }
    const std::string v = str(key);
    char *end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    // strtod happily accepts "nan"/"inf"; a non-finite threshold
    // would make every comparison silently false downstream, exactly
    // the failure mode this layer exists to catch.
    require(end != v.c_str() && *end == '\0' && std::isfinite(parsed),
            "spec '" + text + "': parameter '" + key +
                "' is not a finite number: '" + v + "'");
    return parsed;
}

i64
ComponentSpec::integer(const std::string &key, i64 fallback) const
{
    if (!has(key)) {
        return fallback;
    }
    const std::string v = str(key);
    char *end = nullptr;
    errno = 0; // strtoll reports overflow only through errno.
    const long long parsed = std::strtoll(v.c_str(), &end, 10);
    require(end != v.c_str() && *end == '\0' && errno != ERANGE,
            "spec '" + text + "': parameter '" + key +
                "' is not an in-range integer: '" + v + "'");
    return static_cast<i64>(parsed);
}

void
ComponentSpec::allow_only(const std::vector<std::string> &keys) const
{
    for (const auto &kv : params) {
        if (std::find(keys.begin(), keys.end(), kv.first) ==
            keys.end()) {
            throw ConfigError(
                "spec '" + text + "': unknown parameter '" + kv.first +
                "' for kind '" + kind + "' (allowed: " + join(keys) +
                ")");
        }
    }
}

ComponentSpec
parse_component_spec(const std::string &text)
{
    ComponentSpec spec;
    spec.text = text;
    const size_t colon = text.find(':');
    spec.kind = text.substr(0, colon);
    require(!spec.kind.empty(), "component spec is empty: '" + text +
                                    "' (expected kind[:k=v,...])");
    if (colon == std::string::npos) {
        return spec;
    }
    const std::string rest = text.substr(colon + 1);
    require(!rest.empty(), "spec '" + text +
                               "': ':' must be followed by parameters");
    size_t pos = 0;
    while (pos <= rest.size()) {
        size_t comma = rest.find(',', pos);
        if (comma == std::string::npos) {
            comma = rest.size();
        }
        const std::string item = rest.substr(pos, comma - pos);
        const size_t eq = item.find('=');
        require(eq != std::string::npos && eq > 0 &&
                    eq + 1 < item.size(),
                "spec '" + text + "': malformed parameter '" + item +
                    "' (expected key=value)");
        const std::string key = item.substr(0, eq);
        for (const auto &kv : spec.params) {
            require(kv.first != key, "spec '" + text +
                                         "': duplicate parameter '" +
                                         key + "'");
        }
        spec.params.emplace_back(key, item.substr(eq + 1));
        if (comma == rest.size()) {
            break;
        }
        pos = comma + 1;
    }
    return spec;
}

// --------------------------------------------------------------------
// PolicyRegistry

PolicyRegistry::PolicyRegistry()
{
    // Run the full network on every frame: the no-AMC baseline and
    // the pipeline's default when no policy is supplied.
    add("every_frame", [](const ComponentSpec &spec) {
        spec.allow_only({});
        return std::make_unique<StaticRatePolicy>(1);
    });
    add("static", [](const ComponentSpec &spec) {
        spec.allow_only({"interval"});
        return std::make_unique<StaticRatePolicy>(
            spec.integer("interval", 4));
    });
    const Factory block_error = [](const ComponentSpec &spec) {
        spec.allow_only({"th", "max_gap"});
        return std::make_unique<BlockErrorPolicy>(
            spec.number("th", 0.02), spec.integer("max_gap", 0));
    };
    add("adaptive_error", block_error);
    add("block_error", block_error); // Paper's feature name (II-C4).
    const Factory motion = [](const ComponentSpec &spec) {
        spec.allow_only({"th", "max_gap"});
        return std::make_unique<MotionMagnitudePolicy>(
            spec.number("th", 100.0), spec.integer("max_gap", 0));
    };
    add("adaptive_motion", motion);
    add("motion_magnitude", motion);
}

PolicyRegistry &
PolicyRegistry::instance()
{
    static PolicyRegistry registry;
    return registry;
}

void
PolicyRegistry::add(const std::string &kind, Factory factory)
{
    require(!kind.empty(), "policy registry: empty kind name");
    entries_[kind] = std::move(factory);
}

bool
PolicyRegistry::contains(const std::string &kind) const
{
    return entries_.count(kind) != 0;
}

std::vector<std::string>
PolicyRegistry::names() const
{
    std::vector<std::string> out;
    for (const auto &e : entries_) {
        out.push_back(e.first);
    }
    return out;
}

std::unique_ptr<KeyFramePolicy>
PolicyRegistry::make(const std::string &spec_text) const
{
    const ComponentSpec spec = parse_component_spec(spec_text);
    const auto it = entries_.find(spec.kind);
    if (it == entries_.end()) {
        throw ConfigError("unknown key-frame policy '" + spec.kind +
                          "' in spec '" + spec_text +
                          "' (known: " + join(names()) + ")");
    }
    return it->second(spec);
}

std::function<std::unique_ptr<KeyFramePolicy>()>
PolicyRegistry::factory(const std::string &spec_text) const
{
    // Validate eagerly: a typo should fail at configuration time,
    // not on the first stream the factory is invoked for.
    make(spec_text);
    return [this, spec_text]() { return make(spec_text); };
}

// --------------------------------------------------------------------
// InterpRegistry

InterpRegistry::InterpRegistry()
{
    add("bilinear", InterpMode::kBilinear);
    add("nearest", InterpMode::kNearest);
}

InterpRegistry &
InterpRegistry::instance()
{
    static InterpRegistry registry;
    return registry;
}

void
InterpRegistry::add(const std::string &name, InterpMode mode)
{
    require(!name.empty(), "interp registry: empty name");
    entries_[name] = mode;
}

std::vector<std::string>
InterpRegistry::names() const
{
    std::vector<std::string> out;
    for (const auto &e : entries_) {
        out.push_back(e.first);
    }
    return out;
}

InterpMode
InterpRegistry::resolve(const std::string &name) const
{
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
        throw ConfigError("unknown interpolation mode '" + name +
                          "' (known: " + join(names()) + ")");
    }
    return it->second;
}

// --------------------------------------------------------------------
// KernelRegistry

KernelRegistry::KernelRegistry()
{
    add("gemm", [](const ComponentSpec &spec, PlanOptions &plan) {
        spec.allow_only({"fuse"});
        plan.conv_kernel = ConvKernel::kIm2colGemm;
        plan.fuse_conv_relu = spec.integer("fuse", 1) != 0;
    });
    add("direct", [](const ComponentSpec &spec, PlanOptions &plan) {
        spec.allow_only({"fuse"});
        plan.conv_kernel = ConvKernel::kDirect;
        // The reference configuration mirrors the seed exactly, so
        // fusion defaults off here.
        plan.fuse_conv_relu = spec.integer("fuse", 0) != 0;
    });
    // gemm + per-shape autotuning over the SIMD micro-kernel variants
    // (kernel_tuner.h). The tuned kernels are bounded-divergence vs
    // the scalar oracle, never bit-exact — see docs/simd_kernels.md
    // for the verification contract. Falls back to scalar gemm when
    // SIMD is unsupported on the running machine.
    add("tuned", [](const ComponentSpec &spec, PlanOptions &plan) {
        spec.allow_only({"fuse", "budget_us"});
        plan.conv_kernel = ConvKernel::kIm2colGemm;
        plan.fuse_conv_relu = spec.integer("fuse", 1) != 0;
        plan.tune = true;
        plan.tune_budget_us = spec.integer("budget_us", 20000);
        require(plan.tune_budget_us > 0,
                "kernel spec '" + spec.text +
                    "': budget_us must be > 0");
    });
}

KernelRegistry &
KernelRegistry::instance()
{
    static KernelRegistry registry;
    return registry;
}

void
KernelRegistry::add(const std::string &kind, Applier applier)
{
    require(!kind.empty(), "kernel registry: empty kind name");
    entries_[kind] = std::move(applier);
}

bool
KernelRegistry::contains(const std::string &kind) const
{
    return entries_.count(kind) != 0;
}

std::vector<std::string>
KernelRegistry::names() const
{
    std::vector<std::string> out;
    for (const auto &e : entries_) {
        out.push_back(e.first);
    }
    return out;
}

void
KernelRegistry::apply(const std::string &spec_text,
                      PlanOptions &plan) const
{
    const ComponentSpec spec = parse_component_spec(spec_text);
    const auto it = entries_.find(spec.kind);
    if (it == entries_.end()) {
        throw ConfigError("unknown execution kernel '" + spec.kind +
                          "' in spec '" + spec_text +
                          "' (known: " + join(names()) + ")");
    }
    it->second(spec, plan);
}

// --------------------------------------------------------------------
// CodecRegistry

CodecRegistry::CodecRegistry()
{
    add("rle_q88", [](const ComponentSpec &spec, AmcOptions &amc) {
        spec.allow_only({"prune"});
        amc.quantize_storage = true;
        amc.storage_prune_rel = spec.number("prune", 0.12);
        require(amc.storage_prune_rel >= 0.0,
                "codec spec '" + spec.text +
                    "': prune must be >= 0");
    });
    add("dense", [](const ComponentSpec &spec, AmcOptions &amc) {
        spec.allow_only({});
        amc.quantize_storage = false;
        amc.storage_prune_rel = 0.0;
    });
}

CodecRegistry &
CodecRegistry::instance()
{
    static CodecRegistry registry;
    return registry;
}

void
CodecRegistry::add(const std::string &kind, Applier applier)
{
    require(!kind.empty(), "codec registry: empty kind name");
    entries_[kind] = std::move(applier);
}

bool
CodecRegistry::contains(const std::string &kind) const
{
    return entries_.count(kind) != 0;
}

std::vector<std::string>
CodecRegistry::names() const
{
    std::vector<std::string> out;
    for (const auto &e : entries_) {
        out.push_back(e.first);
    }
    return out;
}

void
CodecRegistry::apply(const std::string &spec_text, AmcOptions &amc) const
{
    const ComponentSpec spec = parse_component_spec(spec_text);
    const auto it = entries_.find(spec.kind);
    if (it == entries_.end()) {
        throw ConfigError("unknown storage codec '" + spec.kind +
                          "' in spec '" + spec_text +
                          "' (known: " + join(names()) + ")");
    }
    it->second(spec, amc);
}

} // namespace eva2
