/**
 * @file
 * Structured results of an Engine run.
 *
 * A RunReport is the serving API's machine-readable outcome record:
 * the resolved configuration, aggregate and per-stream counters
 * (frames, key fraction, RFBME op counts, chained output digests),
 * and per-stage wall time from the instrumentation hook layer. It
 * serializes to JSON so benches and CI can accumulate performance
 * trajectories (`BENCH_*.json`) and deployments can export metrics
 * without scraping stdout tables.
 */
#ifndef EVA2_API_RUN_REPORT_H
#define EVA2_API_RUN_REPORT_H

#include <string>
#include <vector>

#include "core/instrumentation.h"
#include "runtime/resident_set.h"
#include "runtime/suffix_batcher.h"
#include "util/common.h"

namespace eva2 {

/** One pipeline stage's aggregated wall time across streams. */
struct StageReport
{
    std::string stage; ///< amc_stage_name() label.
    double total_ms = 0.0;
    i64 calls = 0;
    /**
     * Stage busy-time as a fraction of the run's wall time: the
     * average number of concurrent executions of this stage across
     * all streams. Under pipelined execution the busy fractions sum
     * past 1.0 — that surplus is exactly the overlap the stage
     * scheduler bought. 0 when the run recorded no wall time.
     */
    double occupancy = 0.0;

    /** Mean latency of one call, in ms (0 when never called). */
    double
    mean_ms() const
    {
        return calls == 0 ? 0.0
                          : total_ms / static_cast<double>(calls);
    }
};

/** One stream's contribution to a run. */
struct StreamReport
{
    std::string name;
    i64 stream_index = 0;
    i64 frames = 0;
    i64 key_frames = 0;
    i64 me_add_ops = 0;
    u64 digest = 0; ///< Frame output digests chained in order.

    double
    key_fraction() const
    {
        return frames == 0 ? 0.0
                           : static_cast<double>(key_frames) /
                                 static_cast<double>(frames);
    }
};

/**
 * Serving front-end counters, filled in by net::Server::report()
 * when the engine sits behind the TCP front end (docs/serving.md);
 * all zero for in-process runs. Byte counts are application-layer
 * (framed messages as written/read, not TCP segments).
 */
struct NetStats
{
    i64 connections_accepted = 0;
    i64 connections_rejected = 0; ///< Admission: max_connections.
    i64 sessions_accepted = 0;
    i64 sessions_rejected = 0; ///< Admission: typed HELLO NACKs.
    i64 frames_in = 0;         ///< Decoded FRAMEs submitted.
    i64 outcomes_out = 0;      ///< OUTCOME digests streamed back.
    i64 shed_window = 0;       ///< Frames past a session's window.
    i64 shed_overload = 0;     ///< Frames shed by the global cap.
    i64 shed_draining = 0;     ///< Frames arriving during drain.
    i64 shed_memory = 0;       ///< Frames shed by the memory budget.
    i64 protocol_errors = 0;   ///< Connections killed mid-parse.
    i64 bytes_in = 0;
    i64 bytes_out = 0;
    /**
     * Times some session's in-flight count reached its window — each
     * one is a completion the sender had to wait for before its next
     * frame, i.e. backpressure actually applied.
     */
    i64 window_stalls = 0;

    i64
    shed_total() const
    {
        return shed_window + shed_overload + shed_draining +
               shed_memory;
    }
};

/** Everything an Engine run (batch or session-fed) produced. */
struct RunReport
{
    // Resolved configuration echo, for provenance in saved reports.
    std::string network;
    std::string policy;
    std::string interp;
    std::string codec;
    std::string kernel;
    std::string target;
    std::string motion;
    /** Suffix batching spec echo ("off" or "auto:max=..,.."). */
    std::string batch;
    /** Memory budget spec echo ("off" or "budget_mb:N[,...]"). */
    std::string memory_spec;
    /**
     * SIMD ISA the kernels can use on this machine ("avx2", "sse2",
     * "neon"), or "scalar" when the build or CPU has none — the
     * compiled ISA only counts if the running CPU supports it.
     */
    std::string simd_isa;
    i64 num_threads = 0;
    /** Frames in flight per stream (<= 1 = serial frame loop). */
    i64 pipeline_depth = 0;

    double wall_ms = 0.0;
    i64 frames = 0;
    i64 key_frames = 0;
    i64 me_add_ops = 0;
    /** Stream digests chained in stream order (BatchResult::digest). */
    u64 digest = 0;

    std::vector<StreamReport> streams;
    std::vector<StageReport> stages;
    /** Kernel selection of the compiled plans ({prefix, suffix}). */
    std::vector<PlanRecord> plan;
    /**
     * Cross-stream suffix batching occupancy for this run: how many
     * batches were dispatched, how full they ran (the histogram is
     * indexed by batch size - 1), and the mean. All zero when
     * batching is off — and worth watching when it is on, since mean
     * occupancy near 1 means the delay window never found company
     * and batching is buying nothing.
     */
    SuffixBatchStats batching;
    /** Serving front-end counters (zero without a net::Server). */
    NetStats net;
    /**
     * Resident-session memory tier counters (docs/resident_state.md):
     * tracked bytes and session counts, hibernation/hydration totals,
     * and hydrate latency percentiles. All zero when `memory=off`.
     */
    MemoryStats memory;

    double
    key_fraction() const
    {
        return frames == 0 ? 0.0
                           : static_cast<double>(key_frames) /
                                 static_cast<double>(frames);
    }

    double
    frames_per_second() const
    {
        return wall_ms <= 0.0 ? 0.0
                              : static_cast<double>(frames) * 1000.0 /
                                    wall_ms;
    }

    /** Serialize as a JSON document. */
    std::string to_json(int indent = 2) const;
};

/**
 * Convert an aggregated StageTimings into report rows (all stages).
 * `wall_ms` is the run's wall time occupancies are computed against;
 * pass 0 when unknown (occupancies then report 0).
 */
std::vector<StageReport> stage_reports(const StageTimings &timings,
                                       double wall_ms = 0.0);

/** Format a digest the way reports print it ("0x" + 16 hex digits). */
std::string digest_hex(u64 digest);

} // namespace eva2

#endif // EVA2_API_RUN_REPORT_H
