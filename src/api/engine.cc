#include "api/engine.h"

#include <algorithm>
#include <utility>

#include "eval/metrics.h"
#include "simd/simd_kernels.h"

namespace eva2 {

// --------------------------------------------------------------------
// EngineConfig

namespace {

AmcOptions
resolve_amc(const EngineConfig &config, const Network &net)
{
    AmcOptions amc;
    amc.interp = InterpRegistry::instance().resolve(config.interp);
    CodecRegistry::instance().apply(config.codec, amc);
    KernelRegistry::instance().apply(config.kernel, amc.plan);

    if (config.target == "last_spatial") {
        amc.target_choice = TargetChoice::kLastSpatial;
    } else if (config.target == "early") {
        amc.target_choice = TargetChoice::kEarly;
    } else if (config.target.rfind("layer:", 0) == 0) {
        const ComponentSpec spec =
            parse_component_spec("target:index=" +
                                 config.target.substr(6));
        amc.target_choice = TargetChoice::kExplicit;
        amc.explicit_target = spec.integer("index", -1);
    } else {
        throw ConfigError(
            "unknown target spec '" + config.target +
            "' (known: last_spatial, early, layer:<index>)");
    }

    if (config.motion == "compensation") {
        amc.motion_mode = MotionMode::kCompensation;
    } else if (config.motion == "memoization") {
        amc.motion_mode = MotionMode::kMemoization;
    } else {
        throw ConfigError("unknown motion mode '" + config.motion +
                          "' (known: compensation, memoization)");
    }

    amc.search_radius = config.search_radius;
    amc.search_stride = config.search_stride;
    amc.validate(net);
    return amc;
}

SuffixBatchOptions
resolve_batch(const std::string &spec)
{
    const ComponentSpec s = parse_component_spec(spec);
    SuffixBatchOptions out;
    if (s.kind == "off") {
        s.allow_only({});
        return out;
    }
    if (s.kind == "auto") {
        s.allow_only({"max", "delay_us"});
        out.enabled = true;
        out.max_batch = s.integer("max", out.max_batch);
        out.max_delay_us = s.integer("delay_us", out.max_delay_us);
        require(out.max_batch >= 1 &&
                    out.max_batch <= kMaxSuffixBatch,
                "batch spec '" + spec + "': max must be in [1, " +
                    std::to_string(kMaxSuffixBatch) + "], got " +
                    std::to_string(out.max_batch));
        require(out.max_delay_us >= 0,
                "batch spec '" + spec +
                    "': delay_us must be >= 0, got " +
                    std::to_string(out.max_delay_us));
        return out;
    }
    throw ConfigError("unknown batch spec '" + spec +
                      "' (known: off, auto[:max=N,delay_us=U])");
}

} // namespace

StreamExecutorOptions
EngineConfig::resolve(const Network &net) const
{
    StreamExecutorOptions opts;
    opts.amc = resolve_amc(*this, net);
    require(num_threads >= 0,
            "EngineConfig: num_threads must be >= 0, got " +
                std::to_string(num_threads));
    require(pipeline_depth >= 0,
            "EngineConfig: pipeline_depth must be >= 0, got " +
                std::to_string(pipeline_depth));
    opts.num_threads = num_threads;
    opts.store_outputs = store_outputs;
    opts.pipeline_depth = pipeline_depth;
    opts.suffix_batch = resolve_batch(batch);
    // Validate the memory spec here so a typo throws at construction
    // like every other field; the Engine re-resolves it for its own
    // manager. Hibernation reconstructs session state from the
    // compressed form, so it needs a codec that actually stores one.
    const MemoryBudget mem = resolve_memory_spec(memory);
    require(!mem.hibernate || opts.amc.quantize_storage,
            "memory spec '" + memory +
                "': hibernate=on requires a quantizing storage codec "
                "(the dense precise activation of codec '" +
                codec + "' cannot be reconstructed from compressed "
                "state)");
    // The factory is shared across streams; each call builds a fresh
    // stateful policy instance. Validated eagerly by factory().
    auto make = PolicyRegistry::instance().factory(policy);
    opts.make_policy = [make](i64) { return make(); };
    return opts;
}

// --------------------------------------------------------------------
// Session

Session::Session(Engine *engine, i64 index, std::string name,
                 AmcPipeline *pipeline)
    : engine_(engine),
      index_(index),
      name_(std::move(name)),
      pipeline_(pipeline)
{
    // The session's submission strand: the scheduler serializes the
    // stateful front stages in submission order and delivers commits
    // in order; with a pool and depth > 1 it overlaps each frame's
    // CNN suffix with the next frames' front stages. Without a pool
    // every frame is processed inline during submit(), exactly the
    // legacy serial-engine behavior.
    StageSchedulerOptions opts;
    opts.depth = std::max<i64>(1, engine_->config_.pipeline_depth);
    opts.store_outputs = engine_->store_outputs_;
    // With batch=auto the suffix stage becomes enqueue-to-batcher:
    // this session's suffixes execute batched with every other
    // session's. Sessions are created under the engine mutex, which
    // serializes the batcher's lazy creation.
    opts.batcher = engine_->executor_->suffix_batcher();
    scheduler_ = std::make_unique<StageScheduler>(
        *pipeline_, engine_->executor_->pool(), opts,
        [this](FrameCommit commit) {
            record_commit(std::move(commit));
        });
}

FrameTicket
Session::submit(Tensor frame)
{
    // The gate makes {closed-check, epoch read, enqueue} one atomic
    // step against Engine::close()/reset(), which acquire it after
    // flipping their state: a submission racing teardown either
    // lands before the drain or throws — it can never be silently
    // accepted into a closing engine or carry a stale epoch into a
    // reset stream.
    MutexLock gate(submit_mutex_);
    engine_->ensure_open("Session::submit");
    require(frame.shape() == engine_->network().input_shape(),
            "session '" + name_ + "': frame shape " +
                frame.shape().str() + " does not match network input " +
                engine_->network().input_shape().str());
    FrameTicket ticket;
    ticket.session = index_;
    {
        MutexLock lock(mutex_);
        if (!has_times_) {
            first_submit_ = std::chrono::steady_clock::now();
            last_done_ = first_submit_;
            has_times_ = true;
        }
        ticket.epoch = epoch_;
    }
    // A hibernated session rehydrates before its frame enqueues: the
    // gate we hold is the same one the eviction loop try_locks, so
    // the plan cannot re-hibernate underneath the enqueue.
    hydrate_if_hibernated();
    // Enqueue outside the session mutex: without a pool the frame is
    // processed inline here, and its commit takes the mutex.
    ticket.frame = scheduler_->enqueue(std::move(frame));
    return ticket;
}

void
Session::hydrate_if_hibernated()
{
    FramePlan &plan = pipeline_->frame_plan();
    if (!plan.hibernated()) {
        return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    plan.hydrate();
    const double us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (engine_->resident_) {
        engine_->resident_->note_hydrated(index_,
                                          plan.resident_bytes(), us);
    }
}

void
Session::check_ticket(const FrameTicket &ticket) const
{
    require(ticket.valid() && ticket.session == index_,
            "session '" + name_ + "': ticket does not belong here");
    require(ticket.epoch == epoch_,
            "session '" + name_ + "': stale ticket from before a "
            "reset");
    require(ticket.frame >= done_base_,
            "session '" + name_ + "': outcome of frame " +
                std::to_string(ticket.frame) +
                " was forgotten (forget_outcomes)");
}

FrameTicket
Session::submit(const LabeledFrame &frame)
{
    return submit(frame.image);
}

std::vector<FrameTicket>
Session::submit_all(const Sequence &seq)
{
    std::vector<FrameTicket> tickets;
    tickets.reserve(seq.frames.size());
    for (const LabeledFrame &frame : seq.frames) {
        tickets.push_back(submit(frame.image));
    }
    return tickets;
}

void
Session::record_commit(FrameCommit commit)
{
    FrameOutcome outcome;
    OutcomeSink sink;
    const i64 resident_bytes = commit.resident_bytes;
    {
        MutexLock lock(mutex_);
        outcome.frame = done_base_ + static_cast<i64>(done_.size());
        if (commit.error) {
            outcome.failed = true;
            // Keep every frame's own diagnostic; error_ stays the
            // first failure, the one drain() keeps surfacing.
            frame_errors_[outcome.frame] = commit.error;
            if (!error_) {
                error_ = commit.error;
            }
        } else {
            outcome.is_key = commit.is_key;
            outcome.top1 = commit.top1;
            outcome.output_digest = commit.output_digest;
            outcome.match_error = commit.match_error;
            outcome.me_add_ops = commit.me_add_ops;
            digest_ = digest_combine(digest_, outcome.output_digest);
            ++frames_;
            if (outcome.is_key) {
                ++key_frames_;
            }
            me_add_ops_ += outcome.me_add_ops;
            if (engine_->store_outputs_) {
                outputs_.push_back(std::move(commit.output));
            }
        }
        done_.push_back(outcome);
        last_done_ = std::chrono::steady_clock::now();
        sink = outcome_sink_;
        cv_.notify_all();
    }
    // Resident accounting runs outside the session lock too — the
    // eviction walk it may trigger try_locks *other* sessions' gates.
    if (!outcome.failed && resident_bytes > 0) {
        engine_->note_commit_resident(index_, resident_bytes);
    }
    // Outside the session lock, so the sink may call poll() or
    // completed(). Commits are delivered serially in frame order
    // (the scheduler has a sole flusher), so sink calls are too.
    if (sink) {
        sink(outcome);
    }
}

void
Session::set_outcome_sink(OutcomeSink sink)
{
    MutexLock lock(mutex_);
    outcome_sink_ = std::move(sink);
}

std::optional<FrameOutcome>
Session::poll(const FrameTicket &ticket) const
{
    MutexLock lock(mutex_);
    check_ticket(ticket);
    if (ticket.frame <
        done_base_ + static_cast<i64>(done_.size())) {
        return done_[static_cast<size_t>(ticket.frame - done_base_)];
    }
    return std::nullopt;
}

FrameOutcome
Session::wait(const FrameTicket &ticket)
{
    MutexLock lock(mutex_);
    check_ticket(ticket);
    // The predicate wakes on completion, but also on an epoch bump
    // or a record trim: an Engine::reset() or forget_outcomes() from
    // another thread discards the very record this wait is blocked
    // on, so waiting purely for completion would hang forever — the
    // frame's outcome is gone, not late. Both paths notify the cv,
    // and the re-check below turns them into the same descriptive
    // stale/forgotten-ticket error poll() gives.
    while (ticket.epoch == epoch_ && ticket.frame >= done_base_ &&
           ticket.frame >=
               done_base_ + static_cast<i64>(done_.size())) {
        cv_.wait(lock);
    }
    check_ticket(ticket);
    const FrameOutcome outcome =
        done_[static_cast<size_t>(ticket.frame - done_base_)];
    if (outcome.failed) {
        const auto it = frame_errors_.find(ticket.frame);
        if (it != frame_errors_.end()) {
            std::rethrow_exception(it->second);
        }
        throw InternalError("session '" + name_ + "': frame " +
                            std::to_string(ticket.frame) +
                            " failed with no stored error");
    }
    return outcome;
}

void
Session::drain()
{
    scheduler_->drain();
    MutexLock lock(mutex_);
    // Sticky: a failed frame broke this stream's digest chain, so
    // every drain keeps failing until Engine::reset() discards it.
    if (error_) {
        std::rethrow_exception(error_);
    }
}

i64
Session::submitted() const
{
    return scheduler_->submitted();
}

i64
Session::completed() const
{
    MutexLock lock(mutex_);
    return done_base_ + static_cast<i64>(done_.size());
}

std::vector<Tensor>
Session::outputs() const
{
    MutexLock lock(mutex_);
    return outputs_;
}

StreamReport
Session::report()
{
    drain();
    MutexLock lock(mutex_);
    StreamReport row;
    row.name = name_;
    row.stream_index = index_;
    row.frames = frames_;
    row.key_frames = key_frames_;
    row.me_add_ops = me_add_ops_;
    row.digest = digest_;
    return row;
}

void
Session::forget_outcomes()
{
    drain();
    MutexLock lock(mutex_);
    done_base_ += static_cast<i64>(done_.size());
    done_.clear();
    outputs_.clear();
    // Forgotten tickets are rejected before lookup, so their
    // diagnostics can go too; error_ stays sticky for drain().
    frame_errors_.clear();
    // Wake cross-thread waiters whose record was just trimmed; their
    // re-check throws the forgotten-ticket error instead of hanging.
    cv_.notify_all();
}

void
Session::reset_record()
{
    // Hold the submit gate across the whole reset: a submit that
    // already passed the gate finishes its enqueue before we check
    // the drained invariant; one that arrives later observes the new
    // epoch and the restarted frame numbering together.
    MutexLock gate(submit_mutex_);
    // Restart the strand's frame numbering (asserts it is drained).
    scheduler_->reset_counters();
    MutexLock lock(mutex_);
    ++epoch_; // Pre-reset tickets must not match the new stream.
    done_base_ = 0;
    done_.clear();
    outputs_.clear();
    error_ = nullptr;
    frame_errors_.clear();
    digest_ = kDigestSeed;
    frames_ = 0;
    key_frames_ = 0;
    me_add_ops_ = 0;
    has_times_ = false;
    // Wake cross-thread waiters blocked on pre-reset tickets; their
    // epoch re-check throws the stale-ticket error instead of
    // sleeping forever on a record that was just discarded.
    cv_.notify_all();
}

bool
Session::time_bounds(std::chrono::steady_clock::time_point *first,
                     std::chrono::steady_clock::time_point *last) const
{
    MutexLock lock(mutex_);
    if (!has_times_) {
        return false;
    }
    *first = first_submit_;
    *last = last_done_;
    return true;
}

// --------------------------------------------------------------------
// Engine

Engine::Engine(const Network &net, EngineConfig config)
    : net_(&net),
      config_(std::move(config)),
      store_outputs_(config_.store_outputs),
      executor_(std::make_unique<StreamExecutor>(
          net, config_.resolve(net))),
      memory_budget_(resolve_memory_spec(config_.memory))
{
    if (memory_budget_.enabled) {
        resident_ =
            std::make_unique<ResidentSetManager>(memory_budget_);
    }
}

Engine::~Engine()
{
    // Strand tasks reference sessions and pipelines; nothing may be
    // in flight when members start destructing, and submissions that
    // race teardown must be rejected loudly rather than touch dying
    // state.
    try {
        close();
    } catch (...) {
        // A stream failure already surfaced (or never will); engine
        // teardown is not the place to throw.
    }
}

void
Engine::ensure_open(const char *what) const
{
    if (closed_.load(std::memory_order_acquire)) {
        throw ConfigError(std::string(what) + ": engine for network '" +
                          net_->name() +
                          "' is closed (close() was called or the "
                          "engine is being destroyed); create a new "
                          "Engine to submit more work");
    }
}

void
Engine::close()
{
    // Reject new ingestion first, then drain what is already in
    // flight; completed results stay observable through poll/wait/
    // report. Idempotent: later calls see closed_ already set and
    // only re-drain (a no-op on a drained engine).
    closed_.store(true, std::memory_order_release);
    // Wait out submits that passed their closed-check before the
    // store: each holds its session's submit gate until its frame is
    // enqueued, so acquiring every gate here means the flush below
    // sees every racing frame, and any submit arriving afterwards
    // observes closed_ under the gate and throws.
    std::vector<Session *> sessions;
    {
        MutexLock lock(mutex_);
        sessions.reserve(sessions_.size());
        for (const auto &s : sessions_) {
            sessions.push_back(s.get());
        }
    }
    for (Session *s : sessions) {
        MutexLock gate(s->submit_mutex_);
    }
    flush();
}

AmcPipeline &
Engine::pipeline_locked(i64 index)
{
    AmcPipeline &p = executor_->pipeline(index);
    while (static_cast<i64>(timings_.size()) <=
           executor_->num_pipelines() - 1) {
        const i64 i = static_cast<i64>(timings_.size());
        timings_.push_back(std::make_unique<StageTimings>());
        if (config_.collect_timings) {
            executor_->pipeline(i).set_observer(timings_.back().get());
        }
    }
    return p;
}

Session &
Engine::session(const std::string &name)
{
    MutexLock lock(mutex_);
    const auto it = session_index_.find(name);
    if (it != session_index_.end()) {
        // Existing sessions stay addressable after close() (their
        // completed work is still observable); only creation and
        // submission are rejected.
        return *sessions_[static_cast<size_t>(it->second)];
    }
    ensure_open("Engine::session");
    const i64 index = static_cast<i64>(sessions_.size());
    AmcPipeline &pipeline = pipeline_locked(index);
    sessions_.push_back(std::unique_ptr<Session>(
        new Session(this, index, name, &pipeline)));
    session_index_[name] = index;
    return *sessions_.back();
}

Session *
Engine::find_session(const std::string &name)
{
    MutexLock lock(mutex_);
    const auto it = session_index_.find(name);
    return it == session_index_.end()
               ? nullptr
               : sessions_[static_cast<size_t>(it->second)].get();
}

i64
Engine::num_sessions() const
{
    MutexLock lock(mutex_);
    return static_cast<i64>(sessions_.size());
}

i64
Engine::in_flight() const
{
    MutexLock lock(mutex_);
    i64 total = 0;
    for (const auto &s : sessions_) {
        total += s->in_flight();
    }
    return total;
}

bool
Engine::memory_pressure() const
{
    return resident_ != nullptr && resident_->over_budget();
}

void
Engine::note_commit_resident(i64 index, i64 bytes)
{
    if (!resident_) {
        return;
    }
    resident_->note_resident(index, bytes);
    if (memory_budget_.hibernate && resident_->over_budget()) {
        evict_to_budget(index);
    }
}

void
Engine::evict_to_budget(i64 protect_index)
{
    // One bounded LRU pass per call — the batch is a constant, not
    // the session count, so a 100k-session fleet pays O(1) per
    // commit. A victim is skipped (not retried) when its submit gate
    // is held or it has frames in flight, and any overshoot left when
    // the batch runs out is reclaimed by the next commit's pass. No
    // blocking lock is ever taken on a session here, so this cannot
    // deadlock against submit paths.
    constexpr i64 kVictimBatch = 32;
    const std::vector<i64> victims =
        resident_->victims(kVictimBatch, protect_index);
    for (const i64 victim : victims) {
        if (!resident_->over_budget()) {
            return;
        }
        Session *s = nullptr;
        {
            MutexLock lock(mutex_);
            if (victim >= 0 &&
                victim < static_cast<i64>(sessions_.size())) {
                s = sessions_[static_cast<size_t>(victim)].get();
            }
        }
        if (s == nullptr) {
            continue;
        }
        MutexLock gate(s->submit_mutex_, std::defer_lock);
        if (!gate.try_lock()) {
            continue; // A submit holds the gate: not idle.
        }
        if (s->in_flight() != 0) {
            continue; // Busy: not idle enough to hibernate.
        }
        FramePlan &plan = s->pipeline_->frame_plan();
        if (plan.hibernated()) {
            continue;
        }
        plan.hibernate();
        resident_->note_hibernated(victim, plan.resident_bytes());
    }
}

RunReport
Engine::base_report()
{
    RunReport report;
    report.network = net_->name();
    report.policy = config_.policy;
    report.interp = config_.interp;
    report.codec = config_.codec;
    report.kernel = config_.kernel;
    report.target = config_.target;
    report.motion = config_.motion;
    report.batch = config_.batch;
    report.memory_spec = config_.memory;
    if (resident_) {
        report.memory = resident_->stats();
    }
    report.simd_isa = simd_supported() ? simd_isa_name() : "scalar";
    report.num_threads = executor_->num_threads();
    report.pipeline_depth = config_.pipeline_depth;
    report.batching = executor_->suffix_batch_stats();
    // Per-layer kernel selection: all pipelines share one network and
    // one config, so stream 0's compiled plans describe every stream.
    if (executor_->num_pipelines() > 0) {
        report.plan = executor_->pipeline(0).plan_records();
    }
    return report;
}

RunReport
Engine::run(const std::vector<Sequence> &streams)
{
    ensure_open("Engine::run");
    flush();
    // The batch path drives pipelines directly, below the session
    // layer that hydrates on submit — wake any hibernated session
    // first so the executor never runs a front on compressed state.
    if (resident_) {
        std::vector<Session *> sessions;
        {
            MutexLock lock(mutex_);
            sessions.reserve(sessions_.size());
            for (const auto &s : sessions_) {
                sessions.push_back(s.get());
            }
        }
        for (Session *s : sessions) {
            MutexLock gate(s->submit_mutex_);
            s->hydrate_if_hibernated();
        }
    }
    MutexLock lock(mutex_);
    for (i64 i = 0; i < static_cast<i64>(streams.size()); ++i) {
        pipeline_locked(i);
    }
    // Snapshot the (lifetime-cumulative) timing and batching sinks so
    // the report's stage rows and occupancy cover exactly this run,
    // like its frames and wall_ms.
    StageTimings before;
    for (const auto &t : timings_) {
        before.merge(*t);
    }
    const SuffixBatchStats batch_before =
        executor_->suffix_batch_stats();
    const BatchResult batch = executor_->run(streams);

    RunReport report = base_report();
    report.batching =
        executor_->suffix_batch_stats().delta_from(batch_before);
    report.wall_ms = batch.wall_ms;
    report.digest = batch.digest();
    for (const StreamResult &s : batch.streams) {
        StreamReport row;
        row.name = s.name;
        row.stream_index = s.stream_index;
        row.frames = s.stats.frames;
        row.key_frames = s.stats.key_frames;
        row.me_add_ops = s.me_add_ops;
        row.digest = s.digest;
        report.frames += row.frames;
        report.key_frames += row.key_frames;
        report.me_add_ops += row.me_add_ops;
        report.streams.push_back(std::move(row));
    }
    StageTimings merged;
    for (const auto &t : timings_) {
        merged.merge(*t);
    }
    report.stages =
        stage_reports(merged.delta_from(before), report.wall_ms);
    return report;
}

RunReport
Engine::report()
{
    flush();
    // Build the per-session rows WITHOUT holding mutex_. Each row's
    // session->report() drains that session, and a commit still in
    // flight re-enters the engine through note_commit_resident →
    // evict_to_budget, which takes mutex_ — so a drain under mutex_
    // deadlocks (the commit blocked on mutex_ can never raise the
    // committed count the drain is waiting for). The flush() above
    // already quiesced every session, so the rows are stable; the
    // snapshot matches flush()'s own pattern.
    std::vector<Session *> sessions;
    {
        MutexLock lock(mutex_);
        sessions.reserve(sessions_.size());
        for (const auto &s : sessions_) {
            sessions.push_back(s.get());
        }
    }
    RunReport report = base_report();
    report.digest = kDigestSeed;
    bool any_time = false;
    std::chrono::steady_clock::time_point first{};
    std::chrono::steady_clock::time_point last{};
    for (Session *session : sessions) {
        StreamReport row = session->report();
        report.frames += row.frames;
        report.key_frames += row.key_frames;
        report.me_add_ops += row.me_add_ops;
        report.digest = digest_combine(report.digest, row.digest);
        report.streams.push_back(std::move(row));

        std::chrono::steady_clock::time_point f, l;
        if (session->time_bounds(&f, &l)) {
            if (!any_time || f < first) {
                first = f;
            }
            if (!any_time || l > last) {
                last = l;
            }
            any_time = true;
        }
    }
    if (any_time) {
        report.wall_ms =
            std::chrono::duration<double, std::milli>(last - first)
                .count();
    }
    StageTimings merged;
    {
        MutexLock lock(mutex_);
        for (const auto &t : timings_) {
            merged.merge(*t);
        }
    }
    report.stages = stage_reports(merged, report.wall_ms);
    return report;
}

void
Engine::flush()
{
    std::vector<Session *> sessions;
    {
        MutexLock lock(mutex_);
        sessions.reserve(sessions_.size());
        for (const auto &s : sessions_) {
            sessions.push_back(s.get());
        }
    }
    // Drain without holding the engine mutex: strand tasks only take
    // their session's mutex, so new sessions can still be created
    // while we wait. Surface the first stream failure after every
    // session has drained.
    std::exception_ptr error;
    for (Session *s : sessions) {
        try {
            s->drain();
        } catch (...) {
            if (!error) {
                error = std::current_exception();
            }
        }
    }
    if (error) {
        std::rethrow_exception(error);
    }
}

void
Engine::reset()
{
    // Snapshot the session list, then drain and reset the per-session
    // records WITHOUT holding mutex_. Two deadlocks hide in the
    // holding-mutex_ shape this replaced: (a) a commit still in
    // flight re-enters the engine via note_commit_resident →
    // evict_to_budget, which takes mutex_, so a drain under mutex_
    // waits on a commit that waits on us; (b) reset_record() acquires
    // the session's submit gate, and an inline submit holds that gate
    // while its commit's eviction pass takes mutex_ — acquiring the
    // gate under mutex_ is that same pair in the opposite order. See
    // docs/static_analysis.md (lock ordering).
    std::vector<Session *> sessions;
    {
        MutexLock lock(mutex_);
        sessions.reserve(sessions_.size());
        for (const auto &s : sessions_) {
            sessions.push_back(s.get());
        }
    }
    // Drain but swallow stream failures: reset discards the very
    // state (records, sticky errors) a failure poisoned.
    for (Session *s : sessions) {
        try {
            s->drain();
        } catch (...) {
        }
    }
    {
        MutexLock lock(mutex_);
        executor_->reset_streams();
        for (const auto &t : timings_) {
            t->reset();
        }
    }
    for (Session *s : sessions) {
        s->reset_record();
    }
    // Stream state is gone (FramePlan::reset released it), so the
    // resident accounting restarts from zero too.
    if (memory_budget_.enabled) {
        resident_ =
            std::make_unique<ResidentSetManager>(memory_budget_);
    }
}

} // namespace eva2
