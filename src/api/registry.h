/**
 * @file
 * String-keyed registries behind the eva2::Engine serving API.
 *
 * A serving process configures itself from flags, config files, or
 * RPC payloads — strings, not C++ enums and std::function factories.
 * Every tunable component therefore resolves through a registry from
 * a compact spec string of the form
 *
 *     kind:key=value,key=value
 *
 * e.g. `adaptive_error:th=0.05,max_gap=8`, `static:interval=4`,
 * `rle_q88:prune=0.12`, `bilinear`. Unknown kinds and unknown or
 * malformed parameters fail loudly with a ConfigError naming the
 * alternatives, so a typo in a deployment config cannot silently
 * select a default.
 *
 * Registries ship with the built-in entries and accept additional
 * registrations (tests and downstream embedders). Registration is
 * not thread-safe; perform it at startup. Lookup is const and safe
 * to call concurrently.
 */
#ifndef EVA2_API_REGISTRY_H
#define EVA2_API_REGISTRY_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/amc_pipeline.h"
#include "core/keyframe_policy.h"
#include "core/warp.h"

namespace eva2 {

/** A parsed `kind:key=value,...` component spec. */
struct ComponentSpec
{
    std::string kind;
    /** Parameters in spec order (duplicates rejected at parse). */
    std::vector<std::pair<std::string, std::string>> params;

    bool has(const std::string &key) const;

    /** String parameter, or `fallback` when absent. */
    std::string str(const std::string &key,
                    const std::string &fallback = "") const;

    /** Floating-point parameter; throws ConfigError on bad syntax. */
    double number(const std::string &key, double fallback) const;

    /** Integer parameter; throws ConfigError on bad syntax. */
    i64 integer(const std::string &key, i64 fallback) const;

    /**
     * Reject parameters outside the allowed set — catches typos like
     * `threshold=` where `th=` was meant.
     */
    void allow_only(const std::vector<std::string> &keys) const;

    /** The canonical `kind:k=v,...` string this spec was parsed from. */
    std::string text;
};

/** Parse a component spec string; throws ConfigError on bad syntax. */
ComponentSpec parse_component_spec(const std::string &text);

/**
 * Key-frame policy registry. A spec resolves to a *factory* rather
 * than an instance because policies are stateful and per-stream: the
 * Engine calls the factory once per stream.
 */
class PolicyRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<KeyFramePolicy>(
        const ComponentSpec &spec)>;

    /** The process-wide registry with built-ins preloaded. */
    static PolicyRegistry &instance();

    /** Register (or replace) a policy kind. */
    void add(const std::string &kind, Factory factory);

    bool contains(const std::string &kind) const;

    /** Registered kind names, sorted. */
    std::vector<std::string> names() const;

    /** Build one policy instance from a spec string. */
    std::unique_ptr<KeyFramePolicy>
    make(const std::string &spec) const;

    /**
     * A reusable zero-argument factory for a spec — the shape
     * eval/experiment's sweep harnesses consume. The spec is parsed
     * and validated once, eagerly, so a bad string fails here and
     * not on stream N.
     */
    std::function<std::unique_ptr<KeyFramePolicy>()>
    factory(const std::string &spec) const;

  private:
    PolicyRegistry();

    std::map<std::string, Factory> entries_;
};

/**
 * Interpolation-mode registry: `bilinear` (Section II-C3's choice)
 * or `nearest` (the cheap alternative it is compared against).
 */
class InterpRegistry
{
  public:
    static InterpRegistry &instance();

    void add(const std::string &name, InterpMode mode);

    std::vector<std::string> names() const;

    /** Resolve a name; throws ConfigError listing alternatives. */
    InterpMode resolve(const std::string &name) const;

  private:
    InterpRegistry();

    std::map<std::string, InterpMode> entries_;
};

/**
 * CNN execution kernel registry. A kernel spec configures how the
 * compiled execution plans run the network's layers; its applier
 * rewrites the PlanOptions embedded in an AmcOptions.
 *
 * Built-ins:
 *   `gemm[:fuse=0|1]`   im2col + blocked-GEMM convolutions
 *                       (bit-identical to direct; default), with
 *                       conv+ReLU fusion on unless fuse=0.
 *   `direct[:fuse=0|1]` the seed's direct convolution loop — the
 *                       bit-exactness reference; fusion off unless
 *                       fuse=1.
 */
class KernelRegistry
{
  public:
    using Applier =
        std::function<void(const ComponentSpec &spec, PlanOptions &plan)>;

    static KernelRegistry &instance();

    void add(const std::string &kind, Applier applier);

    bool contains(const std::string &kind) const;

    std::vector<std::string> names() const;

    /** Apply a kernel spec to plan options. */
    void apply(const std::string &spec, PlanOptions &plan) const;

  private:
    KernelRegistry();

    std::map<std::string, Applier> entries_;
};

/**
 * Key-activation storage codec registry. A codec spec configures how
 * the key frame activation buffer stores the target activation; its
 * applier rewrites the storage-related fields of an AmcOptions
 * (quantize_storage, storage_prune_rel).
 *
 * Built-ins:
 *   `rle_q88[:prune=R]`  Q8.8 RLE with near-zero pruning at R times
 *                        the activation RMS (the hardware's codec;
 *                        default prune 0.12).
 *   `dense`              no quantization, no pruning — isolates
 *                        algorithmic error in experiments.
 */
class CodecRegistry
{
  public:
    using Applier =
        std::function<void(const ComponentSpec &spec, AmcOptions &amc)>;

    static CodecRegistry &instance();

    void add(const std::string &kind, Applier applier);

    bool contains(const std::string &kind) const;

    std::vector<std::string> names() const;

    /** Apply a codec spec to pipeline options. */
    void apply(const std::string &spec, AmcOptions &amc) const;

  private:
    CodecRegistry();

    std::map<std::string, Applier> entries_;
};

} // namespace eva2

#endif // EVA2_API_REGISTRY_H
