/**
 * @file
 * The unified EVA2 serving API: Engine, Session, EngineConfig.
 *
 * An Engine is the one object a serving process holds per network. It
 * is configured declaratively — every component is a registry spec
 * string (`policy = "adaptive_error:th=0.05,max_gap=8"`), so a config
 * file or RPC payload can select policies, interpolation, and storage
 * codecs without touching C++ types — and it offers two ingestion
 * paths over the same per-stream AMC state:
 *
 *  - the batch path, `run(streams)`: process whole Sequence chunks
 *    across all streams (the legacy StreamExecutor shape), and
 *  - the frame path, `Session::submit(frame) -> FrameTicket` plus
 *    `poll()`/`wait()`: feed one frame of one live feed at a time,
 *    the way frames actually arrive from cameras.
 *
 * Both paths drive the same internal execution layer (one AmcPipeline
 * per stream behind a StreamExecutor), so a stream fed frame-by-frame
 * produces output digests bit-identical to the same frames fed as one
 * batch. Results come back as a structured RunReport — per-stream
 * stats, chained digests, RFBME op counts, per-stage timings from the
 * instrumentation hook layer — with JSON serialization.
 *
 * Threading model: sessions are independent strands. submit() may be
 * called from any thread; frames of one session are processed
 * strictly in submission order (on the engine's worker pool, or
 * inline when num_threads == 1), while different sessions run
 * concurrently. Batch run(), report(), and reset() first drain all
 * in-flight session work; do not call them concurrently with
 * submissions to the streams they touch.
 */
#ifndef EVA2_API_ENGINE_H
#define EVA2_API_ENGINE_H

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/run_report.h"
#include "runtime/stage_scheduler.h"
#include "runtime/stream_executor.h"
#include "util/mutex.h"

namespace eva2 {

/**
 * Declarative engine configuration. String fields are registry specs
 * resolved (and validated) when the Engine is constructed; a typo or
 * out-of-range value throws ConfigError with the alternatives spelled
 * out instead of silently running a default.
 */
struct EngineConfig
{
    /** Key-frame policy spec (PolicyRegistry). */
    std::string policy = "every_frame";
    /** Warp interpolation spec (InterpRegistry). */
    std::string interp = "bilinear";
    /** Key-activation storage codec spec (CodecRegistry). */
    std::string codec = "rle_q88";
    /**
     * CNN execution kernel spec (KernelRegistry): how the compiled
     * plans run the network. `gemm` (im2col + blocked GEMM, fused
     * conv+ReLU) is bit-identical to `direct` (the seed reference)
     * and roughly twice as fast on serving shapes.
     */
    std::string kernel = "gemm";
    /** AMC target layer: "last_spatial", "early", or "layer:<i>". */
    std::string target = "last_spatial";
    /** Predicted frames: "compensation" (warp) or "memoization". */
    std::string motion = "compensation";
    /**
     * Cross-stream suffix batching spec:
     *
     *   "off"                        each stream's CNN suffix runs as
     *                                its own task (the legacy shape);
     *   "auto[:max=N,delay_us=U]"    suffix-ready activations from
     *                                all streams collect into shared
     *                                BatchedExecutionPlan runs of up
     *                                to N samples (default 8), a
     *                                partial batch dispatching once
     *                                its oldest item has waited U
     *                                microseconds (default 200).
     *
     * Batching changes only the execution shape: per-stream digests
     * are bit-identical to "off". RunReport::batching reports how
     * full the batches actually ran.
     */
    std::string batch = "off";
    /**
     * Resident-session memory budget spec (runtime/resident_set.h):
     *
     *   "off"                       no tracking (the default);
     *   "budget_mb:N"               track per-session resident bytes
     *                               against a hard N MB cap — over it,
     *                               the serving layer sheds new frames
     *                               (SHED/memory) instead of growing;
     *   "budget_mb:N,hibernate=on"  additionally LRU-hibernate idle
     *                               sessions down to compressed-only
     *                               state (the RLE key activation plus
     *                               Q8.8 key pixels) to get back under
     *                               budget; a hibernated session
     *                               rehydrates transparently on its
     *                               next submit. Requires a quantizing
     *                               codec (hibernation reconstructs
     *                               state from the compressed form, so
     *                               codec=dense cannot round-trip).
     *
     * Digests are unaffected either way: hibernation stores exactly
     * the compressed representation the codec already quantized to.
     */
    std::string memory = "off";
    i64 search_radius = 28; ///< RFBME search radius in pixels (> 0).
    i64 search_stride = 2;  ///< RFBME search step in pixels (> 0).
    /** Stream-level workers; 1 = serial inline, 0 = hardware default. */
    i64 num_threads = 0;
    /**
     * Frames of one stream software-pipelined across the FramePlan
     * stage graph, up to this many in flight per stream: frame N+1's
     * motion estimation overlaps frame N's CNN suffix on the worker
     * pool. <= 1 runs every frame's stages strictly serially (the
     * legacy shape). Output digests are bit-identical either way.
     */
    i64 pipeline_depth = 3;
    /** Retain every output tensor (tests; memory-heavy). */
    bool store_outputs = false;
    /** Feed the per-stage instrumentation layer (cheap; default on). */
    bool collect_timings = true;

    /**
     * Resolve every spec against the registries and the network into
     * executor options; throws ConfigError on any invalid field.
     */
    StreamExecutorOptions resolve(const Network &net) const;

    /** Validation without construction: resolve() and discard. */
    void
    validate(const Network &net) const
    {
        (void)resolve(net);
    }
};

/** Handle for one submitted frame of one session. */
struct FrameTicket
{
    i64 session = -1; ///< Owning session's stream index.
    i64 frame = -1;   ///< Per-session submission sequence number.
    i64 epoch = 0;    ///< Session reset generation; stale tickets
                      ///< (issued before an Engine::reset) are
                      ///< rejected instead of matching new frames.

    bool valid() const { return session >= 0 && frame >= 0; }
};

/** The completed record of one submitted frame. */
struct FrameOutcome
{
    i64 frame = -1; ///< Matches the ticket's frame number.
    bool is_key = false;
    i64 top1 = -1;          ///< Argmax of the network output.
    u64 output_digest = 0;  ///< Digest of the raw output bits.
    double match_error = 0; ///< RFBME mean error (0 on key-only path).
    i64 me_add_ops = 0;     ///< RFBME arithmetic ops for this frame.
    bool failed = false;    ///< Processing threw; see Session::wait.
};

class Engine;

/**
 * A live per-stream handle owning the submission strand for one
 * camera feed. Created by Engine::session(); pointer-stable for the
 * engine's lifetime.
 */
class Session
{
  public:
    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    const std::string &name() const { return name_; }

    /** The engine stream index this session feeds. */
    i64 index() const { return index_; }

    /**
     * Enqueue one frame for processing. Thread-safe; frames of this
     * session are processed strictly in submission order. The frame's
     * shape is validated here, on the calling thread.
     */
    FrameTicket submit(Tensor frame);

    /** Convenience overload for labelled synthetic frames. */
    FrameTicket submit(const LabeledFrame &frame);

    /** Submit every frame of a sequence, in order. */
    std::vector<FrameTicket> submit_all(const Sequence &seq);

    /**
     * Non-blocking completion check: the outcome once the frame has
     * been processed, std::nullopt while it is still queued/running.
     */
    std::optional<FrameOutcome> poll(const FrameTicket &ticket) const;

    /**
     * Block until the frame completes. Throws if the frame failed.
     *
     * Failure semantics: submit() validates frame shape eagerly, so
     * a frame can only fail on an internal error. A failed frame
     * poisons the session — it contributes nothing to the digest,
     * stats, or outputs() (which stay aligned with the *successful*
     * outcomes), and the stored error is sticky: wait() on the
     * failed ticket, drain(), and engine report()/flush() all keep
     * rethrowing it until Engine::reset() discards the stream.
     *
     * Cross-thread semantics (the IO-loop shape: one thread submits,
     * another waits, a third may tear the engine down): wait() never
     * hangs on a ticket that can no longer complete. Engine::close()
     * drains, so the outcome arrives and is returned; Engine::reset()
     * or forget_outcomes() discarding the record wakes this waiter
     * and throws the same descriptive ConfigError poll() gives for a
     * stale/forgotten ticket. Only engine *destruction* must still be
     * ordered after all waiters return.
     */
    FrameOutcome wait(const FrameTicket &ticket);

    /** Block until every submitted frame completes; rethrows errors. */
    void drain() EXCLUDES(mutex_);

    i64 submitted() const;
    i64 completed() const;

    /** Frames submitted but not yet completed (occupancy). */
    i64
    in_flight() const
    {
        return submitted() - completed();
    }

    /**
     * Per-outcome completion hook, the push-style alternative to
     * polling tickets: invoked once per frame, in frame order, right
     * after the outcome becomes observable — on whichever thread
     * delivered the commit (an engine worker, or the submitting
     * thread when the engine runs inline). The net::Server IO loop
     * uses this to stream OUTCOME messages without polling thousands
     * of tickets.
     *
     * The sink runs outside the session's internal lock, so it may
     * call poll()/completed(); it must not block on wait()/drain()
     * of this session (it would wait on itself) and must be cleared
     * (set to nullptr, after a drain) before anything it captures
     * dies. Failed frames are delivered with outcome.failed set
     * rather than thrown.
     */
    using OutcomeSink = std::function<void(const FrameOutcome &)>;
    void set_outcome_sink(OutcomeSink sink);

    /**
     * Drop the per-frame outcome records (and retained outputs)
     * accumulated so far, keeping the cumulative stats and digest
     * chain intact. Long-lived serving loops call this periodically
     * to bound memory — outcomes otherwise accumulate for every
     * frame ever submitted. Drains first; poll()/wait() on a
     * forgotten ticket throws ConfigError.
     */
    void forget_outcomes();

    /**
     * This session's cumulative report row (drains first): frames,
     * key frames, RFBME ops, and the chained output digest that a
     * batch run over the same frames reproduces bit-identically.
     */
    StreamReport report();

    /**
     * Snapshot of the retained output tensors in submission order;
     * only meaningful with EngineConfig::store_outputs, after
     * drain(). Returned by value: the record is guarded and may be
     * trimmed (forget_outcomes) or reset concurrently, so a reference
     * into it could not be made safe.
     */
    std::vector<Tensor> outputs() const;

  private:
    friend class Engine;

    Session(Engine *engine, i64 index, std::string name,
            AmcPipeline *pipeline);

    /** Commit sink: record one pipelined frame (in frame order). */
    void record_commit(FrameCommit commit);

    /**
     * Rehydrate this session's plan if it was hibernated, recording
     * the latency. The submit gate is what serializes this against
     * the Engine's eviction loop — it hibernates only under a
     * try_lock of this same gate.
     */
    void hydrate_if_hibernated() REQUIRES(submit_mutex_);

    /** Reject foreign, stale (pre-reset), or forgotten tickets. */
    void check_ticket(const FrameTicket &ticket) const
        REQUIRES(mutex_);

    /** Drop cumulative records for an engine-level reset. */
    void reset_record();

    /** First-submit/last-done bounds, if any work was recorded. */
    bool time_bounds(std::chrono::steady_clock::time_point *first,
                     std::chrono::steady_clock::time_point *last) const;

    Engine *engine_;
    i64 index_;
    std::string name_;
    AmcPipeline *pipeline_;

    /**
     * Serializes submit() against Engine::close()/reset(): a submit
     * holds this across its closed-check, epoch read, and enqueue,
     * and close()/reset() acquire it after flipping their state, so
     * a submission racing teardown either completes before the drain
     * or observes the closed/reset state and fails loudly. Ordered
     * before mutex_ (a submit's inline commit takes mutex_ while the
     * gate is held; nothing takes the gate while holding mutex_). It
     * guards no data directly — it is a serialization gate, which is
     * why the fields below name only mutex_.
     */
    mutable Mutex submit_mutex_;

    mutable Mutex mutex_;
    CondVar cv_;
    i64 epoch_ GUARDED_BY(mutex_) = 0; ///< Bumped by Engine::reset().
    /** Frame number of done_[0] (after trims). */
    i64 done_base_ GUARDED_BY(mutex_) = 0;
    std::vector<FrameOutcome> done_ GUARDED_BY(mutex_);
    std::vector<Tensor> outputs_ GUARDED_BY(mutex_);
    /** First failure (drain rethrows it). */
    std::exception_ptr error_ GUARDED_BY(mutex_);
    /** Every failed frame's own diagnostic, by frame number. */
    std::map<i64, std::exception_ptr> frame_errors_ GUARDED_BY(mutex_);
    /** Per-commit push hook (may be null). */
    OutcomeSink outcome_sink_ GUARDED_BY(mutex_);

    // Cumulative stream accounting (mirrors StreamResult).
    u64 digest_ GUARDED_BY(mutex_) = kDigestSeed;
    i64 frames_ GUARDED_BY(mutex_) = 0;
    i64 key_frames_ GUARDED_BY(mutex_) = 0;
    i64 me_add_ops_ GUARDED_BY(mutex_) = 0;

    bool has_times_ GUARDED_BY(mutex_) = false;
    std::chrono::steady_clock::time_point first_submit_
        GUARDED_BY(mutex_);
    std::chrono::steady_clock::time_point last_done_
        GUARDED_BY(mutex_);

    /**
     * This session's submission strand: serializes the stateful
     * front stages in submission order and (with a pool) overlaps
     * each frame's CNN suffix with the next frames' fronts.
     * Declared last: its destructor drains in-flight commits into
     * the members above, so it must be destroyed before them.
     */
    std::unique_ptr<StageScheduler> scheduler_;
};

/**
 * The unified serving entry point: one network, N streams, both
 * batch and frame-level ingestion, structured reporting.
 */
class Engine
{
  public:
    /**
     * @param net    Shared read-only network; must outlive the engine.
     * @param config Declarative configuration; resolved and validated
     *               here (throws ConfigError on any bad field).
     */
    explicit Engine(const Network &net, EngineConfig config = {});

    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Get or create the session named `name`. New sessions take the
     * next free stream index (creation order). Thread-safe; the
     * returned reference is stable for the engine's lifetime.
     */
    Session &session(const std::string &name);

    /** The session named `name`, or null if never created. */
    Session *find_session(const std::string &name);

    i64 num_sessions() const;

    /**
     * Total frames submitted but not yet completed across all
     * sessions — the occupancy signal the serving layer's load
     * shedding and drain logic watch. Racy by nature (sessions keep
     * moving); exact once ingestion has stopped.
     */
    i64 in_flight() const;

    /**
     * Batch path: process sequence i on stream i's pipeline, exactly
     * like the legacy StreamExecutor::run. Drains all sessions first.
     * Stream state persists across calls, so successive chunks of the
     * same feeds continue their AMC state.
     */
    RunReport run(const std::vector<Sequence> &streams);

    /**
     * Aggregate report over everything the *sessions* have processed
     * so far (drains first). Per-stream digests chain in session
     * index order, matching a batch run over the same frames.
     */
    RunReport report();

    /**
     * Drain all sessions' in-flight work; rethrows the first error.
     * Must not hold mutex_: a commit still in flight re-enters the
     * engine through note_commit_resident → evict_to_budget, which
     * takes mutex_ — draining under it deadlocks.
     */
    void flush() EXCLUDES(mutex_);

    /**
     * Reset all stream state for an independent run: pipelines, the
     * sessions' cumulative records, and stage timings. Sessions stay
     * valid. Drains first.
     */
    void reset();

    /**
     * Permanently close the engine for ingestion: drains all
     * in-flight work, then rejects every later Session::submit(),
     * Engine::run(), and session creation with a descriptive
     * ConfigError instead of racing engine teardown. Idempotent;
     * completed work stays observable (poll/wait/report). The
     * destructor closes implicitly.
     */
    void close();

    /** True once close() (or destruction) has begun. */
    bool closed() const { return closed_.load(); }

    const EngineConfig &config() const { return config_; }
    const Network &network() const { return *net_; }

    /**
     * The resident-session memory manager, or null with memory=off.
     * Read-only counters for tests and benches; the Engine itself is
     * the only writer.
     */
    const ResidentSetManager *resident_manager() const
    {
        return resident_.get();
    }

    /**
     * True when a memory budget is set and tracked resident bytes
     * still exceed it — i.e. hibernation is off or could not reclaim
     * enough. The serving layer sheds new frames while this holds.
     */
    bool memory_pressure() const;

    /** Effective stream-level worker count. */
    i64 num_threads() const { return executor_->num_threads(); }

  private:
    friend class Session;

    /**
     * The pipeline backing stream `index`, with its instrumentation
     * observer installed; creates on demand.
     */
    AmcPipeline &pipeline_locked(i64 index) REQUIRES(mutex_);

    /** Throw a descriptive ConfigError when the engine is closed. */
    void ensure_open(const char *what) const;

    /**
     * A frame of session `index` committed with `bytes` resident:
     * update the manager, then LRU-hibernate other idle sessions
     * while over budget (hibernate=on only). Called from the commit
     * path with no locks held.
     */
    void note_commit_resident(i64 index, i64 bytes) EXCLUDES(mutex_);

    /** Hibernate LRU-idle sessions until under budget or no victims. */
    void evict_to_budget(i64 protect_index) EXCLUDES(mutex_);

    RunReport base_report();

    const Network *net_;
    EngineConfig config_;
    bool store_outputs_;
    std::atomic<bool> closed_{false};
    std::unique_ptr<StreamExecutor> executor_;
    /** Resolved memory= spec; disabled ⇒ resident_ is null. */
    MemoryBudget memory_budget_;
    std::unique_ptr<ResidentSetManager> resident_;

    /**
     * Guards the session/timing tables. Lock ordering (see
     * docs/static_analysis.md): a submit gate may be held when a
     * commit takes mutex_ (inline engines), so mutex_ must never be
     * held while acquiring a gate or draining a session — that is the
     * deadlock report()/reset() used to have.
     */
    mutable Mutex mutex_;
    std::vector<std::unique_ptr<StageTimings>> timings_
        GUARDED_BY(mutex_);
    std::vector<std::unique_ptr<Session>> sessions_
        GUARDED_BY(mutex_);
    std::map<std::string, i64> session_index_ GUARDED_BY(mutex_);
};

} // namespace eva2

#endif // EVA2_API_ENGINE_H
