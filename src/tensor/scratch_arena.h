/**
 * @file
 * Reusable activation storage for planned CNN execution.
 *
 * A ScratchArena owns a small set of slot tensors that compiled
 * ExecutionPlans cycle activations through (ping-pong between two
 * activation slots, plus a packing-buffer slot for the im2col conv
 * kernel). Slots grow to the largest shape ever requested and are
 * then reshaped allocation-free (`Tensor::reshape_to`), so a plan
 * executing frame after frame performs zero steady-state heap
 * allocations.
 *
 * Ownership model: one arena per worker thread. Arenas are not
 * synchronized — a pipeline runs on exactly one thread at a time, and
 * the runtime's stream-level workers each use their own thread's
 * arena (`for_current_thread`), so any number of streams share a
 * bounded O(threads x largest-activation) memory footprint instead of
 * O(streams).
 */
#ifndef EVA2_TENSOR_SCRATCH_ARENA_H
#define EVA2_TENSOR_SCRATCH_ARENA_H

#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace eva2 {

/** A growable set of reusable slot tensors (see file comment). */
class ScratchArena
{
  public:
    ScratchArena() = default;

    ScratchArena(const ScratchArena &) = delete;
    ScratchArena &operator=(const ScratchArena &) = delete;

    /**
     * The slot tensor with the given id, reshaped to `shape`. Slots
     * are created on first use; tensor addresses are stable across
     * later slot() calls (plans hold references to several slots at
     * once). Contents are unspecified — callers fully overwrite.
     */
    Tensor &
    slot(i64 id, const Shape &shape)
    {
        // Per-frame hot path: no message construction on success.
        if (id < 0) {
            throw ConfigError("scratch arena: negative slot id");
        }
        while (static_cast<i64>(slots_.size()) <= id) {
            slots_.push_back(std::make_unique<Tensor>());
        }
        Tensor &t = *slots_[static_cast<size_t>(id)];
        t.reshape_to(shape);
        return t;
    }

    /** The slot tensor if it exists, else null (aliasing checks). */
    const Tensor *
    peek(i64 id) const
    {
        if (id < 0 || id >= static_cast<i64>(slots_.size())) {
            return nullptr;
        }
        return slots_[static_cast<size_t>(id)].get();
    }

    /**
     * Pre-create slots [0, count) as empty tensors. An arena shared
     * across threads with per-slot ownership (the FramePlan slot
     * ring: each in-flight frame owns one slot) must create every
     * slot up front — slot() growing the slot vector while another
     * thread peek()s it would race on the vector's buffer. Slot
     * *contents* need no such care; distinct slots are distinct
     * tensors.
     */
    void
    ensure_slots(i64 count)
    {
        while (static_cast<i64>(slots_.size()) < count) {
            slots_.push_back(std::make_unique<Tensor>());
        }
    }

    /** Slots created so far. */
    i64 num_slots() const { return static_cast<i64>(slots_.size()); }

    /** Bytes currently held across all slot buffers. */
    u64
    bytes_reserved() const
    {
        u64 bytes = 0;
        for (const auto &t : slots_) {
            bytes += static_cast<u64>(t->size()) * sizeof(float);
        }
        return bytes;
    }

    /** Release all slot storage (arenas rarely need this). */
    void clear() { slots_.clear(); }

    /**
     * Release every slot's buffer while keeping the slot tensors
     * themselves alive — move-assigning an empty Tensor frees the
     * heap buffer but the unique_ptr (and thus the address plans and
     * readers hold) is untouched. This is what stream reset and
     * session hibernation use to return slot memory without violating
     * the address-stability contract of slot()/peek().
     */
    void
    release_slots()
    {
        for (auto &t : slots_) {
            *t = Tensor();
        }
    }

    /**
     * The calling thread's arena, created lazily. Worker threads of
     * the runtime's pools each get their own instance, which is what
     * bounds planned-execution memory by the worker count; it is
     * destroyed at thread exit.
     */
    static ScratchArena &for_current_thread();

  private:
    std::vector<std::unique_ptr<Tensor>> slots_;
};

} // namespace eva2

#endif // EVA2_TENSOR_SCRATCH_ARENA_H
