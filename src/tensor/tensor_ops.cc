#include "tensor/tensor_ops.h"

#include <cmath>
#include <cstring>
#include <limits>

namespace eva2 {

Tensor
translate(const Tensor &t, i64 dy, i64 dx)
{
    Tensor out(t.shape());
    for (i64 c = 0; c < t.channels(); ++c) {
        for (i64 y = 0; y < t.height(); ++y) {
            i64 sy = y - dy;
            if (sy < 0 || sy >= t.height()) {
                continue;
            }
            for (i64 x = 0; x < t.width(); ++x) {
                i64 sx = x - dx;
                if (sx < 0 || sx >= t.width()) {
                    continue;
                }
                out.at(c, y, x) = t.at(c, sy, sx);
            }
        }
    }
    return out;
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    require(a.shape() == b.shape(),
            "add: shape mismatch " + a.shape().str() + " vs " +
                b.shape().str());
    Tensor out(a.shape());
    for (i64 i = 0; i < a.size(); ++i) {
        out[i] = a[i] + b[i];
    }
    return out;
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    require(a.shape() == b.shape(),
            "sub: shape mismatch " + a.shape().str() + " vs " +
                b.shape().str());
    Tensor out(a.shape());
    for (i64 i = 0; i < a.size(); ++i) {
        out[i] = a[i] - b[i];
    }
    return out;
}

Tensor
scale(const Tensor &t, float s)
{
    Tensor out(t.shape());
    for (i64 i = 0; i < t.size(); ++i) {
        out[i] = t[i] * s;
    }
    return out;
}

Tensor
relu(const Tensor &t)
{
    Tensor out(t.shape());
    for (i64 i = 0; i < t.size(); ++i) {
        out[i] = t[i] > 0.0f ? t[i] : 0.0f;
    }
    return out;
}

double
max_abs_diff(const Tensor &a, const Tensor &b)
{
    require(a.shape() == b.shape(), "max_abs_diff: shape mismatch");
    double m = 0.0;
    for (i64 i = 0; i < a.size(); ++i) {
        m = std::max(m, std::fabs(static_cast<double>(a[i]) - b[i]));
    }
    return m;
}

double
mean_abs_diff(const Tensor &a, const Tensor &b)
{
    require(a.shape() == b.shape(), "mean_abs_diff: shape mismatch");
    if (a.empty()) {
        return 0.0;
    }
    double acc = 0.0;
    for (i64 i = 0; i < a.size(); ++i) {
        acc += std::fabs(static_cast<double>(a[i]) - b[i]);
    }
    return acc / static_cast<double>(a.size());
}

double
sum(const Tensor &t)
{
    double acc = 0.0;
    for (i64 i = 0; i < t.size(); ++i) {
        acc += t[i];
    }
    return acc;
}

double
sum_squares(const float *x, i64 n)
{
    double acc[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
    i64 i = 0;
    for (; i + 8 <= n; i += 8) {
        for (i64 l = 0; l < 8; ++l) {
            const double v = static_cast<double>(x[i + l]);
            acc[l] += v * v;
        }
    }
    for (; i < n; ++i) {
        const double v = static_cast<double>(x[i]);
        acc[i % 8] += v * v;
    }
    const double s01 = acc[0] + acc[1];
    const double s23 = acc[2] + acc[3];
    const double s45 = acc[4] + acc[5];
    const double s67 = acc[6] + acc[7];
    return (s01 + s23) + (s45 + s67);
}

double
sum_squares(const Tensor &t)
{
    return sum_squares(t.data().data(), t.size());
}

double
zero_fraction(const Tensor &t, float threshold)
{
    if (t.empty()) {
        return 0.0;
    }
    i64 zeros = 0;
    for (i64 i = 0; i < t.size(); ++i) {
        if (std::fabs(t[i]) <= threshold) {
            ++zeros;
        }
    }
    return static_cast<double>(zeros) / static_cast<double>(t.size());
}

bool
all_close(const Tensor &a, const Tensor &b, double tol)
{
    if (a.shape() != b.shape()) {
        return false;
    }
    return max_abs_diff(a, b) <= tol;
}

namespace {

/**
 * Map a float's bit pattern to a monotonically ordered integer:
 * negative floats mirror below zero so that consecutive representable
 * values are consecutive integers across the whole range (the
 * standard trick behind ulp distance).
 */
i64
ordered_bits(float x)
{
    i32 bits;
    static_assert(sizeof(bits) == sizeof(x), "float is not 32-bit");
    std::memcpy(&bits, &x, sizeof(bits));
    const i64 b = static_cast<i64>(bits);
    if (b >= 0) {
        return b;
    }
    // Negative floats: signed bits run from INT32_MIN (-0.0) down the
    // magnitude scale, so subtracting from INT32_MIN mirrors them
    // below zero with -0.0 landing exactly on 0 (= +0.0).
    return static_cast<i64>(std::numeric_limits<i32>::min()) - b;
}

} // namespace

i64
ulp_diff(float a, float b)
{
    if (std::isnan(a) || std::isnan(b)) {
        return std::numeric_limits<i64>::max();
    }
    if (std::isinf(a) || std::isinf(b)) {
        return a == b ? 0 : std::numeric_limits<i64>::max();
    }
    const i64 d = ordered_bits(a) - ordered_bits(b);
    return d >= 0 ? d : -d;
}

i64
max_ulp_diff(const Tensor &a, const Tensor &b)
{
    return divergence(a, b).max_ulp;
}

DivergenceReport
divergence(const Tensor &a, const Tensor &b)
{
    require(a.shape() == b.shape(), "divergence: shape mismatch " +
                                        a.shape().str() + " vs " +
                                        b.shape().str());
    DivergenceReport rep;
    for (i64 i = 0; i < a.size(); ++i) {
        const i64 u = ulp_diff(a[i], b[i]);
        if (u > rep.max_ulp) {
            rep.max_ulp = u;
            rep.worst_index = i;
        }
        rep.max_abs =
            std::max(rep.max_abs,
                     std::fabs(static_cast<double>(a[i]) - b[i]));
    }
    return rep;
}

bool
within_tolerance(const Tensor &a, const Tensor &b, i64 max_ulp,
                 double max_abs)
{
    if (a.shape() != b.shape()) {
        return false;
    }
    for (i64 i = 0; i < a.size(); ++i) {
        if (ulp_diff(a[i], b[i]) > max_ulp &&
            !(std::fabs(static_cast<double>(a[i]) - b[i]) <= max_abs)) {
            return false;
        }
    }
    return true;
}

float
bilinear_sample(const Tensor &t, i64 c, double y, double x)
{
    i64 y0 = static_cast<i64>(std::floor(y));
    i64 x0 = static_cast<i64>(std::floor(x));
    double fy = y - static_cast<double>(y0);
    double fx = x - static_cast<double>(x0);

    double v00 = t.at_padded(c, y0, x0);
    double v01 = t.at_padded(c, y0, x0 + 1);
    double v10 = t.at_padded(c, y0 + 1, x0);
    double v11 = t.at_padded(c, y0 + 1, x0 + 1);

    double top = v00 * (1.0 - fx) + v01 * fx;
    double bot = v10 * (1.0 - fx) + v11 * fx;
    return static_cast<float>(top * (1.0 - fy) + bot * fy);
}

} // namespace eva2
