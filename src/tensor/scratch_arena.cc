#include "tensor/scratch_arena.h"

namespace eva2 {

ScratchArena &
ScratchArena::for_current_thread()
{
    static thread_local ScratchArena arena;
    return arena;
}

} // namespace eva2
