/**
 * @file
 * Pointwise and structural operations on tensors: translation (the
 * fundamental transform of activation motion compensation), arithmetic,
 * and comparison metrics used by tests and experiments.
 */
#ifndef EVA2_TENSOR_TENSOR_OPS_H
#define EVA2_TENSOR_TENSOR_OPS_H

#include "tensor/tensor.h"

namespace eva2 {

/**
 * Translate every channel of a tensor by an integer offset, filling
 * revealed regions with zero. A positive dx moves content to the right;
 * a positive dy moves content down. This is the exact discrete
 * counterpart of the paper's vector-field transform delta(x) for a
 * uniform field.
 */
Tensor translate(const Tensor &t, i64 dy, i64 dx);

/** Elementwise sum; shapes must match. */
Tensor add(const Tensor &a, const Tensor &b);

/** Elementwise difference a - b; shapes must match. */
Tensor sub(const Tensor &a, const Tensor &b);

/** Multiply every element by s. */
Tensor scale(const Tensor &t, float s);

/** Clamp all elements below zero (ReLU as a free function). */
Tensor relu(const Tensor &t);

/** Largest absolute elementwise difference between two tensors. */
double max_abs_diff(const Tensor &a, const Tensor &b);

/** Mean absolute elementwise difference between two tensors. */
double mean_abs_diff(const Tensor &a, const Tensor &b);

/** Sum of all elements. */
double sum(const Tensor &t);

/** Fraction of elements with |v| <= threshold. */
double zero_fraction(const Tensor &t, float threshold = 0.0f);

/**
 * True when every elementwise difference is within tol. Used by
 * property tests for the convolution/translation commutativity
 * identity (Figure 3).
 */
bool all_close(const Tensor &a, const Tensor &b, double tol = 1e-5);

/**
 * Bilinear sample of a single channel at a fractional coordinate,
 * with zero padding outside the tensor bounds. (y, x) are in row,
 * column order.
 */
float bilinear_sample(const Tensor &t, i64 c, double y, double x);

} // namespace eva2

#endif // EVA2_TENSOR_TENSOR_OPS_H
