/**
 * @file
 * Pointwise and structural operations on tensors: translation (the
 * fundamental transform of activation motion compensation), arithmetic,
 * and comparison metrics used by tests and experiments.
 */
#ifndef EVA2_TENSOR_TENSOR_OPS_H
#define EVA2_TENSOR_TENSOR_OPS_H

#include "tensor/tensor.h"

namespace eva2 {

/**
 * Translate every channel of a tensor by an integer offset, filling
 * revealed regions with zero. A positive dx moves content to the right;
 * a positive dy moves content down. This is the exact discrete
 * counterpart of the paper's vector-field transform delta(x) for a
 * uniform field.
 */
Tensor translate(const Tensor &t, i64 dy, i64 dx);

/** Elementwise sum; shapes must match. */
Tensor add(const Tensor &a, const Tensor &b);

/** Elementwise difference a - b; shapes must match. */
Tensor sub(const Tensor &a, const Tensor &b);

/** Multiply every element by s. */
Tensor scale(const Tensor &t, float s);

/** Clamp all elements below zero (ReLU as a free function). */
Tensor relu(const Tensor &t);

/** Largest absolute elementwise difference between two tensors. */
double max_abs_diff(const Tensor &a, const Tensor &b);

/** Mean absolute elementwise difference between two tensors. */
double mean_abs_diff(const Tensor &a, const Tensor &b);

/** Sum of all elements. */
double sum(const Tensor &t);

/**
 * Sum of squared elements, accumulated in eight independent stripes
 * reduced pairwise. The striping breaks the serial add dependence
 * that makes a naive left-to-right loop latency-bound (the RMS prune
 * threshold on the key-frame hot path), while staying deterministic
 * and portable: the summation order is fixed, so SIMD and non-SIMD
 * builds produce the identical double.
 */
double sum_squares(const float *x, i64 n);

/** sum_squares over a whole tensor. */
double sum_squares(const Tensor &t);

/** Fraction of elements with |v| <= threshold. */
double zero_fraction(const Tensor &t, float threshold = 0.0f);

/**
 * True when every elementwise difference is within tol. Used by
 * property tests for the convolution/translation commutativity
 * identity (Figure 3).
 */
bool all_close(const Tensor &a, const Tensor &b, double tol = 1e-5);

/**
 * Bilinear sample of a single channel at a fractional coordinate,
 * with zero padding outside the tensor bounds. (y, x) are in row,
 * column order.
 */
float bilinear_sample(const Tensor &t, i64 c, double y, double x);

/**
 * Distance between two floats in units in the last place: the number
 * of representable floats strictly between them (0 for bit-identical
 * values; +0.0 and -0.0 are 0 apart). NaN in either operand returns
 * I64_MAX, as does an infinity mismatch — divergence checks must
 * fail loudly on non-finite disagreement, not wrap around.
 */
i64 ulp_diff(float a, float b);

/** Largest elementwise ulp_diff between two tensors. */
i64 max_ulp_diff(const Tensor &a, const Tensor &b);

/** Elementwise divergence between a tensor and its reference. */
struct DivergenceReport
{
    i64 max_ulp = 0;      ///< Largest units-in-last-place distance.
    double max_abs = 0.0; ///< Largest absolute difference (L-inf).
    i64 worst_index = -1; ///< Flat index of the max-ulp element.
};

/** Per-element divergence sweep; shapes must match. */
DivergenceReport divergence(const Tensor &a, const Tensor &b);

/**
 * The bounded-divergence acceptance check gating SIMD kernels against
 * the scalar oracle (two-tier verification, docs/simd_kernels.md):
 * every element must be within `max_ulp` ulps *or* within `max_abs`
 * absolutely (the absolute escape covers near-zero elements, where
 * one rounding step is many ulps).
 */
bool within_tolerance(const Tensor &a, const Tensor &b, i64 max_ulp,
                      double max_abs);

} // namespace eva2

#endif // EVA2_TENSOR_TENSOR_OPS_H
