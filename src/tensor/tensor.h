/**
 * @file
 * A minimal dense tensor library used throughout the reproduction.
 *
 * CNN activations are stored channel-major (CHW): all of channel 0's
 * rows, then channel 1's, and so on. This matches the layout EVA2's
 * run-length encoder walks (zero gaps within a channel, Section III-B)
 * and keeps the inner convolution loops contiguous.
 */
#ifndef EVA2_TENSOR_TENSOR_H
#define EVA2_TENSOR_TENSOR_H

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/span.h"

namespace eva2 {

/** Dimensions of a CHW tensor. */
struct Shape
{
    i64 c = 0; ///< Channels.
    i64 h = 0; ///< Rows.
    i64 w = 0; ///< Columns.

    /** Total number of elements. */
    i64 size() const { return c * h * w; }

    bool
    operator==(const Shape &o) const
    {
        return c == o.c && h == o.h && w == o.w;
    }

    bool operator!=(const Shape &o) const { return !(*this == o); }

    /** Human-readable "CxHxW" form for error messages. */
    std::string
    str() const
    {
        return std::to_string(c) + "x" + std::to_string(h) + "x" +
               std::to_string(w);
    }
};

/**
 * A dense CHW float tensor. Single-precision float is the reference
 * numeric type; the hardware models quantize to 16-bit fixed point
 * where the paper's datapaths do.
 */
class Tensor
{
  public:
    /** An empty (0x0x0) tensor. */
    Tensor() = default;

    /** A zero-filled tensor of the given shape. */
    explicit Tensor(Shape shape)
        : shape_(shape),
          data_(static_cast<size_t>(shape.size()), 0.0f)
    {
        require(shape.c >= 0 && shape.h >= 0 && shape.w >= 0,
                "tensor dimensions must be non-negative");
        if (!data_.empty()) {
            note_buffer_allocation();
        }
    }

    /** Convenience constructor from explicit dimensions. */
    Tensor(i64 c, i64 h, i64 w) : Tensor(Shape{c, h, w}) {}

    Tensor(const Tensor &o) : shape_(o.shape_), data_(o.data_)
    {
        if (!data_.empty()) {
            note_buffer_allocation();
        }
    }

    Tensor &
    operator=(const Tensor &o)
    {
        if (this != &o) {
            if (o.data_.size() > data_.capacity()) {
                note_buffer_allocation();
            }
            shape_ = o.shape_;
            data_ = o.data_;
        }
        return *this;
    }

    Tensor(Tensor &&) = default;
    Tensor &operator=(Tensor &&) = default;

    const Shape &shape() const { return shape_; }
    i64 channels() const { return shape_.c; }
    i64 height() const { return shape_.h; }
    i64 width() const { return shape_.w; }
    i64 size() const { return shape_.size(); }
    bool empty() const { return data_.empty(); }

    /**
     * Mutable element access. Bounds-checked in Debug builds (and
     * therefore on the Debug half of the CI matrix); the check
     * compiles out entirely in Release so the hot kernel loops pay
     * nothing.
     */
    float &
    at(i64 c, i64 y, i64 x)
    {
        check_bounds(c, y, x);
        return data_[static_cast<size_t>((c * shape_.h + y) * shape_.w + x)];
    }

    /** Const element access (Debug-only bounds check, as above). */
    float
    at(i64 c, i64 y, i64 x) const
    {
        check_bounds(c, y, x);
        return data_[static_cast<size_t>((c * shape_.h + y) * shape_.w + x)];
    }

    /**
     * Element access that returns 0 for out-of-bounds coordinates, the
     * semantics of zero padding in convolutional layers.
     */
    float
    at_padded(i64 c, i64 y, i64 x) const
    {
        if (y < 0 || y >= shape_.h || x < 0 || x >= shape_.w) {
            return 0.0f;
        }
        return at(c, y, x);
    }

    /** Flat element access by linear CHW index. */
    float &operator[](i64 i) { return data_[static_cast<size_t>(i)]; }
    float operator[](i64 i) const { return data_[static_cast<size_t>(i)]; }

    /** Raw storage view. */
    Span<const float> data() const { return data_; }
    Span<float> data() { return data_; }

    /** Set every element to v. */
    void
    fill(float v)
    {
        std::fill(data_.begin(), data_.end(), v);
    }

    /**
     * Re-shape in place without shrinking the underlying buffer.
     *
     * This is the primitive scratch-arena reuse is built on: a slot
     * tensor cycles through many shapes across layers and frames, and
     * after it has grown to the largest one, subsequent reshapes are
     * allocation-free. Element values are unspecified afterwards —
     * callers are kernels that fully overwrite their output.
     */
    void
    reshape_to(const Shape &shape)
    {
        // Per-frame hot path: no message construction on success.
        if (shape.c < 0 || shape.h < 0 || shape.w < 0) {
            throw ConfigError("tensor dimensions must be non-negative");
        }
        const size_t n = static_cast<size_t>(shape.size());
        if (n > data_.capacity()) {
            note_buffer_allocation();
        }
        shape_ = shape;
        data_.resize(n);
    }

    /**
     * Process-wide count of float-buffer allocations performed by
     * tensors (constructions, copies, and reshapes that had to grow).
     * The zero-steady-state-allocation tests snapshot this around
     * planned executions; it is monotonically increasing and only
     * ever approximately attributable under concurrency.
     */
    static u64
    buffer_allocations()
    {
        return alloc_count_().load(std::memory_order_relaxed);
    }

    /** View of one channel plane (h*w contiguous floats). */
    Span<const float>
    channel(i64 c) const
    {
        size_t plane = static_cast<size_t>(shape_.h * shape_.w);
        return Span<const float>(data_.data() + c * plane, plane);
    }

    bool
    operator==(const Tensor &o) const
    {
        return shape_ == o.shape_ && data_ == o.data_;
    }

  private:
    /**
     * Debug-only bounds assertion. The failure message is built only
     * on the failing path, so a passing check costs six comparisons
     * in Debug and nothing at all in Release.
     */
    void
    check_bounds(i64 c, i64 y, i64 x) const
    {
#ifndef NDEBUG
        if (c < 0 || c >= shape_.c || y < 0 || y >= shape_.h || x < 0 ||
            x >= shape_.w) {
            throw InternalError(
                "tensor index (" + std::to_string(c) + ", " +
                std::to_string(y) + ", " + std::to_string(x) +
                ") out of bounds for shape " + shape_.str());
        }
#else
        (void)c;
        (void)y;
        (void)x;
#endif
    }

    static std::atomic<u64> &
    alloc_count_()
    {
        static std::atomic<u64> count{0};
        return count;
    }

    static void
    note_buffer_allocation()
    {
        alloc_count_().fetch_add(1, std::memory_order_relaxed);
    }

    Shape shape_;
    std::vector<float> data_;
};

} // namespace eva2

#endif // EVA2_TENSOR_TENSOR_H
