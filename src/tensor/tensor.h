/**
 * @file
 * A minimal dense tensor library used throughout the reproduction.
 *
 * CNN activations are stored channel-major (CHW): all of channel 0's
 * rows, then channel 1's, and so on. This matches the layout EVA2's
 * run-length encoder walks (zero gaps within a channel, Section III-B)
 * and keeps the inner convolution loops contiguous.
 */
#ifndef EVA2_TENSOR_TENSOR_H
#define EVA2_TENSOR_TENSOR_H

#include <algorithm>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/span.h"

namespace eva2 {

/** Dimensions of a CHW tensor. */
struct Shape
{
    i64 c = 0; ///< Channels.
    i64 h = 0; ///< Rows.
    i64 w = 0; ///< Columns.

    /** Total number of elements. */
    i64 size() const { return c * h * w; }

    bool
    operator==(const Shape &o) const
    {
        return c == o.c && h == o.h && w == o.w;
    }

    bool operator!=(const Shape &o) const { return !(*this == o); }

    /** Human-readable "CxHxW" form for error messages. */
    std::string
    str() const
    {
        return std::to_string(c) + "x" + std::to_string(h) + "x" +
               std::to_string(w);
    }
};

/**
 * A dense CHW float tensor. Single-precision float is the reference
 * numeric type; the hardware models quantize to 16-bit fixed point
 * where the paper's datapaths do.
 */
class Tensor
{
  public:
    /** An empty (0x0x0) tensor. */
    Tensor() = default;

    /** A zero-filled tensor of the given shape. */
    explicit Tensor(Shape shape)
        : shape_(shape),
          data_(static_cast<size_t>(shape.size()), 0.0f)
    {
        require(shape.c >= 0 && shape.h >= 0 && shape.w >= 0,
                "tensor dimensions must be non-negative");
    }

    /** Convenience constructor from explicit dimensions. */
    Tensor(i64 c, i64 h, i64 w) : Tensor(Shape{c, h, w}) {}

    const Shape &shape() const { return shape_; }
    i64 channels() const { return shape_.c; }
    i64 height() const { return shape_.h; }
    i64 width() const { return shape_.w; }
    i64 size() const { return shape_.size(); }
    bool empty() const { return data_.empty(); }

    /** Mutable element access (no bounds check in release loops). */
    float &
    at(i64 c, i64 y, i64 x)
    {
        return data_[static_cast<size_t>((c * shape_.h + y) * shape_.w + x)];
    }

    /** Const element access. */
    float
    at(i64 c, i64 y, i64 x) const
    {
        return data_[static_cast<size_t>((c * shape_.h + y) * shape_.w + x)];
    }

    /**
     * Element access that returns 0 for out-of-bounds coordinates, the
     * semantics of zero padding in convolutional layers.
     */
    float
    at_padded(i64 c, i64 y, i64 x) const
    {
        if (y < 0 || y >= shape_.h || x < 0 || x >= shape_.w) {
            return 0.0f;
        }
        return at(c, y, x);
    }

    /** Flat element access by linear CHW index. */
    float &operator[](i64 i) { return data_[static_cast<size_t>(i)]; }
    float operator[](i64 i) const { return data_[static_cast<size_t>(i)]; }

    /** Raw storage view. */
    Span<const float> data() const { return data_; }
    Span<float> data() { return data_; }

    /** Set every element to v. */
    void
    fill(float v)
    {
        std::fill(data_.begin(), data_.end(), v);
    }

    /** View of one channel plane (h*w contiguous floats). */
    Span<const float>
    channel(i64 c) const
    {
        size_t plane = static_cast<size_t>(shape_.h * shape_.w);
        return Span<const float>(data_.data() + c * plane, plane);
    }

    bool
    operator==(const Tensor &o) const
    {
        return shape_ == o.shape_ && data_ == o.data_;
    }

  private:
    Shape shape_;
    std::vector<float> data_;
};

} // namespace eva2

#endif // EVA2_TENSOR_TENSOR_H
