#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <system_error>
#include <unistd.h>

namespace eva2::net {

void
Fd::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

std::string
errno_text(const std::string &what)
{
    const int err = errno;
    // generic_category().message() rather than strerror(): same text,
    // but thread-safe (strerror may share a static buffer).
    return what + ": " + std::generic_category().message(err) +
           " (errno " + std::to_string(err) + ")";
}

namespace {

sockaddr_in
make_addr(const std::string &host, int port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<u16>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        throw NetError("invalid IPv4 address '" + host + "'");
    }
    return addr;
}

} // namespace

std::pair<Fd, int>
tcp_listen(const std::string &host, int port, int backlog)
{
    require(port >= 0 && port <= 65535,
            "tcp_listen: port must be in [0, 65535], got " +
                std::to_string(port));
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
        throw NetError(errno_text("socket()"));
    }
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = make_addr(host, port);
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        throw NetError(errno_text("bind(" + host + ":" +
                                  std::to_string(port) + ")"));
    }
    if (::listen(fd.get(), backlog) != 0) {
        throw NetError(errno_text("listen()"));
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0) {
        throw NetError(errno_text("getsockname()"));
    }
    set_nonblocking(fd.get());
    return {std::move(fd), static_cast<int>(ntohs(addr.sin_port))};
}

Fd
tcp_accept(int listen_fd)
{
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == EINTR || errno == ECONNABORTED) {
            return Fd();
        }
        throw NetError(errno_text("accept()"));
    }
    return Fd(fd);
}

Fd
tcp_connect(const std::string &host, int port)
{
    require(port > 0 && port <= 65535,
            "tcp_connect: port must be in [1, 65535], got " +
                std::to_string(port));
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
        throw NetError(errno_text("socket()"));
    }
    sockaddr_in addr = make_addr(host, port);
    while (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)) != 0) {
        if (errno == EINTR) {
            continue;
        }
        throw NetError(errno_text("connect(" + host + ":" +
                                  std::to_string(port) + ")"));
    }
    return fd;
}

void
set_nonblocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        throw NetError(errno_text("fcntl(O_NONBLOCK)"));
    }
}

void
set_tcp_nodelay(int fd)
{
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

WakePipe::WakePipe()
{
    int fds[2];
    if (::pipe(fds) != 0) {
        throw NetError(errno_text("pipe()"));
    }
    read_ = Fd(fds[0]);
    write_ = Fd(fds[1]);
    set_nonblocking(read_.get());
    set_nonblocking(write_.get());
}

void
WakePipe::wake_fd(int write_fd)
{
    // Best effort and async-signal-safe: a full pipe (EAGAIN) means
    // the loop already has a pending wake-up. Retry EINTR — a wake
    // swallowed by a signal would leave the poll loop asleep with
    // work pending. errno is saved and restored because this runs
    // inside signal handlers, where clobbering the interrupted
    // code's errno is a classic latent bug.
    const int saved_errno = errno;
    const u8 byte = 1;
    ssize_t n;
    do {
        n = ::write(write_fd, &byte, 1);
    } while (n < 0 && errno == EINTR);
    errno = saved_errno;
}

void
WakePipe::drain() const
{
    // Loop past EINTR: stopping there would leave wake bytes in the
    // pipe, so the next poll() would spin on a readable fd that the
    // loop believes it already drained.
    u8 buf[256];
    for (;;) {
        const ssize_t n = ::read(read_.get(), buf, sizeof(buf));
        if (n > 0) {
            continue;
        }
        if (n < 0 && errno == EINTR) {
            continue;
        }
        return; // Empty (EAGAIN), EOF, or a real error: done.
    }
}

} // namespace eva2::net
