/**
 * @file
 * Thin POSIX socket helpers for the serving front end: an RAII fd
 * wrapper, TCP listen/connect/accept, non-blocking mode, and a
 * self-pipe for waking a poll() loop from other threads (including
 * signal handlers — write() is async-signal-safe).
 *
 * This layer deliberately stays tiny: no buffering, no framing, no
 * event abstraction. The server's poll loop and the client's blocking
 * reader build directly on it, and every failure surfaces as a
 * descriptive NetError carrying errno text.
 */
#ifndef EVA2_NET_SOCKET_H
#define EVA2_NET_SOCKET_H

#include <stdexcept>
#include <string>
#include <utility>

#include "util/common.h"

namespace eva2::net {

/** Thrown when a socket syscall fails (carries the errno text). */
class NetError : public std::runtime_error
{
  public:
    explicit NetError(const std::string &msg)
        : std::runtime_error("eva2 net error: " + msg)
    {
    }
};

/** RAII file descriptor (socket or pipe end). */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(Fd &&o) noexcept : fd_(o.fd_) { o.fd_ = -1; }

    Fd &
    operator=(Fd &&o) noexcept
    {
        if (this != &o) {
            reset();
            fd_ = o.fd_;
            o.fd_ = -1;
        }
        return *this;
    }

    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    int
    release()
    {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

    void reset();

  private:
    int fd_ = -1;
};

/** errno as "what failed: strerror (errno N)". */
std::string errno_text(const std::string &what);

/**
 * Create a TCP listener bound to host:port (port 0 = ephemeral) with
 * SO_REUSEADDR, non-blocking, listening. Returns the fd and the
 * actually bound port.
 */
std::pair<Fd, int> tcp_listen(const std::string &host, int port,
                              int backlog = 128);

/**
 * Accept one pending connection from a non-blocking listener.
 * Returns an invalid Fd when no connection is pending (EAGAIN).
 * The accepted socket is left in blocking mode; callers choose.
 */
Fd tcp_accept(int listen_fd);

/** Blocking TCP connect to host:port. */
Fd tcp_connect(const std::string &host, int port);

/** Switch a socket/pipe fd to non-blocking mode. */
void set_nonblocking(int fd);

/** Disable Nagle (the protocol writes whole small messages). */
void set_tcp_nodelay(int fd);

/**
 * A self-pipe for waking a poll() loop. wake() is safe from any
 * thread and from signal handlers; drain() empties the pipe on the
 * loop thread.
 */
class WakePipe
{
  public:
    WakePipe();

    int read_fd() const { return read_.get(); }
    int write_fd() const { return write_.get(); }

    /** Write one wake byte; never blocks (a full pipe already wakes). */
    void wake() const { wake_fd(write_.get()); }

    /** Static form usable from a signal handler via a stored fd. */
    static void wake_fd(int write_fd);

    /** Empty the pipe (loop thread, after poll reported readable). */
    void drain() const;

  private:
    Fd read_;
    Fd write_;
};

} // namespace eva2::net

#endif // EVA2_NET_SOCKET_H
