#include "net/client.h"

#include <cerrno>
#include <sys/socket.h>

namespace eva2::net {

// --------------------------------------------------------------------
// ClientSession

ClientSession::ClientSession(Client *client, u32 wire_id,
                             std::string name)
    : client_(client), wire_id_(wire_id), name_(std::move(name))
{
}

u32
ClientSession::window() const
{
    MutexLock lock(client_->mutex_);
    return window_;
}

u64
ClientSession::send_frame_locked(const Tensor &frame)
{
    const u64 seq = next_seq_++;
    ++outstanding_;
    client_->send_locked(encode_frame(wire_id_, seq, frame));
    return seq;
}

u64
ClientSession::submit(const Tensor &frame)
{
    MutexLock lock(client_->mutex_);
    client_->check_alive_locked();
    if (outstanding_ >= static_cast<i64>(window_)) {
        ++credit_stalls_;
        while (outstanding_ >= static_cast<i64>(window_) &&
               !client_->reader_done_) {
            client_->cv_.wait(lock);
        }
        client_->check_alive_locked();
    }
    return send_frame_locked(frame);
}

bool
ClientSession::try_submit(const Tensor &frame, u64 *seq)
{
    MutexLock lock(client_->mutex_);
    client_->check_alive_locked();
    if (outstanding_ >= static_cast<i64>(window_)) {
        return false;
    }
    *seq = send_frame_locked(frame);
    return true;
}

u64
ClientSession::submit_uncredited(const Tensor &frame)
{
    MutexLock lock(client_->mutex_);
    client_->check_alive_locked();
    return send_frame_locked(frame);
}

NetOutcome
ClientSession::wait(u64 seq)
{
    MutexLock lock(client_->mutex_);
    while (results_.count(seq) == 0 && !client_->reader_done_) {
        client_->cv_.wait(lock);
    }
    const auto it = results_.find(seq);
    if (it == results_.end()) {
        client_->check_alive_locked();
        throw NetError("wait(" + std::to_string(seq) + ") on session '" +
                       name_ + "': no result and none can arrive");
    }
    NetOutcome out = it->second;
    results_.erase(it);
    return out;
}

i64
ClientSession::outstanding() const
{
    MutexLock lock(client_->mutex_);
    return outstanding_;
}

i64
ClientSession::credit_stalls() const
{
    MutexLock lock(client_->mutex_);
    return credit_stalls_;
}

u64
ClientSession::chained_digest() const
{
    MutexLock lock(client_->mutex_);
    return chained_digest_;
}

i64
ClientSession::completed_frames() const
{
    MutexLock lock(client_->mutex_);
    return completed_;
}

i64
ClientSession::shed_frames() const
{
    MutexLock lock(client_->mutex_);
    return shed_;
}

// --------------------------------------------------------------------
// Client

Client::Client(const std::string &host, int port)
    : fd_(tcp_connect(host, port))
{
    set_tcp_nodelay(fd_.get());
    reader_ = std::thread([this]() { reader_loop(); });
}

Client::~Client()
{
    try {
        close();
    } catch (const std::exception &) {
        // Destructor path: the connection may already be gone.
    }
    if (reader_.joinable()) {
        reader_.join();
    }
}

void
Client::check_alive_locked() const
{
    if (reader_done_) {
        throw NetError(
            "connection is down" +
            (reader_error_.empty() ? std::string(" (server closed)")
                                   : ": " + reader_error_));
    }
}

void
Client::send_locked(const std::vector<u8> &bytes)
{
    size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::send(fd_.get(), bytes.data() + off,
                                 bytes.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) {
            continue;
        }
        throw NetError(errno_text("send"));
    }
}

ClientSession &
Client::open_session(const std::string &name, u8 priority)
{
    MutexLock lock(mutex_);
    check_alive_locked();
    const u32 wire_id = next_wire_id_++;
    std::unique_ptr<ClientSession> session(
        new ClientSession(this, wire_id, name));
    ClientSession *s = session.get();
    sessions_[wire_id] = std::move(session);
    HelloMsg hello;
    hello.priority = priority;
    hello.name = name;
    send_locked(encode_hello(wire_id, hello));
    // Aliasing bridge: s->client_ is this, so s's fields (guarded by
    // s->client_->mutex_) are protected by the lock above — the
    // analysis cannot equate the two expressions on its own.
    s->client_->mutex_.assert_held();
    while (s->state_ == ClientSession::State::kOpening &&
           !reader_done_) {
        cv_.wait(lock);
    }
    if (s->state_ == ClientSession::State::kOpen) {
        return *s;
    }
    // Copy the rejection out before erase destroys the session.
    const NackMsg nack = s->nack_;
    sessions_.erase(wire_id);
    if (reader_done_) {
        check_alive_locked();
    }
    throw NetError("session '" + name + "' rejected: " +
                   nack_reason_name(nack.reason) +
                   (nack.detail.empty() ? "" : " (" + nack.detail + ")"));
}

void
Client::close()
{
    {
        MutexLock lock(mutex_);
        if (closed_) {
            while (!reader_done_) {
                cv_.wait(lock);
            }
            return;
        }
        closed_ = true;
        if (!reader_done_) {
            send_locked(encode_bye(0));
        }
        // The server flushes what it owes and closes; the reader's
        // EOF is the handshake's end.
        while (!reader_done_) {
            cv_.wait(lock);
        }
    }
    if (reader_.joinable()) {
        reader_.join();
    }
}

bool
Client::server_closed() const
{
    MutexLock lock(mutex_);
    return server_bye_;
}

void
Client::reader_loop()
{
    FrameDecoder decoder;
    std::string error;
    u8 buf[65536];
    for (;;) {
        const ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), 0);
        if (n == 0) {
            break; // Orderly EOF.
        }
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            error = errno_text("recv");
            break;
        }
        try {
            decoder.feed(buf, static_cast<size_t>(n));
            Message msg;
            bool saw_bye = false;
            {
                MutexLock lock(mutex_);
                while (decoder.next(&msg)) {
                    dispatch(msg);
                    saw_bye |= msg.header.type == MsgType::kBye;
                }
            }
            cv_.notify_all();
            if (saw_bye) {
                // Keep reading to the EOF that follows the server's
                // BYE; no further messages are expected.
            }
        } catch (const ProtocolError &e) {
            error = e.what();
            break;
        }
    }
    {
        MutexLock lock(mutex_);
        reader_done_ = true;
        reader_error_ = std::move(error);
    }
    cv_.notify_all();
}

void
Client::dispatch(const Message &msg)
{
    const auto it = sessions_.find(msg.header.session);
    // Aliasing bridge for every session case below: the session's
    // fields are guarded by its client_->mutex_, which IS the mutex_
    // this function requires (sessions_ only holds our own sessions),
    // but the analysis cannot equate the two expressions.
    switch (msg.header.type) {
    case MsgType::kHelloAck: {
        if (it == sessions_.end()) {
            return;
        }
        ClientSession &s = *it->second;
        s.client_->mutex_.assert_held();
        const HelloAckMsg ack = parse_hello_ack(msg.payload);
        s.window_ = ack.window;
        s.state_ = ClientSession::State::kOpen;
        return;
    }
    case MsgType::kNack: {
        if (it == sessions_.end()) {
            return;
        }
        ClientSession &s = *it->second;
        s.client_->mutex_.assert_held();
        if (s.state_ != ClientSession::State::kOpening) {
            // Connection-scoped NACK (e.g. protocol violation): the
            // server is about to close on us; the reader's EOF will
            // surface it to every waiter.
            return;
        }
        s.nack_ = parse_nack(msg.payload);
        s.state_ = ClientSession::State::kRejected;
        return;
    }
    case MsgType::kOutcome: {
        if (it == sessions_.end()) {
            return;
        }
        ClientSession &s = *it->second;
        s.client_->mutex_.assert_held();
        const OutcomeMsg om = parse_outcome(msg.payload);
        NetOutcome out;
        out.seq = msg.header.seq;
        out.is_key = om.is_key;
        out.failed = om.failed;
        out.top1 = om.top1;
        out.output_digest = om.output_digest;
        out.match_error = om.match_error;
        --s.outstanding_;
        ++s.completed_;
        if (!out.failed) {
            s.chained_digest_ =
                digest_combine(s.chained_digest_, out.output_digest);
        }
        s.results_[out.seq] = out;
        return;
    }
    case MsgType::kShed: {
        if (it == sessions_.end()) {
            return;
        }
        ClientSession &s = *it->second;
        s.client_->mutex_.assert_held();
        const ShedMsg sm = parse_shed(msg.payload);
        NetOutcome out;
        out.seq = msg.header.seq;
        out.shed = true;
        out.shed_reason = sm.reason;
        --s.outstanding_;
        ++s.shed_;
        s.results_[out.seq] = out;
        return;
    }
    case MsgType::kBye:
        server_bye_ = true;
        return;
    case MsgType::kHello:
    case MsgType::kFrame:
        break;
    }
    throw ProtocolError(
        "server sent a client-to-server message type (" +
        std::to_string(static_cast<int>(msg.header.type)) + ")");
}

} // namespace eva2::net
