/**
 * @file
 * net::Server — the TCP serving front end for eva2::Engine.
 *
 * One listener + one poll()-based IO loop over non-blocking sockets
 * decode wire-protocol FRAMEs (net/wire.h) into Session::submit and
 * stream FrameOutcome digests back as OUTCOME messages. The existing
 * execution layer (StageScheduler pipelining, SuffixBatcher
 * cross-stream batching) is reused untouched: the server is purely an
 * ingestion/egress layer, so loopback digests are bit-identical to
 * in-process submission.
 *
 * Production semantics, in order of application to one FRAME:
 *
 *  - Admission control: connections past max_connections are
 *    accepted, sent a typed NACK, and closed; HELLOs past
 *    max_sessions (or duplicating a live name) get typed NACKs.
 *  - Per-session backpressure: each session has a bounded in-flight
 *    window. Every OUTCOME/SHED carries the refreshed credit, so a
 *    correct sender stalls instead of flooding; a sender that
 *    overruns anyway has the excess frame shed (SHED/window) — the
 *    server never queues per-session work beyond the window.
 *  - Load shedding: a server-wide in-flight cap, scaled by priority
 *    class (priority p in [0,3] sheds at (p+1)/4 of max_inflight),
 *    bounds total engine occupancy. Shedding drops the arriving
 *    frame — the newest work — with a typed SHED; nothing is ever
 *    queued unboundedly.
 *  - Graceful drain: stop() (or a SIGTERM routed via
 *    install_signal_handlers) stops accepting, NACKs new sessions,
 *    sheds new frames, waits for every in-flight frame's OUTCOME to
 *    be delivered and flushed, then BYEs and closes every
 *    connection — Engine::close() semantics at the socket layer:
 *    reject new work loudly, never lose admitted work.
 *
 * Threading: start() spawns the IO thread; Engine worker threads
 * re-enter only through the per-session outcome sink, which enqueues
 * a completion and wakes the IO loop via a self-pipe. stats() and
 * stop() are safe from any thread. The Engine must outlive the
 * Server's stop()/destruction.
 */
#ifndef EVA2_NET_SERVER_H
#define EVA2_NET_SERVER_H

#include <atomic>
#include <deque>
#include <initializer_list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "net/socket.h"
#include "net/wire.h"
#include "util/mutex.h"

namespace eva2::net {

/** Priority classes understood by the load shedder. */
constexpr i64 kPriorityLevels = 4;

/** Configuration of a Server. Validated by start(). */
struct ServerConfig
{
    std::string host = "127.0.0.1";
    /** Listen port; 0 binds an ephemeral port (see Server::port()). */
    int port = 0;
    /** Admission: connections past this are NACKed and closed. */
    i64 max_connections = 256;
    /** Admission: live sessions past this get HELLO NACKs. */
    i64 max_sessions = 4096;
    /** Per-session in-flight window (the credit budget). */
    i64 window = 8;
    /**
     * Server-wide in-flight frame cap. A priority-p session (p in
     * [0, 3]) is shed once total in-flight reaches (p+1)/4 of this,
     * so low-priority traffic degrades first and the highest class
     * rides to the full cap.
     */
    i64 max_inflight = 1024;
    /**
     * Graceful-drain budget: stop() force-closes connections whose
     * in-flight outcomes have not drained within this bound (they
     * count as lost; generous by default so tests never hit it).
     */
    i64 drain_timeout_ms = 30000;

    /** Throws ConfigError on out-of-range fields. */
    void validate() const;
};

/**
 * The TCP front end. Construct over an open Engine, start(), then
 * clients connect with net::Client (or any wire-protocol speaker).
 */
class Server
{
  public:
    explicit Server(Engine &engine, ServerConfig config = {});

    /** stop()s if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, and spawn the IO thread. */
    void start();

    /**
     * Graceful drain (see the file comment), then join the IO
     * thread. Idempotent; safe from any thread. The engine is left
     * open — callers own its close().
     */
    void stop();

    /** Async stop request; safe from signal handlers. */
    void request_stop();

    /**
     * Route these signals (e.g. {SIGTERM, SIGINT}) to request_stop()
     * of this server. Only one server per process may install
     * handlers; they are reset by stop().
     */
    void install_signal_handlers(std::initializer_list<int> signals);

    bool running() const { return running_.load(); }

    /** The bound listen port (after start()). */
    int port() const;

    /** Snapshot of the serving counters. */
    NetStats stats() const;

    /**
     * The engine's RunReport with the `net` section filled in from
     * stats() — the one-call serving report.
     */
    RunReport report();

    const ServerConfig &config() const { return config_; }

  private:
    struct NetSession;
    struct Conn;

    /** One completed engine frame awaiting egress. */
    struct Completion
    {
        i64 engine_index = -1;
        FrameOutcome outcome;
    };

    void io_loop() REQUIRES(io_role_);
    void do_accept() REQUIRES(io_role_);
    void handle_readable(Conn &conn) REQUIRES(io_role_);
    void handle_message(Conn &conn, const Message &msg)
        REQUIRES(io_role_);
    void handle_hello(Conn &conn, const Message &msg)
        REQUIRES(io_role_);
    void handle_frame(Conn &conn, const Message &msg)
        REQUIRES(io_role_);
    void drain_completions() REQUIRES(io_role_);
    void flush_writes(Conn &conn) REQUIRES(io_role_);
    void queue_bytes(Conn &conn, std::vector<u8> bytes)
        REQUIRES(io_role_);
    /** Unbind every session and close the connection. */
    void teardown(Conn &conn) REQUIRES(io_role_);
    void protocol_failure(Conn &conn, const std::string &what)
        REQUIRES(io_role_);
    /** Queue a typed session NACK and count the rejection. */
    void nack_session(Conn &conn, u32 wire_id, NackReason reason,
                      const std::string &detail) REQUIRES(io_role_);
    /** Queue a typed SHED for one frame, with refreshed credit. */
    void shed_frame(Conn &conn, const NetSession &ns, u64 seq,
                    ShedReason reason) REQUIRES(io_role_);
    /** Global shed threshold for a priority class. */
    i64 shed_cap(u8 priority) const;

    /** Apply one mutation to the stats under their lock. */
    template <typename Fn>
    void
    bump(Fn &&fn)
    {
        MutexLock lock(stats_mutex_);
        fn(stats_);
    }

    Engine *engine_;
    ServerConfig config_;

    Fd listen_fd_;
    int bound_port_ = 0;
    WakePipe wake_;
    std::thread io_thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stop_requested_{false};
    std::vector<int> installed_signals_;

    /**
     * The IO-thread role: the state below is single-threaded by
     * construction (only the IO loop touches it), and the capability
     * makes that construction checkable — every accessor is marked
     * REQUIRES(io_role_), the IO thread acquires the role at the top
     * of its lambda, and stop() acquires it only after join() (role
     * transfer by join; see docs/static_analysis.md).
     */
    ThreadRole io_role_;

    // ---- IO-thread state (no locks; guarded by the role) ----
    std::vector<std::unique_ptr<Conn>> conns_ GUARDED_BY(io_role_);
    std::map<i64, NetSession *> by_engine_index_
        GUARDED_BY(io_role_);
    std::map<std::string, NetSession *> by_name_ GUARDED_BY(io_role_);
    i64 total_inflight_ GUARDED_BY(io_role_) = 0;
    bool draining_ GUARDED_BY(io_role_) = false;

    /**
     * Sessions whose outcome sink points at this server. Appended on
     * the IO thread, cleared by stop() after the join (ordered by
     * the join itself), so the sinks never dangle.
     */
    std::set<Session *> sunk_sessions_ GUARDED_BY(io_role_);

    // ---- Cross-thread state ----
    mutable Mutex cq_mutex_;
    /** Worker -> IO completion queue. */
    std::vector<Completion> cq_ GUARDED_BY(cq_mutex_);

    mutable Mutex stats_mutex_;
    NetStats stats_ GUARDED_BY(stats_mutex_);
};

} // namespace eva2::net

#endif // EVA2_NET_SERVER_H
