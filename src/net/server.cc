#include "net/server.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>

namespace eva2::net {

namespace {

/**
 * Signal-to-server routing. A handler may only touch async-signal-safe
 * state, so it sets one flag and writes one byte to the IO loop's wake
 * pipe; the loop translates the flag into a drain on its own thread.
 * One server per process may install handlers (enforced below).
 */
std::atomic<bool> g_signal_stop{false};
std::atomic<int> g_signal_wake_fd{-1};
std::atomic<Server *> g_signal_server{nullptr};

extern "C" void
eva2_net_signal_handler(int)
{
    g_signal_stop.store(true);
    WakePipe::wake_fd(g_signal_wake_fd.load());
}

} // namespace

void
ServerConfig::validate() const
{
    require(!host.empty(), "net: ServerConfig.host must not be empty");
    require(port >= 0 && port <= 65535,
            "net: ServerConfig.port must be in [0, 65535], got " +
                std::to_string(port));
    require(max_connections > 0,
            "net: ServerConfig.max_connections must be > 0, got " +
                std::to_string(max_connections));
    require(max_sessions > 0,
            "net: ServerConfig.max_sessions must be > 0, got " +
                std::to_string(max_sessions));
    require(window > 0,
            "net: ServerConfig.window must be > 0, got " +
                std::to_string(window));
    require(max_inflight >= kPriorityLevels,
            "net: ServerConfig.max_inflight must be >= " +
                std::to_string(kPriorityLevels) + " (got " +
                std::to_string(max_inflight) +
                ") so every priority class keeps a nonzero share");
    require(drain_timeout_ms > 0,
            "net: ServerConfig.drain_timeout_ms must be > 0, got " +
                std::to_string(drain_timeout_ms));
}

/**
 * One session bound over the wire: the bridge between a client-chosen
 * wire id on one connection and an engine Session. The engine session
 * outlives the binding (sessions are engine-lifetime objects); a
 * reconnecting client rebinds the same name and continues the stream.
 */
struct Server::NetSession
{
    u32 wire_id = 0;
    std::string name;
    u8 priority = 0;
    Session *session = nullptr;
    i64 engine_index = -1;
    Conn *conn = nullptr;
    /** Frames admitted through this binding, not yet answered. */
    i64 inflight = 0;
    /**
     * Engine frame number of this binding's first submit. Completions
     * below it belong to a previous binding of the same session (torn
     * down with its connection) and are dropped, not delivered.
     */
    i64 binding_start = 0;
    /** Client seq numbers of in-flight frames, in submission order. */
    std::deque<u64> pending_seqs;
};

/** One TCP connection: socket, decoder, write buffer, its sessions. */
struct Server::Conn
{
    Fd fd;
    FrameDecoder decoder;
    std::vector<u8> out;
    size_t out_off = 0;
    /** Stop reading; flush `out`, then close. */
    bool closing = false;
    /** Torn down; removed from conns_ at the top of the loop. */
    bool dead = false;
    std::map<u32, std::unique_ptr<NetSession>> sessions;

    bool flushed() const { return out_off >= out.size(); }

    i64
    inflight() const
    {
        i64 n = 0;
        for (const auto &entry : sessions) {
            n += entry.second->inflight;
        }
        return n;
    }
};

Server::Server(Engine &engine, ServerConfig config)
    : engine_(&engine), config_(std::move(config))
{
    config_.validate();
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    require(!io_thread_.joinable(), "net: Server::start() called twice");
    require(!engine_->closed(),
            "net: Server::start() on a closed engine — open the engine "
            "before serving");
    auto bound = tcp_listen(config_.host, config_.port);
    listen_fd_ = std::move(bound.first);
    bound_port_ = bound.second;
    stop_requested_.store(false);
    running_.store(true);
    io_thread_ = std::thread([this]() {
        // This thread owns the IO-thread state for its lifetime; the
        // role is handed back to stop() by the join.
        io_role_.acquire();
        io_loop();
        io_role_.release();
    });
}

int
Server::port() const
{
    require(bound_port_ > 0,
            "net: Server::port() before start() — no port is bound yet");
    return bound_port_;
}

void
Server::request_stop()
{
    stop_requested_.store(true);
    wake_.wake();
}

void
Server::install_signal_handlers(std::initializer_list<int> signals)
{
    Server *expected = nullptr;
    require(g_signal_server.compare_exchange_strong(expected, this) ||
                expected == this,
            "net: install_signal_handlers: another Server already owns "
            "the process signal handlers");
    g_signal_wake_fd.store(wake_.write_fd());
    for (const int sig : signals) {
        std::signal(sig, eva2_net_signal_handler);
        installed_signals_.push_back(sig);
    }
}

void
Server::stop()
{
    if (io_thread_.joinable()) {
        request_stop();
        io_thread_.join();
    }
    running_.store(false);
    listen_fd_.reset();
    for (const int sig : installed_signals_) {
        std::signal(sig, SIG_DFL);
    }
    if (!installed_signals_.empty()) {
        g_signal_server.store(nullptr);
        g_signal_wake_fd.store(-1);
        g_signal_stop.store(false);
        installed_signals_.clear();
    }
    // Frames from connections torn down mid-flight may still be
    // churning inside the engine; quiesce it so the sinks go silent,
    // then detach them. Stream failures surface via the engine's own
    // report()/flush(), not from stop().
    try {
        engine_->flush();
    } catch (const std::exception &) {
    }
    // The IO thread is joined (or never ran), so this thread holds
    // the IO role now: role transfer by join.
    io_role_.acquire();
    for (Session *s : sunk_sessions_) {
        s->set_outcome_sink(nullptr);
    }
    sunk_sessions_.clear();
    conns_.clear();
    by_engine_index_.clear();
    by_name_.clear();
    total_inflight_ = 0;
    draining_ = false;
    io_role_.release();
    {
        MutexLock lock(cq_mutex_);
        cq_.clear();
    }
}

NetStats
Server::stats() const
{
    MutexLock lock(stats_mutex_);
    return stats_;
}

RunReport
Server::report()
{
    RunReport r = engine_->report();
    r.net = stats();
    return r;
}

i64
Server::shed_cap(u8 priority) const
{
    const i64 p = std::min<i64>(priority, kPriorityLevels - 1);
    return std::max<i64>(1,
                         config_.max_inflight * (p + 1) / kPriorityLevels);
}

// --------------------------------------------------------------------
// IO loop

void
Server::io_loop()
{
    using clock = std::chrono::steady_clock;
    clock::time_point drain_start{};
    bool byes_queued = false;
    std::vector<pollfd> pfds;
    std::vector<Conn *> pfd_conns;

    for (;;) {
        if (!draining_ &&
            (stop_requested_.load() ||
             (g_signal_server.load() == this && g_signal_stop.load()))) {
            // Enter graceful drain: stop accepting, then let the
            // steps below run the connections dry.
            draining_ = true;
            drain_start = clock::now();
            listen_fd_.reset();
        }

        // Close connections that were flushing out a final NACK/BYE —
        // but not while they still owe OUTCOMEs for admitted frames:
        // an orderly close never loses admitted work.
        for (auto &c : conns_) {
            if (!c->dead && c->closing && c->flushed() &&
                c->inflight() == 0) {
                teardown(*c);
            }
        }
        conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                    [](const std::unique_ptr<Conn> &c) {
                                        return c->dead;
                                    }),
                     conns_.end());

        if (draining_) {
            bool cq_empty;
            {
                MutexLock lock(cq_mutex_);
                cq_empty = cq_.empty();
            }
            if (total_inflight_ == 0 && cq_empty) {
                if (!byes_queued) {
                    for (auto &c : conns_) {
                        queue_bytes(*c, encode_bye(0));
                    }
                    byes_queued = true;
                }
                const bool all_flushed = std::all_of(
                    conns_.begin(), conns_.end(),
                    [](const std::unique_ptr<Conn> &c) {
                        return c->flushed();
                    });
                if (all_flushed) {
                    break;
                }
            }
            const auto elapsed =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    clock::now() - drain_start)
                    .count();
            if (elapsed > config_.drain_timeout_ms) {
                break; // Force-close whatever has not drained.
            }
        }

        pfds.clear();
        pfd_conns.clear();
        pfds.push_back({wake_.read_fd(), POLLIN, 0});
        const bool have_listener = listen_fd_.valid();
        if (have_listener) {
            pfds.push_back({listen_fd_.get(), POLLIN, 0});
        }
        for (auto &c : conns_) {
            // POLLIN even while closing: the readable handler then
            // discards input and notices the peer's EOF.
            short events = POLLIN;
            if (!c->flushed()) {
                events |= POLLOUT;
            }
            pfds.push_back({c->fd.get(), events, 0});
            pfd_conns.push_back(c.get());
        }

        const int rc = ::poll(pfds.data(),
                              static_cast<nfds_t>(pfds.size()), 200);
        if (rc < 0 && errno != EINTR) {
            throw NetError(errno_text("poll"));
        }

        if (pfds[0].revents & POLLIN) {
            wake_.drain();
        }
        drain_completions();
        if (have_listener && (pfds[1].revents & POLLIN)) {
            do_accept();
        }
        const size_t base = have_listener ? 2 : 1;
        for (size_t i = 0; i < pfd_conns.size(); ++i) {
            Conn &conn = *pfd_conns[i];
            const short rev = pfds[base + i].revents;
            if (conn.dead) {
                continue;
            }
            if (rev & POLLOUT) {
                flush_writes(conn);
            }
            if (conn.dead) {
                continue;
            }
            if (rev & (POLLIN | POLLERR | POLLHUP)) {
                handle_readable(conn);
            }
        }
    }

    // Drain finished (or timed out): tear everything down. Anything
    // still unflushed here ran past drain_timeout_ms.
    for (auto &c : conns_) {
        if (!c->dead) {
            teardown(*c);
        }
    }
    conns_.clear();
    running_.store(false);
}

void
Server::do_accept()
{
    for (;;) {
        Fd fd = tcp_accept(listen_fd_.get());
        if (!fd.valid()) {
            return;
        }
        const i64 live = static_cast<i64>(conns_.size());
        if (live >= config_.max_connections) {
            // Typed rejection: the fresh socket buffer always has
            // room for one small NACK, then RAII closes the fd.
            bump([](NetStats &s) { ++s.connections_rejected; });
            const std::vector<u8> nack = encode_nack(
                0, {NackReason::kConnectionLimit,
                    "server at max_connections = " +
                        std::to_string(config_.max_connections)});
            (void)::send(fd.get(), nack.data(), nack.size(),
                         MSG_NOSIGNAL);
            continue;
        }
        set_nonblocking(fd.get());
        set_tcp_nodelay(fd.get());
        auto conn = std::make_unique<Conn>();
        conn->fd = std::move(fd);
        conns_.push_back(std::move(conn));
        bump([](NetStats &s) { ++s.connections_accepted; });
    }
}

void
Server::handle_readable(Conn &conn)
{
    u8 buf[65536];
    for (;;) {
        const ssize_t n = ::recv(conn.fd.get(), buf, sizeof(buf), 0);
        if (n > 0) {
            bump([n](NetStats &s) { s.bytes_in += n; });
            if (!conn.closing) { // Closing: discard, just watch for EOF.
                try {
                    conn.decoder.feed(buf, static_cast<size_t>(n));
                } catch (const ProtocolError &e) {
                    protocol_failure(conn, e.what());
                    return;
                }
            }
            if (n < static_cast<ssize_t>(sizeof(buf))) {
                break;
            }
            continue;
        }
        if (n == 0) {
            teardown(conn); // Peer closed; in-flight work is dropped.
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            break;
        }
        if (errno == EINTR) {
            continue;
        }
        teardown(conn);
        return;
    }
    if (conn.closing) {
        return;
    }

    Message msg;
    try {
        while (conn.decoder.next(&msg)) {
            handle_message(conn, msg);
            if (conn.closing || conn.dead) {
                return;
            }
        }
    } catch (const ProtocolError &e) {
        protocol_failure(conn, e.what());
    }
}

void
Server::handle_message(Conn &conn, const Message &msg)
{
    switch (msg.header.type) {
    case MsgType::kHello:
        handle_hello(conn, msg);
        return;
    case MsgType::kFrame:
        handle_frame(conn, msg);
        return;
    case MsgType::kBye:
        // Orderly close: the client sends no more work and reads to
        // EOF. Flush what we owe, then the close delivers the EOF.
        conn.closing = true;
        return;
    case MsgType::kHelloAck:
    case MsgType::kNack:
    case MsgType::kOutcome:
    case MsgType::kShed:
        break;
    }
    throw ProtocolError("client sent a server-to-client message type (" +
                        std::to_string(static_cast<int>(msg.header.type)) +
                        ")");
}

void
Server::handle_hello(Conn &conn, const Message &msg)
{
    const u32 wire_id = msg.header.session;
    if (conn.sessions.count(wire_id) != 0) {
        throw ProtocolError("HELLO reuses live wire session id " +
                            std::to_string(wire_id));
    }
    const HelloMsg hello = parse_hello(msg.payload);

    if (draining_) {
        nack_session(conn, wire_id, NackReason::kDraining,
                     "server is draining");
        return;
    }
    if (static_cast<i64>(by_name_.size()) >= config_.max_sessions) {
        nack_session(conn, wire_id, NackReason::kSessionLimit,
                     "server at max_sessions = " +
                         std::to_string(config_.max_sessions));
        return;
    }
    if (by_name_.count(hello.name) != 0) {
        nack_session(conn, wire_id, NackReason::kDuplicateSession,
                     "session '" + hello.name +
                         "' is already bound on a live connection");
        return;
    }

    Session *session = nullptr;
    try {
        session = &engine_->session(hello.name);
    } catch (const ConfigError &e) {
        // The engine refused (closed under us): equivalent to drain.
        nack_session(conn, wire_id, NackReason::kDraining, e.what());
        return;
    }

    auto ns = std::make_unique<NetSession>();
    ns->wire_id = wire_id;
    ns->name = hello.name;
    ns->priority = hello.priority;
    ns->session = session;
    ns->engine_index = session->index();
    ns->conn = &conn;
    ns->binding_start = session->submitted();
    by_engine_index_[ns->engine_index] = ns.get();
    by_name_[ns->name] = ns.get();

    if (sunk_sessions_.insert(session).second) {
        const i64 engine_index = ns->engine_index;
        session->set_outcome_sink([this, engine_index](
                                      const FrameOutcome &outcome) {
            {
                MutexLock lock(cq_mutex_);
                cq_.push_back({engine_index, outcome});
            }
            wake_.wake();
        });
    }
    conn.sessions[wire_id] = std::move(ns);
    bump([](NetStats &s) { ++s.sessions_accepted; });
    queue_bytes(conn,
                encode_hello_ack(
                    wire_id, {static_cast<u32>(config_.window)}));
}

void
Server::handle_frame(Conn &conn, const Message &msg)
{
    const auto it = conn.sessions.find(msg.header.session);
    if (it == conn.sessions.end()) {
        throw ProtocolError("FRAME for unknown wire session id " +
                            std::to_string(msg.header.session));
    }
    NetSession &ns = *it->second;

    if (draining_) {
        bump([](NetStats &s) { ++s.shed_draining; });
        shed_frame(conn, ns, msg.header.seq, ShedReason::kDraining);
        return;
    }
    if (ns.inflight >= config_.window) {
        // The sender overran its credit; the excess frame is never
        // queued — backpressure is a hard bound, not a hint.
        bump([](NetStats &s) { ++s.shed_window; });
        shed_frame(conn, ns, msg.header.seq, ShedReason::kWindow);
        return;
    }
    if (total_inflight_ >= shed_cap(ns.priority)) {
        bump([](NetStats &s) { ++s.shed_overload; });
        shed_frame(conn, ns, msg.header.seq, ShedReason::kOverload);
        return;
    }
    if (engine_->memory_pressure()) {
        // The engine's resident-session state is over its hard
        // budget and hibernation (if enabled) could not reclaim
        // enough. Shedding the frame keeps the cap a cap: the client
        // retries once completions / evictions free memory.
        bump([](NetStats &s) { ++s.shed_memory; });
        shed_frame(conn, ns, msg.header.seq, ShedReason::kMemory);
        return;
    }

    Tensor frame = parse_frame(msg.payload); // Throws ProtocolError.

    // Book the frame *before* submit: with an inline engine the
    // outcome sink fires during submit() on this very thread, and
    // drain_completions must find the seq already pending.
    ns.pending_seqs.push_back(msg.header.seq);
    ++ns.inflight;
    ++total_inflight_;
    try {
        (void)ns.session->submit(std::move(frame));
    } catch (const ConfigError &e) {
        ns.pending_seqs.pop_back();
        --ns.inflight;
        --total_inflight_;
        if (engine_->closed()) {
            bump([](NetStats &s) { ++s.shed_draining; });
            shed_frame(conn, ns, msg.header.seq,
                       ShedReason::kDraining);
            return;
        }
        // Shape mismatch (submit validates eagerly): client bug; the
        // stream itself is still sound, but reject loudly and close.
        bump([](NetStats &s) { ++s.protocol_errors; });
        queue_bytes(conn, encode_nack(ns.wire_id,
                                      {NackReason::kBadFrame, e.what()}));
        conn.closing = true;
        return;
    }
    bump([](NetStats &s) { ++s.frames_in; });
    if (ns.inflight == config_.window) {
        // The sender's credit just hit zero: a correct client now
        // stalls until an OUTCOME refreshes it.
        bump([](NetStats &s) { ++s.window_stalls; });
    }
}

void
Server::drain_completions()
{
    std::vector<Completion> batch;
    {
        MutexLock lock(cq_mutex_);
        batch.swap(cq_);
    }
    for (const Completion &c : batch) {
        const auto it = by_engine_index_.find(c.engine_index);
        if (it == by_engine_index_.end()) {
            continue; // Binding torn down; nobody to deliver to.
        }
        NetSession &ns = *it->second;
        if (c.outcome.frame < ns.binding_start) {
            continue; // A previous binding's frame (accounting done).
        }
        invariant(!ns.pending_seqs.empty(),
                  "net: completion with no pending seq");
        const u64 seq = ns.pending_seqs.front();
        ns.pending_seqs.pop_front();
        --ns.inflight;
        --total_inflight_;
        OutcomeMsg om;
        om.is_key = c.outcome.is_key;
        om.failed = c.outcome.failed;
        om.credit = static_cast<u32>(config_.window - ns.inflight);
        om.top1 = c.outcome.top1;
        om.output_digest = c.outcome.output_digest;
        om.match_error = c.outcome.match_error;
        queue_bytes(*ns.conn, encode_outcome(ns.wire_id, seq, om));
        bump([](NetStats &s) { ++s.outcomes_out; });
    }
}

void
Server::queue_bytes(Conn &conn, std::vector<u8> bytes)
{
    if (conn.dead) {
        return;
    }
    if (conn.flushed()) {
        conn.out.clear();
        conn.out_off = 0;
    }
    conn.out.insert(conn.out.end(), bytes.begin(), bytes.end());
    flush_writes(conn); // Eager: most messages fit the socket buffer.
}

void
Server::flush_writes(Conn &conn)
{
    while (!conn.flushed()) {
        const ssize_t n =
            ::send(conn.fd.get(), conn.out.data() + conn.out_off,
                   conn.out.size() - conn.out_off, MSG_NOSIGNAL);
        if (n > 0) {
            conn.out_off += static_cast<size_t>(n);
            bump([n](NetStats &s) { s.bytes_out += n; });
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            return; // poll() will report POLLOUT when writable.
        }
        if (n < 0 && errno == EINTR) {
            continue;
        }
        teardown(conn); // Peer gone (EPIPE/ECONNRESET/...).
        return;
    }
    if (conn.flushed()) {
        conn.out.clear();
        conn.out_off = 0;
    }
}

void
Server::teardown(Conn &conn)
{
    for (auto &entry : conn.sessions) {
        NetSession &ns = *entry.second;
        // The engine keeps processing this binding's in-flight
        // frames; their completions arrive with no binding in
        // by_engine_index_ and are dropped, so the accounting is
        // settled here, once.
        total_inflight_ -= ns.inflight;
        by_engine_index_.erase(ns.engine_index);
        by_name_.erase(ns.name);
    }
    conn.sessions.clear();
    conn.fd.reset();
    conn.dead = true;
}

void
Server::nack_session(Conn &conn, u32 wire_id, NackReason reason,
                     const std::string &detail)
{
    bump([](NetStats &s) { ++s.sessions_rejected; });
    queue_bytes(conn, encode_nack(wire_id, {reason, detail}));
}

void
Server::shed_frame(Conn &conn, const NetSession &ns, u64 seq,
                   ShedReason reason)
{
    const u32 credit = static_cast<u32>(config_.window - ns.inflight);
    queue_bytes(conn, encode_shed(ns.wire_id, seq, {reason, credit}));
}

void
Server::protocol_failure(Conn &conn, const std::string &what)
{
    bump([](NetStats &s) { ++s.protocol_errors; });
    queue_bytes(conn,
                encode_nack(0, {NackReason::kProtocol, what}));
    // The stream cannot be resynchronized: stop reading, flush the
    // NACK, close. Sessions unbind on the close.
    conn.closing = true;
}

} // namespace eva2::net
