/**
 * @file
 * net::Client — a wire-protocol client for net::Server, used by the
 * loopback tests, the loadgen bench, and the example demo.
 *
 * One Client owns one TCP connection and one reader thread; any
 * number of sessions multiplex over it (each with its own wire id).
 * Submission respects the server's credit window by default —
 * submit() blocks while the window is full, mirroring a well-behaved
 * closed-loop sender — and submit_uncredited() deliberately overruns
 * it, which is how the tests and the open-loop loadgen provoke the
 * server's shedding paths.
 *
 * Results come back as NetOutcome: either the completed frame's
 * digest/top-1 (matching the in-process FrameOutcome bit for bit) or
 * a typed shed. The per-session chained digest mirrors the engine's
 * StreamReport digest chain, so end-to-end identity is one u64
 * comparison.
 *
 * Threading: submit and wait are safe from any thread; the reader
 * dispatches every server message under one client mutex and
 * broadcasts a condition variable. close() sends BYE, waits for the
 * server's EOF, and joins the reader.
 */
#ifndef EVA2_NET_CLIENT_H
#define EVA2_NET_CLIENT_H

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "runtime/stream_executor.h"
#include "tensor/tensor.h"
#include "util/mutex.h"

namespace eva2::net {

/** What the server said about one submitted frame. */
struct NetOutcome
{
    u64 seq = 0;
    bool shed = false; ///< Dropped before the engine (see shed_reason).
    ShedReason shed_reason = ShedReason::kOverload;
    bool is_key = false;
    bool failed = false;
    i64 top1 = -1;
    u64 output_digest = 0;
    double match_error = 0.0;
};

class Client;

/** One live session over a Client connection. Created by open_session. */
class ClientSession
{
  public:
    ClientSession(const ClientSession &) = delete;
    ClientSession &operator=(const ClientSession &) = delete;

    const std::string &name() const { return name_; }

    /** The credit window granted by the server's HELLO_ACK. */
    u32 window() const;

    /**
     * Send one frame, blocking while the credit window is full (the
     * closed-loop sender shape). Returns the frame's seq for wait().
     */
    u64 submit(const Tensor &frame);

    /**
     * Non-blocking submit: false (nothing sent) when the window is
     * full. The open-loop sender shape.
     */
    bool try_submit(const Tensor &frame, u64 *seq);

    /**
     * Send regardless of credit — a deliberately misbehaving sender.
     * The server answers the overrun with SHED/window rather than
     * queueing; tests use this to pin that bound.
     */
    u64 submit_uncredited(const Tensor &frame);

    /**
     * Block until the server answers seq (OUTCOME or SHED). Throws
     * NetError if the connection dies first.
     */
    NetOutcome wait(u64 seq);

    /** Sent but not yet answered. */
    i64 outstanding() const;

    /** Times submit() had to block on a full window. */
    i64 credit_stalls() const;

    /**
     * Chained digest over completed (non-shed, non-failed) frames —
     * digest_combine-folded from kDigestSeed exactly like the
     * engine's per-stream StreamReport digest.
     */
    u64 chained_digest() const;

    i64 completed_frames() const;
    i64 shed_frames() const;

  private:
    friend class Client;

    ClientSession(Client *client, u32 wire_id, std::string name);

    u64 send_frame_locked(const Tensor &frame)
        REQUIRES(client_->mutex_);

    Client *client_;
    u32 wire_id_;
    std::string name_;

    // All below guarded by the owning Client's mutex. (The Client's
    // own accesses go through Mutex::assert_held — the analysis
    // cannot see that `session->client_` is the Client holding the
    // lock; see docs/static_analysis.md.)
    enum class State
    {
        kOpening,
        kOpen,
        kRejected,
    };
    State state_ GUARDED_BY(client_->mutex_) = State::kOpening;
    /** Valid when kRejected. */
    NackMsg nack_ GUARDED_BY(client_->mutex_);
    u32 window_ GUARDED_BY(client_->mutex_) = 0;
    u64 next_seq_ GUARDED_BY(client_->mutex_) = 0;
    i64 outstanding_ GUARDED_BY(client_->mutex_) = 0;
    i64 credit_stalls_ GUARDED_BY(client_->mutex_) = 0;
    i64 completed_ GUARDED_BY(client_->mutex_) = 0;
    i64 shed_ GUARDED_BY(client_->mutex_) = 0;
    u64 chained_digest_ GUARDED_BY(client_->mutex_) = kDigestSeed;
    /** Answered, not yet wait()ed. */
    std::map<u64, NetOutcome> results_ GUARDED_BY(client_->mutex_);
};

/** One TCP connection to a net::Server plus its reader thread. */
class Client
{
  public:
    /** Connects (blocking) and starts the reader thread. */
    Client(const std::string &host, int port);

    /** close()s if still open. */
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * HELLO/HELLO_ACK handshake for a named session at a priority
     * class (0 sheds first, 3 last). Throws NetError carrying the
     * typed reason if the server NACKs. The reference is stable for
     * the client's lifetime.
     */
    ClientSession &open_session(const std::string &name, u8 priority = 0);

    /**
     * Orderly shutdown: BYE, wait for the server's EOF, join the
     * reader. Idempotent. Outstanding waits are woken with NetError.
     */
    void close();

    /** True once the server sent BYE (e.g. its graceful drain). */
    bool server_closed() const;

  private:
    friend class ClientSession;

    void reader_loop();
    void dispatch(const Message &msg) REQUIRES(mutex_);
    /** Sends are serialized under mutex_. */
    void send_locked(const std::vector<u8> &bytes) REQUIRES(mutex_);
    void check_alive_locked() const REQUIRES(mutex_);

    Fd fd_;
    std::thread reader_;

    mutable Mutex mutex_;
    CondVar cv_;
    /** close() ran (or is running). */
    bool closed_ GUARDED_BY(mutex_) = false;
    /** Reader saw EOF/error. */
    bool reader_done_ GUARDED_BY(mutex_) = false;
    /** Server announced drain/close. */
    bool server_bye_ GUARDED_BY(mutex_) = false;
    /** Nonempty if the reader died hard. */
    std::string reader_error_ GUARDED_BY(mutex_);
    u32 next_wire_id_ GUARDED_BY(mutex_) = 1;
    std::map<u32, std::unique_ptr<ClientSession>> sessions_
        GUARDED_BY(mutex_);
};

} // namespace eva2::net

#endif // EVA2_NET_CLIENT_H
