/**
 * @file
 * The EVA2 serving wire protocol: a small length-prefixed binary
 * framing over TCP.
 *
 * Every message is a fixed 32-byte header followed by a bounded
 * payload. The header carries a magic, a protocol version, the
 * message type, the wire session id (one TCP connection multiplexes
 * many sessions), a per-session sequence number, the payload length,
 * and an FNV-1a checksum over the preceding header bytes — so a
 * desynchronized or hostile peer is detected at the header, before a
 * length field can drive an allocation. All integers are
 * little-endian with explicit byte access (no struct punning, no
 * host-endianness assumptions).
 *
 * Message flow (client -> server unless noted):
 *
 *   HELLO      open session `name` with a priority class; `session`
 *              is the client-chosen wire id used by later messages.
 *   HELLO_ACK  (server) session admitted; carries the in-flight
 *              window (the session's credit budget).
 *   NACK       (server) typed rejection: connection/session limits,
 *              duplicate name, protocol violation, draining.
 *   FRAME      one input tensor; `seq` is the client's frame number.
 *   OUTCOME    (server) one completed frame: key flag, top-1, output
 *              digest, match error — plus the session's refreshed
 *              credit, the sender-visible backpressure signal.
 *   SHED       (server) the frame was dropped (window exceeded,
 *              overload, draining) without entering the engine;
 *              carries the refreshed credit.
 *   BYE        either side: orderly close after in-flight work.
 *
 * Decoding is hostile-input hardened: every length is bounded before
 * use, every parse failure throws ProtocolError with a description,
 * and the incremental FrameDecoder never buffers more than one
 * maximum-size message.
 */
#ifndef EVA2_NET_WIRE_H
#define EVA2_NET_WIRE_H

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/common.h"

namespace eva2::net {

/**
 * Thrown when a peer violates the wire protocol (bad magic, bad
 * checksum, out-of-bounds length, malformed payload). The connection
 * that produced it cannot be resynchronized and must be closed.
 */
class ProtocolError : public std::runtime_error
{
  public:
    explicit ProtocolError(const std::string &msg)
        : std::runtime_error("eva2 net protocol error: " + msg)
    {
    }
};

/** "EVA2" read as a little-endian u32. */
constexpr u32 kMagic = 0x32415645u;
constexpr u8 kWireVersion = 1;
/** Fixed encoded header size in bytes. */
constexpr size_t kHeaderSize = 32;
/**
 * Hard upper bound on one message's payload. Large enough for any
 * realistic input frame (a 1000x562 float frame is ~2.2 MiB), small
 * enough that a hostile length field cannot balloon server memory.
 */
constexpr u32 kMaxPayload = 16u * 1024 * 1024;

/** Message types. Values are wire-stable; never renumber. */
enum class MsgType : u8
{
    kHello = 1,
    kHelloAck = 2,
    kNack = 3,
    kFrame = 4,
    kOutcome = 5,
    kShed = 6,
    kBye = 7,
};

/** Why a HELLO (or the whole connection) was rejected. */
enum class NackReason : u16
{
    kProtocol = 1,        ///< Unparseable traffic; connection closes.
    kConnectionLimit = 2, ///< Server at max_connections.
    kSessionLimit = 3,    ///< Server at max_sessions.
    kDuplicateSession = 4, ///< Name already bound on a live connection.
    kDraining = 5,        ///< Server is shutting down.
    kBadFrame = 6,        ///< Frame shape does not match the network.
};

/** Why a FRAME was shed instead of processed. */
enum class ShedReason : u16
{
    kWindow = 1,   ///< Sender overran its in-flight window.
    kOverload = 2, ///< Server-wide in-flight cap for this priority.
    kDraining = 3, ///< Server is draining; no new work admitted.
    kMemory = 4,   ///< Engine resident-memory budget exceeded.
};

const char *nack_reason_name(NackReason reason);
const char *shed_reason_name(ShedReason reason);

/** Decoded message header. */
struct MsgHeader
{
    MsgType type = MsgType::kBye;
    u32 session = 0;     ///< Wire session id (client-chosen).
    u64 seq = 0;         ///< Per-session sequence number.
    u32 payload_len = 0; ///< Bytes following the header.
};

/** One fully decoded message. */
struct Message
{
    MsgHeader header;
    std::vector<u8> payload;
};

// --------------------------------------------------------------------
// Bounded little-endian readers/writers

/** Append-only little-endian byte writer. */
class ByteWriter
{
  public:
    explicit ByteWriter(std::vector<u8> *out) : out_(out) {}

    void
    u8v(u8 v)
    {
        out_->push_back(v);
    }

    void
    u16v(u16 v)
    {
        out_->push_back(static_cast<u8>(v));
        out_->push_back(static_cast<u8>(v >> 8));
    }

    void
    u32v(u32 v)
    {
        u16v(static_cast<u16>(v));
        u16v(static_cast<u16>(v >> 16));
    }

    void
    u64v(u64 v)
    {
        u32v(static_cast<u32>(v));
        u32v(static_cast<u32>(v >> 32));
    }

    void
    f32v(float v)
    {
        u32 bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u32v(bits);
    }

    void
    f64v(double v)
    {
        u64 bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64v(bits);
    }

    void
    bytes(const void *p, size_t n)
    {
        const u8 *b = static_cast<const u8 *>(p);
        out_->insert(out_->end(), b, b + n);
    }

  private:
    std::vector<u8> *out_;
};

/** Bounds-checked little-endian reader; overruns throw. */
class ByteReader
{
  public:
    ByteReader(const u8 *data, size_t size) : data_(data), size_(size) {}

    explicit ByteReader(const std::vector<u8> &v)
        : ByteReader(v.data(), v.size())
    {
    }

    size_t remaining() const { return size_ - pos_; }

    u8
    u8v()
    {
        need(1);
        return data_[pos_++];
    }

    u16
    u16v()
    {
        need(2);
        const u16 v = static_cast<u16>(data_[pos_]) |
                      static_cast<u16>(data_[pos_ + 1]) << 8;
        pos_ += 2;
        return v;
    }

    u32
    u32v()
    {
        const u32 lo = u16v();
        const u32 hi = u16v();
        return lo | hi << 16;
    }

    u64
    u64v()
    {
        const u64 lo = u32v();
        const u64 hi = u32v();
        return lo | hi << 32;
    }

    float
    f32v()
    {
        const u32 bits = u32v();
        float v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    double
    f64v()
    {
        const u64 bits = u64v();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str(size_t n)
    {
        need(n);
        std::string s(reinterpret_cast<const char *>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

    /** All payload bytes must have been consumed. */
    void
    done(const char *what) const
    {
        if (pos_ != size_) {
            throw ProtocolError(
                std::string(what) + ": " +
                std::to_string(size_ - pos_) +
                " trailing payload byte(s)");
        }
    }

  private:
    void
    need(size_t n) const
    {
        if (size_ - pos_ < n) {
            throw ProtocolError("payload truncated: need " +
                                std::to_string(n) + " byte(s), have " +
                                std::to_string(size_ - pos_));
        }
    }

    const u8 *data_;
    size_t size_;
    size_t pos_ = 0;
};

// --------------------------------------------------------------------
// Header encode/decode

/** FNV-1a over the first 24 header bytes (the checksummed prefix). */
u32 header_checksum(const u8 *header24);

/** Append a full header (checksum included) to `out`. */
void encode_header(std::vector<u8> *out, const MsgHeader &header);

/**
 * Decode the 32 header bytes at `buf`. Throws ProtocolError on bad
 * magic, unsupported version, unknown type, corrupt checksum, or a
 * payload length past kMaxPayload.
 */
MsgHeader decode_header(const u8 *buf);

// --------------------------------------------------------------------
// Typed payloads

/** HELLO: open a named session at a priority class. */
struct HelloMsg
{
    u8 priority = 0; ///< 0 (shed first) .. 3 (shed last).
    std::string name;
};

/** HELLO_ACK: session admitted with this in-flight window. */
struct HelloAckMsg
{
    u32 window = 0;
};

/** NACK: typed rejection with a human-readable detail. */
struct NackMsg
{
    NackReason reason = NackReason::kProtocol;
    std::string detail;
};

/** OUTCOME: one completed frame plus the refreshed credit. */
struct OutcomeMsg
{
    bool is_key = false;
    bool failed = false;
    u32 credit = 0; ///< Frames the sender may now have in flight.
    i64 top1 = -1;
    u64 output_digest = 0;
    double match_error = 0.0;
};

/** SHED: the frame was dropped before the engine. */
struct ShedMsg
{
    ShedReason reason = ShedReason::kOverload;
    u32 credit = 0;
};

/** Bound on encoded frame edge lengths (u16 dims on the wire). */
constexpr i64 kMaxFrameEdge = 65535;

std::vector<u8> encode_hello(u32 session, const HelloMsg &msg);
std::vector<u8> encode_hello_ack(u32 session, const HelloAckMsg &msg);
std::vector<u8> encode_nack(u32 session, const NackMsg &msg);
/** FRAME: c,h,w dims + raw little-endian f32 planes. */
std::vector<u8> encode_frame(u32 session, u64 seq, const Tensor &frame);
std::vector<u8> encode_outcome(u32 session, u64 seq,
                               const OutcomeMsg &msg);
std::vector<u8> encode_shed(u32 session, u64 seq, const ShedMsg &msg);
std::vector<u8> encode_bye(u32 session);

HelloMsg parse_hello(const std::vector<u8> &payload);
HelloAckMsg parse_hello_ack(const std::vector<u8> &payload);
NackMsg parse_nack(const std::vector<u8> &payload);
Tensor parse_frame(const std::vector<u8> &payload);
OutcomeMsg parse_outcome(const std::vector<u8> &payload);
ShedMsg parse_shed(const std::vector<u8> &payload);

// --------------------------------------------------------------------
// Incremental decoder

/**
 * Incremental stream decoder: feed() raw bytes as they arrive, then
 * drain complete messages with next(). Throws ProtocolError as soon
 * as the buffered prefix is provably invalid (corrupt header), so a
 * hostile peer is dropped before its declared payload arrives. Never
 * buffers more than kHeaderSize + kMaxPayload bytes.
 */
class FrameDecoder
{
  public:
    /** Append raw bytes from the stream. */
    void feed(const u8 *data, size_t size);

    /**
     * Extract the next complete message into `*out`. Returns false
     * when the buffer holds only a partial message.
     */
    bool next(Message *out);

    /** Bytes currently buffered (tests; bounded by construction). */
    size_t buffered() const { return buf_.size() - consumed_; }

  private:
    std::vector<u8> buf_;
    size_t consumed_ = 0;
};

} // namespace eva2::net

#endif // EVA2_NET_WIRE_H
