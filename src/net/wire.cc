#include "net/wire.h"

#include <algorithm>

namespace eva2::net {

const char *
nack_reason_name(NackReason reason)
{
    switch (reason) {
      case NackReason::kProtocol:
        return "protocol";
      case NackReason::kConnectionLimit:
        return "connection_limit";
      case NackReason::kSessionLimit:
        return "session_limit";
      case NackReason::kDuplicateSession:
        return "duplicate_session";
      case NackReason::kDraining:
        return "draining";
      case NackReason::kBadFrame:
        return "bad_frame";
    }
    return "unknown";
}

const char *
shed_reason_name(ShedReason reason)
{
    switch (reason) {
      case ShedReason::kWindow:
        return "window";
      case ShedReason::kOverload:
        return "overload";
      case ShedReason::kDraining:
        return "draining";
      case ShedReason::kMemory:
        return "memory";
    }
    return "unknown";
}

u32
header_checksum(const u8 *header24)
{
    // FNV-1a over the checksummed prefix: cheap, order-sensitive,
    // and catches both corruption and desynchronization (a stream
    // offset lands mid-message, the "magic" may accidentally match,
    // the checksum will not).
    u32 h = 2166136261u;
    for (size_t i = 0; i < 24; ++i) {
        h ^= header24[i];
        h *= 16777619u;
    }
    return h;
}

void
encode_header(std::vector<u8> *out, const MsgHeader &header)
{
    const size_t base = out->size();
    ByteWriter w(out);
    w.u32v(kMagic);
    w.u8v(kWireVersion);
    w.u8v(static_cast<u8>(header.type));
    w.u16v(0); // reserved
    w.u32v(header.session);
    w.u32v(header.payload_len);
    w.u64v(header.seq);
    w.u32v(header_checksum(out->data() + base));
    w.u32v(0); // reserved
    invariant(out->size() - base == kHeaderSize,
              "net: encoded header size drifted");
}

MsgHeader
decode_header(const u8 *buf)
{
    ByteReader r(buf, kHeaderSize);
    const u32 magic = r.u32v();
    if (magic != kMagic) {
        throw ProtocolError("bad magic 0x" + [&] {
            char hex[16];
            std::snprintf(hex, sizeof(hex), "%08x", magic);
            return std::string(hex);
        }() + " (stream is not EVA2 traffic or desynchronized)");
    }
    const u8 version = r.u8v();
    if (version != kWireVersion) {
        throw ProtocolError(
            "unsupported protocol version " + std::to_string(version) +
            " (this build speaks version " +
            std::to_string(kWireVersion) + ")");
    }
    const u8 type = r.u8v();
    if (type < static_cast<u8>(MsgType::kHello) ||
        type > static_cast<u8>(MsgType::kBye)) {
        throw ProtocolError("unknown message type " +
                            std::to_string(type));
    }
    r.u16v(); // reserved
    MsgHeader header;
    header.type = static_cast<MsgType>(type);
    header.session = r.u32v();
    header.payload_len = r.u32v();
    header.seq = r.u64v();
    const u32 want = header_checksum(buf);
    const u32 got = r.u32v();
    if (got != want) {
        throw ProtocolError("header checksum mismatch (corrupt or "
                            "desynchronized stream)");
    }
    if (header.payload_len > kMaxPayload) {
        throw ProtocolError(
            "payload length " + std::to_string(header.payload_len) +
            " exceeds the " + std::to_string(kMaxPayload) +
            "-byte bound");
    }
    return header;
}

namespace {

std::vector<u8>
with_header(MsgType type, u32 session, u64 seq,
            const std::vector<u8> &payload)
{
    invariant(payload.size() <= kMaxPayload,
              "net: outgoing payload exceeds kMaxPayload");
    MsgHeader header;
    header.type = type;
    header.session = session;
    header.seq = seq;
    header.payload_len = static_cast<u32>(payload.size());
    std::vector<u8> out;
    out.reserve(kHeaderSize + payload.size());
    encode_header(&out, header);
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

} // namespace

std::vector<u8>
encode_hello(u32 session, const HelloMsg &msg)
{
    invariant(msg.name.size() <= 0xffff,
              "net: session name exceeds the u16 length field");
    std::vector<u8> payload;
    ByteWriter w(&payload);
    w.u8v(msg.priority);
    w.u8v(0); // reserved
    w.u16v(static_cast<u16>(msg.name.size()));
    w.bytes(msg.name.data(), msg.name.size());
    return with_header(MsgType::kHello, session, 0, payload);
}

HelloMsg
parse_hello(const std::vector<u8> &payload)
{
    ByteReader r(payload);
    HelloMsg msg;
    msg.priority = r.u8v();
    r.u8v(); // reserved
    const u16 name_len = r.u16v();
    msg.name = r.str(name_len);
    r.done("HELLO");
    if (msg.name.empty()) {
        throw ProtocolError("HELLO with an empty session name");
    }
    return msg;
}

std::vector<u8>
encode_hello_ack(u32 session, const HelloAckMsg &msg)
{
    std::vector<u8> payload;
    ByteWriter w(&payload);
    w.u32v(msg.window);
    return with_header(MsgType::kHelloAck, session, 0, payload);
}

HelloAckMsg
parse_hello_ack(const std::vector<u8> &payload)
{
    ByteReader r(payload);
    HelloAckMsg msg;
    msg.window = r.u32v();
    r.done("HELLO_ACK");
    if (msg.window == 0) {
        throw ProtocolError("HELLO_ACK with a zero window");
    }
    return msg;
}

std::vector<u8>
encode_nack(u32 session, const NackMsg &msg)
{
    std::vector<u8> payload;
    ByteWriter w(&payload);
    w.u16v(static_cast<u16>(msg.reason));
    const size_t len = std::min<size_t>(msg.detail.size(), 0xffff);
    w.u16v(static_cast<u16>(len));
    w.bytes(msg.detail.data(), len);
    return with_header(MsgType::kNack, session, 0, payload);
}

NackMsg
parse_nack(const std::vector<u8> &payload)
{
    ByteReader r(payload);
    NackMsg msg;
    const u16 reason = r.u16v();
    if (reason < static_cast<u16>(NackReason::kProtocol) ||
        reason > static_cast<u16>(NackReason::kBadFrame)) {
        throw ProtocolError("NACK with unknown reason " +
                            std::to_string(reason));
    }
    msg.reason = static_cast<NackReason>(reason);
    const u16 detail_len = r.u16v();
    msg.detail = r.str(detail_len);
    r.done("NACK");
    return msg;
}

std::vector<u8>
encode_frame(u32 session, u64 seq, const Tensor &frame)
{
    const Shape &shape = frame.shape();
    invariant(shape.c >= 1 && shape.h >= 1 && shape.w >= 1 &&
                  shape.c <= kMaxFrameEdge && shape.h <= kMaxFrameEdge &&
                  shape.w <= kMaxFrameEdge,
              "net: frame shape " + shape.str() +
                  " does not fit the wire dims");
    std::vector<u8> payload;
    payload.reserve(8 + static_cast<size_t>(shape.size()) * 4);
    ByteWriter w(&payload);
    w.u16v(static_cast<u16>(shape.c));
    w.u16v(static_cast<u16>(shape.h));
    w.u16v(static_cast<u16>(shape.w));
    w.u16v(0); // reserved
    for (const float v : frame.data()) {
        w.f32v(v);
    }
    return with_header(MsgType::kFrame, session, seq, payload);
}

Tensor
parse_frame(const std::vector<u8> &payload)
{
    ByteReader r(payload);
    const i64 c = r.u16v();
    const i64 h = r.u16v();
    const i64 w = r.u16v();
    r.u16v(); // reserved
    if (c < 1 || h < 1 || w < 1) {
        throw ProtocolError("FRAME with degenerate dims " +
                            std::to_string(c) + "x" + std::to_string(h) +
                            "x" + std::to_string(w));
    }
    // Dims are u16 so c*h*w*4 is at most ~1.1e15 — compute in i64 and
    // compare against the actual payload before touching any memory.
    const i64 want = 8 + c * h * w * 4;
    if (static_cast<i64>(payload.size()) != want) {
        throw ProtocolError(
            "FRAME payload is " + std::to_string(payload.size()) +
            " bytes but dims " + std::to_string(c) + "x" +
            std::to_string(h) + "x" + std::to_string(w) + " require " +
            std::to_string(want));
    }
    Tensor out(Shape{c, h, w});
    for (float &v : out.data()) {
        v = r.f32v();
    }
    r.done("FRAME");
    return out;
}

std::vector<u8>
encode_outcome(u32 session, u64 seq, const OutcomeMsg &msg)
{
    std::vector<u8> payload;
    ByteWriter w(&payload);
    u8 flags = 0;
    flags |= msg.is_key ? 1u : 0u;
    flags |= msg.failed ? 2u : 0u;
    w.u8v(flags);
    w.u8v(0);  // reserved
    w.u16v(0); // reserved
    w.u32v(msg.credit);
    w.u64v(static_cast<u64>(msg.top1));
    w.u64v(msg.output_digest);
    w.f64v(msg.match_error);
    return with_header(MsgType::kOutcome, session, seq, payload);
}

OutcomeMsg
parse_outcome(const std::vector<u8> &payload)
{
    ByteReader r(payload);
    OutcomeMsg msg;
    const u8 flags = r.u8v();
    if ((flags & ~3u) != 0) {
        throw ProtocolError("OUTCOME with unknown flag bits " +
                            std::to_string(flags));
    }
    msg.is_key = (flags & 1u) != 0;
    msg.failed = (flags & 2u) != 0;
    r.u8v();
    r.u16v();
    msg.credit = r.u32v();
    msg.top1 = static_cast<i64>(r.u64v());
    msg.output_digest = r.u64v();
    msg.match_error = r.f64v();
    r.done("OUTCOME");
    return msg;
}

std::vector<u8>
encode_shed(u32 session, u64 seq, const ShedMsg &msg)
{
    std::vector<u8> payload;
    ByteWriter w(&payload);
    w.u16v(static_cast<u16>(msg.reason));
    w.u16v(0); // reserved
    w.u32v(msg.credit);
    return with_header(MsgType::kShed, session, seq, payload);
}

ShedMsg
parse_shed(const std::vector<u8> &payload)
{
    ByteReader r(payload);
    ShedMsg msg;
    const u16 reason = r.u16v();
    if (reason < static_cast<u16>(ShedReason::kWindow) ||
        reason > static_cast<u16>(ShedReason::kMemory)) {
        throw ProtocolError("SHED with unknown reason " +
                            std::to_string(reason));
    }
    msg.reason = static_cast<ShedReason>(reason);
    r.u16v();
    msg.credit = r.u32v();
    r.done("SHED");
    return msg;
}

std::vector<u8>
encode_bye(u32 session)
{
    return with_header(MsgType::kBye, session, 0, {});
}

void
FrameDecoder::feed(const u8 *data, size_t size)
{
    // Compact lazily: drop fully consumed bytes before growing, so
    // the buffer never exceeds one maximum-size message plus one read
    // chunk.
    if (consumed_ > 0) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
        consumed_ = 0;
    }
    buf_.insert(buf_.end(), data, data + size);
    // Validate the leading header as soon as it is complete — a
    // hostile or desynchronized peer is rejected here, before its
    // declared payload is ever waited for. (next() re-validates; the
    // 32-byte decode is noise next to the recv that delivered it.)
    if (buf_.size() >= kHeaderSize) {
        (void)decode_header(buf_.data());
    }
}

bool
FrameDecoder::next(Message *out)
{
    const size_t avail = buf_.size() - consumed_;
    if (avail < kHeaderSize) {
        return false;
    }
    // Validates magic/version/checksum/length even while the payload
    // is still in flight: a hostile header is rejected before its
    // declared payload is ever buffered.
    const MsgHeader header = decode_header(buf_.data() + consumed_);
    if (avail < kHeaderSize + header.payload_len) {
        return false;
    }
    out->header = header;
    const u8 *p = buf_.data() + consumed_ + kHeaderSize;
    out->payload.assign(p, p + header.payload_len);
    consumed_ += kHeaderSize + header.payload_len;
    return true;
}

} // namespace eva2::net
