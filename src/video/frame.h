/**
 * @file
 * Frame and ground-truth types for the synthetic video substrate.
 *
 * The reproduction cannot ship the YouTube-BoundingBoxes dataset the
 * paper trains and tests on, so sequences come from a deterministic
 * procedural generator (see synthetic_video.h) that produces the same
 * annotations YTBB provides: per-frame bounding boxes with classes for
 * detection, and a dominant class for classification.
 */
#ifndef EVA2_VIDEO_FRAME_H
#define EVA2_VIDEO_FRAME_H

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace eva2 {

/** An axis-aligned box with a class label, in pixel coordinates. */
struct BoundingBox
{
    double y0 = 0.0;
    double x0 = 0.0;
    double y1 = 0.0; ///< Exclusive bottom edge.
    double x1 = 0.0; ///< Exclusive right edge.
    i64 cls = 0;
    /**
     * Truncated/borderline object (mostly outside the frame or hugging
     * its edge, where conv padding leaves no receptive-field
     * coverage). Evaluated like Pascal VOC "difficult" boxes: not
     * counted as ground truth, and detections matching one are
     * ignored rather than scored as false positives.
     */
    bool difficult = false;

    double
    area() const
    {
        return std::max(0.0, y1 - y0) * std::max(0.0, x1 - x0);
    }

    /** Intersection-over-union with another box (labels ignored). */
    double iou(const BoundingBox &o) const;
};

/** Per-frame annotations, mirroring what YTBB supplies. */
struct GroundTruth
{
    std::vector<BoundingBox> boxes;
    i64 dominant_class = -1; ///< Class of the largest visible object.
};

/** One sprite's kinematic state at a frame (for oracle motion). */
struct SpriteState
{
    i64 id = -1;       ///< Stable sprite identity across frames.
    double cy = 0.0;   ///< Center row.
    double cx = 0.0;   ///< Center column.
    double half_h = 0; ///< Half extents, for membership tests.
    double half_w = 0;
    bool ellipse = false;
};

/**
 * The generator's kinematic state at a frame: enough to reconstruct
 * the exact pixel motion between any two frames of the same scene.
 * This is the synthetic stand-in for motion metadata a video codec
 * would provide for free (Section VI suggests exploiting exactly
 * that); experiments use it as an oracle motion source.
 */
struct SceneState
{
    double pan_y = 0.0; ///< Accumulated background content offset.
    double pan_x = 0.0;
    bool after_cut = false; ///< Content was re-seeded (scene cut).
    std::vector<SpriteState> sprites; ///< Visible sprites, draw order.
};

/** One video frame (grayscale, 1xHxW tensor in [0,1]) plus labels. */
struct LabeledFrame
{
    Tensor image;
    GroundTruth truth;
    SceneState state; ///< Generator kinematics (oracle motion).
    i64 index = 0;
    double time_ms = 0.0; ///< Presentation time at the sequence rate.
};

/** A labelled video clip. */
struct Sequence
{
    std::string name;
    std::vector<LabeledFrame> frames;

    i64 size() const { return static_cast<i64>(frames.size()); }
    const LabeledFrame &operator[](i64 i) const
    {
        return frames[static_cast<size_t>(i)];
    }
};

/** Mean absolute pixel difference between two frames. */
double frame_difference(const Tensor &a, const Tensor &b);

} // namespace eva2

#endif // EVA2_VIDEO_FRAME_H
